"""Walking, masking and suppression plumbing for the determinism linter.

The engine reads each C++ source file once, produces a *masked* copy
(comments and string literals blanked out, newlines preserved) so rules
never match inside prose, and applies every rule from
tools/lint/rules.py.  Findings are suppressed by an inline annotation on
the offending line or the line directly above it:

    // lint:allow(<rule-id>) — <non-empty reason>

The reason is mandatory (an em-dash, ``--`` or ``-`` separator is
accepted); a malformed or reason-free annotation is itself reported as a
``bad-allow`` finding so every suppression stays a reviewable,
justified artefact.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

SOURCE_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")

# Directories never linted: build trees and the linter's own seeded
# bad fixtures (which contain deliberate violations).
SKIPPED_DIR_PARTS = ("build", "build-asan", ".git", "fixtures")

ALLOW_RE = re.compile(
    r"lint:allow\(([A-Za-z0-9_-]+)\)\s*(?:—|--|-)?\s*(.*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# Encoding prefixes that may precede a raw-string literal: R", u8R",
# uR", UR", LR".  The prefix characters themselves are left unmasked
# (they are ordinary identifier characters as far as rules go).
_RAW_PREFIXES = ("u8R", "uR", "UR", "LR", "R")


def _raw_string_at(text: str, i: int):
    """Returns (body_start, delim) when a raw-string literal opens at
    offset i (pointing at the start of its prefix), else None.

    ``body_start`` is the offset just past the opening ``(``; ``delim``
    is the d-char sequence, possibly empty.  Raw-string delimiters are
    at most 16 characters and never contain parens, backslashes or
    whitespace.
    """
    for prefix in _RAW_PREFIXES:
        if not text.startswith(prefix + '"', i):
            continue
        # A prefix preceded by an identifier character is just the tail
        # of a longer identifier (e.g. FOOR"...), not an encoding prefix.
        if i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
            return None
        j = i + len(prefix) + 1
        delim_end = j
        while (delim_end < len(text) and delim_end - j <= 16 and
               text[delim_end] not in '()\\ \t\n"'):
            delim_end += 1
        if delim_end < len(text) and text[delim_end] == "(":
            return delim_end + 1, text[j:delim_end]
        return None
    return None


def mask_comments_and_strings(text: str) -> str:
    """Blanks // and /* */ comments plus "..." / '...' / R"(...)"
    literals.

    The returned string has identical length and newline positions, so
    offsets and line numbers computed against it map 1:1 onto the
    original file.  Raw strings (any encoding prefix, delimited or not)
    are blanked wholesale -- their bodies take no escapes -- and a
    backslash line-continuation extends a // comment onto the next
    physical line, exactly as the preprocessor would.
    """
    out = list(text)
    i = 0
    n = len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            raw = _raw_string_at(text, i) if c in "RuUL" else None
            if raw is not None:
                body_start, delim = raw
                closer = ")" + delim + '"'
                end = text.find(closer, body_start)
                if end < 0:
                    end = n  # unterminated: blank to EOF
                else:
                    end += len(closer)
                for k in range(i, min(end, n)):
                    if text[k] != "\n":
                        out[k] = " "
                i = end
            elif c == "/" and nxt == "/":
                state = "line_comment"
                out[i] = out[i + 1] = " "
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out[i] = out[i + 1] = " "
                i += 2
            elif c == '"':
                state = "string"
                out[i] = " "
                i += 1
            elif c == "'":
                state = "char"
                out[i] = " "
                i += 1
            else:
                i += 1
        elif state == "line_comment":
            if c == "\\" and nxt == "\n":
                # Backslash-newline splices the next physical line into
                # this comment; keep masking past the newline.
                out[i] = " "
                i += 2
            elif c == "\n":
                state = "code"
                i += 1
            else:
                out[i] = " "
                i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out[i] = out[i + 1] = " "
                i += 2
            else:
                if c != "\n":
                    out[i] = " "
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out[i] = " "
                if nxt != "\n":
                    out[i + 1] = " "
                i += 2
            elif c == quote:
                out[i] = " "
                state = "code"
                i += 1
            else:
                if c != "\n":
                    out[i] = " "
                i += 1
    return "".join(out)


def parse_allows(text: str, known_rules: set[str]):
    """Returns ({line: rule}, [bad-allow findings-as-(line, message)]).

    An allowance on line L suppresses findings on L and L+1, so the
    annotation can sit on its own line above the code it justifies.
    """
    allows: dict[int, set[str]] = {}
    bad: list[tuple[int, str]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "lint:allow" not in line:
            continue
        m = ALLOW_RE.search(line)
        if not m:
            bad.append((lineno, "malformed lint:allow annotation "
                                "(expected lint:allow(<rule>) — <reason>)"))
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if rule not in known_rules:
            bad.append((lineno, f"lint:allow names unknown rule '{rule}'"))
            continue
        if not reason:
            bad.append((lineno, f"lint:allow({rule}) has no justification "
                                "— a reason is mandatory"))
            continue
        allows.setdefault(lineno, set()).add(rule)
        allows.setdefault(lineno + 1, set()).add(rule)
    return allows, bad


def line_of_offset(text: str, offset: int) -> int:
    """1-based line number of a character offset."""
    return text.count("\n", 0, offset) + 1


def lint_text(path: str, text: str, rules, config,
              extra_known=()) -> list[Finding]:
    """Applies `rules` to one in-memory file; returns kept findings.

    ``extra_known`` names additional rule ids (the whole-repo passes)
    that are legal in lint:allow annotations here even though no line
    rule carries them.
    """
    masked = mask_comments_and_strings(text)
    known = {r.rule_id for r in rules} | set(extra_known)
    allows, bad = parse_allows(text, known)
    findings = [Finding(path, line, "bad-allow", msg) for line, msg in bad]
    for rule in rules:
        for finding in rule.apply(path, text, masked, config):
            if finding.rule in allows.get(finding.line, ()):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def iter_source_files(paths):
    """Yields every .h/.cc under the given files/directories, sorted."""
    seen = []
    for p in paths:
        if os.path.isfile(p):
            if p.endswith(SOURCE_EXTENSIONS):
                seen.append(p)
            continue
        for root, dirs, files in os.walk(p):
            dirs[:] = sorted(d for d in dirs if d not in SKIPPED_DIR_PARTS)
            for f in sorted(files):
                if f.endswith(SOURCE_EXTENSIONS):
                    seen.append(os.path.join(root, f))
    return sorted(set(seen))


def lint_paths(paths, rules, config, extra_known=()) -> list[Finding]:
    """Lints every C++ source under `paths`."""
    findings: list[Finding] = []
    for path in iter_source_files(paths):
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        findings.extend(lint_text(normalize(path, config), text, rules,
                                  config, extra_known))
    return findings


def normalize(path: str, config) -> str:
    """Repo-relative posix path, so allowlist prefixes are stable."""
    root = getattr(config, "root", None)
    if root:
        try:
            path = os.path.relpath(path, root)
        except ValueError:
            pass
    return path.replace(os.sep, "/")
