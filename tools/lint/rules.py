"""Rule catalogue for the determinism linter.

Each rule encodes one clause of the repo's bit-identical-results
contract (README.md "Static analysis" has the full rationale):

  unordered-iteration  iterating a std::unordered_{map,set} feeds
                       hash-order — i.e. libc++-vs-libstdc++- and
                       insertion-order-dependent — sequences into
                       whatever consumes the loop.  Sort first,
                       re-container, or justify with lint:allow.
  banned-random        std::rand / srand / std::random_device draw from
                       ambient, unseeded state; all randomness must
                       flow through common/rng.h so a recorded seed
                       replays the exact experiment.
  wall-clock           steady/system_clock::now(), time(), clock() and
                       gettimeofday() differ run to run; wall-clock
                       reads live only in the obs volatile-timing
                       block, which is segregated from stable series.
  mutable-static       a mutable static or inline global is cross-thread
                       shared state whose merge order the engine cannot
                       fix; the sharded obs::Registry is the sanctioned
                       home for such state.  Static *references* (the
                       `static obs::Counter& c = ...` idiom) are
                       allowed: bound once, aliasing the registry.
  missing-expect       public entry points of the recovery engines
                       (src/core, src/exp/runners.cc) must carry at
                       least one RTR_EXPECT/RTR_EXPECT_MSG so contract
                       violations surface as rtr::ContractViolation
                       instead of silently corrupting merged results.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

from tools.lint.engine import Finding, line_of_offset


@dataclass
class Config:
    """Path policy; defaults describe the real repo layout."""

    root: str | None = None
    # Modules allowed to read wall clocks / own mutable process state.
    timing_allowed_prefixes: tuple = ("src/obs/", "src/common/rng.h")
    mutable_static_allowed_prefixes: tuple = ("src/obs/",)
    # Files whose public functions must carry RTR_EXPECT contracts.
    entry_point_dirs: tuple = ("src/core/",)
    entry_point_files: tuple = ("src/exp/runners.cc",)
    # Optional override used by the self-tests to point the
    # missing-expect rule at fixture .cc/.h pairs.
    header_lookup: dict = field(default_factory=dict)


def _path_allowed(path: str, prefixes) -> bool:
    return any(path.startswith(p) or f"/{p}" in path for p in prefixes)


class Rule:
    rule_id = "abstract"
    description = ""

    def apply(self, path, raw, masked, config):
        raise NotImplementedError


# ----------------------------------------------------------------------
# unordered-iteration
# ----------------------------------------------------------------------

_UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s*[&*]?"
    r"\s*(\w+)\s*[;={(),]"
)
_RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?:\s*([\w.>\-]+)\s*\)")
_BEGIN_RE = re.compile(r"([\w.>\-]+)\s*\.\s*(?:c?r?begin)\s*\(")


def _last_component(expr: str) -> str:
    return re.split(r"\.|->", expr)[-1]


class UnorderedIterationRule(Rule):
    rule_id = "unordered-iteration"
    description = ("iteration over a std::unordered_map/set observed "
                   "in hash order")

    def apply(self, path, raw, masked, config):
        names = set(_UNORDERED_DECL_RE.findall(masked))
        if not names:
            return []
        findings = []
        for regex, what in ((_RANGE_FOR_RE, "range-for over"),
                            (_BEGIN_RE, "iterator walk of")):
            for m in regex.finditer(masked):
                name = _last_component(m.group(1))
                if name not in names:
                    continue
                findings.append(Finding(
                    path, line_of_offset(masked, m.start()), self.rule_id,
                    f"{what} unordered container '{name}': hash order is "
                    "not deterministic across libraries or insertion "
                    "histories; sort into a vector (or re-container) "
                    "before the sequence can reach merged or emitted "
                    "output"))
        return findings


# ----------------------------------------------------------------------
# banned-random
# ----------------------------------------------------------------------

_BANNED_RANDOM = (
    (re.compile(r"std::rand\b"), "std::rand()"),
    (re.compile(r"(?<![\w.:>])rand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
)


class BannedRandomRule(Rule):
    rule_id = "banned-random"
    description = "ambient randomness outside common/rng.h"

    def apply(self, path, raw, masked, config):
        if _path_allowed(path, config.timing_allowed_prefixes):
            return []
        findings = []
        for regex, what in _BANNED_RANDOM:
            for m in regex.finditer(masked):
                findings.append(Finding(
                    path, line_of_offset(masked, m.start()), self.rule_id,
                    f"{what} is unseeded ambient randomness; draw from an "
                    "explicitly seeded rtr::Rng (common/rng.h) so the "
                    "recorded seed replays the experiment bit-exactly"))
        return findings


# ----------------------------------------------------------------------
# wall-clock
# ----------------------------------------------------------------------

_BANNED_CLOCK = (
    (re.compile(r"::now\s*\("), "std::chrono::*_clock::now()"),
    (re.compile(r"(?<![\w.:])time\s*\("), "time()"),
    (re.compile(r"(?<![\w.:])clock\s*\("), "clock()"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday()"),
)


class WallClockRule(Rule):
    rule_id = "wall-clock"
    description = "wall-clock read outside the obs volatile-timing block"

    def apply(self, path, raw, masked, config):
        if _path_allowed(path, config.timing_allowed_prefixes):
            return []
        findings = []
        for regex, what in _BANNED_CLOCK:
            for m in regex.finditer(masked):
                findings.append(Finding(
                    path, line_of_offset(masked, m.start()), self.rule_id,
                    f"{what} differs between runs; wall-clock reads belong "
                    "in src/obs (whose timing series are segregated as "
                    "volatile), never in anything feeding stable output"))
        return findings


# ----------------------------------------------------------------------
# mutable-static
# ----------------------------------------------------------------------

_STATIC_RE = re.compile(r"^(\s*)(?:inline\s+)?static\s+(?!const\b|constexpr\b"
                        r"|_?assert\b)", re.MULTILINE)
_INLINE_GLOBAL_RE = re.compile(r"^inline\s+(?!const\b|constexpr\b|static\b"
                               r"|namespace\b)", re.MULTILINE)


def _scan_decl_tail(masked: str, start: int):
    """Classifies the declaration starting after a static/inline keyword.

    Scans to the first of ``( ; = {`` outside template angle brackets.
    Returns one of 'function' (hit '('), 'reference' ('&' seen first),
    'variable', or None (ran off the file / unparsable).
    """
    depth = 0
    i = start
    n = len(masked)
    saw_ref = False
    while i < n:
        c = masked[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth = max(0, depth - 1)
        elif depth == 0:
            if c == "&":
                saw_ref = True
            elif c == "(":
                return "function"
            elif c in ";={":
                return "reference" if saw_ref else "variable"
        i += 1
    return None


class MutableStaticRule(Rule):
    rule_id = "mutable-static"
    description = "mutable static / inline global outside obs::Registry"

    def apply(self, path, raw, masked, config):
        if _path_allowed(path, config.mutable_static_allowed_prefixes):
            return []
        findings = []
        for regex, kind in ((_STATIC_RE, "static"),
                            (_INLINE_GLOBAL_RE, "inline global")):
            for m in regex.finditer(masked):
                if _scan_decl_tail(masked, m.end()) != "variable":
                    continue
                findings.append(Finding(
                    path, line_of_offset(masked, m.start()), self.rule_id,
                    f"mutable {kind} variable: shared mutable state with "
                    "no deterministic merge order; route it through the "
                    "sharded obs::Registry, make it const/constexpr, or "
                    "justify with lint:allow"))
        return findings


# ----------------------------------------------------------------------
# missing-expect
# ----------------------------------------------------------------------

_ACCESS_RE = re.compile(r"\b(public|private|protected)\s*:")
_DEF_START_RE = re.compile(r"^[A-Za-z_]")
_DEF_SKIP_RE = re.compile(
    r"^(?:namespace|using|template|struct|class|enum|extern|typedef|#|\})")


def _is_public_in_header(name: str, header: str) -> bool:
    """True when `name(` appears in the header outside a private/protected
    section.  Nearest preceding access specifier wins; none means
    namespace scope or a struct's default-public section."""
    for m in re.finditer(r"\b%s\s*\(" % re.escape(name), header):
        specifiers = list(_ACCESS_RE.finditer(header, 0, m.start()))
        if not specifiers or specifiers[-1].group(1) == "public":
            return True
    return False


def _match_brace(masked: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(masked)):
        if masked[i] == "{":
            depth += 1
        elif masked[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(masked) - 1


class MissingExpectRule(Rule):
    rule_id = "missing-expect"
    description = ("public engine entry point without an RTR_EXPECT "
                   "contract")

    def _applies(self, path, config) -> bool:
        if path in config.header_lookup:
            return True
        if any(d in path for d in config.entry_point_files):
            return True
        return any(path.startswith(d) or f"/{d}" in path
                   for d in config.entry_point_dirs) and path.endswith(".cc")

    def _header_text(self, path, config) -> str:
        if path in config.header_lookup:
            header_path = config.header_lookup[path]
        else:
            header_path = re.sub(r"\.cc$", ".h", path)
            if config.root:
                header_path = os.path.join(config.root, header_path)
        try:
            with open(header_path, encoding="utf-8",
                      errors="replace") as fh:
                return fh.read()
        except OSError:
            return ""

    def apply(self, path, raw, masked, config):
        if not self._applies(path, config):
            return []
        header = self._header_text(path, config)
        if not header:
            return []
        findings = []
        lines = masked.splitlines(keepends=True)
        offsets = []
        off = 0
        for ln in lines:
            offsets.append(off)
            off += len(ln)
        for idx, line in enumerate(lines):
            if not _DEF_START_RE.match(line) or _DEF_SKIP_RE.match(line):
                continue
            # Join lines until the signature closes with '{' (definition)
            # or ';' (declaration) at paren depth 0.
            sig_end = None
            body_open = None
            depth = 0
            pos = offsets[idx]
            while pos < len(masked):
                c = masked[pos]
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                elif depth == 0 and c == ";":
                    break
                elif depth == 0 and c == "{":
                    sig_end = pos
                    body_open = pos
                    break
                pos += 1
            if body_open is None:
                continue
            signature = masked[offsets[idx]:sig_end]
            paren = signature.find("(")
            if paren < 0:
                continue
            before = signature[:paren].rstrip()
            name_m = re.search(r"([\w~]+)$", before)
            if not name_m:
                continue
            name = name_m.group(1)
            qualifier = re.search(r"(\w+)\s*::\s*[\w~]+$", before)
            if name.startswith("~") or name.startswith("operator"):
                continue
            if qualifier and qualifier.group(1) == name:
                continue  # constructor
            if not _is_public_in_header(name, header):
                continue
            body = raw[body_open:_match_brace(masked, body_open) + 1]
            if "RTR_EXPECT" in body:
                continue
            findings.append(Finding(
                path, idx + 1, self.rule_id,
                f"public entry point '{name}' has no RTR_EXPECT / "
                "RTR_EXPECT_MSG precondition; engine entry points must "
                "fail loudly (rtr::ContractViolation) on bad input "
                "instead of corrupting merged results"))
        return findings


ALL_RULES = (
    UnorderedIterationRule(),
    BannedRandomRule(),
    WallClockRule(),
    MutableStaticRule(),
    MissingExpectRule(),
)

RULE_IDS = tuple(r.rule_id for r in ALL_RULES) + ("bad-allow",)
