"""Project-specific determinism linter for the RTR reproduction.

Mechanically enforces the repo contract that experiment results and
rtr.metrics.v1 documents are bit-identical at any thread count: no
unordered-container iteration into emitted/merged output, no ambient
randomness or wall-clock reads outside the sanctioned modules, no
mutable statics outside the sharded obs registry, and RTR_EXPECT
contracts on every public entry point of the core/exp engines.

See tools/lint/rules.py for the rule catalogue and README.md
("Static analysis") for rationale and the lint:allow convention.
"""

from tools.lint.engine import Finding, lint_paths, lint_text  # noqa: F401
from tools.lint.rules import ALL_RULES, Config  # noqa: F401
