"""Whole-repo analysis passes: layer-violation, metric-name, wire-schema.

Unlike the line rules in rules.py (one file at a time), each pass sees
the entire tree through a shared ProjectModel plus a checked-in
machine-readable model of the contract it enforces:

  layer-violation   tools/lint/layers.toml     declared module DAG
  metric-name       README.md metrics registry + bench/baseline.json
  wire-schema       tools/lint/wire_schema.toml

Findings use the same Finding/lint:allow machinery as the line rules,
so a deliberate exception is annotated at the offending line with a
mandatory reason.  Findings anchored in non-C++ files (baseline.json,
README.md, the TOML models) cannot be allow-listed -- fix the model or
the code.
"""

from __future__ import annotations

import json
import os
import re

from tools.lint.engine import Finding
from tools.lint.project import ProjectModel, load_toml

PASS_RULE_IDS = ("layer-violation", "metric-name", "wire-schema")


def _model_finding(path: str, line: int, rule: str, msg: str) -> Finding:
    return Finding(path, line, rule, msg)


def _line_of(text: str, needle: str) -> int:
    """1-based line of the first occurrence of needle, else 1."""
    off = text.find(needle)
    return text.count("\n", 0, off) + 1 if off >= 0 else 1


# ----------------------------------------------------------------------
# layer-violation
# ----------------------------------------------------------------------

class LayerViolationPass:
    rule_id = "layer-violation"
    description = ("#include edge that contradicts the declared layer "
                   "DAG (tools/lint/layers.toml), or an include cycle")

    def _load(self, model: ProjectModel):
        path = os.path.join(model.root, model.config.layers_toml)
        doc = load_toml(path)
        layers = {m: tuple(deps) for m, deps in
                  doc.get("layers", {}).items()}
        graph = doc.get("graph", {})
        return (layers, set(graph.get("cross_cutting", ())),
                set(graph.get("unrestricted", ())))

    def unrestricted(self, model: ProjectModel) -> set[str]:
        try:
            _, _, unrestricted = self._load(model)
        except (OSError, ValueError):
            return set()
        return unrestricted

    def run(self, model: ProjectModel) -> list[Finding]:
        toml_rel = model.config.layers_toml
        try:
            layers, cross, unrestricted = self._load(model)
        except (OSError, ValueError) as e:
            return [_model_finding(toml_rel, 1, self.rule_id,
                                   f"cannot load layer model: {e}")]
        findings: list[Finding] = []

        # Declared-vs-disk drift, both directions (the nightly
        # check_layers_drift step repeats the dangling-entry check so
        # module deletions surface even between code pushes).
        src_dir = os.path.join(model.root, "src")
        on_disk = {d for d in (os.listdir(src_dir)
                               if os.path.isdir(src_dir) else [])
                   if os.path.isdir(os.path.join(src_dir, d))}
        for mod in sorted(on_disk - set(layers) - cross):
            findings.append(_model_finding(
                toml_rel, 1, self.rule_id,
                f"module src/{mod}/ exists on disk but is not declared "
                "in the layer DAG; add it to [layers] with its allowed "
                "dependencies"))
        for mod in sorted((set(layers) | cross) - on_disk):
            findings.append(_model_finding(
                toml_rel, _line_of(self._raw(model), f"\n{mod} ="),
                self.rule_id,
                f"layer '{mod}' is declared but src/{mod}/ does not "
                "exist; delete the stale entry"))

        # The declared relation itself must be a DAG.
        declared = {m: set(d for d in deps if d in layers)
                    for m, deps in layers.items()}
        cyc = self._declared_cycle(declared)
        if cyc:
            findings.append(_model_finding(
                toml_rel, 1, self.rule_id,
                "declared layer graph has a cycle: " + " -> ".join(cyc)))

        # Every cross-module include edge must be sanctioned.
        for (src_mod, dst_mod), sites in sorted(model.module_edges().items()):
            if src_mod in unrestricted:
                continue
            if dst_mod in cross:
                continue
            allowed = set(layers.get(src_mod, ()))
            if dst_mod in allowed:
                continue
            for rel, inc in sites:
                findings.append(Finding(
                    rel, inc.line, self.rule_id,
                    f"'{src_mod}' must not include '{inc.target}' "
                    f"(layer '{dst_mod}'): the declared DAG allows "
                    f"{src_mod} -> "
                    f"{{{', '.join(sorted(allowed | cross)) or 'nothing'}}}"
                    "; invert the dependency or amend "
                    "tools/lint/layers.toml with a rationale"))

        # File-level include cycles are rejected everywhere, including
        # unrestricted consumers -- a header cycle is never deliberate.
        for cycle in model.file_cycles():
            findings.append(Finding(
                cycle[0], 1, self.rule_id,
                "include cycle: " + " -> ".join(cycle)))
        return findings

    def _raw(self, model: ProjectModel) -> str:
        try:
            with open(os.path.join(model.root, model.config.layers_toml),
                      encoding="utf-8") as fh:
                return fh.read()
        except OSError:
            return ""

    @staticmethod
    def _declared_cycle(graph: dict[str, set[str]]) -> list[str] | None:
        color: dict[str, int] = {}
        stack: list[str] = []

        def visit(node: str) -> list[str] | None:
            color[node] = 1
            stack.append(node)
            for nxt in sorted(graph.get(node, ())):
                state = color.get(nxt, 0)
                if state == 1:
                    return stack[stack.index(nxt):] + [nxt]
                if state == 0:
                    found = visit(nxt)
                    if found:
                        return found
            stack.pop()
            color[node] = 2
            return None

        for node in sorted(graph):
            if color.get(node, 0) == 0:
                found = visit(node)
                if found:
                    return found
        return None


# ----------------------------------------------------------------------
# metric-name
# ----------------------------------------------------------------------

# Direct registration on the registry: `.counter("...")`, `r.gauge(`,
# `Registry::global().timer(` -- the name must be a string literal
# right there.  The scoped_* helpers are the one sanctioned way to
# build a dynamic name (obs validates the dynamic segment at
# construction; the lint validates the literal parts here).
_DIRECT_REG_RE = re.compile(
    r"(?:\.|->|::)\s*(counter|gauge|histogram|timer)\s*\(")
_SCOPED_REG_RE = re.compile(
    r"(?:\.|->|::)\s*(scoped_counter|scoped_gauge|scoped_timer)\s*\(")

_SEGMENT = r"[a-z][a-z0-9_]*"
_NAME_RE = re.compile(
    r"rtr\.(%s)\.(%s)(\.(%s)){0,2}$" % (_SEGMENT, _SEGMENT, _SEGMENT))

_README_ROW_RE = re.compile(r"^\|\s*`([a-z0-9_.<>]+)`\s*\|\s*([^|]+?)\s*\|")


class Registration:
    """One metric registration site (literal or scoped template)."""

    def __init__(self, path: str, line: int, name: str, volatile: bool,
                 bounds: str | None = None):
        self.path = path
        self.line = line
        self.name = name          # template: wildcard segment spelled '*'
        self.volatile = volatile
        self.bounds = bounds      # histogram bucket family, else None

    def matches(self, concrete: str) -> bool:
        if "*" not in self.name:
            return self.name == concrete
        pattern = re.escape(self.name).replace(r"\*", _SEGMENT)
        return re.fullmatch(pattern, concrete) is not None


class MetricNamePass:
    rule_id = "metric-name"
    description = ("obs series name violating the rtr.<layer>.<noun> "
                   "grammar, duplicate or dynamic registration, or "
                   "drift vs README registry / bench/baseline.json")

    def _layer_names(self, model: ProjectModel) -> set[str]:
        try:
            doc = load_toml(os.path.join(model.root,
                                         model.config.layers_toml))
        except (OSError, ValueError):
            return set()
        return set(doc.get("layers", {})) | {"bench"}

    # -- extraction ----------------------------------------------------

    def _skip_ws(self, raw: str, i: int) -> int:
        while i < len(raw) and raw[i] in " \t\n\r":
            i += 1
        return i

    def _call_tail(self, masked: str, open_paren: int) -> str:
        """Masked argument text of the call starting at '('."""
        depth = 0
        for i in range(open_paren, len(masked)):
            if masked[i] == "(":
                depth += 1
            elif masked[i] == ")":
                depth -= 1
                if depth == 0:
                    return masked[open_paren:i + 1]
        return masked[open_paren:]

    def collect(self, model: ProjectModel):
        """Returns (registrations, findings-from-extraction)."""
        cfg = model.config
        regs: list[Registration] = []
        findings: list[Finding] = []
        for rel in model.file_list():
            in_scope = (any(rel.startswith(d + "/")
                            for d in cfg.metric_dirs) or
                        rel in cfg.metric_extra_files)
            if not in_scope or \
                    any(rel.startswith(p)
                        for p in cfg.metric_exempt_prefixes):
                continue
            sf = model.files[rel]
            for m in _SCOPED_REG_RE.finditer(sf.masked):
                line = sf.line_of_offset(m.start(1))
                args = self._scoped_literals(sf, m.end())
                if args is None:
                    findings.append(Finding(
                        rel, line, self.rule_id,
                        f"{m.group(1)}: the layer and leaf arguments "
                        "must be string literals at the call site so "
                        "the constructed name is lintable"))
                    continue
                layer, leaf = args
                regs.append(Registration(
                    rel, line, f"rtr.{layer}.*.{leaf}",
                    volatile=m.group(1) == "scoped_timer" or
                    "kVolatile" in self._call_tail(sf.masked,
                                                   m.end() - 1)))
            for m in _DIRECT_REG_RE.finditer(sf.masked):
                # A scoped_* call's inner 'counter(' never matches here
                # (the preceding '_' fails the member-access prefix).
                line = sf.line_of_offset(m.start(1))
                q = self._skip_ws(sf.raw, m.end())
                name = ProjectModel.string_literal_at(sf.raw, q)
                if name is None:
                    findings.append(Finding(
                        rel, line, self.rule_id,
                        f"{m.group(1)}() registered with a non-literal "
                        "name: dynamic names are invisible to this lint; "
                        "route them through obs::scoped_counter/"
                        "scoped_gauge/scoped_timer (validated at "
                        "construction) or inline the literal"))
                    continue
                tail = self._call_tail(sf.masked, m.end() - 1)
                volatile = (m.group(1) == "timer" or
                            "kVolatile" in tail)
                bounds = None
                if m.group(1) == "histogram":
                    bounds = self._histogram_bounds(tail)
                    if bounds is None and not volatile:
                        findings.append(Finding(
                            rel, line, self.rule_id,
                            f"histogram '{name}' registered with bucket "
                            "bounds this lint cannot parse; pass "
                            "obs::size_bounds(), obs::latency_ns_bounds() "
                            "or a braced literal at the call site so the "
                            "README registry's bounds stay "
                            "cross-checkable"))
                regs.append(Registration(rel, line, name,
                                         volatile=volatile, bounds=bounds))
        return regs, findings

    @staticmethod
    def _histogram_bounds(tail: str) -> str | None:
        """Bucket-bounds family of a histogram registration: the named
        helper spelled at the call site, or the element count of a
        braced literal.  The README registry's kind cell must spell the
        same family as `histogram(<family>)`."""
        if "latency_ns_bounds" in tail:
            return "latency_ns"
        if "size_bounds" in tail:
            return "size"
        m = re.search(r"\{([^{}]*)\}", tail)
        if m:
            inner = m.group(1).strip()
            n = 0 if not inner else inner.count(",") + 1
            return f"{n} bounds"
        return None

    def _scoped_literals(self, sf, after_name: int):
        """Literal (layer, leaf) of scoped_*(L, dynamic, leaf), or None."""
        q = self._skip_ws(sf.raw, after_name)
        layer = ProjectModel.string_literal_at(sf.raw, q)
        if layer is None:
            return None
        # Walk the masked text to the 2nd top-level comma, then read the
        # third argument's literal from the raw text.
        depth = 1
        commas = 0
        i = after_name
        while i < len(sf.masked) and depth > 0:
            c = sf.masked[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif c == "," and depth == 1:
                commas += 1
                if commas == 2:
                    leaf = ProjectModel.string_literal_at(
                        sf.raw, self._skip_ws(sf.raw, i + 1))
                    return None if leaf is None else (layer, leaf)
            i += 1
        return None

    # -- the pass ------------------------------------------------------

    def run(self, model: ProjectModel) -> list[Finding]:
        layers = self._layer_names(model)
        regs, findings = self.collect(model)

        # Grammar, per registration site.
        for r in regs:
            probe = r.name.replace("*", "dynamic")
            m = _NAME_RE.fullmatch(probe)
            if not m:
                findings.append(Finding(
                    r.path, r.line, self.rule_id,
                    f"metric '{r.name}' violates the naming grammar "
                    "rtr.<layer>.<noun>[.<verb>] (segments "
                    "[a-z][a-z0-9_]*, at most four after 'rtr')"))
            elif layers and m.group(1) not in layers:
                findings.append(Finding(
                    r.path, r.line, self.rule_id,
                    f"metric '{r.name}': '{m.group(1)}' is not a "
                    "declared layer (tools/lint/layers.toml) or "
                    "'bench'"))

        # Duplicate registrations of one name from different sites.
        first: dict[str, Registration] = {}
        for r in regs:
            if "*" in r.name:
                continue
            prev = first.get(r.name)
            if prev is None:
                first[r.name] = r
            elif (prev.path, prev.line) != (r.path, r.line):
                findings.append(Finding(
                    r.path, r.line, self.rule_id,
                    f"metric '{r.name}' is also registered at "
                    f"{prev.path}:{prev.line}; one series must have "
                    "one owning call site (share the reference, or "
                    "rename one of them)"))

        findings += self._check_baseline(model, regs)
        findings += self._check_readme(model, regs)
        return findings

    def _check_baseline(self, model, regs) -> list[Finding]:
        rel = model.config.baseline_json
        path = os.path.join(model.root, rel)
        if not os.path.exists(path):
            return []
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as e:
            return [_model_finding(rel, 1, self.rule_id,
                                   f"unparsable baseline: {e}")]
        findings = []
        names = set()
        for bench in doc.get("benches", {}).values():
            names |= set(bench.get("metrics", {}))
        for name in sorted(names):
            if not any(r.matches(name) for r in regs):
                findings.append(_model_finding(
                    rel, _line_of(raw, f'"{name}"'), self.rule_id,
                    f"baseline series '{name}' is not registered "
                    "anywhere in the tree: the perf gate is comparing "
                    "a ghost; refresh the baseline or restore the "
                    "metric"))
        return findings

    def _check_readme(self, model, regs) -> list[Finding]:
        rel = model.config.readme_md
        path = os.path.join(model.root, rel)
        if not os.path.exists(path):
            return []
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        section = self._registry_section(raw)
        if section is None:
            return [_model_finding(
                rel, 1, self.rule_id,
                "README has no 'Metrics registry' table; every stable "
                "series must be documented there (the metric-name pass "
                "cross-checks it)")]
        start_line, body = section
        documented: list[tuple[str, str, int]] = []
        for i, line in enumerate(body.splitlines()):
            m = _README_ROW_RE.match(line)
            if m and not m.group(1).startswith("rtr.<"):
                documented.append((m.group(1), m.group(2).strip(),
                                   start_line + i))
        findings = []
        templates = [(re.sub(r"<[a-z0-9_]+>", "*", name), kind, line)
                     for name, kind, line in documented]
        for name, _, line in templates:
            probe = name.replace("*", "dynamic")
            if not _NAME_RE.fullmatch(probe):
                findings.append(_model_finding(
                    rel, line, self.rule_id,
                    f"registry entry '{name}' violates the naming "
                    "grammar rtr.<layer>.<noun>[.<verb>]"))
                continue
            if not any(r.name == name or r.matches(name) for r in regs):
                findings.append(_model_finding(
                    rel, line, self.rule_id,
                    f"registry entry '{name}' is not registered "
                    "anywhere in the tree; delete the stale row or "
                    "restore the metric"))
        for r in regs:
            if r.volatile:
                continue
            row = next((t for t in templates
                        if t[0] == r.name or
                        Registration("", 0, t[0], False).matches(r.name)),
                       None)
            if row is None:
                findings.append(Finding(
                    r.path, r.line, self.rule_id,
                    f"stable metric '{r.name}' is missing from the "
                    "README 'Metrics registry' table: undocumented "
                    "series silently fall out of perf-gate coverage"))
            elif r.bounds is not None and \
                    row[1] != f"histogram({r.bounds})":
                findings.append(Finding(
                    r.path, r.line, self.rule_id,
                    f"histogram '{r.name}' uses {r.bounds} buckets here "
                    f"but the README registry row (line {row[2]}) "
                    f"documents it as '{row[1]}'; spell the kind cell "
                    f"'histogram({r.bounds})' so the table tracks the "
                    "bucket bounds"))
        return findings

    @staticmethod
    def _registry_section(raw: str):
        lines = raw.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("#") and "Metrics registry" in line:
                for j in range(i + 1, len(lines)):
                    if lines[j].startswith("#"):
                        return i + 2, "\n".join(lines[i + 1:j])
                return i + 2, "\n".join(lines[i + 1:])
        return None


# ----------------------------------------------------------------------
# wire-schema
# ----------------------------------------------------------------------

_INT_TOKEN_RE = re.compile(r"^\(?\s*(0[xX][0-9a-fA-F]+|\d+)\s*"
                           r"[uUlL]*\s*\)?$")


def _eval_int(expr: str) -> int | None:
    """Evaluates the tiny constant grammar used at wire sites:
    integer literals (decimal/hex, with suffixes) and left shifts."""
    parts = expr.split("<<")
    values = []
    for part in parts:
        m = _INT_TOKEN_RE.match(part.strip())
        if not m:
            return None
        values.append(int(m.group(1), 0))
    result = values[0]
    for v in values[1:]:
        result <<= v
    return result


class WireSchemaPass:
    rule_id = "wire-schema"
    description = ("wire tag/version/bound constant disagreeing with "
                   "tools/lint/wire_schema.toml or its mirror sites")

    def run(self, model: ProjectModel) -> list[Finding]:
        toml_rel = model.config.wire_schema_toml
        try:
            doc = load_toml(os.path.join(model.root, toml_rel))
        except (OSError, ValueError) as e:
            return [_model_finding(toml_rel, 1, self.rule_id,
                                   f"cannot load wire schema: {e}")]
        values = doc.get("values", {})
        sites = doc.get("sites", {})
        findings: list[Finding] = []

        for name in sorted(values):
            if name not in sites or not sites[name]:
                findings.append(_model_finding(
                    toml_rel, 1, self.rule_id,
                    f"schema value '{name}' lists no code sites; pin "
                    "at least one extractor in [sites]"))
        for name in sorted(sites):
            if name not in values:
                findings.append(_model_finding(
                    toml_rel, 1, self.rule_id,
                    f"[sites] entry '{name}' has no [values] entry"))
                continue
            expected = values[name]
            for site in sites[name]:
                findings += self._check_site(model, name, expected, site)

        findings += self._check_endpoints(model, doc)
        return findings

    def _check_site(self, model, name, expected, site) -> list[Finding]:
        toml_rel = model.config.wire_schema_toml
        try:
            file_part, extractor = site.split("#", 1)
            kind, _, arg = extractor.partition(":")
        except ValueError:
            return [_model_finding(toml_rel, 1, self.rule_id,
                                   f"malformed site '{site}' for "
                                   f"'{name}'")]
        sf = model.files.get(file_part)
        if sf is None:
            return [_model_finding(
                toml_rel, 1, self.rule_id,
                f"'{name}' site {file_part} is not in the tree")]
        if kind == "symbol":
            got = self._extract_symbol(sf, arg)
        elif kind == "enum":
            got = self._extract_enum_count(sf, arg)
        elif kind == "cases":
            got = self._extract_case_count(sf, arg)
        elif kind == "check_count":
            got = self._extract_check_count(sf, arg)
        else:
            return [_model_finding(toml_rel, 1, self.rule_id,
                                   f"unknown extractor '{kind}' for "
                                   f"'{name}'")]
        if got is None:
            return [Finding(
                file_part, 1, self.rule_id,
                f"cannot extract '{name}' via {kind}:{arg} -- the "
                "anchor moved; update tools/lint/wire_schema.toml "
                "alongside the code")]
        value, line = got
        if value != expected:
            return [Finding(
                file_part, line, self.rule_id,
                f"'{name}' is {value} here but the canonical schema "
                f"(tools/lint/wire_schema.toml) says {expected}; a "
                "wire-format change must update every mirror site and "
                "the schema in one commit")]
        return []

    # -- extractors ----------------------------------------------------

    @staticmethod
    def _extract_symbol(sf, symbol):
        m = re.search(r"\b%s\s*=\s*([^;,}]+)[;,}]" % re.escape(symbol),
                      sf.masked)
        if not m:
            return None
        value = _eval_int(m.group(1).strip())
        if value is None:
            return None
        return value, sf.line_of_offset(m.start())

    @staticmethod
    def _extract_enum_count(sf, enum_name):
        m = re.search(r"\benum\s+(?:class\s+)?%s\b[^{]*\{" %
                      re.escape(enum_name), sf.masked)
        if not m:
            return None
        end = sf.masked.find("}", m.end())
        if end < 0:
            return None
        body = sf.masked[m.end():end]
        count = sum(1 for item in body.split(",") if item.strip())
        return count, sf.line_of_offset(m.start())

    @staticmethod
    def _extract_case_count(sf, enum_name):
        hits = list(re.finditer(r"\bcase\s+%s\s*::" % re.escape(enum_name),
                                sf.masked))
        if not hits:
            return None
        return len(hits), sf.line_of_offset(hits[0].start())

    @staticmethod
    def _extract_check_count(sf, arg):
        fn, _, idx_s = arg.partition("/")
        try:
            idx = int(idx_s)
        except ValueError:
            return None
        body = ProjectModel.find_function_body(sf.masked, fn)
        if body is None:
            return None
        open_b, close_b = body
        calls = list(re.finditer(r"\bcheck_count\s*\(",
                                 sf.masked[open_b:close_b]))
        if len(calls) < idx:
            return None
        call = calls[idx - 1]
        start = open_b + call.end()
        depth = 1
        args: list[str] = [""]
        i = start
        while i < close_b and depth > 0:
            c = sf.masked[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            elif c == "," and depth == 1:
                args.append("")
                i += 1
                continue
            args[-1] += c
            i += 1
        if len(args) < 2:
            return None
        value = _eval_int(args[1].strip())
        if value is None:
            return None
        return value, sf.line_of_offset(open_b + call.start())

    def _check_endpoints(self, model, doc) -> list[Finding]:
        endpoints = doc.get("endpoints", {})
        declared = set(endpoints.get("names", ()))
        rel = endpoints.get("registered_in", "")
        if not declared or not rel:
            return []
        sf = model.files.get(rel)
        toml_rel = model.config.wire_schema_toml
        if sf is None:
            return [_model_finding(
                toml_rel, 1, self.rule_id,
                f"[endpoints] registered_in file {rel} is not in the "
                "tree")]
        found: dict[str, int] = {}
        for m in re.finditer(r"\bEndpoint\s*\(", sf.masked):
            i = m.end()
            while i < len(sf.raw) and sf.raw[i] in " \t\n\r":
                i += 1
            lit = ProjectModel.string_literal_at(sf.raw, i)
            if lit is not None:
                found.setdefault(lit, sf.line_of_offset(m.start()))
        findings = []
        for name in sorted(declared - set(found)):
            findings.append(_model_finding(
                toml_rel, 1, self.rule_id,
                f"endpoint '{name}' is declared in the schema but not "
                f"constructed in {rel}"))
        for name in sorted(set(found) - declared):
            findings.append(Finding(
                rel, found[name], self.rule_id,
                f"endpoint '{name}' is constructed here but missing "
                "from tools/lint/wire_schema.toml [endpoints]; declare "
                "it (and its body codec constants) in the schema"))
        return findings


ALL_PASSES = (LayerViolationPass(), MetricNamePass(), WireSchemaPass())
