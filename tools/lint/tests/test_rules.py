"""Self-tests for the determinism linter.

Every rule is exercised against a seeded *bad* fixture (must produce
findings at known lines) and a *good* fixture (must be silent), so the
linter itself is regression-tested the same way the C++ engine is.
Runnable with either of:

    python3 -m unittest discover -s tools/lint/tests -t .
    python3 -m pytest tools/lint/tests
"""

from __future__ import annotations

import os
import subprocess
import sys
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(_HERE)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from tools.lint.engine import lint_text, mask_comments_and_strings  # noqa: E402
from tools.lint.rules import ALL_RULES, Config  # noqa: E402

FIXTURES = os.path.join(_HERE, "fixtures")


def lint_fixture(name: str, config: Config | None = None):
    path = os.path.join(FIXTURES, name)
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    return lint_text(name, text, ALL_RULES, config or Config())


def rules_of(findings):
    return sorted(f.rule for f in findings)


class MaskingTest(unittest.TestCase):
    def test_comments_and_strings_blanked_newlines_kept(self):
        text = 'int x; // std::rand()\nconst char* s = "time(";\n/* now() */\n'
        masked = mask_comments_and_strings(text)
        self.assertEqual(len(masked), len(text))
        self.assertEqual(masked.count("\n"), text.count("\n"))
        self.assertNotIn("rand", masked)
        self.assertNotIn("time(", masked)
        self.assertNotIn("now()", masked)
        self.assertIn("int x;", masked)

    def test_escaped_quote_does_not_derail(self):
        masked = mask_comments_and_strings('f("a\\"b"); g(h);\n')
        self.assertIn("g(h);", masked)


class UnorderedIterationTest(unittest.TestCase):
    def test_bad_fixture_flags_range_for_and_iterator_walk(self):
        findings = lint_fixture("bad_unordered_iteration.cc")
        self.assertEqual(rules_of(findings),
                         ["unordered-iteration", "unordered-iteration"])
        self.assertEqual(sorted(f.line for f in findings), [9, 13])

    def test_good_fixture_is_clean(self):
        self.assertEqual(lint_fixture("good_unordered_iteration.cc"), [])


class BannedRandomTest(unittest.TestCase):
    def test_bad_fixture(self):
        findings = lint_fixture("bad_random.cc")
        self.assertEqual(rules_of(findings),
                         ["banned-random"] * 3)
        self.assertEqual(sorted(f.line for f in findings), [6, 7, 8])

    def test_good_fixture_is_clean(self):
        self.assertEqual(lint_fixture("good_random.cc"), [])

    def test_allowed_path_is_exempt(self):
        findings = lint_fixture("bad_random.cc")
        self.assertTrue(findings)
        path = os.path.join(FIXTURES, "bad_random.cc")
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        self.assertEqual(
            lint_text("src/common/rng.h", text, ALL_RULES, Config()), [])


class WallClockTest(unittest.TestCase):
    def test_bad_fixture(self):
        findings = lint_fixture("bad_wall_clock.cc")
        self.assertEqual(rules_of(findings), ["wall-clock"] * 3)
        self.assertEqual(sorted(f.line for f in findings), [6, 7, 8])

    def test_good_fixture_is_clean(self):
        self.assertEqual(lint_fixture("good_wall_clock.cc"), [])

    def test_obs_paths_are_exempt(self):
        path = os.path.join(FIXTURES, "bad_wall_clock.cc")
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        self.assertEqual(
            lint_text("src/obs/metrics.h", text, ALL_RULES, Config()), [])


class FaultPlanFixtureTest(unittest.TestCase):
    """Fault-injection code is the canonical tempted consumer of ambient
    entropy and host clocks (jittered loss, wall-clock backoff); the
    paired fixtures pin both rules on exactly that shape of code."""

    def test_bad_fixture_flags_entropy_and_clock_reads(self):
        findings = lint_fixture("bad_fault_plan.cc")
        self.assertEqual(rules_of(findings),
                         ["banned-random", "banned-random",
                          "wall-clock", "wall-clock"])
        by_rule = {}
        for f in findings:
            by_rule.setdefault(f.rule, []).append(f.line)
        self.assertEqual(sorted(by_rule["banned-random"]), [10, 15])
        self.assertEqual(sorted(by_rule["wall-clock"]), [12, 13])

    def test_good_fixture_is_clean(self):
        self.assertEqual(lint_fixture("good_fault_plan.cc"), [])


class MutableStaticTest(unittest.TestCase):
    def test_bad_fixture(self):
        findings = lint_fixture("bad_mutable_static.cc")
        self.assertEqual(rules_of(findings), ["mutable-static"] * 2)
        self.assertEqual(sorted(f.line for f in findings), [5, 8])

    def test_good_fixture_is_clean(self):
        self.assertEqual(lint_fixture("good_mutable_static.cc"), [])


class MissingExpectTest(unittest.TestCase):
    def config(self):
        return Config(header_lookup={
            "bad_missing_expect.cc":
                os.path.join(FIXTURES, "bad_missing_expect.h"),
        })

    def test_bad_fixture_flags_expect_free_public_functions(self):
        findings = lint_fixture("bad_missing_expect.cc", self.config())
        self.assertEqual(rules_of(findings), ["missing-expect"] * 2)
        names = sorted(f.message.split("'")[1] for f in findings)
        self.assertEqual(names, ["public_entry", "run"])

    def test_private_and_local_helpers_exempt(self):
        findings = lint_fixture("bad_missing_expect.cc", self.config())
        for f in findings:
            self.assertNotIn("helper", f.message)
            self.assertNotIn("checked", f.message)


class AllowAnnotationTest(unittest.TestCase):
    def test_reason_free_or_unknown_allow_is_a_finding(self):
        findings = lint_fixture("bad_allow.cc")
        self.assertEqual(
            rules_of(findings),
            ["bad-allow", "bad-allow", "banned-random", "banned-random"])

    def test_allow_suppresses_same_and_next_line(self):
        text = ("// lint:allow(banned-random) — seeded test vector\n"
                "int x = std::rand();\n")
        self.assertEqual(lint_text("a.cc", text, ALL_RULES, Config()), [])
        inline = "int x = std::rand();  // lint:allow(banned-random) — ok\n"
        self.assertEqual(lint_text("a.cc", inline, ALL_RULES, Config()), [])

    def test_allow_does_not_leak_past_next_line(self):
        text = ("// lint:allow(banned-random) — only covers next line\n"
                "int x = 0;\n"
                "int y = std::rand();\n")
        findings = lint_text("a.cc", text, ALL_RULES, Config())
        self.assertEqual(rules_of(findings), ["banned-random"])


class CliTest(unittest.TestCase):
    """The CLI exits 0 on clean trees and non-zero on each bad fixture."""

    CLI = os.path.join(_REPO_ROOT, "tools", "lint_determinism.py")

    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, self.CLI, *args],
            capture_output=True, text=True, cwd=_REPO_ROOT, check=False)

    def test_exits_zero_on_good_fixtures(self):
        for name in ("good_unordered_iteration.cc", "good_random.cc",
                     "good_wall_clock.cc", "good_mutable_static.cc",
                     "good_fault_plan.cc"):
            proc = self.run_cli(os.path.join(FIXTURES, name))
            self.assertEqual(proc.returncode, 0,
                             f"{name}: {proc.stdout}{proc.stderr}")

    def test_exits_nonzero_on_each_bad_fixture(self):
        for name in ("bad_unordered_iteration.cc", "bad_random.cc",
                     "bad_wall_clock.cc", "bad_mutable_static.cc",
                     "bad_allow.cc", "bad_fault_plan.cc"):
            proc = self.run_cli(os.path.join(FIXTURES, name))
            self.assertEqual(proc.returncode, 1,
                             f"{name}: {proc.stdout}{proc.stderr}")
            self.assertIn(":", proc.stdout)

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ("unordered-iteration", "banned-random", "wall-clock",
                     "mutable-static", "missing-expect"):
            self.assertIn(rule, proc.stdout)


if __name__ == "__main__":
    unittest.main()
