// Seeded bad fixture: a fault plan that draws ambient randomness and
// paces retry backoff off the host clock -- either one breaks the
// bit-exact replay of an injected-fault schedule from its seed.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double next_fault_delay_ms() {
  std::random_device entropy;                        // finding: banned-random
  const unsigned jitter = entropy() % 100u;
  const auto t0 = std::chrono::steady_clock::now();  // finding: wall-clock
  const std::time_t wall = time(nullptr);            // finding: wall-clock
  (void)t0;
  const int burst = std::rand() % 5;                 // finding: banned-random
  return static_cast<double>(jitter + burst) +
         static_cast<double>(wall % 7);
}
