// Seeded good fixture: durations and look-alikes without clock reads.
#include <chrono>

long durations(long uptime_ms) {
  // "time(" inside this comment must not count, nor does uptime_ms(
  // below read any clock: the boundary regex requires a bare token.
  const std::chrono::milliseconds d(uptime_ms);
  std::chrono::steady_clock::time_point unset;  // type name only
  (void)unset;
  // lint:allow(wall-clock) — fixture demonstrating a justified read
  const auto allowed = std::chrono::steady_clock::now();
  (void)allowed;
  return d.count();
}
