// Seeded good fixture: unordered containers used for membership only,
// or iterated under a justified allowance.
#include <algorithm>
#include <iostream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

int lookup_only(const std::unordered_map<int, int>& unused) {
  std::unordered_set<int> seen;
  seen.insert(7);
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  // A comment mentioning "for (x : counts)" must not trip the rule.
  int total = 0;
  if (seen.count(7) != 0) total += counts.at(1);
  std::vector<int> keys{3, 1, 2};
  std::sort(keys.begin(), keys.end());
  for (int k : keys) total += k;  // sorted vector: fine
  // lint:allow(unordered-iteration) — summing is order-independent
  for (const auto& kv : counts) total += kv.second;
  return total;
}
