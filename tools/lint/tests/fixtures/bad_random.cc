// Seeded bad fixture: ambient randomness.
#include <cstdlib>
#include <random>

int ambient() {
  std::random_device rd;                  // finding
  std::srand(rd());                       // findings (srand + rd above)
  return std::rand();                     // finding
}
