// Seeded bad fixture: public entry points without RTR_EXPECT.
#include "bad_missing_expect.h"

#define RTR_EXPECT(cond) (void)(cond)

namespace fix {

namespace {
int local_helper(int v) { return v; }  // not in header: exempt
}  // namespace

int public_entry(int v) {  // finding
  return local_helper(v) + 1;
}

int Engine::run(int v) {  // finding
  return v * 2;
}

int Engine::checked(int v) {
  RTR_EXPECT(v >= 0);
  return v * 3;
}

int Engine::helper(int v) {  // private: exempt
  return v - 1;
}

}  // namespace fix
