// Seeded bad fixture: suppressions that are not justified.
#include <cstdlib>

int unjustified() {
  // lint:allow(banned-random)
  int a = std::rand();
  // lint:allow(no-such-rule) — typo in the rule id
  int b = std::rand();
  return a + b;
}
