// Paired header for the missing-expect fixtures.
#pragma once

namespace fix {

int public_entry(int v);

class Engine {
 public:
  int run(int v);
  int checked(int v);

 private:
  int helper(int v);
};

}  // namespace fix
