void reg() {
  obs::Registry::global().counter("rtr.m.ops").inc();
  obs::Registry::global().counter("rtr.m.extra").inc();
}
