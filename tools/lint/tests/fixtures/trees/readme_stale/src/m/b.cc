void reg_allowed() {
  // lint:allow(metric-name) — probe series, deliberately undocumented
  obs::Registry::global().counter("rtr.m.extra2").inc();
}
