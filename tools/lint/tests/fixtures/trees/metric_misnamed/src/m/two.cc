void register_allowed() {
  // lint:allow(metric-name) — legacy dashboard name, migration pending
  obs::Registry::global().counter("legacy-name").inc();
}
