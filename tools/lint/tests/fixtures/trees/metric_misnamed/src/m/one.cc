void register_bad() {
  obs::Registry::global().counter("m.bad.name").inc();
}
