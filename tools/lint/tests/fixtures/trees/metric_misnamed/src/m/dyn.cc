void register_dynamic(const char* name) {
  obs::Registry::global().counter(name).inc();
}
