void reg() { obs::Registry::global().counter("rtr.m.ops").inc(); }
