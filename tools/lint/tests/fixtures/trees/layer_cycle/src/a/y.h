#pragma once
#include "a/x.h"
