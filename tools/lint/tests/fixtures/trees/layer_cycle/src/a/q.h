#pragma once
#include "a/p.h"
