// lint:allow(layer-violation) — seeded suppressed cycle for the self-test
#include "a/q.h"
