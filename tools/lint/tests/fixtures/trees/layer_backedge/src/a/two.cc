// lint:allow(layer-violation) — transitional edge, tracked in the tree issue
#include "b/b.h"
int a_two() { return b_value(); }
