#include "b/b.h"
int a_one() { return b_value(); }
