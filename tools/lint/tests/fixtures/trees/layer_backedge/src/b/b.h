#pragma once
inline int b_value() { return 2; }
