constexpr int kMagic = 6;
// lint:allow(wire-schema) — staged rollout; schema updated in the next commit
constexpr int kOther = 8;
