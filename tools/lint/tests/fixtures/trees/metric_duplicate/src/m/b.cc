void reg_b() { obs::Registry::global().counter("rtr.m.thing.count").inc(); }
