void reg_a() { obs::Registry::global().counter("rtr.m.thing.count").inc(); }
