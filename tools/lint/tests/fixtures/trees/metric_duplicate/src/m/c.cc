void reg_c() {
  // lint:allow(metric-name) — intentional shared series; one owner is a.cc
  obs::Registry::global().counter("rtr.m.thing.count").inc();
}
