void reg_allowed() {
  // lint:allow(metric-name) — legacy buckets, docs row deliberately stale
  obs::Registry::global().histogram("rtr.m.old", obs::latency_ns_bounds());
}
