void reg() {
  obs::Registry::global().histogram("rtr.m.sizes", obs::size_bounds());
  obs::Registry::global().histogram("rtr.m.lat", obs::size_bounds());
  obs::Registry::global().histogram("rtr.m.braced",
                                    std::vector<obs::Value>{1, 8, 64});
}
