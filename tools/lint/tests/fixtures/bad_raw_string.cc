// Violations adjacent to raw strings must still be caught: masking the
// literal may not swallow the surrounding code.
#include <cstdlib>
#include <string>

int after_raw_same_line() {
  const std::string s = R"(harmless body)"; return std::rand();  // line 7
}

int between_raws() {
  const std::string a = R"x(one)x";
  const int v = std::rand();  // line 12
  const std::string b = R"x(two)x";
  return v + static_cast<int>(a.size() + b.size());
}
