// Raw-string literals must be masked wholesale: none of the banned
// tokens below is real code.
#include <string>

std::string plain_raw() {
  // Plain R"(...)" body mentioning banned identifiers.
  return R"(std::rand() and srand(7) and random_device)";
}

std::string delimited_raw() {
  // Delimited form: the body contains )" which only a delimiter-aware
  // masker survives.
  return R"x(quoted )" then std::rand() inside)x";
}

std::string prefixed_raw() {
  return u8R"(time(nullptr) inside a u8R literal)";
}

std::string multi_line_raw() {
  return R"(first line
std::rand() on a masked continuation line
last line)";
}

// A line comment continued with a backslash \
   splices std::rand() into the comment, not into code.

int not_a_raw_prefix() {
  // FOOR"..." is an identifier followed by a string, not a raw literal;
  // the masker must not eat to the next )" and unmask real code.
  const std::string FOOR = "x";
  return static_cast<int>(FOOR.size());
}
