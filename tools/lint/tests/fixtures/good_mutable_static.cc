// Seeded good fixture: const statics, static references, functions.
#include <string>

struct Registry {
  static Registry& global();
  int& counter(const std::string& name);
};

inline int pure(int x) { return x + 1; }

int sanctioned() {
  static const int kBase = 41;
  static constexpr int kStep = 1;
  static int& slot = Registry::global().counter("x");  // bound once
  // lint:allow(mutable-static) — fixture demonstrating justified state
  static int justified = 0;
  ++justified;
  return kBase + kStep + slot + justified;
}
