// Seeded good fixture: the same fault-plan decisions drawn from an
// explicitly seeded engine and paced in simulated milliseconds, so
// (seed, attempt) alone replays the schedule bit-exactly.
#include <cstdint>
#include <random>

double next_fault_delay_ms(std::uint64_t seed, int attempt) {
  std::mt19937_64 engine(seed);
  const double jitter = static_cast<double>(engine() % 100u) / 10.0;
  // Exponential backoff in *simulated* time: pure arithmetic on the
  // attempt index, no host clock anywhere.
  double backoff_ms = 10.0;
  for (int i = 1; i < attempt; ++i) backoff_ms *= 2.0;
  return backoff_ms + jitter;
}
