// Seeded bad fixture: mutable process-wide state.
#include <cstddef>
#include <string>

inline std::string g_name = "x";  // finding: mutable inline global

std::size_t bump() {
  static std::size_t calls = 0;  // finding: mutable function-local
  return ++calls;
}
