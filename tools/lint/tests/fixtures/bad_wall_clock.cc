// Seeded bad fixture: wall-clock reads outside src/obs.
#include <chrono>
#include <ctime>

long stamps() {
  const auto t0 = std::chrono::steady_clock::now();   // finding
  const std::time_t t1 = time(nullptr);               // finding
  const long t2 = clock();                            // finding
  (void)t0;
  return static_cast<long>(t1) + t2;
}
