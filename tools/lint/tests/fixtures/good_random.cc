// Seeded good fixture: explicitly seeded engine; look-alike
// identifiers (operand, brand) must not trip the word-boundary regex.
#include <random>

int seeded(unsigned long long seed) {
  std::mt19937_64 engine(seed);
  int operand = static_cast<int>(engine());
  int brand(3);  // not rand(
  return operand + brand;
}
