// Seeded bad fixture: unordered iteration feeding output.
#include <iostream>
#include <unordered_map>
#include <unordered_set>

void emit_counts(const std::unordered_map<int, int>& unused) {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  for (const auto& kv : counts) {  // finding: hash-order output
    std::cout << kv.first << " " << kv.second << "\n";
  }
  std::unordered_set<int> seen;
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // finding
    std::cout << *it;
  }
}
