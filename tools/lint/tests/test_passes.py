"""Self-tests for the whole-repo passes and the raw-string masker.

Each pass is exercised against a seeded fixture *tree* under
fixtures/trees/<case>/ -- a miniature repo with its own checked-in
models (layers.toml, wire_schema.toml, baseline.json, README.md).
Every case asserts both directions: the seeded violation IS found at
its known file, and a lint:allow annotation with a reason suppresses
the sibling violation.  Runnable with either of:

    python3 -m unittest discover -s tools/lint/tests -t .
    python3 -m pytest tools/lint/tests
"""

from __future__ import annotations

import os
import sys
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(_HERE)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from tools.lint.engine import lint_text, mask_comments_and_strings  # noqa: E402
from tools.lint.passes import LayerViolationPass  # noqa: E402
from tools.lint.project import ProjectModel  # noqa: E402
from tools.lint.rules import ALL_RULES, Config  # noqa: E402
from tools.lint_determinism import run_passes  # noqa: E402

FIXTURES = os.path.join(_HERE, "fixtures")
TREES = os.path.join(FIXTURES, "trees")


def lint_fixture(name: str):
    path = os.path.join(FIXTURES, name)
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    return lint_text(name, text, ALL_RULES, Config())


def tree_findings(case: str):
    """Runs every pass (with lint:allow suppression, exactly as the
    CLI does) over one fixture tree."""
    model = ProjectModel(os.path.join(TREES, case))
    return run_passes(model)


class RawStringMaskingTest(unittest.TestCase):
    """Satellite: the masker's raw-string and line-continuation gaps."""

    def test_good_fixture_is_silent(self):
        self.assertEqual(lint_fixture("good_raw_string.cc"), [])

    def test_violations_adjacent_to_raw_strings_still_fire(self):
        findings = lint_fixture("bad_raw_string.cc")
        self.assertEqual([(f.rule, f.line) for f in findings],
                         [("banned-random", 7), ("banned-random", 12)])

    def test_plain_raw_string_is_blanked(self):
        masked = mask_comments_and_strings('x(R"(std::rand())");')
        self.assertNotIn("rand", masked)
        self.assertIn("x(", masked)

    def test_delimited_raw_string_survives_inner_quote_paren(self):
        text = 'a(R"x(tail )" std::rand() body)x"); std::rand();'
        masked = mask_comments_and_strings(text)
        # The literal (with its embedded )") is blanked, the real call
        # after it is not.
        self.assertEqual(masked.count("rand"), 1)
        self.assertTrue(masked.rstrip().endswith("std::rand();"))

    def test_unterminated_raw_string_masks_to_eof(self):
        masked = mask_comments_and_strings('x(R"(never closed\nmore')
        self.assertNotIn("closed", masked)
        self.assertNotIn("more", masked)
        self.assertIn("\n", masked)  # newlines survive for line math

    def test_identifier_ending_in_r_is_not_a_prefix(self):
        text = 'FOOR"body" std::rand();'
        masked = mask_comments_and_strings(text)
        self.assertIn("FOOR", masked)
        self.assertIn("std::rand", masked)
        self.assertNotIn("body", masked)

    def test_backslash_continuation_extends_line_comment(self):
        text = "int a; // note \\\nstd::rand();\nint b;"
        masked = mask_comments_and_strings(text)
        self.assertNotIn("rand", masked)
        self.assertIn("int b;", masked)

    def test_length_and_newlines_preserved(self):
        text = ('R"(one\ntwo)" // c \\\ncont\n'
                'R"zz(a)z" still raw )zz" int x;\n')
        masked = mask_comments_and_strings(text)
        self.assertEqual(len(masked), len(text))
        self.assertEqual([i for i, c in enumerate(text) if c == "\n"],
                         [i for i, c in enumerate(masked) if c == "\n"])


class LayerViolationTreeTest(unittest.TestCase):
    def test_backedge_found_and_allow_suppresses(self):
        findings = tree_findings("layer_backedge")
        self.assertEqual(len(findings), 1, [f.render() for f in findings])
        f = findings[0]
        self.assertEqual((f.rule, f.path, f.line),
                         ("layer-violation", "src/a/one.cc", 1))
        self.assertIn("'a' must not include 'b/b.h'", f.message)
        # two.cc has the same edge under lint:allow — absent above.

    def test_include_cycle_found_and_allow_suppresses(self):
        findings = tree_findings("layer_cycle")
        self.assertEqual(len(findings), 1, [f.render() for f in findings])
        f = findings[0]
        self.assertEqual((f.rule, f.path), ("layer-violation", "src/a/x.h"))
        self.assertIn("include cycle", f.message)
        self.assertIn("src/a/y.h", f.message)
        # The p.h <-> q.h cycle is suppressed by the allow in p.h.

    def test_declared_cycle_is_rejected(self):
        cyc = LayerViolationPass._declared_cycle(
            {"a": {"b"}, "b": {"c"}, "c": {"a"}})
        self.assertIsNotNone(cyc)
        self.assertEqual(cyc[0], cyc[-1])
        self.assertIsNone(LayerViolationPass._declared_cycle(
            {"a": {"b"}, "b": set()}))


class MetricNameTreeTest(unittest.TestCase):
    def test_misnamed_and_dynamic_found_allow_suppresses(self):
        findings = tree_findings("metric_misnamed")
        got = {(f.path, f.line) for f in findings}
        self.assertEqual(got, {("src/m/one.cc", 2), ("src/m/dyn.cc", 2)},
                         [f.render() for f in findings])
        by_path = {f.path: f.message for f in findings}
        self.assertIn("violates the naming grammar",
                      by_path["src/m/one.cc"])
        self.assertIn("non-literal name", by_path["src/m/dyn.cc"])
        # two.cc's 'legacy-name' sits under lint:allow — absent above.

    def test_duplicate_registration_found_allow_suppresses(self):
        findings = tree_findings("metric_duplicate")
        self.assertEqual(len(findings), 1, [f.render() for f in findings])
        f = findings[0]
        self.assertEqual((f.rule, f.path), ("metric-name", "src/m/b.cc"))
        self.assertIn("also registered at src/m/a.cc:1", f.message)
        # c.cc registers the same series under lint:allow — absent.

    def test_histogram_bounds_cross_checked(self):
        findings = tree_findings("histogram_bounds")
        self.assertEqual(len(findings), 1, [f.render() for f in findings])
        f = findings[0]
        self.assertEqual((f.rule, f.path, f.line),
                         ("metric-name", "src/m/a.cc", 3))
        self.assertIn("'histogram(latency_ns)'", f.message)
        self.assertIn("'histogram(size)'", f.message)
        # rtr.m.sizes and rtr.m.braced match their rows — absent above;
        # b.cc's stale-bounds registration sits under lint:allow.

    def test_stale_baseline_name_found(self):
        findings = tree_findings("baseline_stale")
        self.assertEqual(len(findings), 1, [f.render() for f in findings])
        f = findings[0]
        self.assertEqual((f.rule, f.path), ("metric-name",
                                            "bench/baseline.json"))
        self.assertIn("'rtr.m.ghost'", f.message)
        self.assertGreater(f.line, 1)  # anchored at the stale key's line

    def test_readme_drift_both_directions(self):
        findings = tree_findings("readme_stale")
        rendered = [f.render() for f in findings]
        self.assertEqual(len(findings), 2, rendered)
        by_path = {f.path: f for f in findings}
        self.assertIn("'rtr.m.ghost' is not registered",
                      by_path["README.md"].message)
        self.assertIn("'rtr.m.extra' is missing from the README",
                      by_path["src/m/a.cc"].message)
        # b.cc's undocumented rtr.m.extra2 sits under lint:allow.


class WireSchemaTreeTest(unittest.TestCase):
    def test_mismatch_found_and_allow_suppresses(self):
        findings = tree_findings("wire_mismatch")
        self.assertEqual(len(findings), 1, [f.render() for f in findings])
        f = findings[0]
        self.assertEqual((f.rule, f.path, f.line),
                         ("wire-schema", "src/w/wire.cc", 1))
        self.assertIn("'magic' is 6 here", f.message)
        self.assertIn("says 5", f.message)
        # kOther (8 vs 7) sits under lint:allow — absent above.


class RealTreeTest(unittest.TestCase):
    """The passes must be clean on the actual repo, and the DOT
    artifact must be byte-deterministic."""

    def test_repo_is_clean(self):
        model = ProjectModel(_REPO_ROOT)
        findings = run_passes(model)
        self.assertEqual([f.render() for f in findings], [])

    def test_dot_is_byte_deterministic(self):
        a = ProjectModel(_REPO_ROOT)
        b = ProjectModel(_REPO_ROOT)
        unrestricted = LayerViolationPass().unrestricted(a)
        self.assertEqual(a.include_graph_dot(unrestricted),
                         b.include_graph_dot(unrestricted))
        self.assertIn('"spf" -> "graph"',
                      a.include_graph_dot(unrestricted))


if __name__ == "__main__":
    unittest.main()
