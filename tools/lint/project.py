"""Shared whole-repo project model for the multi-pass analyzer.

The line-rule engine (engine.py) reads one file at a time; the
whole-repo passes (passes.py) need the opposite view: every source file
of the tree, parsed once, with includes resolved and string literals
recoverable at exact offsets.  ProjectModel is that single cached view
-- file discovery, comment/string masking, include-graph construction
-- so N passes never re-read the tree N times.  It is also the single
source of truth for "the tree": CMake's lint target, the CI clang-tidy
step and the linter itself all take their file list from here (see
``lint_determinism.py --list-files``).

Python 3.11+ ships tomllib; older interpreters fall back to a tiny
subset parser that covers exactly the shapes layers.toml and
wire_schema.toml use ([section], key = int | string | [array]).
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

from tools.lint.engine import mask_comments_and_strings

# The repo tree, exactly once.  Every consumer -- lint passes, ctest
# registration, CMake's lint target, CI's clang-tidy file list -- goes
# through ProjectModel so the definition cannot fork.
TREE_DIRS = ("src", "bench", "tests", "tools")
SOURCE_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")

# Never part of the analyzed tree: build output and the linter's own
# seeded violation fixtures.
SKIPPED_DIR_PARTS = ("build", "build-asan", "build-rel", ".git",
                     "fixtures")

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)


@dataclass(frozen=True)
class Include:
    """One resolved ``#include "..."`` edge."""

    line: int       # 1-based line in the including file
    target: str     # the literal include path as written
    resolved: str   # repo-relative path of the included file, or ""


class SourceFile:
    """One parsed file: raw text, masked twin, resolved includes."""

    def __init__(self, rel_path: str, raw: str):
        self.rel_path = rel_path
        self.raw = raw
        self.masked = mask_comments_and_strings(raw)
        self.includes: list[Include] = []

    @property
    def module(self) -> str:
        """Layer-DAG node this file belongs to: ``src/<m>/...`` maps to
        ``<m>``, anything else to its top-level directory."""
        parts = self.rel_path.split("/")
        if parts[0] == "src" and len(parts) > 2:
            return parts[1]
        return parts[0]

    def line_of_offset(self, offset: int) -> int:
        return self.raw.count("\n", 0, offset) + 1


def _subset_toml_parse(text: str) -> dict:
    """Minimal TOML reader for environments without tomllib.

    Supports comments, [section] headers, and ``key = value`` where
    value is an integer, a double-quoted string, or a (possibly
    multi-line) array of those.  That is the complete grammar of
    layers.toml and wire_schema.toml.
    """
    def parse_scalar(tok: str):
        tok = tok.strip()
        if tok.startswith('"') and tok.endswith('"'):
            return tok[1:-1]
        return int(tok, 0)

    doc: dict = {}
    section = doc
    pending_key = None
    pending_items: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if pending_key is not None:
            # Inside a multi-line array.
            closed = line.endswith("]")
            body = line[:-1] if closed else line
            pending_items += [t for t in body.split(",") if t.strip()]
            if closed:
                section[pending_key] = [parse_scalar(t)
                                        for t in pending_items]
                pending_key = None
            continue
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            section = doc.setdefault(name, {})
            continue
        key, _, value = line.partition("=")
        key, value = key.strip(), value.split("#", 1)[0].strip()
        if value.startswith("[") and not value.endswith("]"):
            pending_key = key
            pending_items = [t for t in value[1:].split(",") if t.strip()]
        elif value.startswith("["):
            body = value[1:-1]
            section[key] = [parse_scalar(t) for t in body.split(",")
                            if t.strip()]
        else:
            section[key] = parse_scalar(value)
    return doc


def load_toml(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    try:
        import tomllib
        return tomllib.loads(text)
    except ModuleNotFoundError:
        return _subset_toml_parse(text)


@dataclass
class PassConfig:
    """Locations of the checked-in machine-readable models, relative to
    the project root -- overridable so self-tests can seed fixture
    trees with their own models."""

    layers_toml: str = "tools/lint/layers.toml"
    wire_schema_toml: str = "tools/lint/wire_schema.toml"
    baseline_json: str = "bench/baseline.json"
    readme_md: str = "README.md"
    # Directories whose metric registrations are linted.  tests/ is an
    # unrestricted consumer (it registers throwaway series like
    # obs_test.*); src/obs is the registry implementation itself, where
    # names are forwarded parameters by design.
    metric_dirs: tuple = ("src", "bench")
    metric_exempt_prefixes: tuple = ("src/obs/",)
    # CLI entry points outside src/bench that register metrics.
    metric_extra_files: tuple = ("tools/rtr_cli.cc",)


class ProjectModel:
    """Cached parse of the whole tree plus the include graph."""

    def __init__(self, root: str, tree_dirs=TREE_DIRS,
                 config: PassConfig | None = None):
        self.root = os.path.abspath(root)
        self.tree_dirs = tree_dirs
        self.config = config or PassConfig()
        self.files: dict[str, SourceFile] = {}
        self._discover()
        self._resolve_includes()

    # -- discovery -----------------------------------------------------

    def _discover(self) -> None:
        rels: list[str] = []
        for d in self.tree_dirs:
            top = os.path.join(self.root, d)
            if not os.path.isdir(top):
                continue
            for dirpath, dirs, names in os.walk(top):
                dirs[:] = sorted(x for x in dirs
                                 if x not in SKIPPED_DIR_PARTS)
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTENSIONS):
                        rel = os.path.relpath(os.path.join(dirpath, name),
                                              self.root)
                        rels.append(rel.replace(os.sep, "/"))
        for rel in sorted(set(rels)):
            with open(os.path.join(self.root, rel), encoding="utf-8",
                      errors="replace") as fh:
                self.files[rel] = SourceFile(rel, fh.read())

    def file_list(self) -> list[str]:
        """Repo-relative paths of every file in the tree, sorted."""
        return sorted(self.files)

    # -- includes ------------------------------------------------------

    def _resolve_one(self, including: str, target: str) -> str:
        base = os.path.dirname(including)
        for candidate in (f"src/{target}",
                          f"{base}/{target}" if base else target,
                          target):
            candidate = os.path.normpath(candidate).replace(os.sep, "/")
            if candidate in self.files:
                return candidate
        return ""

    def _resolve_includes(self) -> None:
        for rel, sf in self.files.items():
            # Match against the raw text (masking blanks the quoted
            # path), but require the '#' to survive in the masked twin:
            # a commented-out #include is blanked there and must not
            # produce an edge.  Masking is length-preserving, so the
            # offsets line up.
            for m in _INCLUDE_RE.finditer(sf.raw):
                hash_off = sf.raw.index("#", m.start())
                if sf.masked[hash_off] != "#":
                    continue
                target = m.group(1)
                sf.includes.append(Include(
                    line=sf.line_of_offset(m.start(1)),
                    target=target,
                    resolved=self._resolve_one(rel, target)))

    def module_edges(self) -> dict[tuple[str, str], list]:
        """(from_module, to_module) -> [(file, Include), ...] for every
        resolved cross-module include, deterministically ordered."""
        edges: dict[tuple[str, str], list] = {}
        for rel in sorted(self.files):
            sf = self.files[rel]
            for inc in sf.includes:
                if not inc.resolved:
                    continue
                src_mod = sf.module
                dst_mod = self.files[inc.resolved].module
                if src_mod != dst_mod:
                    edges.setdefault((src_mod, dst_mod), []).append(
                        (rel, inc))
        return edges

    def file_cycles(self) -> list[list[str]]:
        """File-level include cycles (each reported once, lexicographically
        rotated so output is deterministic)."""
        graph = {rel: sorted({i.resolved for i in sf.includes
                              if i.resolved})
                 for rel, sf in self.files.items()}
        color: dict[str, int] = {}
        stack: list[str] = []
        cycles: list[list[str]] = []
        seen_keys: set[tuple] = set()

        def visit(node: str) -> None:
            color[node] = 1
            stack.append(node)
            for nxt in graph.get(node, ()):
                state = color.get(nxt, 0)
                if state == 0:
                    visit(nxt)
                elif state == 1:
                    cycle = stack[stack.index(nxt):] + [nxt]
                    lo = min(range(len(cycle) - 1),
                             key=lambda k: cycle[k])
                    rotated = cycle[lo:-1] + cycle[:lo] + [cycle[lo]]
                    key = tuple(rotated)
                    if key not in seen_keys:
                        seen_keys.add(key)
                        cycles.append(rotated)
            stack.pop()
            color[node] = 2

        for rel in sorted(graph):
            if color.get(rel, 0) == 0:
                visit(rel)
        return cycles

    # -- artifacts -----------------------------------------------------

    def include_graph_dot(self, unrestricted: set[str] | None = None) -> str:
        """Deterministic module-level include graph in DOT form.

        Byte-identical across runs for the same tree: nodes and edges
        are emitted sorted, edge labels carry the include multiplicity,
        and nothing time- or path-dependent is written.
        """
        unrestricted = unrestricted or set()
        edges = self.module_edges()
        modules = sorted({m for pair in edges for m in pair} |
                         {sf.module for sf in self.files.values()})
        lines = [
            "// Module-level include graph; generated by",
            "// tools/lint_determinism.py (layer-violation pass).",
            "digraph include_graph {",
            "  rankdir=BT;",
            "  node [shape=box, fontname=\"Helvetica\"];",
        ]
        for mod in modules:
            style = ", style=dashed" if mod in unrestricted else ""
            lines.append(f"  \"{mod}\" [label=\"{mod}\"{style}];")
        for (src_mod, dst_mod) in sorted(edges):
            count = len(edges[(src_mod, dst_mod)])
            style = " [style=dashed]" if src_mod in unrestricted else \
                f" [label=\"{count}\"]"
            lines.append(f"  \"{src_mod}\" -> \"{dst_mod}\"{style};")
        lines.append("}")
        return "\n".join(lines) + "\n"

    # -- literal / symbol helpers (used by the passes) -----------------

    @staticmethod
    def string_literal_at(raw: str, offset: int) -> str | None:
        """Parses the C++ string literal starting at ``offset`` (which
        must point at the opening quote in the RAW text); returns its
        cooked value, or None when no literal starts there."""
        if offset >= len(raw) or raw[offset] != '"':
            return None
        out: list[str] = []
        i = offset + 1
        while i < len(raw):
            c = raw[i]
            if c == "\\" and i + 1 < len(raw):
                out.append(raw[i + 1])
                i += 2
            elif c == '"':
                return "".join(out)
            elif c == "\n":
                return None
            else:
                out.append(c)
                i += 1
        return None

    @staticmethod
    def find_function_body(masked: str, name: str) -> tuple[int, int] | None:
        """(open_brace, close_brace) offsets of the first definition of
        ``name`` in the masked text, or None."""
        for m in re.finditer(r"\b%s\s*\(" % re.escape(name), masked):
            depth = 0
            i = m.end() - 1
            while i < len(masked):
                c = masked[i]
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            # Skip to '{' (definition) or ';' (declaration/call).
            j = i + 1
            while j < len(masked) and masked[j] not in "{;":
                j += 1
            if j >= len(masked) or masked[j] != "{":
                continue
            depth = 0
            for k in range(j, len(masked)):
                if masked[k] == "{":
                    depth += 1
                elif masked[k] == "}":
                    depth -= 1
                    if depth == 0:
                        return j, k
            return None
        return None
