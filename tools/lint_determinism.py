#!/usr/bin/env python3
"""Determinism linter CLI — mechanical enforcement of the repo's
bit-identical-results contract.

Usage:
    python3 tools/lint_determinism.py [PATH ...]
    python3 tools/lint_determinism.py --list-rules

With no PATHs, lints src/ bench/ tests/ tools/ relative to the repo
root.  Exits non-zero when any finding survives the lint:allow
annotations.  Run the self-tests with:

    python3 -m unittest discover -s tools/lint/tests -t .
"""

from __future__ import annotations

import argparse
import os
import sys

# Allow running as a plain script from any CWD: imports resolve against
# the repo root (the parent of tools/).
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from tools.lint.engine import lint_paths  # noqa: E402
from tools.lint.rules import ALL_RULES, Config  # noqa: E402

DEFAULT_PATHS = ("src", "bench", "tests", "tools")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Project determinism linter (see README.md "
                    "'Static analysis').")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src bench tests tools)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id:22s} {rule.description}")
        return 0

    paths = args.paths or [os.path.join(_REPO_ROOT, p)
                           for p in DEFAULT_PATHS]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"lint_determinism: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    config = Config(root=_REPO_ROOT)
    findings = lint_paths(paths, ALL_RULES, config)
    for f in findings:
        print(f.render())
    if findings:
        print(f"\nlint_determinism: {len(findings)} finding(s). "
              "Fix, or annotate with '// lint:allow(<rule>) — <reason>'.",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
