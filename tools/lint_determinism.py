#!/usr/bin/env python3
"""Static analysis CLI — mechanical enforcement of the repo's
bit-identical-results contract plus the whole-repo structural passes
(layer DAG, metric-name registry, wire-schema consistency).

Usage:
    python3 tools/lint_determinism.py                 # whole repo
    python3 tools/lint_determinism.py PATH [PATH ...] # line rules only
    python3 tools/lint_determinism.py --list-rules
    python3 tools/lint_determinism.py --list-files

With no PATHs, lints src/ bench/ tests/ tools/ with the five line rules
AND runs the three whole-repo passes against their checked-in models
(tools/lint/layers.toml, tools/lint/wire_schema.toml, the README
metrics registry, bench/baseline.json), writing the module include
graph to --dot-out.  With explicit PATHs, only the line rules run (the
passes are meaningless on a partial tree).  Exits non-zero when any
finding survives the lint:allow annotations.  Run the self-tests with:

    python3 -m unittest discover -s tools/lint/tests -t .
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# Allow running as a plain script from any CWD: imports resolve against
# the repo root (the parent of tools/).
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from tools.lint.engine import lint_paths, parse_allows  # noqa: E402
from tools.lint.passes import (ALL_PASSES, PASS_RULE_IDS,  # noqa: E402
                               LayerViolationPass)
from tools.lint.project import ProjectModel, TREE_DIRS  # noqa: E402
from tools.lint.rules import ALL_RULES, Config  # noqa: E402

DEFAULT_DOT_OUT = "build/lint/include_graph.dot"


def run_passes(model: ProjectModel):
    """Runs every whole-repo pass; applies lint:allow suppression to
    findings anchored in the model's C++ files (findings in JSON/TOML/
    markdown artefacts cannot be allow-listed)."""
    known = set(PASS_RULE_IDS) | {r.rule_id for r in ALL_RULES} \
        | {"bad-allow"}
    allows_cache: dict[str, dict] = {}

    def allowed(finding) -> bool:
        sf = model.files.get(finding.path)
        if sf is None:
            return False
        if finding.path not in allows_cache:
            allows_cache[finding.path] = parse_allows(sf.raw, known)[0]
        return finding.rule in allows_cache[finding.path].get(
            finding.line, ())

    findings = []
    for p in ALL_PASSES:
        findings += [f for f in p.run(model) if not allowed(f)]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def write_dot(model: ProjectModel, dot_path: str) -> None:
    dot = model.include_graph_dot(
        LayerViolationPass().unrestricted(model))
    os.makedirs(os.path.dirname(dot_path) or ".", exist_ok=True)
    # Byte-deterministic: only rewrite on change so artifact mtimes do
    # not churn, and always newline-exact.
    try:
        with open(dot_path, encoding="utf-8") as fh:
            if fh.read() == dot:
                return
    except OSError:
        pass
    with open(dot_path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(dot)


def write_json(findings, json_path: str) -> None:
    doc = {
        "schema": "rtr.lint_findings.v1",
        "count": len(findings),
        "findings": [
            {"path": f.path, "line": f.line, "rule": f.rule,
             "message": f.message}
            for f in findings
        ],
    }
    os.makedirs(os.path.dirname(json_path) or ".", exist_ok=True)
    with open(json_path, "w", encoding="utf-8", newline="\n") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Project static analysis: determinism line rules "
                    "plus whole-repo passes (see README.md 'Static "
                    "analysis').")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint with the "
                             "line rules only (default: whole repo, "
                             "line rules + whole-repo passes)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--list-files", action="store_true",
                        help="print the analyzed file list (the single "
                             "source of truth for CI's clang-tidy "
                             "step) and exit")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write findings as JSON to PATH")
    parser.add_argument("--dot-out", metavar="PATH",
                        default=None,
                        help="where the module include graph is "
                             f"written (default: {DEFAULT_DOT_OUT}; "
                             "whole-repo mode only)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id:22s} {rule.description}")
        for p in ALL_PASSES:
            print(f"{p.rule_id:22s} {p.description}")
        return 0

    if args.list_files:
        model = ProjectModel(_REPO_ROOT)
        for rel in model.file_list():
            print(rel)
        return 0

    whole_repo = not args.paths
    paths = args.paths or [os.path.join(_REPO_ROOT, p)
                           for p in TREE_DIRS]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"lint_determinism: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    config = Config(root=_REPO_ROOT)
    findings = lint_paths(paths, ALL_RULES, config,
                          extra_known=PASS_RULE_IDS)
    if whole_repo:
        model = ProjectModel(_REPO_ROOT)
        findings += run_passes(model)
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
        dot_out = args.dot_out or os.path.join(_REPO_ROOT,
                                               DEFAULT_DOT_OUT)
        write_dot(model, dot_out)

    if args.json:
        write_json(findings, args.json)
    for f in findings:
        print(f.render())
    if findings:
        print(f"\nlint_determinism: {len(findings)} finding(s). "
              "Fix, or annotate with '// lint:allow(<rule>) — <reason>'.",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
