#!/usr/bin/env python3
"""Nightly guard: tools/lint/layers.toml must match the src/ tree.

The per-push lint already fails on drift in both directions; this
standalone check re-runs the dangling-entry direction on a schedule so
a module deletion that lands without touching the linter (e.g. via a
revert or a branch merge while CI config was pinned) still surfaces
within a day.  Exits 1 listing each stale entry.

Usage:
    python3 tools/check_layers_drift.py [--root DIR]
"""

from __future__ import annotations

import argparse
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from tools.lint.project import load_toml  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=_REPO_ROOT,
                        help="repo root (default: parent of tools/)")
    args = parser.parse_args(argv)

    toml_path = os.path.join(args.root, "tools", "lint", "layers.toml")
    try:
        doc = load_toml(toml_path)
    except (OSError, ValueError) as e:
        print(f"check_layers_drift: cannot load {toml_path}: {e}",
              file=sys.stderr)
        return 1

    declared = set(doc.get("layers", {})) | \
        set(doc.get("graph", {}).get("cross_cutting", ()))
    src = os.path.join(args.root, "src")
    on_disk = {d for d in (os.listdir(src) if os.path.isdir(src) else [])
               if os.path.isdir(os.path.join(src, d))}

    stale = sorted(declared - on_disk)
    for mod in stale:
        print(f"check_layers_drift: layer '{mod}' is declared in "
              f"tools/lint/layers.toml but src/{mod}/ does not exist")
    if stale:
        return 1
    print(f"check_layers_drift: OK ({len(declared)} declared layers, "
          f"all present on disk)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
