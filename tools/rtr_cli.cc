// rtr_cli: command-line front end to the library.
//
//   rtr_cli topo    --as AS209 [--out topo.txt]
//   rtr_cli info    (--as AS209 | --file topo.txt)
//   rtr_cli recover (--as AS209 | --file topo.txt) --cx X --cy Y --r R
//                   [--rule endpoint|geometric] [--svg out.svg]
//   rtr_cli bench   --as AS209 [--cases N] [--rule endpoint|geometric]
//
// `topo` writes a surrogate ISP topology in the text format of
// graph/io.h; `info` prints structural statistics; `recover` applies a
// circular failure area and reports RTR/FCP/MRC recovery for every
// broken flow (optionally rendering an SVG of one recovery); `bench`
// prints a one-topology Table III row.
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "baselines/fcp.h"
#include "baselines/mrc.h"
#include "core/rtr.h"
#include "exp/cases.h"
#include "exp/context.h"
#include "exp/runners.h"
#include "graph/gen/isp_gen.h"
#include "graph/io.h"
#include "graph/properties.h"
#include "stats/cdf.h"
#include "stats/table.h"
#include "viz/svg_export.h"

using namespace rtr;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& k) const { return options.count(k) > 0; }
  std::string get(const std::string& k, const std::string& dflt = "") const {
    const auto it = options.find(k);
    return it == options.end() ? dflt : it->second;
  }
  double num(const std::string& k, double dflt) const {
    const auto it = options.find(k);
    return it == options.end() ? dflt : std::stod(it->second);
  }
};

int usage() {
  std::cerr
      << "usage: rtr_cli <topo|info|recover|bench> [options]\n"
         "  common:  --as <ASname> | --file <topo.txt>\n"
         "  topo:    --out <file>\n"
         "  recover: --cx <x> --cy <y> --r <radius>\n"
         "           [--rule endpoint|geometric] [--svg <out.svg>]\n"
         "  bench:   [--cases <n>] [--rule endpoint|geometric]\n";
  return 2;
}

graph::Graph load_topology(const Args& args) {
  if (args.has("file")) return graph::load_graph(args.get("file"));
  const std::string as = args.get("as", "AS209");
  return graph::make_isp_topology(graph::spec_by_name(as));
}

fail::LinkCutRule rule_of(const Args& args) {
  return args.get("rule", "endpoint") == "geometric"
             ? fail::LinkCutRule::kGeometric
             : fail::LinkCutRule::kEndpointsOnly;
}

int cmd_topo(const Args& args) {
  const graph::Graph g = load_topology(args);
  if (args.has("out")) {
    graph::save_graph(args.get("out"), g);
    std::cout << "wrote " << g.num_nodes() << " nodes / " << g.num_links()
              << " links to " << args.get("out") << "\n";
  } else {
    graph::write_graph(std::cout, g);
  }
  return 0;
}

int cmd_info(const Args& args) {
  const graph::Graph g = load_topology(args);
  const graph::DegreeStats d = graph::degree_stats(g);
  const graph::CrossingIndex idx(g);
  std::cout << "nodes:            " << g.num_nodes() << "\n"
            << "links:            " << g.num_links() << "\n"
            << "connected:        "
            << (graph::connected(g) ? "yes" : "no") << "\n"
            << "degree:           min " << d.min_degree << ", mean "
            << stats::fmt(d.mean_degree, 2) << ", max " << d.max_degree
            << "\n"
            << "leaves:           " << d.leaves << "\n"
            << "crossing pairs:   " << idx.num_crossing_pairs() << "\n"
            << "planar embedding: "
            << (idx.planar_embedding() ? "yes" : "no") << "\n";
  return 0;
}

int cmd_recover(const Args& args) {
  const graph::Graph g = load_topology(args);
  const graph::CrossingIndex crossings(g);
  const spf::RoutingTable rt(g);
  const fail::CircleArea area(
      {args.num("cx", 1000.0), args.num("cy", 1000.0)},
      args.num("r", 200.0));
  const fail::FailureSet failure(g, area, rule_of(args));
  std::cout << "area " << area.describe() << ": "
            << failure.num_failed_nodes() << " routers / "
            << failure.num_failed_links() << " links failed\n";
  if (failure.empty()) return 0;

  const graph::Components comp = graph::components(g, failure.masks());
  core::RtrRecovery rtr(g, crossings, rt, failure);
  const baseline::Mrc mrc(g, rt);
  std::size_t rec_cases = 0, irr_cases = 0;
  std::size_t rtr_ok = 0, fcp_ok = 0, mrc_ok = 0;
  bool svg_done = false;
  for (NodeId init = 0; init < g.node_count(); ++init) {
    if (failure.node_failed(init)) continue;
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (t == init || rt.next_link(init, t) == kNoLink) continue;
      const graph::Adjacency a{rt.next_hop(init, t), rt.next_link(init, t)};
      if (!failure.neighbor_unreachable(a)) continue;
      const bool reachable =
          !failure.node_failed(t) && comp.id[init] == comp.id[t];
      if (!reachable) {
        ++irr_cases;
        continue;
      }
      ++rec_cases;
      const core::RecoveryResult r = rtr.recover(init, t);
      if (r.recovered()) ++rtr_ok;
      if (baseline::run_fcp(g, failure, init, t).delivered) ++fcp_ok;
      if (mrc.forward(failure, init, t).delivered) ++mrc_ok;
      if (!svg_done && args.has("svg") && r.recovered()) {
        viz::SvgExporter svg(g);
        svg.add_failure(failure);
        svg.add_circle(area.circle(), "#e8a13a", 0.25);
        svg.add_walk(rtr.phase1_for(init).visits, "#2f855a");
        svg.add_path(r.computed_path.nodes, "#6b46c1");
        svg.highlight_node(init, "#6b46c1");
        svg.save(args.get("svg"));
        std::cout << "figure (initiator v" << init << " -> v" << t
                  << ") written to " << args.get("svg") << "\n";
        svg_done = true;
      }
    }
  }
  std::cout << "recoverable test cases:   " << rec_cases << "\n";
  if (rec_cases > 0) {
    const auto pct = [&](std::size_t n) {
      return stats::fmt(100.0 * static_cast<double>(n) /
                        static_cast<double>(rec_cases));
    };
    std::cout << "  RTR recovered:          " << rtr_ok << " ("
              << pct(rtr_ok) << "%)\n"
              << "  FCP recovered:          " << fcp_ok << " ("
              << pct(fcp_ok) << "%)\n"
              << "  MRC recovered:          " << mrc_ok << " ("
              << pct(mrc_ok) << "%)\n";
  }
  std::cout << "irrecoverable test cases: " << irr_cases << "\n";
  return 0;
}

int cmd_bench(const Args& args) {
  const std::string as = args.get("as", "AS209");
  const exp::TopologyContext ctx =
      exp::make_context(graph::spec_by_name(as));
  exp::CaseBudget budget;
  budget.recoverable =
      static_cast<std::size_t>(args.num("cases", 2000.0));
  budget.irrecoverable = budget.recoverable;
  const auto scenarios = exp::generate_scenarios(
      ctx, fail::ScenarioConfig{}, budget, 20120618, rule_of(args));
  const exp::RecoverableResults r = exp::run_recoverable(ctx, scenarios);
  const exp::IrrecoverableResults ir =
      exp::run_irrecoverable(ctx, scenarios);
  const double n = static_cast<double>(r.cases);
  std::cout << as << ": " << r.cases << " recoverable cases\n"
            << "  RTR recovery/optimal: "
            << stats::fmt(100.0 * r.rtr_recovered / n) << "% / "
            << stats::fmt(100.0 * r.rtr_optimal / n) << "%\n"
            << "  FCP recovery/optimal: "
            << stats::fmt(100.0 * r.fcp_recovered / n) << "% / "
            << stats::fmt(100.0 * r.fcp_optimal / n) << "%\n"
            << "  MRC recovery:         "
            << stats::fmt(100.0 * r.mrc_recovered / n) << "%\n"
            << ir.cases << " irrecoverable cases\n"
            << "  wasted SP calcs RTR/FCP: "
            << stats::fmt(stats::Summary::of(ir.rtr_wasted_comp).mean)
            << " / "
            << stats::fmt(stats::Summary::of(ir.fcp_wasted_comp).mean)
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return usage();
    args.options[argv[i] + 2] = argv[i + 1];
  }
  try {
    if (args.command == "topo") return cmd_topo(args);
    if (args.command == "info") return cmd_info(args);
    if (args.command == "recover") return cmd_recover(args);
    if (args.command == "bench") return cmd_bench(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
