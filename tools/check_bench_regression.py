#!/usr/bin/env python3
"""CI perf-regression gate over rtr::obs metrics documents.

Compares one or more ``--metrics-out`` JSON files (schema
``rtr.metrics.v1``, see src/obs/emit.h) against the checked-in
``bench/baseline.json``:

* **Op counts** (the ``metrics`` block: every stable counter / gauge /
  histogram) must match the baseline **exactly** -- they are bit-stable
  pure functions of the workload, so any drift means behaviour changed
  and the baseline must be consciously refreshed.
* **Wall clock** (``timing.wall_clock_ms``) may regress by at most the
  configured tolerance factor (default 1.25, i.e. fail on >25%
  slowdown).  Faster-than-baseline runs only produce a note.
* **Peak RSS** (``timing.max_rss_kb``) must stay at or below the
  bench's ``max_rss_kb_ceiling``.  The ceiling is sticky: captured once
  -- first observed peak times ``RSS_CEILING_HEADROOM`` -- and then
  preserved verbatim across ``--update``, so a memory regression can
  never launder itself into the baseline through a routine refresh.
  Lower it by hand after an intentional memory improvement.

Benches whose op counts are inherently unstable (``bench_micro``:
google-benchmark chooses iteration counts dynamically) are compared on
wall clock only, controlled per bench by ``check_op_counts`` in the
baseline document.

Baseline entries additionally carry ``seed_full_runs``: the total number
of full shortest-path-tree computations the original full-recompute
engine performed on that workload.  The field is captured once (from the
pre-update baseline) and preserved verbatim across ``--update``; any run
whose ``run.config.spf_engine`` is ``incremental`` must report strictly
fewer full SPT runs than it.  Benches where the engine flag cannot move
the counters (``bench_storm``: repairs always run incrementally against
the pinned base trees, so the full-run total is base-tree builds plus
fallbacks under either engine) opt out via ``check_full_runs``.

Refresh the baseline after an intentional change with::

    tools/check_bench_regression.py --baseline bench/baseline.json \
        --update current1.json current2.json ...

Exit status: 0 ok, 1 regression / op-count drift, 2 usage or schema
error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BASELINE_SCHEMA = "rtr.bench_baseline.v1"
METRICS_SCHEMA = "rtr.metrics.v1"
DEFAULT_TOLERANCE = 1.25

# Benches whose op counts depend on adaptive iteration counts rather
# than a pinned workload; --update marks them wall-clock-only.
VOLATILE_OP_COUNT_BENCHES = {"bench_micro"}

# Benches whose full-SPT-run counters are invariant under the
# full/incremental engine flag, so the fewer-than-seed gate is vacuous;
# --update marks them check_full_runs=false and never captures a
# seed_full_runs for them.
ENGINE_INVARIANT_FULL_RUN_BENCHES = {"bench_storm"}

# Headroom multiplier applied to the first observed peak RSS when a
# bench's sticky max_rss_kb_ceiling is captured.  Generous on purpose:
# the ceiling exists to catch structural regressions (a store that no
# longer fits), not allocator noise.
RSS_CEILING_HEADROOM = 1.5

# Counters that each record one full shortest-path-tree computation.
# Their sum is the figure of merit the incremental SPF engine exists to
# reduce; ``seed_full_runs`` in the baseline pins the full-engine total
# so the incremental engine can never silently regress past it.
FULL_RUN_SERIES = ("rtr.spf.dijkstra.full_runs", "rtr.spf.bfs.runs")


def full_runs_of(metrics: dict) -> int | None:
    """Sum of the full-SPT-run counters, or None when absent."""
    total, seen = 0, False
    for series in FULL_RUN_SERIES:
        entry = metrics.get(series)
        if isinstance(entry, dict) and entry.get("kind") == "counter":
            total += int(entry.get("value", 0))
            seen = True
    return total if seen else None


def fail(msg: str, code: int = 2) -> "sys.NoReturn":
    print(f"check_bench_regression: {msg}", file=sys.stderr)
    sys.exit(code)


def load_json(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")


def load_metrics_doc(path: str) -> dict:
    doc = load_json(path)
    if doc.get("schema") != METRICS_SCHEMA:
        fail(f"{path}: expected schema {METRICS_SCHEMA!r}, "
             f"got {doc.get('schema')!r}")
    for key in ("run", "metrics"):
        if key not in doc:
            fail(f"{path}: missing {key!r} block")
    if "bench" not in doc["run"]:
        fail(f"{path}: missing run.bench")
    return doc


def diff_op_counts(name: str, baseline: dict, current: dict) -> list[str]:
    """Exact comparison of the stable metrics blocks."""
    problems = []
    for series in sorted(set(baseline) | set(current)):
        if series not in current:
            problems.append(f"{name}: series {series} disappeared")
        elif series not in baseline:
            problems.append(f"{name}: new series {series} "
                            f"(refresh the baseline)")
        elif baseline[series] != current[series]:
            problems.append(
                f"{name}: op-count drift in {series}: "
                f"baseline {json.dumps(baseline[series], sort_keys=True)} "
                f"!= current {json.dumps(current[series], sort_keys=True)}")
    return problems


def check(baseline_doc: dict, docs: list[dict], tolerance: float) -> int:
    benches = baseline_doc.get("benches", {})
    problems: list[str] = []
    for doc in docs:
        name = doc["run"]["bench"]
        entry = benches.get(name)
        if entry is None:
            problems.append(f"{name}: not in baseline "
                            f"(run with --update to add it)")
            continue

        if entry.get("check_op_counts", True):
            problems += diff_op_counts(name, entry.get("metrics", {}),
                                       doc.get("metrics", {}))

        # The incremental engine must do strictly fewer full SPT runs
        # than the seed (full-engine) baseline it replaced.
        seed_full = entry.get("seed_full_runs")
        engine = doc["run"].get("config", {}).get("spf_engine")
        if seed_full is not None and engine == "incremental" and \
                entry.get("check_full_runs", True):
            cur_full = full_runs_of(doc.get("metrics", {}))
            if cur_full is None:
                problems.append(f"{name}: incremental engine but no "
                                f"full-run counters in metrics")
            elif cur_full >= seed_full:
                problems.append(
                    f"{name}: incremental engine ran {cur_full} full SPTs, "
                    f"not fewer than the seed baseline's {seed_full}")
            else:
                print(f"{name}: full SPT runs {cur_full} < seed baseline "
                      f"{seed_full} ({100.0 * cur_full / seed_full:.1f}%)")

        rss_ceiling = entry.get("max_rss_kb_ceiling")
        cur_rss = doc.get("timing", {}).get("max_rss_kb")
        if rss_ceiling is not None:
            if not cur_rss:
                print(f"{name}: no peak-RSS data in the metrics file; "
                      f"skipping memory check")
            elif cur_rss > rss_ceiling:
                problems.append(
                    f"{name}: peak RSS {cur_rss} KiB exceeds the "
                    f"baseline ceiling {rss_ceiling} KiB")
            else:
                print(f"{name}: peak RSS {cur_rss} KiB within ceiling "
                      f"{rss_ceiling} KiB")

        base_ms = entry.get("wall_clock_ms")
        cur_ms = doc.get("timing", {}).get("wall_clock_ms")
        if base_ms is None or cur_ms is None:
            print(f"{name}: no wall-clock data (deterministic-mode file "
                  f"or fresh baseline); skipping timing check")
        elif cur_ms > base_ms * tolerance:
            problems.append(
                f"{name}: wall-clock regression: {cur_ms} ms > "
                f"{base_ms} ms baseline * {tolerance:.2f} tolerance")
        elif base_ms > 0 and cur_ms * tolerance < base_ms:
            print(f"{name}: faster than baseline ({cur_ms} ms vs "
                  f"{base_ms} ms) -- consider refreshing with --update")
        else:
            print(f"{name}: wall clock {cur_ms} ms within "
                  f"{tolerance:.2f}x of baseline {base_ms} ms")

    for p in problems:
        print(f"FAIL {p}", file=sys.stderr)
    if not problems:
        print(f"perf gate ok: {len(docs)} bench(es) checked")
    return 1 if problems else 0


def update(baseline_path: str, old: dict, docs: list[dict],
           tolerance: float) -> int:
    benches = dict(old.get("benches", {}))
    for doc in docs:
        name = doc["run"]["bench"]
        prev = benches.get(name, {})
        default_checked = name not in VOLATILE_OP_COUNT_BENCHES
        entry = {
            "check_op_counts": prev.get("check_op_counts", default_checked),
            "config": doc["run"].get("config", {}),
            "wall_clock_ms": doc.get("timing", {}).get("wall_clock_ms"),
        }
        if entry["check_op_counts"]:
            entry["metrics"] = doc.get("metrics", {})
        # seed_full_runs is sticky: first set from the pre-update
        # baseline's (full-engine) metrics, then preserved verbatim so
        # later refreshes under the incremental engine cannot raise it.
        # Engine-invariant benches never get one -- there is no
        # full-engine total to beat.
        checked_full = prev.get(
            "check_full_runs",
            name not in ENGINE_INVARIANT_FULL_RUN_BENCHES)
        if not checked_full:
            entry["check_full_runs"] = False
        else:
            seed_full = prev.get("seed_full_runs")
            if seed_full is None:
                seed_full = full_runs_of(prev.get("metrics", {}))
            if seed_full is None and \
                    doc["run"].get("config", {}).get("spf_engine") != \
                    "incremental":
                seed_full = full_runs_of(doc.get("metrics", {}))
            if seed_full is not None:
                entry["seed_full_runs"] = seed_full
        # The RSS ceiling is sticky like seed_full_runs: captured once
        # (with headroom) from the first run that reports a peak, then
        # preserved verbatim so refreshes cannot raise it.
        ceiling = prev.get("max_rss_kb_ceiling")
        if ceiling is None:
            cur_rss = doc.get("timing", {}).get("max_rss_kb")
            if cur_rss:
                ceiling = int(cur_rss * RSS_CEILING_HEADROOM)
        if ceiling is not None:
            entry["max_rss_kb_ceiling"] = ceiling
        benches[name] = entry
    out = {
        "schema": BASELINE_SCHEMA,
        "tolerance": tolerance,
        "benches": {k: benches[k] for k in sorted(benches)},
    }
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"baseline updated: {baseline_path} ({len(docs)} bench(es))")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", required=True,
                    help="path to bench/baseline.json")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="wall-clock regression factor "
                         "(default: baseline file's, else "
                         f"{DEFAULT_TOLERANCE})")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the current files")
    ap.add_argument("current", nargs="+",
                    help="metrics JSON files from --metrics-out")
    args = ap.parse_args()

    docs = [load_metrics_doc(p) for p in args.current]

    if args.update:
        old = load_json(args.baseline) if os.path.exists(args.baseline) \
            else {}
        tol = args.tolerance or old.get("tolerance", DEFAULT_TOLERANCE)
        return update(args.baseline, old, docs, tol)

    baseline_doc = load_json(args.baseline)
    if baseline_doc.get("schema") != BASELINE_SCHEMA:
        fail(f"{args.baseline}: expected schema {BASELINE_SCHEMA!r}, "
             f"got {baseline_doc.get('schema')!r}")
    tol = args.tolerance or baseline_doc.get("tolerance",
                                             DEFAULT_TOLERANCE)
    return check(baseline_doc, docs, tol)


if __name__ == "__main__":
    sys.exit(main())
