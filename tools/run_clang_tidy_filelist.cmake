# Runs run-clang-tidy over exactly the analyzer's file list, so the
# clang-tidy gate and the linter can never disagree about what "the
# tree" is.  Invoked from the `lint` target:
#
#   cmake -DLINTER=... -DPYTHON=... -DRUN_CLANG_TIDY=... -DBUILD_DIR=...
#         -P tools/run_clang_tidy_filelist.cmake
#
# Only .cc/.cpp files are passed (headers are covered via inclusion;
# run-clang-tidy matches positional args against compile-database
# entries, which are the TUs).

execute_process(
  COMMAND ${PYTHON} ${LINTER} --list-files
  OUTPUT_VARIABLE _files
  RESULT_VARIABLE _rc
  OUTPUT_STRIP_TRAILING_WHITESPACE)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "lint: ${LINTER} --list-files failed (${_rc})")
endif()

string(REPLACE "\n" ";" _files "${_files}")
set(_tus "")
foreach(_f IN LISTS _files)
  if(_f MATCHES "\\.(cc|cpp)$")
    list(APPEND _tus "${_f}")
  endif()
endforeach()
list(LENGTH _tus _n)
if(_n EQUAL 0)
  message(FATAL_ERROR "lint: --list-files produced no translation units")
endif()

execute_process(
  COMMAND ${RUN_CLANG_TIDY} -quiet -p ${BUILD_DIR} ${_tus}
  RESULT_VARIABLE _rc)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "lint: clang-tidy gate failed (${_rc})")
endif()
