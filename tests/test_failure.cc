#include <gtest/gtest.h>

#include "common/expect.h"
#include "common/rng.h"
#include "failure/area.h"
#include "failure/failure_set.h"
#include "failure/scenario.h"
#include "graph/paper_topology.h"
#include "graph/properties.h"

namespace rtr::fail {
namespace {

using graph::paper_node;

TEST(FailureSet, EmptyByDefault) {
  const graph::Graph g = graph::fig1_graph();
  const FailureSet fs(g);
  EXPECT_TRUE(fs.empty());
  EXPECT_EQ(fs.num_failed_nodes(), 0u);
  EXPECT_EQ(fs.num_failed_links(), 0u);
}

TEST(FailureSet, PaperAreaDestroysExactlyTheDocumentedElements) {
  // The worked example: the circle kills v10 and cuts e6,11 and e4,11;
  // every link incident to v10 fails with it.
  const graph::Graph g = graph::fig1_graph();
  const CircleArea area(graph::fig1_failure_area());
  const FailureSet fs(g, area);

  EXPECT_EQ(fs.num_failed_nodes(), 1u);
  EXPECT_TRUE(fs.node_failed(paper_node(10)));

  const auto link = [&g](int a, int b) {
    return g.find_link(paper_node(a), paper_node(b));
  };
  const std::vector<LinkId> expected_failed = {
      link(5, 10), link(9, 10), link(14, 10), link(11, 10),
      link(6, 11), link(4, 11)};
  EXPECT_EQ(fs.num_failed_links(), expected_failed.size());
  for (LinkId l : expected_failed) {
    EXPECT_TRUE(fs.link_failed(l)) << g.link_name(l);
  }
  // The crossing link e5,12 must survive: the paper's Constraint-1
  // narrative requires it to be live but excluded.
  EXPECT_FALSE(fs.link_failed(link(5, 12)));
}

TEST(FailureSet, OfLinksAndNodes) {
  const graph::Graph g = graph::fig1_graph();
  const LinkId l = g.find_link(paper_node(6), paper_node(11));
  const FailureSet single = FailureSet::of_links(g, {l});
  EXPECT_EQ(single.num_failed_links(), 1u);
  EXPECT_EQ(single.num_failed_nodes(), 0u);
  EXPECT_TRUE(single.link_failed(l));

  const FailureSet node = FailureSet::of_nodes(g, {paper_node(10)});
  EXPECT_TRUE(node.node_failed(paper_node(10)));
  EXPECT_EQ(node.num_failed_links(), g.degree(paper_node(10)));
}

TEST(FailureSet, ObservedFailedLinksAreLocalKnowledge) {
  const graph::Graph g = graph::fig1_graph();
  const CircleArea area(graph::fig1_failure_area());
  const FailureSet fs(g, area);
  // v6 observes only e6,11 (its link to the unreachable v11).
  const auto obs6 = fs.observed_failed_links(g, paper_node(6));
  ASSERT_EQ(obs6.size(), 1u);
  EXPECT_EQ(obs6[0], g.find_link(paper_node(6), paper_node(11)));
  // v5 observes only e5,10.
  const auto obs5 = fs.observed_failed_links(g, paper_node(5));
  ASSERT_EQ(obs5.size(), 1u);
  EXPECT_EQ(obs5[0], g.find_link(paper_node(5), paper_node(10)));
  // A failed router observes nothing.
  EXPECT_THROW(fs.observed_failed_links(g, paper_node(10)),
               ContractViolation);
}

TEST(FailureSet, NeighborUnreachableCannotDistinguishCause) {
  const graph::Graph g = graph::fig1_graph();
  const CircleArea area(graph::fig1_failure_area());
  const FailureSet fs(g, area);
  for (const graph::Adjacency& a : g.neighbors(paper_node(11))) {
    const bool unreachable = fs.neighbor_unreachable(a);
    const bool expected = fs.link_failed(a.link) ||
                          fs.node_failed(a.neighbor);
    EXPECT_EQ(unreachable, expected);
  }
}

TEST(FailureSet, HasLiveNeighbor) {
  const graph::Graph g = graph::fig1_graph();
  const CircleArea area(graph::fig1_failure_area());
  const FailureSet fs(g, area);
  EXPECT_TRUE(fs.has_live_neighbor(g, paper_node(6)));
  // Enclose v6 completely: all its neighbours die.
  FailureSet all(g);
  for (const graph::Adjacency& a : g.neighbors(paper_node(6))) {
    all.add_node(g, a.neighbor);
  }
  EXPECT_FALSE(all.has_live_neighbor(g, paper_node(6)));
}

TEST(FailureSet, MasksViewMatches) {
  const graph::Graph g = graph::fig1_graph();
  const CircleArea area(graph::fig1_failure_area());
  const FailureSet fs(g, area);
  const graph::Masks m = fs.masks();
  for (NodeId n = 0; n < g.node_count(); ++n) {
    EXPECT_EQ(!m.node_ok(n), fs.node_failed(n));
  }
  for (LinkId l = 0; l < g.link_count(); ++l) {
    EXPECT_EQ(!m.link_ok(l), fs.link_failed(l));
  }
}

TEST(FailureSet, AddIsIdempotent) {
  const graph::Graph g = graph::fig1_graph();
  FailureSet fs(g);
  fs.add_link(0);
  fs.add_link(0);
  EXPECT_EQ(fs.num_failed_links(), 1u);
  fs.add_node(g, paper_node(10));
  const std::size_t links_after = fs.num_failed_links();
  fs.add_node(g, paper_node(10));
  EXPECT_EQ(fs.num_failed_links(), links_after);
}

TEST(FailureSet, MultipleAreasAccumulate) {
  const graph::Graph g = graph::fig1_graph();
  FailureSet fs(g, CircleArea({370, 340}, 65));
  const std::size_t first = fs.num_failed_links();
  fs.add(g, CircleArea({120, 190}, 40));  // around v7
  EXPECT_TRUE(fs.node_failed(paper_node(7)));
  EXPECT_GT(fs.num_failed_links(), first);
}

TEST(UnionArea, MatchesParts) {
  const CircleArea a({0, 0}, 10);
  const CircleArea b({100, 0}, 10);
  std::vector<std::unique_ptr<FailureArea>> parts;
  parts.push_back(std::make_unique<CircleArea>(a));
  parts.push_back(std::make_unique<CircleArea>(b));
  const UnionArea u(std::move(parts));
  EXPECT_TRUE(u.contains({1, 1}));
  EXPECT_TRUE(u.contains({99, 1}));
  EXPECT_FALSE(u.contains({50, 0}));
  EXPECT_TRUE(u.intersects({{-20, 0}, {-5, 0}}));
  EXPECT_FALSE(u.intersects({{40, 40}, {60, 40}}));
  EXPECT_EQ(u.size(), 2u);
  EXPECT_NE(u.describe().find("union"), std::string::npos);
}

TEST(PolygonAreaVsCircle, AgreeOnFailures) {
  // A 64-gon inscribed in the failure circle must fail (almost) the
  // same elements as the circle itself.
  const graph::Graph g = graph::fig1_graph();
  const geom::Circle c = graph::fig1_failure_area();
  const CircleArea circle(c);
  const PolygonArea poly(geom::make_regular_polygon(c.center, c.radius, 64));
  const FailureSet a(g, circle);
  const FailureSet b(g, poly);
  // The polygon is inscribed, so anything it fails the circle fails too.
  for (LinkId l = 0; l < g.link_count(); ++l) {
    if (b.link_failed(l)) {
      EXPECT_TRUE(a.link_failed(l)) << g.link_name(l);
    }
  }
  for (NodeId n = 0; n < g.node_count(); ++n) {
    if (b.node_failed(n)) {
      EXPECT_TRUE(a.node_failed(n));
    }
  }
}

TEST(Scenario, RandomCircleRespectsConfig) {
  Rng rng(99);
  const ScenarioConfig cfg;
  for (int i = 0; i < 200; ++i) {
    const CircleArea a = random_circle_area(cfg, rng);
    EXPECT_GE(a.circle().radius, cfg.min_radius);
    EXPECT_LE(a.circle().radius, cfg.max_radius);
    EXPECT_GE(a.circle().center.x, 0.0);
    EXPECT_LE(a.circle().center.x, cfg.extent);
    EXPECT_GE(a.circle().center.y, 0.0);
    EXPECT_LE(a.circle().center.y, cfg.extent);
  }
}

TEST(Scenario, FixedRadius) {
  Rng rng(5);
  const CircleArea a = random_circle_area_fixed_radius(2000.0, 20.0, rng);
  EXPECT_DOUBLE_EQ(a.circle().radius, 20.0);
}

TEST(Scenario, RandomPolygonIsSane) {
  Rng rng(17);
  const ScenarioConfig cfg;
  const PolygonArea a = random_polygon_area(cfg, 8, rng);
  EXPECT_EQ(a.polygon().size(), 8u);
  // The center region of a star-shaped polygon is inside it.
  const auto [lo, hi] = a.polygon().bounding_box();
  EXPECT_LE(hi.x - lo.x, 2 * cfg.max_radius + 1e-6);
}

TEST(Describe, MentionsShape) {
  EXPECT_NE(CircleArea({1, 2}, 3).describe().find("circle"),
            std::string::npos);
  PolygonArea p(geom::make_regular_polygon({0, 0}, 10, 5));
  EXPECT_NE(p.describe().find("polygon"), std::string::npos);
}

}  // namespace
}  // namespace rtr::fail
