// Randomized property suites for the geometric predicates that the
// protocol's correctness hangs on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/angle.h"
#include "geom/circle.h"
#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/segment.h"

namespace rtr::geom {
namespace {

Point random_point(Rng& rng, double extent = 1000.0) {
  return {rng.uniform_real(0.0, extent), rng.uniform_real(0.0, extent)};
}

class GeomProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeomProperties, ProperCrossIsSymmetricAndImpliesIntersect) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const Segment s{random_point(rng), random_point(rng)};
    const Segment t{random_point(rng), random_point(rng)};
    const bool st = properly_cross(s, t);
    EXPECT_EQ(st, properly_cross(t, s));
    if (st) {
      EXPECT_TRUE(segments_intersect(s, t));
      // A proper crossing means the endpoints of each segment are on
      // strictly opposite sides of the other's supporting line.
      EXPECT_NE(orientation(s.a, s.b, t.a), orientation(s.a, s.b, t.b));
      EXPECT_NE(orientation(t.a, t.b, s.a), orientation(t.a, t.b, s.b));
    }
  }
}

TEST_P(GeomProperties, SharedEndpointNeverProperlyCrosses) {
  Rng rng(GetParam() ^ 0x1111);
  for (int i = 0; i < 1000; ++i) {
    const Point shared = random_point(rng);
    const Segment s{shared, random_point(rng)};
    const Segment t{shared, random_point(rng)};
    EXPECT_FALSE(properly_cross(s, t));
  }
}

TEST_P(GeomProperties, DistanceToSegmentBracketsEndpointDistances) {
  Rng rng(GetParam() ^ 0x2222);
  for (int i = 0; i < 2000; ++i) {
    const Segment s{random_point(rng), random_point(rng)};
    const Point p = random_point(rng);
    const double d = distance_to_segment(p, s);
    EXPECT_LE(d, distance(p, s.a) + 1e-9);
    EXPECT_LE(d, distance(p, s.b) + 1e-9);
    EXPECT_GE(d, 0.0);
    // Points on the segment have distance ~0.
    const double t = rng.uniform_real(0.0, 1.0);
    const Point on = s.a + (s.b - s.a) * t;
    EXPECT_NEAR(distance_to_segment(on, s), 0.0, 1e-9);
  }
}

TEST_P(GeomProperties, CircleIntersectionMatchesSampledDistance) {
  Rng rng(GetParam() ^ 0x3333);
  for (int i = 0; i < 1000; ++i) {
    const Circle c{random_point(rng), rng.uniform_real(10.0, 300.0)};
    const Segment s{random_point(rng), random_point(rng)};
    // Brute-force: sample the segment densely.
    bool sampled_inside = false;
    for (int k = 0; k <= 200; ++k) {
      const Point p = s.a + (s.b - s.a) * (k / 200.0);
      if (distance(p, c.center) < c.radius - 1e-6) sampled_inside = true;
    }
    if (sampled_inside) {
      EXPECT_TRUE(c.intersects(s));
    }
    if (!c.intersects(s)) {
      EXPECT_FALSE(sampled_inside);
    }
  }
}

TEST_P(GeomProperties, CcwAngleIsAdditiveAroundTheCircle) {
  Rng rng(GetParam() ^ 0x4444);
  for (int i = 0; i < 1000; ++i) {
    const double a1 = rng.uniform_real(0.0, kTwoPi);
    const double a2 = rng.uniform_real(0.0, kTwoPi);
    const Point u{std::cos(a1), std::sin(a1)};
    const Point v{std::cos(a2), std::sin(a2)};
    const double fwd = ccw_angle(u, v);
    const double bwd = ccw_angle(v, u);
    EXPECT_GT(fwd, 0.0);
    EXPECT_LE(fwd, kTwoPi);
    // Either both directions coincide (full turns) or they sum to one
    // full turn.
    EXPECT_NEAR(std::fmod(fwd + bwd, kTwoPi), 0.0, 1e-6);
  }
}

TEST_P(GeomProperties, PolygonContainsAgreesWithWindingOfConvexHullCase) {
  Rng rng(GetParam() ^ 0x5555);
  for (int i = 0; i < 300; ++i) {
    const Point c = random_point(rng);
    const double r = rng.uniform_real(50.0, 200.0);
    const Polygon poly = make_regular_polygon(c, r, 24);
    // Interior points inside; far exterior points outside.
    for (int k = 0; k < 10; ++k) {
      const double a = rng.uniform_real(0.0, kTwoPi);
      const double rr = rng.uniform_real(0.0, r * 0.9);
      EXPECT_TRUE(poly.contains(
          {c.x + rr * std::cos(a), c.y + rr * std::sin(a)}));
      EXPECT_FALSE(poly.contains(
          {c.x + (r + 10.0) * std::cos(a), c.y + (r + 10.0) * std::sin(a)}));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeomProperties,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace rtr::geom
