// Chaos soak (`ctest -L chaos`): hundreds of seeded FaultPlans pushed
// through the full exp::run_recoverable fault pipeline.  Two pillars:
//
//  * Thread-count invariance: every RecoverableResults field is
//    bit-identical at --threads 1, 2 and 8 for every base seed, because
//    each scenario owns its Simulator, Network, DistributedRtr and
//    FaultPlan substream (FaultPlan::stream_seed).
//  * Conservation: the rtr.fault.* counters obey their exact identities
//    over the whole soak -- nothing injected is ever lost track of, and
//    every session ends in exactly one terminal outcome.
//
// CI runs this label under ASan/UBSan and TSan; the default tier-1
// ctest pass runs it unsanitized.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exp/cases.h"
#include "exp/context.h"
#include "exp/runners.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace rtr::exp {
namespace {

/// Shared topology + scenario set: built once per process, reused by
/// every soak iteration so the time goes into the soak itself.
struct ChaosWorld {
  TopologyContext ctx;
  std::vector<Scenario> scenarios;
};

const ChaosWorld& world() {
  static const ChaosWorld* w = [] {
    auto* out = new ChaosWorld{make_context(graph::spec_by_name("AS209")),
                               {}};
    CaseBudget budget;
    budget.recoverable = 40;
    budget.irrecoverable = 0;  // fault mode only runs recoverable cases
    out->scenarios =
        generate_scenarios(out->ctx, fail::ScenarioConfig{}, budget, 2601);
    return out;
  }();
  return *w;
}

/// Derives an armed FaultOptions from a base seed: rotate through
/// loss-heavy, corrupt-heavy, duplicate-heavy, dynamic-death and
/// everything-at-once profiles so the soak exercises every injection
/// path, not just the blended average.
fault::FaultOptions chaos_options(std::uint64_t seed) {
  fault::FaultOptions f;
  f.seed = seed;
  f.retry_cap = 3;
  f.backoff_base_ms = 5.0;
  switch (seed % 5) {
    case 0:
      f.loss_prob = 0.05;
      break;
    case 1:
      f.corrupt_prob = 0.04;
      break;
    case 2:
      f.duplicate_prob = 0.06;
      break;
    case 3:
      f.dynamic_links = 2;
      f.dynamic_window_ms = 40.0;
      f.flap_prob = 0.5;
      break;
    default:
      f.loss_prob = 0.02;
      f.corrupt_prob = 0.02;
      f.duplicate_prob = 0.02;
      f.max_detection_delay_ms = 5.0;
      f.dynamic_links = 1;
      f.dynamic_window_ms = 60.0;
      break;
  }
  return f;
}

RunOptions chaos_run(std::uint64_t seed, std::size_t threads) {
  RunOptions opts;
  opts.run_fcp = false;
  opts.run_mrc = false;
  opts.fault = chaos_options(seed);
  opts.threads = threads;
  return opts;
}

void expect_identical(const RecoverableResults& a,
                      const RecoverableResults& b) {
  EXPECT_EQ(a.topo, b.topo);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.rtr_recovered, b.rtr_recovered);
  EXPECT_EQ(a.rtr_optimal, b.rtr_optimal);
  EXPECT_EQ(a.rtr_phase1_aborted, b.rtr_phase1_aborted);
  EXPECT_EQ(a.rtr_unrecovered, b.rtr_unrecovered);
  EXPECT_EQ(a.rtr_dropped, b.rtr_dropped);
  EXPECT_EQ(a.rtr_retry_attempts, b.rtr_retry_attempts);
  EXPECT_EQ(a.rtr_reinitiations, b.rtr_reinitiations);
  // Vector comparisons are element-wise and exact: "bit-identical", not
  // "statistically close".
  EXPECT_EQ(a.rtr_recovery_ms, b.rtr_recovery_ms);
  EXPECT_EQ(a.rtr_stretch, b.rtr_stretch);
  EXPECT_EQ(a.phase1_duration_ms, b.phase1_duration_ms);
  EXPECT_EQ(a.rtr_calcs, b.rtr_calcs);
  EXPECT_EQ(a.rtr_bytes_timeline, b.rtr_bytes_timeline);
}

TEST(ChaosSoak, BitIdenticalAcrossThreadCountsForEverySeed) {
  const ChaosWorld& w = world();
  ASSERT_FALSE(w.scenarios.empty());
  // Every run compiles one FaultPlan per scenario (stream-seeded from
  // the base seed), so plans exercised = seeds x scenarios; push the
  // soak past 200 distinct plans regardless of how the budget packed.
  const std::size_t per_run = w.scenarios.size();
  std::size_t seeds = (200 + per_run - 1) / per_run;
  if (seeds < 10) seeds = 10;
  std::size_t plans = 0;
  for (std::uint64_t s = 0; s < seeds; ++s) {
    const std::uint64_t base = 0xC0DED00D + 977 * s;
    const RecoverableResults serial =
        run_recoverable(w.ctx, w.scenarios, chaos_run(base, 1));
    EXPECT_EQ(serial.cases, 40u);
    plans += per_run;
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      const RecoverableResults parallel =
          run_recoverable(w.ctx, w.scenarios, chaos_run(base, threads));
      expect_identical(serial, parallel);
    }
  }
  EXPECT_GE(plans, 200u);
}

TEST(ChaosSoak, CountersConserveEverythingInjected) {
  const ChaosWorld& w = world();
  auto& reg = obs::Registry::global();
  obs::Counter& loss = reg.counter("rtr.fault.loss");
  obs::Counter& corrupt = reg.counter("rtr.fault.corrupt");
  obs::Counter& crc = reg.counter("rtr.fault.corrupt.crc_caught");
  obs::Counter& codec = reg.counter("rtr.fault.corrupt.codec_error");
  obs::Counter& dup = reg.counter("rtr.fault.duplicate");
  obs::Counter& sup = reg.counter("rtr.fault.duplicate.suppressed");
  obs::Counter& link_dead = reg.counter("rtr.fault.link_dead");
  obs::Counter& transit = reg.counter("rtr.fault.transit_dropped");

  const obs::Value loss0 = loss.total(), corrupt0 = corrupt.total();
  const obs::Value crc0 = crc.total(), codec0 = codec.total();
  const obs::Value dup0 = dup.total(), sup0 = sup.total();
  const obs::Value dead0 = link_dead.total(), transit0 = transit.total();

  std::size_t cases = 0, recovered = 0, unrecovered = 0, dropped = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    const RecoverableResults r =
        run_recoverable(w.ctx, w.scenarios, chaos_run(7000 + s, 2));
    cases += r.cases;
    recovered += r.rtr_recovered;
    unrecovered += r.rtr_unrecovered;
    dropped += r.rtr_dropped;
    // Per-run identities: one terminal recovery time per recovered
    // case, and every attempt beyond a session's first is a counted
    // re-initiation.
    EXPECT_EQ(r.rtr_recovery_ms.size(), r.rtr_recovered);
    EXPECT_EQ(r.rtr_retry_attempts, r.cases + r.rtr_reinitiations);
  }

  // Every session reached exactly one terminal outcome.
  EXPECT_EQ(recovered + unrecovered + dropped, cases);
  // Every injected duplicate was suppressed by exactly one receiver.
  EXPECT_EQ(dup.total() - dup0, sup.total() - sup0);
  // Every corruption was classified exactly once.
  EXPECT_EQ(corrupt.total() - corrupt0,
            (crc.total() - crc0) + (codec.total() - codec0));
  // Every in-transit drop has exactly one recorded cause.
  EXPECT_EQ(transit.total() - transit0,
            (loss.total() - loss0) + (corrupt.total() - corrupt0) +
                (link_dead.total() - dead0));
  // The soak actually injected something on every path.
  EXPECT_GT(loss.total() - loss0, 0u);
  EXPECT_GT(corrupt.total() - corrupt0, 0u);
  EXPECT_GT(dup.total() - dup0, 0u);
  EXPECT_GT(link_dead.total() - dead0, 0u);
}

}  // namespace
}  // namespace rtr::exp
