// Chaos soak (`ctest -L chaos`): hundreds of seeded FaultPlans pushed
// through the full exp::run_recoverable fault pipeline.  Two pillars:
//
//  * Thread-count invariance: every RecoverableResults field is
//    bit-identical at --threads 1, 2 and 8 for every base seed, because
//    each scenario owns its Simulator, Network, DistributedRtr and
//    FaultPlan substream (FaultPlan::stream_seed).
//  * Conservation: the rtr.fault.* counters obey their exact identities
//    over the whole soak -- nothing injected is ever lost track of, and
//    every session ends in exactly one terminal outcome.
//
// CI runs this label under ASan/UBSan and TSan; the default tier-1
// ctest pass runs it unsanitized.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include <algorithm>

#include "exp/cases.h"
#include "exp/context.h"
#include "exp/runners.h"
#include "fault/fault.h"
#include "fault/plan.h"
#include "obs/metrics.h"
#include "storm/engine.h"
#include "storm/timeline.h"

namespace rtr::exp {
namespace {

/// Shared topology + scenario set: built once per process, reused by
/// every soak iteration so the time goes into the soak itself.
struct ChaosWorld {
  TopologyContext ctx;
  std::vector<Scenario> scenarios;
};

const ChaosWorld& world() {
  static const ChaosWorld* w = [] {
    auto* out = new ChaosWorld{make_context(graph::spec_by_name("AS209")),
                               {}};
    CaseBudget budget;
    budget.recoverable = 40;
    budget.irrecoverable = 0;  // fault mode only runs recoverable cases
    out->scenarios =
        generate_scenarios(out->ctx, fail::ScenarioConfig{}, budget, 2601);
    return out;
  }();
  return *w;
}

/// Derives an armed FaultOptions from a base seed: rotate through
/// loss-heavy, corrupt-heavy, duplicate-heavy, dynamic-death and
/// everything-at-once profiles so the soak exercises every injection
/// path, not just the blended average.
fault::FaultOptions chaos_options(std::uint64_t seed) {
  fault::FaultOptions f;
  f.seed = seed;
  f.retry_cap = 3;
  f.backoff_base_ms = 5.0;
  switch (seed % 5) {
    case 0:
      f.loss_prob = 0.05;
      break;
    case 1:
      f.corrupt_prob = 0.04;
      break;
    case 2:
      f.duplicate_prob = 0.06;
      break;
    case 3:
      f.dynamic_links = 2;
      f.dynamic_window_ms = 40.0;
      f.flap_prob = 0.5;
      break;
    default:
      f.loss_prob = 0.02;
      f.corrupt_prob = 0.02;
      f.duplicate_prob = 0.02;
      f.max_detection_delay_ms = 5.0;
      f.dynamic_links = 1;
      f.dynamic_window_ms = 60.0;
      break;
  }
  return f;
}

RunOptions chaos_run(std::uint64_t seed, std::size_t threads) {
  RunOptions opts;
  opts.run_fcp = false;
  opts.run_mrc = false;
  opts.fault = chaos_options(seed);
  opts.threads = threads;
  return opts;
}

void expect_identical(const RecoverableResults& a,
                      const RecoverableResults& b) {
  EXPECT_EQ(a.topo, b.topo);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.rtr_recovered, b.rtr_recovered);
  EXPECT_EQ(a.rtr_optimal, b.rtr_optimal);
  EXPECT_EQ(a.rtr_phase1_aborted, b.rtr_phase1_aborted);
  EXPECT_EQ(a.rtr_unrecovered, b.rtr_unrecovered);
  EXPECT_EQ(a.rtr_dropped, b.rtr_dropped);
  EXPECT_EQ(a.rtr_retry_attempts, b.rtr_retry_attempts);
  EXPECT_EQ(a.rtr_reinitiations, b.rtr_reinitiations);
  // Vector comparisons are element-wise and exact: "bit-identical", not
  // "statistically close".
  EXPECT_EQ(a.rtr_recovery_ms, b.rtr_recovery_ms);
  EXPECT_EQ(a.rtr_stretch, b.rtr_stretch);
  EXPECT_EQ(a.phase1_duration_ms, b.phase1_duration_ms);
  EXPECT_EQ(a.rtr_calcs, b.rtr_calcs);
  EXPECT_EQ(a.rtr_bytes_timeline, b.rtr_bytes_timeline);
}

TEST(ChaosSoak, BitIdenticalAcrossThreadCountsForEverySeed) {
  const ChaosWorld& w = world();
  ASSERT_FALSE(w.scenarios.empty());
  // Every run compiles one FaultPlan per scenario (stream-seeded from
  // the base seed), so plans exercised = seeds x scenarios; push the
  // soak past 200 distinct plans regardless of how the budget packed.
  const std::size_t per_run = w.scenarios.size();
  std::size_t seeds = (200 + per_run - 1) / per_run;
  if (seeds < 10) seeds = 10;
  std::size_t plans = 0;
  for (std::uint64_t s = 0; s < seeds; ++s) {
    const std::uint64_t base = 0xC0DED00D + 977 * s;
    const RecoverableResults serial =
        run_recoverable(w.ctx, w.scenarios, chaos_run(base, 1));
    EXPECT_EQ(serial.cases, 40u);
    plans += per_run;
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      const RecoverableResults parallel =
          run_recoverable(w.ctx, w.scenarios, chaos_run(base, threads));
      expect_identical(serial, parallel);
    }
  }
  EXPECT_GE(plans, 200u);
}

/// A rolling-disaster profile on top of the packet-level chaos: every
/// storm knob armed (overlap, growth, flaps, budget) so the soak
/// exercises the full delta grammar, with the FaultPlan overlay active
/// for the shadowed-flap precedence path.
storm::StormOptions chaos_storm_options(std::uint64_t seed) {
  storm::StormOptions o;
  o.ticks = 12;
  o.cells = 2;
  o.radius = 200.0;
  o.growth = 15.0;
  o.speed = 60.0;
  o.flap_prob = 0.4;
  // Tight enough that a tick marking every planning source stale
  // cannot fund them all at once -- the soak must see real stalls.
  o.budget_ops = 8;
  o.seed = seed;
  return o;
}

RunOptions chaos_storm_run(std::uint64_t seed, std::size_t threads) {
  RunOptions opts = chaos_run(seed, threads);
  opts.storm = chaos_storm_options(seed);
  return opts;
}

void expect_identical_storm(const RecoverableResults& a,
                            const RecoverableResults& b) {
  EXPECT_EQ(a.storm_ticks, b.storm_ticks);
  EXPECT_EQ(a.storm_drain_ticks, b.storm_drain_ticks);
  EXPECT_EQ(a.storm_delta_links, b.storm_delta_links);
  EXPECT_EQ(a.storm_delta_nodes, b.storm_delta_nodes);
  EXPECT_EQ(a.storm_shadowed_flaps, b.storm_shadowed_flaps);
  EXPECT_EQ(a.storm_repairs, b.storm_repairs);
  EXPECT_EQ(a.storm_fallbacks, b.storm_fallbacks);
  EXPECT_EQ(a.storm_repair_ops, b.storm_repair_ops);
  EXPECT_EQ(a.storm_budget_stalls, b.storm_budget_stalls);
  EXPECT_EQ(a.storm_unreachable_pairs, b.storm_unreachable_pairs);
  EXPECT_EQ(a.storm_dist_digest, b.storm_dist_digest);
}

// Storm mode through the full exp pipeline: every scenario compiles its
// own storm substream plus a FaultPlan overlay, and the merged
// aggregates -- including the order-independent tree digest -- are
// bit-identical at 1, 2 and 8 worker threads.
TEST(ChaosSoak, StormTrajectoriesBitIdenticalAcrossThreadCounts) {
  const ChaosWorld& w = world();
  // One storm plan per scenario per run; push past 50 distinct plans
  // regardless of how the case budget packed into scenarios.
  const std::size_t per_run = w.scenarios.size();
  std::size_t seeds = (50 + per_run - 1) / per_run;
  if (seeds < 5) seeds = 5;
  std::size_t plans = 0;
  for (std::uint64_t s = 0; s < seeds; ++s) {
    const std::uint64_t base = 0x5EED5701 + 7919 * s;
    const RecoverableResults serial =
        run_recoverable(w.ctx, w.scenarios, chaos_storm_run(base, 1));
    EXPECT_GT(serial.storm_ticks, 0u);
    EXPECT_GT(serial.storm_delta_links, 0u);
    EXPECT_GT(serial.storm_repairs, 0u);
    plans += per_run;
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      const RecoverableResults parallel =
          run_recoverable(w.ctx, w.scenarios, chaos_storm_run(base, threads));
      expect_identical_storm(serial, parallel);
    }
  }
  EXPECT_GE(plans, 50u);
}

// The per-tick ledger of >= 50 storm plans (seed x scenario), each with
// the packet-level fault overlay armed, balances exactly: cumulative
// failed links evolve by the tick's deltas from the scenario's static
// base, every total matches its per-tick sum, node deaths never repeat,
// and the engine's tick account covers the storm plus its drain tail.
TEST(ChaosSoak, StormPerTickLedgerBalances) {
  const ChaosWorld& w = world();
  std::size_t seeds = (50 + w.scenarios.size() - 1) / w.scenarios.size();
  if (seeds < 5) seeds = 5;
  std::size_t plans = 0, stalls = 0, shadowed = 0;
  for (std::uint64_t s = 0; s < seeds; ++s) {
    const std::uint64_t base = 0x5EED5702 + 104729 * s;
    const storm::StormOptions so = chaos_storm_options(base);
    const fault::FaultOptions fo = chaos_options(base);
    for (std::size_t i = 0; i < w.scenarios.size(); ++i) {
      const Scenario& sc = w.scenarios[i];
      const std::uint64_t stream = fault::FaultPlan::stream_seed(so.seed, i);
      const fault::FaultPlan plan(
          fo, fault::FaultPlan::stream_seed(fo.seed, i), w.ctx.g, sc.failure);
      const storm::StormTimeline tl = storm::compile_timeline(
          storm::make_storm_spec(so, stream), w.ctx.g, stream, &sc.failure,
          &plan);
      std::vector<NodeId> sources;
      for (const TestCase& tc : sc.recoverable) sources.push_back(tc.initiator);
      std::sort(sources.begin(), sources.end());
      sources.erase(std::unique(sources.begin(), sources.end()),
                    sources.end());
      storm::StormEngineOptions eopts;
      eopts.budget_ops = so.budget_ops;
      const storm::StormRunResult r =
          storm::run_storm(w.ctx.g, w.ctx.spf_base, tl, &sc.failure, sources,
                           eopts);
      ++plans;

      ASSERT_EQ(r.storm_ticks, tl.ticks.size());
      ASSERT_EQ(r.per_tick.size(), r.storm_ticks + r.drain_ticks);
      std::size_t failed = sc.failure.num_failed_links();
      std::size_t repairs = 0, fallbacks = 0, ops = 0;
      std::vector<char> node_dead(w.ctx.g.num_nodes(), 0);
      for (std::size_t t = 0; t < r.per_tick.size(); ++t) {
        const storm::StormTickStats& ts = r.per_tick[t];
        EXPECT_EQ(ts.tick, t);
        if (t >= r.storm_ticks) {
          // Drain ticks only fund repairs; the storm itself is over.
          EXPECT_EQ(ts.links_down + ts.links_up + ts.nodes_down, 0u);
        } else {
          const storm::TickDelta& d = tl.ticks[t];
          EXPECT_EQ(ts.links_down, d.links_down.size());
          EXPECT_EQ(ts.links_up, d.links_up.size());
          EXPECT_EQ(ts.nodes_down, d.nodes_down.size());
          EXPECT_EQ(ts.shadowed_flaps, d.shadowed_flaps);
          for (NodeId n : d.nodes_down) {
            EXPECT_EQ(node_dead[n], 0) << "node " << n << " died twice";
            EXPECT_FALSE(sc.failure.node_failed(n));
            node_dead[n] = 1;
          }
          shadowed += d.shadowed_flaps;
        }
        ASSERT_GE(failed + ts.links_down, ts.links_up);
        failed += ts.links_down;
        failed -= ts.links_up;
        EXPECT_EQ(ts.failed_links, failed)
            << "seed " << base << " scenario " << i << " tick " << t;
        repairs += ts.repairs;
        fallbacks += ts.fallbacks;
        ops += ts.repair_ops;
        stalls += ts.budget_stalls;
      }
      EXPECT_EQ(repairs, r.total_repairs);
      EXPECT_EQ(fallbacks, r.total_fallbacks);
      EXPECT_EQ(ops, r.total_repair_ops);
      EXPECT_EQ(tl.total_links_down() + tl.total_links_up() +
                    tl.total_nodes_down(),
                [&tl] {
                  std::size_t n = 0;
                  for (const storm::TickDelta& d : tl.ticks) {
                    n += d.links_down.size() + d.links_up.size() +
                         d.nodes_down.size();
                  }
                  return n;
                }());
    }
  }
  EXPECT_GE(plans, 50u);
  // The soak must actually exercise the throttle and the precedence
  // path, not just quiet trajectories.
  EXPECT_GT(stalls, 0u);
  EXPECT_GT(shadowed, 0u);
}

TEST(ChaosSoak, CountersConserveEverythingInjected) {
  const ChaosWorld& w = world();
  auto& reg = obs::Registry::global();
  obs::Counter& loss = reg.counter("rtr.fault.loss");
  obs::Counter& corrupt = reg.counter("rtr.fault.corrupt");
  obs::Counter& crc = reg.counter("rtr.fault.corrupt.crc_caught");
  obs::Counter& codec = reg.counter("rtr.fault.corrupt.codec_error");
  obs::Counter& dup = reg.counter("rtr.fault.duplicate");
  obs::Counter& sup = reg.counter("rtr.fault.duplicate.suppressed");
  obs::Counter& link_dead = reg.counter("rtr.fault.link_dead");
  obs::Counter& transit = reg.counter("rtr.fault.transit_dropped");

  const obs::Value loss0 = loss.total(), corrupt0 = corrupt.total();
  const obs::Value crc0 = crc.total(), codec0 = codec.total();
  const obs::Value dup0 = dup.total(), sup0 = sup.total();
  const obs::Value dead0 = link_dead.total(), transit0 = transit.total();

  std::size_t cases = 0, recovered = 0, unrecovered = 0, dropped = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    const RecoverableResults r =
        run_recoverable(w.ctx, w.scenarios, chaos_run(7000 + s, 2));
    cases += r.cases;
    recovered += r.rtr_recovered;
    unrecovered += r.rtr_unrecovered;
    dropped += r.rtr_dropped;
    // Per-run identities: one terminal recovery time per recovered
    // case, and every attempt beyond a session's first is a counted
    // re-initiation.
    EXPECT_EQ(r.rtr_recovery_ms.size(), r.rtr_recovered);
    EXPECT_EQ(r.rtr_retry_attempts, r.cases + r.rtr_reinitiations);
  }

  // Every session reached exactly one terminal outcome.
  EXPECT_EQ(recovered + unrecovered + dropped, cases);
  // Every injected duplicate was suppressed by exactly one receiver.
  EXPECT_EQ(dup.total() - dup0, sup.total() - sup0);
  // Every corruption was classified exactly once.
  EXPECT_EQ(corrupt.total() - corrupt0,
            (crc.total() - crc0) + (codec.total() - codec0));
  // Every in-transit drop has exactly one recorded cause.
  EXPECT_EQ(transit.total() - transit0,
            (loss.total() - loss0) + (corrupt.total() - corrupt0) +
                (link_dead.total() - dead0));
  // The soak actually injected something on every path.
  EXPECT_GT(loss.total() - loss0, 0u);
  EXPECT_GT(corrupt.total() - corrupt0, 0u);
  EXPECT_GT(dup.total() - dup0, 0u);
  EXPECT_GT(link_dead.total() - dead0, 0u);
}

}  // namespace
}  // namespace rtr::exp
