// rtr::svc -- the recovery-planning service layer.
//
// Covers the ISSUE 7 satellite checklist: canonical wire codec under
// the PR 5 adversarial patterns (strict prefixes, single-bit flips),
// bounded-queue admission under burst load, deadline expiry at each
// phase boundary with partial diagnostics, response byte-identity at
// 1/2/8 workers, server reuse after rejected/expired requests, and the
// rtr.svc.* metrics families.
#include <cmath>
#include <cstdint>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/rtr.h"
#include "failure/failure_set.h"
#include "graph/crossings.h"
#include "graph/paper_topology.h"
#include "net/delay.h"
#include "obs/metrics.h"
#include "svc/deadline.h"
#include "svc/queue.h"
#include "svc/server.h"
#include "svc/wire.h"

using namespace rtr;
using graph::paper_node;

namespace {

using Bytes = std::vector<std::uint8_t>;

// Deliberate mirrors of the envelope constants in src/svc/wire.{h,cc},
// written as independent literals so a wire-format change must touch
// this file (and tools/lint/wire_schema.toml, which cross-checks all
// three) in the same commit.
constexpr std::uint8_t kRequestMagic = 0x52;
constexpr std::uint8_t kResponseMagic = 0x53;
constexpr std::size_t kMaxFramePayload = 1048576;

svc::PlanRequest fig1_plan_request() {
  svc::PlanRequest plan;
  plan.topology = "fig1";
  // The worked-example failure: the ground truth of the Fig. 1 area,
  // sent as the explicit id lists an operations plane would have.
  const graph::Graph g = graph::fig1_graph();
  const fail::FailureSet fs(g, fail::CircleArea(graph::fig1_failure_area()));
  for (NodeId n = 0; n < g.node_count(); ++n) {
    if (fs.node_failed(n)) plan.failed_nodes.push_back(n);
  }
  for (LinkId l = 0; l < g.link_count(); ++l) {
    if (fs.link_failed(l)) plan.failed_links.push_back(l);
  }
  plan.flows.push_back({paper_node(6), paper_node(17)});
  return plan;
}

Bytes make_plan_frame(std::uint64_t id, const svc::PlanRequest& plan,
                      std::uint32_t deadline_ms = 0) {
  svc::Request req;
  req.id = id;
  req.deadline_ms = deadline_ms;
  req.endpoint = "plan";
  req.body = svc::encode_plan_request(plan);
  return svc::encode_frame(svc::encode_request(req));
}

svc::Response roundtrip_response(const Bytes& frame) {
  return svc::decode_response(svc::decode_frame(frame));
}

std::unique_ptr<svc::Server> make_fig1_server(std::size_t workers,
                                              std::size_t queue_capacity =
                                                  64) {
  svc::ServerOptions opts;
  opts.workers = workers;
  opts.queue_capacity = queue_capacity;
  auto server = std::make_unique<svc::Server>(opts);
  server->add_topology("fig1", graph::fig1_graph());
  return server;
}

obs::Value counter_total(const char* name) {
  return obs::Registry::global().counter(name).total();
}

// ------------------------------------------------------------ codec -----

TEST(SvcWire, EnvelopeLayoutPinsMagicAndFrameCap) {
  // Magic byte sits right after the u32 length prefix, on both
  // directions of the envelope.
  const Bytes req_frame = make_plan_frame(1, fig1_plan_request());
  ASSERT_GE(req_frame.size(), 5u);
  EXPECT_EQ(req_frame[4], kRequestMagic);

  svc::Response resp;
  resp.id = 1;
  resp.status = svc::Status::kOk;
  const Bytes resp_frame = svc::encode_frame(svc::encode_response(resp));
  ASSERT_GE(resp_frame.size(), 5u);
  EXPECT_EQ(resp_frame[4], kResponseMagic);

  EXPECT_EQ(svc::kMaxFramePayload, kMaxFramePayload);
}

TEST(SvcWire, EnvelopeAndBodiesRoundTrip) {
  svc::Request req;
  req.id = 0x0123456789abcdefULL;
  req.deadline_ms = 250;
  req.endpoint = "plan";
  req.body = {1, 2, 3};
  const svc::Request req2 =
      svc::decode_request(svc::decode_frame(
          svc::encode_frame(svc::encode_request(req))));
  EXPECT_EQ(req2.id, req.id);
  EXPECT_EQ(req2.deadline_ms, req.deadline_ms);
  EXPECT_EQ(req2.endpoint, req.endpoint);
  EXPECT_EQ(req2.body, req.body);

  const svc::PlanRequest plan = fig1_plan_request();
  const svc::PlanRequest plan2 =
      svc::decode_plan_request(svc::encode_plan_request(plan));
  EXPECT_EQ(plan2.topology, plan.topology);
  EXPECT_EQ(plan2.failed_nodes, plan.failed_nodes);
  EXPECT_EQ(plan2.failed_links, plan.failed_links);
  ASSERT_EQ(plan2.flows.size(), plan.flows.size());
  EXPECT_EQ(plan2.flows[0].initiator, plan.flows[0].initiator);
  EXPECT_EQ(plan2.flows[0].dest, plan.flows[0].dest);

  svc::PlanResponse presp;
  presp.flows_total = 2;
  presp.flows_done = 1;
  presp.sim_elapsed_us = 12345;
  svc::FlowResult fr;
  fr.initiator = 3;
  fr.dest = 9;
  fr.outcome = svc::FlowOutcome::kRecovered;
  fr.sp_calculations = 1;
  fr.path_cost = 41.5;
  fr.path = {3, 5, 9};
  presp.results.push_back(fr);
  const svc::PlanResponse presp2 =
      svc::decode_plan_response(svc::encode_plan_response(presp));
  EXPECT_EQ(presp2.flows_done, 1u);
  EXPECT_EQ(presp2.sim_elapsed_us, 12345u);
  ASSERT_EQ(presp2.results.size(), 1u);
  EXPECT_EQ(presp2.results[0].path, fr.path);
  EXPECT_EQ(presp2.results[0].path_cost, 41.5);

  svc::InfoResponse info;
  info.topologies.push_back({"fig1", 18, 26});
  const svc::InfoResponse info2 =
      svc::decode_info_response(svc::encode_info_response(info));
  ASSERT_EQ(info2.topologies.size(), 1u);
  EXPECT_EQ(info2.topologies[0].name, "fig1");
  EXPECT_EQ(info2.topologies[0].nodes, 18u);
  EXPECT_EQ(info2.topologies[0].links, 26u);
}

// PR 5 adversarial pattern 1: every strict prefix of a valid encoding
// must throw -- the sequential fixed-width reads leave no byte string
// both shorter and decodable.
TEST(SvcWire, EveryStrictPrefixThrows) {
  const Bytes frame = make_plan_frame(7, fig1_plan_request(), 100);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const Bytes prefix(frame.begin(),
                       frame.begin() + static_cast<long>(len));
    EXPECT_THROW((void)svc::decode_frame(prefix), svc::WireError)
        << "prefix of length " << len << " must not decode";
  }

  const Bytes body = svc::encode_plan_request(fig1_plan_request());
  for (std::size_t len = 0; len < body.size(); ++len) {
    const Bytes prefix(body.begin(), body.begin() + static_cast<long>(len));
    EXPECT_THROW((void)svc::decode_plan_request(prefix), svc::WireError)
        << "plan-body prefix of length " << len << " must not decode";
  }
}

// PR 5 adversarial pattern 2: flip every bit of a valid encoding; the
// codec must either reject the mutation or decode it to a value that
// re-encodes to exactly the mutated bytes (canonical encodings only --
// no two byte strings may decode to the same value).
TEST(SvcWire, BitFlipsEitherThrowOrReencodeIdentically) {
  const Bytes payload = svc::encode_request([] {
    svc::Request req;
    req.id = 99;
    req.deadline_ms = 10;
    req.endpoint = "plan";
    req.body = svc::encode_plan_request(fig1_plan_request());
    return req;
  }());
  for (std::size_t bit = 0; bit < payload.size() * 8; ++bit) {
    Bytes mutated = payload;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      const svc::Request decoded = svc::decode_request(mutated);
      EXPECT_EQ(svc::encode_request(decoded), mutated)
          << "bit " << bit << ": decode accepted a non-canonical encoding";
    } catch (const svc::WireError&) {
      // Rejection is the other acceptable outcome.
    }
  }
}

TEST(SvcWire, ResponseBitFlipsEitherThrowOrReencodeIdentically) {
  svc::Response resp;
  resp.id = 42;
  resp.status = svc::Status::kOk;
  resp.message = "done";
  resp.body = {9, 8, 7};
  const Bytes payload = svc::encode_response(resp);
  for (std::size_t bit = 0; bit < payload.size() * 8; ++bit) {
    Bytes mutated = payload;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      const svc::Response decoded = svc::decode_response(mutated);
      EXPECT_EQ(svc::encode_response(decoded), mutated)
          << "bit " << bit << ": decode accepted a non-canonical encoding";
    } catch (const svc::WireError&) {
    }
  }
}

TEST(SvcWire, FrameCapRejectsAdversarialLengths) {
  // A declared length beyond the cap must be rejected before any
  // allocation happens.
  Bytes frame = {0xff, 0xff, 0xff, 0xff};
  EXPECT_THROW((void)svc::decode_frame(frame), svc::WireError);
  // Declared element counts beyond the actual payload too.
  Bytes body = svc::encode_plan_request(fig1_plan_request());
  // failed_nodes count sits right after the 1-byte name length + name.
  const std::size_t count_at = 1 + 4;  // "fig1"
  body[count_at] = 0xff;
  body[count_at + 1] = 0xff;
  EXPECT_THROW((void)svc::decode_plan_request(body), svc::WireError);
}

// ---------------------------------------------------------- serving -----

TEST(SvcServer, PlanMatchesTheWorkedExample) {
  auto server = make_fig1_server(1);
  server->start();
  const svc::Response resp =
      roundtrip_response(server->call(make_plan_frame(1, fig1_plan_request())));
  EXPECT_EQ(resp.id, 1u);
  ASSERT_EQ(resp.status, svc::Status::kOk) << resp.message;
  const svc::PlanResponse plan = svc::decode_plan_response(resp.body);
  EXPECT_EQ(plan.flows_total, 1u);
  ASSERT_EQ(plan.flows_done, 1u);
  const svc::FlowResult& fr = plan.results[0];
  EXPECT_EQ(fr.outcome, svc::FlowOutcome::kRecovered);
  EXPECT_EQ(fr.sp_calculations, 1u);
  // Section II-B worked example: v6 -> v5 -> v12 -> v14 -> v17.
  EXPECT_EQ(fr.path,
            (std::vector<NodeId>{paper_node(6), paper_node(5),
                                 paper_node(12), paper_node(14),
                                 paper_node(17)}));
  EXPECT_GT(plan.sim_elapsed_us, 0u);
}

TEST(SvcServer, InfoListsTopologiesInNameOrder) {
  svc::ServerOptions opts;
  opts.workers = 1;
  svc::Server server(opts);
  server.add_topology("zeta", graph::fig1_graph());
  server.add_topology("alpha", graph::fig1_graph());
  server.start();

  svc::Request req;
  req.id = 5;
  req.endpoint = "info";
  req.body = svc::encode_info_request({});
  const svc::Response resp = roundtrip_response(
      server.call(svc::encode_frame(svc::encode_request(req))));
  ASSERT_EQ(resp.status, svc::Status::kOk);
  const svc::InfoResponse info = svc::decode_info_response(resp.body);
  ASSERT_EQ(info.topologies.size(), 2u);
  EXPECT_EQ(info.topologies[0].name, "alpha");
  EXPECT_EQ(info.topologies[1].name, "zeta");
  EXPECT_EQ(info.topologies[0].nodes, graph::fig1_graph().num_nodes());
}

TEST(SvcServer, MalformedAndInvalidRequestsAreAnsweredNotFatal) {
  auto server = make_fig1_server(2);
  server->start();

  // Garbage bytes: kBadRequest, not a crash or dropped future.
  EXPECT_EQ(roundtrip_response(server->call({1, 2, 3})).status,
            svc::Status::kBadRequest);

  // Unknown endpoint.
  svc::Request req;
  req.id = 11;
  req.endpoint = "nope";
  const svc::Response r2 = roundtrip_response(
      server->call(svc::encode_frame(svc::encode_request(req))));
  EXPECT_EQ(r2.status, svc::Status::kNotFound);
  EXPECT_EQ(r2.id, 11u);

  // Unknown topology.
  svc::PlanRequest plan = fig1_plan_request();
  plan.topology = "no-such-as";
  EXPECT_EQ(roundtrip_response(server->call(make_plan_frame(12, plan))).status,
            svc::Status::kNotFound);

  // Out-of-range flow id: whole request rejected.
  plan = fig1_plan_request();
  plan.flows.push_back({9999, 3});
  EXPECT_EQ(roundtrip_response(server->call(make_plan_frame(13, plan))).status,
            svc::Status::kBadRequest);

  // Self-flow.
  plan = fig1_plan_request();
  plan.flows[0] = {paper_node(6), paper_node(6)};
  EXPECT_EQ(roundtrip_response(server->call(make_plan_frame(14, plan))).status,
            svc::Status::kBadRequest);

  // The server stays serviceable after every error above.
  EXPECT_EQ(
      roundtrip_response(server->call(make_plan_frame(15, fig1_plan_request())))
          .status,
      svc::Status::kOk);
}

// ------------------------------------------------------- admission -----

TEST(SvcServer, BoundedQueueRejectsBurstDeterministically) {
  constexpr std::size_t kCapacity = 4;
  constexpr std::size_t kBurst = 10;
  auto server = make_fig1_server(2, kCapacity);

  const obs::Value rejected_before = counter_total("rtr.svc.rejected");
  const obs::Value admitted_before = counter_total("rtr.svc.admitted");

  // Submit the burst before start(): with no worker draining, admission
  // verdicts depend only on capacity -- exactly kBurst - kCapacity
  // rejections, deterministically.
  std::vector<std::future<Bytes>> futures;
  for (std::size_t i = 0; i < kBurst; ++i) {
    futures.push_back(
        server->submit(make_plan_frame(100 + i, fig1_plan_request())));
  }
  EXPECT_EQ(counter_total("rtr.svc.rejected"),
            rejected_before + (kBurst - kCapacity));
  EXPECT_EQ(counter_total("rtr.svc.admitted"), admitted_before + kCapacity);

  server->start();
  std::size_t ok = 0;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const svc::Response resp = roundtrip_response(futures[i].get());
    EXPECT_EQ(resp.id, 100 + i) << "responses must be addressable by id";
    if (resp.status == svc::Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(resp.status, svc::Status::kRejected);
      EXPECT_TRUE(resp.body.empty());
      ++rejected;
    }
  }
  EXPECT_EQ(ok, kCapacity);
  EXPECT_EQ(rejected, kBurst - kCapacity);

  // Reusable after shedding load: the very next request succeeds.
  EXPECT_EQ(
      roundtrip_response(server->call(make_plan_frame(1, fig1_plan_request())))
          .status,
      svc::Status::kOk);
}

// ------------------------------------------------------- deadlines -----

// Reference timings for the deadline tests, derived from the engine
// itself so the expectations track the topology, not magic numbers.
struct DeadlineRig {
  graph::Graph g = graph::fig1_graph();
  graph::CrossingIndex crossings{g};
  spf::RoutingTable rt{g};
  fail::FailureSet fs = fail::FailureSet::of_nodes(g, {paper_node(17)});
  std::size_t phase1_hops = 0;
  std::size_t walk_hops = 0;
  double flow1_ms = 0;

  DeadlineRig() {
    core::RtrRecovery ref(g, crossings, rt, fs);
    phase1_hops =
        ref.phase1_for(paper_node(15), rt.next_link(paper_node(15),
                                                    paper_node(1)))
            .hops();
    // v1 sits across the topology from v15, so the phase-2 walk spans
    // several hops -- room to place a deadline between phase-1
    // completion and full flow completion.
    const core::RecoveryResult r =
        ref.recover(paper_node(15), paper_node(1));
    walk_hops = r.delivered_hops;
    flow1_ms = net::DelayModel{}.duration_ms(phase1_hops + walk_hops);
  }

  svc::PlanRequest request(std::vector<svc::PlanFlow> flows) const {
    svc::PlanRequest plan;
    plan.topology = "fig1";
    plan.failed_nodes = {paper_node(17)};
    plan.flows = std::move(flows);
    return plan;
  }
};

TEST(SvcDeadline, ExpiresAtThePhase1Boundary) {
  DeadlineRig rig;
  ASSERT_GE(rig.phase1_hops, 1u);
  auto server = make_fig1_server(1);
  server->start();

  // 1 ms < one 1.8 ms hop: the phase-1 traversal alone blows the
  // budget, so phase 2 never starts and no flow completes.
  const svc::Response resp = roundtrip_response(server->call(make_plan_frame(
      21, rig.request({{paper_node(15), paper_node(16)}}), 1)));
  ASSERT_EQ(resp.status, svc::Status::kDeadlineExceeded);
  EXPECT_NE(resp.message.find("0/1"), std::string::npos) << resp.message;
  const svc::PlanResponse plan = svc::decode_plan_response(resp.body);
  EXPECT_EQ(plan.flows_total, 1u);
  EXPECT_EQ(plan.flows_done, 0u);
  EXPECT_GT(plan.sim_elapsed_us, 1000u)
      << "partial diagnostics must report the simulated time spent";
}

TEST(SvcDeadline, ExpiresAtTheFlowBoundaryWithPartialResults) {
  DeadlineRig rig;
  ASSERT_GE(rig.walk_hops, 2u)
      << "rig assumption: flow 1 walks >= 2 hops so a deadline can sit "
         "between phase 1 and full completion";
  auto server = make_fig1_server(1);
  server->start();

  // Deadline above phase-1-plus-nothing but below flow 1's total: flow
  // 1 completes (expiry is only checked at boundaries), flow 2 -- same
  // initiator, so no further phase-1 charge -- is cut at its flow
  // boundary.  floor(flow1_ms - 1) >= phase1 cost because the walk
  // costs >= 3.6 ms.
  const auto deadline =
      static_cast<std::uint32_t>(std::floor(rig.flow1_ms - 1.0));
  const svc::Response resp = roundtrip_response(server->call(make_plan_frame(
      22,
      rig.request({{paper_node(15), paper_node(1)},
                   {paper_node(15), paper_node(13)}}),
      deadline)));
  ASSERT_EQ(resp.status, svc::Status::kDeadlineExceeded);
  const svc::PlanResponse plan = svc::decode_plan_response(resp.body);
  EXPECT_EQ(plan.flows_total, 2u);
  ASSERT_EQ(plan.flows_done, 1u) << "flow 1 finished before the deadline";
  EXPECT_EQ(plan.results[0].initiator, paper_node(15));

  // Control: no deadline serves every flow, on the same server.
  const svc::Response ok = roundtrip_response(server->call(make_plan_frame(
      23,
      rig.request({{paper_node(15), paper_node(1)},
                   {paper_node(15), paper_node(13)}}),
      0)));
  EXPECT_EQ(ok.status, svc::Status::kOk);
  EXPECT_EQ(svc::decode_plan_response(ok.body).flows_done, 2u);
}

// --------------------------------------------------- determinism -----

TEST(SvcServer, ResponsesByteIdenticalAcrossWorkerCounts) {
  // A mixed batch: the worked example, a deadline-limited request, a
  // multi-flow request, an info call, and errors.
  DeadlineRig rig;
  std::vector<Bytes> frames;
  frames.push_back(make_plan_frame(1, fig1_plan_request()));
  frames.push_back(make_plan_frame(
      2, rig.request({{paper_node(15), paper_node(16)}}), 1));
  frames.push_back(make_plan_frame(
      3,
      rig.request({{paper_node(15), paper_node(16)},
                   {paper_node(14), paper_node(18)},
                   {paper_node(15), paper_node(13)}}),
      0));
  {
    svc::Request req;
    req.id = 4;
    req.endpoint = "info";
    req.body = svc::encode_info_request({});
    frames.push_back(svc::encode_frame(svc::encode_request(req)));
  }
  {
    svc::PlanRequest bad = fig1_plan_request();
    bad.topology = "missing";
    frames.push_back(make_plan_frame(5, bad));
  }

  std::vector<std::vector<Bytes>> per_worker_count;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    auto server = make_fig1_server(workers);
    server->start();
    std::vector<std::future<Bytes>> futures;
    futures.reserve(frames.size());
    for (const Bytes& f : frames) futures.push_back(server->submit(f));
    std::vector<Bytes> responses;
    responses.reserve(futures.size());
    for (auto& fut : futures) responses.push_back(fut.get());
    per_worker_count.push_back(std::move(responses));
  }

  for (std::size_t w = 1; w < per_worker_count.size(); ++w) {
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(per_worker_count[0][i], per_worker_count[w][i])
          << "request " << i << " diverged between 1 worker and config "
          << w;
    }
  }
}

// ------------------------------------------------------ metrics -----

TEST(SvcMetrics, CountersAppearAndMoveWithTraffic) {
  auto server = make_fig1_server(1, /*queue_capacity=*/1);

  const obs::Value served_before = counter_total("rtr.svc.served");
  const obs::Value dl_before = counter_total("rtr.svc.deadline_exceeded");
  const obs::Value plan_req_before = counter_total("rtr.svc.plan.requests");
  const obs::Value plan_dl_before =
      counter_total("rtr.svc.plan.deadline_exceeded");
  const obs::Value plan_ok_before = counter_total("rtr.svc.plan.ok");

  DeadlineRig rig;
  server->start();
  (void)server->call(make_plan_frame(1, fig1_plan_request()));
  (void)server->call(make_plan_frame(
      2, rig.request({{paper_node(15), paper_node(16)}}), 1));

  EXPECT_EQ(counter_total("rtr.svc.served"), served_before + 2);
  EXPECT_EQ(counter_total("rtr.svc.deadline_exceeded"), dl_before + 1);
  EXPECT_EQ(counter_total("rtr.svc.plan.requests"), plan_req_before + 2);
  EXPECT_EQ(counter_total("rtr.svc.plan.deadline_exceeded"),
            plan_dl_before + 1);
  EXPECT_EQ(counter_total("rtr.svc.plan.ok"), plan_ok_before + 1);

  // The queue-depth gauge exists and is volatile (occupancy depends on
  // drain timing, so it must never enter the stable document section).
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  for (const obs::Sample& s : snap) {
    if (s.name == "rtr.svc.queue_depth") {
      EXPECT_EQ(s.stability, obs::Stability::kVolatile);
      return;
    }
  }
  FAIL() << "rtr.svc.queue_depth gauge missing from the registry";
}

// ------------------------------------------------------ queue unit -----

TEST(SvcQueue, DrainsAfterCloseAndReopens) {
  svc::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3)) << "at capacity";
  q.close();
  EXPECT_FALSE(q.try_push(4)) << "closed";
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2) << "close() must not drop admitted items";
  EXPECT_EQ(q.pop(), std::nullopt);
  q.reopen();
  EXPECT_TRUE(q.try_push(5));
  EXPECT_EQ(q.pop(), 5);
}

TEST(SvcWire, StatusAndOutcomeNames) {
  EXPECT_STREQ(svc::to_string(svc::Status::kRejected), "rejected");
  EXPECT_STREQ(svc::to_string(svc::Status::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(svc::to_string(svc::FlowOutcome::kNoFailureObserved),
               "no_failure_observed");
}

}  // namespace
