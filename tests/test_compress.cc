#include <gtest/gtest.h>

#include <algorithm>

#include "common/expect.h"
#include "common/rng.h"
#include "net/compress.h"

namespace rtr::net {
namespace {

TEST(Varint, RoundTripBoundaries) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
        0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull}) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(buf, pos), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, SingleByteForSmallValues) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  put_varint(buf, 128);
  EXPECT_EQ(buf.size(), 3u);  // second value took two bytes
}

TEST(Varint, TruncatedThrows) {
  std::vector<std::uint8_t> buf = {0x80};  // continuation without end
  std::size_t pos = 0;
  EXPECT_THROW(get_varint(buf, pos), CodecError);
}

TEST(IdSet, RoundTripSortsIds) {
  const std::vector<LinkId> ids = {42, 7, 100, 8, 9};
  const auto decoded = decode_id_set(encode_id_set(ids));
  std::vector<LinkId> expected = ids;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(decoded, expected);
}

TEST(IdSet, EmptyAndSingleton) {
  EXPECT_TRUE(decode_id_set(encode_id_set({})).empty());
  EXPECT_EQ(decode_id_set(encode_id_set({5})),
            (std::vector<LinkId>{5}));
}

TEST(IdSet, DenseRunsCompressToOneBytePerId) {
  // 20 consecutive ids: count + first + 19 zero deltas = 21 bytes,
  // versus 40 bytes at 16 bits per id.
  std::vector<LinkId> ids;
  for (LinkId l = 50; l < 70; ++l) ids.push_back(l);
  EXPECT_EQ(encode_id_set(ids).size(), 21u);
}

TEST(IdSet, RejectsDuplicates) {
  EXPECT_THROW(encode_id_set({3, 3}), ContractViolation);
}

TEST(IdSet, RandomRoundTrips) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<LinkId> ids;
    std::vector<char> used(2000, 0);
    const std::size_t n = rng.index(60);
    while (ids.size() < n) {
      const LinkId l = static_cast<LinkId>(rng.index(2000));
      if (!used[l]) {
        used[l] = 1;
        ids.push_back(l);
      }
    }
    const auto decoded = decode_id_set(encode_id_set(ids));
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(decoded, ids);
  }
}

TEST(CompressedHeader, RoundTrip) {
  RtrHeader h;
  h.mode = Mode::kCollect;
  h.rec_init = 6;
  h.failed_links = {40, 7, 12, 13};
  h.cross_links = {3};
  const RtrHeader d = decode_compressed_header(encode_compressed_header(h));
  EXPECT_EQ(d.mode, h.mode);
  EXPECT_EQ(d.rec_init, h.rec_init);
  EXPECT_EQ(d.failed_links, (std::vector<LinkId>{7, 12, 13, 40}));
  EXPECT_EQ(d.cross_links, h.cross_links);
}

TEST(CompressedHeader, SourceRouteOrderPreserved) {
  RtrHeader h;
  h.mode = Mode::kSourceRoute;
  h.source_route = {9, 2, 57, 2};  // routes may revisit ids
  const RtrHeader d = decode_compressed_header(encode_compressed_header(h));
  EXPECT_EQ(d.source_route, h.source_route);
  EXPECT_EQ(d.rec_init, kNoNode);
}

TEST(CompressedHeader, SmallerThanPlainForClusteredFailures) {
  // Area failures produce clustered link ids; the compressed encoding
  // must beat the fixed 16-bit scheme (the Section III-E motivation).
  RtrHeader h;
  h.mode = Mode::kCollect;
  h.rec_init = 6;
  for (LinkId l = 100; l < 120; ++l) h.add_failed(l);
  h.cross_links = {130, 131};
  const HeaderSizes s = header_sizes(h);
  EXPECT_LT(s.compressed, s.plain);
  EXPECT_LT(s.compressed, s.plain * 3 / 4);
}

TEST(CompressedHeader, MalformedInputThrows) {
  EXPECT_THROW(decode_compressed_header({}), CodecError);
  EXPECT_THROW(decode_compressed_header({9}), CodecError);  // bad mode
  RtrHeader h;
  h.mode = Mode::kCollect;
  h.rec_init = 1;
  h.failed_links = {5, 6};
  auto bytes = encode_compressed_header(h);
  bytes.pop_back();
  EXPECT_THROW(decode_compressed_header(bytes), CodecError);
  bytes = encode_compressed_header(h);
  bytes.push_back(0);
  EXPECT_THROW(decode_compressed_header(bytes), CodecError);
}

TEST(CompressedHeader, RandomEquivalenceWithPlainCodec) {
  Rng rng(123);
  for (int trial = 0; trial < 100; ++trial) {
    RtrHeader h;
    h.mode = static_cast<Mode>(rng.index(3));
    h.rec_init = rng.bernoulli(0.2)
                     ? kNoNode
                     : static_cast<NodeId>(rng.index(500));
    std::vector<char> used(4000, 0);
    for (std::size_t i = rng.index(30); i > 0; --i) {
      const LinkId l = static_cast<LinkId>(rng.index(4000));
      if (!used[l]) {
        used[l] = 1;
        h.failed_links.push_back(l);
      }
    }
    for (std::size_t i = rng.index(6); i > 0; --i) {
      h.add_cross(static_cast<LinkId>(rng.index(4000)));
    }
    for (std::size_t i = rng.index(10); i > 0; --i) {
      h.source_route.push_back(static_cast<NodeId>(rng.index(500)));
    }
    const RtrHeader via_plain = decode(encode(h));
    RtrHeader via_comp =
        decode_compressed_header(encode_compressed_header(h));
    // The compressed codec sorts the set fields; normalise both sides.
    std::vector<LinkId> pf = via_plain.failed_links;
    std::sort(pf.begin(), pf.end());
    EXPECT_EQ(via_comp.failed_links, pf);
    std::vector<LinkId> pc = via_plain.cross_links;
    std::sort(pc.begin(), pc.end());
    EXPECT_EQ(via_comp.cross_links, pc);
    EXPECT_EQ(via_comp.source_route, via_plain.source_route);
    EXPECT_EQ(via_comp.rec_init, via_plain.rec_init);
    EXPECT_EQ(via_comp.mode, via_plain.mode);
  }
}

}  // namespace
}  // namespace rtr::net
