#include <gtest/gtest.h>

#include "common/expect.h"
#include "failure/failure_set.h"
#include "graph/gen/isp_gen.h"
#include "graph/paper_topology.h"
#include "net/igp.h"

namespace rtr::net {
namespace {

using fail::FailureSet;
using graph::paper_node;

TEST(Igp, NoFailureMeansInstantConvergence) {
  const graph::Graph g = graph::fig1_graph();
  const FailureSet none(g);
  const ConvergenceTimeline t = igp_convergence(g, none);
  EXPECT_DOUBLE_EQ(t.convergence_ms, 0.0);
  for (double v : t.converged_at_ms) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Igp, SingleLinkFailureTimeline) {
  const graph::Graph g = graph::fig1_graph();
  const LinkId dead = g.find_link(paper_node(6), paper_node(11));
  const FailureSet fs = FailureSet::of_links(g, {dead});
  const IgpTimers timers;
  const ConvergenceTimeline t = igp_convergence(g, fs, timers);

  // Detection at the hold time; the detecting routers converge first.
  EXPECT_DOUBLE_EQ(t.detection_ms, timers.detection_ms);
  const double detector_time = timers.detection_ms +
                               timers.origination_ms + timers.spf_ms +
                               timers.fib_update_ms;
  EXPECT_DOUBLE_EQ(t.converged_at_ms[paper_node(6)], detector_time);
  EXPECT_DOUBLE_EQ(t.converged_at_ms[paper_node(11)], detector_time);

  // Everyone converges; farther routers converge later, bounded by
  // detector time + diameter * flooding delay.
  for (NodeId n = 0; n < g.node_count(); ++n) {
    EXPECT_LT(t.converged_at_ms[n], kInfCost) << n;
    EXPECT_GE(t.converged_at_ms[n], detector_time);
  }
  EXPECT_GT(t.convergence_ms, detector_time);
  EXPECT_LE(t.convergence_ms,
            detector_time + 20 * timers.flooding_per_hop_ms);
}

TEST(Igp, ConvergenceDominatesRtrRecoveryDelay) {
  // The premise of the whole paper: the IGP needs ~seconds while RTR's
  // first phase needs tens of milliseconds, so RTR has a window in
  // which it is the only thing keeping traffic alive.
  const graph::Graph g =
      graph::make_isp_topology(graph::spec_by_name("AS209"));
  const FailureSet fs(g, fail::CircleArea({1000, 1000}, 250),
                      fail::LinkCutRule::kEndpointsOnly);
  if (fs.empty()) GTEST_SKIP();
  const ConvergenceTimeline t = igp_convergence(g, fs);
  EXPECT_GT(t.convergence_ms, 1500.0);   // well above a second
  EXPECT_LT(t.convergence_ms, 10000.0);  // but not absurd
  EXPECT_LT(t.detection_ms, t.convergence_ms);
}

TEST(Igp, FailedAndCutOffRoutersDoNotConverge) {
  // Destroy every neighbour of a leaf-ish region so some live node is
  // unreachable from any detector's flood.
  graph::GraphBuilder b;
  b.add_node({0, 0});    // 0
  b.add_node({100, 0});  // 1 - will fail
  b.add_node({200, 0});  // 2 - cut off behind 1
  b.add_link(0, 1);
  b.add_link(1, 2);
  const graph::Graph g = b.build();
  const FailureSet fs = FailureSet::of_nodes(g, {1});
  const ConvergenceTimeline t = igp_convergence(g, fs);
  EXPECT_LT(t.converged_at_ms[0], kInfCost);
  EXPECT_DOUBLE_EQ(t.converged_at_ms[1], kInfCost);  // dead
  // Node 2 is live and detects its side of the failure, so it
  // converges on its own (it is a detector itself).
  EXPECT_LT(t.converged_at_ms[2], kInfCost);
}

TEST(Igp, PacketsDroppedHeadlineArithmetic) {
  // "Disconnection of an OC-192 link (10 Gb/s) for 10 seconds can lead
  // to about 12 million packets being dropped" (Introduction).
  const double dropped = packets_dropped(10e9, 10000.0, 1000);
  EXPECT_NEAR(dropped, 12.5e6, 1e6);
  EXPECT_DOUBLE_EQ(packets_dropped(0.0, 1000.0), 0.0);
  EXPECT_THROW(packets_dropped(1.0, 1.0, 0), ContractViolation);
}

TEST(Igp, TighterTimersConvergeFaster) {
  const graph::Graph g =
      graph::make_isp_topology(graph::spec_by_name("AS1239"));
  const FailureSet fs(g, fail::CircleArea({1000, 1000}, 200),
                      fail::LinkCutRule::kEndpointsOnly);
  if (fs.empty()) GTEST_SKIP();
  IgpTimers fast;
  fast.detection_ms = 50.0;
  fast.origination_ms = 100.0;
  fast.spf_ms = 10.0;
  fast.fib_update_ms = 50.0;
  const double slow = igp_convergence(g, fs).convergence_ms;
  const double quick = igp_convergence(g, fs, fast).convergence_ms;
  EXPECT_LT(quick, slow);
}

}  // namespace
}  // namespace rtr::net
