// The RTR_EXPECT contract: a violated precondition surfaces as
// rtr::ContractViolation (a std::logic_error) whose message pins down
// the failing expression and site, and the parallel experiment engine
// hands it to the caller unchanged at any thread count -- so a bad
// input fails loudly instead of corrupting merged results.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "common/expect.h"
#include "common/parallel.h"

namespace rtr {
namespace {

int guarded_increment(int x) {
  RTR_EXPECT(x >= 0);
  return x + 1;
}

TEST(Expect, PassingCheckIsInvisible) {
  EXPECT_EQ(guarded_increment(4), 5);
  EXPECT_NO_THROW(RTR_EXPECT(2 + 2 == 4));
  EXPECT_NO_THROW(RTR_EXPECT_MSG(true, "never used"));
}

TEST(Expect, ViolationThrowsContractViolation) {
  EXPECT_THROW(guarded_increment(-1), ContractViolation);
  // ContractViolation is-a logic_error, so generic handlers that know
  // nothing about this codebase still catch programmer error.
  try {
    guarded_increment(-7);
    FAIL() << "RTR_EXPECT(false) must throw";
  } catch (const std::logic_error&) {
  }
}

TEST(Expect, MessageNamesExpressionSiteAndExplanation) {
  try {
    RTR_EXPECT_MSG(1 + 1 == 3, "arithmetic holds");
    FAIL() << "violated RTR_EXPECT_MSG must throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("contract violated:"), std::string::npos) << what;
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("test_expect.cc"), std::string::npos) << what;
    EXPECT_NE(what.find("(arithmetic holds)"), std::string::npos) << what;
  }
}

TEST(Expect, BareExpectOmitsTheParenthetical) {
  try {
    RTR_EXPECT(guarded_increment(1) == 0);
    FAIL() << "violated RTR_EXPECT must throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("guarded_increment(1) == 0"), std::string::npos)
        << what;
    EXPECT_EQ(what.find(" ("), std::string::npos)
        << "no message -> no trailing parenthetical: " << what;
  }
}

TEST(Expect, PropagatesThroughParallelForAtAnyThreadCount) {
  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    std::atomic<int> calls{0};
    try {
      common::parallel_for(64, threads, [&](std::size_t i) {
        calls.fetch_add(1);
        RTR_EXPECT_MSG(i != 13, "work unit 13 poisoned");
      });
      FAIL() << "exception lost at threads=" << threads;
    } catch (const ContractViolation& e) {
      EXPECT_NE(std::string(e.what()).find("work unit 13 poisoned"),
                std::string::npos);
    }
    // The engine stopped early instead of grinding through all 64
    // units, and every started unit ran to completion exactly once.
    EXPECT_GE(calls.load(), 1);
    EXPECT_LE(calls.load(), 64);
  }
}

TEST(Expect, EngineIsReusableAfterAViolation) {
  try {
    common::parallel_for(16, 4, [](std::size_t i) { RTR_EXPECT(i != 3); });
    FAIL() << "expected a ContractViolation";
  } catch (const ContractViolation&) {
  }
  // All workers joined before the rethrow: a fresh parallel_for on the
  // same thread runs normally.
  std::atomic<int> ok{0};
  common::parallel_for(32, 4, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 32);
}

}  // namespace
}  // namespace rtr
