// The deterministic fault-injection layer (rtr::fault): plan
// compilation and replay, the net::Network injection hooks, and the
// graceful-degradation machinery in core::DistributedRtr /
// core::RecoverySession.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/expect.h"
#include "core/distributed_rtr.h"
#include "core/recovery_session.h"
#include "fault/fault.h"
#include "fault/plan.h"
#include "graph/paper_topology.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "spf/routing_table.h"

namespace rtr::fault {
namespace {

using graph::paper_node;

obs::Value counter_total(const char* name) {
  return obs::Registry::global().counter(name).total();
}

struct FaultRig {
  graph::Graph g = graph::fig1_graph();
  graph::CrossingIndex crossings{g};
  spf::RoutingTable rt{g};
  fail::FailureSet failure{g};
};

TEST(FaultOptions, AnyIsTheMasterSwitch) {
  FaultOptions o;
  EXPECT_FALSE(o.any());
  o.loss_prob = 0.1;
  EXPECT_TRUE(o.any());
  o = FaultOptions{};
  o.max_detection_delay_ms = 5.0;
  EXPECT_TRUE(o.any());
  o = FaultOptions{};
  o.dynamic_links = 1;
  EXPECT_TRUE(o.any());
  // Retry knobs alone arm nothing: they only matter once faults exist.
  o = FaultOptions{};
  o.retry_cap = 7;
  o.backoff_base_ms = 99.0;
  EXPECT_FALSE(o.any());
}

TEST(FaultOptions, FromEnvReadsEveryKnob) {
  setenv("RTR_FAULT_LOSS", "0.25", 1);
  setenv("RTR_FAULT_CORRUPT", "0.125", 1);
  setenv("RTR_FAULT_DUP", "0.5", 1);
  setenv("RTR_FAULT_DETECT_MS", "12.5", 1);
  setenv("RTR_FAULT_DYN_LINKS", "3", 1);
  setenv("RTR_FAULT_DYN_WINDOW_MS", "40", 1);
  setenv("RTR_FAULT_FLAP", "0.75", 1);
  setenv("RTR_FAULT_RETRY_CAP", "5", 1);
  setenv("RTR_FAULT_BACKOFF_MS", "2.5", 1);
  setenv("RTR_FAULT_SEED", "1234", 1);
  const FaultOptions o = FaultOptions::from_env();
  unsetenv("RTR_FAULT_LOSS");
  unsetenv("RTR_FAULT_CORRUPT");
  unsetenv("RTR_FAULT_DUP");
  unsetenv("RTR_FAULT_DETECT_MS");
  unsetenv("RTR_FAULT_DYN_LINKS");
  unsetenv("RTR_FAULT_DYN_WINDOW_MS");
  unsetenv("RTR_FAULT_FLAP");
  unsetenv("RTR_FAULT_RETRY_CAP");
  unsetenv("RTR_FAULT_BACKOFF_MS");
  unsetenv("RTR_FAULT_SEED");
  EXPECT_EQ(o.loss_prob, 0.25);
  EXPECT_EQ(o.corrupt_prob, 0.125);
  EXPECT_EQ(o.duplicate_prob, 0.5);
  EXPECT_EQ(o.max_detection_delay_ms, 12.5);
  EXPECT_EQ(o.dynamic_links, 3u);
  EXPECT_EQ(o.dynamic_window_ms, 40.0);
  EXPECT_EQ(o.flap_prob, 0.75);
  EXPECT_EQ(o.retry_cap, 5u);
  EXPECT_EQ(o.backoff_base_ms, 2.5);
  EXPECT_EQ(o.seed, 1234u);
  EXPECT_TRUE(o.any());
  // Defaults come back once the environment is clean again.
  EXPECT_FALSE(FaultOptions::from_env().any());
}

TEST(FaultPlan, SameSeedReplaysBitExactly) {
  FaultRig rig;
  FaultOptions o;
  o.loss_prob = 0.2;
  o.corrupt_prob = 0.1;
  o.duplicate_prob = 0.1;
  o.max_detection_delay_ms = 50.0;
  FaultPlan a(o, 42, rig.g, rig.failure);
  FaultPlan b(o, 42, rig.g, rig.failure);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.next_hop_fault(), b.next_hop_fault());
    EXPECT_EQ(a.next_corrupt_offset(33), b.next_corrupt_offset(33));
    EXPECT_EQ(a.next_corrupt_mask(), b.next_corrupt_mask());
    EXPECT_EQ(a.next_detection_delay_ms(), b.next_detection_delay_ms());
  }
}

TEST(FaultPlan, StreamSeedsDecorrelateWorkUnits) {
  EXPECT_NE(FaultPlan::stream_seed(1, 0), FaultPlan::stream_seed(1, 1));
  EXPECT_NE(FaultPlan::stream_seed(1, 0), FaultPlan::stream_seed(2, 0));
  EXPECT_EQ(FaultPlan::stream_seed(7, 3), FaultPlan::stream_seed(7, 3));
}

TEST(FaultPlan, HopFaultPartitionsOneDraw) {
  FaultRig rig;
  FaultOptions o;
  o.loss_prob = 1.0;
  FaultPlan all_loss(o, 1, rig.g, rig.failure);
  o = FaultOptions{};
  o.corrupt_prob = 1.0;
  FaultPlan all_corrupt(o, 1, rig.g, rig.failure);
  o = FaultOptions{};
  o.duplicate_prob = 1.0;
  FaultPlan all_dup(o, 1, rig.g, rig.failure);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(all_loss.next_hop_fault(), HopFault::kLoss);
    EXPECT_EQ(all_corrupt.next_hop_fault(), HopFault::kCorrupt);
    EXPECT_EQ(all_dup.next_hop_fault(), HopFault::kDuplicate);
  }
  // Armed via a non-hop knob: hop fates stay kNone without consuming
  // any rng draw, so detection delays match a plan that never asked.
  o = FaultOptions{};
  o.max_detection_delay_ms = 10.0;
  FaultPlan detect_only(o, 9, rig.g, rig.failure);
  FaultPlan control(o, 9, rig.g, rig.failure);
  EXPECT_EQ(detect_only.next_hop_fault(), HopFault::kNone);
  EXPECT_EQ(detect_only.next_detection_delay_ms(),
            control.next_detection_delay_ms());
}

TEST(FaultPlan, AcceptsExactSumOneDespiteRounding) {
  // Regression: 0.1 + 0.2 + 0.7 sums to 1.0000000000000002 in double;
  // the ctor used a bare <= 1.0 check and rejected this valid config.
  FaultRig rig;
  FaultOptions o;
  o.loss_prob = 0.1;
  o.corrupt_prob = 0.2;
  o.duplicate_prob = 0.7;
  FaultPlan plan(o, 1, rig.g, rig.failure);
  // With the clamped partition every draw lands in a real fault band.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(plan.next_hop_fault(), HopFault::kNone);
  }
}

TEST(FaultPlan, RejectsInvalidProbabilities) {
  FaultRig rig;
  FaultOptions o;
  o.loss_prob = 0.7;
  o.corrupt_prob = 0.7;
  EXPECT_THROW(FaultPlan(o, 1, rig.g, rig.failure), ContractViolation);
  o = FaultOptions{};
  o.loss_prob = -0.1;
  EXPECT_THROW(FaultPlan(o, 1, rig.g, rig.failure), ContractViolation);
  o = FaultOptions{};
  o.dynamic_links = 2;  // armed, but no window
  EXPECT_THROW(FaultPlan(o, 1, rig.g, rig.failure), ContractViolation);
}

TEST(FaultPlan, DynamicDeathsFollowTheSchedule) {
  FaultRig rig;
  FaultOptions o;
  o.dynamic_links = 4;
  o.dynamic_window_ms = 100.0;
  FaultPlan plan(o, 99, rig.g, rig.failure);
  EXPECT_EQ(plan.num_dynamic_deaths(), 4u);
  std::size_t down_late = 0;
  for (std::size_t l = 0; l < rig.g.num_links(); ++l) {
    const LinkId link = static_cast<LinkId>(l);
    // Before time zero nothing is down; far past the window every
    // non-flapping death is down.
    EXPECT_FALSE(plan.link_down_at(link, -1.0));
    if (plan.link_down_at(link, 1e9)) ++down_late;
  }
  EXPECT_LE(down_late, 4u);
  // A dead link is down from its death time on (sample the window).
  std::size_t observed_down = 0;
  for (std::size_t l = 0; l < rig.g.num_links(); ++l) {
    for (double t = 0.0; t <= 100.0; t += 1.0) {
      if (plan.link_down_at(static_cast<LinkId>(l), t)) {
        ++observed_down;
        break;
      }
    }
  }
  EXPECT_EQ(observed_down, 4u);
}

TEST(FaultPlan, FlappedLinksComeBack) {
  FaultRig rig;
  FaultOptions o;
  o.dynamic_links = 6;
  o.dynamic_window_ms = 50.0;
  o.flap_prob = 1.0;  // every death revives inside the window
  FaultPlan plan(o, 7, rig.g, rig.failure);
  for (std::size_t l = 0; l < rig.g.num_links(); ++l) {
    EXPECT_FALSE(plan.link_down_at(static_cast<LinkId>(l), 1e9));
  }
}

// ---- Network injection hooks --------------------------------------

/// Follows the default routing table; no recovery logic.
class DefaultRoutingApp : public net::RouterApp {
 public:
  explicit DefaultRoutingApp(const spf::RoutingTable& rt) : rt_(&rt) {}
  Decision on_packet(NodeId at, NodeId /*prev*/,
                     net::DataPacket& p) override {
    if (at == p.dst) return Decision::deliver();
    return Decision::forward(rt_->next_link(at, p.dst));
  }

 private:
  const spf::RoutingTable* rt_;
};

net::DataPacket make_packet(int src, int dst) {
  net::DataPacket p;
  p.src = paper_node(src);
  p.dst = paper_node(dst);
  return p;
}

TEST(NetworkFaults, CertainLossConsumesThePacket) {
  FaultRig rig;
  FaultOptions o;
  o.loss_prob = 1.0;
  FaultPlan plan(o, 3, rig.g, rig.failure);
  net::Simulator sim;
  net::Network network(rig.g, rig.failure, sim, {}, &plan);
  DefaultRoutingApp app(rig.rt);
  const obs::Value loss0 = counter_total("rtr.fault.loss");
  const obs::Value transit0 = counter_total("rtr.fault.transit_dropped");
  bool done_called = false;
  net::DataPacket::TransitFault why = net::DataPacket::TransitFault::kNone;
  network.send(make_packet(7, 17), app,
               [&](const net::DataPacket& pkt, NodeId final_node,
                   bool delivered) {
                 done_called = true;
                 why = pkt.transit_fault;
                 EXPECT_FALSE(delivered);
                 // Lost on the very first hop, at the source.
                 EXPECT_EQ(final_node, paper_node(7));
               });
  sim.run();
  EXPECT_TRUE(done_called);
  EXPECT_EQ(why, net::DataPacket::TransitFault::kLost);
  EXPECT_EQ(network.packets_lost_in_transit(), 1u);
  EXPECT_EQ(network.packets_delivered(), 0u);
  EXPECT_EQ(network.packets_dropped(), 0u);
  EXPECT_EQ(counter_total("rtr.fault.loss") - loss0, 1);
  EXPECT_EQ(counter_total("rtr.fault.transit_dropped") - transit0, 1);
}

TEST(NetworkFaults, CorruptionIsCountedAndNeverPropagates) {
  FaultRig rig;
  FaultOptions o;
  o.corrupt_prob = 1.0;
  net::Simulator sim;
  DefaultRoutingApp app(rig.rt);
  const obs::Value corrupt0 = counter_total("rtr.fault.corrupt");
  const obs::Value crc0 = counter_total("rtr.fault.corrupt.crc_caught");
  const obs::Value codec0 = counter_total("rtr.fault.corrupt.codec_error");
  const int kPackets = 64;
  std::size_t corrupted = 0;
  for (int i = 0; i < kPackets; ++i) {
    FaultPlan plan(o, static_cast<std::uint64_t>(i), rig.g, rig.failure);
    net::Network network(rig.g, rig.failure, sim, {}, &plan);
    network.send(make_packet(7, 17), app,
                 [&](const net::DataPacket& pkt, NodeId, bool delivered) {
                   EXPECT_FALSE(delivered);
                   EXPECT_EQ(pkt.transit_fault,
                             net::DataPacket::TransitFault::kCorrupted);
                   ++corrupted;
                 });
    sim.run();
  }
  EXPECT_EQ(corrupted, static_cast<std::size_t>(kPackets));
  const obs::Value n_corrupt = counter_total("rtr.fault.corrupt") - corrupt0;
  const obs::Value n_crc =
      counter_total("rtr.fault.corrupt.crc_caught") - crc0;
  const obs::Value n_codec =
      counter_total("rtr.fault.corrupt.codec_error") - codec0;
  EXPECT_EQ(n_corrupt, kPackets);
  // Conservation: every corruption is classified exactly once.
  EXPECT_EQ(n_crc + n_codec, n_corrupt);
}

TEST(NetworkFaults, DynamicDeathBlackholesAndReportsTheLink) {
  FaultRig rig;
  FaultOptions o;
  o.dynamic_links = rig.g.num_links();  // kill everything at some point
  o.dynamic_window_ms = 0.0001;        // effectively from the start
  FaultPlan plan(o, 11, rig.g, rig.failure);
  net::Simulator sim;
  net::Network network(rig.g, rig.failure, sim, {}, &plan);
  DefaultRoutingApp app(rig.rt);
  bool done_called = false;
  network.send(make_packet(7, 17), app,
               [&](const net::DataPacket& pkt, NodeId, bool delivered) {
                 done_called = true;
                 EXPECT_FALSE(delivered);
                 EXPECT_EQ(pkt.transit_fault,
                           net::DataPacket::TransitFault::kLinkDied);
                 EXPECT_NE(pkt.fault_link, kNoLink);
                 EXPECT_TRUE(rig.g.valid_link(pkt.fault_link));
               });
  sim.run();
  EXPECT_TRUE(done_called);
  EXPECT_EQ(network.packets_lost_in_transit(), 1u);
}

TEST(NetworkFaults, DisabledPlanIsByteIdenticalToNoPlan) {
  FaultRig rig;
  const FaultOptions off;  // all defaults: any() == false
  FaultPlan plan(off, 5, rig.g, rig.failure);
  EXPECT_FALSE(plan.enabled());
  net::Simulator sim_a;
  net::Network with_plan(rig.g, rig.failure, sim_a, {}, &plan);
  net::Simulator sim_b;
  net::Network without(rig.g, rig.failure, sim_b);
  DefaultRoutingApp app(rig.rt);
  std::vector<NodeId> trace_a;
  std::vector<NodeId> trace_b;
  net::RtrHeader header_a;
  with_plan.send(make_packet(7, 17), app,
                 [&](const net::DataPacket& pkt, NodeId, bool ok) {
                   EXPECT_TRUE(ok);
                   trace_a = pkt.trace;
                   header_a = pkt.header;
                 });
  without.send(make_packet(7, 17), app,
               [&](const net::DataPacket& pkt, NodeId, bool ok) {
                 EXPECT_TRUE(ok);
                 trace_b = pkt.trace;
               });
  sim_a.run();
  sim_b.run();
  EXPECT_EQ(trace_a, trace_b);
  // The disabled plan does not even stamp flow/seq.
  EXPECT_EQ(header_a.flow, 0u);
  EXPECT_EQ(header_a.seq, 0u);
}

// ---- Duplicate suppression through DistributedRtr -----------------

TEST(NetworkFaults, DuplicatesAreInjectedAndSuppressedOneForOne) {
  FaultRig rig;
  FaultOptions o;
  o.duplicate_prob = 1.0;  // every hop spawns a copy
  FaultPlan plan(o, 21, rig.g, rig.failure);
  net::Simulator sim;
  net::Network network(rig.g, rig.failure, sim, {}, &plan);
  core::DistributedRtr app(rig.g, rig.crossings, rig.rt, rig.failure);
  app.set_fault_aware(true);
  const obs::Value dup0 = counter_total("rtr.fault.duplicate");
  const obs::Value sup0 = counter_total("rtr.fault.duplicate.suppressed");
  bool delivered = false;
  std::size_t hops = 0;
  network.send(make_packet(7, 17), app,
               [&](const net::DataPacket& pkt, NodeId, bool ok) {
                 delivered = ok;
                 hops = pkt.trace.size() - 1;
               });
  sim.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(network.packets_delivered(), 1u);
  const obs::Value injected = counter_total("rtr.fault.duplicate") - dup0;
  const obs::Value suppressed =
      counter_total("rtr.fault.duplicate.suppressed") - sup0;
  // One copy per forwarded hop, every copy suppressed at its receiver.
  EXPECT_EQ(injected, static_cast<obs::Value>(hops));
  EXPECT_EQ(suppressed, injected);
  // Suppressed copies surface as ordinary app drops.
  EXPECT_EQ(network.packets_dropped(), hops);
}

TEST(NetworkFaults, FaultAwareWithoutArmedPlanIsRejected) {
  // A fault-aware app over an unarmed Network would see every packet
  // carry (flow 0, seq 0) and falsely suppress all but the first
  // arrival; the app rejects the misconfiguration loudly instead.
  FaultRig rig;
  FaultPlan disabled(FaultOptions{}, 1, rig.g, rig.failure);
  net::Simulator sim;
  net::Network network(rig.g, rig.failure, sim, {}, &disabled);
  EXPECT_FALSE(network.sequencing_armed());
  core::DistributedRtr app(rig.g, rig.crossings, rig.rt, rig.failure);
  app.set_fault_aware(true);
  network.send(make_packet(7, 17), app);
  EXPECT_THROW(sim.run(), ContractViolation);
}

TEST(NetworkFaults, SuppressionNeverEatsLegitimateRevisits) {
  // The fig. 1 recovery traversal revisits nodes (the phase-1 cycle
  // crosses v7, v6 and v12 twice); with the plan armed via a non-hop
  // knob the fault-aware app must still deliver over the exact same
  // trace as the fault-free run.
  const graph::Graph g = graph::fig1_graph();
  const graph::CrossingIndex crossings(g);
  const spf::RoutingTable rt(g);
  const fail::FailureSet failure(
      g, fail::CircleArea(graph::fig1_failure_area()),
      fail::LinkCutRule::kGeometric);
  const auto run = [&](bool with_faults) {
    FaultOptions o;
    if (with_faults) o.max_detection_delay_ms = 1.0;  // arms the plan
    FaultPlan plan(o, 13, g, failure);
    net::Simulator sim;
    net::Network network(g, failure, sim, {}, &plan);
    core::DistributedRtr app(g, crossings, rt, failure);
    app.set_fault_aware(with_faults);
    std::vector<NodeId> trace;
    net::DataPacket p;
    p.src = paper_node(7);
    p.dst = paper_node(17);
    network.send(p, app,
                 [&](const net::DataPacket& pkt, NodeId, bool ok) {
                   EXPECT_TRUE(ok);
                   trace = pkt.trace;
                 });
    sim.run();
    return trace;
  };
  EXPECT_EQ(run(true), run(false));
}

// ---- RecoverySession: bounded retry and graceful exhaustion -------

struct SessionRig {
  graph::Graph g = graph::fig1_graph();
  graph::CrossingIndex crossings{g};
  spf::RoutingTable rt{g};
  fail::FailureSet failure{g, fail::CircleArea(graph::fig1_failure_area()),
                           fail::LinkCutRule::kGeometric};
};

TEST(RecoverySession, FaultFreeSessionRecoversFirstTry) {
  SessionRig rig;
  FaultOptions o;
  o.max_detection_delay_ms = 1.0;  // armed, but no packet faults
  FaultPlan plan(o, 31, rig.g, rig.failure);
  net::Simulator sim;
  net::Network network(rig.g, rig.failure, sim, {}, &plan);
  core::DistributedRtr app(rig.g, rig.crossings, rig.rt, rig.failure);
  app.set_fault_aware(true);
  core::SessionOptions sopts;
  sopts.detection_delay_ms = 4.0;
  core::RecoverySession session(sim, network, app, paper_node(7),
                                paper_node(17), sopts);
  session.start();
  sim.run();
  const core::SessionResult& r = session.result();
  EXPECT_EQ(r.outcome, core::SessionOutcome::kRecovered);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_EQ(r.reinitiations, 0u);
  EXPECT_EQ(r.delivered_hops, 16u);  // the worked example's journey
  // Detection delay is simulated time: 4 ms wait + 0.1 ms router
  // processing + 16 hops at 1.8 ms.
  EXPECT_NEAR(r.finished_ms, 4.0 + 0.1 + 1.8 * 16, 1e-9);
}

TEST(RecoverySession, CertainLossExhaustsRetriesGracefully) {
  SessionRig rig;
  FaultOptions o;
  o.loss_prob = 1.0;  // nothing ever gets through
  FaultPlan plan(o, 37, rig.g, rig.failure);
  net::Simulator sim;
  net::Network network(rig.g, rig.failure, sim, {}, &plan);
  core::DistributedRtr app(rig.g, rig.crossings, rig.rt, rig.failure);
  app.set_fault_aware(true);
  const obs::Value exhausted0 = counter_total("rtr.core.retry.exhausted");
  const obs::Value reinit0 = counter_total("rtr.core.retry.reinitiated");
  core::SessionOptions sopts;
  sopts.retry_cap = 3;
  sopts.backoff_base_ms = 10.0;
  core::RecoverySession session(sim, network, app, paper_node(7),
                                paper_node(17), sopts);
  session.start();
  sim.run();  // terminates: no assertion, no infinite loop
  const core::SessionResult& r = session.result();
  EXPECT_EQ(r.outcome, core::SessionOutcome::kUnrecovered);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.reinitiations, 2u);
  EXPECT_EQ(counter_total("rtr.core.retry.exhausted") - exhausted0, 1);
  EXPECT_EQ(counter_total("rtr.core.retry.reinitiated") - reinit0, 2);
  // Exponential backoff in simulated time: attempt 1 at 0, attempt 2
  // after 10 ms, attempt 3 after another 20 ms.  Each lost attempt dies
  // on the first hop, 0.1 ms (router processing) after its send.
  EXPECT_NEAR(r.finished_ms, 10.0 + 20.0 + 3 * 0.1, 1e-9);
}

TEST(RecoverySession, BackoffAlternatesSweepOrientation) {
  // With certain loss the session re-initiates with flipped orientation
  // every time; determinism makes the whole schedule replayable.
  SessionRig rig;
  FaultOptions o;
  o.loss_prob = 1.0;
  const auto run_once = [&] {
    FaultPlan plan(o, 41, rig.g, rig.failure);
    net::Simulator sim;
    net::Network network(rig.g, rig.failure, sim, {}, &plan);
    core::DistributedRtr app(rig.g, rig.crossings, rig.rt, rig.failure);
    app.set_fault_aware(true);
    core::SessionOptions sopts;
    sopts.retry_cap = 4;
    core::RecoverySession session(sim, network, app, paper_node(7),
                                  paper_node(17), sopts);
    session.start();
    sim.run();
    return session.result();
  };
  const core::SessionResult a = run_once();
  const core::SessionResult b = run_once();
  EXPECT_EQ(a.outcome, core::SessionOutcome::kUnrecovered);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.finished_ms, b.finished_ms);
}

TEST(RecoverySession, SuppressionKeysDoNotAccumulateAcrossSessions) {
  // One app/network pair serves every case of a scenario
  // (exp::runners); begin_flow() at each attempt keeps the key set
  // bounded by one flow's arrivals instead of growing with the
  // scenario (and makes the uint32 flow-id wraparound harmless).
  SessionRig rig;
  FaultOptions o;
  o.max_detection_delay_ms = 1.0;  // armed, but no packet faults
  FaultPlan plan(o, 61, rig.g, rig.failure);
  net::Simulator sim;
  net::Network network(rig.g, rig.failure, sim, {}, &plan);
  core::DistributedRtr app(rig.g, rig.crossings, rig.rt, rig.failure);
  app.set_fault_aware(true);
  for (int i = 0; i < 8; ++i) {
    core::RecoverySession session(sim, network, app, paper_node(7),
                                  paper_node(17), {});
    session.start();
    sim.run();
    const core::SessionResult& r = session.result();
    EXPECT_EQ(r.outcome, core::SessionOutcome::kRecovered);
    // Exactly the final flow's arrivals are retained: its hops plus
    // the source's own arrival, never prior sessions' keys.  (Later
    // sessions reuse the initiator's completed phase-1 state and skip
    // the collect cycle, so their journeys are legitimately shorter.)
    EXPECT_EQ(app.sequencing_keys(), r.delivered_hops + 1);
  }
}

TEST(RecoverySession, LinkDeathIsLearnedAndRoutedAround) {
  // Kill one surviving link the worked example's phase-2 path uses
  // (v12 -> v14): the first attempt blackholes on it, the session
  // feeds it back via note_link_dead, and the retry recovers around it.
  SessionRig rig;
  const LinkId victim = rig.g.find_link(paper_node(12), paper_node(14));
  ASSERT_NE(victim, kNoLink);
  FaultOptions o;
  o.dynamic_links = 1;
  o.dynamic_window_ms = 1e-6;  // down before any packet moves
  // Seed chosen so the single scheduled death lands on `victim`: scan
  // a few seeds deterministically instead of hard-coding rng internals.
  std::uint64_t seed = 0;
  for (; seed < 512; ++seed) {
    FaultPlan probe(o, seed, rig.g, rig.failure);
    if (probe.link_down_at(victim, 1.0)) break;
  }
  ASSERT_LT(seed, 512u) << "no seed kills the victim link";
  FaultPlan plan(o, seed, rig.g, rig.failure);
  net::Simulator sim;
  net::Network network(rig.g, rig.failure, sim, {}, &plan);
  core::DistributedRtr app(rig.g, rig.crossings, rig.rt, rig.failure);
  app.set_fault_aware(true);
  core::SessionOptions sopts;
  sopts.retry_cap = 3;
  core::RecoverySession session(sim, network, app, paper_node(7),
                                paper_node(17), sopts);
  session.start();
  sim.run();
  const core::SessionResult& r = session.result();
  EXPECT_EQ(r.outcome, core::SessionOutcome::kRecovered);
  EXPECT_GE(r.attempts, 2u);  // at least one blackhole before success
}

}  // namespace
}  // namespace rtr::fault
