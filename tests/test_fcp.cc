#include <gtest/gtest.h>

#include "baselines/fcp.h"
#include "common/expect.h"
#include "common/rng.h"
#include "failure/scenario.h"
#include "graph/gen/isp_gen.h"
#include "graph/paper_topology.h"
#include "graph/properties.h"
#include "spf/shortest_path.h"

namespace rtr::baseline {
namespace {

using fail::CircleArea;
using fail::FailureSet;
using graph::Graph;
using graph::paper_node;

TEST(Fcp, DeliversOnTheWorkedExample) {
  const Graph g = graph::fig1_graph();
  const FailureSet fs(g, CircleArea(graph::fig1_failure_area()));
  const FcpResult r = run_fcp(g, fs, paper_node(6), paper_node(17));
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.final_node, paper_node(17));
  EXPECT_GE(r.sp_calculations, 1u);
  EXPECT_EQ(r.walk.front(), paper_node(6));
  EXPECT_EQ(r.walk.back(), paper_node(17));
  EXPECT_EQ(r.bytes_per_hop.size(), r.hops);
}

TEST(Fcp, WalkTraversesOnlyLiveLinks) {
  const Graph g = graph::fig1_graph();
  const FailureSet fs(g, CircleArea(graph::fig1_failure_area()));
  const FcpResult r = run_fcp(g, fs, paper_node(6), paper_node(17));
  for (std::size_t i = 0; i + 1 < r.walk.size(); ++i) {
    const LinkId l = g.find_link(r.walk[i], r.walk[i + 1]);
    ASSERT_NE(l, kNoLink);
    EXPECT_FALSE(fs.link_failed(l));
  }
}

TEST(Fcp, HeaderCarriesOnlyRealFailures) {
  const Graph g = graph::fig1_graph();
  const FailureSet fs(g, CircleArea(graph::fig1_failure_area()));
  const FcpResult r = run_fcp(g, fs, paper_node(6), paper_node(17));
  for (LinkId l : r.header.failed_links) {
    EXPECT_TRUE(fs.link_failed(l)) << g.link_name(l);
  }
}

TEST(Fcp, DropsWhenDestinationDead) {
  const Graph g = graph::fig1_graph();
  const FailureSet fs(g, CircleArea(graph::fig1_failure_area()));
  // v10 is destroyed: FCP must eventually discard, not loop.
  const FcpResult r = run_fcp(g, fs, paper_node(6), paper_node(10));
  EXPECT_FALSE(r.delivered);
  EXPECT_GE(r.sp_calculations, 1u);
}

TEST(Fcp, RejectsBadArguments) {
  const Graph g = graph::fig1_graph();
  const FailureSet fs(g, CircleArea(graph::fig1_failure_area()));
  EXPECT_THROW(run_fcp(g, fs, paper_node(6), paper_node(6)),
               ContractViolation);
  EXPECT_THROW(run_fcp(g, fs, paper_node(10), paper_node(17)),
               ContractViolation);
}

struct TopoParam {
  const char* name;
  std::uint64_t seed;
};

class FcpProperties : public ::testing::TestWithParam<TopoParam> {};

// FCP's convergence-free guarantee: when the destination is reachable
// in the damaged graph, FCP always delivers (it only ever excludes
// genuinely failed links); when it is unreachable, FCP terminates with
// a discard after finitely many recomputations.
TEST_P(FcpProperties, DeliversIffReachable) {
  const Graph g = graph::make_isp_topology(
      graph::spec_by_name(GetParam().name));
  Rng rng(GetParam().seed);
  const fail::ScenarioConfig cfg;
  int checked = 0;
  for (int trial = 0; trial < 60 && checked < 500; ++trial) {
    const CircleArea area = fail::random_circle_area(cfg, rng);
    const FailureSet fs(g, area);
    if (fs.empty()) continue;
    const graph::Components comp = graph::components(g, fs.masks());
    for (NodeId n = 0; n < g.node_count(); ++n) {
      if (fs.node_failed(n) || fs.observed_failed_links(g, n).empty()) {
        continue;
      }
      for (NodeId dest = 0; dest < g.node_count(); ++dest) {
        if (dest == n) continue;
        const bool reachable =
            !fs.node_failed(dest) && comp.id[n] == comp.id[dest];
        const FcpResult r = run_fcp(g, fs, n, dest);
        ++checked;
        EXPECT_EQ(r.delivered, reachable)
            << GetParam().name << " " << n << "->" << dest;
        EXPECT_LT(r.sp_calculations, g.num_links() + 2)
            << "failure list growth must bound recomputations";
        if (r.delivered) {
          // Stretch sanity: never shorter than the true optimum.
          const spf::SptResult truth = spf::bfs_from(g, n, fs.masks());
          EXPECT_GE(static_cast<double>(r.hops), truth.dist[dest]);
        }
      }
      break;  // one initiator per area
    }
  }
  EXPECT_GT(checked, 100);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, FcpProperties,
    ::testing::Values(TopoParam{"AS209", 11}, TopoParam{"AS1239", 12},
                      TopoParam{"AS3320", 13}),
    [](const auto& info) { return info.param.name; });

TEST(Fcp, SingleLinkFailureIsOneCalculation) {
  // With one failed link known at the initiator, the very first
  // recomputation already avoids it: FCP needs exactly 1 calculation
  // and achieves the optimum, like RTR (Theorem 3 parity check).
  const Graph g = graph::make_isp_topology(graph::spec_by_name("AS209"));
  const spf::RoutingTable rt(g);
  for (LinkId dead = 0; dead < g.link_count(); dead += 7) {
    const FailureSet fs = FailureSet::of_links(g, {dead});
    const graph::Link& e = g.link(dead);
    for (NodeId dest = 0; dest < g.node_count(); dest += 11) {
      if (dest == e.u || rt.next_link(e.u, dest) != dead) continue;
      const std::vector<char> lm = fs.link_mask();
      const spf::Path truth =
          spf::shortest_path(g, e.u, dest, {nullptr, &lm});
      const FcpResult r = run_fcp(g, fs, e.u, dest);
      if (truth.empty()) {
        EXPECT_FALSE(r.delivered);
        continue;
      }
      EXPECT_TRUE(r.delivered);
      EXPECT_EQ(r.sp_calculations, 1u);
      EXPECT_EQ(r.hops, truth.hops());
    }
  }
}


class FcpOriginalProperties : public ::testing::TestWithParam<TopoParam> {};

// The original per-hop FCP must agree with the source-routing variant
// on *outcomes* (delivery is a property of the carried-failure scheme,
// not of where recomputation happens) while paying at least one SP
// calculation per traveled hop.
TEST_P(FcpOriginalProperties, AgreesOnOutcomeAndCostsMore) {
  const Graph g = graph::make_isp_topology(
      graph::spec_by_name(GetParam().name));
  Rng rng(GetParam().seed ^ 0xFEED);
  const fail::ScenarioConfig cfg;
  int checked = 0;
  for (int trial = 0; trial < 40 && checked < 200; ++trial) {
    const CircleArea area = fail::random_circle_area(cfg, rng);
    const FailureSet fs(g, area, fail::LinkCutRule::kEndpointsOnly);
    if (fs.empty()) continue;
    for (NodeId n = 0; n < g.node_count(); ++n) {
      if (fs.node_failed(n) || fs.observed_failed_links(g, n).empty()) {
        continue;
      }
      for (NodeId dest = 0; dest < g.node_count(); dest += 3) {
        if (dest == n) continue;
        ++checked;
        const FcpResult sr = run_fcp(g, fs, n, dest);
        const FcpResult orig = run_fcp_original(g, fs, n, dest);
        EXPECT_EQ(orig.delivered, sr.delivered)
            << GetParam().name << " " << n << "->" << dest;
        if (orig.delivered) {
          // One computation at every visited router.
          EXPECT_EQ(orig.sp_calculations, orig.hops + 0u)
              << "original FCP recomputes per hop";
          EXPECT_GE(orig.sp_calculations, sr.sp_calculations);
          // The walk never crosses a failed link.
          for (std::size_t i = 0; i + 1 < orig.walk.size(); ++i) {
            const LinkId l = g.find_link(orig.walk[i], orig.walk[i + 1]);
            ASSERT_NE(l, kNoLink);
            EXPECT_FALSE(fs.link_failed(l));
          }
        }
      }
      break;
    }
  }
  EXPECT_GT(checked, 60);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, FcpOriginalProperties,
    ::testing::Values(TopoParam{"AS209", 31}, TopoParam{"AS3320", 32}),
    [](const auto& info) { return info.param.name; });

TEST(FcpOriginal, HeaderCarriesNoSourceRoute) {
  const Graph g = graph::fig1_graph();
  const FailureSet fs(g, CircleArea(graph::fig1_failure_area()),
                      fail::LinkCutRule::kGeometric);
  const FcpResult r =
      run_fcp_original(g, fs, graph::paper_node(6), graph::paper_node(17));
  EXPECT_TRUE(r.delivered);
  EXPECT_TRUE(r.header.source_route.empty());
  for (std::size_t b : r.bytes_per_hop) {
    EXPECT_EQ(b % kWireIdBytes, 0u);  // failure ids only
  }
}

}  // namespace
}  // namespace rtr::baseline
