#include <gtest/gtest.h>

#include <memory>

#include "common/expect.h"
#include "graph/graph.h"
#include "spf/batch_repair.h"
#include "spf/shortest_path.h"
#include "spf/spt_compress.h"

namespace rtr::spf {
namespace {

// Asymmetric-cost fixture: 0--1--3 and 0--2--3 with unequal directed
// costs, plus a detached node 4 (unreachable).
graph::Graph asym_square() {
  graph::GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.add_node({static_cast<double>(i), 0.0});
  b.add_link_asym(0, 1, 1.0, 9.0);
  b.add_link_asym(1, 3, 2.5, 1.0);
  b.add_link_asym(0, 2, 2.0, 2.0);
  b.add_link_asym(2, 3, 0.5, 7.0);
  return b.build();
}

void expect_bit_identical(const SptResult& a, const SptResult& b) {
  EXPECT_EQ(a.source, b.source);
  ASSERT_EQ(a.dist.size(), b.dist.size());
  for (std::size_t v = 0; v < a.dist.size(); ++v) {
    EXPECT_EQ(a.dist[v], b.dist[v]) << "dist of node " << v;
    EXPECT_EQ(a.parent[v], b.parent[v]) << "parent of node " << v;
    EXPECT_EQ(a.parent_link[v], b.parent_link[v]) << "link of node " << v;
  }
}

TEST(SptCompress, DijkstraRoundTripIsBitIdentical) {
  const graph::Graph g = asym_square();
  const SptResult full = dijkstra_from(g, 0);
  const CompressedSpt c = compress_spt(full);
  EXPECT_TRUE(c.computed());
  // Near-neighbour parents: one varint byte per node.
  EXPECT_EQ(c.byte_size(), g.num_nodes());
  expect_bit_identical(full, decompress_spt(g, c, SpfAlgorithm::kDijkstra));
}

TEST(SptCompress, CanonicalBfsRoundTripIsBitIdentical) {
  const graph::Graph g = asym_square();
  SptResult full = bfs_from(g, 1);
  canonicalize_parents(g, full, {}, SpfAlgorithm::kBfsHopCount);
  const CompressedSpt c = compress_spt(full);
  expect_bit_identical(full,
                       decompress_spt(g, c, SpfAlgorithm::kBfsHopCount));
}

TEST(SptCompress, UnreachableNodesSurvive) {
  const graph::Graph g = asym_square();
  const SptResult full = dijkstra_from(g, 0);
  const SptResult back =
      decompress_spt(g, compress_spt(full), SpfAlgorithm::kDijkstra);
  EXPECT_EQ(back.dist[4], kInfCost);
  EXPECT_EQ(back.parent[4], kNoNode);
  EXPECT_EQ(back.parent_link[4], kNoLink);
}

TEST(SptCompress, RejectsCorruptEncodings) {
  const graph::Graph g = asym_square();
  CompressedSpt c = compress_spt(dijkstra_from(g, 0));
  CompressedSpt truncated = c;
  truncated.bytes.pop_back();
  EXPECT_THROW(decompress_spt(g, truncated, SpfAlgorithm::kDijkstra),
               ContractViolation);
  CompressedSpt trailing = c;
  trailing.bytes.push_back(0);
  EXPECT_THROW(decompress_spt(g, trailing, SpfAlgorithm::kDijkstra),
               ContractViolation);
  CompressedSpt empty;
  EXPECT_THROW(decompress_spt(g, empty, SpfAlgorithm::kDijkstra),
               ContractViolation);
}

TEST(BaseTreeStore, MaterialisesThroughWeakCache) {
  const graph::Graph g = asym_square();
  // Hot ring disabled: only callers keep trees alive.
  const BaseTreeStore store(g, SpfAlgorithm::kDijkstra, 0);
  EXPECT_EQ(store.compressed_bytes(), 0u);

  std::shared_ptr<const SptResult> first = store.from(0);
  const SptResult reference = *first;
  EXPECT_EQ(store.trees_computed(), 1u);
  EXPECT_GT(store.compressed_bytes(), 0u);

  // While a caller holds the tree, further requests share it.
  EXPECT_EQ(store.from(0).get(), first.get());

  // After the last reference drops the store re-materialises from the
  // compressed bytes -- bit-identical, without recomputing the SPF.
  first.reset();
  std::shared_ptr<const SptResult> again = store.from(0);
  EXPECT_EQ(store.trees_computed(), 1u);
  expect_bit_identical(reference, *again);
}

TEST(BaseTreeStore, HotRingKeepsRecentTreesMaterialised) {
  const graph::Graph g = asym_square();
  const BaseTreeStore store(g, SpfAlgorithm::kDijkstra);
  const SptResult* raw = store.from(0).get();
  // The caller dropped its reference, but the default budget keeps
  // every tree of a graph this small hot: same object, no rebuild.
  EXPECT_EQ(store.from(0).get(), raw);
  EXPECT_EQ(store.trees_computed(), 1u);
}

}  // namespace
}  // namespace rtr::spf
