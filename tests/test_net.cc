#include <gtest/gtest.h>

#include <limits>

#include "common/expect.h"
#include "net/codec.h"
#include "net/delay.h"
#include "net/header.h"
#include "net/sim.h"

namespace rtr::net {
namespace {

TEST(RtrHeader, ByteAccounting) {
  RtrHeader h;
  EXPECT_EQ(h.recovery_bytes(), 0u);  // default mode carries nothing

  h.mode = Mode::kCollect;
  h.rec_init = 6;
  EXPECT_EQ(h.recovery_bytes(), 2u);  // rec_init only
  h.add_failed(10);
  h.add_failed(11);
  h.add_cross(3);
  // 2 (rec_init) + 2*2 (failed) + 2*1 (cross) = 8, matching the paper's
  // 16-bit link ids.
  EXPECT_EQ(h.recovery_bytes(), 8u);

  h.mode = Mode::kSourceRoute;
  h.source_route = {1, 2, 3};
  EXPECT_EQ(h.recovery_bytes(), 6u);  // route ids only in phase 2
}

TEST(RtrHeader, DedupingInserts) {
  RtrHeader h;
  EXPECT_TRUE(h.add_failed(5));
  EXPECT_FALSE(h.add_failed(5));
  EXPECT_EQ(h.failed_links.size(), 1u);
  EXPECT_TRUE(h.has_failed(5));
  EXPECT_FALSE(h.has_failed(6));
  EXPECT_TRUE(h.add_cross(7));
  EXPECT_FALSE(h.add_cross(7));
  EXPECT_TRUE(h.has_cross(7));
}

TEST(FcpHeader, ByteAccounting) {
  FcpHeader h;
  EXPECT_EQ(h.recovery_bytes(), 0u);
  h.add_failed(1);
  h.add_failed(2);
  h.source_route = {9, 8, 7};
  EXPECT_EQ(h.recovery_bytes(), 10u);
  EXPECT_FALSE(h.add_failed(1));
}

TEST(Codec, RoundTrip) {
  RtrHeader h;
  h.mode = Mode::kCollect;
  h.rec_init = 6;
  h.failed_links = {4, 9, 300};
  h.cross_links = {11};
  h.source_route = {};
  const RtrHeader d = decode(encode(h));
  EXPECT_EQ(d.mode, h.mode);
  EXPECT_EQ(d.rec_init, h.rec_init);
  EXPECT_EQ(d.failed_links, h.failed_links);
  EXPECT_EQ(d.cross_links, h.cross_links);
  EXPECT_EQ(d.source_route, h.source_route);
}

TEST(Codec, RoundTripUnsetInitiatorAndRoute) {
  RtrHeader h;
  h.mode = Mode::kSourceRoute;
  h.source_route = {1, 2, 3, 65534};
  const RtrHeader d = decode(encode(h));
  EXPECT_EQ(d.rec_init, kNoNode);
  EXPECT_EQ(d.source_route, h.source_route);
}

TEST(Codec, WireSizeMatchesAccountingPlusFixedOverhead) {
  RtrHeader h;
  h.mode = Mode::kCollect;
  h.rec_init = 1;
  h.failed_links = {1, 2, 3};
  h.cross_links = {4, 5};
  // encode = 1 (mode) + 2 (rec_init) + 3*2 (lengths) + ids.
  const std::size_t ids = (3 + 2 + 0) * kWireIdBytes;
  EXPECT_EQ(encode(h).size(), 1 + 2 + 6 + ids);
}

TEST(Codec, RejectsOversizedIds) {
  RtrHeader h;
  h.failed_links = {70000};  // does not fit 16 bits
  EXPECT_THROW(encode(h), CodecError);
}

TEST(Codec, RejectsMalformedInput) {
  RtrHeader h;
  h.mode = Mode::kCollect;
  h.rec_init = 3;
  h.failed_links = {1};
  std::vector<std::uint8_t> bytes = encode(h);

  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 1);
  EXPECT_THROW(decode(truncated), CodecError);

  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(decode(trailing), CodecError);

  std::vector<std::uint8_t> bad_mode = bytes;
  bad_mode[0] = 9;
  EXPECT_THROW(decode(bad_mode), CodecError);

  EXPECT_THROW(decode({}), CodecError);
}

TEST(DelayModel, PaperConstants) {
  const DelayModel d;
  EXPECT_DOUBLE_EQ(d.per_hop_ms(), 1.8);  // Section IV-B
  EXPECT_DOUBLE_EQ(d.duration_ms(0), 0.0);
  EXPECT_DOUBLE_EQ(d.duration_ms(11), 19.8);
}

TEST(Simulator, RunsInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(5.0, [&] { order.push_back(2); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(9.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(Simulator, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(1.0, [&] { order.push_back(2); });
  sim.at(1.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> hop = [&] {
    times.push_back(sim.now());
    if (times.size() < 4) sim.after(1.8, hop);
  };
  sim.after(0.0, hop);
  sim.run();
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[3], 5.4);
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(10.0, [&] { ++fired; });
  sim.at(20.0, [&] { ++fired; });
  sim.run_until(15.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 15.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.at(1.0, [] {}), ContractViolation);
}

TEST(Simulator, AfterClampsInjectedDelaysAtNow) {
  // Regression: fault-layer delay arithmetic can produce a negative or
  // non-finite adjustment; after() must clamp the sum at now() instead
  // of tripping at()'s cannot-schedule-in-the-past contract.
  Simulator sim;
  sim.at(5.0, [] {});
  sim.run();
  ASSERT_DOUBLE_EQ(sim.now(), 5.0);
  std::vector<double> fired_at;
  sim.after(-3.0, [&] { fired_at.push_back(sim.now()); });
  sim.after(std::numeric_limits<double>::quiet_NaN(),
            [&] { fired_at.push_back(sim.now()); });
  sim.after(0.5, [&] { fired_at.push_back(sim.now()); });
  sim.run();
  // The clamped events run immediately at now(), in FIFO order, before
  // the genuinely later one.
  EXPECT_EQ(fired_at, (std::vector<double>{5.0, 5.0, 5.5}));
}

}  // namespace
}  // namespace rtr::net
