// Cross-validation of the whole SPF stack against the independent
// Bellman-Ford reference, on random weighted, asymmetric and masked
// graphs.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/gen/generators.h"
#include "graph/gen/isp_gen.h"
#include "spf/bellman_ford.h"
#include "spf/incremental.h"
#include "spf/routing_table.h"
#include "spf/shortest_path.h"

namespace rtr::spf {
namespace {

using graph::Graph;

/// A connected random graph with random asymmetric costs.
Graph random_weighted_graph(std::size_t n, double extra_frac, Rng& rng) {
  const Graph tree = graph::make_random_tree(n, 1000.0, rng);
  graph::GraphBuilder g;
  for (NodeId i = 0; i < tree.node_count(); ++i) g.add_node(tree.position(i));
  for (LinkId l = 0; l < tree.link_count(); ++l) {
    const graph::Link& e = tree.link(l);
    g.add_link(e.u, e.v);
  }
  const std::size_t extras =
      static_cast<std::size_t>(extra_frac * static_cast<double>(n));
  std::size_t added = 0;
  while (added < extras) {
    const NodeId u = static_cast<NodeId>(rng.index(n));
    const NodeId v = static_cast<NodeId>(rng.index(n));
    if (u == v || g.find_link(u, v) != kNoLink) continue;
    g.add_link(u, v);
    ++added;
  }
  // Re-cost every link with random asymmetric weights in [1, 20].
  graph::GraphBuilder weighted;
  for (NodeId i = 0; i < g.node_count(); ++i) weighted.add_node(g.position(i));
  for (LinkId l = 0; l < g.link_count(); ++l) {
    const graph::Link& e = g.link(l);
    weighted.add_link_asym(e.u, e.v, rng.uniform_real(1.0, 20.0),
                           rng.uniform_real(1.0, 20.0));
  }
  return weighted.build();
}

class SpfCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpfCrossCheck, DijkstraMatchesBellmanFord) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = random_weighted_graph(40, 1.5, rng);
    const NodeId src = static_cast<NodeId>(rng.index(g.num_nodes()));
    const SptResult d = dijkstra_from(g, src);
    const BellmanFordResult bf = bellman_ford(g, src);
    EXPECT_FALSE(bf.negative_cycle);
    for (NodeId n = 0; n < g.node_count(); ++n) {
      EXPECT_NEAR(d.dist[n], bf.dist[n], 1e-9) << "node " << n;
    }
  }
}

TEST_P(SpfCrossCheck, DijkstraMatchesBellmanFordUnderMasks) {
  Rng rng(GetParam() ^ 0xAAAA);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = random_weighted_graph(35, 1.2, rng);
    std::vector<char> link_mask(g.num_links(), 0);
    std::vector<char> node_mask(g.num_nodes(), 0);
    for (std::size_t i = 0; i < g.num_links() / 5; ++i) {
      link_mask[rng.index(g.num_links())] = 1;
    }
    for (std::size_t i = 0; i < g.num_nodes() / 10; ++i) {
      node_mask[rng.index(g.num_nodes())] = 1;
    }
    NodeId src = static_cast<NodeId>(rng.index(g.num_nodes()));
    if (node_mask[src]) node_mask[src] = 0;
    const graph::Masks masks{&node_mask, &link_mask};
    const SptResult d = dijkstra_from(g, src, masks);
    const BellmanFordResult bf = bellman_ford(g, src, masks);
    for (NodeId n = 0; n < g.node_count(); ++n) {
      EXPECT_NEAR(d.dist[n] == kInfCost ? -1.0 : d.dist[n],
                  bf.dist[n] == kInfCost ? -1.0 : bf.dist[n], 1e-9);
    }
  }
}

TEST_P(SpfCrossCheck, RoutingTableDistancesMatchBellmanFord) {
  Rng rng(GetParam() ^ 0xBBBB);
  const Graph g = random_weighted_graph(30, 1.0, rng);
  const RoutingTable rt(g, RoutingTable::Metric::kLinkCost);
  // With asymmetric costs the table's u -> t distances are validated
  // against forward Bellman-Ford runs from each u.
  for (NodeId t = 0; t < g.node_count(); ++t) {
    for (NodeId u = 0; u < g.node_count(); ++u) {
      if (u == t) continue;
      const Path p = rt.route(u, t);
      ASSERT_FALSE(p.empty());
      EXPECT_TRUE(valid_path(g, p));
      // The route's directed cost must equal the table's distance and
      // the true optimum computed by a forward Dijkstra from u.
      EXPECT_NEAR(p.cost, rt.distance(u, t), 1e-9);
      const BellmanFordResult fwd = bellman_ford(g, u);
      EXPECT_NEAR(p.cost, fwd.dist[t], 1e-9);
    }
  }
}

TEST_P(SpfCrossCheck, IncrementalMatchesBellmanFordOnWeightedGraphs) {
  Rng rng(GetParam() ^ 0xCCCC);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_weighted_graph(40, 1.5, rng);
    const NodeId root = static_cast<NodeId>(rng.index(g.num_nodes()));
    IncrementalSpt inc(g, root);
    std::vector<char> removed(g.num_links(), 0);
    std::vector<LinkId> batch;
    for (int i = 0; i < 10; ++i) {
      const LinkId l = static_cast<LinkId>(rng.index(g.num_links()));
      if (!removed[l]) {
        removed[l] = 1;
        batch.push_back(l);
      }
    }
    inc.remove_links(batch);
    const BellmanFordResult bf =
        bellman_ford(g, root, {nullptr, &removed});
    for (NodeId n = 0; n < g.node_count(); ++n) {
      EXPECT_NEAR(inc.dist(n) == kInfCost ? -1.0 : inc.dist(n),
                  bf.dist[n] == kInfCost ? -1.0 : bf.dist[n], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpfCrossCheck,
                         ::testing::Values(71u, 72u, 73u));

TEST(BellmanFord, MatchesOnIspSurrogate) {
  const Graph g = graph::make_isp_topology(graph::spec_by_name("AS1239"));
  for (NodeId src = 0; src < g.node_count(); src += 7) {
    const SptResult d = bfs_from(g, src);
    const BellmanFordResult bf = bellman_ford(g, src);
    for (NodeId n = 0; n < g.node_count(); ++n) {
      EXPECT_DOUBLE_EQ(d.dist[n], bf.dist[n]);
    }
  }
}

TEST(BellmanFord, MaskedSourceYieldsNothing) {
  graph::GraphBuilder b;
  b.add_node({0, 0});
  b.add_node({1, 1});
  b.add_link(0, 1);
  const Graph g = b.build();
  std::vector<char> nm = {1, 0};
  const BellmanFordResult bf = bellman_ford(g, 0, {&nm, nullptr});
  EXPECT_EQ(bf.dist[0], kInfCost);
  EXPECT_EQ(bf.dist[1], kInfCost);
}

}  // namespace
}  // namespace rtr::spf
