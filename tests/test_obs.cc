// rtr::obs -- counter/gauge/histogram semantics, shard-merge
// determinism across thread counts, scoped-timer nesting, and the
// "rtr.metrics.v1" JSON document shape.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "obs/emit.h"
#include "obs/metrics.h"

using namespace rtr;

namespace {

// Every test names its series under a test-unique prefix, so the
// process-wide registry (shared with the instrumented library code the
// other test files exercise) never causes cross-talk.
const obs::Sample* find(const obs::Snapshot& snap, const std::string& name) {
  for (const obs::Sample& s : snap) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(ObsCounter, AddAndIncAccumulate) {
  obs::Counter c("obs_test.counter.basic", obs::Stability::kStable);
  EXPECT_EQ(c.total(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.total(), 42u);

  const obs::Sample s = c.sample();
  EXPECT_EQ(s.name, "obs_test.counter.basic");
  EXPECT_EQ(s.kind, obs::Kind::kCounter);
  EXPECT_EQ(s.count, 42u);

  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(ObsGauge, SummarisesCountSumMinMax) {
  obs::Gauge g("obs_test.gauge.basic", obs::Stability::kStable);
  obs::Sample s = g.sample();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u) << "empty gauge must report min 0, not ~0";
  EXPECT_EQ(s.max, 0u);

  for (obs::Value v : {7u, 3u, 11u, 3u}) g.record(v);
  s = g.sample();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 24u);
  EXPECT_EQ(s.min, 3u);
  EXPECT_EQ(s.max, 11u);
}

TEST(ObsHistogram, BucketsByUpperBoundWithOverflow) {
  obs::Histogram h("obs_test.hist.basic", obs::Stability::kStable,
                   {10, 100, 1000});
  // One per bucket: <=10, <=100, <=1000, +inf.
  h.observe(10);
  h.observe(11);
  h.observe(1000);
  h.observe(5000);

  const obs::Sample s = h.sample();
  ASSERT_EQ(s.bucket_bounds, (std::vector<obs::Value>{10, 100, 1000}));
  ASSERT_EQ(s.bucket_counts.size(), 4u)
      << "bounds.size() + 1 buckets; the last is +inf";
  EXPECT_EQ(s.bucket_counts, (std::vector<obs::Value>{1, 1, 1, 1}));
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 10u + 11u + 1000u + 5000u);
  EXPECT_EQ(s.min, 10u);
  EXPECT_EQ(s.max, 5000u);
}

TEST(ObsRegistry, FindsSameSeriesByNameAndSnapshotsSorted) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& a = reg.counter("obs_test.registry.b");
  obs::Counter& b = reg.counter("obs_test.registry.a");
  EXPECT_EQ(&a, &reg.counter("obs_test.registry.b"))
      << "same name must resolve to the same series";
  a.add(2);
  b.add(1);

  const obs::Snapshot snap = reg.snapshot();
  EXPECT_TRUE(std::is_sorted(
      snap.begin(), snap.end(),
      [](const obs::Sample& x, const obs::Sample& y) {
        return x.name < y.name;
      }));
  ASSERT_NE(find(snap, "obs_test.registry.a"), nullptr);
  EXPECT_EQ(find(snap, "obs_test.registry.a")->count, 1u);
  EXPECT_EQ(find(snap, "obs_test.registry.b")->count, 2u);
}

// The determinism contract: a fixed workload must produce bit-identical
// stable samples no matter how many threads updated the shards.
TEST(ObsMergeDeterminism, StableSeriesIdenticalAcrossThreadCounts) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& ops = reg.counter("obs_test.det.ops");
  obs::Gauge& sizes = reg.gauge("obs_test.det.sizes");
  obs::Histogram& touched = reg.histogram(
      "obs_test.det.touched", obs::size_bounds());

  constexpr std::size_t kUnits = 512;
  const auto workload = [&](std::size_t i) {
    ops.add(i % 7 + 1);
    sizes.record(i * i % 1009);
    touched.observe(i % 300);
  };

  struct Result {
    obs::Sample ops, sizes, touched;
  };
  std::vector<Result> per_thread_count;
  for (std::size_t threads : {1u, 2u, 8u}) {
    ops.reset();
    sizes.reset();
    touched.reset();
    common::parallel_for(kUnits, threads, workload);
    const obs::Snapshot snap = reg.snapshot();
    per_thread_count.push_back({*find(snap, "obs_test.det.ops"),
                                *find(snap, "obs_test.det.sizes"),
                                *find(snap, "obs_test.det.touched")});
  }

  const auto same = [](const obs::Sample& x, const obs::Sample& y) {
    return x.count == y.count && x.sum == y.sum && x.min == y.min &&
           x.max == y.max && x.bucket_counts == y.bucket_counts;
  };
  for (std::size_t i = 1; i < per_thread_count.size(); ++i) {
    EXPECT_TRUE(same(per_thread_count[0].ops, per_thread_count[i].ops));
    EXPECT_TRUE(same(per_thread_count[0].sizes, per_thread_count[i].sizes));
    EXPECT_TRUE(
        same(per_thread_count[0].touched, per_thread_count[i].touched));
  }
  obs::Value expect_ops = 0;
  for (std::size_t i = 0; i < kUnits; ++i) expect_ops += i % 7 + 1;
  EXPECT_EQ(per_thread_count[0].ops.count, expect_ops);
}

// And end to end: the deterministic-mode JSON document (the thing CI
// byte-compares) must come out identical at 1/2/8 threads.
TEST(ObsMergeDeterminism, DeterministicJsonBitIdenticalAcrossThreadCounts) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& ops = reg.counter("obs_test.json_det.ops");
  obs::Histogram& wall = reg.timer("obs_test.json_det.elapsed_ns");

  obs::RunInfo run;
  run.bench = "obs_unit_test";
  run.config = {{"units", "256"}};
  obs::EmitOptions opts;
  opts.include_volatile = false;  // deterministic mode

  std::vector<std::string> docs;
  for (std::size_t threads : {1u, 2u, 8u}) {
    reg.reset();
    common::parallel_for(256, threads, [&](std::size_t i) {
      obs::ScopedTimer t(wall);  // volatile: must not leak into the doc
      ops.add(i + 1);
    });
    docs.push_back(obs::to_json(reg.snapshot(), run, opts));
  }
  EXPECT_EQ(docs[0], docs[1]);
  EXPECT_EQ(docs[0], docs[2]);
  EXPECT_EQ(docs[0].find("json_det.elapsed_ns"), std::string::npos)
      << "volatile series must be omitted in deterministic mode";
  EXPECT_NE(docs[0].find("\"obs_test.json_det.ops\""), std::string::npos);
}

TEST(ObsScopedTimer, NestedScopesEachRecordOnce) {
  obs::Registry& reg = obs::Registry::global();
  obs::Histogram& outer = reg.timer("obs_test.timer.outer_ns");
  obs::Histogram& inner = reg.timer("obs_test.timer.inner_ns");
  {
    obs::ScopedTimer to(outer);
    {
      obs::ScopedTimer ti(inner);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      EXPECT_GT(ti.elapsed_ns(), 0u);
    }
    {
      obs::ScopedTimer ti(inner);
    }
  }
  const obs::Sample so = outer.sample();
  const obs::Sample si = inner.sample();
  EXPECT_EQ(so.count, 1u);
  EXPECT_EQ(si.count, 2u);
  EXPECT_GE(so.max, si.max) << "outer scope includes the inner scopes";
  EXPECT_EQ(so.stability, obs::Stability::kVolatile)
      << "timers are wall clock and must never be marked stable";
}

TEST(ObsEmit, JsonDocumentMatchesSchemaShape) {
  obs::Registry& reg = obs::Registry::global();
  reg.reset();
  obs::Counter& c = reg.counter("obs_test.emit.ops");
  obs::Gauge& g = reg.gauge("obs_test.emit.depth");
  obs::Histogram& h =
      reg.histogram("obs_test.emit.sizes", {1, 2}, obs::Stability::kStable);
  c.add(3);
  g.record(5);
  h.observe(2);

  obs::RunInfo run;
  run.bench = "obs_unit_test";
  run.config = {{"seed", "7"}, {"cases", "10"}};
  obs::EmitOptions opts;
  opts.include_volatile = true;
  opts.threads = 4;
  opts.wall_clock_ms = 123;

  const std::string doc = obs::to_json(reg.snapshot(), run, opts);

  // Shape, not a full parser: the gate's python side json.load()s it.
  EXPECT_NE(doc.find("\"schema\":\"rtr.metrics.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"bench\":\"obs_unit_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\":\"7\""), std::string::npos);
  EXPECT_NE(doc.find("\"obs_test.emit.ops\":{\"kind\":\"counter\","
                     "\"value\":3}"),
            std::string::npos);
  EXPECT_NE(doc.find("\"obs_test.emit.depth\":{\"kind\":\"gauge\","
                     "\"count\":1,\"sum\":5,\"min\":5,\"max\":5}"),
            std::string::npos);
  EXPECT_NE(doc.find("\"bounds\":[1,2]"), std::string::npos);
  EXPECT_NE(doc.find("\"counts\":[0,1,0]"), std::string::npos);
  EXPECT_NE(doc.find("\"threads\":4"), std::string::npos);
  EXPECT_NE(doc.find("\"wall_clock_ms\":123"), std::string::npos);
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.back(), '}');
  // Braces balance (cheap structural sanity; no strings in the schema
  // contain braces).
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));

  // Emission is a pure function of the snapshot: same input, same bytes.
  EXPECT_EQ(doc, obs::to_json(reg.snapshot(), run, opts));
}

// Regression: the bench plumbing used to register its own atexit
// emitter with file-static state; embedding it twice (or inside a
// long-running server) could double-register the handler and race
// static destruction.  The process-wide Emitter must flush on demand,
// rewrite the file whole each time, and install its atexit hook at most
// once no matter how many call sites ask.
TEST(ObsEmitter, ExplicitFlushIsRepeatableAndAtexitRegistersOnce) {
  obs::Emitter& emitter = obs::Emitter::global();
  EXPECT_FALSE(emitter.flush()) << "unconfigured emitter must be a no-op";

  const std::string path =
      ::testing::TempDir() + "/obs_emitter_flush_test.json";
  obs::RunInfo run;
  run.bench = "obs_emitter_test";
  obs::EmitOptions opts;
  opts.include_volatile = false;
  emitter.configure(path, run, opts);
  EXPECT_TRUE(emitter.configured());

  obs::Counter& c = obs::Registry::global().counter("obs_test.emitter.ops");
  c.add(1);
  const std::size_t flushes_before = emitter.flushes();
  ASSERT_TRUE(emitter.flush());
  const std::string first = [&] {
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
  }();
  EXPECT_NE(first.find("\"obs_test.emitter.ops\""), std::string::npos);

  // Second flush after more activity: the file is rewritten whole (one
  // valid document, fresh counter state), never appended to.
  c.add(1);
  ASSERT_TRUE(emitter.flush());
  EXPECT_EQ(emitter.flushes(), flushes_before + 2);
  const std::string second = [&] {
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
  }();
  EXPECT_EQ(std::count(second.begin(), second.end(), '\n'), 1)
      << "flush must overwrite, not append a second document";
  EXPECT_EQ(second.front(), '{');

  // The atexit hook installs at most once per process, however many
  // call sites (bench config parser, server startup, tests) ask.
  const bool first_registration = emitter.register_atexit();
  EXPECT_FALSE(emitter.register_atexit())
      << "second registration must be suppressed";
  (void)first_registration;  // may be false if another test ran first

  // Disarm so the process-exit flush doesn't scribble into TempDir
  // after the test binary's accounting finished.
  emitter.configure("", {}, {});
  EXPECT_FALSE(emitter.flush());
}

// Regression: flush used to write the destination in place, so a reader
// racing a flush (the svc layer snapshots mid-run) could observe a
// half-written document.  write_metrics_file now stages into
// `path + ".tmp"` and rename()s into place: a stale destination is
// replaced whole and no .tmp residue survives a successful flush.
TEST(ObsEmitter, FlushReplacesStaleFilesAtomicallyWithoutTmpResidue) {
  const std::string path =
      ::testing::TempDir() + "/obs_emitter_atomic_test.json";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream stale(path);
    stale << "STALE, NOT JSON\n";
  }
  {
    // A leftover staging file from a crashed writer must not wedge the
    // next flush either.
    std::ofstream residue(tmp);
    residue << "torn half-write";
  }

  obs::RunInfo run;
  run.bench = "obs_emitter_atomic_test";
  obs::EmitOptions opts;
  opts.include_volatile = false;
  ASSERT_TRUE(obs::write_metrics_file(
      path, obs::Registry::global().snapshot(), run, opts));

  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string doc = ss.str();
  EXPECT_EQ(doc.front(), '{') << "stale content must be fully replaced";
  EXPECT_EQ(doc.find("STALE"), std::string::npos);
  EXPECT_FALSE(std::ifstream(tmp).good())
      << "staging file must not survive a successful flush";
  std::remove(path.c_str());
}

}  // namespace
