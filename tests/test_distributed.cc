// Cross-validation: the distributed, event-driven RTR (per-router state
// machines over the packet simulator) must behave identically to the
// centralized trace engine used by the experiments.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <set>

#include "common/rng.h"
#include "core/distributed_rtr.h"
#include "core/rtr.h"
#include "exp/cases.h"
#include "exp/context.h"
#include "graph/paper_topology.h"
#include "obs/metrics.h"

namespace rtr::core {
namespace {

using graph::paper_node;

struct Outcome2 {
  bool delivered = false;
  NodeId final_node = kNoNode;
  std::vector<NodeId> trace;
  double finished_at = -1.0;
};

TEST(DistributedRtr, WorkedExampleEndToEnd) {
  const graph::Graph g = graph::fig1_graph();
  const graph::CrossingIndex crossings(g);
  const spf::RoutingTable rt(g);
  const fail::FailureSet failure(
      g, fail::CircleArea(graph::fig1_failure_area()),
      fail::LinkCutRule::kGeometric);

  net::Simulator sim;
  net::Network network(g, failure, sim);
  DistributedRtr app(g, crossings, rt, failure);
  net::DataPacket p;
  p.src = paper_node(7);
  p.dst = paper_node(17);
  Outcome2 out;
  network.send(p, app, [&](const net::DataPacket& pkt, NodeId f,
                           bool ok) {
    out.delivered = ok;
    out.final_node = f;
    out.trace = pkt.trace;
    out.finished_at = sim.now();
  });
  sim.run();

  ASSERT_TRUE(out.delivered);
  EXPECT_EQ(out.final_node, paper_node(17));
  // Full journey: v7 -> v6 (default), the 11-hop Table I cycle, then
  // the 4-hop recovery path v6 -> v5 -> v12 -> v14 -> v17.
  const std::vector<NodeId> expected = [&] {
    std::vector<int> ks = {7, 6,                                  // default
                           5, 4, 9, 13, 14, 12, 11, 12, 8, 7, 6,  // phase 1
                           5, 12, 14, 17};                        // phase 2
    std::vector<NodeId> v;
    for (int k : ks) v.push_back(paper_node(k));
    return v;
  }();
  EXPECT_EQ(out.trace, expected);
  EXPECT_TRUE(app.phase1_complete(paper_node(6)));
  // 16 hops total at 1.8 ms plus the source's 0.1 ms processing delay.
  EXPECT_NEAR(out.finished_at, 0.1 + 1.8 * 16, 1e-9);

  // Collected information matches the centralized phase 1.
  const Phase1Result reference =
      run_phase1(g, crossings, failure, paper_node(6),
                 g.find_link(paper_node(6), paper_node(11)));
  EXPECT_EQ(app.collected(paper_node(6)).failed_links,
            reference.header.failed_links);
  EXPECT_EQ(app.collected(paper_node(6)).cross_links,
            reference.header.cross_links);
}

TEST(DistributedRtr, Phase1StateIsReusedAcrossPackets) {
  const graph::Graph g = graph::fig1_graph();
  const graph::CrossingIndex crossings(g);
  const spf::RoutingTable rt(g);
  const fail::FailureSet failure(
      g, fail::CircleArea(graph::fig1_failure_area()),
      fail::LinkCutRule::kGeometric);
  net::Simulator sim;
  net::Network network(g, failure, sim);
  DistributedRtr app(g, crossings, rt, failure);

  std::vector<std::size_t> journey_hops;
  for (int i = 0; i < 2; ++i) {
    net::DataPacket p;
    p.src = paper_node(7);
    p.dst = paper_node(17);
    network.send(p, app,
                 [&](const net::DataPacket& pkt, NodeId, bool ok) {
                   EXPECT_TRUE(ok);
                   journey_hops.push_back(pkt.trace.size() - 1);
                 });
    sim.run();
  }
  ASSERT_EQ(journey_hops.size(), 2u);
  // First packet pays for phase 1 (16 hops); the second rides the
  // cached recovery path immediately (1 default hop + 4 source-routed).
  EXPECT_EQ(journey_hops[0], 16u);
  EXPECT_EQ(journey_hops[1], 5u);
}

struct TopoParam {
  const char* name;
  std::uint64_t seed;
};

class DistributedVsCentralized
    : public ::testing::TestWithParam<TopoParam> {};

TEST_P(DistributedVsCentralized, IdenticalOutcomesAndPaths) {
  const exp::TopologyContext ctx =
      exp::make_context(graph::spec_by_name(GetParam().name));
  Rng rng(GetParam().seed);
  const fail::ScenarioConfig cfg;
  int cases = 0;
  for (int trial = 0; trial < 50 && cases < 250; ++trial) {
    const fail::CircleArea area = fail::random_circle_area(cfg, rng);
    const exp::Scenario sc = exp::extract_scenario(ctx, area);
    if (sc.recoverable.empty() && sc.irrecoverable.empty()) continue;

    RtrRecovery centralized(ctx.g, ctx.crossings, ctx.rt, sc.failure);
    net::Simulator sim;
    net::Network network(ctx.g, sc.failure, sim);
    DistributedRtr distributed(ctx.g, ctx.crossings, ctx.rt, sc.failure);
    std::set<NodeId> phase1_seen;

    const auto check = [&](const exp::TestCase& tc) {
      ++cases;
      const RecoveryResult want = centralized.recover(tc.initiator,
                                                      tc.dest);
      net::DataPacket p;
      p.src = tc.initiator;  // the initiator detects the dead next hop
      p.dst = tc.dest;
      bool got_delivered = false;
      NodeId got_final = kNoNode;
      std::vector<NodeId> got_trace;
      network.send(p, distributed,
                   [&](const net::DataPacket& pkt, NodeId f, bool ok) {
                     got_delivered = ok;
                     got_final = f;
                     got_trace = pkt.trace;
                   });
      sim.run();

      EXPECT_EQ(got_delivered, want.recovered())
          << ctx.name << " " << tc.initiator << "->" << tc.dest
          << " centralized=" << to_string(want.outcome);
      const bool first_use = phase1_seen.insert(tc.initiator).second;
      if (want.recovered()) {
        // First packet per initiator pays for phase 1; later packets
        // go straight to the cached recovery path (Section III-A).
        const Phase1Result& p1 = centralized.phase1_for(tc.initiator);
        std::vector<NodeId> expected =
            first_use ? p1.visits : std::vector<NodeId>{tc.initiator};
        expected.insert(expected.end(),
                        want.computed_path.nodes.begin() + 1,
                        want.computed_path.nodes.end());
        EXPECT_EQ(got_trace, expected);
      } else if (want.outcome == Outcome::kDroppedOnPath) {
        EXPECT_EQ(got_final,
                  want.computed_path.nodes[want.delivered_hops]);
      } else {
        EXPECT_EQ(got_final, tc.initiator);
      }
    };
    for (const exp::TestCase& tc : sc.recoverable) check(tc);
    for (const exp::TestCase& tc : sc.irrecoverable) check(tc);
  }
  EXPECT_GT(cases, 100);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, DistributedVsCentralized,
    ::testing::Values(TopoParam{"AS209", 501}, TopoParam{"AS1239", 502},
                      TopoParam{"AS3549", 503}, TopoParam{"AS7018", 504}),
    [](const auto& info) { return info.param.name; });

/// Ring of n nodes on a circle; with a zeroed hop-cap factor every
/// phase-1 traversal overruns the distributed cap and aborts.
graph::Graph ring_graph(std::size_t n) {
  graph::GraphBuilder g;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 2.0 * 3.14159265358979323846 *
                     static_cast<double>(i) / static_cast<double>(n);
    g.add_node({100.0 * std::cos(a), 100.0 * std::sin(a)});
  }
  for (std::size_t i = 0; i < n; ++i) {
    g.add_link(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  return g.build();
}

TEST(DistributedRtr, ReusableAfterPhase1Abort) {
  // Satellite check: a hop-cap abort mid-collect must be counted, must
  // surface as an ordinary drop (kHopCap), and must leave no stale
  // InitiatorState behind -- the retried traversal and an untouched
  // flow both behave exactly like a fresh engine's.
  const graph::Graph g = ring_graph(20);
  const LinkId dead = g.find_link(0, 1);
  const fail::FailureSet failure = fail::FailureSet::of_links(g, {dead});
  const graph::CrossingIndex crossings(g);
  const spf::RoutingTable rt(g);

  Phase1Options ablated;
  ablated.max_hops_factor = 0;  // distributed cap = 32 trace entries
  net::Simulator sim;
  net::Network network(g, failure, sim);
  DistributedRtr app(g, crossings, rt, failure, ablated);

  const auto send = [&](DistributedRtr& a, NodeId src, NodeId dst) {
    net::DataPacket p;
    p.src = src;
    p.dst = dst;
    struct {
      bool delivered = false;
      std::vector<NodeId> trace;
      net::DataPacket::DropReason reason = net::DataPacket::DropReason::kNone;
    } out;
    network.send(p, a,
                 [&](const net::DataPacket& pkt, NodeId, bool ok) {
                   out.delivered = ok;
                   out.trace = pkt.trace;
                   out.reason = pkt.drop_reason;
                 });
    sim.run();
    return out;
  };

  obs::Counter& aborted =
      obs::Registry::global().counter("rtr.core.distributed.phase1_aborted");
  const obs::Value aborted0 = aborted.total();
  const auto first = send(app, 0, 1);
  EXPECT_FALSE(first.delivered);
  EXPECT_EQ(first.reason, net::DataPacket::DropReason::kHopCap);
  EXPECT_GT(first.trace.size(), 32u);
  EXPECT_EQ(aborted.total() - aborted0, 1u);
  EXPECT_FALSE(app.phase1_complete(0));

  // Re-initiation after the abort restarts phase 1 from scratch: the
  // retried traversal is bit-identical to the first (nothing stale
  // steers it), and prepare_retry leaves no state at the initiator.
  app.prepare_retry(0, /*clockwise=*/false);
  EXPECT_FALSE(app.phase1_complete(0));
  const auto second = send(app, 0, 1);
  EXPECT_EQ(second.delivered, first.delivered);
  EXPECT_EQ(second.trace, first.trace);
  EXPECT_EQ(second.reason, first.reason);
  EXPECT_EQ(aborted.total() - aborted0, 2u);

  // Flows that never touch the failure still deliver on the same app.
  const auto clean = send(app, 5, 9);
  EXPECT_TRUE(clean.delivered);
  EXPECT_EQ(clean.trace, (std::vector<NodeId>{5, 6, 7, 8, 9}));

  // A fresh engine with the default cap completes the same recovery;
  // the abort was purely the ablated cap's doing.
  DistributedRtr healthy(g, crossings, rt, failure);
  const auto ok = send(healthy, 0, 1);
  EXPECT_TRUE(ok.delivered);
  EXPECT_TRUE(healthy.phase1_complete(0));
}

}  // namespace
}  // namespace rtr::core
