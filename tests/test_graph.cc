#include <gtest/gtest.h>

#include <sstream>

#include "common/expect.h"
#include "graph/crossings.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/paper_topology.h"
#include "graph/properties.h"

namespace rtr::graph {
namespace {

GraphBuilder triangle_builder() {
  GraphBuilder g;
  g.add_node({0, 0});
  g.add_node({10, 0});
  g.add_node({5, 8});
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 0);
  return g;
}

Graph triangle() { return triangle_builder().build(); }

TEST(Graph, BasicAccessors) {
  Graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_links(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.position(2), (geom::Point{5, 8}));
  const Link& e = g.link(0);
  EXPECT_EQ(e.u, 0u);
  EXPECT_EQ(e.v, 1u);
  EXPECT_DOUBLE_EQ(e.cost_uv, 1.0);
}

TEST(Graph, OtherEndAndCost) {
  GraphBuilder b;
  b.add_node({0, 0});
  b.add_node({1, 0});
  const LinkId l = b.add_link_asym(0, 1, 2.0, 3.0);
  Graph g = b.build();
  EXPECT_EQ(g.other_end(l, 0), 1u);
  EXPECT_EQ(g.other_end(l, 1), 0u);
  EXPECT_DOUBLE_EQ(g.cost_from(l, 0), 2.0);
  EXPECT_DOUBLE_EQ(g.cost_from(l, 1), 3.0);
  EXPECT_THROW(g.other_end(l, 2), ContractViolation);
}

TEST(Graph, FindLink) {
  Graph g = triangle();
  EXPECT_NE(g.find_link(0, 1), kNoLink);
  EXPECT_EQ(g.find_link(0, 1), g.find_link(1, 0));
  GraphBuilder b2 = triangle_builder();
  b2.add_node({20, 20});
  Graph g2 = b2.build();
  EXPECT_EQ(g2.find_link(0, 3), kNoLink);
}

TEST(GraphBuilder, RejectsSelfLoopAndParallel) {
  GraphBuilder g = triangle_builder();
  EXPECT_THROW(g.add_link(0, 0), ContractViolation);
  EXPECT_THROW(g.add_link(0, 1), ContractViolation);
  EXPECT_THROW(g.add_link(1, 0), ContractViolation);
  EXPECT_THROW(g.add_link(0, 7), ContractViolation);
  EXPECT_THROW(g.add_link(0, 1, -1.0), ContractViolation);
}

TEST(GraphBuilder, GuardsAgainstIdOverflow) {
  // A builder whose id space is artificially capped at 2 nodes / 1 link
  // must refuse the third node and second link instead of letting the
  // id wrap and alias id 0 (the historical add_node cast size()-1 to
  // NodeId unchecked).
  GraphBuilder g(/*max_nodes=*/2, /*max_links=*/1);
  g.add_node({0, 0});
  g.add_node({1, 0});
  EXPECT_THROW(g.add_node({2, 0}), ContractViolation);
  g.add_link(0, 1);
  EXPECT_THROW(g.add_link(1, 0, 2.0), ContractViolation);  // would be parallel
  GraphBuilder h(/*max_nodes=*/3, /*max_links=*/1);
  h.add_node({0, 0});
  h.add_node({1, 0});
  h.add_node({2, 0});
  h.add_link(0, 1);
  EXPECT_THROW(h.add_link(1, 2), ContractViolation);
  // The accepted prefix still freezes into a valid graph.
  Graph frozen = h.build();
  EXPECT_EQ(frozen.num_nodes(), 3u);
  EXPECT_EQ(frozen.num_links(), 1u);
}

TEST(Graph, NeighborsPreserveInsertionOrderSortedNeighborsSort) {
  // Star inserted in descending neighbour order: insertion order must
  // survive freezing (downstream tie-breaks depend on it) while
  // sorted_neighbors() re-orders by neighbour id.
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.add_node({static_cast<double>(i), 0});
  b.add_link(0, 4);
  b.add_link(0, 3);
  b.add_link(0, 2);
  b.add_link(0, 1);
  Graph g = b.build();
  const AdjacencySpan ins = g.neighbors(0);
  ASSERT_EQ(ins.size(), 4u);
  EXPECT_EQ(ins[0].neighbor, 4u);
  EXPECT_EQ(ins[1].neighbor, 3u);
  EXPECT_EQ(ins[2].neighbor, 2u);
  EXPECT_EQ(ins[3].neighbor, 1u);
  const AdjacencySpan sorted = g.sorted_neighbors(0);
  ASSERT_EQ(sorted.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sorted[i].neighbor, static_cast<NodeId>(i + 1));
    EXPECT_EQ(sorted[i].link, g.find_link(0, sorted[i].neighbor));
  }
}

TEST(Graph, CopiesShareFrozenStorage) {
  Graph g = triangle();
  Graph h = g;  // refcount bump, not a deep copy
  EXPECT_EQ(h.neighbors(0).begin(), g.neighbors(0).begin());
  EXPECT_GT(g.storage_bytes(), 0u);
  Graph empty;
  EXPECT_EQ(empty.num_nodes(), 0u);
  EXPECT_EQ(empty.storage_bytes(), 0u);
}

TEST(Graph, SegmentMatchesEmbedding) {
  Graph g = triangle();
  // The 0-2 link was inserted as (2, 0): the segment runs u -> v.
  const geom::Segment s = g.segment(g.find_link(0, 2));
  EXPECT_EQ(s.a, (geom::Point{5, 8}));
  EXPECT_EQ(s.b, (geom::Point{0, 0}));
}

TEST(Graph, LinkName) {
  Graph g = triangle();
  EXPECT_EQ(g.link_name(0), "e(0,1)");
}

// ---------------------------------------------------------------- crossings

TEST(Crossings, PaperTopologyHasExactlyTheDocumentedPairs) {
  const Graph g = fig1_graph();
  const CrossingIndex idx(g);
  const auto link = [&g](int a, int b) {
    const LinkId l = g.find_link(paper_node(a), paper_node(b));
    EXPECT_NE(l, kNoLink) << "e(" << a << "," << b << ") missing";
    return l;
  };
  // The embedding was designed so that exactly these pairs cross:
  // e5,12 x e6,11; e4,11 x e5,10; e14,12 x e11,15; e14,12 x e11,16.
  EXPECT_TRUE(idx.cross(link(5, 12), link(6, 11)));
  EXPECT_TRUE(idx.cross(link(4, 11), link(5, 10)));
  EXPECT_TRUE(idx.cross(link(14, 12), link(11, 15)));
  EXPECT_TRUE(idx.cross(link(14, 12), link(11, 16)));
  EXPECT_EQ(idx.num_crossing_pairs(), 4u);
  EXPECT_FALSE(idx.planar_embedding());
  // Symmetry.
  EXPECT_TRUE(idx.cross(link(6, 11), link(5, 12)));
  // A non-crossing sample.
  EXPECT_FALSE(idx.cross(link(6, 5), link(7, 6)));
}

TEST(Crossings, PlanarVariantHasNone) {
  const Graph g = fig1_planar_graph();
  const CrossingIndex idx(g);
  EXPECT_EQ(idx.num_crossing_pairs(), 0u);
  EXPECT_TRUE(idx.planar_embedding());
}

TEST(Crossings, ListsAreSortedAndConsistent) {
  const Graph g = fig1_graph();
  const CrossingIndex idx(g);
  std::size_t pair_count = 0;
  for (LinkId l = 0; l < g.link_count(); ++l) {
    const auto& cs = idx.crossing(l);
    EXPECT_TRUE(std::is_sorted(cs.begin(), cs.end()));
    for (LinkId c : cs) {
      EXPECT_TRUE(idx.cross(c, l));
      ++pair_count;
    }
  }
  EXPECT_EQ(pair_count, 2 * idx.num_crossing_pairs());
}

// ---------------------------------------------------------------- properties

TEST(Properties, Reachability) {
  GraphBuilder b = triangle_builder();
  b.add_node({50, 50});  // isolated node 3
  Graph g = b.build();
  EXPECT_TRUE(reachable(g, 0, 2));
  EXPECT_FALSE(reachable(g, 0, 3));
  EXPECT_FALSE(connected(g));
  const Components c = components(g);
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.id[0], c.id[1]);
  EXPECT_NE(c.id[0], c.id[3]);
}

TEST(Properties, MasksCutLinksAndNodes) {
  Graph g = triangle();
  std::vector<char> link_mask(g.num_links(), 0);
  link_mask[g.find_link(0, 1)] = 1;
  link_mask[g.find_link(0, 2)] = 1;
  EXPECT_FALSE(reachable(g, 0, 2, {nullptr, &link_mask}));
  EXPECT_TRUE(reachable(g, 1, 2, {nullptr, &link_mask}));

  std::vector<char> node_mask(g.num_nodes(), 0);
  node_mask[1] = 1;
  EXPECT_TRUE(reachable(g, 0, 2, {&node_mask, nullptr}));
  const Components c = components(g, {&node_mask, nullptr});
  EXPECT_EQ(c.count, 1u);
  EXPECT_EQ(c.id[1], kNoNode);  // masked node belongs to no component
}

TEST(Properties, MaskedSourceReachesNothing) {
  Graph g = triangle();
  std::vector<char> node_mask(g.num_nodes(), 0);
  node_mask[0] = 1;
  const auto seen = reachable_from(g, 0, {&node_mask, nullptr});
  for (char s : seen) EXPECT_EQ(s, 0);
}

TEST(Properties, DegreeStats) {
  GraphBuilder b = triangle_builder();
  b.add_node({20, 0});
  b.add_link(1, 3);  // node 3 is a leaf
  Graph g = b.build();
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 3u);
  EXPECT_EQ(s.leaves, 1u);
  EXPECT_EQ(s.degree_le_two, 3u);
  EXPECT_DOUBLE_EQ(s.mean_degree, 2.0);
}

TEST(Properties, SingletonGraphIsConnected) {
  GraphBuilder b;
  b.add_node({0, 0});
  EXPECT_TRUE(connected(b.build()));
}

// ------------------------------------------------------------------------ io

TEST(GraphIo, RoundTrip) {
  const Graph g = fig1_graph();
  const Graph h = from_string(to_string(g));
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_links(), g.num_links());
  for (NodeId n = 0; n < g.node_count(); ++n) {
    EXPECT_EQ(h.position(n), g.position(n));
  }
  for (LinkId l = 0; l < g.link_count(); ++l) {
    EXPECT_EQ(h.link(l).u, g.link(l).u);
    EXPECT_EQ(h.link(l).v, g.link(l).v);
    EXPECT_DOUBLE_EQ(h.link(l).cost_uv, g.link(l).cost_uv);
  }
}

TEST(GraphIo, AsymmetricCostsSurvive) {
  GraphBuilder b;
  b.add_node({0, 0});
  b.add_node({1, 1});
  b.add_link_asym(0, 1, 2.5, 7.25);
  const Graph h = from_string(to_string(b.build()));
  EXPECT_DOUBLE_EQ(h.link(0).cost_uv, 2.5);
  EXPECT_DOUBLE_EQ(h.link(0).cost_vu, 7.25);
}

TEST(GraphIo, CommentsAndBlankLines) {
  const Graph g = from_string(
      "# header comment\n"
      "\n"
      "node 1 2  # trailing comment\n"
      "node 3 4\n"
      "link 0 1 1\n");
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_links(), 1u);
}

TEST(GraphIo, ParseErrors) {
  EXPECT_THROW(from_string("frob 1 2\n"), ParseError);
  EXPECT_THROW(from_string("node 1\n"), ParseError);
  EXPECT_THROW(from_string("link 0 1 1\n"), ParseError);  // nodes undeclared
  EXPECT_THROW(from_string("node 0 0\nnode 1 1\nlink 0 0 1\n"), ParseError);
  EXPECT_THROW(from_string("node 0 0\nnode 1 1\nlink 0 1 0\n"), ParseError);
  EXPECT_THROW(
      from_string("node 0 0\nnode 1 1\nlink 0 1 1\nlink 1 0 1\n"),
      ParseError);
}

TEST(GraphIo, FileHelpers) {
  const Graph g = fig1_planar_graph();
  const std::string path = ::testing::TempDir() + "/topo.txt";
  save_graph(path, g);
  const Graph h = load_graph(path);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_links(), g.num_links());
  EXPECT_THROW(load_graph("/nonexistent/dir/x.txt"), std::runtime_error);
}

}  // namespace
}  // namespace rtr::graph
