// SptCache LRU bound: eviction must change only the spf.spt_cache.*
// metrics (misses, evictions, trees recomputed), never a distance or a
// tree -- under both engines.
#include <gtest/gtest.h>

#include "gen.h"
#include "spf/batch_repair.h"
#include "spf/spt_cache.h"

namespace rtr {
namespace {

using prop::CaseMasks;
using prop::PropCase;

/// A deterministic query sequence with revisits: strided scans hit
/// every source several times in an order that defeats pure MRU reuse.
std::vector<NodeId> query_sequence(NodeId n) {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < n; ++i) out.push_back(i);
  for (std::size_t pass = 1; pass < 3; ++pass) {
    for (NodeId i = 0; i < n; ++i) {
      out.push_back(static_cast<NodeId>((i * 7 + pass * 3) % n));
    }
  }
  return out;
}

TEST(PropCache, EvictionChangesMetricsNotResults) {
  std::size_t evicting_cases = 0;
  for (std::uint64_t seed : prop::all_seeds()) {
    const PropCase c = prop::make_case(seed);
    const CaseMasks cm(c);
    const spf::BaseTreeStore base(c.g, spf::SpfAlgorithm::kBfsHopCount);
    for (const spf::SpfEngine engine :
         {spf::SpfEngine::kFull, spf::SpfEngine::kIncremental}) {
      spf::SptCacheOptions generous;
      generous.engine = engine;
      generous.base = engine == spf::SpfEngine::kIncremental ? &base : nullptr;
      spf::SptCacheOptions tiny = generous;
      tiny.max_entries = 2;
      spf::SptCache unbounded(c.g, cm.masks(),
                              spf::SptCache::Algorithm::kBfsHopCount,
                              generous);
      spf::SptCache bounded(c.g, cm.masks(),
                            spf::SptCache::Algorithm::kBfsHopCount, tiny);
      for (NodeId s : query_sequence(c.g.node_count())) {
        const auto a = unbounded.from(s);
        const auto b = bounded.from(s);
        ASSERT_EQ(a->dist, b->dist) << "seed " << seed << " source " << s;
        ASSERT_EQ(a->parent, b->parent) << "seed " << seed;
        ASSERT_EQ(a->parent_link, b->parent_link) << "seed " << seed;
      }
      EXPECT_EQ(unbounded.evictions(), 0u);
      EXPECT_EQ(unbounded.trees_computed(), c.g.num_nodes());
      if (c.g.num_nodes() > 2) {
        EXPECT_GT(bounded.evictions(), 0u) << "seed " << seed;
        EXPECT_GT(bounded.trees_computed(), unbounded.trees_computed());
        ++evicting_cases;
      }
    }
  }
  EXPECT_GT(evicting_cases, 100u);
}

TEST(PropCache, HandedOutTreesSurviveEviction) {
  // The shared_ptr a caller holds must stay valid after the entry is
  // evicted and even after the cache dies.
  const PropCase c = prop::make_case(prop::corpus_seeds()[0]);
  const CaseMasks cm(c);
  spf::SptCacheOptions tiny;
  tiny.max_entries = 1;
  std::shared_ptr<const spf::SptResult> kept;
  std::vector<Cost> dist_copy;
  {
    spf::SptCache cache(c.g, cm.masks(),
                        spf::SptCache::Algorithm::kBfsHopCount, tiny);
    kept = cache.from(0);
    dist_copy = kept->dist;
    for (NodeId s = 1; s < c.g.node_count(); ++s) cache.from(s);
    EXPECT_GT(cache.evictions(), 0u);
  }
  EXPECT_EQ(kept->dist, dist_copy);
}

}  // namespace
}  // namespace rtr
