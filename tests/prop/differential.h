// Differential-test plumbing for the property harness: tree
// comparison, a ddmin-style case minimizer and a standalone-reproducer
// emitter.
//
// The minimizer shrinks a failing PropCase against a caller-supplied
// predicate ("does this case still fail?"): it greedily drops failure
// links, failure nodes, topology links and trailing isolated nodes
// until a fixpoint, then reproducer() renders the survivor as a short
// self-contained C++ snippet (the acceptance bar is under 20 lines) so
// a generator-found bug can be replayed in a unit test without the
// harness.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "gen.h"
#include "spf/shortest_path.h"

namespace rtr::prop {

/// "" when the trees agree bit-for-bit; else a one-line description of
/// the first mismatch (node, field, both values).
inline std::string diff_trees(const spf::SptResult& a,
                              const spf::SptResult& b) {
  std::ostringstream os;
  for (NodeId v = 0; v < static_cast<NodeId>(a.dist.size()); ++v) {
    if (a.dist[v] != b.dist[v]) {
      os << "dist[" << v << "]: " << a.dist[v] << " vs " << b.dist[v];
      return os.str();
    }
    if (a.parent[v] != b.parent[v]) {
      os << "parent[" << v << "]: " << a.parent[v] << " vs " << b.parent[v];
      return os.str();
    }
    if (a.parent_link[v] != b.parent_link[v]) {
      os << "parent_link[" << v << "]: " << a.parent_link[v] << " vs "
         << b.parent_link[v];
      return os.str();
    }
  }
  return "";
}

using FailPred = std::function<bool(const PropCase&)>;

/// Rebuilds the case without topology link `victim` (ids above it shift
/// down by one; the failure list is remapped, dropping the victim).
inline PropCase without_link(const PropCase& c, LinkId victim) {
  PropCase out;
  out.seed = c.seed;
  out.source = c.source;
  out.fail_nodes = c.fail_nodes;
  graph::GraphBuilder b;
  for (NodeId v = 0; v < c.g.node_count(); ++v) {
    b.add_node(c.g.position(v));
  }
  std::vector<LinkId> remap(c.g.num_links(), kNoLink);
  for (LinkId l = 0; l < c.g.link_count(); ++l) {
    if (l == victim) continue;
    const graph::Link& e = c.g.link(l);
    remap[l] = b.add_link_asym(e.u, e.v, e.cost_uv, e.cost_vu);
  }
  out.g = b.build();
  for (LinkId l : c.fail_links) {
    if (remap[l] != kNoLink) out.fail_links.push_back(remap[l]);
  }
  return out;
}

/// Rebuilds the case without the (isolated, trailing) node `victim`.
inline PropCase without_trailing_node(const PropCase& c) {
  PropCase out;
  out.seed = c.seed;
  out.source = c.source;
  out.fail_links = c.fail_links;
  out.fail_nodes = c.fail_nodes;
  graph::GraphBuilder b;
  for (NodeId v = 0; v + 1 < c.g.node_count(); ++v) {
    b.add_node(c.g.position(v));
  }
  for (LinkId l = 0; l < c.g.link_count(); ++l) {
    const graph::Link& e = c.g.link(l);
    b.add_link_asym(e.u, e.v, e.cost_uv, e.cost_vu);
  }
  out.g = b.build();
  return out;
}

/// Greedy delta-debugging: repeatedly drop one element (failure link,
/// failure node, topology link, trailing isolated node) while the
/// predicate keeps failing; stops at a 1-minimal fixpoint.  The
/// predicate must be deterministic.
inline PropCase minimize(PropCase c, const FailPred& fails) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < c.fail_links.size(); ++i) {
      PropCase next = c;
      next.fail_links.erase(next.fail_links.begin() +
                            static_cast<std::ptrdiff_t>(i));
      if (fails(next)) {
        c = next;
        shrunk = true;
        break;
      }
    }
    if (shrunk) continue;
    for (std::size_t i = 0; i < c.fail_nodes.size(); ++i) {
      PropCase next = c;
      next.fail_nodes.erase(next.fail_nodes.begin() +
                            static_cast<std::ptrdiff_t>(i));
      if (fails(next)) {
        c = next;
        shrunk = true;
        break;
      }
    }
    if (shrunk) continue;
    for (LinkId l = 0; l < c.g.link_count(); ++l) {
      const PropCase next = without_link(c, l);
      if (fails(next)) {
        c = next;
        shrunk = true;
        break;
      }
    }
    if (shrunk) continue;
    while (c.g.num_nodes() > 1 &&
           c.g.degree(c.g.node_count() - 1) == 0 &&
           c.source != c.g.node_count() - 1) {
      PropCase next = without_trailing_node(c);
      bool names_last = false;
      for (NodeId v : next.fail_nodes) {
        names_last = names_last || v == next.g.node_count();
      }
      if (names_last || !fails(next)) break;
      c = next;
      shrunk = true;
    }
  }
  return c;
}

/// Renders the case as a standalone snippet: build the graph, the
/// failure vectors and the source, ready to paste into a unit test.
/// Line count stays small because the edge list is packed 6 per line.
inline std::string reproducer(const PropCase& c) {
  std::ostringstream os;
  os << "// minimized repro, generator seed " << c.seed << "\n";
  os << "rtr::graph::Graph g;\n";
  os << "for (int i = 0; i < " << c.g.num_nodes()
     << "; ++i) g.add_node({1.0 * i, 0.0});\n";
  os << "const double E[][4] = {";
  for (LinkId l = 0; l < c.g.link_count(); ++l) {
    const graph::Link& e = c.g.link(l);
    if (l > 0) os << ", ";
    if (l > 0 && l % 6 == 0) os << "\n    ";
    os << "{" << e.u << ", " << e.v << ", " << e.cost_uv << ", " << e.cost_vu
       << "}";
  }
  os << "};\n";
  os << "for (const auto& e : E) g.add_link_asym("
        "rtr::NodeId(e[0]), rtr::NodeId(e[1]), e[2], e[3]);\n";
  os << "const std::vector<rtr::LinkId> fail_links = {";
  for (std::size_t i = 0; i < c.fail_links.size(); ++i) {
    os << (i > 0 ? ", " : "") << c.fail_links[i];
  }
  os << "};\n";
  os << "const std::vector<rtr::NodeId> fail_nodes = {";
  for (std::size_t i = 0; i < c.fail_nodes.size(); ++i) {
    os << (i > 0 ? ", " : "") << c.fail_nodes[i];
  }
  os << "};\n";
  os << "const rtr::NodeId source = " << c.source << ";\n";
  os << "// diff repair_spt(g, base, masks, alg) against the full"
        " recompute under the same masks\n";
  return os.str();
}

inline std::size_t line_count(const std::string& s) {
  std::size_t n = 0;
  for (char ch : s) n += ch == '\n' ? 1 : 0;
  return n;
}

}  // namespace rtr::prop
