// Differential properties of the SPF layer, driven by the seeded
// corpus: IncrementalSpt under sequential single-link removals,
// repair_spt under whole failure-set deltas, and the canonical-parent
// invariant the batch-repair determinism contract rests on.
#include <gtest/gtest.h>

#include "differential.h"
#include "gen.h"
#include "spf/batch_repair.h"
#include "spf/incremental.h"
#include "spf/shortest_path.h"
#include "spf/spt_compress.h"

namespace rtr {
namespace {

using prop::CaseMasks;
using prop::PropCase;

// Satellite: IncrementalSpt repair after each single-link removal in
// the failure sequence equals a full recompute over the removed-so-far
// set, including disconnections (infinite distances).
TEST(PropSpf, IncrementalSingleLinkRemovalsMatchFullRecompute) {
  for (std::uint64_t seed : prop::all_seeds()) {
    const PropCase c = prop::make_case(seed);
    spf::IncrementalSpt inc(c.g, c.source);
    std::vector<char> removed(c.g.num_links(), 0);
    for (LinkId l : c.fail_links) {
      inc.remove_link(l);
      removed[l] = 1;
      const spf::SptResult full =
          spf::dijkstra_from(c.g, c.source, {nullptr, &removed});
      ASSERT_EQ(inc.result().dist, full.dist)
          << "seed " << seed << " after removing link " << l;
    }
  }
}

// Tentpole: batch repair of a whole failure set (links AND nodes) from
// the canonical base tree is bit-identical -- distances, parents,
// parent links -- to the full recompute, under both metrics.
TEST(PropSpf, BatchRepairBitIdenticalToFullRecompute) {
  for (std::uint64_t seed : prop::all_seeds()) {
    const PropCase c = prop::make_case(seed);
    const CaseMasks cm(c);
    for (const spf::SpfAlgorithm alg :
         {spf::SpfAlgorithm::kBfsHopCount, spf::SpfAlgorithm::kDijkstra}) {
      const spf::BaseTreeStore store(c.g, alg);
      spf::BatchRepairStats stats;
      const auto repaired =
          spf::repair_spt(c.g, store.from(c.source), cm.masks(), alg, {},
                          &stats);
      spf::SptResult full = alg == spf::SpfAlgorithm::kBfsHopCount
                                ? spf::bfs_from(c.g, c.source, cm.masks())
                                : spf::dijkstra_from(c.g, c.source,
                                                     cm.masks());
      if (alg == spf::SpfAlgorithm::kBfsHopCount) {
        spf::canonicalize_parents(c.g, full, cm.masks(), alg);
      }
      EXPECT_EQ(prop::diff_trees(full, *repaired), "")
          << "seed " << seed << " alg "
          << (alg == spf::SpfAlgorithm::kDijkstra ? "dijkstra" : "bfs")
          << " path " << static_cast<int>(stats.path);
    }
  }
}

// Tentpole: the delta-compressed tree codec BaseTreeStore rests on is
// a bit-identical round trip over the whole corpus, for both metrics.
// Distances are NOT stored, so this is the property that parent-chain
// re-accumulation reproduces every floating-point sum exactly.
TEST(PropSpf, CompressedTreeRoundTripIsBitIdentical) {
  for (std::uint64_t seed : prop::all_seeds()) {
    const PropCase c = prop::make_case(seed);
    for (const spf::SpfAlgorithm alg :
         {spf::SpfAlgorithm::kBfsHopCount, spf::SpfAlgorithm::kDijkstra}) {
      spf::SptResult full = alg == spf::SpfAlgorithm::kBfsHopCount
                                ? spf::bfs_from(c.g, c.source)
                                : spf::dijkstra_from(c.g, c.source);
      if (alg == spf::SpfAlgorithm::kBfsHopCount) {
        spf::canonicalize_parents(c.g, full, {}, alg);
      }
      const spf::CompressedSpt comp = spf::compress_spt(full);
      // The whole point: far below 16 bytes/node materialised.
      EXPECT_LE(comp.byte_size(), 3 * c.g.num_nodes());
      const spf::SptResult back = spf::decompress_spt(c.g, comp, alg);
      EXPECT_EQ(prop::diff_trees(full, back), "")
          << "seed " << seed << " alg "
          << (alg == spf::SpfAlgorithm::kDijkstra ? "dijkstra" : "bfs");
      ASSERT_EQ(full.dist, back.dist) << "seed " << seed;
    }
  }
}

// The canonical-parent theorem itself: full Dijkstra's tie-break
// already produces canonical parents, so canonicalize_parents must be
// a no-op on its output.  (This is the invariant that lets a repaired
// region compose with untouched base parents bit-for-bit.)
TEST(PropSpf, FullDijkstraParentsAreAlreadyCanonical) {
  for (std::uint64_t seed : prop::all_seeds()) {
    const PropCase c = prop::make_case(seed);
    const CaseMasks cm(c);
    const spf::SptResult full =
        spf::dijkstra_from(c.g, c.source, cm.masks());
    spf::SptResult canon = full;
    spf::canonicalize_parents(c.g, canon, cm.masks(),
                              spf::SpfAlgorithm::kDijkstra);
    EXPECT_EQ(prop::diff_trees(full, canon), "") << "seed " << seed;
  }
}

// Sharing fast path: a failure set that misses the tree hands back the
// base pointer itself, and a repair that does run touches only nodes
// whose distance or attachment actually had to be re-derived.
TEST(PropSpf, UntouchedTreeIsSharedNotCopied) {
  std::size_t shared = 0;
  for (std::uint64_t seed : prop::all_seeds()) {
    const PropCase c = prop::make_case(seed);
    if (!c.fail_nodes.empty()) continue;
    // Fail only links outside the base tree: repair must share.
    const auto base =
        spf::BaseTreeStore(c.g, spf::SpfAlgorithm::kDijkstra).from(c.source);
    prop::PropCase off_tree = c;
    off_tree.fail_links.clear();
    for (LinkId l : c.fail_links) {
      bool on_tree = false;
      for (NodeId v = 0; v < c.g.node_count(); ++v) {
        on_tree = on_tree || base->parent_link[v] == l;
      }
      if (!on_tree) off_tree.fail_links.push_back(l);
    }
    if (off_tree.fail_links.empty()) continue;
    const CaseMasks cm(off_tree);
    spf::BatchRepairStats stats;
    const auto repaired = spf::repair_spt(
        c.g, base, cm.masks(), spf::SpfAlgorithm::kDijkstra, {}, &stats);
    EXPECT_EQ(repaired.get(), base.get()) << "seed " << seed;
    EXPECT_EQ(stats.path, spf::RepairPath::kShared);
    ++shared;
  }
  EXPECT_GT(shared, 20u);  // the corpus must actually exercise the path
}

}  // namespace
}  // namespace rtr
