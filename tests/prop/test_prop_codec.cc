// Adversarial properties of the wire codecs (net/codec.h,
// net/compress.h): malformed input must always surface as CodecError --
// never undefined behaviour, never a silently-wrong header.  This is
// the contract the fault layer's corruption model leans on: a
// bit-flipped header either fails to parse (counted drop) or parses to
// a header that is itself perfectly well-formed.
//
// Seeded like the rest of the harness: the corpus replays bit-exactly
// on every run, RTR_PROP_ITERS appends extra seeds for soaks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "gen.h"
#include "net/codec.h"
#include "net/compress.h"
#include "net/header.h"

namespace rtr::prop {
namespace {

using net::CodecError;
using net::RtrHeader;

// Deliberate mirrors of the wire constants in src/net/{header.h,codec.cc},
// cross-checked by tools/lint/wire_schema.toml: the generator must cover
// exactly the encodable domain, so a Mode enumerator or id-width change
// has to touch this file and the schema in the same commit.
constexpr std::size_t kModeCount = 3;
constexpr std::size_t kId16Space = 65536;

/// Random well-formed header: any mode, optional initiator, duplicate-
/// free id sets within the plain codec's 16-bit id range, and a source
/// route whose order matters (and may repeat nodes).
RtrHeader random_header(Rng& rng) {
  RtrHeader h;
  h.mode = static_cast<net::Mode>(rng.index(kModeCount));
  h.rec_init =
      rng.bernoulli(0.2) ? kNoNode : static_cast<NodeId>(rng.index(60000));
  const std::size_t nf = rng.index(12);
  for (std::size_t i = 0; i < nf; ++i) {
    h.add_failed(static_cast<LinkId>(rng.index(kId16Space)));
  }
  const std::size_t nc = rng.index(8);
  for (std::size_t i = 0; i < nc; ++i) {
    h.add_cross(static_cast<LinkId>(rng.index(kId16Space)));
  }
  const std::size_t nr = rng.index(10);
  for (std::size_t i = 0; i < nr; ++i) {
    h.source_route.push_back(static_cast<NodeId>(rng.index(65000)));
  }
  return h;
}

std::vector<LinkId> sorted(std::vector<LinkId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

void expect_equal(const RtrHeader& a, const RtrHeader& b,
                  bool sets_as_sets) {
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.rec_init, b.rec_init);
  if (sets_as_sets) {
    EXPECT_EQ(sorted(a.failed_links), sorted(b.failed_links));
    EXPECT_EQ(sorted(a.cross_links), sorted(b.cross_links));
  } else {
    EXPECT_EQ(a.failed_links, b.failed_links);
    EXPECT_EQ(a.cross_links, b.cross_links);
  }
  EXPECT_EQ(a.source_route, b.source_route);
}

TEST(PropCodec, BothCodecsRoundTripEveryGeneratedHeader) {
  for (const std::uint64_t seed : all_seeds()) {
    Rng rng(seed ^ 0xC0DECULL);
    const RtrHeader h = random_header(rng);
    expect_equal(h, net::decode(net::encode(h)), /*sets_as_sets=*/false);
    // The compressed codec documents that sets come back ascending.
    expect_equal(h, net::decode_compressed_header(
                        net::encode_compressed_header(h)),
                 /*sets_as_sets=*/true);
  }
}

TEST(PropCodec, EveryStrictPrefixIsRejected) {
  // Truncation is the common corruption in practice (cut-through drops,
  // MTU clipping); both codecs must detect it at every cut point
  // because both pin total length against the declared list lengths.
  const auto reject_all_prefixes = [](const std::vector<std::uint8_t>& full,
                                      const auto& decode_fn,
                                      std::uint64_t seed) {
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      const std::vector<std::uint8_t> prefix(full.begin(),
                                             full.begin() + cut);
      EXPECT_THROW((void)decode_fn(prefix), CodecError)
          << "seed " << seed << " cut " << cut << " of " << full.size();
    }
  };
  for (const std::uint64_t seed : all_seeds()) {
    Rng rng(seed ^ 0x7472756EULL);
    const RtrHeader h = random_header(rng);
    reject_all_prefixes(
        net::encode(h),
        [](const std::vector<std::uint8_t>& b) { return net::decode(b); },
        seed);
    reject_all_prefixes(net::encode_compressed_header(h),
                        [](const std::vector<std::uint8_t>& b) {
                          return net::decode_compressed_header(b);
                        },
                        seed);
  }
}

TEST(PropCodec, SingleBitFlipsNeverEscapeThePlainCodec) {
  // For the positional codec a decodable byte string is canonical:
  // either the flip is caught, or the bytes decode to a header that
  // re-encodes to exactly those bytes.  Nothing in between.
  for (const std::uint64_t seed : all_seeds()) {
    Rng rng(seed ^ 0x666C6970ULL);
    const std::vector<std::uint8_t> bytes = net::encode(random_header(rng));
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> flipped = bytes;
        flipped[i] ^= static_cast<std::uint8_t>(1u << bit);
        try {
          const RtrHeader h = net::decode(flipped);
          EXPECT_EQ(net::encode(h), flipped)
              << "seed " << seed << " byte " << i << " bit " << bit;
        } catch (const CodecError&) {
          // Caught corruption is the expected outcome.
        }
      }
    }
  }
}

TEST(PropCodec, SingleBitFlipsNeverEscapeTheCompressedCodec) {
  // Varints admit non-canonical spellings, so byte identity is too
  // strong here.  The guarantee that matters: a decodable flip yields a
  // header that is well-formed (strictly ascending duplicate-free sets,
  // so re-encoding cannot trip encode_id_set's no-duplicates contract)
  // and one re-encode reaches a fixed point.
  for (const std::uint64_t seed : all_seeds()) {
    Rng rng(seed ^ 0x7A6970ULL);
    const std::vector<std::uint8_t> bytes =
        net::encode_compressed_header(random_header(rng));
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> flipped = bytes;
        flipped[i] ^= static_cast<std::uint8_t>(1u << bit);
        try {
          const RtrHeader h = net::decode_compressed_header(flipped);
          const auto strictly_ascending =
              [](const std::vector<LinkId>& ids) {
                for (std::size_t k = 1; k < ids.size(); ++k) {
                  if (ids[k] <= ids[k - 1]) return false;
                }
                return true;
              };
          EXPECT_TRUE(strictly_ascending(h.failed_links));
          EXPECT_TRUE(strictly_ascending(h.cross_links));
          const std::vector<std::uint8_t> re =
              net::encode_compressed_header(h);
          expect_equal(h, net::decode_compressed_header(re),
                       /*sets_as_sets=*/false);
        } catch (const CodecError&) {
          // Caught corruption is the expected outcome.
        }
      }
    }
  }
}

// ------------------------------------------------ varint edge cases -----

TEST(VarintEdges, BoundaryValuesRoundTripCanonically) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  255,
                                  16383,
                                  16384,
                                  (1ULL << 21) - 1,
                                  1ULL << 21,
                                  (~0ULL) >> 1,
                                  ~0ULL};
  for (const std::uint64_t v : values) {
    std::vector<std::uint8_t> bytes;
    net::put_varint(bytes, v);
    // Canonical length: ceil(bits/7), one byte for zero.
    std::size_t want = 1;
    for (std::uint64_t x = v; x >= 0x80; x >>= 7) ++want;
    EXPECT_EQ(bytes.size(), want) << v;
    std::size_t pos = 0;
    EXPECT_EQ(net::get_varint(bytes, pos), v);
    EXPECT_EQ(pos, bytes.size());
  }
}

TEST(VarintEdges, TruncationAndOverflowAreRejected) {
  std::size_t pos = 0;
  EXPECT_THROW(net::get_varint({}, pos), CodecError);
  pos = 0;
  EXPECT_THROW(net::get_varint({0x80}, pos), CodecError);
  // Eleven continuation bytes push the shift past 63 bits: overflow,
  // caught before any out-of-range read.
  pos = 0;
  const std::vector<std::uint8_t> wide(11, 0x80);
  EXPECT_THROW(net::get_varint(wide, pos), CodecError);
}

TEST(VarintEdges, OverlongZeroIsAcceptedButNeverEmitted) {
  // LEB128 tolerates padded spellings on decode; the encoder is
  // canonical.  The compressed-codec flip property above relies on
  // exactly this asymmetry.
  const std::vector<std::uint8_t> overlong = {0x80, 0x00};
  std::size_t pos = 0;
  EXPECT_EQ(net::get_varint(overlong, pos), 0u);
  EXPECT_EQ(pos, 2u);
  std::vector<std::uint8_t> canonical;
  net::put_varint(canonical, 0);
  EXPECT_EQ(canonical, (std::vector<std::uint8_t>{0x00}));
}

TEST(VarintEdges, IdSetHandlesEmptyLargeAndTrailing) {
  EXPECT_TRUE(net::decode_id_set(net::encode_id_set({})).empty());

  // Ids past the two-byte varint boundary (>= 2^14) still round trip;
  // the set comes back ascending.
  const std::vector<LinkId> big = {40000, 16384, 16385};
  EXPECT_EQ(net::decode_id_set(net::encode_id_set(big)),
            (std::vector<LinkId>{16384, 16385, 40000}));

  std::vector<std::uint8_t> trailing = net::encode_id_set({3, 7});
  trailing.push_back(0x00);
  EXPECT_THROW(net::decode_id_set(trailing), CodecError);
}

}  // namespace
}  // namespace rtr::prop
