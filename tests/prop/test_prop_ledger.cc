// Adversarial properties of the crash-durable ledger (ledger/record.h,
// ledger/journal.h): the same contract the other codecs in this tree
// honor (test_prop_codec.cc), plus the journal-level WAL guarantees the
// resume path leans on.  Malformed payloads must always surface as
// LedgerError -- never undefined behaviour; a bit flip anywhere in a
// journal file must never escape the CRC into a silently-wrong record;
// and a torn final record must truncate away with every preceding
// record recovered.
//
// Seeded like the rest of the harness: the corpus replays bit-exactly
// on every run, RTR_PROP_ITERS appends extra seeds for soaks.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen.h"
#include "ledger/journal.h"
#include "ledger/record.h"

namespace rtr::prop {
namespace {

using ledger::CheckpointRecord;
using ledger::EnvelopeRecord;
using ledger::LedgerError;
using ledger::Record;
using ledger::ScenarioRecord;

// Deliberate mirrors of the wire constants in src/ledger/record.h,
// cross-checked by tools/lint/wire_schema.toml: the generator and the
// file-surgery helpers below must cover exactly the framed domain, so a
// magic, version or record-type change has to touch this file and the
// schema in the same commit.
constexpr std::uint32_t kLedgerMagicMirror = 0x5254524C;
constexpr std::uint16_t kLedgerVersionMirror = 1;
constexpr std::size_t kLedgerHeaderBytesMirror = 16;
constexpr std::size_t kRecordTypeCount = 3;

std::vector<obs::Value> random_values(Rng& rng, std::size_t max_len) {
  std::vector<obs::Value> vs(rng.index(max_len + 1));
  for (obs::Value& v : vs) v = rng.uniform_int(0, ~std::uint64_t{0});
  return vs;
}

std::string random_key(Rng& rng) {
  static const char* kNames[] = {"spf.base.dijkstra", "spf.base.bfs",
                                 "rtr.core.phase1.runs", "a", "",
                                 "rtr.bench.svc.client_latency_ns"};
  return kNames[rng.index(std::size(kNames))];
}

obs::UnitDelta random_delta(Rng& rng) {
  obs::UnitDelta d;
  const std::size_t n_series = rng.index(4);
  for (std::size_t i = 0; i < n_series; ++i) {
    obs::SeriesDelta sd;
    sd.kind = static_cast<obs::Kind>(rng.index(3));
    sd.count = rng.uniform_int(0, 1000);
    sd.sum = rng.uniform_int(0, ~std::uint64_t{0});
    sd.max = rng.uniform_int(0, ~std::uint64_t{0});
    sd.min = rng.uniform_int(0, ~std::uint64_t{0});
    if (sd.kind == obs::Kind::kHistogram) {
      sd.bucket_bounds = random_values(rng, 6);
      sd.bucket_counts.resize(sd.bucket_bounds.size() + 1);
      for (obs::Value& c : sd.bucket_counts) c = rng.uniform_int(0, 50);
    }
    d.series.emplace(random_key(rng) + std::to_string(i), std::move(sd));
  }
  const std::size_t n_notes = rng.index(3);
  for (std::size_t i = 0; i < n_notes; ++i) {
    d.notes.emplace(random_key(rng) + std::to_string(i),
                    random_values(rng, 8));
  }
  return d;
}

Record random_record(Rng& rng) {
  switch (rng.index(kRecordTypeCount)) {
    case 0: {
      CheckpointRecord c;
      c.config = rng.uniform_int(0, ~std::uint64_t{0});
      const std::size_t n = rng.index(3);
      for (std::size_t i = 0; i < n; ++i) {
        c.sources.emplace(random_key(rng) + std::to_string(i),
                          random_values(rng, 10));
      }
      return c;
    }
    case 1: {
      ScenarioRecord s;
      s.sweep = rng.uniform_int(0, ~std::uint64_t{0});
      s.index = rng.uniform_int(0, 4096);
      s.seed = rng.uniform_int(0, ~std::uint64_t{0});
      s.stream_seed = rng.uniform_int(0, ~std::uint64_t{0});
      s.watermark = rng.uniform_int(0, 1 << 20);
      s.payload.resize(rng.index(64));
      for (std::uint8_t& b : s.payload) {
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      s.digest = ledger::fnv1a64(s.payload.data(), s.payload.size());
      s.delta = random_delta(rng);
      return s;
    }
    default: {
      EnvelopeRecord e;
      e.frame.resize(rng.index(96));
      for (std::uint8_t& b : e.frame) {
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      return e;
    }
  }
}

// --------------------------------------------------- file-level helpers --

std::string temp_journal_path(const std::string& tag) {
  return ::testing::TempDir() + "prop_ledger_" + tag + ".bin";
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Journal image built by the real writer: open fresh, append `records`,
/// read the bytes back.
std::vector<std::uint8_t> journal_image(const std::string& path,
                                        std::uint64_t config,
                                        const std::vector<Record>& records) {
  std::remove(path.c_str());
  {
    ledger::Journal j(path, config);
    for (const Record& r : records) j.append(r);
  }
  return read_file(path);
}

// ----------------------------------------------------------- properties --

TEST(PropLedger, EveryGeneratedRecordRoundTrips) {
  for (const std::uint64_t seed : all_seeds()) {
    Rng rng(seed ^ 0x4C454447ULL);
    const Record r = random_record(rng);
    const std::vector<std::uint8_t> payload = ledger::encode_record(r);
    EXPECT_TRUE(ledger::decode_record(payload) == r) << "seed " << seed;
  }
}

TEST(PropLedger, EveryStrictPrefixOfAPayloadIsRejected) {
  // A record payload carries no internal frame, so the only way a
  // truncated body can be detected is the codec checking remaining
  // length before every read and rejecting trailing bytes after -- at
  // every cut point.
  for (const std::uint64_t seed : all_seeds()) {
    Rng rng(seed ^ 0x505245ULL);
    const std::vector<std::uint8_t> payload =
        ledger::encode_record(random_record(rng));
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      const std::vector<std::uint8_t> prefix(payload.begin(),
                                             payload.begin() + cut);
      EXPECT_THROW((void)ledger::decode_record(prefix), LedgerError)
          << "seed " << seed << " cut " << cut << " of " << payload.size();
    }
  }
}

TEST(PropLedger, SingleBitFlipsNeverEscapeTheJournal) {
  // Flip every bit of a complete journal file, one at a time, and
  // reopen.  Three outcomes are allowed: a loud LedgerError (header or
  // mid-file damage), or a recovered list that is a strict or full
  // prefix of the original records (the flip landed in the final
  // record, which truncates as a torn write, or in the reserved header
  // bytes, which carry no meaning).  A recovered record that was never
  // appended -- or one that differs from its original -- is the
  // silently-wrong outcome the CRC exists to prevent.
  const std::string path = temp_journal_path("flip");
  const std::uint64_t config = 0x4A4F55524E414CULL;
  std::size_t flips = 0;
  std::size_t escapes = 0;
  for (const std::uint64_t seed : corpus_seeds()) {
    if (seed % 29 != 0) continue;  // file-surgery loop: keep the soak sane
    Rng rng(seed ^ 0x464C4950ULL);
    std::vector<Record> records;
    const std::size_t n = 1 + rng.index(3);
    for (std::size_t i = 0; i < n; ++i) records.push_back(random_record(rng));
    const std::vector<std::uint8_t> bytes =
        journal_image(path, config, records);
    for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> flipped = bytes;
        flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
        write_file(path, flipped);
        flips += 1;
        try {
          const ledger::Journal j(path, config);
          ASSERT_LE(j.recovered().size(), records.size())
              << "seed " << seed << " byte " << byte << " bit " << bit;
          for (std::size_t i = 0; i < j.recovered().size(); ++i) {
            ASSERT_TRUE(j.recovered()[i] == records[i])
                << "seed " << seed << " byte " << byte << " bit " << bit
                << " record " << i;
          }
          if (j.recovered().size() == records.size()) escapes += 1;
        } catch (const LedgerError&) {
          // Loud rejection is the expected outcome.
        }
      }
    }
  }
  ASSERT_GT(flips, 0u);
  // Full recovery despite a flip is only possible via the four reserved
  // header bits-of-nothing bytes; anything more would mean the CRC or
  // header checks have a hole.
  EXPECT_LE(escapes, flips / 8);
  std::remove(path.c_str());
}

TEST(PropLedger, TornFinalRecordTruncatesAndPriorRecordsSurvive) {
  // Cut a complete journal at every offset inside its final record's
  // frame (torn length word, torn CRC, half-written payload): reopen
  // must recover exactly the preceding records and rewrite the file to
  // the valid prefix, so a second reopen sees no damage at all.
  const std::string path = temp_journal_path("torn");
  const std::uint64_t config = 0x544F524EULL;
  for (const std::uint64_t seed : corpus_seeds()) {
    if (seed % 41 != 0) continue;  // file-surgery loop: keep the soak sane
    Rng rng(seed ^ 0x5441494CULL);
    std::vector<Record> records;
    const std::size_t n = 1 + rng.index(3);
    for (std::size_t i = 0; i < n; ++i) records.push_back(random_record(rng));
    const std::vector<std::uint8_t> all =
        journal_image(path, config, records);
    const std::vector<std::uint8_t> prior = journal_image(
        path, config,
        std::vector<Record>(records.begin(), records.end() - 1));
    for (std::size_t cut = prior.size() + 1; cut < all.size(); ++cut) {
      write_file(path,
                 std::vector<std::uint8_t>(all.begin(), all.begin() + cut));
      {
        const ledger::Journal j(path, config);
        ASSERT_EQ(j.recovered().size(), records.size() - 1)
            << "seed " << seed << " cut " << cut;
        for (std::size_t i = 0; i + 1 < records.size(); ++i) {
          ASSERT_TRUE(j.recovered()[i] == records[i]) << "seed " << seed;
        }
      }
      // The reopen rewrote the valid prefix: byte-identical to a journal
      // that never saw the torn record.
      EXPECT_EQ(read_file(path), prior) << "seed " << seed << " cut " << cut;
    }
  }
  std::remove(path.c_str());
}

TEST(PropLedger, HeaderMismatchesRefuseLoudly) {
  const std::string path = temp_journal_path("hdr");
  const std::vector<Record> records = {EnvelopeRecord{{1, 2, 3}}};
  const std::vector<std::uint8_t> bytes =
      journal_image(path, /*config=*/7, records);
  ASSERT_GE(bytes.size(), kLedgerHeaderBytesMirror);
  ASSERT_EQ(bytes[0], static_cast<std::uint8_t>(kLedgerMagicMirror >> 24));
  ASSERT_EQ(bytes[5], static_cast<std::uint8_t>(kLedgerVersionMirror));

  // Config fingerprint mismatch: a journal must never replay into a
  // differently-configured run.
  EXPECT_THROW(ledger::Journal(path, /*config=*/8), LedgerError);

  // Wrong magic: not a journal at all.
  std::vector<std::uint8_t> bad = bytes;
  bad[0] ^= 0xFF;
  write_file(path, bad);
  EXPECT_THROW(ledger::Journal(path, /*config=*/7), LedgerError);

  // Unsupported version.
  bad = bytes;
  bad[5] = static_cast<std::uint8_t>(kLedgerVersionMirror + 1);
  write_file(path, bad);
  EXPECT_THROW(ledger::Journal(path, /*config=*/7), LedgerError);

  // A torn header (died inside the very first write) is not corruption:
  // nothing was recoverable, so the journal starts fresh.
  write_file(path, std::vector<std::uint8_t>(bytes.begin(),
                                             bytes.begin() + 9));
  const ledger::Journal fresh(path, /*config=*/7);
  EXPECT_TRUE(fresh.recovered().empty());
  std::remove(path.c_str());
}

TEST(PropLedger, MidFileDamageIsCorruptionNotATear) {
  // Zero out one payload byte of the FIRST record while intact records
  // follow: truncating here would silently drop acknowledged appends,
  // so the journal must refuse instead.
  const std::string path = temp_journal_path("mid");
  const std::vector<Record> records = {EnvelopeRecord{{9, 9, 9, 9}},
                                       EnvelopeRecord{{8, 8}}};
  std::vector<std::uint8_t> bytes = journal_image(path, /*config=*/3, records);
  bytes[kLedgerHeaderBytesMirror + 8] ^= 0x01;  // first payload byte
  write_file(path, bytes);
  EXPECT_THROW(ledger::Journal(path, /*config=*/3), LedgerError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtr::prop
