// Differential properties of RTR recovery over the seeded corpus:
// phase-2 source routes against the oracle shortest path in the
// initiator's pruned view, full-vs-incremental engine equivalence, and
// irrecoverable classification against graph::components.
#include <gtest/gtest.h>

#include "core/rtr.h"
#include "failure/failure_set.h"
#include "gen.h"
#include "graph/crossings.h"
#include "graph/properties.h"
#include "spf/batch_repair.h"
#include "spf/path.h"
#include "spf/routing_table.h"

namespace rtr {
namespace {

using prop::PropCase;

/// The corpus case as a ground-truth FailureSet (links + nodes).
fail::FailureSet failure_of(const PropCase& c) {
  fail::FailureSet fs = fail::FailureSet::of_links(c.g, c.fail_links);
  for (NodeId n : c.fail_nodes) fs.add_node(c.g, n);
  return fs;
}

/// Initiators RtrRecovery::recover accepts: live, and observing at
/// least one unreachable neighbour.  Capped to bound the quadratic
/// (initiator x destination) sweep per case.
std::vector<NodeId> initiators_of(const PropCase& c,
                                  const fail::FailureSet& fs,
                                  std::size_t cap) {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < c.g.node_count() && out.size() < cap; ++n) {
    if (fs.node_failed(n)) continue;
    if (fs.observed_failed_links(c.g, n).empty()) continue;
    out.push_back(n);
  }
  return out;
}

TEST(PropRtr, SourceRoutesEqualOracleOnPrunedView) {
  std::size_t recovered = 0;
  for (std::uint64_t seed : prop::all_seeds()) {
    const PropCase c = prop::make_case(seed);
    const fail::FailureSet fs = failure_of(c);
    if (fs.empty()) continue;
    const graph::CrossingIndex idx(c.g);
    const spf::RoutingTable rt(c.g);
    const graph::Components comp = graph::components(c.g, fs.masks());
    core::RtrRecovery rtr(c.g, idx, rt, fs);

    for (NodeId initiator : initiators_of(c, fs, 4)) {
      // The initiator's pruned view, rebuilt the way rtr.cc builds it:
      // phase-1 collected failures plus locally observed ones.
      const core::Phase1Result& p1 = rtr.phase1_for(initiator);
      std::vector<char> view(c.g.num_links(), 0);
      for (LinkId l : p1.header.failed_links) view[l] = 1;
      for (LinkId l : fs.observed_failed_links(c.g, initiator)) view[l] = 1;
      const spf::SptResult oracle =
          spf::dijkstra_from(c.g, initiator, {nullptr, &view});
      const spf::SptResult truth =
          spf::dijkstra_from(c.g, initiator, fs.masks());

      for (NodeId dest = 0; dest < c.g.node_count(); ++dest) {
        if (dest == initiator) continue;
        const core::RecoveryResult r = rtr.recover(initiator, dest);
        // Oracle equivalence: the source route IS the (canonical)
        // shortest path of the pruned view, link for link.
        const spf::Path want = spf::extract_path(c.g, oracle, dest);
        EXPECT_EQ(r.computed_path.links, want.links)
            << "seed " << seed << " " << initiator << "->" << dest;

        // Irrecoverable classification: components decides.  A pair in
        // different components (or a dead destination) must never be
        // recovered; components must agree with reachable().
        const bool reachable_truth =
            !fs.node_failed(dest) && comp.id[initiator] == comp.id[dest];
        EXPECT_EQ(reachable_truth,
                  graph::reachable(c.g, initiator, dest, fs.masks()));
        if (!reachable_truth) {
          EXPECT_NE(r.outcome, core::Outcome::kRecovered)
              << "seed " << seed << " " << initiator << "->" << dest;
        }
        // Delivered-path optimality: the view only ever prunes REAL
        // failures, so a delivered packet travelled a true shortest
        // path of the damaged graph (costs are small integers: exact).
        if (r.outcome == core::Outcome::kRecovered) {
          ++recovered;
          EXPECT_EQ(spf::path_cost(c.g, r.computed_path),
                    truth.dist[dest])
              << "seed " << seed << " " << initiator << "->" << dest;
        }
      }
    }
  }
  EXPECT_GT(recovered, 100u);  // the corpus exercises the delivered path
}

TEST(PropRtr, IncrementalEngineMatchesFullEngine) {
  for (std::uint64_t seed : prop::all_seeds()) {
    const PropCase c = prop::make_case(seed);
    const fail::FailureSet fs = failure_of(c);
    if (fs.empty()) continue;
    const graph::CrossingIndex idx(c.g);
    const spf::RoutingTable rt(c.g);
    const spf::BaseTreeStore base(c.g, spf::SpfAlgorithm::kDijkstra);
    core::RtrRecovery full(c.g, idx, rt, fs);
    core::RtrRecovery incremental(c.g, idx, rt, fs, {}, &base);
    for (NodeId initiator : initiators_of(c, fs, 3)) {
      for (NodeId dest = 0; dest < c.g.node_count(); ++dest) {
        if (dest == initiator) continue;
        const core::RecoveryResult a = full.recover(initiator, dest);
        const core::RecoveryResult b = incremental.recover(initiator, dest);
        EXPECT_EQ(a.outcome, b.outcome)
            << "seed " << seed << " " << initiator << "->" << dest;
        EXPECT_EQ(a.computed_path.links, b.computed_path.links)
            << "seed " << seed << " " << initiator << "->" << dest;
        EXPECT_EQ(a.delivered_hops, b.delivered_hops);
        EXPECT_EQ(a.source_route_bytes, b.source_route_bytes);
      }
    }
  }
}

}  // namespace
}  // namespace rtr
