// Seeded generators for the property-based differential harness.
//
// Every case is a pure function of one 64-bit seed: a random connected
// planar-embedded topology, an ordered failure sequence (links, and
// sometimes nodes) and a live source.  The checked-in corpus
// (corpus_seeds) replays the same 200 cases on every CI run; setting
// RTR_PROP_ITERS=N appends N extra locally-generated seeds for deeper
// soak runs without touching the corpus.
//
// Link costs are small integers stored in doubles, so path-cost sums
// are exact in any summation order and the differential tests can
// compare distances with operator== -- and unit costs are drawn often,
// which maximises shortest-path ties and exercises the canonical
// tie-break (spf/batch_repair.h) where it can actually break.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "graph/graph.h"
#include "graph/properties.h"

namespace rtr::prop {

/// One generated differential case.
struct PropCase {
  std::uint64_t seed = 0;
  graph::Graph g;
  std::vector<LinkId> fail_links;  ///< ordered, distinct
  std::vector<NodeId> fail_nodes;  ///< distinct, possibly empty
  NodeId source = 0;               ///< never in fail_nodes
};

/// Owning mask vectors for a case (graph::Masks only borrows).
struct CaseMasks {
  std::vector<char> node;
  std::vector<char> link;

  explicit CaseMasks(const PropCase& c)
      : node(c.g.num_nodes(), 0), link(c.g.num_links(), 0) {
    for (NodeId n : c.fail_nodes) node[n] = 1;
    for (LinkId l : c.fail_links) link[l] = 1;
  }
  graph::Masks masks() const { return {&node, &link}; }
};

inline constexpr std::uint64_t kCorpusBaseSeed = 0x525452'50524f50ULL;
inline constexpr std::size_t kCorpusSize = 200;

/// The fixed-seed corpus: kCorpusSize seeds derived from the checked-in
/// base by splitmix64, so the sequence is part of the source and every
/// CI run replays exactly these cases.
inline std::vector<std::uint64_t> corpus_seeds() {
  std::vector<std::uint64_t> out;
  out.reserve(kCorpusSize);
  std::uint64_t state = kCorpusBaseSeed;
  for (std::size_t i = 0; i < kCorpusSize; ++i) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    out.push_back(z ^ (z >> 31));
  }
  return out;
}

/// RTR_PROP_ITERS extra iterations (0 when unset/invalid).
inline std::size_t extra_iters() {
  const char* v = std::getenv("RTR_PROP_ITERS");  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<std::size_t>(n) : 0;
}

/// Corpus plus RTR_PROP_ITERS locally-derived extras.
inline std::vector<std::uint64_t> all_seeds() {
  std::vector<std::uint64_t> out = corpus_seeds();
  Rng rng(kCorpusBaseSeed ^ 0xe7'75'a1ULL);
  for (std::size_t i = 0; i < extra_iters(); ++i) {
    out.push_back(rng.engine()());
  }
  return out;
}

/// Random connected topology: a random spanning tree (node i attaches
/// to a uniform earlier node) plus a handful of extra links.  4..32
/// nodes keeps a single case fast while still producing articulation
/// points, bridges and multi-edge-disjoint regions.
inline graph::Graph random_graph(Rng& rng) {
  const NodeId n = static_cast<NodeId>(rng.uniform_int(4, 32));
  graph::GraphBuilder g;
  for (NodeId i = 0; i < n; ++i) {
    g.add_node({rng.uniform_real(0.0, 1000.0), rng.uniform_real(0.0, 1000.0)});
  }
  const auto random_cost = [&rng]() {
    return static_cast<Cost>(rng.uniform_int(1, 4));
  };
  const auto add = [&](NodeId u, NodeId v) {
    if (rng.bernoulli(0.5)) {
      g.add_link(u, v);  // unit cost: hop metric, maximal ties
    } else if (rng.bernoulli(0.3)) {
      g.add_link_asym(u, v, random_cost(), random_cost());
    } else {
      g.add_link(u, v, random_cost());
    }
  };
  for (NodeId i = 1; i < n; ++i) {
    add(static_cast<NodeId>(rng.index(i)), i);
  }
  const std::size_t extra = rng.index(2 * static_cast<std::size_t>(n));
  for (std::size_t k = 0; k < extra; ++k) {
    const NodeId u = static_cast<NodeId>(rng.index(n));
    const NodeId v = static_cast<NodeId>(rng.index(n));
    if (u == v || g.find_link(u, v) != kNoLink) continue;
    add(u, v);
  }
  return g.build();
}

/// The full case: topology, failure sequence (1..max(2, links/3)
/// distinct links, sometimes 1-2 nodes) and a surviving source.
/// Failures are drawn uniformly -- disconnection is frequent by
/// construction (tree links are bridges).
inline PropCase make_case(std::uint64_t seed) {
  PropCase c;
  c.seed = seed;
  Rng rng(seed);
  c.g = random_graph(rng);
  const std::size_t links = c.g.num_links();
  const std::size_t max_fail = links / 3 > 2 ? links / 3 : 2;
  const std::size_t want = 1 + rng.index(max_fail);
  std::vector<char> picked(links, 0);
  for (std::size_t k = 0; k < want; ++k) {
    const LinkId l = static_cast<LinkId>(rng.index(links));
    if (picked[l]) continue;
    picked[l] = 1;
    c.fail_links.push_back(l);
  }
  if (rng.bernoulli(0.4)) {
    const std::size_t dead = 1 + rng.index(2);
    std::vector<char> gone(c.g.num_nodes(), 0);
    for (std::size_t k = 0; k < dead && k + 1 < c.g.num_nodes(); ++k) {
      const NodeId v = static_cast<NodeId>(rng.index(c.g.num_nodes()));
      if (gone[v]) continue;
      gone[v] = 1;
      c.fail_nodes.push_back(v);
    }
  }
  for (;;) {
    const NodeId s = static_cast<NodeId>(rng.index(c.g.num_nodes()));
    bool dead = false;
    for (NodeId v : c.fail_nodes) dead = dead || v == s;
    if (!dead) {
      c.source = s;
      break;
    }
  }
  return c;
}

}  // namespace rtr::prop
