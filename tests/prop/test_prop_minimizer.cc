// Mutation check for the harness itself: a deliberately buggy repair
// (it "forgets" to detach the subtree behind the last failed link --
// the classic missed-seed bug batch repair could regress into) must be
// caught by the corpus, and the minimizer must shrink the first
// offending case to a reproducer under 20 lines.
#include <gtest/gtest.h>

#include <iostream>

#include "differential.h"
#include "gen.h"
#include "spf/batch_repair.h"
#include "spf/shortest_path.h"

namespace rtr {
namespace {

using prop::CaseMasks;
using prop::PropCase;

/// The injected bug: repairs against a view that silently drops the
/// last failed link, then presents the result as the tree of the full
/// failure set.  Returns true when the harness would catch it (the
/// buggy tree differs from the truth).
bool buggy_repair_detected(const PropCase& c) {
  if (c.fail_links.empty()) return false;
  const CaseMasks full_masks(c);
  CaseMasks buggy_masks(c);
  buggy_masks.link[c.fail_links.back()] = 0;  // the injected omission
  const spf::BaseTreeStore store(c.g, spf::SpfAlgorithm::kDijkstra);
  const auto buggy = spf::repair_spt(c.g, store.from(c.source),
                                     buggy_masks.masks(),
                                     spf::SpfAlgorithm::kDijkstra);
  const spf::SptResult truth =
      spf::dijkstra_from(c.g, c.source, full_masks.masks());
  return !prop::diff_trees(truth, *buggy).empty();
}

TEST(PropMinimizer, CorpusCatchesInjectedRepairBugAndMinimizes) {
  // 1. The corpus must contain cases where the omission is visible.
  PropCase found;
  bool caught = false;
  for (std::uint64_t seed : prop::all_seeds()) {
    PropCase c = prop::make_case(seed);
    if (buggy_repair_detected(c)) {
      found = std::move(c);
      caught = true;
      break;
    }
  }
  ASSERT_TRUE(caught) << "corpus never exposed the injected repair bug";

  // 2. Minimize against the same predicate.
  const PropCase tiny = prop::minimize(found, buggy_repair_detected);
  ASSERT_TRUE(buggy_repair_detected(tiny));
  EXPECT_LE(tiny.fail_links.size(), found.fail_links.size());
  EXPECT_LE(tiny.g.num_links(), found.g.num_links());

  // 3. The reproducer is a standalone snippet under 20 lines.
  const std::string repro = prop::reproducer(tiny);
  EXPECT_LT(prop::line_count(repro), 20u);
  // Shown in the test log so a failure elsewhere can reuse the flow.
  std::cout << repro;
}

TEST(PropMinimizer, MinimizerPreservesDeterministicFailure) {
  // Minimizing twice from the same case lands on the same reproducer:
  // the minimizer is a pure function of (case, predicate).
  for (std::uint64_t seed : prop::corpus_seeds()) {
    PropCase c = prop::make_case(seed);
    if (!buggy_repair_detected(c)) continue;
    const PropCase a = prop::minimize(c, buggy_repair_detected);
    const PropCase b = prop::minimize(c, buggy_repair_detected);
    EXPECT_EQ(prop::reproducer(a), prop::reproducer(b));
    break;
  }
}

}  // namespace
}  // namespace rtr
