// Differential properties of the storm layer, driven by the seeded
// corpus: (a) the tick-by-tick incremental re-plan is bit-identical to
// a from-scratch recompute of each tick's cumulative FailureSet, (b) a
// trajectory is a pure function of (spec, seed) -- byte-identical no
// matter how many workers compile it concurrently -- and (c) the
// budget throttle converges to the same final trees as the unthrottled
// run, only later.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.h"
#include "differential.h"
#include "fault/plan.h"
#include "gen.h"
#include "spf/batch_repair.h"
#include "spf/shortest_path.h"
#include "storm/engine.h"
#include "storm/timeline.h"

namespace rtr {
namespace {

using prop::PropCase;

/// Per-seed storm profile: small enough for a 4-32 node case, varied
/// enough (growth sign, cell count, flap rate) to hit every semantic
/// branch across the corpus.
storm::StormOptions case_storm_options(std::uint64_t seed) {
  Rng rng(seed ^ 0x53544f524dULL);  // "STORM"
  storm::StormOptions o;
  o.ticks = 6 + rng.index(9);
  o.cells = 1 + rng.index(3);
  o.radius = rng.uniform_real(80.0, 320.0);
  o.growth = rng.uniform_real(-15.0, 25.0);
  o.speed = rng.uniform_real(20.0, 120.0);
  o.flap_prob = 0.5;
  o.extent = 1000.0;  // the prop topologies embed in [0, 1000)^2
  o.seed = seed;
  return o;
}

/// The scenario's static failure set, from the case's fail lists.
fail::FailureSet case_failure(const PropCase& c) {
  fail::FailureSet fs = fail::FailureSet::of_links(c.g, c.fail_links);
  for (NodeId n : c.fail_nodes) fs.add_node(c.g, n);
  return fs;
}

storm::StormTimeline case_timeline(const PropCase& c,
                                   const storm::StormOptions& o,
                                   const fail::FailureSet& base) {
  const std::uint64_t stream = fault::FaultPlan::stream_seed(o.seed, 0);
  const storm::StormSpec spec = storm::make_storm_spec(o, stream);
  return storm::compile_timeline(spec, c.g, stream, &base);
}

// Satellite (a): after every tick, batch-repairing the cumulative
// failure state from the canonical base tree is bit-identical --
// distances, parents, parent links -- to a from-scratch Dijkstra of
// that state, including ticks that destroy the source itself.
TEST(PropStorm, IncrementalReplanMatchesScratchPerTick) {
  for (std::uint64_t seed : prop::all_seeds()) {
    const PropCase c = prop::make_case(seed);
    const storm::StormOptions o = case_storm_options(seed);
    const fail::FailureSet base = case_failure(c);
    const storm::StormTimeline tl = case_timeline(c, o, base);
    const spf::BaseTreeStore store(c.g, spf::SpfAlgorithm::kDijkstra);
    for (std::size_t t = 0; t <= tl.ticks.size(); ++t) {
      const fail::FailureSet fs =
          storm::cumulative_failure(tl, c.g, &base, t);
      const auto repaired = spf::repair_spt(
          c.g, store.from(c.source), fs.masks(), spf::SpfAlgorithm::kDijkstra);
      const spf::SptResult full =
          spf::dijkstra_from(c.g, c.source, fs.masks());
      ASSERT_EQ(prop::diff_trees(full, *repaired), "")
          << "seed " << seed << " tick " << t;
    }
  }
}

// Satellite (b): the compiled timeline is a pure function of
// (spec, seed).  Compiling the whole corpus serially and under 2- and
// 8-worker fan-outs yields byte-identical per-seed timelines -- the
// storm layer has no hidden shared state for scheduling to perturb.
TEST(PropStorm, TrajectoryPureFunctionOfSpecAndSeed) {
  const std::vector<std::uint64_t> seeds = prop::all_seeds();
  const auto compile_all = [&seeds](std::size_t threads) {
    std::vector<std::string> out(seeds.size());
    common::parallel_for(seeds.size(), threads, [&](std::size_t i) {
      const PropCase c = prop::make_case(seeds[i]);
      const storm::StormOptions o = case_storm_options(seeds[i]);
      const fail::FailureSet base = case_failure(c);
      out[i] = storm::format_timeline(case_timeline(c, o, base));
    });
    return out;
  };
  const std::vector<std::string> serial = compile_all(1);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_FALSE(serial[i].empty()) << "seed " << seeds[i];
  }
  EXPECT_EQ(serial, compile_all(2));
  EXPECT_EQ(serial, compile_all(8));
}

// Satellite (c): throttling repair to a trickle converges to exactly
// the unthrottled final trees -- the budget moves WHEN repairs run
// (drain ticks, stalls), never what they converge to.
TEST(PropStorm, BudgetThrottledRepairConvergesToUnthrottledTrees) {
  std::size_t stalled_seeds = 0;
  for (std::uint64_t seed : prop::all_seeds()) {
    const PropCase c = prop::make_case(seed);
    const storm::StormOptions o = case_storm_options(seed);
    const fail::FailureSet base = case_failure(c);
    const storm::StormTimeline tl = case_timeline(c, o, base);
    const spf::BaseTreeStore store(c.g, spf::SpfAlgorithm::kDijkstra);
    std::vector<NodeId> sources;
    for (NodeId s = 0; s < c.g.node_count(); s += 3) sources.push_back(s);

    storm::StormEngineOptions unthrottled;
    const storm::StormRunResult full =
        storm::run_storm(c.g, store, tl, &base, sources, unthrottled);
    EXPECT_EQ(full.drain_ticks, 0u) << "seed " << seed;

    storm::StormEngineOptions tight;
    tight.budget_ops = 1 + (seed % 5);  // a trickle: forces carry + stalls
    const storm::StormRunResult slow =
        storm::run_storm(c.g, store, tl, &base, sources, tight);
    if (slow.total_budget_stalls > 0) ++stalled_seeds;
    ASSERT_EQ(full.trees.size(), slow.trees.size());
    for (std::size_t i = 0; i < full.trees.size(); ++i) {
      ASSERT_EQ(prop::diff_trees(*full.trees[i], *slow.trees[i]), "")
          << "seed " << seed << " source " << sources[i];
    }
    EXPECT_EQ(full.dist_digest, slow.dist_digest) << "seed " << seed;
    EXPECT_EQ(full.unreachable_pairs, slow.unreachable_pairs)
        << "seed " << seed;
  }
  // The trickle budget must actually bite somewhere in the corpus,
  // otherwise this test exercises nothing.
  EXPECT_GT(stalled_seeds, prop::corpus_seeds().size() / 2);
}

}  // namespace
}  // namespace rtr
