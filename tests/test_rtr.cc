#include <gtest/gtest.h>

#include <cmath>

#include "common/expect.h"
#include "common/rng.h"
#include "core/rtr.h"
#include "failure/scenario.h"
#include "graph/gen/isp_gen.h"
#include "graph/paper_topology.h"
#include "obs/metrics.h"
#include "spf/shortest_path.h"

namespace rtr::core {
namespace {

using fail::CircleArea;
using fail::FailureSet;
using graph::CrossingIndex;
using graph::Graph;
using graph::paper_node;

struct Rig {
  Graph g;
  CrossingIndex crossings;
  spf::RoutingTable rt;
  FailureSet failure;

  Rig(Graph graph, FailureSet fs)
      : g(std::move(graph)), crossings(g), rt(g), failure(std::move(fs)) {}

  static Rig paper() {
    Graph g = graph::fig1_graph();
    FailureSet fs(g, CircleArea(graph::fig1_failure_area()));
    return Rig(std::move(g), std::move(fs));
  }
};

TEST(Rtr, WorkedExampleRecoversOptimally) {
  Rig rig = Rig::paper();
  RtrRecovery rtr(rig.g, rig.crossings, rig.rt, rig.failure);
  const RecoveryResult r = rtr.recover(paper_node(6), paper_node(17));
  ASSERT_EQ(r.outcome, Outcome::kRecovered);
  EXPECT_EQ(r.sp_calculations, 1u);
  // True shortest path from v6 to v17 in the damaged graph is
  // v6 -> v5 -> v12 -> v14 -> v17 (4 hops), over the live cross link
  // e5,12 that phase 1 correctly refrained from marking failed.
  EXPECT_EQ(r.computed_path.nodes,
            (std::vector<NodeId>{paper_node(6), paper_node(5),
                                 paper_node(12), paper_node(14),
                                 paper_node(17)}));
  EXPECT_EQ(r.delivered_hops, 4u);
  EXPECT_EQ(r.source_route_bytes, 8u);  // 4 ids * 16 bit
}

TEST(Rtr, Phase1RunsOnceAcrossDestinations) {
  Rig rig = Rig::paper();
  RtrRecovery rtr(rig.g, rig.crossings, rig.rt, rig.failure);
  (void)rtr.recover(paper_node(6), paper_node(17));
  const Phase1Result* first = &rtr.phase1_for(paper_node(6));
  (void)rtr.recover(paper_node(6), paper_node(15));
  (void)rtr.recover(paper_node(6), paper_node(16));
  EXPECT_EQ(first, &rtr.phase1_for(paper_node(6)))
      << "phase 1 must be cached per initiator (Section III-A)";
}

TEST(Rtr, PathCacheReturnsSameResult) {
  Rig rig = Rig::paper();
  RtrRecovery rtr(rig.g, rig.crossings, rig.rt, rig.failure);
  const RecoveryResult a = rtr.recover(paper_node(6), paper_node(17));
  const RecoveryResult b = rtr.recover(paper_node(6), paper_node(17));
  EXPECT_EQ(a.computed_path.nodes, b.computed_path.nodes);
  EXPECT_EQ(b.sp_calculations, 1u);
}

TEST(Rtr, UnreachableDestinationIsDeclaredAtInitiator) {
  // Destroy every link around v17 and v18 so the east side is cut off;
  // v15's initiator view (after phase 1) must see the partition.
  Graph g = graph::fig1_graph();
  FailureSet fs = FailureSet::of_nodes(g, {paper_node(17)});
  Rig rig(std::move(g), std::move(fs));
  RtrRecovery rtr(rig.g, rig.crossings, rig.rt, rig.failure);
  // v15 routes to v17 directly; the link died with v17.
  const RecoveryResult r = rtr.recover(paper_node(15), paper_node(17));
  // v18 is only reachable through v17 in this topology... via e17,18
  // only, so v17's death also cuts v18.  The destination v17 itself is
  // dead: recovery must not deliver.
  EXPECT_NE(r.outcome, Outcome::kRecovered);
}

TEST(Rtr, IsolatedInitiator) {
  graph::GraphBuilder b;
  b.add_node({0, 0});
  b.add_node({10, 0});
  b.add_node({20, 0});
  b.add_link(0, 1);
  b.add_link(1, 2);
  Graph g = b.build();
  FailureSet fs = FailureSet::of_nodes(g, {1});
  Rig rig(std::move(g), std::move(fs));
  RtrRecovery rtr(rig.g, rig.crossings, rig.rt, rig.failure);
  const RecoveryResult r = rtr.recover(0, 2);
  EXPECT_EQ(r.outcome, Outcome::kInitiatorIsolated);
  // The isolated router still runs one (vain) SP calculation.
  EXPECT_EQ(r.sp_calculations, 1u);
  EXPECT_EQ(r.delivered_hops, 0u);
}

TEST(Rtr, OutcomeNames) {
  EXPECT_STREQ(to_string(Outcome::kRecovered), "recovered");
  EXPECT_STREQ(to_string(Outcome::kDroppedOnPath), "dropped-on-path");
  EXPECT_STREQ(to_string(Outcome::kDeclaredUnreachable),
               "declared-unreachable");
  EXPECT_STREQ(to_string(Outcome::kInitiatorIsolated),
               "initiator-isolated");
}

TEST(Rtr, RejectsBadArguments) {
  Rig rig = Rig::paper();
  RtrRecovery rtr(rig.g, rig.crossings, rig.rt, rig.failure);
  EXPECT_THROW(rtr.recover(paper_node(6), paper_node(6)),
               ContractViolation);
  EXPECT_THROW(rtr.recover(paper_node(10), paper_node(17)),
               ContractViolation);  // failed initiator
  EXPECT_THROW(rtr.recover(paper_node(1), paper_node(17)),
               ContractViolation);  // v1 observes no failure
}

// --------------------------------------------------------- Theorem 3 -----

struct TopoParam {
  const char* name;
};

class SingleLinkFailure : public ::testing::TestWithParam<TopoParam> {};

// "Under a single link failure, RTR guarantees to recover all failed
// routing paths with the shortest recovery paths."
TEST_P(SingleLinkFailure, AlwaysRecoversOptimally) {
  const Graph g = graph::make_isp_topology(
      graph::spec_by_name(GetParam().name));
  const CrossingIndex idx(g);
  const spf::RoutingTable rt(g);
  // Exhaustive over every link; sample destinations for speed.
  Rng rng(2012);
  for (LinkId dead = 0; dead < g.link_count(); ++dead) {
    const FailureSet fs = FailureSet::of_links(g, {dead});
    RtrRecovery rtr(g, idx, rt, fs);
    const graph::Link& e = g.link(dead);
    for (int rep = 0; rep < 6; ++rep) {
      const NodeId dest = static_cast<NodeId>(rng.index(g.num_nodes()));
      // Pick the endpoint whose default route to dest uses the dead
      // link, if any.
      NodeId initiator = kNoNode;
      for (NodeId cand : {e.u, e.v}) {
        if (cand != dest && rt.next_link(cand, dest) == dead) {
          initiator = cand;
        }
      }
      if (initiator == kNoNode) continue;
      const std::vector<char> lm = fs.link_mask();
      const spf::Path truth =
          spf::shortest_path(g, initiator, dest, {nullptr, &lm});
      const RecoveryResult r = rtr.recover(initiator, dest);
      if (truth.empty()) {
        EXPECT_NE(r.outcome, Outcome::kRecovered);
        continue;
      }
      ASSERT_EQ(r.outcome, Outcome::kRecovered)
          << GetParam().name << " link " << g.link_name(dead) << " dest "
          << dest;
      EXPECT_EQ(r.computed_path.hops(), truth.hops());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, SingleLinkFailure,
                         ::testing::Values(TopoParam{"AS209"},
                                           TopoParam{"AS1239"},
                                           TopoParam{"AS4323"}),
                         [](const auto& info) { return info.param.name; });

// --------------------------------------------------------- Theorem 2 -----

class AreaFailure : public ::testing::TestWithParam<TopoParam> {};

// "For any failure area, the recovery paths provided by RTR are
// guaranteed to be the shortest": whenever the packet is delivered, the
// path length equals the true damaged-graph shortest path.
TEST_P(AreaFailure, DeliveredPathsAreOptimal) {
  const Graph g = graph::make_isp_topology(
      graph::spec_by_name(GetParam().name));
  const CrossingIndex idx(g);
  const spf::RoutingTable rt(g);
  Rng rng(77);
  const fail::ScenarioConfig cfg;
  int recoveries = 0;
  for (int trial = 0; trial < 60 && recoveries < 300; ++trial) {
    const CircleArea area = fail::random_circle_area(cfg, rng);
    const FailureSet fs(g, area);
    if (fs.empty()) continue;
    RtrRecovery rtr(g, idx, rt, fs);
    for (NodeId n = 0; n < g.node_count(); ++n) {
      if (fs.node_failed(n) ||
          fs.observed_failed_links(g, n).empty()) {
        continue;
      }
      const spf::SptResult truth = spf::bfs_from(g, n, fs.masks());
      for (NodeId dest = 0; dest < g.node_count(); ++dest) {
        if (dest == n || rt.distance(n, dest) == kInfCost) continue;
        const RecoveryResult r = rtr.recover(n, dest);
        if (r.outcome == Outcome::kRecovered) {
          ++recoveries;
          ASSERT_TRUE(truth.reachable(dest));
          EXPECT_DOUBLE_EQ(static_cast<double>(r.computed_path.hops()),
                           truth.dist[dest])
              << GetParam().name << " " << n << "->" << dest;
          // The delivered path contains no failed element.
          for (LinkId l : r.computed_path.links) {
            EXPECT_FALSE(fs.link_failed(l));
          }
        } else {
          // Contrapositive sanity: a declared-unreachable verdict is
          // never wrong *in the initiator's view*; the ground truth may
          // still be reachable only in the rare missed-failure case, in
          // which case the packet was dropped on the path instead.
          if (r.outcome == Outcome::kDeclaredUnreachable) {
            EXPECT_TRUE(r.computed_path.empty());
          }
        }
      }
      break;  // one initiator per area keeps runtime bounded
    }
  }
  EXPECT_GT(recoveries, 50);
}

INSTANTIATE_TEST_SUITE_P(Topologies, AreaFailure,
                         ::testing::Values(TopoParam{"AS209"},
                                           TopoParam{"AS3549"},
                                           TopoParam{"AS7018"}),
                         [](const auto& info) { return info.param.name; });

// ----------------------------------------------------- incremental SPT ---

TEST(Rtr, IncrementalSptGivesIdenticalOutcomes) {
  Rig rig = Rig::paper();
  const spf::BaseTreeStore base(rig.g, spf::SpfAlgorithm::kDijkstra);
  RtrRecovery a(rig.g, rig.crossings, rig.rt, rig.failure, {});
  RtrRecovery b(rig.g, rig.crossings, rig.rt, rig.failure, {}, &base);
  for (NodeId dest = 0; dest < rig.g.node_count(); ++dest) {
    if (dest == paper_node(6) || dest == paper_node(10)) continue;
    const RecoveryResult ra = a.recover(paper_node(6), dest);
    const RecoveryResult rb = b.recover(paper_node(6), dest);
    EXPECT_EQ(ra.outcome, rb.outcome) << "dest " << dest;
    // Batch repair must agree with the fresh Dijkstra bit-for-bit:
    // same links, not merely the same hop count.
    EXPECT_EQ(ra.computed_path.links, rb.computed_path.links)
        << "dest " << dest;
  }
}

// ------------------------------------------------------- multiple areas --

TEST(Rtr, MultiAreaRecovery) {
  // Two disjoint failure areas on AS209; recover_multi must bypass both
  // by carrying failure information across legs (Section III-E).
  const Graph g = graph::make_isp_topology(graph::spec_by_name("AS209"));
  const CrossingIndex idx(g);
  const spf::RoutingTable rt(g);
  Rng rng(31337);
  const fail::ScenarioConfig cfg{2000.0, 120.0, 220.0};
  int multi_successes = 0;
  int attempts = 0;
  for (int trial = 0; trial < 200 && multi_successes < 5; ++trial) {
    FailureSet fs(g, fail::random_circle_area(cfg, rng));
    fs.add(g, fail::random_circle_area(cfg, rng));
    if (fs.empty()) continue;
    RtrRecovery rtr(g, idx, rt, fs);
    for (NodeId n = 0; n < g.node_count(); ++n) {
      if (fs.node_failed(n) || fs.observed_failed_links(g, n).empty()) {
        continue;
      }
      for (NodeId dest = 0; dest < g.node_count(); ++dest) {
        if (dest == n) continue;
        if (fs.node_failed(dest)) continue;
        if (!graph::reachable(g, n, dest, fs.masks())) continue;
        ++attempts;
        const auto mr = rtr.recover_multi(n, dest);
        if (mr.legs.size() > 1 && mr.outcome == Outcome::kRecovered) {
          ++multi_successes;
          // Every leg after the first inherited carried failures.
          EXPECT_EQ(mr.legs.back().outcome, Outcome::kRecovered);
        }
        // A reachable destination must never be *declared* unreachable:
        // the initiator only ever removes genuinely failed links.
        EXPECT_NE(mr.outcome, Outcome::kDeclaredUnreachable);
      }
      break;
    }
  }
  EXPECT_GT(attempts, 30);
  EXPECT_GT(multi_successes, 0) << "no case needed a second leg";
}

/// Ring of n nodes on a circle: every phase-1 traversal walks nearly
/// the whole ring, so a zeroed hop-cap factor forces kAborted.
Graph ring_graph(std::size_t n) {
  graph::GraphBuilder g;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 2.0 * 3.14159265358979323846 *
                     static_cast<double>(i) / static_cast<double>(n);
    g.add_node({100.0 * std::cos(a), 100.0 * std::sin(a)});
  }
  for (std::size_t i = 0; i < n; ++i) {
    g.add_link(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  return g.build();
}

TEST(Rtr, EngineStaysUsableAfterPhase1Abort) {
  // Satellite check: an aborted phase 1 (hop cap, forced here by the
  // max_hops_factor ablation on a 20-ring) must leave the engine fully
  // reusable -- repeated calls agree, the abort is counted once (the
  // phase-1 run is cached), and a fresh engine with the normal cap
  // recovers the very same case.
  Graph g = ring_graph(20);
  const LinkId dead = g.find_link(0, 1);
  const FailureSet fs = FailureSet::of_links(g, {dead});
  Rig rig(std::move(g), FailureSet(fs));

  RtrOptions ablated;
  ablated.phase1.max_hops_factor = 0;  // cap = 16 hops < ring cycle
  RtrRecovery rtr(rig.g, rig.crossings, rig.rt, rig.failure, ablated);
  const obs::Value aborted0 =
      obs::Registry::global().counter("rtr.core.phase1.aborted").total();
  const RecoveryResult first = rtr.recover(0, 1);  // graceful, no throw
  EXPECT_EQ(rtr.phase1_for(0).status, Phase1Result::Status::kAborted);
  EXPECT_EQ(
      obs::Registry::global().counter("rtr.core.phase1.aborted").total() -
          aborted0,
      1);

  // Reuse 1: the same engine answers the same case identically.
  const RecoveryResult again = rtr.recover(0, 1);
  EXPECT_EQ(again.outcome, first.outcome);
  EXPECT_EQ(again.computed_path.nodes, first.computed_path.nodes);
  // ... and without re-running (and re-counting) phase 1.
  EXPECT_EQ(
      obs::Registry::global().counter("rtr.core.phase1.aborted").total() -
          aborted0,
      1);

  // Reuse 2: a different initiator on the same engine still works.
  const RecoveryResult other = rtr.recover(1, 19);
  EXPECT_NO_FATAL_FAILURE((void)to_string(other.outcome));

  // The abort is an artifact of the ablated cap: the default cap
  // completes phase 1 and recovers around the ring.
  RtrRecovery healthy(rig.g, rig.crossings, rig.rt, rig.failure);
  const RecoveryResult ok = healthy.recover(0, 1);
  EXPECT_EQ(ok.outcome, Outcome::kRecovered);
  EXPECT_EQ(healthy.phase1_for(0).status,
            Phase1Result::Status::kCompleted);
}

}  // namespace
}  // namespace rtr::core
