#include <gtest/gtest.h>

#include <sstream>

#include "common/expect.h"
#include "stats/cdf.h"
#include "stats/table.h"

namespace rtr::stats {
namespace {

TEST(Cdf, BasicMoments) {
  const Cdf c({3.0, 1.0, 2.0, 4.0});
  EXPECT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
  EXPECT_DOUBLE_EQ(c.max(), 4.0);
  EXPECT_DOUBLE_EQ(c.mean(), 2.5);
}

TEST(Cdf, FractionAtOrBelow) {
  const Cdf c({1.0, 2.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(2.0), 0.75);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(10.0), 1.0);
}

TEST(Cdf, Quantiles) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const Cdf c(std::move(v));
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.9), 90.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 100.0);
}

TEST(Cdf, QuantileNearestRankOffGrid) {
  // Regression: truncate-then-decrement returned rank 2 for p just
  // above 0.5 on n=4; nearest-rank semantics require rank ceil(p*n).
  const Cdf c({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(c.quantile(0.51), 30.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.50), 20.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.26), 20.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.75), 30.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.76), 40.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 40.0);
}

TEST(Cdf, QuantileHandChecked) {
  // n=5: p in (0, 0.2] -> 1st sample, (0.2, 0.4] -> 2nd, etc.
  const Cdf c({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(c.quantile(0.01), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.21), 2.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.4), 2.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.99), 5.0);

  const Cdf single({7.0});
  EXPECT_DOUBLE_EQ(single.quantile(0.01), 7.0);
  EXPECT_DOUBLE_EQ(single.quantile(1.0), 7.0);
}

TEST(Cdf, QuantileAgreesWithFractionAtOrBelow) {
  // quantile(p) is the smallest sample v with
  // fraction_at_or_below(v) >= p -- check against the other primitive.
  const Cdf c({2.0, 2.0, 5.0, 9.0, 9.0, 9.0, 12.0});
  for (double p : {0.05, 0.2, 0.25, 0.3, 0.5, 0.7, 0.85, 0.99, 1.0}) {
    const double q = c.quantile(p);
    EXPECT_GE(c.fraction_at_or_below(q), p);
    for (double v : c.sorted_samples()) {
      if (v < q) {
        EXPECT_LT(c.fraction_at_or_below(v), p);
      }
    }
  }
}

TEST(Cdf, CurveSpansRange) {
  const Cdf c({0.0, 5.0, 10.0});
  const auto pts = c.curve(11);
  ASSERT_EQ(pts.size(), 11u);
  EXPECT_DOUBLE_EQ(pts.front().first, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().first, 10.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].second, pts[i - 1].second);  // monotone
  }
}

TEST(Cdf, DegenerateRangeCollapsesToOnePoint) {
  // All-equal samples: hi == lo, so an n-point sweep would emit n
  // duplicates of the same point.  The curve must collapse to one.
  const Cdf c({3.0, 3.0, 3.0});
  const auto pts = c.curve(7);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts.front().first, 3.0);
  EXPECT_DOUBLE_EQ(pts.front().second, 1.0);
  // A single distinct sample degenerates the same way.
  const Cdf single({4.5});
  const auto one = single.curve(5);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one.front().first, 4.5);
  EXPECT_DOUBLE_EQ(one.front().second, 1.0);
}

TEST(Cdf, EmptyBehaviour) {
  const Cdf c;
  EXPECT_TRUE(c.empty());
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(1.0), 0.0);
  EXPECT_TRUE(c.curve(5).empty());
  EXPECT_THROW(c.min(), ContractViolation);
  EXPECT_THROW(c.quantile(0.5), ContractViolation);
}

TEST(Summary, OfSamples) {
  const Summary s = Summary::of({2.0, 8.0, 5.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  const Summary empty = Summary::of({});
  EXPECT_EQ(empty.count, 0u);
}

TEST(TextTable, RendersAligned) {
  TextTable t({"Topology", "Rate"});
  t.add_row({"AS209", "98.2"});
  t.add_row({"AS7018", "98.4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Topology"), std::string::npos);
  EXPECT_NE(out.find("AS7018"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, RejectsAriryMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Fmt, Formatting) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_pct(0.986), "98.6");
  EXPECT_EQ(fmt_pct(1.0, 0), "100");
}

TEST(Csv, Writes) {
  std::ostringstream os;
  write_csv(os, {"x", "y"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

}  // namespace
}  // namespace rtr::stats
