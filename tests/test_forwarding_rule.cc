#include <gtest/gtest.h>

#include "core/forwarding_rule.h"
#include "graph/paper_topology.h"

namespace rtr::core {
namespace {

using fail::FailureSet;
using graph::CrossingIndex;
using graph::Graph;
using graph::paper_node;

/// A star: center node 0 with four arms at the compass points.
struct Star {
  Graph g;
  NodeId east, north, west, south;

  Star() {
    graph::GraphBuilder b;
    b.add_node({0, 0});             // 0: center
    east = b.add_node({100, 0});    // 1
    north = b.add_node({0, 100});   // 2
    west = b.add_node({-100, 0});   // 3
    south = b.add_node({0, -100});  // 4
    b.add_link(0, east);
    b.add_link(0, north);
    b.add_link(0, west);
    b.add_link(0, south);
    g = b.build();
  }
};

TEST(ForwardingRule, CounterclockwiseOrderFromEast) {
  Star s;
  const CrossingIndex idx(s.g);
  const FailureSet none(s.g);
  net::RtrHeader h;
  // Sweeping from the east arm, the first counterclockwise neighbour
  // is north, then west, then south.
  const Selection sel =
      select_next_hop(s.g, idx, none, h, 0, s.east);
  EXPECT_EQ(sel.node, s.north);
}

TEST(ForwardingRule, SkipsUnreachableNeighbors) {
  Star s;
  const CrossingIndex idx(s.g);
  const FailureSet fs =
      FailureSet::of_links(s.g, {s.g.find_link(0, s.north)});
  net::RtrHeader h;
  const Selection sel = select_next_hop(s.g, idx, fs, h, 0, s.east);
  EXPECT_EQ(sel.node, s.west);  // north skipped
}

TEST(ForwardingRule, ClockwiseOption) {
  Star s;
  const CrossingIndex idx(s.g);
  const FailureSet none(s.g);
  net::RtrHeader h;
  const Selection sel =
      select_next_hop(s.g, idx, none, h, 0, s.east, {true});
  EXPECT_EQ(sel.node, s.south);
}

TEST(ForwardingRule, PreviousHopIsLastResort) {
  // Path 0 - 1 with nothing else live: the rule must bounce back.
  graph::GraphBuilder b;
  b.add_node({0, 0});
  b.add_node({100, 0});
  b.add_node({200, 0});
  b.add_link(0, 1);
  const LinkId dead = b.add_link(1, 2);
  const Graph g = b.build();
  const CrossingIndex idx(g);
  const FailureSet fs = FailureSet::of_links(g, {dead});
  net::RtrHeader h;
  const Selection sel = select_next_hop(g, idx, fs, h, 1, 0);
  EXPECT_EQ(sel.node, 0u);  // full turn back to the previous hop
}

TEST(ForwardingRule, NoCandidateWhenIsolated) {
  graph::GraphBuilder b;
  b.add_node({0, 0});
  b.add_node({100, 0});
  const LinkId dead = b.add_link(0, 1);
  const Graph g = b.build();
  const CrossingIndex idx(g);
  const FailureSet fs = FailureSet::of_links(g, {dead});
  net::RtrHeader h;
  EXPECT_FALSE(select_next_hop(g, idx, fs, h, 0, 1).found());
}

TEST(ForwardingRule, CrossLinkExclusion) {
  // Two crossing links: recording one excludes the other.
  graph::GraphBuilder b;
  b.add_node({0, 0});     // 0
  b.add_node({100, 100}); // 1
  b.add_node({0, 100});   // 2
  b.add_node({100, 0});   // 3
  b.add_node({-100, 0});  // 4 (reference arm)
  const LinkId diag1 = b.add_link(0, 1);
  const LinkId diag2 = b.add_link(2, 3);
  b.add_link(0, 4);
  const Graph g = b.build();
  const CrossingIndex idx(g);
  ASSERT_TRUE(idx.cross(diag1, diag2));
  const FailureSet none(g);
  net::RtrHeader h;
  // Without exclusions node 0 sweeping from node 4 picks node 1
  // (smallest ccw rotation upward is the diagonal).
  EXPECT_EQ(select_next_hop(g, idx, none, h, 0, 4).node, 1u);
  // Recording diag2 in cross_link excludes diag1.
  h.add_cross(diag2);
  const Selection sel = select_next_hop(g, idx, none, h, 0, 4);
  EXPECT_EQ(sel.node, 4u);  // only the reference arm remains
  EXPECT_TRUE(link_excluded(idx, h, diag1));
  EXPECT_FALSE(link_excluded(idx, h, diag2));
}

TEST(ForwardingRule, SeedConstraint1OnlyRecordsCrossingFailedLinks) {
  const Graph g = graph::fig1_graph();
  const CrossingIndex idx(g);
  const FailureSet fs(g, fail::CircleArea(graph::fig1_failure_area()),
                      fail::LinkCutRule::kGeometric);
  net::RtrHeader h;
  h.rec_init = paper_node(6);
  seed_constraint1(g, idx, fs, h, paper_node(6));
  // v6's only failed incident link is e6,11, which crosses e5,12.
  EXPECT_EQ(h.cross_links,
            (std::vector<LinkId>{
                g.find_link(paper_node(6), paper_node(11))}));

  // v5's failed incident link e5,10 crosses e4,11: recorded too.
  net::RtrHeader h5;
  h5.rec_init = paper_node(5);
  seed_constraint1(g, idx, fs, h5, paper_node(5));
  EXPECT_EQ(h5.cross_links,
            (std::vector<LinkId>{
                g.find_link(paper_node(5), paper_node(10))}));

  // v9's failed incident link e9,10 crosses nothing: nothing recorded.
  net::RtrHeader h9;
  h9.rec_init = paper_node(9);
  seed_constraint1(g, idx, fs, h9, paper_node(9));
  EXPECT_TRUE(h9.cross_links.empty());
}

TEST(ForwardingRule, MaybeRecordCrossSkipsFullyExcludedCrossers) {
  const Graph g = graph::fig1_graph();
  const CrossingIndex idx(g);
  const LinkId e14_12 = g.find_link(paper_node(14), paper_node(12));
  const LinkId e11_15 = g.find_link(paper_node(11), paper_node(15));
  const LinkId e11_16 = g.find_link(paper_node(11), paper_node(16));

  // Fresh header: e14,12 is crossed by the two non-excluded links, so
  // selecting it records it.
  net::RtrHeader h;
  maybe_record_cross(idx, h, e14_12);
  EXPECT_TRUE(h.has_cross(e14_12));

  // Once e11,15 and e11,16 are themselves in cross_link, e14,12 (which
  // crosses both) is excluded from selection altogether -- the
  // recording rule never applies to it because it can never be chosen.
  net::RtrHeader h2;
  h2.add_cross(e11_15);
  h2.add_cross(e11_16);
  EXPECT_TRUE(link_excluded(idx, h2, e14_12));
}

TEST(ForwardingRule, RecordFailuresSkipsInitiatorLinks) {
  const Graph g = graph::fig1_graph();
  const FailureSet fs(g, fail::CircleArea(graph::fig1_failure_area()),
                      fail::LinkCutRule::kGeometric);
  // v11 neighbours the failed v10, the failed links e6,11 / e4,11 and
  // live nodes.  With v6 as initiator, e6,11 must not be recorded.
  net::RtrHeader h;
  h.rec_init = paper_node(6);
  record_failures(g, fs, h, paper_node(11));
  EXPECT_FALSE(h.has_failed(g.find_link(paper_node(6), paper_node(11))));
  EXPECT_TRUE(h.has_failed(g.find_link(paper_node(11), paper_node(10))));
  EXPECT_TRUE(h.has_failed(g.find_link(paper_node(4), paper_node(11))));
  // Re-recording is idempotent.
  const std::size_t before = h.failed_links.size();
  record_failures(g, fs, h, paper_node(11));
  EXPECT_EQ(h.failed_links.size(), before);
}

}  // namespace
}  // namespace rtr::core
