#include <gtest/gtest.h>

#include "common/expect.h"
#include "failure/failure_set.h"
#include "graph/paper_topology.h"
#include "net/network.h"
#include "spf/routing_table.h"

namespace rtr::net {
namespace {

using graph::paper_node;

/// Follows the default routing table; no recovery logic.
class DefaultRoutingApp : public RouterApp {
 public:
  explicit DefaultRoutingApp(const spf::RoutingTable& rt) : rt_(&rt) {}
  Decision on_packet(NodeId at, NodeId /*prev*/,
                     DataPacket& p) override {
    if (at == p.dst) return Decision::deliver();
    const LinkId l = rt_->next_link(at, p.dst);
    if (l == kNoLink) return Decision::drop();
    return Decision::forward(l);
  }

 private:
  const spf::RoutingTable* rt_;
};

/// Drops everything on arrival at the first hop.
class DropApp : public RouterApp {
 public:
  Decision on_packet(NodeId /*at*/, NodeId /*prev*/,
                     DataPacket& /*p*/) override {
    return Decision::drop();
  }
};

/// Always forwards over a fixed link (used to provoke the
/// forward-into-failure contract).
class BlindApp : public RouterApp {
 public:
  explicit BlindApp(LinkId l) : link_(l) {}
  Decision on_packet(NodeId /*at*/, NodeId /*prev*/,
                     DataPacket& /*p*/) override {
    return Decision::forward(link_);
  }

 private:
  LinkId link_;
};

struct NetRig {
  graph::Graph g = graph::fig1_graph();
  spf::RoutingTable rt{g};
  fail::FailureSet failure{g};
  Simulator sim;
  Network net{g, failure, sim};
};

TEST(Network, DeliversAlongDefaultRoute) {
  NetRig rig;
  DefaultRoutingApp app(rig.rt);
  DataPacket p;
  p.src = paper_node(7);
  p.dst = paper_node(17);
  bool delivered = false;
  std::vector<NodeId> trace;
  rig.net.send(p, app, [&](const DataPacket& pkt, NodeId final_node,
                           bool ok) {
    delivered = ok;
    trace = pkt.trace;
    EXPECT_EQ(final_node, paper_node(17));
  });
  rig.sim.run();
  EXPECT_TRUE(delivered);
  const spf::Path expected = rig.rt.route(paper_node(7), paper_node(17));
  EXPECT_EQ(trace, expected.nodes);
  EXPECT_EQ(rig.net.packets_delivered(), 1u);
  EXPECT_EQ(rig.net.hops_forwarded(), expected.hops());
}

TEST(Network, TimingFollowsDelayModel) {
  NetRig rig;
  DefaultRoutingApp app(rig.rt);
  DataPacket p;
  p.src = paper_node(7);
  p.dst = paper_node(17);
  double done_at = -1.0;
  rig.net.send(p, app, [&](const DataPacket&, NodeId, bool) {
    done_at = rig.sim.now();
  });
  rig.sim.run();
  const DelayModel d;
  const std::size_t hops =
      rig.rt.route(paper_node(7), paper_node(17)).hops();
  EXPECT_NEAR(done_at, d.router_delay_ms + d.duration_ms(hops), 1e-9);
}

TEST(Network, BytesAccounting) {
  NetRig rig;
  DefaultRoutingApp app(rig.rt);
  DataPacket p;
  p.src = paper_node(7);
  p.dst = paper_node(17);
  std::size_t bytes = 0;
  rig.net.send(p, app, [&](const DataPacket& pkt, NodeId, bool) {
    bytes = pkt.bytes_transmitted;
  });
  rig.sim.run();
  const std::size_t hops =
      rig.rt.route(paper_node(7), paper_node(17)).hops();
  EXPECT_EQ(bytes, hops * kPayloadBytes);  // no recovery header
}

TEST(Network, DropIsReported) {
  NetRig rig;
  DropApp app;
  DataPacket p;
  p.src = paper_node(7);
  p.dst = paper_node(17);
  bool delivered = true;
  NodeId where = kNoNode;
  rig.net.send(p, app, [&](const DataPacket&, NodeId final_node,
                           bool ok) {
    delivered = ok;
    where = final_node;
  });
  rig.sim.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(where, paper_node(7));
  EXPECT_EQ(rig.net.packets_dropped(), 1u);
}

TEST(Network, ForwardingIntoFailureIsAContractViolation) {
  graph::Graph g = graph::fig1_graph();
  const LinkId dead = g.find_link(paper_node(6), paper_node(11));
  const fail::FailureSet failure = fail::FailureSet::of_links(g, {dead});
  Simulator sim;
  Network net(g, failure, sim);
  BlindApp app(dead);
  DataPacket p;
  p.src = paper_node(6);
  p.dst = paper_node(11);
  net.send(p, app, {});
  EXPECT_THROW(sim.run(), ContractViolation);
}

TEST(Network, FailedSourceRejected) {
  graph::Graph g = graph::fig1_graph();
  const fail::FailureSet failure =
      fail::FailureSet::of_nodes(g, {paper_node(10)});
  Simulator sim;
  Network net(g, failure, sim);
  DropApp app;
  DataPacket p;
  p.src = paper_node(10);
  p.dst = paper_node(17);
  EXPECT_THROW(net.send(p, app, {}), ContractViolation);
}

TEST(Network, ConcurrentPacketsInterleave) {
  NetRig rig;
  DefaultRoutingApp app(rig.rt);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    DataPacket p;
    p.src = paper_node(1);
    p.dst = paper_node(18);
    rig.net.send(p, app,
                 [&](const DataPacket&, NodeId, bool ok) {
                   EXPECT_TRUE(ok);
                   ++done;
                 });
  }
  rig.sim.run();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(rig.net.packets_delivered(), 5u);
}

}  // namespace
}  // namespace rtr::net
