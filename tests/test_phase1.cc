#include <gtest/gtest.h>

#include <algorithm>

#include "common/expect.h"
#include "common/rng.h"
#include "core/phase1.h"
#include "failure/scenario.h"
#include "graph/gen/isp_gen.h"
#include "graph/paper_topology.h"

namespace rtr::core {
namespace {

using fail::CircleArea;
using fail::FailureSet;
using graph::CrossingIndex;
using graph::Graph;
using graph::paper_node;

struct PaperFixture {
  Graph g;
  CrossingIndex crossings;
  FailureSet failure;

  explicit PaperFixture(bool planar)
      : g(planar ? graph::fig1_planar_graph() : graph::fig1_graph()),
        crossings(g),
        failure(g, CircleArea(graph::fig1_failure_area())) {}

  LinkId link(int a, int b) const {
    const LinkId l = g.find_link(paper_node(a), paper_node(b));
    EXPECT_NE(l, kNoLink);
    return l;
  }
};

std::vector<NodeId> paper_nodes(std::initializer_list<int> ks) {
  std::vector<NodeId> out;
  for (int k : ks) out.push_back(paper_node(k));
  return out;
}

// ------------------------- the worked example of Fig. 6 / Table I --------

TEST(Phase1GeneralGraph, ReproducesTableIVisitSequence) {
  PaperFixture f(/*planar=*/false);
  const Phase1Result r = run_phase1(f.g, f.crossings, f.failure,
                                    paper_node(6), f.link(6, 11));
  ASSERT_TRUE(r.completed());
  // Table I: hops 0..11 at v6,v5,v4,v9,v13,v14,v12,v11,v12,v8,v7,v6.
  EXPECT_EQ(r.visits,
            paper_nodes({6, 5, 4, 9, 13, 14, 12, 11, 12, 8, 7, 6}));
  EXPECT_EQ(r.hops(), 11u);
}

TEST(Phase1GeneralGraph, ReproducesTableIFailedLinkColumn) {
  PaperFixture f(/*planar=*/false);
  const Phase1Result r = run_phase1(f.g, f.crossings, f.failure,
                                    paper_node(6), f.link(6, 11));
  ASSERT_TRUE(r.completed());
  // Insertion order per Table I: e5,10 (at v5), e4,11 (at v4),
  // e9,10 (at v9), e14,10 (at v14), e11,10 (at v11).
  const std::vector<LinkId> expected = {
      f.link(5, 10), f.link(4, 11), f.link(9, 10), f.link(14, 10),
      f.link(11, 10)};
  EXPECT_EQ(r.header.failed_links, expected);
}

TEST(Phase1GeneralGraph, ReproducesTableICrossLinkColumn) {
  PaperFixture f(/*planar=*/false);
  const Phase1Result r = run_phase1(f.g, f.crossings, f.failure,
                                    paper_node(6), f.link(6, 11));
  ASSERT_TRUE(r.completed());
  // Constraint 1 seeds e6,11 at hop 0; Constraint 2 adds e14,12 when
  // v14 selects it (hop 5).
  const std::vector<LinkId> expected = {f.link(6, 11), f.link(14, 12)};
  EXPECT_EQ(r.header.cross_links, expected);
}

TEST(Phase1GeneralGraph, InitiatorLinksAreNeverRecorded) {
  PaperFixture f(/*planar=*/false);
  const Phase1Result r = run_phase1(f.g, f.crossings, f.failure,
                                    paper_node(6), f.link(6, 11));
  // e6,11 is known to the initiator and must not appear in failed_link
  // (Section III-B: "a failed link is not recorded ... if vi is one end").
  EXPECT_FALSE(r.header.has_failed(f.link(6, 11)));
}

TEST(Phase1GeneralGraph, HeaderBytesGrowMonotonically) {
  PaperFixture f(/*planar=*/false);
  const Phase1Result r = run_phase1(f.g, f.crossings, f.failure,
                                    paper_node(6), f.link(6, 11));
  ASSERT_EQ(r.bytes_per_hop.size(), r.hops());
  for (std::size_t i = 1; i < r.bytes_per_hop.size(); ++i) {
    EXPECT_GE(r.bytes_per_hop[i], r.bytes_per_hop[i - 1]);
  }
  // Final header: rec_init + 5 failed + 2 cross = 2*(1+5+2) = 16 bytes.
  EXPECT_EQ(r.header.recovery_bytes(), 16u);
  EXPECT_EQ(r.bytes_per_hop.back(), 16u);
}

// ------------------------------ the planar variant of Fig. 2 -------------

TEST(Phase1PlanarGraph, RecordsExactlyTheFourLinksOfFig2) {
  PaperFixture f(/*planar=*/true);
  const Phase1Result r = run_phase1(f.g, f.crossings, f.failure,
                                    paper_node(6), f.link(6, 11));
  ASSERT_TRUE(r.completed());
  // Section III-B: "failed_link in the packet header records four links
  // e5,10, e9,10, e14,10, and e11,10".
  std::vector<LinkId> got = r.header.failed_links;
  std::sort(got.begin(), got.end());
  std::vector<LinkId> expected = {f.link(5, 10), f.link(9, 10),
                                  f.link(14, 10), f.link(11, 10)};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
  // Planar graph, no crossing links: cross_link stays empty.
  EXPECT_TRUE(r.header.cross_links.empty());
}

TEST(Phase1PlanarGraph, VisitsStartAndEndAtInitiator) {
  PaperFixture f(/*planar=*/true);
  const Phase1Result r = run_phase1(f.g, f.crossings, f.failure,
                                    paper_node(6), f.link(6, 11));
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.visits.front(), paper_node(6));
  EXPECT_EQ(r.visits.back(), paper_node(6));
  EXPECT_EQ(r.visits.size(), r.traversed_links.size() + 1);
}

// --------------------------------------------------- degenerate cases ----

TEST(Phase1, IsolatedInitiator) {
  graph::GraphBuilder b;
  b.add_node({0, 0});
  b.add_node({10, 0});
  const LinkId l = b.add_link(0, 1);
  const Graph g = b.build();
  const CrossingIndex idx(g);
  const FailureSet fs = FailureSet::of_links(g, {l});
  const Phase1Result r = run_phase1(g, idx, fs, 0, l);
  EXPECT_EQ(r.status, Phase1Result::Status::kInitiatorIsolated);
  EXPECT_EQ(r.hops(), 0u);
}

TEST(Phase1, SingleLiveNeighborBacktracks) {
  // Path graph 0-1-2 with link 1-2 failed: initiator 1 sends to 0,
  // which bounces the packet straight back.
  graph::GraphBuilder b;
  b.add_node({0, 0});
  b.add_node({10, 0});
  b.add_node({20, 0});
  b.add_link(0, 1);
  const LinkId dead = b.add_link(1, 2);
  const Graph g = b.build();
  const CrossingIndex idx(g);
  const FailureSet fs = FailureSet::of_links(g, {dead});
  const Phase1Result r = run_phase1(g, idx, fs, 1, dead);
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.visits, (std::vector<NodeId>{1, 0, 1}));
}

TEST(Phase1, RequiresObservedFailure) {
  PaperFixture f(/*planar=*/false);
  // e7,6 is alive: starting phase 1 over it violates the precondition.
  EXPECT_THROW(run_phase1(f.g, f.crossings, f.failure, paper_node(7),
                          f.link(7, 6)),
               ContractViolation);
}

TEST(Phase1, FailedInitiatorRejected) {
  PaperFixture f(/*planar=*/false);
  EXPECT_THROW(run_phase1(f.g, f.crossings, f.failure, paper_node(10),
                          f.link(11, 10)),
               ContractViolation);
}

// ------------------------------------------------------- property suite --

struct TopoParam {
  const char* name;
  std::uint64_t seed;
};

class Phase1Properties : public ::testing::TestWithParam<TopoParam> {};

// Theorem 1 (no permanent loops) plus E1 subset-of E2, over hundreds of
// random failure areas per topology.
TEST_P(Phase1Properties, AlwaysTerminatesAndCollectsOnlyRealFailures) {
  const graph::IspSpec& spec = graph::spec_by_name(GetParam().name);
  const Graph g = graph::make_isp_topology(spec);
  const CrossingIndex idx(g);
  Rng rng(GetParam().seed);
  const fail::ScenarioConfig cfg;
  int initiations = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const CircleArea area = fail::random_circle_area(cfg, rng);
    const FailureSet fs(g, area);
    if (fs.empty()) continue;
    for (NodeId n = 0; n < g.node_count() && initiations < 400; ++n) {
      if (fs.node_failed(n)) continue;
      const auto observed = fs.observed_failed_links(g, n);
      if (observed.empty()) continue;
      ++initiations;
      const Phase1Result r = run_phase1(g, idx, fs, n, observed.front());
      // Theorem 1: either the initiator is cut off entirely or the
      // traversal closes; the hop cap is never hit.
      ASSERT_NE(r.status, Phase1Result::Status::kAborted)
          << GetParam().name << " initiator " << n << " trial " << trial;
      if (r.completed()) {
        EXPECT_EQ(r.visits.back(), n);
        // E1 subset of E2: only genuinely failed links are recorded, and
        // none of them is incident to the initiator.
        for (LinkId l : r.header.failed_links) {
          EXPECT_TRUE(fs.link_failed(l) ||
                      fs.node_failed(g.link(l).u) ||
                      fs.node_failed(g.link(l).v));
          EXPECT_NE(g.link(l).u, n);
          EXPECT_NE(g.link(l).v, n);
        }
        // Every traversed link is live.
        for (LinkId l : r.traversed_links) {
          EXPECT_FALSE(fs.link_failed(l));
        }
      } else {
        EXPECT_FALSE(fs.has_live_neighbor(g, n));
      }
    }
  }
  EXPECT_GT(initiations, 50) << "test exercised too few initiations";
}

// The traversal visits only nodes reachable from the initiator, and the
// walk is contiguous (each traversed link joins consecutive visits).
TEST_P(Phase1Properties, WalkIsContiguous) {
  const graph::IspSpec& spec = graph::spec_by_name(GetParam().name);
  const Graph g = graph::make_isp_topology(spec);
  const CrossingIndex idx(g);
  Rng rng(GetParam().seed ^ 0xABCD);
  const fail::ScenarioConfig cfg;
  for (int trial = 0; trial < 40; ++trial) {
    const CircleArea area = fail::random_circle_area(cfg, rng);
    const FailureSet fs(g, area);
    if (fs.empty()) continue;
    for (NodeId n = 0; n < g.node_count(); ++n) {
      if (fs.node_failed(n)) continue;
      const auto observed = fs.observed_failed_links(g, n);
      if (observed.empty()) continue;
      const Phase1Result r = run_phase1(g, idx, fs, n, observed.front());
      for (std::size_t i = 0; i < r.traversed_links.size(); ++i) {
        const graph::Link& e = g.link(r.traversed_links[i]);
        const NodeId a = r.visits[i];
        const NodeId b = r.visits[i + 1];
        EXPECT_TRUE((e.u == a && e.v == b) || (e.u == b && e.v == a));
      }
      break;  // one initiator per area suffices here
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, Phase1Properties,
    ::testing::Values(TopoParam{"AS209", 101}, TopoParam{"AS1239", 102},
                      TopoParam{"AS3549", 103}, TopoParam{"AS7018", 104}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------- ablations ----

TEST(Phase1Ablation, WithoutConstraintsStillBoundedByCap) {
  // Turning both constraints off on a general graph may loop or wedge;
  // the engine must degrade to kAborted rather than hang or throw.
  const Graph g = graph::fig1_graph();
  const CrossingIndex idx(g);
  const FailureSet fs(g, CircleArea(graph::fig1_failure_area()));
  Phase1Options opts;
  opts.constraint1 = false;
  opts.constraint2 = false;
  const Phase1Result r =
      run_phase1(g, idx, fs, paper_node(6),
                 g.find_link(paper_node(6), paper_node(11)), opts);
  EXPECT_TRUE(r.status == Phase1Result::Status::kCompleted ||
              r.status == Phase1Result::Status::kAborted);
  EXPECT_LE(r.hops(), 8 * g.num_links() + 16);
}

TEST(Phase1Ablation, ClockwiseOrientationAlsoCloses) {
  const Graph g = graph::fig1_graph();
  const CrossingIndex idx(g);
  const FailureSet fs(g, CircleArea(graph::fig1_failure_area()));
  Phase1Options opts;
  opts.clockwise = true;
  const Phase1Result r =
      run_phase1(g, idx, fs, paper_node(6),
                 g.find_link(paper_node(6), paper_node(11)), opts);
  EXPECT_TRUE(r.completed());
  EXPECT_EQ(r.visits.back(), paper_node(6));
}

}  // namespace
}  // namespace rtr::core
