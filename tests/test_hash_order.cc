// Hash-order regression coverage.  The engines memoise per-initiator
// state in std::unordered_map (core/rtr.h states_, spf/spt_cache.h
// spts_, exp/cases.cc's dedupe set), which is fine for *lookup* but
// would break the bit-identical-results contract the moment an
// iteration order leaked into output -- hash order varies across
// standard libraries and insertion histories.  These tests drive the
// same API along two different orders (and through hashers salted two
// different ways) and require identical results, so a future change
// that starts emitting in hash order fails here before it reaches CI's
// cross-thread bench smoke.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "core/rtr.h"
#include "exp/cases.h"
#include "exp/context.h"
#include "failure/scenario.h"
#include "graph/gen/isp_gen.h"
#include "graph/paper_topology.h"
#include "spf/spt_cache.h"

namespace rtr {
namespace {

using fail::CircleArea;
using fail::FailureSet;
using graph::Graph;

struct QueryPair {
  NodeId initiator = kNoNode;
  NodeId dest = kNoNode;
};

/// Every (initiator, dest) pair recover() accepts on this failure: a
/// live initiator that observed at least one failed link, any other
/// node as destination.
std::vector<QueryPair> valid_pairs(const Graph& g, const FailureSet& fs) {
  std::vector<QueryPair> out;
  for (NodeId i = 0; i < g.node_count(); ++i) {
    if (fs.node_failed(i) || fs.observed_failed_links(g, i).empty()) {
      continue;
    }
    for (NodeId d = 0; d < g.node_count(); ++d) {
      if (d != i) out.push_back({i, d});
    }
  }
  return out;
}

void expect_same_result(const core::RecoveryResult& a,
                        const core::RecoveryResult& b) {
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.sp_calculations, b.sp_calculations);
  EXPECT_EQ(a.computed_path.nodes, b.computed_path.nodes);
  EXPECT_EQ(a.computed_path.links, b.computed_path.links);
  EXPECT_EQ(a.delivered_hops, b.delivered_hops);
  EXPECT_EQ(a.source_route_bytes, b.source_route_bytes);
}

TEST(HashOrder, RtrRecoveryIndependentOfQueryOrder) {
  Graph g = graph::fig1_graph();
  FailureSet fs(g, CircleArea(graph::fig1_failure_area()));
  const graph::CrossingIndex crossings(g);
  const spf::RoutingTable rt(g);
  const std::vector<QueryPair> pairs = valid_pairs(g, fs);
  ASSERT_GT(pairs.size(), 4u);

  // Two independent engines populate their per-initiator memo maps in
  // opposite orders; every per-pair answer must still agree.
  core::RtrRecovery forward(g, crossings, rt, fs);
  core::RtrRecovery backward(g, crossings, rt, fs);
  std::vector<core::RecoveryResult> fwd;
  fwd.reserve(pairs.size());
  for (const QueryPair& p : pairs) {
    fwd.push_back(forward.recover(p.initiator, p.dest));
  }
  std::vector<core::RecoveryResult> bwd(pairs.size());
  for (std::size_t k = pairs.size(); k-- > 0;) {
    bwd[k] = backward.recover(pairs[k].initiator, pairs[k].dest);
  }
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    expect_same_result(fwd[k], bwd[k]);
  }
}

TEST(HashOrder, SptCacheIndependentOfQueryOrder) {
  const Graph g = graph::fig1_graph();
  FailureSet fs(g, CircleArea(graph::fig1_failure_area()));
  spf::SptCache ascending(g, fs.masks());
  spf::SptCache descending(g, fs.masks());
  const NodeId n = g.node_count();
  const std::size_t nn = static_cast<std::size_t>(n) * n;
  std::vector<Cost> da(nn), db(nn);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      da[static_cast<std::size_t>(s) * n + t] = ascending.dist(s, t);
    }
  }
  for (NodeId s = n; s-- > 0;) {
    for (NodeId t = n; t-- > 0;) {
      db[static_cast<std::size_t>(s) * n + t] = descending.dist(s, t);
    }
  }
  EXPECT_EQ(da, db);
  EXPECT_EQ(ascending.trees_computed(), descending.trees_computed());
}

TEST(HashOrder, ExtractScenarioOutputIsReproducible) {
  // The case-extraction dedupe set is unordered; the emitted case lists
  // must come out in (initiator, dest) scan order, i.e. identical on
  // every call.
  const exp::TopologyContext ctx =
      exp::make_context(graph::spec_by_name("AS209"));
  Rng rng(20120618);
  const fail::CircleArea area =
      fail::random_circle_area(fail::ScenarioConfig{}, rng);
  const exp::Scenario a = exp::extract_scenario(ctx, area);
  const exp::Scenario b = exp::extract_scenario(ctx, area);
  ASSERT_EQ(a.recoverable.size(), b.recoverable.size());
  ASSERT_EQ(a.irrecoverable.size(), b.irrecoverable.size());
  for (std::size_t k = 0; k < a.recoverable.size(); ++k) {
    EXPECT_EQ(a.recoverable[k].initiator, b.recoverable[k].initiator);
    EXPECT_EQ(a.recoverable[k].dest, b.recoverable[k].dest);
    EXPECT_EQ(a.recoverable[k].dead_link, b.recoverable[k].dead_link);
  }
  for (std::size_t k = 0; k < a.irrecoverable.size(); ++k) {
    EXPECT_EQ(a.irrecoverable[k].initiator, b.irrecoverable[k].initiator);
    EXPECT_EQ(a.irrecoverable[k].dest, b.irrecoverable[k].dest);
  }
}

/// A hasher whose salt stands in for "different standard library /
/// different insertion history": two salts give two traversal orders
/// over the same key set.
struct SaltedHash {
  std::uint64_t salt = 0;
  std::size_t operator()(std::uint32_t v) const {
    std::uint64_t x = v ^ salt;  // splitmix64-style finaliser
    x ^= x >> 33U;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33U;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33U;
    return static_cast<std::size_t>(x);
  }
};

TEST(HashOrder, SortBeforeEmitNormalisesSaltedSetOrder) {
  std::vector<std::uint32_t> ids(101);
  std::iota(ids.begin(), ids.end(), 0U);
  std::unordered_set<std::uint32_t, SaltedHash> salt_a(0, SaltedHash{1});
  std::unordered_set<std::uint32_t, SaltedHash> salt_b(
      0, SaltedHash{0x9e3779b97f4a7c15ULL});
  for (std::uint32_t v : ids) {
    salt_a.insert(v);
    salt_b.insert(v);
  }
  // Deliberate hash-order walks (this is what the determinism linter's
  // unordered-iteration rule exists to catch in engine code).
  // lint:allow(unordered-iteration) — the test demonstrates the hazard
  std::vector<std::uint32_t> walk_a(salt_a.begin(), salt_a.end());
  // lint:allow(unordered-iteration) — the test demonstrates the hazard
  std::vector<std::uint32_t> walk_b(salt_b.begin(), salt_b.end());
  // The repo-wide emit discipline -- sort before anything observable --
  // collapses both walks onto the same sequence.
  std::sort(walk_a.begin(), walk_a.end());
  std::sort(walk_b.begin(), walk_b.end());
  EXPECT_EQ(walk_a, walk_b);
  EXPECT_EQ(walk_a, ids);
}

}  // namespace
}  // namespace rtr
