#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/crossings.h"
#include "graph/gen/generators.h"
#include "graph/gen/isp_gen.h"
#include "graph/io.h"
#include "graph/properties.h"

namespace rtr::graph {
namespace {

TEST(Generators, GridShape) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_links(), 3u * 3 + 2u * 4);  // 17
  EXPECT_TRUE(connected(g));
  EXPECT_TRUE(CrossingIndex(g).planar_embedding());
}

TEST(Generators, RingShape) {
  const Graph g = make_ring(8);
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_links(), 8u);
  EXPECT_TRUE(connected(g));
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min_degree, 2u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_TRUE(CrossingIndex(g).planar_embedding());
}

TEST(Generators, RandomTreeIsATree) {
  Rng rng(7);
  const Graph g = make_random_tree(40, 1000.0, rng);
  EXPECT_EQ(g.num_nodes(), 40u);
  EXPECT_EQ(g.num_links(), 39u);
  EXPECT_TRUE(connected(g));
}

TEST(Generators, WaxmanConnectedSuperset) {
  Rng rng(11);
  const Graph g = make_waxman(60, 0.6, 0.3, 1000.0, rng);
  EXPECT_EQ(g.num_nodes(), 60u);
  EXPECT_GE(g.num_links(), 59u);
  EXPECT_TRUE(connected(g));
}

TEST(Generators, RandomGeometricLinksWithinRadius) {
  Rng rng(3);
  const Graph g = make_random_geometric(50, 200.0, 1000.0, rng);
  for (LinkId l = 0; l < g.link_count(); ++l) {
    const Link& e = g.link(l);
    EXPECT_LE(geom::distance(g.position(e.u), g.position(e.v)), 200.0);
  }
}

TEST(IspGen, ExactTable2Counts) {
  for (const IspSpec& spec : table2_specs()) {
    const Graph g = make_isp_topology(spec);
    EXPECT_EQ(g.num_nodes(), spec.nodes) << spec.name;
    EXPECT_EQ(g.num_links(), spec.links) << spec.name;
    EXPECT_TRUE(connected(g)) << spec.name;
  }
}

TEST(IspGen, DeterministicInSeed) {
  const IspSpec& spec = spec_by_name("AS1239");
  const Graph a = make_isp_topology(spec);
  const Graph b = make_isp_topology(spec);
  EXPECT_EQ(to_string(a), to_string(b));
  IspSpec other = spec;
  other.seed ^= 0xDEADBEEF;
  const Graph c = make_isp_topology(other);
  EXPECT_NE(to_string(a), to_string(c));
}

TEST(IspGen, NodesInsideExtent) {
  const Graph g = make_isp_topology(spec_by_name("AS209"));
  for (NodeId n = 0; n < g.node_count(); ++n) {
    const geom::Point p = g.position(n);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 2000.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 2000.0);
  }
}

TEST(IspGen, SparseTopologyHasTreeBranches) {
  // Section IV-B: AS7018 "has many tree branches"; the surrogate must
  // reproduce that structural property (115 nodes, 148 links).
  const Graph g = make_isp_topology(spec_by_name("AS7018"));
  const DegreeStats s = degree_stats(g);
  EXPECT_GE(s.leaves, 15u);
  EXPECT_LT(s.mean_degree, 3.0);
}

TEST(IspGen, DenseTopologyIsDense) {
  const Graph g = make_isp_topology(spec_by_name("AS3549"));
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(s.mean_degree, 10.0);  // 61 nodes, 486 links
}

TEST(IspGen, CatalogContents) {
  EXPECT_EQ(rocketfuel_specs().size(), 10u);
  EXPECT_EQ(table2_specs().size(), 8u);
  EXPECT_EQ(spec_by_name("AS7018").nodes, 115u);
  EXPECT_EQ(spec_by_name("AS7018").links, 148u);
  EXPECT_FALSE(spec_by_name("AS2914").core);
  EXPECT_THROW(spec_by_name("AS9999"), std::out_of_range);
}

TEST(IspGen, RejectsInfeasibleSpecs) {
  EXPECT_THROW(make_isp_topology({"bad", 10, 8, 1, true}),
               ContractViolation);  // below spanning tree
  EXPECT_THROW(make_isp_topology({"bad", 10, 46, 1, true}),
               ContractViolation);  // above n(n-1)/2
}

}  // namespace
}  // namespace rtr::graph
