// Determinism coverage for the parallel experiment engine (and the
// deterministic primitives it leans on): identical results for every
// thread count, the documented shortest-path tie-breaks, and Rng::fork
// stream independence.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/expect.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "exp/cases.h"
#include "exp/context.h"
#include "exp/runners.h"
#include "geom/point.h"
#include "graph/gen/isp_gen.h"
#include "spf/shortest_path.h"
#include "spf/spt_cache.h"

namespace rtr {
namespace {

// --------------------------------------------------------- parallel_for --

TEST(ParallelFor, CoversEveryIndexOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{3},
                              std::size_t{8}, std::size_t{0}}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    common::parallel_for(hits.size(), threads,
                         [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  std::size_t calls = 0;
  common::parallel_for(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  common::parallel_for(1, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelFor, IndexedWritesMatchSerial) {
  std::vector<double> serial(1000), parallel(1000);
  const auto fn = [](std::size_t i) {
    return static_cast<double>(i) * 1.5 + 1.0;
  };
  common::parallel_for(serial.size(), 1,
                       [&](std::size_t i) { serial[i] = fn(i); });
  common::parallel_for(parallel.size(), 8,
                       [&](std::size_t i) { parallel[i] = fn(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      common::parallel_for(100, 4,
                           [](std::size_t i) {
                             RTR_EXPECT_MSG(i != 42, "boom");
                           }),
      ContractViolation);
  // Serial path too.
  EXPECT_THROW(
      common::parallel_for(100, 1,
                           [](std::size_t i) { RTR_EXPECT(i != 42); }),
      ContractViolation);
}

// ------------------------------------------------------- runner engine --

class EngineDeterminism : public ::testing::Test {
 protected:
  EngineDeterminism()
      : ctx_(exp::make_context(graph::spec_by_name("AS209"))) {
    exp::CaseBudget budget;
    budget.recoverable = 200;
    budget.irrecoverable = 100;
    scenarios_ = exp::generate_scenarios(ctx_, fail::ScenarioConfig{},
                                         budget, 99);
  }

  void SetUp() override {
    ASSERT_GT(scenarios_.size(), 1u) << "need multiple work units";
  }

  exp::RunOptions opts_with(std::size_t threads) const {
    exp::RunOptions o;
    o.threads = threads;
    return o;
  }

  exp::TopologyContext ctx_;
  std::vector<exp::Scenario> scenarios_;
};

void expect_identical(const exp::RecoverableResults& a,
                      const exp::RecoverableResults& b) {
  EXPECT_EQ(a.topo, b.topo);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.rtr_recovered, b.rtr_recovered);
  EXPECT_EQ(a.rtr_optimal, b.rtr_optimal);
  EXPECT_EQ(a.fcp_recovered, b.fcp_recovered);
  EXPECT_EQ(a.fcp_optimal, b.fcp_optimal);
  EXPECT_EQ(a.mrc_recovered, b.mrc_recovered);
  EXPECT_EQ(a.mrc_optimal, b.mrc_optimal);
  EXPECT_EQ(a.rtr_phase1_aborted, b.rtr_phase1_aborted);
  // Exact (bitwise) equality of every sample vector: determinism means
  // the same values in the same order, not approximately-equal sums.
  EXPECT_EQ(a.phase1_duration_ms, b.phase1_duration_ms);
  EXPECT_EQ(a.rtr_stretch, b.rtr_stretch);
  EXPECT_EQ(a.fcp_stretch, b.fcp_stretch);
  EXPECT_EQ(a.mrc_stretch, b.mrc_stretch);
  EXPECT_EQ(a.rtr_calcs, b.rtr_calcs);
  EXPECT_EQ(a.fcp_calcs, b.fcp_calcs);
  EXPECT_EQ(a.rtr_bytes_timeline, b.rtr_bytes_timeline);
  EXPECT_EQ(a.fcp_bytes_timeline, b.fcp_bytes_timeline);
}

void expect_identical(const exp::IrrecoverableResults& a,
                      const exp::IrrecoverableResults& b) {
  EXPECT_EQ(a.topo, b.topo);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.rtr_delivered, b.rtr_delivered);
  EXPECT_EQ(a.fcp_delivered, b.fcp_delivered);
  EXPECT_EQ(a.phase1_duration_ms, b.phase1_duration_ms);
  EXPECT_EQ(a.rtr_wasted_comp, b.rtr_wasted_comp);
  EXPECT_EQ(a.fcp_wasted_comp, b.fcp_wasted_comp);
  EXPECT_EQ(a.rtr_wasted_trans, b.rtr_wasted_trans);
  EXPECT_EQ(a.fcp_wasted_trans, b.fcp_wasted_trans);
}

TEST_F(EngineDeterminism, RecoverableBitIdenticalAcrossThreadCounts) {
  const exp::RecoverableResults serial =
      exp::run_recoverable(ctx_, scenarios_, opts_with(1));
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const exp::RecoverableResults parallel =
        exp::run_recoverable(ctx_, scenarios_, opts_with(threads));
    expect_identical(serial, parallel);
  }
}

TEST_F(EngineDeterminism, IrrecoverableBitIdenticalAcrossThreadCounts) {
  const exp::IrrecoverableResults serial =
      exp::run_irrecoverable(ctx_, scenarios_, opts_with(1));
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const exp::IrrecoverableResults parallel =
        exp::run_irrecoverable(ctx_, scenarios_, opts_with(threads));
    expect_identical(serial, parallel);
  }
}

TEST_F(EngineDeterminism, RepeatedRunsReproduce) {
  // Same inputs, same thread count -> same outputs (no hidden state).
  const exp::RecoverableResults a =
      exp::run_recoverable(ctx_, scenarios_, opts_with(8));
  const exp::RecoverableResults b =
      exp::run_recoverable(ctx_, scenarios_, opts_with(8));
  expect_identical(a, b);
}

// ---------------------------------------------------- SPT tie-breaking --

/// Equal-cost diamond: 0 -> {1, 2} -> 3, all unit costs.  Both
/// two-hop paths tie, so the documented "smaller parent id wins" rule
/// must pick node 1 as 3's parent no matter the link insertion order.
graph::Graph diamond(bool reverse_insertion) {
  graph::GraphBuilder g;
  const NodeId a = g.add_node({0.0, 0.0});
  const NodeId b = g.add_node({1.0, 1.0});
  const NodeId c = g.add_node({1.0, -1.0});
  const NodeId d = g.add_node({2.0, 0.0});
  if (reverse_insertion) {
    g.add_link(a, c);
    g.add_link(a, b);
    g.add_link(c, d);
    g.add_link(b, d);
  } else {
    g.add_link(a, b);
    g.add_link(a, c);
    g.add_link(b, d);
    g.add_link(c, d);
  }
  return g.build();
}

TEST(SptTieBreak, DijkstraSmallerParentWinsOnDiamond) {
  for (bool reversed : {false, true}) {
    const graph::Graph g = diamond(reversed);
    const spf::SptResult r = spf::dijkstra_from(g, 0);
    EXPECT_DOUBLE_EQ(r.dist[3], 2.0);
    EXPECT_EQ(r.parent[3], 1u) << "insertion order reversed=" << reversed;
    EXPECT_EQ(r.parent_link[3], g.find_link(1, 3));
  }
}

TEST(SptTieBreak, BfsSmallerParentWinsOnDiamond) {
  for (bool reversed : {false, true}) {
    const graph::Graph g = diamond(reversed);
    const spf::SptResult r = spf::bfs_from(g, 0);
    EXPECT_DOUBLE_EQ(r.dist[3], 2.0);
    EXPECT_EQ(r.parent[3], 1u);
  }
}

TEST(SptCache, MemoisesAndMatchesDirectRuns) {
  const graph::Graph g = diamond(false);
  spf::SptCache cache(g, {});
  EXPECT_EQ(cache.trees_computed(), 0u);
  EXPECT_DOUBLE_EQ(cache.dist(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(cache.dist(0, 1), 1.0);
  EXPECT_EQ(cache.trees_computed(), 1u);  // second query hit the cache
  const spf::SptResult direct = spf::bfs_from(g, 0);
  EXPECT_EQ(cache.from(0)->dist, direct.dist);
  // On the diamond the canonicalized parents the cache hands out agree
  // with raw BFS discovery order (smaller id discovered first).
  EXPECT_EQ(cache.from(0)->parent, direct.parent);
}

// -------------------------------------------------------------- Rng fork --

TEST(RngFork, ChildStreamsDifferFromParentAndSiblings) {
  Rng root(20120618);
  Rng a = root.fork();
  Rng b = root.fork();
  Rng parent_copy(20120618);

  const auto draw = [](Rng& r) {
    std::vector<std::uint64_t> v;
    for (int i = 0; i < 16; ++i) v.push_back(r.engine()());
    return v;
  };
  const auto va = draw(a);
  const auto vb = draw(b);
  const auto vp = draw(parent_copy);
  EXPECT_NE(va, vb);
  EXPECT_NE(va, vp);
  EXPECT_NE(vb, vp);
}

TEST(RngFork, SameRootSeedReproducesForks) {
  Rng r1(7);
  Rng r2(7);
  Rng c1 = r1.fork();
  Rng c2 = r2.fork();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(c1.engine()(), c2.engine()());
  }
  // Second fork of the same root also reproduces.
  Rng d1 = r1.fork();
  Rng d2 = r2.fork();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(d1.engine()(), d2.engine()());
  }
}

TEST(RngFork, ScenarioGenerationStillReproducible) {
  // The experiment pipeline seeded from one root seed keeps producing
  // identical workloads after the fork() seeding change.
  const exp::TopologyContext ctx =
      exp::make_context(graph::spec_by_name("AS209"));
  exp::CaseBudget budget;
  budget.recoverable = 40;
  budget.irrecoverable = 20;
  const auto a = exp::generate_scenarios(ctx, fail::ScenarioConfig{},
                                         budget, 4242);
  const auto b = exp::generate_scenarios(ctx, fail::ScenarioConfig{},
                                         budget, 4242);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].area.circle().center, b[i].area.circle().center);
    ASSERT_EQ(a[i].recoverable.size(), b[i].recoverable.size());
    for (std::size_t j = 0; j < a[i].recoverable.size(); ++j) {
      EXPECT_EQ(a[i].recoverable[j].initiator,
                b[i].recoverable[j].initiator);
      EXPECT_EQ(a[i].recoverable[j].dest, b[i].recoverable[j].dest);
    }
  }
}

}  // namespace
}  // namespace rtr
