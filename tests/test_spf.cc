#include <gtest/gtest.h>

#include "common/expect.h"
#include "common/rng.h"
#include "graph/gen/generators.h"
#include "graph/gen/isp_gen.h"
#include "graph/paper_topology.h"
#include "spf/incremental.h"
#include "spf/path.h"
#include "spf/routing_table.h"
#include "spf/shortest_path.h"

namespace rtr::spf {
namespace {

using graph::Graph;

graph::GraphBuilder diamond_builder() {
  // 0 -1- 1 -1- 3,  0 -1- 2 -3- 3 : shortest 0->3 goes via 1.
  graph::GraphBuilder g;
  g.add_node({0, 0});
  g.add_node({10, 10});
  g.add_node({10, -10});
  g.add_node({20, 0});
  g.add_link(0, 1, 1.0);
  g.add_link(0, 2, 1.0);
  g.add_link(1, 3, 1.0);
  g.add_link(2, 3, 3.0);
  return g;
}

Graph diamond() { return diamond_builder().build(); }

TEST(Dijkstra, PicksCheaperRoute) {
  const Graph g = diamond();
  const SptResult r = dijkstra_from(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[3], 2.0);
  const Path p = extract_path(g, r, 3);
  ASSERT_EQ(p.nodes.size(), 3u);
  EXPECT_EQ(p.nodes[1], 1u);
  EXPECT_TRUE(valid_path(g, p));
}

TEST(Dijkstra, MaskedLinkForcesDetour) {
  const Graph g = diamond();
  std::vector<char> lm(g.num_links(), 0);
  lm[g.find_link(1, 3)] = 1;
  const SptResult r = dijkstra_from(g, 0, {nullptr, &lm});
  EXPECT_DOUBLE_EQ(r.dist[3], 4.0);
}

TEST(Dijkstra, MaskedNodeForcesDetour) {
  const Graph g = diamond();
  std::vector<char> nm(g.num_nodes(), 0);
  nm[1] = 1;
  const SptResult r = dijkstra_from(g, 0, {&nm, nullptr});
  EXPECT_DOUBLE_EQ(r.dist[3], 4.0);
  EXPECT_FALSE(r.reachable(1));
}

TEST(Dijkstra, UnreachableIsInfinite) {
  graph::GraphBuilder b = diamond_builder();
  b.add_node({100, 100});
  const Graph g = b.build();
  const SptResult r = dijkstra_from(g, 0);
  EXPECT_FALSE(r.reachable(4));
  EXPECT_TRUE(extract_path(g, r, 4).empty());
}

TEST(Dijkstra, AsymmetricCosts) {
  graph::GraphBuilder b;
  b.add_node({0, 0});
  b.add_node({10, 0});
  b.add_link_asym(0, 1, 1.0, 5.0);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(dijkstra_from(g, 0).dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dijkstra_from(g, 1).dist[0], 5.0);
  // dijkstra_to measures path cost *towards* the target.
  EXPECT_DOUBLE_EQ(dijkstra_to(g, 1).dist[0], 1.0);
  EXPECT_DOUBLE_EQ(dijkstra_to(g, 0).dist[1], 5.0);
}

TEST(Bfs, MatchesDijkstraOnUnitCosts) {
  const Graph g = graph::fig1_graph();
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const SptResult b = bfs_from(g, s);
    const SptResult d = dijkstra_from(g, s);
    for (NodeId t = 0; t < g.node_count(); ++t) {
      EXPECT_DOUBLE_EQ(b.dist[t], d.dist[t]) << s << "->" << t;
    }
  }
}

TEST(Bfs, DeterministicParents) {
  const Graph g = graph::fig1_graph();
  const SptResult a = bfs_from(g, 6);
  const SptResult b = bfs_from(g, 6);
  EXPECT_EQ(a.parent, b.parent);
}

TEST(ShortestPathHelper, EndToEnd) {
  const Graph g = diamond();
  const Path p = shortest_path(g, 0, 3);
  EXPECT_DOUBLE_EQ(p.cost, 2.0);
  EXPECT_EQ(p.source(), 0u);
  EXPECT_EQ(p.destination(), 3u);
  EXPECT_EQ(p.hops(), 2u);
}

TEST(PathChecks, DetectBrokenPaths) {
  const Graph g = diamond();
  Path p = shortest_path(g, 0, 3);
  EXPECT_TRUE(valid_path(g, p));
  Path bad = p;
  bad.nodes[1] = 2;  // link 0 does not join 0 and 2 in this order
  EXPECT_FALSE(valid_path(g, bad));
  Path wrong_cost = p;
  wrong_cost.cost += 1.0;
  EXPECT_FALSE(valid_path(g, wrong_cost));
  Path empty;
  EXPECT_TRUE(valid_path(g, empty));
  EXPECT_EQ(path_cost(g, empty), kInfCost);
}

// ------------------------------------------------------------ routing table

TEST(RoutingTable, NextHopsDecreaseDistance) {
  const Graph g = graph::fig1_graph();
  const RoutingTable rt(g);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (u == t) {
        EXPECT_EQ(rt.next_hop(u, t), kNoNode);
        continue;
      }
      const NodeId nh = rt.next_hop(u, t);
      ASSERT_NE(nh, kNoNode);
      EXPECT_DOUBLE_EQ(rt.distance(nh, t), rt.distance(u, t) - 1.0);
    }
  }
}

TEST(RoutingTable, RouteMatchesShortestDistance) {
  const Graph g = graph::fig1_graph();
  const RoutingTable rt(g);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId t = 0; t < g.node_count(); ++t) {
      if (u == t) continue;
      const Path p = rt.route(u, t);
      EXPECT_TRUE(valid_path(g, p));
      EXPECT_DOUBLE_EQ(static_cast<double>(p.hops()), rt.distance(u, t));
    }
  }
}

TEST(RoutingTable, PaperDefaultPath) {
  // Section II-B: "the routing path from v7 to v17 is
  // v7 -> v6 -> v11 -> v15 -> v17".
  const Graph g = graph::fig1_graph();
  const RoutingTable rt(g);
  const Path p =
      rt.route(graph::paper_node(7), graph::paper_node(17));
  const std::vector<NodeId> expected = {
      graph::paper_node(7), graph::paper_node(6), graph::paper_node(11),
      graph::paper_node(15), graph::paper_node(17)};
  EXPECT_EQ(p.nodes, expected);
}

TEST(RoutingTable, WeightedMetric) {
  const Graph g = diamond();
  const RoutingTable rt(g, RoutingTable::Metric::kLinkCost);
  EXPECT_EQ(rt.next_hop(0, 3), 1u);
  EXPECT_DOUBLE_EQ(rt.distance(0, 3), 2.0);
}

TEST(RoutingTable, TieBreakIsSmallestNeighbor) {
  // Square: two equal-hop routes 0->3 via 1 or 2; next hop must be 1.
  graph::GraphBuilder b;
  b.add_node({0, 0});
  b.add_node({10, 0});
  b.add_node({0, 10});
  b.add_node({10, 10});
  b.add_link(0, 1);
  b.add_link(0, 2);
  b.add_link(1, 3);
  b.add_link(2, 3);
  const Graph g = b.build();
  const RoutingTable rt(g);
  EXPECT_EQ(rt.next_hop(0, 3), 1u);
}

// -------------------------------------------------------------- incremental

class IncrementalVsFull : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalVsFull, DistancesMatchAfterBatchRemovals) {
  Rng rng(GetParam());
  const Graph g =
      graph::make_isp_topology(graph::spec_by_name("AS209"));
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId root = static_cast<NodeId>(rng.index(g.num_nodes()));
    IncrementalSpt inc(g, root);
    std::vector<char> removed(g.num_links(), 0);
    // Three successive removal batches.
    for (int batch = 0; batch < 3; ++batch) {
      std::vector<LinkId> batch_links;
      for (int i = 0; i < 8; ++i) {
        const LinkId l = static_cast<LinkId>(rng.index(g.num_links()));
        if (!removed[l]) {
          removed[l] = 1;
          batch_links.push_back(l);
        }
      }
      inc.remove_links(batch_links);
      const SptResult full = dijkstra_from(g, root, {nullptr, &removed});
      for (NodeId n = 0; n < g.node_count(); ++n) {
        ASSERT_DOUBLE_EQ(inc.dist(n), full.dist[n])
            << "root=" << root << " node=" << n << " batch=" << batch;
      }
    }
  }
}

TEST_P(IncrementalVsFull, RestoreUndoesRemoval) {
  Rng rng(GetParam() ^ 0x5555);
  const Graph g =
      graph::make_isp_topology(graph::spec_by_name("AS1239"));
  const NodeId root = static_cast<NodeId>(rng.index(g.num_nodes()));
  const SptResult before = dijkstra_from(g, root);
  IncrementalSpt inc(g, root);
  std::vector<LinkId> removed;
  for (int i = 0; i < 10; ++i) {
    removed.push_back(static_cast<LinkId>(rng.index(g.num_links())));
  }
  inc.remove_links(removed);
  for (LinkId l : removed) {
    if (inc.link_removed(l)) inc.restore_link(l);
  }
  for (NodeId n = 0; n < g.node_count(); ++n) {
    EXPECT_DOUBLE_EQ(inc.dist(n), before.dist[n]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalVsFull,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Incremental, NodeRemoval) {
  const Graph g = diamond();
  IncrementalSpt inc(g, 0);
  inc.remove_node(1);
  EXPECT_FALSE(inc.reachable(1));
  EXPECT_DOUBLE_EQ(inc.dist(3), 4.0);  // forced via node 2
  std::vector<char> nm(g.num_nodes(), 0);
  nm[1] = 1;
  const SptResult full = dijkstra_from(g, 0, {&nm, nullptr});
  for (NodeId n = 0; n < g.node_count(); ++n) {
    EXPECT_DOUBLE_EQ(inc.dist(n), full.dist[n]);
  }
}

TEST(Incremental, CannotRemoveRoot) {
  const Graph g = diamond();
  IncrementalSpt inc(g, 0);
  EXPECT_THROW(inc.remove_node(0), ContractViolation);
}

TEST(Incremental, PathToTracksUpdates) {
  const Graph g = diamond();
  IncrementalSpt inc(g, 0);
  EXPECT_EQ(inc.path_to(3).hops(), 2u);
  inc.remove_link(g.find_link(1, 3));
  const Path p = inc.path_to(3);
  EXPECT_TRUE(valid_path(g, p));
  EXPECT_EQ(p.nodes[1], 2u);
  EXPECT_GT(inc.last_update_touched(), 0u);
}

TEST(Incremental, DisconnectionYieldsUnreachable) {
  const Graph g = diamond();
  IncrementalSpt inc(g, 0);
  inc.remove_links({g.find_link(0, 1), g.find_link(0, 2)});
  EXPECT_FALSE(inc.reachable(3));
  EXPECT_TRUE(inc.path_to(3).empty());
}

}  // namespace
}  // namespace rtr::spf
