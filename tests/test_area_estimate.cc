#include <gtest/gtest.h>

#include "common/expect.h"
#include "common/rng.h"
#include "core/area_estimate.h"
#include "failure/scenario.h"
#include "geom/convex_hull.h"
#include "graph/gen/isp_gen.h"
#include "graph/paper_topology.h"

namespace rtr {
namespace {

// ------------------------------------------------------- convex hull

TEST(ConvexHull, SquareWithInteriorPoints) {
  const std::vector<geom::Point> pts = {
      {0, 0}, {10, 0}, {10, 10}, {0, 10}, {5, 5}, {3, 7}, {1, 1}};
  const auto hull = geom::convex_hull(pts);
  ASSERT_EQ(hull.size(), 4u);
  // Counterclockwise with positive area.
  const geom::Polygon poly(hull);
  EXPECT_DOUBLE_EQ(poly.signed_area(), 100.0);
  for (const geom::Point& p : pts) {
    // Every input point is inside or on the hull (strict contains is
    // false on the boundary, so test with a slight shrink towards the
    // centroid instead).
    const geom::Point towards_center = p + (geom::Point{5, 5} - p) * 0.01;
    EXPECT_TRUE(poly.contains(towards_center));
  }
}

TEST(ConvexHull, CollinearAndDegenerate) {
  EXPECT_TRUE(geom::convex_hull({}).empty());
  EXPECT_EQ(geom::convex_hull({{1, 1}}).size(), 1u);
  EXPECT_EQ(geom::convex_hull({{1, 1}, {1, 1}}).size(), 1u);
  EXPECT_EQ(geom::convex_hull({{0, 0}, {5, 5}}).size(), 2u);
  // All collinear: monotone chain keeps the two extremes.
  const auto line = geom::convex_hull({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_EQ(line.size(), 2u);
  EXPECT_THROW(geom::convex_hull_polygon({{0, 0}, {1, 1}, {2, 2}}),
               ContractViolation);
}

TEST(ConvexHull, RandomPointsAllContained) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<geom::Point> pts;
    geom::Point centroid{0, 0};
    for (int i = 0; i < 40; ++i) {
      pts.push_back({rng.uniform_real(0, 100), rng.uniform_real(0, 100)});
      centroid = centroid + pts.back();
    }
    centroid = centroid * (1.0 / 40.0);
    const auto hull = geom::convex_hull(pts);
    ASSERT_GE(hull.size(), 3u);
    const geom::Polygon poly(hull);
    EXPECT_GT(poly.signed_area(), 0.0);  // counterclockwise
    for (const geom::Point& p : pts) {
      const geom::Point inner = p + (centroid - p) * 0.001;
      EXPECT_TRUE(poly.contains(inner));
    }
  }
}

// --------------------------------------------------- area estimation

TEST(AreaEstimate, WorkedExampleLocalisesTheDisaster) {
  const graph::Graph g = graph::fig1_graph();
  const graph::CrossingIndex idx(g);
  const geom::Circle truth = graph::fig1_failure_area();
  const fail::CircleArea area(truth);
  const fail::FailureSet fs(g, area, fail::LinkCutRule::kGeometric);
  const core::Phase1Result p1 =
      core::run_phase1(g, idx, fs, graph::paper_node(6),
                       g.find_link(graph::paper_node(6),
                                   graph::paper_node(11)));
  const core::AreaEstimate est = core::estimate_failure_area(g, fs, p1);
  ASSERT_TRUE(est.bounding_circle.has_value());
  // The estimate centroid lands near the true center.
  EXPECT_LT(geom::distance(est.bounding_circle->center, truth.center),
            truth.radius * 1.5);
  // Evidence: 5 collected + 1 own observed failed link.
  EXPECT_EQ(est.evidence.size(), 6u);
  EXPECT_TRUE(est.hull.has_value());
}

TEST(AreaEstimate, EvidenceCoverageAgainstTruth) {
  const graph::Graph g = graph::fig1_graph();
  const graph::CrossingIndex idx(g);
  const fail::CircleArea area(graph::fig1_failure_area());
  const fail::FailureSet fs(g, area, fail::LinkCutRule::kGeometric);
  const core::Phase1Result p1 =
      core::run_phase1(g, idx, fs, graph::paper_node(6),
                       g.find_link(graph::paper_node(6),
                                   graph::paper_node(11)));
  const core::AreaEstimate est = core::estimate_failure_area(g, fs, p1);
  // The true area contains part of the evidence; most midpoints of
  // endpoint-dead links fall just outside this small circle, so any
  // positive coverage plus zero coverage of a wrong area is the signal.
  EXPECT_GT(core::evidence_coverage(est, area), 0.1);
  // A far-away candidate area contains none of it.
  const fail::CircleArea wrong({1800.0, 1800.0}, 100.0);
  EXPECT_DOUBLE_EQ(core::evidence_coverage(est, wrong), 0.0);
}

TEST(AreaEstimate, RandomAreasAreBracketedByTheBoundingCircle) {
  const graph::Graph g =
      graph::make_isp_topology(graph::spec_by_name("AS209"));
  const graph::CrossingIndex idx(g);
  Rng rng(17);
  const fail::ScenarioConfig cfg;
  int checked = 0;
  for (int trial = 0; trial < 40 && checked < 15; ++trial) {
    const fail::CircleArea area = fail::random_circle_area(cfg, rng);
    const fail::FailureSet fs(g, area, fail::LinkCutRule::kGeometric);
    if (fs.num_failed_links() < 4) continue;
    for (NodeId n = 0; n < g.node_count(); ++n) {
      if (fs.node_failed(n) || fs.observed_failed_links(g, n).empty()) {
        continue;
      }
      const auto obs = fs.observed_failed_links(g, n);
      const core::Phase1Result p1 =
          core::run_phase1(g, idx, fs, n, obs.front());
      if (!p1.completed() || p1.header.failed_links.size() < 3) break;
      const core::AreaEstimate est =
          core::estimate_failure_area(g, fs, p1);
      ASSERT_TRUE(est.bounding_circle.has_value());
      ++checked;
      // The bounding circle must overlap the true area: centers within
      // the sum of radii.
      EXPECT_LT(geom::distance(est.bounding_circle->center,
                               area.circle().center),
                est.bounding_circle->radius + area.circle().radius);
      break;
    }
  }
  EXPECT_GE(checked, 5);
}

TEST(AreaEstimate, NoEvidenceYieldsEmptyEstimate) {
  // An isolated-initiator phase 1 collects nothing and observes links
  // only through the initiator itself; with a failed single link and
  // no traversal, evidence reduces to the initiator's own observation.
  graph::GraphBuilder b;
  b.add_node({0, 0});
  b.add_node({10, 0});
  const LinkId dead = b.add_link(0, 1);
  const graph::Graph g = b.build();
  const graph::CrossingIndex idx(g);
  const fail::FailureSet fs = fail::FailureSet::of_links(g, {dead});
  const core::Phase1Result p1 = core::run_phase1(g, idx, fs, 0, dead);
  EXPECT_EQ(p1.status, core::Phase1Result::Status::kInitiatorIsolated);
  const core::AreaEstimate est = core::estimate_failure_area(g, fs, p1);
  ASSERT_EQ(est.evidence.size(), 1u);  // the observed link midpoint
  EXPECT_TRUE(est.bounding_circle.has_value());
  EXPECT_FALSE(est.hull.has_value());
}

}  // namespace
}  // namespace rtr
