#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

#include "exp/bench_config.h"
#include "exp/cases.h"
#include "exp/context.h"
#include "exp/runners.h"
#include "graph/paper_topology.h"
#include "graph/properties.h"

namespace rtr::exp {
namespace {

using graph::paper_node;

double stats_mean(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x;
  return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
}

TopologyContext paper_context() {
  return TopologyContext("paper", graph::fig1_graph());
}

TEST(ExtractScenario, WorkedExampleCases) {
  const TopologyContext ctx = paper_context();
  const fail::CircleArea area(graph::fig1_failure_area());
  FailedPathCounts counts;
  // The worked example depends on the stated geometric model (e6,11 is
  // cut without a dead endpoint).
  const Scenario sc = extract_scenario(ctx, area, &counts,
                                       fail::LinkCutRule::kGeometric);

  EXPECT_GT(counts.failed, 0u);
  EXPECT_GE(counts.failed, counts.irrecoverable);
  EXPECT_FALSE(sc.recoverable.empty());
  EXPECT_FALSE(sc.irrecoverable.empty());

  // The Section II-B case: traffic from v7 to v17 fails at e6,11, so
  // (initiator v6, dest v17) must appear as a recoverable test case.
  bool found = false;
  for (const TestCase& tc : sc.recoverable) {
    if (tc.initiator == paper_node(6) && tc.dest == paper_node(17)) {
      found = true;
      EXPECT_EQ(tc.dead_link,
                ctx.g.find_link(paper_node(6), paper_node(11)));
    }
  }
  EXPECT_TRUE(found);
  // Destinations inside the failure area are irrecoverable.
  for (const TestCase& tc : sc.irrecoverable) {
    const bool dead_dest = sc.failure.node_failed(tc.dest);
    const bool partitioned = !graph::reachable(
        ctx.g, tc.initiator, tc.dest, sc.failure.masks());
    EXPECT_TRUE(dead_dest || partitioned);
  }
}

TEST(ExtractScenario, CasesAreDeduplicatedAndValid) {
  const TopologyContext ctx = paper_context();
  const Scenario sc =
      extract_scenario(ctx, fail::CircleArea(graph::fig1_failure_area()),
                       nullptr, fail::LinkCutRule::kGeometric);
  std::unordered_set<std::uint64_t> keys;
  const auto check = [&](const std::vector<TestCase>& cases) {
    for (const TestCase& tc : cases) {
      EXPECT_FALSE(sc.failure.node_failed(tc.initiator));
      EXPECT_NE(tc.initiator, tc.dest);
      // The initiator's default next hop towards dest is unreachable.
      const LinkId l = ctx.rt.next_link(tc.initiator, tc.dest);
      EXPECT_EQ(l, tc.dead_link);
      const NodeId nh = ctx.rt.next_hop(tc.initiator, tc.dest);
      EXPECT_TRUE(sc.failure.link_failed(l) ||
                  sc.failure.node_failed(nh));
      const std::uint64_t key =
          static_cast<std::uint64_t>(tc.initiator) * ctx.g.num_nodes() +
          tc.dest;
      EXPECT_TRUE(keys.insert(key).second) << "duplicate test case";
    }
  };
  check(sc.recoverable);
  check(sc.irrecoverable);
}

TEST(ExtractScenario, EmptyAreaYieldsNothing) {
  const TopologyContext ctx = paper_context();
  const Scenario sc =
      extract_scenario(ctx, fail::CircleArea({1900.0, 1900.0}, 20.0));
  EXPECT_TRUE(sc.recoverable.empty());
  EXPECT_TRUE(sc.irrecoverable.empty());
  EXPECT_TRUE(sc.failure.empty());
}

TEST(GenerateScenarios, MeetsBudgetExactly) {
  const TopologyContext ctx =
      make_context(graph::spec_by_name("AS1239"));
  CaseBudget budget;
  budget.recoverable = 150;
  budget.irrecoverable = 80;
  const auto scenarios =
      generate_scenarios(ctx, fail::ScenarioConfig{}, budget, 4242);
  std::size_t rec = 0;
  std::size_t irr = 0;
  for (const Scenario& sc : scenarios) {
    rec += sc.recoverable.size();
    irr += sc.irrecoverable.size();
  }
  EXPECT_EQ(rec, budget.recoverable);
  EXPECT_EQ(irr, budget.irrecoverable);
}

TEST(GenerateScenarios, DeterministicInSeed) {
  const TopologyContext ctx =
      make_context(graph::spec_by_name("AS1239"));
  CaseBudget budget;
  budget.recoverable = 50;
  budget.irrecoverable = 20;
  const auto a =
      generate_scenarios(ctx, fail::ScenarioConfig{}, budget, 7);
  const auto b =
      generate_scenarios(ctx, fail::ScenarioConfig{}, budget, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].area.circle().center, b[i].area.circle().center);
    EXPECT_EQ(a[i].recoverable.size(), b[i].recoverable.size());
  }
}

// ----------------------------------------------------------- runners -----

class RunnerSmoke : public ::testing::Test {
 protected:
  RunnerSmoke() : ctx_(make_context(graph::spec_by_name("AS209"))) {
    CaseBudget budget;
    budget.recoverable = 300;
    budget.irrecoverable = 150;
    scenarios_ =
        generate_scenarios(ctx_, fail::ScenarioConfig{}, budget, 99);
  }

  TopologyContext ctx_;
  std::vector<Scenario> scenarios_;
};

TEST_F(RunnerSmoke, RecoverableInvariants) {
  const RecoverableResults r = run_recoverable(ctx_, scenarios_);
  EXPECT_EQ(r.cases, 300u);
  EXPECT_EQ(r.rtr_phase1_aborted, 0u);  // Theorem 1

  // Theorem 2: every recovered RTR case is optimal, so the two rates
  // coincide and every stretch sample is exactly 1.
  EXPECT_EQ(r.rtr_recovered, r.rtr_optimal);
  for (double s : r.rtr_stretch) EXPECT_DOUBLE_EQ(s, 1.0);

  // FCP always delivers on recoverable cases, with stretch >= 1.
  EXPECT_EQ(r.fcp_recovered, r.cases);
  EXPECT_GE(r.fcp_recovered, r.fcp_optimal);
  for (double s : r.fcp_stretch) EXPECT_GE(s, 1.0);

  // RTR does exactly one SP calculation per case.
  ASSERT_EQ(r.rtr_calcs.size(), r.cases);
  for (double c : r.rtr_calcs) EXPECT_DOUBLE_EQ(c, 1.0);
  for (double c : r.fcp_calcs) EXPECT_GE(c, 1.0);

  // MRC cannot beat a reactive scheme here.
  EXPECT_LE(r.mrc_recovered, r.cases);
  EXPECT_LE(r.mrc_optimal, r.mrc_recovered);
  EXPECT_LT(r.mrc_recovered, r.fcp_recovered);

  // Recovery rates in a plausible band (shape check).
  EXPECT_GT(static_cast<double>(r.rtr_recovered), 0.85 * r.cases);

  // Fig. 10 shape: the RTR timeline eventually drops to the steady
  // source-route level, below its phase-1 peak.
  ASSERT_EQ(r.rtr_bytes_timeline.size(), 1000u);
  double rtr_peak = 0.0;
  for (double v : r.rtr_bytes_timeline) rtr_peak = std::max(rtr_peak, v);
  EXPECT_GT(rtr_peak, 0.0);
  EXPECT_LT(r.rtr_bytes_timeline.back(), rtr_peak);
}

TEST_F(RunnerSmoke, IrrecoverableInvariants) {
  const IrrecoverableResults r = run_irrecoverable(ctx_, scenarios_);
  EXPECT_EQ(r.cases, 150u);
  // Unreachable destinations are never reached, by anyone.
  EXPECT_EQ(r.rtr_delivered, 0u);
  EXPECT_EQ(r.fcp_delivered, 0u);

  // RTR wastes exactly one SP calculation per case (Fig. 12).
  for (double c : r.rtr_wasted_comp) EXPECT_DOUBLE_EQ(c, 1.0);
  // FCP tries every option before giving up: strictly more on average.
  const double rtr_avg = stats_mean(r.rtr_wasted_comp);
  const double fcp_avg = stats_mean(r.fcp_wasted_comp);
  EXPECT_GT(fcp_avg, rtr_avg);

  // Wasted transmission: RTR is bounded by its rare missed-failure
  // walks; FCP pays for its exploration (Fig. 13 / Table IV shape).
  EXPECT_GT(stats_mean(r.fcp_wasted_trans),
            stats_mean(r.rtr_wasted_trans));
}

TEST_F(RunnerSmoke, RadiusSweepShapeGeometricRule) {
  // Under the stated geometric model the irrecoverable share rises
  // with the radius, like the curves of Fig. 11.
  const auto pts = radius_sweep(ctx_, {20.0, 150.0, 300.0}, 300, 5,
                                2000.0, fail::LinkCutRule::kGeometric);
  ASSERT_EQ(pts.size(), 3u);
  for (const RadiusPoint& p : pts) {
    EXPECT_GT(p.failed_paths, 0u);
    EXPECT_LE(p.irrecoverable_paths, p.failed_paths);
    EXPECT_LE(p.pct_irrecoverable(), 100.0);
  }
  EXPECT_LT(pts.front().pct_irrecoverable(),
            pts.back().pct_irrecoverable());
}

TEST_F(RunnerSmoke, RadiusSweepShapeEndpointRule) {
  // Under the endpoint rule every failure involves a dead router, so a
  // large share of failed paths is irrecoverable at *every* radius --
  // the paper's ">20% even at radius 20" observation.  Small radii
  // rarely enclose a router, hence the many areas.
  const auto pts = radius_sweep(ctx_, {20.0, 300.0}, 600, 5, 2000.0,
                                fail::LinkCutRule::kEndpointsOnly);
  ASSERT_EQ(pts.size(), 2u);
  for (const RadiusPoint& p : pts) {
    EXPECT_GT(p.failed_paths, 0u);
    EXPECT_GT(p.pct_irrecoverable(), 20.0);
    EXPECT_LE(p.pct_irrecoverable(), 100.0);
  }
}

TEST(BenchConfig, Defaults) {
  const BenchConfig c;
  EXPECT_EQ(c.cases, 10000u);
  EXPECT_EQ(c.fig11_areas, 1000u);
  EXPECT_NE(c.describe().find("seed"), std::string::npos);
}

TEST(BenchConfig, EnvOverride) {
  ::setenv("RTR_CASES", "123", 1);
  ::setenv("RTR_SEED", "77", 1);
  const BenchConfig c = BenchConfig::from_env();
  EXPECT_EQ(c.cases, 123u);
  EXPECT_EQ(c.seed, 77u);
  ::unsetenv("RTR_CASES");
  ::unsetenv("RTR_SEED");
  const BenchConfig d = BenchConfig::from_env();
  EXPECT_EQ(d.cases, 10000u);
}

}  // namespace
}  // namespace rtr::exp
