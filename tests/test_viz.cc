#include <fstream>
#include <gtest/gtest.h>

#include "common/expect.h"
#include "core/rtr.h"
#include "failure/failure_set.h"
#include "graph/paper_topology.h"
#include "viz/svg_export.h"

namespace rtr::viz {
namespace {

using graph::paper_node;

TEST(SvgExport, ContainsAllNodesAndLinks) {
  const graph::Graph g = graph::fig1_graph();
  SvgExporter svg(g);
  const std::string out = svg.to_string();
  EXPECT_NE(out.find("<svg"), std::string::npos);
  EXPECT_NE(out.find("</svg>"), std::string::npos);
  std::size_t circles = 0;
  std::size_t lines = 0;
  for (std::size_t p = out.find("<circle"); p != std::string::npos;
       p = out.find("<circle", p + 1)) {
    ++circles;
  }
  for (std::size_t p = out.find("<line"); p != std::string::npos;
       p = out.find("<line", p + 1)) {
    ++lines;
  }
  EXPECT_EQ(circles, g.num_nodes());
  EXPECT_EQ(lines, g.num_links());
  EXPECT_NE(out.find(">v1<"), std::string::npos);  // labels
  EXPECT_NE(out.find(">v18<"), std::string::npos);
}

TEST(SvgExport, FailureChangesColors) {
  const graph::Graph g = graph::fig1_graph();
  const fail::FailureSet failure(
      g, fail::CircleArea(graph::fig1_failure_area()),
      fail::LinkCutRule::kGeometric);
  SvgExporter svg(g);
  svg.add_failure(failure);
  const std::string out = svg.to_string();
  EXPECT_NE(out.find("#cc2222"), std::string::npos);  // failed elements
}

TEST(SvgExport, OverlaysRender) {
  const graph::Graph g = graph::fig1_graph();
  SvgExporter svg(g);
  svg.add_circle(graph::fig1_failure_area(), "orange");
  svg.add_walk({paper_node(6), paper_node(5), paper_node(4)}, "green");
  svg.add_path({paper_node(6), paper_node(5), paper_node(12)}, "blue");
  svg.highlight_node(paper_node(6), "purple");
  const std::string out = svg.to_string();
  EXPECT_NE(out.find("orange"), std::string::npos);
  EXPECT_NE(out.find("stroke-dasharray='8,5'"), std::string::npos);
  EXPECT_NE(out.find("purple"), std::string::npos);
  std::size_t polylines = 0;
  for (std::size_t p = out.find("<polyline"); p != std::string::npos;
       p = out.find("<polyline", p + 1)) {
    ++polylines;
  }
  EXPECT_EQ(polylines, 2u);
}

TEST(SvgExport, PolygonOverlay) {
  const graph::Graph g = graph::fig1_graph();
  SvgExporter svg(g);
  svg.add_polygon(geom::make_regular_polygon({300, 300}, 100, 6), "red");
  EXPECT_NE(svg.to_string().find("<polygon"), std::string::npos);
}

TEST(SvgExport, SavesToFile) {
  const graph::Graph g = graph::fig1_planar_graph();
  SvgExporter svg(g);
  const std::string path = ::testing::TempDir() + "/fig.svg";
  svg.save(path);
  std::ifstream f(path);
  EXPECT_TRUE(f.good());
  EXPECT_THROW(svg.save("/nonexistent/dir/x.svg"), std::runtime_error);
}

TEST(SvgExport, RejectsEmptyGraphAndBadNodes) {
  graph::Graph empty;
  EXPECT_THROW(SvgExporter svg(empty), ContractViolation);
  const graph::Graph g = graph::fig1_graph();
  SvgExporter svg(g);
  EXPECT_THROW(svg.highlight_node(999, "red"), ContractViolation);
}

}  // namespace
}  // namespace rtr::viz
