#include <gtest/gtest.h>

#include "baselines/mrc.h"
#include "common/expect.h"
#include "common/rng.h"
#include "failure/scenario.h"
#include "graph/gen/isp_gen.h"
#include "graph/paper_topology.h"
#include "spf/shortest_path.h"

namespace rtr::baseline {
namespace {

using fail::CircleArea;
using fail::FailureSet;
using graph::Graph;

struct MrcRig {
  Graph g;
  spf::RoutingTable rt;
  Mrc mrc;

  explicit MrcRig(Graph graph)
      : g(std::move(graph)), rt(g), mrc(g, rt) {}
};

TEST(Mrc, EveryNodeIsolatedInAtMostOneConfig) {
  MrcRig rig(graph::make_isp_topology(graph::spec_by_name("AS209")));
  std::size_t unprotected = 0;
  std::vector<std::size_t> per_config(rig.mrc.num_configs(), 0);
  for (NodeId v = 0; v < rig.g.node_count(); ++v) {
    const std::size_t c = rig.mrc.config_of(v);
    if (c == Mrc::kNoConfig) {
      ++unprotected;
    } else {
      ASSERT_LT(c, rig.mrc.num_configs());
      ++per_config[c];
    }
  }
  // The assignment must protect nearly everyone and spread the load.
  EXPECT_LE(unprotected, rig.g.num_nodes() / 10);
  for (std::size_t c = 0; c < per_config.size(); ++c) {
    EXPECT_GT(per_config[c], 0u) << "configuration " << c << " unused";
  }
}

TEST(Mrc, IsolatedNodesMatchAssignment) {
  MrcRig rig(graph::make_isp_topology(graph::spec_by_name("AS1239")));
  for (std::size_t c = 0; c < rig.mrc.num_configs(); ++c) {
    for (NodeId v : rig.mrc.isolated_nodes(c)) {
      EXPECT_EQ(rig.mrc.config_of(v), c);
    }
  }
}

TEST(Mrc, BackbonesAreConnected) {
  // The MRC validity invariant: removing the isolated nodes of any
  // configuration leaves the backbone connected.
  for (const char* name : {"AS209", "AS1239", "AS4323"}) {
    MrcRig rig(graph::make_isp_topology(graph::spec_by_name(name)));
    for (std::size_t c = 0; c < rig.mrc.num_configs(); ++c) {
      EXPECT_TRUE(rig.mrc.backbone_connected(c)) << name << " cfg " << c;
    }
  }
}

TEST(Mrc, NoFailureMeansDefaultDelivery) {
  MrcRig rig(graph::make_isp_topology(graph::spec_by_name("AS209")));
  const FailureSet none(rig.g);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const NodeId s = static_cast<NodeId>(rng.index(rig.g.num_nodes()));
    const NodeId t = static_cast<NodeId>(rng.index(rig.g.num_nodes()));
    if (s == t) continue;
    const Mrc::Result r = rig.mrc.forward(none, s, t);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.config_switches, 0u);
    EXPECT_DOUBLE_EQ(static_cast<double>(r.hops), rig.rt.distance(s, t));
  }
}

TEST(Mrc, RecoversFromSingleNodeFailure) {
  // MRC's home turf: a single failed node.  For protected nodes the
  // switch must deliver whenever the destination is still reachable.
  MrcRig rig(graph::make_isp_topology(graph::spec_by_name("AS209")));
  Rng rng(9);
  int recovered = 0;
  int attempts = 0;
  for (int i = 0; i < 400 && attempts < 120; ++i) {
    const NodeId dead =
        static_cast<NodeId>(rng.index(rig.g.num_nodes()));
    if (rig.mrc.config_of(dead) == Mrc::kNoConfig) continue;
    const FailureSet fs = FailureSet::of_nodes(rig.g, {dead});
    const NodeId t = static_cast<NodeId>(rng.index(rig.g.num_nodes()));
    if (t == dead) continue;
    // Find a neighbour of `dead` that routes through it.
    for (const graph::Adjacency& a : rig.g.neighbors(dead)) {
      const NodeId u = a.neighbor;
      if (u == t || rig.rt.next_hop(u, t) != dead) continue;
      if (!graph::reachable(rig.g, u, t, fs.masks())) continue;
      ++attempts;
      const Mrc::Result r = rig.mrc.forward(fs, u, t);
      if (r.delivered) ++recovered;
      break;
    }
  }
  ASSERT_GT(attempts, 30);
  // Single-failure recovery should be the overwhelmingly common case.
  EXPECT_GT(recovered * 10, attempts * 8)
      << recovered << "/" << attempts;
}

TEST(Mrc, LargeScaleFailuresOftenDefeatIt) {
  // The paper's point (Table III): under area failures MRC recovers far
  // less often than a reactive scheme, because primary and backup
  // routes die together.  We only require that failures do occur.
  MrcRig rig(graph::make_isp_topology(graph::spec_by_name("AS1239")));
  Rng rng(21);
  const fail::ScenarioConfig cfg;
  int delivered = 0;
  int cases = 0;
  for (int trial = 0; trial < 80 && cases < 300; ++trial) {
    const FailureSet fs(rig.g, fail::random_circle_area(cfg, rng));
    if (fs.empty()) continue;
    const graph::Components comp = graph::components(rig.g, fs.masks());
    for (NodeId n = 0; n < rig.g.node_count(); ++n) {
      if (fs.node_failed(n) ||
          fs.observed_failed_links(rig.g, n).empty()) {
        continue;
      }
      for (NodeId t = 0; t < rig.g.node_count(); ++t) {
        if (t == n || fs.node_failed(t) || comp.id[n] != comp.id[t]) {
          continue;
        }
        ++cases;
        if (rig.mrc.forward(fs, n, t).delivered) ++delivered;
      }
      break;
    }
  }
  ASSERT_GT(cases, 50);
  EXPECT_LT(delivered, cases) << "area failures should defeat MRC "
                                 "sometimes";
}

TEST(Mrc, StretchNeverBelowOptimal) {
  MrcRig rig(graph::make_isp_topology(graph::spec_by_name("AS209")));
  Rng rng(33);
  const fail::ScenarioConfig cfg;
  for (int trial = 0; trial < 30; ++trial) {
    const FailureSet fs(rig.g, fail::random_circle_area(cfg, rng));
    if (fs.empty()) continue;
    for (NodeId n = 0; n < rig.g.node_count(); ++n) {
      if (fs.node_failed(n) ||
          fs.observed_failed_links(rig.g, n).empty()) {
        continue;
      }
      const spf::SptResult truth = spf::bfs_from(rig.g, n, fs.masks());
      for (NodeId t = 0; t < rig.g.node_count(); ++t) {
        if (t == n) continue;
        const Mrc::Result r = rig.mrc.forward(fs, n, t);
        if (r.delivered) {
          EXPECT_GE(static_cast<double>(r.hops), truth.dist[t]);
        }
      }
      break;
    }
  }
}

TEST(Mrc, RejectsFailedInitiator) {
  MrcRig rig(graph::make_isp_topology(graph::spec_by_name("AS209")));
  FailureSet fs = FailureSet::of_nodes(rig.g, {0});
  EXPECT_THROW(rig.mrc.forward(fs, 0, 5), ContractViolation);
}

}  // namespace
}  // namespace rtr::baseline
