// Crash-resume chaos harness (`ctest -L chaos`): SIGKILL a journaled
// sweep at randomized scenario offsets -- including the deliberately
// torn half-frame the crash seam writes -- then resume from the
// surviving journal and demand the final report be BIT-identical to an
// uninterrupted run, at worker counts 1, 2 and 8.
//
// Each run happens in a fork()ed child with a freshly reset metrics
// registry: the killed process and the resumed process really are
// different processes, the journal file is the only state they share,
// and the parent only ever diffs the report files the children wrote.
// The report is the full RecoverableResults/IrrecoverableResults field
// set (doubles in hexfloat, so "equal" means equal bits) plus the
// deterministic stable-metrics JSON document.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exp/cases.h"
#include "exp/context.h"
#include "exp/runners.h"
#include "graph/gen/isp_gen.h"
#include "ledger/journal.h"
#include "obs/emit.h"
#include "obs/metrics.h"

namespace rtr::exp {
namespace {

constexpr std::uint64_t kConfigFingerprint = 0xC0FFEE5EEDULL;
constexpr std::size_t kRecoverableBudget = 24;
constexpr std::size_t kIrrecoverableBudget = 12;
constexpr std::uint64_t kScenarioSeed = 4242;

std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "ledger_crash_" + tag + "." +
         std::to_string(::getpid());
}

void put_doubles(std::ostringstream& os, const char* name,
                 const std::vector<double>& vs) {
  os << name << ":";
  for (const double v : vs) os << " " << std::hexfloat << v;
  os << "\n";
}

/// The entire body of one child process: build the world, run both
/// sweeps through the (optionally journaled) runners, write the report,
/// _exit.  Never returns.
[[noreturn]] void child_main(const std::string& report_path,
                             const std::string& ledger_path,
                             long crash_after, std::size_t threads) {
  if (crash_after >= 0) {
    ::setenv("RTR_LEDGER_CRASH_AFTER", std::to_string(crash_after).c_str(),
             1);
  } else {
    ::unsetenv("RTR_LEDGER_CRASH_AFTER");
  }
  // The fork inherited whatever series earlier tests in this binary
  // registered; a clean slate makes the emitted document a pure
  // function of this child's work.
  obs::Registry::global().reset();

  TopologyContext ctx = make_context(graph::spec_by_name("AS209"));
  CaseBudget budget;
  budget.recoverable = kRecoverableBudget;
  budget.irrecoverable = kIrrecoverableBudget;
  const std::vector<Scenario> scenarios =
      generate_scenarios(ctx, fail::ScenarioConfig{}, budget, kScenarioSeed);

  RunOptions opts;
  opts.threads = threads;
  if (!ledger_path.empty()) {
    // Journal construction is where the crash seam arms itself.
    opts.journal =
        std::make_shared<ledger::Journal>(ledger_path, kConfigFingerprint);
  }
  const RecoverableResults rec = run_recoverable(ctx, scenarios, opts);
  const IrrecoverableResults irr = run_irrecoverable(ctx, scenarios, opts);

  std::ostringstream os;
  os << "topo: " << rec.topo << " cases: " << rec.cases << "\n"
     << "rtr: " << rec.rtr_recovered << " " << rec.rtr_optimal << " "
     << rec.rtr_phase1_aborted << " " << rec.rtr_unrecovered << " "
     << rec.rtr_dropped << " " << rec.rtr_retry_attempts << " "
     << rec.rtr_reinitiations << "\n"
     << "fcp: " << rec.fcp_recovered << " " << rec.fcp_optimal << "\n"
     << "mrc: " << rec.mrc_recovered << " " << rec.mrc_optimal << "\n";
  put_doubles(os, "phase1_ms", rec.phase1_duration_ms);
  put_doubles(os, "rtr_stretch", rec.rtr_stretch);
  put_doubles(os, "fcp_stretch", rec.fcp_stretch);
  put_doubles(os, "mrc_stretch", rec.mrc_stretch);
  put_doubles(os, "rtr_calcs", rec.rtr_calcs);
  put_doubles(os, "fcp_calcs", rec.fcp_calcs);
  put_doubles(os, "rtr_recovery_ms", rec.rtr_recovery_ms);
  put_doubles(os, "rtr_bytes", rec.rtr_bytes_timeline);
  put_doubles(os, "fcp_bytes", rec.fcp_bytes_timeline);
  os << "irr: " << irr.cases << " " << irr.rtr_delivered << " "
     << irr.fcp_delivered << "\n";
  put_doubles(os, "irr_phase1_ms", irr.phase1_duration_ms);
  put_doubles(os, "rtr_wasted_comp", irr.rtr_wasted_comp);
  put_doubles(os, "fcp_wasted_comp", irr.fcp_wasted_comp);
  put_doubles(os, "rtr_wasted_trans", irr.rtr_wasted_trans);
  put_doubles(os, "fcp_wasted_trans", irr.fcp_wasted_trans);

  obs::RunInfo run;
  run.bench = "test_ledger_crash";
  obs::EmitOptions eopts;
  eopts.include_volatile = false;  // the deterministic document
  os << obs::to_json(obs::Registry::global().snapshot(), run, eopts);

  {
    std::ofstream out(report_path, std::ios::trunc);
    out << os.str();
  }
  ::_exit(0);
}

/// Forks one sweep child and waits.  Returns the raw waitpid status.
int run_child(const std::string& report_path, const std::string& ledger_path,
              long crash_after, std::size_t threads) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    child_main(report_path, ledger_path, crash_after, threads);
  }
  EXPECT_GT(pid, 0) << "fork failed";
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  return status;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Scenario count of the shared workload, computed once in the parent
/// so randomized kill offsets always land inside the journal's actual
/// append stream (2 sweeps x one scenario append each).
std::size_t scenario_count() {
  static const std::size_t n = [] {
    TopologyContext ctx = make_context(graph::spec_by_name("AS209"));
    CaseBudget budget;
    budget.recoverable = kRecoverableBudget;
    budget.irrecoverable = kIrrecoverableBudget;
    return generate_scenarios(ctx, fail::ScenarioConfig{}, budget,
                              kScenarioSeed)
        .size();
  }();
  return n;
}

TEST(LedgerCrash, KilledAndResumedSweepsAreBitIdentical) {
  const std::string base_report = temp_path("base");
  const std::string report = temp_path("resumed");
  const std::string journal = temp_path("journal");

  // Uninterrupted, ledger-free baseline.
  int status = run_child(base_report, "", -1, 4);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  const std::string want = slurp(base_report);
  ASSERT_FALSE(want.empty());

  // Ledger-armed but uninterrupted: the journal must be write-only.
  std::remove(journal.c_str());
  status = run_child(report, journal, -1, 4);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  EXPECT_EQ(slurp(report), want) << "armed uninterrupted run diverged";

  // Randomized kill offsets across both sweeps (the two sweeps append
  // kRecoverableBudget-ish scenarios each into one journal), resumed at
  // 1, 2 and 8 workers.  Offset 0 kills inside the very first scenario
  // append; every kill writes a torn half-frame first.
  Rng rng(0x4C43'5241'5348ULL);
  const std::size_t resume_threads[] = {1, 2, 8};
  ASSERT_GE(scenario_count(), 2u);
  for (std::size_t round = 0; round < 4; ++round) {
    const long kill_at = static_cast<long>(rng.index(2 * scenario_count()));
    std::remove(journal.c_str());
    status = run_child(report, journal, kill_at, 4);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "crash seam did not fire at offset " << kill_at;

    const std::size_t threads = resume_threads[round % 3];
    status = run_child(report, journal, -1, threads);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "resume failed after kill at " << kill_at;
    EXPECT_EQ(slurp(report), want)
        << "resume diverged: killed at " << kill_at << ", resumed with "
        << threads << " threads";
  }

  // A journal from a differently-configured run must refuse loudly, not
  // resume into wrong results: the child dies on the uncaught
  // LedgerError instead of exiting 0.
  std::remove(journal.c_str());
  status = run_child(report, journal, 1, 4);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::unsetenv("RTR_LEDGER_CRASH_AFTER");
      obs::Registry::global().reset();
      try {
        const ledger::Journal j(journal, kConfigFingerprint + 1);
        ::_exit(0);  // accepted the mismatched journal: test failure
      } catch (const ledger::LedgerError&) {
        ::_exit(7);
      }
    }
    ASSERT_GT(pid, 0);
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 7)
        << "fingerprint mismatch was not refused";
  }

  std::remove(base_report.c_str());
  std::remove(report.c_str());
  std::remove(journal.c_str());
}

/// Resuming from a COMPLETE journal replays every scenario and runs
/// nothing live -- the strongest form of the identity: the report is
/// reconstructed purely from the ledger.
TEST(LedgerCrash, FullReplayFromCompleteJournalIsBitIdentical) {
  const std::string base_report = temp_path("fr_base");
  const std::string report = temp_path("fr_resumed");
  const std::string journal = temp_path("fr_journal");

  int status = run_child(base_report, "", -1, 2);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  const std::string want = slurp(base_report);

  std::remove(journal.c_str());
  status = run_child(report, journal, -1, 4);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ASSERT_EQ(slurp(report), want);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    status = run_child(report, journal, -1, threads);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    EXPECT_EQ(slurp(report), want)
        << "full replay diverged at " << threads << " threads";
  }

  std::remove(base_report.c_str());
  std::remove(report.c_str());
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace rtr::exp
