#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/expect.h"
#include "geom/angle.h"
#include "geom/circle.h"
#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/segment.h"

namespace rtr::geom {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Point, Arithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -1.0};
  EXPECT_EQ((a + b), (Point{4.0, 1.0}));
  EXPECT_EQ((a - b), (Point{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Point{2.0, 4.0}));
  EXPECT_EQ((2.0 * a), (Point{2.0, 4.0}));
}

TEST(Point, DotAndCross) {
  EXPECT_DOUBLE_EQ(dot({1, 0}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(dot({2, 3}, {4, 5}), 23.0);
  EXPECT_DOUBLE_EQ(cross({1, 0}, {0, 1}), 1.0);   // ccw positive
  EXPECT_DOUBLE_EQ(cross({0, 1}, {1, 0}), -1.0);  // cw negative
}

TEST(Point, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance2({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
}

TEST(Orientation, Signs) {
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {1, 1}), 1);   // left turn
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {1, -1}), -1); // right turn
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {2, 0}), 0);   // collinear
}

TEST(Segment, ProperCrossBasics) {
  const Segment x{{0, 0}, {2, 2}};
  const Segment plus{{0, 2}, {2, 0}};
  EXPECT_TRUE(properly_cross(x, plus));
  EXPECT_TRUE(properly_cross(plus, x));
}

TEST(Segment, SharedEndpointIsNotACross) {
  // Adjacent links share a router; the paper's "across" relation must
  // exclude them.
  const Segment a{{0, 0}, {1, 1}};
  const Segment b{{1, 1}, {2, 0}};
  EXPECT_FALSE(properly_cross(a, b));
}

TEST(Segment, TouchingInteriorIsNotAProperCross) {
  const Segment a{{0, 0}, {2, 0}};
  const Segment t{{1, 0}, {1, 1}};  // T-junction: endpoint on interior
  EXPECT_FALSE(properly_cross(a, t));
  EXPECT_TRUE(segments_intersect(a, t));
}

TEST(Segment, DisjointAndParallel) {
  const Segment a{{0, 0}, {1, 0}};
  const Segment b{{0, 1}, {1, 1}};
  EXPECT_FALSE(properly_cross(a, b));
  EXPECT_FALSE(segments_intersect(a, b));
}

TEST(Segment, CollinearOverlapIntersectsButNotProperly) {
  const Segment a{{0, 0}, {2, 0}};
  const Segment b{{1, 0}, {3, 0}};
  EXPECT_FALSE(properly_cross(a, b));
  EXPECT_TRUE(segments_intersect(a, b));
}

TEST(Segment, OnSegment) {
  const Segment s{{0, 0}, {2, 2}};
  EXPECT_TRUE(on_segment({1, 1}, s));
  EXPECT_TRUE(on_segment({0, 0}, s));
  EXPECT_FALSE(on_segment({3, 3}, s));
  EXPECT_FALSE(on_segment({1, 0}, s));
}

TEST(Segment, DistanceToSegment) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(distance_to_segment({5, 3}, s), 3.0);
  EXPECT_DOUBLE_EQ(distance_to_segment({-3, 4}, s), 5.0);  // beyond end
  EXPECT_DOUBLE_EQ(distance_to_segment({12, 0}, s), 2.0);
  EXPECT_DOUBLE_EQ(distance_to_segment({5, 0}, s), 0.0);   // on it
}

TEST(Segment, DistanceToDegenerateSegment) {
  const Segment s{{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ(distance_to_segment({4, 5}, s), 5.0);
}

TEST(Angle, CcwQuadrants) {
  const Point east{1, 0};
  EXPECT_NEAR(ccw_angle(east, {0, 1}), kPi / 2, 1e-12);
  EXPECT_NEAR(ccw_angle(east, {-1, 0}), kPi, 1e-12);
  EXPECT_NEAR(ccw_angle(east, {0, -1}), 1.5 * kPi, 1e-12);
}

TEST(Angle, SameDirectionIsFullTurn) {
  // The previous hop sits at rotation 2*pi: candidate of last resort.
  EXPECT_NEAR(ccw_angle({1, 0}, {2, 0}), kTwoPi, 1e-12);
}

TEST(Angle, CwIsComplement) {
  const Point east{1, 0};
  const Point ne{1, 1};
  EXPECT_NEAR(ccw_angle(east, ne) + cw_angle(east, ne), kTwoPi, 1e-12);
  EXPECT_NEAR(cw_angle(east, {2, 0}), kTwoPi, 1e-12);
}

TEST(Angle, Bearing) {
  EXPECT_NEAR(bearing({1, 0}), 0.0, 1e-12);
  EXPECT_NEAR(bearing({0, 1}), kPi / 2, 1e-12);
  EXPECT_NEAR(bearing({-1, 0}), kPi, 1e-12);
  EXPECT_NEAR(bearing({0, -1}), 1.5 * kPi, 1e-12);
}

TEST(Circle, ContainsStrictInterior) {
  const Circle c{{0, 0}, 5.0};
  EXPECT_TRUE(c.contains({3, 3}));
  EXPECT_FALSE(c.contains({5, 0}));  // boundary is outside
  EXPECT_FALSE(c.contains({6, 0}));
}

TEST(Circle, IntersectsChordWithBothEndpointsOutside) {
  // A link "across" the area fails even when both routers survive.
  const Circle c{{0, 0}, 5.0};
  EXPECT_TRUE(c.intersects({{-10, 0}, {10, 0}}));
  EXPECT_FALSE(c.intersects({{-10, 6}, {10, 6}}));
  EXPECT_TRUE(c.intersects({{0, 0}, {10, 0}}));    // endpoint inside
  EXPECT_FALSE(c.intersects({{5, 5}, {10, 10}}));  // fully outside
}

TEST(Polygon, ContainsSquare) {
  const Polygon p({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  EXPECT_TRUE(p.contains({5, 5}));
  EXPECT_FALSE(p.contains({-1, 5}));
  EXPECT_FALSE(p.contains({15, 5}));
}

TEST(Polygon, ContainsConcave) {
  // L-shape: the notch is outside.
  const Polygon p({{0, 0}, {10, 0}, {10, 4}, {4, 4}, {4, 10}, {0, 10}});
  EXPECT_TRUE(p.contains({2, 8}));
  EXPECT_TRUE(p.contains({8, 2}));
  EXPECT_FALSE(p.contains({8, 8}));  // inside the notch
}

TEST(Polygon, IntersectsSegment) {
  const Polygon p({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  EXPECT_TRUE(p.intersects({{-5, 5}, {15, 5}}));   // straight through
  EXPECT_TRUE(p.intersects({{5, 5}, {20, 5}}));    // one endpoint inside
  EXPECT_FALSE(p.intersects({{-5, -5}, {-1, 20}}));
}

TEST(Polygon, SignedArea) {
  const Polygon ccw({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  EXPECT_DOUBLE_EQ(ccw.signed_area(), 100.0);
  const Polygon cw({{0, 10}, {10, 10}, {10, 0}, {0, 0}});
  EXPECT_DOUBLE_EQ(cw.signed_area(), -100.0);
}

TEST(Polygon, BoundingBox) {
  const Polygon p({{3, 7}, {-2, 1}, {5, -4}});
  const auto [lo, hi] = p.bounding_box();
  EXPECT_EQ(lo, (Point{-2, -4}));
  EXPECT_EQ(hi, (Point{5, 7}));
}

TEST(Polygon, RejectsDegenerate) {
  EXPECT_THROW(Polygon({{0, 0}, {1, 1}}), ContractViolation);
}

TEST(Polygon, RegularPolygonApproximatesCircle) {
  const Point c{100, 100};
  const double r = 50;
  const Polygon p = make_regular_polygon(c, r, 64);
  // Points comfortably inside/outside the circle agree with the n-gon.
  EXPECT_TRUE(p.contains({100, 100}));
  EXPECT_TRUE(p.contains({100 + r * 0.9, 100}));
  EXPECT_FALSE(p.contains({100 + r * 1.05, 100}));
  EXPECT_NEAR(p.signed_area(), kPi * r * r, kPi * r * r * 0.01);
}

TEST(Polygon, EdgeWraps) {
  const Polygon p({{0, 0}, {10, 0}, {5, 8}});
  const Segment last = p.edge(2);
  EXPECT_EQ(last.a, (Point{5, 8}));
  EXPECT_EQ(last.b, (Point{0, 0}));
}

}  // namespace
}  // namespace rtr::geom
