// The rolling-disaster layer (rtr::storm): spec compilation purity,
// timeline semantics (monotone node deaths, flap episodes, link
// conservation), fault-overlay precedence (area state wins; shadowed
// flaps), the budgeted repair engine, and the seed-pinned golden
// trajectory that makes generation drift fail loudly.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "graph/graph.h"
#include "spf/batch_repair.h"
#include "storm/engine.h"
#include "storm/storm.h"
#include "storm/timeline.h"

namespace rtr::storm {
namespace {

/// An 8x8 grid with spacing 100 (extent 700): hand-built here so the
/// golden trajectory below depends on no generator elsewhere.
graph::Graph grid_graph(NodeId side = 8, double spacing = 100.0) {
  graph::GraphBuilder b;
  for (NodeId y = 0; y < side; ++y) {
    for (NodeId x = 0; x < side; ++x) {
      b.add_node({static_cast<double>(x) * spacing,
                  static_cast<double>(y) * spacing});
    }
  }
  for (NodeId y = 0; y < side; ++y) {
    for (NodeId x = 0; x < side; ++x) {
      const NodeId n = y * side + x;
      if (x + 1 < side) b.add_link(n, n + 1);
      if (y + 1 < side) b.add_link(n, n + side);
    }
  }
  return b.build();
}

StormOptions golden_options() {
  StormOptions o;
  o.ticks = 20;
  o.cells = 2;
  o.radius = 150.0;
  o.growth = 10.0;
  o.speed = 50.0;
  o.flap_prob = 0.3;
  o.extent = 700.0;
  // Pinned so the profile exercises every branch: link cuts, at least
  // one flap revival, and node destruction.
  o.seed = 0x474f4c40;
  return o;
}

TEST(StormOptions, AnyIsTheMasterSwitch) {
  StormOptions o;
  EXPECT_FALSE(o.any());
  o.flap_prob = 0.9;
  o.budget_ops = 100;
  EXPECT_FALSE(o.any());  // only ticks arms the layer
  o.ticks = 1;
  EXPECT_TRUE(o.any());
}

TEST(StormOptions, FromEnvReadsEveryKnob) {
  setenv("RTR_STORM_TICKS", "25", 1);
  setenv("RTR_STORM_TICK_MS", "5.5", 1);
  setenv("RTR_STORM_CELLS", "3", 1);
  setenv("RTR_STORM_RADIUS", "210", 1);
  setenv("RTR_STORM_GROWTH", "-2.5", 1);
  setenv("RTR_STORM_SPEED", "64", 1);
  setenv("RTR_STORM_FLAP", "0.375", 1);
  setenv("RTR_STORM_BUDGET", "4096", 1);
  setenv("RTR_STORM_SEED", "777", 1);
  const StormOptions o = StormOptions::from_env();
  unsetenv("RTR_STORM_TICKS");
  unsetenv("RTR_STORM_TICK_MS");
  unsetenv("RTR_STORM_CELLS");
  unsetenv("RTR_STORM_RADIUS");
  unsetenv("RTR_STORM_GROWTH");
  unsetenv("RTR_STORM_SPEED");
  unsetenv("RTR_STORM_FLAP");
  unsetenv("RTR_STORM_BUDGET");
  unsetenv("RTR_STORM_SEED");
  EXPECT_EQ(o.ticks, 25u);
  EXPECT_EQ(o.tick_ms, 5.5);
  EXPECT_EQ(o.cells, 3u);
  EXPECT_EQ(o.radius, 210.0);
  EXPECT_EQ(o.growth, -2.5);
  EXPECT_EQ(o.speed, 64.0);
  EXPECT_EQ(o.flap_prob, 0.375);
  EXPECT_EQ(o.budget_ops, 4096u);
  EXPECT_EQ(o.seed, 777u);
  EXPECT_TRUE(o.any());
}

TEST(StormSpec, PureFunctionOfOptionsAndSeed) {
  const StormOptions o = golden_options();
  const StormSpec a = make_storm_spec(o, 42);
  const StormSpec b = make_storm_spec(o, 42);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].origin, b.cells[i].origin);
    EXPECT_EQ(a.cells[i].velocity, b.cells[i].velocity);
    EXPECT_EQ(a.cells[i].start_tick, b.cells[i].start_tick);
  }
  const StormSpec c = make_storm_spec(o, 43);
  EXPECT_NE(a.cells[0].origin, c.cells[0].origin);
}

TEST(StormCell, KinematicsAndDecayClamp) {
  StormCell cell;
  cell.origin = {100.0, 200.0};
  cell.velocity = {10.0, -5.0};
  cell.radius0 = 30.0;
  cell.radius_growth = -8.0;
  cell.start_tick = 2;
  cell.end_tick = 100;
  EXPECT_FALSE(cell.active(1));  // not yet started
  EXPECT_TRUE(cell.active(2));
  EXPECT_EQ(cell.center(4).x, 120.0);
  EXPECT_EQ(cell.center(4).y, 190.0);
  EXPECT_EQ(cell.radius(5), 6.0);
  EXPECT_EQ(cell.radius(6), 0.0);   // clamped, never negative
  EXPECT_FALSE(cell.active(6));     // a decayed cell is spent
  EXPECT_FALSE(cell.active(100));   // end_tick is exclusive
}

TEST(StormTimeline, NodeDeathsMonotoneAndLinksConserved) {
  const graph::Graph g = grid_graph();
  const StormOptions o = golden_options();
  const std::uint64_t stream = fault::FaultPlan::stream_seed(o.seed, 0);
  const StormTimeline tl =
      compile_timeline(make_storm_spec(o, stream), g, stream);
  ASSERT_EQ(tl.ticks.size(), o.ticks);

  std::vector<char> node_dead(g.num_nodes(), 0);
  std::vector<char> link_dead(g.num_links(), 0);
  std::size_t failed = 0;
  for (const TickDelta& d : tl.ticks) {
    for (NodeId n : d.nodes_down) {
      EXPECT_EQ(node_dead[n], 0) << "node " << n << " died twice";
      node_dead[n] = 1;
    }
    for (LinkId l : d.links_down) {
      EXPECT_EQ(link_dead[l], 0) << "link " << l << " downed while down";
      link_dead[l] = 1;
      ++failed;
    }
    for (LinkId l : d.links_up) {
      EXPECT_EQ(link_dead[l], 1) << "link " << l << " revived while up";
      link_dead[l] = 0;
      --failed;
    }
    // Ids ascending within each tick (the documented delta order).
    for (std::size_t i = 1; i < d.links_down.size(); ++i) {
      EXPECT_LT(d.links_down[i - 1], d.links_down[i]);
    }
  }
  // The growing two-cell golden profile must actually cut something,
  // and flapping must actually revive something.
  EXPECT_GT(tl.total_links_down(), 0u);
  EXPECT_GT(tl.total_links_up(), 0u);
  EXPECT_GT(tl.total_nodes_down(), 0u);
  // Replay agrees with cumulative_failure at the final tick.
  const fail::FailureSet fs =
      cumulative_failure(tl, g, nullptr, tl.ticks.size());
  EXPECT_EQ(fs.num_failed_links(), failed);
}

TEST(StormTimeline, BaseFailuresNeverAppearInDeltas) {
  const graph::Graph g = grid_graph();
  fail::FailureSet base(g);
  base.add_node(g, 27);  // kills node 27 and its incident links
  const StormOptions o = golden_options();
  const std::uint64_t stream = fault::FaultPlan::stream_seed(o.seed, 0);
  const StormTimeline tl =
      compile_timeline(make_storm_spec(o, stream), g, stream, &base);
  for (const TickDelta& d : tl.ticks) {
    for (NodeId n : d.nodes_down) EXPECT_NE(n, 27u);
    for (LinkId l : d.links_down) EXPECT_FALSE(base.link_failed(l));
    for (LinkId l : d.links_up) EXPECT_FALSE(base.link_failed(l));
  }
}

// The satellite-4 precedence fix: a FaultPlan link death landing on a
// link the storm already holds dead is a shadowed no-op; the same
// plan's death of a link outside the storm applies normally.
TEST(StormTimeline, AreaStateWinsOverFaultFlaps) {
  // Two disjoint pairs: link 0 (nodes 0-1) sits under a stationary
  // cell, link 1 (nodes 2-3) is far outside it.
  graph::GraphBuilder b;
  b.add_node({0.0, 0.0});
  b.add_node({100.0, 0.0});
  b.add_node({5000.0, 5000.0});
  b.add_node({5100.0, 5000.0});
  const LinkId covered = b.add_link(0, 1);
  const LinkId outside = b.add_link(2, 3);
  const graph::Graph g = b.build();

  StormSpec spec;
  spec.ticks = 20;
  spec.tick_ms = 10.0;
  StormCell cell;
  cell.origin = {50.0, 0.0};  // over the midpoint of link 0, forever;
  cell.radius0 = 30.0;        // radius < 50 spares both endpoint routers
  cell.end_tick = spec.ticks;
  spec.cells.push_back(cell);

  fault::FaultOptions fo;
  fo.dynamic_links = 2;          // the plan kills both links...
  fo.dynamic_window_ms = 100.0;  // ...inside the first ten ticks
  fo.flap_prob = 1.0;            // and schedules both revivals
  const fail::FailureSet none(g);
  // Seed pinned so both of the plan's transitions on each link land on
  // sampled ticks (the 10 ms grid can miss sub-tick flap windows).
  fault::FaultPlan plan(fo, 2, g, none);

  const StormTimeline tl = compile_timeline(spec, g, 2, nullptr, &plan);
  std::size_t covered_downs = 0, covered_ups = 0;
  std::size_t outside_events = 0;
  for (const TickDelta& d : tl.ticks) {
    for (LinkId l : d.links_down) {
      if (l == covered) ++covered_downs;
      if (l == outside) ++outside_events;
    }
    for (LinkId l : d.links_up) {
      if (l == covered) ++covered_ups;
      if (l == outside) ++outside_events;
    }
  }
  // Area wins: the covered link goes down exactly once (tick 0, the
  // storm) and never flaps back up; the plan's events on it are
  // counted as shadowed instead.  No router dies: the cell covers only
  // the link's midsection.
  EXPECT_EQ(covered_downs, 1u);
  EXPECT_EQ(covered_ups, 0u);
  EXPECT_EQ(tl.total_nodes_down(), 0u);
  EXPECT_GE(tl.total_shadowed_flaps(), 1u);
  // The plan still applies untouched to the link outside the area.
  EXPECT_GE(outside_events, 1u);
}

TEST(StormEngine, BudgetThrottleDrainsToUnthrottledState) {
  const graph::Graph g = grid_graph();
  const StormOptions o = golden_options();
  const std::uint64_t stream = fault::FaultPlan::stream_seed(o.seed, 0);
  const StormTimeline tl =
      compile_timeline(make_storm_spec(o, stream), g, stream);
  const spf::BaseTreeStore store(g, spf::SpfAlgorithm::kDijkstra);
  const std::vector<NodeId> sources = {0, 27, 63};

  const StormRunResult fast = run_storm(g, store, tl, nullptr, sources, {});
  EXPECT_EQ(fast.drain_ticks, 0u);
  EXPECT_EQ(fast.total_budget_stalls, 0u);
  EXPECT_EQ(fast.per_tick.size(), tl.ticks.size());

  StormEngineOptions tight;
  tight.budget_ops = 5;
  const StormRunResult slow =
      run_storm(g, store, tl, nullptr, sources, tight);
  EXPECT_GT(slow.drain_ticks, 0u);
  EXPECT_GT(slow.total_budget_stalls, 0u);
  EXPECT_EQ(slow.dist_digest, fast.dist_digest);
  EXPECT_EQ(slow.unreachable_pairs, fast.unreachable_pairs);
  ASSERT_EQ(slow.trees.size(), fast.trees.size());
  for (std::size_t i = 0; i < fast.trees.size(); ++i) {
    EXPECT_EQ(fast.trees[i]->dist, slow.trees[i]->dist);
    EXPECT_EQ(fast.trees[i]->parent, slow.trees[i]->parent);
  }
}

// The checked-in golden trajectory: per-tick failed-link counts and
// funded repair ops of the seed-pinned 20-tick storm above, run under
// a budget of 200 ops/tick.  Any drift in spec compilation, timeline
// semantics, flap draws or budget accounting changes these lines.
// To regenerate after an INTENTIONAL semantic change, print the
// `actual` string below and paste it into
// tests/golden_storm_timeline.inc (keep the raw-string delimiters).
TEST(StormGolden, TwentyTickTimelinePinned) {
  const std::string golden =
#include "golden_storm_timeline.inc"
      ;
  const graph::Graph g = grid_graph();
  const StormOptions o = golden_options();
  const std::uint64_t stream = fault::FaultPlan::stream_seed(o.seed, 0);
  const StormTimeline tl =
      compile_timeline(make_storm_spec(o, stream), g, stream);
  const spf::BaseTreeStore store(g, spf::SpfAlgorithm::kDijkstra);
  StormEngineOptions eopts;
  eopts.budget_ops = 200;
  const StormRunResult r =
      run_storm(g, store, tl, nullptr, {0, 27, 63}, eopts);
  std::ostringstream actual;
  for (const StormTickStats& ts : r.per_tick) {
    actual << "t=" << ts.tick << " failed=" << ts.failed_links
           << " ops=" << ts.repair_ops << "\n";
  }
  EXPECT_EQ(actual.str(), golden)
      << "seed-pinned storm trajectory drifted; if intentional, refresh "
         "tests/golden_storm_timeline.inc with the actual string above";
}

// ------------------------------------------------- waypoint CSV tracks --

/// Writes `content` to a unique temp CSV and returns its path.
std::string waypoint_file(const std::string& tag,
                          const std::string& content) {
  const std::string path =
      ::testing::TempDir() + "storm_waypoints_" + tag + ".csv";
  std::ofstream out(path, std::ios::trunc);
  out << content;
  return path;
}

TEST(StormWaypoints, ParsesTracksIntoSegmentedCells) {
  // Two cells: cell 0 with three waypoints (two segments), cell 7 with
  // two.  Comments and blank lines are skipped; fields may carry spaces.
  const std::string path = waypoint_file("ok",
                                         "# cell,tick,x,y,radius\n"
                                         "\n"
                                         "0, 0, 100, 200, 50\n"
                                         "7,2,0,0,30\n"
                                         "0, 4, 300, 200, 90\n"
                                         "0, 8, 300, 600, 90\n"
                                         "7,10,80,-80,10\n");
  const std::vector<StormCell> cells = load_waypoints(path);
  ASSERT_EQ(cells.size(), 3u);  // cell 0 x2 segments, cell 7 x1

  // Cell 0, segment 1: ticks [0,4), velocity (50, 0)/tick, growth 10.
  EXPECT_EQ(cells[0].start_tick, 0u);
  EXPECT_EQ(cells[0].end_tick, 4u);
  EXPECT_EQ(cells[0].origin.x, 100.0);
  EXPECT_EQ(cells[0].origin.y, 200.0);
  EXPECT_EQ(cells[0].radius0, 50.0);
  EXPECT_EQ(cells[0].velocity.x, 50.0);
  EXPECT_EQ(cells[0].velocity.y, 0.0);
  EXPECT_EQ(cells[0].radius_growth, 10.0);
  // Cell 0, segment 2: ticks [4,9) -- the final segment is closed one
  // tick past its last waypoint so the storm reaches it.
  EXPECT_EQ(cells[1].start_tick, 4u);
  EXPECT_EQ(cells[1].end_tick, 9u);
  EXPECT_EQ(cells[1].velocity.y, 100.0);
  // Cell 7's single segment, after cell 0's (ascending cell id).
  EXPECT_EQ(cells[2].start_tick, 2u);
  EXPECT_EQ(cells[2].end_tick, 11u);
  EXPECT_EQ(cells[2].velocity.x, 10.0);
  EXPECT_EQ(cells[2].radius_growth, -2.5);
  std::remove(path.c_str());
}

TEST(StormWaypoints, SpecUsesTheFixedRosterVerbatim) {
  // With a track file armed, make_storm_spec must take the waypoint
  // cells as the full roster -- no RNG draws, identical on every call.
  const std::string path = waypoint_file("spec",
                                         "0,0,100,100,40\n"
                                         "0,5,600,100,40\n");
  StormOptions opts;
  opts.ticks = 6;
  opts.cells = 99;  // ignored in waypoint mode
  opts.waypoint_file = path;
  const StormSpec a = make_storm_spec(opts, 1);
  const StormSpec b = make_storm_spec(opts, 2);  // different stream seed
  ASSERT_EQ(a.cells.size(), 1u);
  EXPECT_EQ(a.cells.size(), b.cells.size());
  EXPECT_EQ(a.cells[0].origin.x, b.cells[0].origin.x);
  EXPECT_EQ(a.cells[0].velocity.x, 100.0);
  std::remove(path.c_str());
}

TEST(StormWaypoints, MalformedInputsAreRejectedWithLineNumbers) {
  const struct {
    const char* tag;
    const char* content;
    const char* needle;  ///< must appear in the error message
  } cases[] = {
      {"fields", "0,0,1,2\n0,1,1,2,3\n", ":1:"},
      {"junk", "0,zero,1,2,3\n0,1,1,2,3\n", ":1:"},
      {"radius", "0,0,1,2,0\n0,1,1,2,3\n", "radius"},
      {"nonfinite", "0,0,inf,2,3\n0,1,1,2,3\n", ":1:"},
      {"order", "0,5,1,2,3\n0,5,9,9,9\n", "strictly increase"},
      {"lonely", "0,0,1,2,3\n", "at least 2 waypoints"},
      {"empty", "# nothing but comments\n", "no waypoint rows"},
  };
  for (const auto& c : cases) {
    const std::string path = waypoint_file(c.tag, c.content);
    try {
      (void)load_waypoints(path);
      FAIL() << c.tag << ": malformed track was accepted";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("storm waypoints"), std::string::npos) << c.tag;
      EXPECT_NE(what.find(c.needle), std::string::npos)
          << c.tag << ": got \"" << what << '"';
    }
    std::remove(path.c_str());
  }
  EXPECT_THROW((void)load_waypoints(::testing::TempDir() +
                                    "storm_waypoints_does_not_exist.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace rtr::storm
