file(REMOVE_RECURSE
  "CMakeFiles/disaster_timeline.dir/disaster_timeline.cpp.o"
  "CMakeFiles/disaster_timeline.dir/disaster_timeline.cpp.o.d"
  "disaster_timeline"
  "disaster_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaster_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
