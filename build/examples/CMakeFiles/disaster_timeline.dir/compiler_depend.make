# Empty compiler generated dependencies file for disaster_timeline.
# This may be replaced when dependencies are built.
