file(REMOVE_RECURSE
  "CMakeFiles/general_graph_walkthrough.dir/general_graph_walkthrough.cpp.o"
  "CMakeFiles/general_graph_walkthrough.dir/general_graph_walkthrough.cpp.o.d"
  "general_graph_walkthrough"
  "general_graph_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/general_graph_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
