# Empty compiler generated dependencies file for general_graph_walkthrough.
# This may be replaced when dependencies are built.
