file(REMOVE_RECURSE
  "CMakeFiles/arbitrary_shape_area.dir/arbitrary_shape_area.cpp.o"
  "CMakeFiles/arbitrary_shape_area.dir/arbitrary_shape_area.cpp.o.d"
  "arbitrary_shape_area"
  "arbitrary_shape_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbitrary_shape_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
