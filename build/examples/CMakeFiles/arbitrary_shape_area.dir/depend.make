# Empty dependencies file for arbitrary_shape_area.
# This may be replaced when dependencies are built.
