# Empty dependencies file for rtr_tests.
# This may be replaced when dependencies are built.
