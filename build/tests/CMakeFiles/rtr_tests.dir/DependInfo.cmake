
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_area_estimate.cc" "tests/CMakeFiles/rtr_tests.dir/test_area_estimate.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_area_estimate.cc.o.d"
  "/root/repo/tests/test_compress.cc" "tests/CMakeFiles/rtr_tests.dir/test_compress.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_compress.cc.o.d"
  "/root/repo/tests/test_distributed.cc" "tests/CMakeFiles/rtr_tests.dir/test_distributed.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_distributed.cc.o.d"
  "/root/repo/tests/test_exp.cc" "tests/CMakeFiles/rtr_tests.dir/test_exp.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_exp.cc.o.d"
  "/root/repo/tests/test_failure.cc" "tests/CMakeFiles/rtr_tests.dir/test_failure.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_failure.cc.o.d"
  "/root/repo/tests/test_fcp.cc" "tests/CMakeFiles/rtr_tests.dir/test_fcp.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_fcp.cc.o.d"
  "/root/repo/tests/test_forwarding_rule.cc" "tests/CMakeFiles/rtr_tests.dir/test_forwarding_rule.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_forwarding_rule.cc.o.d"
  "/root/repo/tests/test_generators.cc" "tests/CMakeFiles/rtr_tests.dir/test_generators.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_generators.cc.o.d"
  "/root/repo/tests/test_geom.cc" "tests/CMakeFiles/rtr_tests.dir/test_geom.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_geom.cc.o.d"
  "/root/repo/tests/test_geom_properties.cc" "tests/CMakeFiles/rtr_tests.dir/test_geom_properties.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_geom_properties.cc.o.d"
  "/root/repo/tests/test_graph.cc" "tests/CMakeFiles/rtr_tests.dir/test_graph.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_graph.cc.o.d"
  "/root/repo/tests/test_igp.cc" "tests/CMakeFiles/rtr_tests.dir/test_igp.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_igp.cc.o.d"
  "/root/repo/tests/test_mrc.cc" "tests/CMakeFiles/rtr_tests.dir/test_mrc.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_mrc.cc.o.d"
  "/root/repo/tests/test_net.cc" "tests/CMakeFiles/rtr_tests.dir/test_net.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_net.cc.o.d"
  "/root/repo/tests/test_network.cc" "tests/CMakeFiles/rtr_tests.dir/test_network.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_network.cc.o.d"
  "/root/repo/tests/test_phase1.cc" "tests/CMakeFiles/rtr_tests.dir/test_phase1.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_phase1.cc.o.d"
  "/root/repo/tests/test_rtr.cc" "tests/CMakeFiles/rtr_tests.dir/test_rtr.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_rtr.cc.o.d"
  "/root/repo/tests/test_spf.cc" "tests/CMakeFiles/rtr_tests.dir/test_spf.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_spf.cc.o.d"
  "/root/repo/tests/test_spf_crosscheck.cc" "tests/CMakeFiles/rtr_tests.dir/test_spf_crosscheck.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_spf_crosscheck.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/rtr_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_viz.cc" "tests/CMakeFiles/rtr_tests.dir/test_viz.cc.o" "gcc" "tests/CMakeFiles/rtr_tests.dir/test_viz.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/rtr_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/rtr_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rtr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rtr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/spf/CMakeFiles/rtr_spf.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/rtr_fail.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rtr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rtr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rtr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
