file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_phase1_duration.dir/bench_fig07_phase1_duration.cc.o"
  "CMakeFiles/bench_fig07_phase1_duration.dir/bench_fig07_phase1_duration.cc.o.d"
  "bench_fig07_phase1_duration"
  "bench_fig07_phase1_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_phase1_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
