# Empty dependencies file for bench_fig07_phase1_duration.
# This may be replaced when dependencies are built.
