# Empty dependencies file for bench_fig10_transmission.
# This may be replaced when dependencies are built.
