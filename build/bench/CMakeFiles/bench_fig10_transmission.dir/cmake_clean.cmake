file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_transmission.dir/bench_fig10_transmission.cc.o"
  "CMakeFiles/bench_fig10_transmission.dir/bench_fig10_transmission.cc.o.d"
  "bench_fig10_transmission"
  "bench_fig10_transmission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_transmission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
