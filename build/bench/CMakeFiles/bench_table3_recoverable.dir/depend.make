# Empty dependencies file for bench_table3_recoverable.
# This may be replaced when dependencies are built.
