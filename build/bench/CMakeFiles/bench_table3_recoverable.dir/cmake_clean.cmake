file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_recoverable.dir/bench_table3_recoverable.cc.o"
  "CMakeFiles/bench_table3_recoverable.dir/bench_table3_recoverable.cc.o.d"
  "bench_table3_recoverable"
  "bench_table3_recoverable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_recoverable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
