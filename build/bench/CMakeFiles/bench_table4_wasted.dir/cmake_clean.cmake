file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_wasted.dir/bench_table4_wasted.cc.o"
  "CMakeFiles/bench_table4_wasted.dir/bench_table4_wasted.cc.o.d"
  "bench_table4_wasted"
  "bench_table4_wasted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_wasted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
