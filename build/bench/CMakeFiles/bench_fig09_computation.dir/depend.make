# Empty dependencies file for bench_fig09_computation.
# This may be replaced when dependencies are built.
