file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_computation.dir/bench_fig09_computation.cc.o"
  "CMakeFiles/bench_fig09_computation.dir/bench_fig09_computation.cc.o.d"
  "bench_fig09_computation"
  "bench_fig09_computation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_computation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
