file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_stretch.dir/bench_fig08_stretch.cc.o"
  "CMakeFiles/bench_fig08_stretch.dir/bench_fig08_stretch.cc.o.d"
  "bench_fig08_stretch"
  "bench_fig08_stretch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
