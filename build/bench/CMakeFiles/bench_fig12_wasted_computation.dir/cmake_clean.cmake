file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_wasted_computation.dir/bench_fig12_wasted_computation.cc.o"
  "CMakeFiles/bench_fig12_wasted_computation.dir/bench_fig12_wasted_computation.cc.o.d"
  "bench_fig12_wasted_computation"
  "bench_fig12_wasted_computation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_wasted_computation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
