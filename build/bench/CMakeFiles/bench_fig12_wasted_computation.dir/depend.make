# Empty dependencies file for bench_fig12_wasted_computation.
# This may be replaced when dependencies are built.
