# Empty compiler generated dependencies file for bench_fig13_wasted_transmission.
# This may be replaced when dependencies are built.
