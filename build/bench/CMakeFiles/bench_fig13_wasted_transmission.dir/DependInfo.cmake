
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig13_wasted_transmission.cc" "bench/CMakeFiles/bench_fig13_wasted_transmission.dir/bench_fig13_wasted_transmission.cc.o" "gcc" "bench/CMakeFiles/bench_fig13_wasted_transmission.dir/bench_fig13_wasted_transmission.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/rtr_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/rtr_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rtr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rtr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/spf/CMakeFiles/rtr_spf.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/rtr_fail.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rtr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rtr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rtr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
