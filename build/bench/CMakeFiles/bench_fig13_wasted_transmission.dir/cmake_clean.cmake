file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_wasted_transmission.dir/bench_fig13_wasted_transmission.cc.o"
  "CMakeFiles/bench_fig13_wasted_transmission.dir/bench_fig13_wasted_transmission.cc.o.d"
  "bench_fig13_wasted_transmission"
  "bench_fig13_wasted_transmission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_wasted_transmission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
