# Empty compiler generated dependencies file for bench_ext_fcp_variants.
# This may be replaced when dependencies are built.
