file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fcp_variants.dir/bench_ext_fcp_variants.cc.o"
  "CMakeFiles/bench_ext_fcp_variants.dir/bench_ext_fcp_variants.cc.o.d"
  "bench_ext_fcp_variants"
  "bench_ext_fcp_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fcp_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
