file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_irrecoverable_pct.dir/bench_fig11_irrecoverable_pct.cc.o"
  "CMakeFiles/bench_fig11_irrecoverable_pct.dir/bench_fig11_irrecoverable_pct.cc.o.d"
  "bench_fig11_irrecoverable_pct"
  "bench_fig11_irrecoverable_pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_irrecoverable_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
