# Empty compiler generated dependencies file for bench_fig11_irrecoverable_pct.
# This may be replaced when dependencies are built.
