file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_convergence_window.dir/bench_ext_convergence_window.cc.o"
  "CMakeFiles/bench_ext_convergence_window.dir/bench_ext_convergence_window.cc.o.d"
  "bench_ext_convergence_window"
  "bench_ext_convergence_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_convergence_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
