# Empty compiler generated dependencies file for bench_ext_convergence_window.
# This may be replaced when dependencies are built.
