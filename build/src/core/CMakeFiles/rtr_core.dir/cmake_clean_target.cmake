file(REMOVE_RECURSE
  "librtr_core.a"
)
