# Empty dependencies file for rtr_core.
# This may be replaced when dependencies are built.
