file(REMOVE_RECURSE
  "CMakeFiles/rtr_core.dir/area_estimate.cc.o"
  "CMakeFiles/rtr_core.dir/area_estimate.cc.o.d"
  "CMakeFiles/rtr_core.dir/distributed_rtr.cc.o"
  "CMakeFiles/rtr_core.dir/distributed_rtr.cc.o.d"
  "CMakeFiles/rtr_core.dir/forwarding_rule.cc.o"
  "CMakeFiles/rtr_core.dir/forwarding_rule.cc.o.d"
  "CMakeFiles/rtr_core.dir/phase1.cc.o"
  "CMakeFiles/rtr_core.dir/phase1.cc.o.d"
  "CMakeFiles/rtr_core.dir/rtr.cc.o"
  "CMakeFiles/rtr_core.dir/rtr.cc.o.d"
  "librtr_core.a"
  "librtr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
