
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/area_estimate.cc" "src/core/CMakeFiles/rtr_core.dir/area_estimate.cc.o" "gcc" "src/core/CMakeFiles/rtr_core.dir/area_estimate.cc.o.d"
  "/root/repo/src/core/distributed_rtr.cc" "src/core/CMakeFiles/rtr_core.dir/distributed_rtr.cc.o" "gcc" "src/core/CMakeFiles/rtr_core.dir/distributed_rtr.cc.o.d"
  "/root/repo/src/core/forwarding_rule.cc" "src/core/CMakeFiles/rtr_core.dir/forwarding_rule.cc.o" "gcc" "src/core/CMakeFiles/rtr_core.dir/forwarding_rule.cc.o.d"
  "/root/repo/src/core/phase1.cc" "src/core/CMakeFiles/rtr_core.dir/phase1.cc.o" "gcc" "src/core/CMakeFiles/rtr_core.dir/phase1.cc.o.d"
  "/root/repo/src/core/rtr.cc" "src/core/CMakeFiles/rtr_core.dir/rtr.cc.o" "gcc" "src/core/CMakeFiles/rtr_core.dir/rtr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spf/CMakeFiles/rtr_spf.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/rtr_fail.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rtr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rtr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
