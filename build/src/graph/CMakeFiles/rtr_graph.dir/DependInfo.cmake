
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/crossings.cc" "src/graph/CMakeFiles/rtr_graph.dir/crossings.cc.o" "gcc" "src/graph/CMakeFiles/rtr_graph.dir/crossings.cc.o.d"
  "/root/repo/src/graph/gen/generators.cc" "src/graph/CMakeFiles/rtr_graph.dir/gen/generators.cc.o" "gcc" "src/graph/CMakeFiles/rtr_graph.dir/gen/generators.cc.o.d"
  "/root/repo/src/graph/gen/isp_gen.cc" "src/graph/CMakeFiles/rtr_graph.dir/gen/isp_gen.cc.o" "gcc" "src/graph/CMakeFiles/rtr_graph.dir/gen/isp_gen.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/rtr_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/rtr_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/rtr_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/rtr_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/paper_topology.cc" "src/graph/CMakeFiles/rtr_graph.dir/paper_topology.cc.o" "gcc" "src/graph/CMakeFiles/rtr_graph.dir/paper_topology.cc.o.d"
  "/root/repo/src/graph/properties.cc" "src/graph/CMakeFiles/rtr_graph.dir/properties.cc.o" "gcc" "src/graph/CMakeFiles/rtr_graph.dir/properties.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
