file(REMOVE_RECURSE
  "CMakeFiles/rtr_graph.dir/crossings.cc.o"
  "CMakeFiles/rtr_graph.dir/crossings.cc.o.d"
  "CMakeFiles/rtr_graph.dir/gen/generators.cc.o"
  "CMakeFiles/rtr_graph.dir/gen/generators.cc.o.d"
  "CMakeFiles/rtr_graph.dir/gen/isp_gen.cc.o"
  "CMakeFiles/rtr_graph.dir/gen/isp_gen.cc.o.d"
  "CMakeFiles/rtr_graph.dir/graph.cc.o"
  "CMakeFiles/rtr_graph.dir/graph.cc.o.d"
  "CMakeFiles/rtr_graph.dir/io.cc.o"
  "CMakeFiles/rtr_graph.dir/io.cc.o.d"
  "CMakeFiles/rtr_graph.dir/paper_topology.cc.o"
  "CMakeFiles/rtr_graph.dir/paper_topology.cc.o.d"
  "CMakeFiles/rtr_graph.dir/properties.cc.o"
  "CMakeFiles/rtr_graph.dir/properties.cc.o.d"
  "librtr_graph.a"
  "librtr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
