file(REMOVE_RECURSE
  "librtr_graph.a"
)
