# Empty compiler generated dependencies file for rtr_graph.
# This may be replaced when dependencies are built.
