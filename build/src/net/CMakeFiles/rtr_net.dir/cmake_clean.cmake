file(REMOVE_RECURSE
  "CMakeFiles/rtr_net.dir/codec.cc.o"
  "CMakeFiles/rtr_net.dir/codec.cc.o.d"
  "CMakeFiles/rtr_net.dir/compress.cc.o"
  "CMakeFiles/rtr_net.dir/compress.cc.o.d"
  "CMakeFiles/rtr_net.dir/igp.cc.o"
  "CMakeFiles/rtr_net.dir/igp.cc.o.d"
  "CMakeFiles/rtr_net.dir/network.cc.o"
  "CMakeFiles/rtr_net.dir/network.cc.o.d"
  "CMakeFiles/rtr_net.dir/sim.cc.o"
  "CMakeFiles/rtr_net.dir/sim.cc.o.d"
  "librtr_net.a"
  "librtr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
