
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/codec.cc" "src/net/CMakeFiles/rtr_net.dir/codec.cc.o" "gcc" "src/net/CMakeFiles/rtr_net.dir/codec.cc.o.d"
  "/root/repo/src/net/compress.cc" "src/net/CMakeFiles/rtr_net.dir/compress.cc.o" "gcc" "src/net/CMakeFiles/rtr_net.dir/compress.cc.o.d"
  "/root/repo/src/net/igp.cc" "src/net/CMakeFiles/rtr_net.dir/igp.cc.o" "gcc" "src/net/CMakeFiles/rtr_net.dir/igp.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/rtr_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/rtr_net.dir/network.cc.o.d"
  "/root/repo/src/net/sim.cc" "src/net/CMakeFiles/rtr_net.dir/sim.cc.o" "gcc" "src/net/CMakeFiles/rtr_net.dir/sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/failure/CMakeFiles/rtr_fail.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rtr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
