# Empty compiler generated dependencies file for rtr_net.
# This may be replaced when dependencies are built.
