file(REMOVE_RECURSE
  "librtr_net.a"
)
