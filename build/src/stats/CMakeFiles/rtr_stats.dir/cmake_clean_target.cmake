file(REMOVE_RECURSE
  "librtr_stats.a"
)
