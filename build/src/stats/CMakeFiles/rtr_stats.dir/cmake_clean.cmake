file(REMOVE_RECURSE
  "CMakeFiles/rtr_stats.dir/cdf.cc.o"
  "CMakeFiles/rtr_stats.dir/cdf.cc.o.d"
  "CMakeFiles/rtr_stats.dir/table.cc.o"
  "CMakeFiles/rtr_stats.dir/table.cc.o.d"
  "librtr_stats.a"
  "librtr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
