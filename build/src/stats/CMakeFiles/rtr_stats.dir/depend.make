# Empty dependencies file for rtr_stats.
# This may be replaced when dependencies are built.
