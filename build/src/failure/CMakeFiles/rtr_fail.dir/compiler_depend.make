# Empty compiler generated dependencies file for rtr_fail.
# This may be replaced when dependencies are built.
