file(REMOVE_RECURSE
  "librtr_fail.a"
)
