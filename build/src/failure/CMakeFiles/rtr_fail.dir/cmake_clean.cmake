file(REMOVE_RECURSE
  "CMakeFiles/rtr_fail.dir/area.cc.o"
  "CMakeFiles/rtr_fail.dir/area.cc.o.d"
  "CMakeFiles/rtr_fail.dir/failure_set.cc.o"
  "CMakeFiles/rtr_fail.dir/failure_set.cc.o.d"
  "CMakeFiles/rtr_fail.dir/scenario.cc.o"
  "CMakeFiles/rtr_fail.dir/scenario.cc.o.d"
  "librtr_fail.a"
  "librtr_fail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_fail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
