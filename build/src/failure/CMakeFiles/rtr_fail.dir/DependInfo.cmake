
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/failure/area.cc" "src/failure/CMakeFiles/rtr_fail.dir/area.cc.o" "gcc" "src/failure/CMakeFiles/rtr_fail.dir/area.cc.o.d"
  "/root/repo/src/failure/failure_set.cc" "src/failure/CMakeFiles/rtr_fail.dir/failure_set.cc.o" "gcc" "src/failure/CMakeFiles/rtr_fail.dir/failure_set.cc.o.d"
  "/root/repo/src/failure/scenario.cc" "src/failure/CMakeFiles/rtr_fail.dir/scenario.cc.o" "gcc" "src/failure/CMakeFiles/rtr_fail.dir/scenario.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/rtr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
