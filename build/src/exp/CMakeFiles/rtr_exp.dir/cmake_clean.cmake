file(REMOVE_RECURSE
  "CMakeFiles/rtr_exp.dir/bench_config.cc.o"
  "CMakeFiles/rtr_exp.dir/bench_config.cc.o.d"
  "CMakeFiles/rtr_exp.dir/cases.cc.o"
  "CMakeFiles/rtr_exp.dir/cases.cc.o.d"
  "CMakeFiles/rtr_exp.dir/context.cc.o"
  "CMakeFiles/rtr_exp.dir/context.cc.o.d"
  "CMakeFiles/rtr_exp.dir/runners.cc.o"
  "CMakeFiles/rtr_exp.dir/runners.cc.o.d"
  "librtr_exp.a"
  "librtr_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
