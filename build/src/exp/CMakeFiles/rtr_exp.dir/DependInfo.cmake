
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/bench_config.cc" "src/exp/CMakeFiles/rtr_exp.dir/bench_config.cc.o" "gcc" "src/exp/CMakeFiles/rtr_exp.dir/bench_config.cc.o.d"
  "/root/repo/src/exp/cases.cc" "src/exp/CMakeFiles/rtr_exp.dir/cases.cc.o" "gcc" "src/exp/CMakeFiles/rtr_exp.dir/cases.cc.o.d"
  "/root/repo/src/exp/context.cc" "src/exp/CMakeFiles/rtr_exp.dir/context.cc.o" "gcc" "src/exp/CMakeFiles/rtr_exp.dir/context.cc.o.d"
  "/root/repo/src/exp/runners.cc" "src/exp/CMakeFiles/rtr_exp.dir/runners.cc.o" "gcc" "src/exp/CMakeFiles/rtr_exp.dir/runners.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rtr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rtr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/spf/CMakeFiles/rtr_spf.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/rtr_fail.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rtr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rtr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rtr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
