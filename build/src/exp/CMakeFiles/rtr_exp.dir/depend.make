# Empty dependencies file for rtr_exp.
# This may be replaced when dependencies are built.
