file(REMOVE_RECURSE
  "librtr_exp.a"
)
