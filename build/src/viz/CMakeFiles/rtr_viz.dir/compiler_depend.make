# Empty compiler generated dependencies file for rtr_viz.
# This may be replaced when dependencies are built.
