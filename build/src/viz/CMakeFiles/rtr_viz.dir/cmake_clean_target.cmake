file(REMOVE_RECURSE
  "librtr_viz.a"
)
