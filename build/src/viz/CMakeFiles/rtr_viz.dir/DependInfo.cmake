
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/svg_export.cc" "src/viz/CMakeFiles/rtr_viz.dir/svg_export.cc.o" "gcc" "src/viz/CMakeFiles/rtr_viz.dir/svg_export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/failure/CMakeFiles/rtr_fail.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rtr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
