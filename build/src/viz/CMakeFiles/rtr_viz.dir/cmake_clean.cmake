file(REMOVE_RECURSE
  "CMakeFiles/rtr_viz.dir/svg_export.cc.o"
  "CMakeFiles/rtr_viz.dir/svg_export.cc.o.d"
  "librtr_viz.a"
  "librtr_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
