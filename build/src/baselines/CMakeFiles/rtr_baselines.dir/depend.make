# Empty dependencies file for rtr_baselines.
# This may be replaced when dependencies are built.
