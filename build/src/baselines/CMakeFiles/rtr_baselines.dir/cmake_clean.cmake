file(REMOVE_RECURSE
  "CMakeFiles/rtr_baselines.dir/fcp.cc.o"
  "CMakeFiles/rtr_baselines.dir/fcp.cc.o.d"
  "CMakeFiles/rtr_baselines.dir/mrc.cc.o"
  "CMakeFiles/rtr_baselines.dir/mrc.cc.o.d"
  "librtr_baselines.a"
  "librtr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
