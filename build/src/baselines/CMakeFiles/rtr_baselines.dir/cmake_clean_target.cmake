file(REMOVE_RECURSE
  "librtr_baselines.a"
)
