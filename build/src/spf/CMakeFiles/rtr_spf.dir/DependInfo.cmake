
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spf/bellman_ford.cc" "src/spf/CMakeFiles/rtr_spf.dir/bellman_ford.cc.o" "gcc" "src/spf/CMakeFiles/rtr_spf.dir/bellman_ford.cc.o.d"
  "/root/repo/src/spf/incremental.cc" "src/spf/CMakeFiles/rtr_spf.dir/incremental.cc.o" "gcc" "src/spf/CMakeFiles/rtr_spf.dir/incremental.cc.o.d"
  "/root/repo/src/spf/path.cc" "src/spf/CMakeFiles/rtr_spf.dir/path.cc.o" "gcc" "src/spf/CMakeFiles/rtr_spf.dir/path.cc.o.d"
  "/root/repo/src/spf/routing_table.cc" "src/spf/CMakeFiles/rtr_spf.dir/routing_table.cc.o" "gcc" "src/spf/CMakeFiles/rtr_spf.dir/routing_table.cc.o.d"
  "/root/repo/src/spf/shortest_path.cc" "src/spf/CMakeFiles/rtr_spf.dir/shortest_path.cc.o" "gcc" "src/spf/CMakeFiles/rtr_spf.dir/shortest_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/rtr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/rtr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
