# Empty compiler generated dependencies file for rtr_spf.
# This may be replaced when dependencies are built.
