file(REMOVE_RECURSE
  "librtr_spf.a"
)
