file(REMOVE_RECURSE
  "CMakeFiles/rtr_spf.dir/bellman_ford.cc.o"
  "CMakeFiles/rtr_spf.dir/bellman_ford.cc.o.d"
  "CMakeFiles/rtr_spf.dir/incremental.cc.o"
  "CMakeFiles/rtr_spf.dir/incremental.cc.o.d"
  "CMakeFiles/rtr_spf.dir/path.cc.o"
  "CMakeFiles/rtr_spf.dir/path.cc.o.d"
  "CMakeFiles/rtr_spf.dir/routing_table.cc.o"
  "CMakeFiles/rtr_spf.dir/routing_table.cc.o.d"
  "CMakeFiles/rtr_spf.dir/shortest_path.cc.o"
  "CMakeFiles/rtr_spf.dir/shortest_path.cc.o.d"
  "librtr_spf.a"
  "librtr_spf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_spf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
