# Empty compiler generated dependencies file for rtr_cli.
# This may be replaced when dependencies are built.
