file(REMOVE_RECURSE
  "CMakeFiles/rtr_cli.dir/rtr_cli.cc.o"
  "CMakeFiles/rtr_cli.dir/rtr_cli.cc.o.d"
  "rtr_cli"
  "rtr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
