// Deterministic fault-injection knobs (rtr::fault).
//
// The paper's model is idealized: the failure set is frozen for the
// whole recovery, surviving links never lose or corrupt packets, and
// detection is instant.  FaultOptions describes the adversities a real
// disaster adds -- lossy survivors, byte corruption, duplication,
// delayed detection and links that die (or flap) mid-recovery -- as a
// small set of knobs read from RTR_FAULT_* environment variables or the
// benches' --fault-* flags.  fault::FaultPlan (plan.h) compiles them
// into per-event decisions drawn from a dedicated seeded rtr::Rng
// stream, so every injected fault replays bit-exactly from the seed.
//
// With every knob at its zero default (any() == false) the layer is
// inert: the net/ and core/ hooks reduce to one pointer test and bench
// output stays byte-identical to the fault-free build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace rtr::fault {

struct FaultOptions {
  // Per-hop fates of a packet crossing a surviving link.  The three
  // probabilities partition one uniform draw and must sum to <= 1.
  double loss_prob = 0.0;       ///< RTR_FAULT_LOSS / --fault-loss
  double corrupt_prob = 0.0;    ///< RTR_FAULT_CORRUPT / --fault-corrupt
  double duplicate_prob = 0.0;  ///< RTR_FAULT_DUP / --fault-dup

  /// Failure-detection delay: each recovery starts after a uniform
  /// draw in [0, max) simulated milliseconds instead of instantly.
  double max_detection_delay_ms = 0.0;  ///< RTR_FAULT_DETECT_MS

  /// Dynamic failures: this many surviving links die at uniform times
  /// inside [0, dynamic_window_ms), re-evaluated against the live
  /// net::Simulator clock; with flap_prob each death later revives.
  std::size_t dynamic_links = 0;   ///< RTR_FAULT_DYN_LINKS
  double dynamic_window_ms = 0.0;  ///< RTR_FAULT_DYN_WINDOW_MS
  double flap_prob = 0.0;          ///< RTR_FAULT_FLAP

  // Degradation machinery (core::RecoverySession).
  std::size_t retry_cap = 3;      ///< RTR_FAULT_RETRY_CAP: max attempts
  double backoff_base_ms = 10.0;  ///< RTR_FAULT_BACKOFF_MS: 2^n backoff

  /// Base seed of the fault stream; each work unit forks its own
  /// substream via FaultPlan::stream_seed.  RTR_FAULT_SEED.
  std::uint64_t seed = 0x52545246;  // "RTRF"

  /// True when any injection knob is armed -- the master switch every
  /// hook tests before touching the plan.
  bool any() const {
    return loss_prob > 0.0 || corrupt_prob > 0.0 || duplicate_prob > 0.0 ||
           max_detection_delay_ms > 0.0 || dynamic_links > 0;
  }

  /// Reads the RTR_FAULT_* environment (unset knobs keep defaults).
  static FaultOptions from_env();

  /// One-line provenance fragment (appended to BenchConfig::describe()
  /// when any() is true).
  std::string describe() const;
};

}  // namespace rtr::fault
