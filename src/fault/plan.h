// A compiled, seeded fault plan for one simulated work unit.
//
// FaultPlan turns FaultOptions into concrete per-event decisions:
//   * next_hop_fault() partitions one uniform draw into
//     loss / corrupt / duplicate / none for the hop about to be taken
//     (consumed by net::Network just before it schedules the hop);
//   * next_corrupt_offset()/next_corrupt_mask() pick the flipped byte;
//   * next_detection_delay_ms() delays a recovery's first attempt;
//   * link_down_at() answers whether a dynamic failure has killed a
//     surviving link at a given simulated time -- the death (and
//     optional flap revival) schedule is fixed at construction, so the
//     answer is a pure function of (plan seed, link, time).
//
// Every draw flows through one dedicated rtr::Rng stream seeded from
// (base fault seed, work-unit index) via stream_seed(), and the
// simulator is single-threaded, so the full fault sequence of a work
// unit is bit-reproducible regardless of how many worker threads run
// other work units concurrently.  A plan never touches wall clocks:
// time only enters through the caller-supplied simulated t_ms.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "failure/failure_set.h"
#include "fault/fault.h"
#include "graph/graph.h"

namespace rtr::fault {

/// Fate of one packet-hop on a surviving link.
enum class HopFault : std::uint8_t { kNone, kLoss, kCorrupt, kDuplicate };

/// Tolerance on the loss+corrupt+duplicate sum check: a config like
/// 0.1/0.2/0.7 sums to 1.0000000000000002 in double and is valid.
inline constexpr double kProbSumEpsilon = 1e-9;

class FaultPlan {
 public:
  /// Compiles `opts` against the topology and the static failure set:
  /// dynamic deaths are drawn here (surviving links only, in LinkId
  /// order) so link_down_at() is a cheap const lookup afterwards.
  FaultPlan(const FaultOptions& opts, std::uint64_t stream_seed,
            const graph::Graph& g, const fail::FailureSet& failure);

  /// False when every knob is zero; hooks bail out on this first.
  bool enabled() const { return enabled_; }
  const FaultOptions& options() const { return opts_; }

  /// One partitioned uniform draw for the hop about to be scheduled.
  HopFault next_hop_fault();

  /// Byte offset (in [0, n_bytes)) and single-bit mask of a corruption.
  std::size_t next_corrupt_offset(std::size_t n_bytes);
  std::uint8_t next_corrupt_mask();

  /// Uniform draw in [0, max_detection_delay_ms); 0 when the knob is
  /// off.
  double next_detection_delay_ms();

  /// True when dynamic failure has link l down at simulated time t_ms.
  bool link_down_at(LinkId l, double t_ms) const;

  /// Number of dynamic deaths actually scheduled (<= dynamic_links when
  /// few links survive).
  std::size_t num_dynamic_deaths() const { return deaths_.size(); }

  /// Deterministic per-work-unit substream seed: splitmix64 mix of the
  /// base fault seed and the unit's index, so sibling units draw from
  /// uncorrelated streams and the assignment is independent of thread
  /// scheduling.
  static std::uint64_t stream_seed(std::uint64_t base, std::uint64_t index);

 private:
  struct Death {
    double down_ms = 0.0;
    double up_ms = -1.0;  ///< < 0: stays down forever (no flap)
  };

  FaultOptions opts_;
  bool enabled_ = false;
  Rng rng_;
  std::vector<std::int32_t> death_of_link_;  ///< per link; -1 = none
  std::vector<Death> deaths_;
};

}  // namespace rtr::fault
