#include "fault/fault.h"

#include <cstdlib>
#include <sstream>

namespace rtr::fault {

namespace {

double env_f64(const char* name, double fallback) {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

}  // namespace

FaultOptions FaultOptions::from_env() {
  FaultOptions o;
  o.loss_prob = env_f64("RTR_FAULT_LOSS", o.loss_prob);
  o.corrupt_prob = env_f64("RTR_FAULT_CORRUPT", o.corrupt_prob);
  o.duplicate_prob = env_f64("RTR_FAULT_DUP", o.duplicate_prob);
  o.max_detection_delay_ms =
      env_f64("RTR_FAULT_DETECT_MS", o.max_detection_delay_ms);
  o.dynamic_links = static_cast<std::size_t>(
      env_u64("RTR_FAULT_DYN_LINKS", o.dynamic_links));
  o.dynamic_window_ms =
      env_f64("RTR_FAULT_DYN_WINDOW_MS", o.dynamic_window_ms);
  o.flap_prob = env_f64("RTR_FAULT_FLAP", o.flap_prob);
  o.retry_cap =
      static_cast<std::size_t>(env_u64("RTR_FAULT_RETRY_CAP", o.retry_cap));
  o.backoff_base_ms = env_f64("RTR_FAULT_BACKOFF_MS", o.backoff_base_ms);
  o.seed = env_u64("RTR_FAULT_SEED", o.seed);
  return o;
}

std::string FaultOptions::describe() const {
  std::ostringstream os;
  os << "fault[loss=" << loss_prob << " corrupt=" << corrupt_prob
     << " dup=" << duplicate_prob << " detect-ms=" << max_detection_delay_ms
     << " dyn-links=" << dynamic_links
     << " dyn-window-ms=" << dynamic_window_ms << " flap=" << flap_prob
     << " retry-cap=" << retry_cap << " backoff-ms=" << backoff_base_ms
     << " seed=" << seed << "]";
  return os.str();
}

}  // namespace rtr::fault
