#include "fault/plan.h"

#include <algorithm>

namespace rtr::fault {

namespace {

/// Stateless splitmix64 finalizer (same mixer as Rng::fork()).
std::uint64_t splitmix64(std::uint64_t x) {
  std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t FaultPlan::stream_seed(std::uint64_t base,
                                     std::uint64_t index) {
  return splitmix64(base ^ splitmix64(index));
}

FaultPlan::FaultPlan(const FaultOptions& opts, std::uint64_t stream_seed,
                     const graph::Graph& g, const fail::FailureSet& failure)
    : opts_(opts), enabled_(opts.any()), rng_(stream_seed) {
  RTR_EXPECT_MSG(opts.loss_prob >= 0.0 && opts.loss_prob <= 1.0 &&
                     opts.corrupt_prob >= 0.0 && opts.corrupt_prob <= 1.0 &&
                     opts.duplicate_prob >= 0.0 &&
                     opts.duplicate_prob <= 1.0,
                 "per-hop fault probabilities must lie in [0, 1]");
  // Epsilon absorbs float rounding in the sum: 0.1 + 0.2 + 0.7 is
  // 1.0000000000000002 in double and must still be accepted.
  RTR_EXPECT_MSG(
      opts.loss_prob + opts.corrupt_prob + opts.duplicate_prob <=
          1.0 + kProbSumEpsilon,
      "per-hop fault probabilities must sum to at most 1");
  RTR_EXPECT_MSG(opts.flap_prob >= 0.0 && opts.flap_prob <= 1.0,
                 "flap probability must lie in [0, 1]");
  RTR_EXPECT_MSG(opts.max_detection_delay_ms >= 0.0 &&
                     opts.backoff_base_ms >= 0.0,
                 "fault delays must be non-negative");
  if (!enabled_ || opts.dynamic_links == 0) return;
  RTR_EXPECT_MSG(opts.dynamic_window_ms > 0.0,
                 "dynamic failures need a positive window");
  // Candidate pool: surviving links, in LinkId order, so the draw below
  // depends only on the rng stream and the static failure set.
  std::vector<LinkId> pool;
  for (std::size_t l = 0; l < g.num_links(); ++l) {
    if (!failure.link_failed(static_cast<LinkId>(l))) {
      pool.push_back(static_cast<LinkId>(l));
    }
  }
  death_of_link_.assign(g.num_links(), -1);
  const std::size_t want = std::min(opts.dynamic_links, pool.size());
  for (std::size_t k = 0; k < want; ++k) {
    const std::size_t j = rng_.index(pool.size());
    const LinkId victim = pool[j];
    pool[j] = pool.back();
    pool.pop_back();
    Death d;
    d.down_ms = rng_.uniform_real(0.0, opts.dynamic_window_ms);
    if (rng_.bernoulli(opts.flap_prob)) {
      d.up_ms =
          d.down_ms +
          rng_.uniform_real(0.0, opts.dynamic_window_ms - d.down_ms);
    }
    death_of_link_[victim] = static_cast<std::int32_t>(deaths_.size());
    deaths_.push_back(d);
  }
}

HopFault FaultPlan::next_hop_fault() {
  // Clamp the partition: the ctor tolerates a rounded sum slightly
  // above 1, but the draw in [0, 1) must never fall past the duplicate
  // band into an impossible fourth region.
  const double total = std::min(
      opts_.loss_prob + opts_.corrupt_prob + opts_.duplicate_prob, 1.0);
  if (total <= 0.0) return HopFault::kNone;
  const double u = rng_.uniform_real(0.0, 1.0);
  if (u < opts_.loss_prob) return HopFault::kLoss;
  if (u < opts_.loss_prob + opts_.corrupt_prob) return HopFault::kCorrupt;
  if (u < total) return HopFault::kDuplicate;
  return HopFault::kNone;
}

std::size_t FaultPlan::next_corrupt_offset(std::size_t n_bytes) {
  RTR_EXPECT_MSG(n_bytes > 0, "cannot corrupt an empty encoding");
  return rng_.index(n_bytes);
}

std::uint8_t FaultPlan::next_corrupt_mask() {
  return static_cast<std::uint8_t>(1U << rng_.index(8));
}

double FaultPlan::next_detection_delay_ms() {
  if (opts_.max_detection_delay_ms <= 0.0) return 0.0;
  return rng_.uniform_real(0.0, opts_.max_detection_delay_ms);
}

bool FaultPlan::link_down_at(LinkId l, double t_ms) const {
  if (deaths_.empty()) return false;
  RTR_EXPECT(static_cast<std::size_t>(l) < death_of_link_.size());
  const std::int32_t i = death_of_link_[l];
  if (i < 0) return false;
  const Death& d = deaths_[static_cast<std::size_t>(i)];
  return t_ms >= d.down_ms && (d.up_ms < 0.0 || t_ms < d.up_ms);
}

}  // namespace rtr::fault
