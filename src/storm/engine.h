// Budgeted incremental re-planning over a storm timeline.
//
// StormEngine::run() walks a compiled StormTimeline tick by tick,
// maintaining the cumulative failure masks and one repaired SPT per
// planning source, always derived from the shared undamaged base trees
// via spf::repair_spt -- never from scratch while the delta stays
// under the fallback fraction (repair_spt's own guard).  Repair work
// is metered in the SNS copy-machine style: each tick grants
// budget_ops credits (touched-node units), unspent credit carries
// over, overdraw carries as deficit, and sources whose repair the
// budget cannot fund this tick stall (counted) and retry next tick.
// After the storm passes, drain ticks keep granting credit until every
// stale source is repaired, so the final trees are a pure function of
// the final failure state -- throttling only changes WHEN each tree
// converges, never what it converges to (the property tests pin this).
//
// Everything is deterministic: sources repair in ascending id order,
// the timeline is pre-compiled, and no wall clock is read.  The
// rtr.storm.* counters are registered lazily on first armed run, so a
// storms-off process emits no storm series at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "failure/failure_set.h"
#include "graph/graph.h"
#include "spf/batch_repair.h"
#include "spf/shortest_path.h"
#include "storm/timeline.h"

namespace rtr::storm {

struct StormEngineOptions {
  /// Touched-node repair credits granted per tick; 0 = unlimited.
  std::size_t budget_ops = 0;
  /// Forwarded to spf::repair_spt (fallback threshold).
  spf::BatchRepairOptions repair;
};

/// Per-tick account of what the storm did and what repair it bought.
struct StormTickStats {
  std::size_t tick = 0;
  std::size_t links_down = 0;
  std::size_t links_up = 0;
  std::size_t nodes_down = 0;
  std::size_t shadowed_flaps = 0;
  std::size_t failed_links = 0;  ///< cumulative dead links after the tick
  std::size_t repairs = 0;       ///< repair_spt calls funded this tick
  std::size_t fallbacks = 0;     ///< repairs that took the full-recompute path
  std::size_t shared = 0;        ///< repairs satisfied by the shared base
  std::size_t repair_ops = 0;    ///< touched-node units charged this tick
  std::size_t budget_stalls = 0; ///< stale sources the budget left waiting
};

/// One engine run: the tick accounts plus converged final state.
struct StormRunResult {
  std::vector<StormTickStats> per_tick;  ///< storm ticks then drain ticks
  std::size_t storm_ticks = 0;
  std::size_t drain_ticks = 0;  ///< extra ticks needed to clear the backlog

  std::size_t total_repairs = 0;
  std::size_t total_fallbacks = 0;
  std::size_t total_repair_ops = 0;
  std::size_t total_budget_stalls = 0;

  /// Final repaired tree per planning source (sources order).
  std::vector<std::shared_ptr<const spf::SptResult>> trees;
  /// (source, node) pairs with the node alive yet unreachable in the
  /// final tree -- the storm's lasting partition damage.
  std::size_t unreachable_pairs = 0;
  /// Order-independent digest of every final tree's distances and
  /// parents; byte-identical across thread counts and budgets.
  std::uint64_t dist_digest = 0;
};

/// Runs the timeline.  `store` must be the base-tree store of the
/// UNDAMAGED graph; `base` (may be null) is the scenario's static
/// failure the timeline was compiled against; `sources` are the
/// planning roots (ascending, unique).  Updates rtr.storm.* counters.
StormRunResult run_storm(const graph::Graph& g,
                         const spf::BaseTreeStore& store,
                         const StormTimeline& tl,
                         const fail::FailureSet* base,
                         const std::vector<NodeId>& sources,
                         const StormEngineOptions& opts = {});

}  // namespace rtr::storm
