#include "storm/storm.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/expect.h"
#include "common/rng.h"

namespace rtr::storm {

namespace {

double env_f64(const char* name, double fallback) {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

}  // namespace

StormOptions StormOptions::from_env() {
  StormOptions o;
  o.ticks = static_cast<std::size_t>(env_u64("RTR_STORM_TICKS", o.ticks));
  o.tick_ms = env_f64("RTR_STORM_TICK_MS", o.tick_ms);
  o.cells = static_cast<std::size_t>(env_u64("RTR_STORM_CELLS", o.cells));
  o.radius = env_f64("RTR_STORM_RADIUS", o.radius);
  o.growth = env_f64("RTR_STORM_GROWTH", o.growth);
  o.speed = env_f64("RTR_STORM_SPEED", o.speed);
  o.flap_prob = env_f64("RTR_STORM_FLAP", o.flap_prob);
  o.budget_ops =
      static_cast<std::size_t>(env_u64("RTR_STORM_BUDGET", o.budget_ops));
  o.seed = env_u64("RTR_STORM_SEED", o.seed);
  // NOLINTNEXTLINE(concurrency-mt-unsafe): env read before workers start
  const char* waypoints = std::getenv("RTR_STORM_WAYPOINTS");
  if (waypoints != nullptr && *waypoints != '\0') o.waypoint_file = waypoints;
  return o;
}

std::string StormOptions::describe() const {
  std::ostringstream os;
  os << "storm[ticks=" << ticks << " tick-ms=" << tick_ms
     << " cells=" << cells << " radius=" << radius << " growth=" << growth
     << " speed=" << speed << " flap=" << flap_prob
     << " budget=" << budget_ops << " seed=" << seed;
  if (!waypoint_file.empty()) os << " waypoints=" << waypoint_file;
  os << "]";
  return os.str();
}

namespace {

[[noreturn]] void waypoint_error(const std::string& path, std::size_t line,
                                 const std::string& msg) {
  std::ostringstream os;
  os << "storm waypoints: " << path << ":" << line << ": " << msg;
  throw std::runtime_error(os.str());
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  const std::size_t e = s.find_last_not_of(" \t\r");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

bool parse_field_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_field_f64(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

struct Waypoint {
  std::size_t tick = 0;
  geom::Point pos;
  double radius = 0.0;
};

}  // namespace

std::vector<StormCell> load_waypoints(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("storm waypoints: cannot open " + path);
  }
  // Group rows by cell id; file order fixes the per-cell waypoint order
  // (ticks must strictly increase within a cell), the sorted map fixes
  // the cell order, so the segment list is a pure function of the bytes.
  std::map<std::uint64_t, std::vector<Waypoint>> tracks;
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
      const std::size_t comma = line.find(',', start);
      fields.push_back(trim(line.substr(start, comma - start)));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (fields.size() != 5) {
      waypoint_error(path, lineno,
                     "expected 5 fields (cell,tick,x,y,radius), got " +
                         std::to_string(fields.size()));
    }
    std::uint64_t cell = 0, tick = 0;
    Waypoint w;
    if (!parse_field_u64(fields[0], &cell)) {
      waypoint_error(path, lineno, "bad cell id '" + fields[0] + "'");
    }
    if (!parse_field_u64(fields[1], &tick)) {
      waypoint_error(path, lineno, "bad tick '" + fields[1] + "'");
    }
    if (!parse_field_f64(fields[2], &w.pos.x)) {
      waypoint_error(path, lineno, "bad x '" + fields[2] + "'");
    }
    if (!parse_field_f64(fields[3], &w.pos.y)) {
      waypoint_error(path, lineno, "bad y '" + fields[3] + "'");
    }
    if (!parse_field_f64(fields[4], &w.radius) || w.radius <= 0.0) {
      waypoint_error(path, lineno,
                     "bad radius '" + fields[4] + "' (must be > 0)");
    }
    w.tick = static_cast<std::size_t>(tick);
    std::vector<Waypoint>& track = tracks[cell];
    if (!track.empty() && w.tick <= track.back().tick) {
      waypoint_error(path, lineno,
                     "ticks of cell " + std::to_string(cell) +
                         " must strictly increase");
    }
    track.push_back(w);
  }
  if (tracks.empty()) {
    throw std::runtime_error("storm waypoints: " + path +
                             " has no waypoint rows");
  }
  std::vector<StormCell> cells;
  for (const auto& [id, track] : tracks) {
    if (track.size() < 2) {
      throw std::runtime_error(
          "storm waypoints: " + path + ": cell " + std::to_string(id) +
          " needs at least 2 waypoints to define a track");
    }
    for (std::size_t i = 0; i + 1 < track.size(); ++i) {
      const Waypoint& a = track[i];
      const Waypoint& b = track[i + 1];
      const double dt = static_cast<double>(b.tick - a.tick);
      StormCell cell;
      cell.origin = a.pos;
      cell.velocity = (b.pos - a.pos) * (1.0 / dt);
      cell.radius0 = a.radius;
      cell.radius_growth = (b.radius - a.radius) / dt;
      cell.start_tick = a.tick;
      // Segments hand off half-open at the next waypoint; the last one
      // stays active through its final waypoint's tick.
      cell.end_tick = i + 2 == track.size() ? b.tick + 1 : b.tick;
      cells.push_back(cell);
    }
  }
  return cells;
}

StormSpec make_storm_spec(const StormOptions& opts,
                          std::uint64_t stream_seed,
                          const std::vector<StormCell>* waypoint_cells) {
  RTR_EXPECT(opts.any());
  RTR_EXPECT(opts.cells > 0);
  RTR_EXPECT(opts.extent > 0.0);
  RTR_EXPECT(opts.flap_prob >= 0.0 && opts.flap_prob <= 1.0);
  StormSpec spec;
  spec.ticks = opts.ticks;
  spec.tick_ms = opts.tick_ms;
  spec.flap_prob = opts.flap_prob;
  if (waypoint_cells != nullptr || !opts.waypoint_file.empty()) {
    std::vector<StormCell> loaded;
    if (waypoint_cells == nullptr) {
      loaded = load_waypoints(opts.waypoint_file);
      waypoint_cells = &loaded;
    }
    // Recorded track: the roster is fixed data, no random draws at all
    // (ticks past the horizon simply never activate downstream).
    spec.cells = *waypoint_cells;
    return spec;
  }
  Rng rng(stream_seed);
  spec.cells.reserve(opts.cells);
  // Fixed draw order per cell (x, y, heading, stagger) keeps the spec a
  // pure function of (options, stream_seed) regardless of cell count
  // changes elsewhere.
  for (std::size_t c = 0; c < opts.cells; ++c) {
    StormCell cell;
    cell.origin.x = rng.uniform_real(0.0, opts.extent);
    cell.origin.y = rng.uniform_real(0.0, opts.extent);
    const double heading = rng.uniform_real(0.0, 2.0 * M_PI);
    cell.velocity = {opts.speed * std::cos(heading),
                     opts.speed * std::sin(heading)};
    cell.radius0 = opts.radius;
    cell.radius_growth = opts.growth;
    cell.start_tick = c == 0 ? 0 : rng.index(opts.ticks / 2 + 1);
    cell.end_tick = opts.ticks;
    spec.cells.push_back(cell);
  }
  return spec;
}

}  // namespace rtr::storm
