#include "storm/storm.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/expect.h"
#include "common/rng.h"

namespace rtr::storm {

namespace {

double env_f64(const char* name, double fallback) {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

}  // namespace

StormOptions StormOptions::from_env() {
  StormOptions o;
  o.ticks = static_cast<std::size_t>(env_u64("RTR_STORM_TICKS", o.ticks));
  o.tick_ms = env_f64("RTR_STORM_TICK_MS", o.tick_ms);
  o.cells = static_cast<std::size_t>(env_u64("RTR_STORM_CELLS", o.cells));
  o.radius = env_f64("RTR_STORM_RADIUS", o.radius);
  o.growth = env_f64("RTR_STORM_GROWTH", o.growth);
  o.speed = env_f64("RTR_STORM_SPEED", o.speed);
  o.flap_prob = env_f64("RTR_STORM_FLAP", o.flap_prob);
  o.budget_ops =
      static_cast<std::size_t>(env_u64("RTR_STORM_BUDGET", o.budget_ops));
  o.seed = env_u64("RTR_STORM_SEED", o.seed);
  return o;
}

std::string StormOptions::describe() const {
  std::ostringstream os;
  os << "storm[ticks=" << ticks << " tick-ms=" << tick_ms
     << " cells=" << cells << " radius=" << radius << " growth=" << growth
     << " speed=" << speed << " flap=" << flap_prob
     << " budget=" << budget_ops << " seed=" << seed << "]";
  return os.str();
}

StormSpec make_storm_spec(const StormOptions& opts,
                          std::uint64_t stream_seed) {
  RTR_EXPECT(opts.any());
  RTR_EXPECT(opts.cells > 0);
  RTR_EXPECT(opts.extent > 0.0);
  RTR_EXPECT(opts.flap_prob >= 0.0 && opts.flap_prob <= 1.0);
  Rng rng(stream_seed);
  StormSpec spec;
  spec.ticks = opts.ticks;
  spec.tick_ms = opts.tick_ms;
  spec.flap_prob = opts.flap_prob;
  spec.cells.reserve(opts.cells);
  // Fixed draw order per cell (x, y, heading, stagger) keeps the spec a
  // pure function of (options, stream_seed) regardless of cell count
  // changes elsewhere.
  for (std::size_t c = 0; c < opts.cells; ++c) {
    StormCell cell;
    cell.origin.x = rng.uniform_real(0.0, opts.extent);
    cell.origin.y = rng.uniform_real(0.0, opts.extent);
    const double heading = rng.uniform_real(0.0, 2.0 * M_PI);
    cell.velocity = {opts.speed * std::cos(heading),
                     opts.speed * std::sin(heading)};
    cell.radius0 = opts.radius;
    cell.radius_growth = opts.growth;
    cell.start_tick = c == 0 ? 0 : rng.index(opts.ticks / 2 + 1);
    cell.end_tick = opts.ticks;
    spec.cells.push_back(cell);
  }
  return spec;
}

}  // namespace rtr::storm
