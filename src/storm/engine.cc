#include "storm/engine.h"

#include <cstring>

#include "common/expect.h"
#include "obs/metrics.h"

namespace rtr::storm {

namespace {

/// Lazily registered rtr.storm.* series: a storms-off process never
/// calls run_storm(), so it emits no storm series at all and its
/// metrics JSON stays byte-identical to a build without this layer.
struct StormMetrics {
  obs::Counter& ticks;
  obs::Counter& delta_links;
  obs::Counter& delta_nodes;
  obs::Counter& repairs;
  obs::Counter& fallbacks;
  obs::Counter& budget_stalls;
  obs::Counter& shadowed_flaps;

  static StormMetrics& get() {
    obs::Registry& r = obs::Registry::global();
    // lint:allow(mutable-static) — references into the sharded obs registry
    static StormMetrics m{r.counter("rtr.storm.ticks"),
                          r.counter("rtr.storm.delta_links"),
                          r.counter("rtr.storm.delta_nodes"),
                          r.counter("rtr.storm.repairs"),
                          r.counter("rtr.storm.fallbacks"),
                          r.counter("rtr.storm.budget_stalls"),
                          r.counter("rtr.storm.shadowed_flaps")};
    return m;
  }
};

/// splitmix64 finalizer: the digest's per-value mixer.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t cost_bits(Cost c) {
  std::uint64_t b = 0;
  static_assert(sizeof(Cost) == sizeof(b));
  std::memcpy(&b, &c, sizeof(b));
  return b;
}

/// The canonical tree of a destroyed source: everything unreachable.
/// Matches what dijkstra_from/bfs_from return for a masked root, so
/// budgeted and unbudgeted runs agree without exercising repair_spt on
/// a seed set that contains the root itself.
std::shared_ptr<const spf::SptResult> dead_source_tree(
    const graph::Graph& g, NodeId source) {
  auto r = std::make_shared<spf::SptResult>();
  r->source = source;
  r->dist.assign(g.num_nodes(), kInfCost);
  r->parent_link.assign(g.num_nodes(), kNoLink);
  r->parent.assign(g.num_nodes(), kNoNode);
  return r;
}

}  // namespace

StormRunResult run_storm(const graph::Graph& g,
                         const spf::BaseTreeStore& store,
                         const StormTimeline& tl,
                         const fail::FailureSet* base,
                         const std::vector<NodeId>& sources,
                         const StormEngineOptions& opts) {
  for (std::size_t i = 0; i + 1 < sources.size(); ++i) {
    RTR_EXPECT(sources[i] < sources[i + 1]);  // ascending, unique
  }
  StormMetrics& metrics = StormMetrics::get();

  // Live failure masks, advanced in place by each tick's delta.  The
  // storm only ever revives links it downed itself, so starting from
  // the static scenario state is safe.
  std::vector<char> node_mask =
      base != nullptr ? base->node_mask() : std::vector<char>(g.num_nodes(), 0);
  std::vector<char> link_mask =
      base != nullptr ? base->link_mask() : std::vector<char>(g.num_links(), 0);
  const graph::Masks masks{&node_mask, &link_mask};
  std::size_t failed_links = 0;
  for (char c : link_mask) failed_links += static_cast<std::size_t>(c != 0);

  StormRunResult res;
  res.storm_ticks = tl.ticks.size();
  res.trees.assign(sources.size(), nullptr);
  std::vector<char> stale(sources.size(), 1);  // base state not yet planned
  std::size_t num_stale = sources.size();

  const bool throttled = opts.budget_ops > 0;
  std::int64_t credit = 0;  // carried surplus (> 0) or deficit (< 0)

  // Funds and runs repairs for this tick, ascending source order, until
  // the backlog clears or the credit runs out.
  const auto process = [&](StormTickStats& ts) {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (stale[i] == 0) continue;
      if (throttled && credit <= 0) break;
      std::shared_ptr<const spf::SptResult> tree;
      std::size_t cost = 1;
      if (node_mask[sources[i]] != 0) {
        tree = dead_source_tree(g, sources[i]);
      } else {
        spf::BatchRepairStats st;
        tree = spf::repair_spt(g, store.from(sources[i]), masks,
                               store.algorithm(), opts.repair, &st);
        cost = st.touched > 0 ? st.touched : 1;
        if (st.path == spf::RepairPath::kFallback) ++ts.fallbacks;
        if (st.path == spf::RepairPath::kShared) ++ts.shared;
      }
      res.trees[i] = std::move(tree);
      stale[i] = 0;
      --num_stale;
      ++ts.repairs;
      ts.repair_ops += cost;
      if (throttled) credit -= static_cast<std::int64_t>(cost);
    }
    ts.budget_stalls = num_stale;
  };

  const auto account = [&](const StormTickStats& ts) {
    metrics.ticks.inc();
    metrics.delta_links.add(ts.links_down + ts.links_up);
    metrics.delta_nodes.add(ts.nodes_down);
    metrics.repairs.add(ts.repairs);
    metrics.fallbacks.add(ts.fallbacks);
    metrics.budget_stalls.add(ts.budget_stalls);
    metrics.shadowed_flaps.add(ts.shadowed_flaps);
    res.total_repairs += ts.repairs;
    res.total_fallbacks += ts.fallbacks;
    res.total_repair_ops += ts.repair_ops;
    res.total_budget_stalls += ts.budget_stalls;
  };

  for (std::size_t t = 0; t < tl.ticks.size(); ++t) {
    const TickDelta& d = tl.ticks[t];
    StormTickStats ts;
    ts.tick = t;
    ts.links_down = d.links_down.size();
    ts.links_up = d.links_up.size();
    ts.nodes_down = d.nodes_down.size();
    ts.shadowed_flaps = d.shadowed_flaps;
    for (LinkId l : d.links_down) link_mask[l] = 1;
    for (LinkId l : d.links_up) link_mask[l] = 0;
    for (NodeId n : d.nodes_down) node_mask[n] = 1;
    failed_links += ts.links_down;
    RTR_EXPECT(failed_links >= ts.links_up);
    failed_links -= ts.links_up;
    ts.failed_links = failed_links;
    if (!d.empty() && num_stale < sources.size()) {
      // Any state change invalidates every planned tree.
      for (std::size_t i = 0; i < sources.size(); ++i) stale[i] = 1;
      num_stale = sources.size();
    }
    if (throttled) credit += static_cast<std::int64_t>(opts.budget_ops);
    process(ts);
    account(ts);
    res.per_tick.push_back(ts);
  }

  // Drain: the storm is over, the masks are final; keep granting the
  // per-tick budget until the backlog clears.  budget_ops >= 1 makes
  // the credit strictly increase on stalled ticks, so this terminates.
  while (num_stale > 0) {
    StormTickStats ts;
    ts.tick = tl.ticks.size() + res.drain_ticks;
    ts.failed_links = failed_links;
    if (throttled) credit += static_cast<std::int64_t>(opts.budget_ops);
    process(ts);
    account(ts);
    res.per_tick.push_back(ts);
    ++res.drain_ticks;
  }

  // Final-state accounting: lost pairs and the tree digest.  XOR of
  // per-entry mixes is order-independent, so the digest is a pure
  // function of the final trees alone.
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const spf::SptResult& tree = *res.trees[i];
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (!tree.reachable(v)) {
        if (node_mask[v] == 0 && v != sources[i]) ++res.unreachable_pairs;
        continue;
      }
      res.dist_digest ^= mix64((static_cast<std::uint64_t>(sources[i]) << 32) ^
                               v ^ mix64(cost_bits(tree.dist[v])) ^
                               mix64(tree.parent[v]));
    }
  }
  return res;
}

}  // namespace rtr::storm
