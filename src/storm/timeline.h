// Storm timelines: per-tick FailureSet deltas of a compiled StormSpec.
//
// compile_timeline() evaluates a StormSpec against one topology and an
// optional base (static) failure set, producing the exact sequence of
// link/node state transitions per tick.  The evaluation order is fixed
// (ticks ascending, ids ascending within a tick) and every stochastic
// choice -- the per-episode flap draw -- comes from the spec's own
// seeded Rng, so a timeline is a pure function of (spec, stream seed,
// topology, base failure): byte-identical at any thread count.
//
// Semantics (DESIGN.md section 11):
//   * a node dies the first tick it sits inside an active cell and
//     stays dead (router destruction is permanent);
//   * a link is storm-covered when any active cell's circle intersects
//     its segment (the geometric cut rule of Section II-A);
//   * on each false->true coverage transition a link draws once
//     whether this episode flaps; a flapping link alternates
//     dead/alive per tick inside the episode, a non-flapping one
//     stays dead until coverage ends;
//   * a link with a dead endpoint is dead regardless of coverage;
//   * fault-plan overlay (precedence fix): storm area state wins.  A
//     FaultPlan link-death or flap revival landing on a link whose
//     storm state is already dead is a no-op counted in
//     shadowed_flaps; on storm-alive links the plan's state applies.
//
// Base-failed links and nodes never appear in a delta: the storm only
// moves state the scenario's static failure left alive.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"
#include "failure/failure_set.h"
#include "fault/plan.h"
#include "graph/graph.h"
#include "storm/storm.h"

namespace rtr::storm {

/// State transitions of one tick, ids ascending.
struct TickDelta {
  std::vector<LinkId> links_down;  ///< alive -> dead this tick
  std::vector<LinkId> links_up;    ///< dead -> alive (flap revivals)
  std::vector<NodeId> nodes_down;  ///< destroyed this tick (permanent)
  /// Fault-plan transitions shadowed by storm-dead area state.
  std::size_t shadowed_flaps = 0;

  bool empty() const {
    return links_down.empty() && links_up.empty() && nodes_down.empty();
  }
};

/// The compiled per-tick delta stream of one scenario's storm.
struct StormTimeline {
  double tick_ms = 10.0;
  std::vector<TickDelta> ticks;

  std::size_t total_links_down() const;
  std::size_t total_links_up() const;
  std::size_t total_nodes_down() const;
  std::size_t total_shadowed_flaps() const;
};

/// Evaluates `spec` against `g`.  `base` (may be null) is the
/// scenario's static failure set: its dead links/nodes are excluded
/// from storm state entirely.  `plan` (may be null) overlays the
/// packet-level fault layer's dynamic link deaths/flaps at each tick's
/// simulated time (t * tick_ms) under area-wins precedence.
/// `stream_seed` seeds the flap draws (same substream convention as
/// make_storm_spec; pass the same seed for one scenario).
StormTimeline compile_timeline(const StormSpec& spec, const graph::Graph& g,
                               std::uint64_t stream_seed,
                               const fail::FailureSet* base = nullptr,
                               const fault::FaultPlan* plan = nullptr);

/// Cumulative failure state after ticks [0, t] replayed over `base`
/// (base alone when t_end == 0; the full storm when t_end ==
/// ticks.size()).  The from-scratch oracle of the incremental-repair
/// property tests.
fail::FailureSet cumulative_failure(const StormTimeline& tl,
                                    const graph::Graph& g,
                                    const fail::FailureSet* base,
                                    std::size_t t_end);

/// One line per tick -- "t=<i> down=<a> up=<b> nodes=<c> shadowed=<d>"
/// -- for golden files and cross-thread byte comparison.
std::string format_timeline(const StormTimeline& tl);

}  // namespace rtr::storm
