#include "storm/timeline.h"

#include <sstream>

#include "common/expect.h"
#include "common/rng.h"
#include "geom/circle.h"

namespace rtr::storm {

namespace {

/// True when any cell active at tick t covers point p.
bool covers_node(const StormSpec& spec, std::size_t t, geom::Point p) {
  for (const StormCell& c : spec.cells) {
    if (!c.active(t)) continue;
    if (geom::Circle{c.center(t), c.radius(t)}.contains(p)) return true;
  }
  return false;
}

/// True when any cell active at tick t cuts segment s (geometric rule).
bool covers_link(const StormSpec& spec, std::size_t t,
                 const geom::Segment& s) {
  for (const StormCell& c : spec.cells) {
    if (!c.active(t)) continue;
    if (geom::Circle{c.center(t), c.radius(t)}.intersects(s)) return true;
  }
  return false;
}

}  // namespace

std::size_t StormTimeline::total_links_down() const {
  std::size_t n = 0;
  for (const TickDelta& d : ticks) n += d.links_down.size();
  return n;
}

std::size_t StormTimeline::total_links_up() const {
  std::size_t n = 0;
  for (const TickDelta& d : ticks) n += d.links_up.size();
  return n;
}

std::size_t StormTimeline::total_nodes_down() const {
  std::size_t n = 0;
  for (const TickDelta& d : ticks) n += d.nodes_down.size();
  return n;
}

std::size_t StormTimeline::total_shadowed_flaps() const {
  std::size_t n = 0;
  for (const TickDelta& d : ticks) n += d.shadowed_flaps;
  return n;
}

StormTimeline compile_timeline(const StormSpec& spec, const graph::Graph& g,
                               std::uint64_t stream_seed,
                               const fail::FailureSet* base,
                               const fault::FaultPlan* plan) {
  RTR_EXPECT(spec.tick_ms > 0.0);
  Rng rng(stream_seed);
  StormTimeline tl;
  tl.tick_ms = spec.tick_ms;
  tl.ticks.resize(spec.ticks);

  const auto base_node_dead = [&](NodeId n) {
    return base != nullptr && base->node_failed(n);
  };
  const auto base_link_dead = [&](LinkId l) {
    return base != nullptr && base->link_failed(l);
  };

  std::vector<char> node_dead(g.num_nodes(), 0);
  std::vector<char> prev_effective(g.num_links(), 0);
  std::vector<char> prev_fault_dead(g.num_links(), 0);
  std::vector<char> was_covered(g.num_links(), 0);
  std::vector<char> flapper(g.num_links(), 0);
  std::vector<std::size_t> episode_start(g.num_links(), 0);

  for (std::size_t t = 0; t < spec.ticks; ++t) {
    TickDelta& delta = tl.ticks[t];
    const double t_ms = static_cast<double>(t) * spec.tick_ms;

    // Nodes first: a router destroyed this tick already counts as a
    // dead endpoint for this tick's link pass.  Destruction is
    // permanent (no node revival).
    for (NodeId n = 0; n < g.node_count(); ++n) {
      if (node_dead[n] || base_node_dead(n)) continue;
      if (covers_node(spec, t, g.position(n))) {
        node_dead[n] = 1;
        delta.nodes_down.push_back(n);
      }
    }

    // Links in id order: the per-episode flap draws consume the Rng in
    // this fixed order, so the timeline is a pure function of
    // (spec, stream_seed, g, base) -- the fault plan never shifts it.
    for (LinkId l = 0; l < g.link_count(); ++l) {
      if (base_link_dead(l)) continue;
      const graph::Link& lk = g.link(l);
      const bool endpoint_dead =
          node_dead[lk.u] != 0 || node_dead[lk.v] != 0;
      const bool covered = covers_link(spec, t, g.segment(l));
      if (covered && !was_covered[l]) {
        episode_start[l] = t;
        flapper[l] = static_cast<char>(!endpoint_dead && spec.flap_prob > 0.0
                                           ? rng.bernoulli(spec.flap_prob)
                                           : false);
      }
      was_covered[l] = static_cast<char>(covered);

      // Flapping links alternate dead (even episode tick) / alive (odd).
      const bool flap_alive =
          flapper[l] != 0 && ((t - episode_start[l]) % 2 == 1);
      const bool storm_dead = endpoint_dead || (covered && !flap_alive);

      // Fault-layer overlay, area-wins precedence: on a storm-dead
      // link any fault-plan transition is a shadowed no-op.
      const bool fault_dead = plan != nullptr && plan->link_down_at(l, t_ms);
      if (storm_dead && fault_dead != (prev_fault_dead[l] != 0)) {
        ++delta.shadowed_flaps;
      }
      prev_fault_dead[l] = static_cast<char>(fault_dead);

      const bool effective = storm_dead || fault_dead;
      if (effective && prev_effective[l] == 0) {
        delta.links_down.push_back(l);
      } else if (!effective && prev_effective[l] != 0) {
        delta.links_up.push_back(l);
      }
      prev_effective[l] = static_cast<char>(effective);
    }
  }
  return tl;
}

fail::FailureSet cumulative_failure(const StormTimeline& tl,
                                    const graph::Graph& g,
                                    const fail::FailureSet* base,
                                    std::size_t t_end) {
  RTR_EXPECT(t_end <= tl.ticks.size());
  std::vector<char> link_dead(g.num_links(), 0);
  std::vector<char> node_dead(g.num_nodes(), 0);
  for (std::size_t t = 0; t < t_end; ++t) {
    const TickDelta& d = tl.ticks[t];
    for (LinkId l : d.links_down) link_dead[l] = 1;
    for (LinkId l : d.links_up) link_dead[l] = 0;
    for (NodeId n : d.nodes_down) node_dead[n] = 1;
  }
  fail::FailureSet fs = base != nullptr ? *base : fail::FailureSet(g);
  // Nodes before links: add_node also fails incident links, all of
  // which the replay already holds dead (endpoint death forces the
  // storm link state), so the order cannot resurrect anything.
  for (NodeId n = 0; n < g.node_count(); ++n) {
    if (node_dead[n] != 0) fs.add_node(g, n);
  }
  for (LinkId l = 0; l < g.link_count(); ++l) {
    if (link_dead[l] != 0) fs.add_link(l);
  }
  return fs;
}

std::string format_timeline(const StormTimeline& tl) {
  std::ostringstream os;
  for (std::size_t t = 0; t < tl.ticks.size(); ++t) {
    const TickDelta& d = tl.ticks[t];
    os << "t=" << t << " down=" << d.links_down.size()
       << " up=" << d.links_up.size() << " nodes=" << d.nodes_down.size()
       << " shadowed=" << d.shadowed_flaps << "\n";
  }
  return os.str();
}

}  // namespace rtr::storm
