// Rolling-disaster specifications (rtr::storm).
//
// The paper freezes one failure area per scenario; real large-scale
// events (hurricanes, cascading grid outages) grow, move, flap and
// overlap over time.  StormOptions describes such an event as a small
// set of knobs read from RTR_STORM_* environment variables or the
// benches' --storm-* flags; make_storm_spec() compiles them -- through
// one seeded rtr::Rng substream per scenario -- into a concrete
// StormSpec: a fixed roster of moving circular cells with linear
// tracks, per-tick radius growth/decay and staggered lifetimes.  The
// spec is a pure function of (options, stream seed): no wall clocks,
// no global state, so every trajectory replays bit-exactly at any
// thread count (timeline.h turns a spec into per-tick FailureSet
// deltas; engine.h re-plans against them under a repair budget).
//
// With ticks == 0 (any() == false) the layer is inert: the exp runner
// never constructs a spec and bench output stays byte-identical to a
// storm-free build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"

namespace rtr::storm {

struct StormOptions {
  /// Number of simulated ticks the storm lasts; 0 disarms the layer.
  std::size_t ticks = 0;  ///< RTR_STORM_TICKS / --storm-ticks

  /// Simulated milliseconds per tick (aligns storm time with the
  /// fault layer's link-death schedule).
  double tick_ms = 10.0;  ///< RTR_STORM_TICK_MS / --storm-tick-ms

  /// Concurrent storm cells (overlapping areas; cells after the first
  /// start at staggered ticks).
  std::size_t cells = 1;  ///< RTR_STORM_CELLS / --storm-cells

  /// Initial cell radius, in embedding units.
  double radius = 150.0;  ///< RTR_STORM_RADIUS / --storm-radius

  /// Per-tick radius delta: > 0 grows, < 0 decays (a cell whose radius
  /// reaches 0 is spent).
  double growth = 0.0;  ///< RTR_STORM_GROWTH / --storm-growth

  /// Track speed, in embedding units per tick.
  double speed = 40.0;  ///< RTR_STORM_SPEED / --storm-speed

  /// Probability that a link entering storm coverage flaps (alternates
  /// dead/alive each tick) instead of staying down for the episode.
  double flap_prob = 0.0;  ///< RTR_STORM_FLAP / --storm-flap

  /// Repair budget in touched-node ops per tick; 0 = unlimited.
  /// Unspent credit carries over; overdraw carries as deficit (the
  /// SNS copy-machine throttle).
  std::size_t budget_ops = 0;  ///< RTR_STORM_BUDGET / --storm-budget

  /// Side of the square the cell origins are drawn from (matches
  /// fail::ScenarioConfig::extent; benches override from topology
  /// geometry -- no env knob).
  double extent = 2000.0;

  /// Base seed of the storm stream; each scenario forks its own
  /// substream via fault::FaultPlan::stream_seed.  RTR_STORM_SEED.
  std::uint64_t seed = 0x53544f52;  // "STOR"

  /// Optional CSV track file replaying a recorded disaster (hurricane
  /// advisories, outage reports) instead of the seeded random cells:
  /// each data row is `cell,tick,x,y,radius` and consecutive waypoints
  /// of one cell become a linear StormCell segment (see
  /// load_waypoints()).  "" (the default) keeps the random tracks.
  /// The exp runner loads the file once before the scenario fan-out;
  /// a journaled run folds the file's *content* hash into the ledger
  /// config fingerprint (exp::BenchConfig::fingerprint()).
  std::string waypoint_file;  ///< RTR_STORM_WAYPOINTS / --storm-waypoints

  /// True when the storm layer is armed -- the master switch the exp
  /// runner tests before compiling any spec.
  bool any() const { return ticks > 0; }

  /// Reads the RTR_STORM_* environment (unset knobs keep defaults).
  static StormOptions from_env();

  /// One-line provenance fragment (appended to BenchConfig::describe()
  /// when any() is true).
  std::string describe() const;
};

/// One moving circular cell: a linear track with linear radius change
/// and a bounded lifetime.  All fields are fixed at spec compilation.
struct StormCell {
  geom::Point origin;          ///< center at start_tick
  geom::Point velocity;        ///< displacement per tick
  double radius0 = 0.0;        ///< radius at start_tick
  double radius_growth = 0.0;  ///< radius delta per tick
  std::size_t start_tick = 0;  ///< first active tick (inclusive)
  std::size_t end_tick = 0;    ///< first inactive tick (exclusive)

  /// Center at tick t (only meaningful while active(t)).
  geom::Point center(std::size_t t) const {
    return origin + velocity * static_cast<double>(t - start_tick);
  }

  /// Radius at tick t; clamped at 0 so decaying cells die cleanly.
  double radius(std::size_t t) const {
    const double r =
        radius0 + radius_growth * static_cast<double>(t - start_tick);
    return r > 0.0 ? r : 0.0;
  }

  /// True when the cell covers any area at tick t.
  bool active(std::size_t t) const {
    return t >= start_tick && t < end_tick && radius(t) > 0.0;
  }
};

/// A fully compiled storm: pure data, pure function of (options,
/// stream seed).  timeline.h evaluates it against a topology.
struct StormSpec {
  std::size_t ticks = 0;
  double tick_ms = 10.0;
  double flap_prob = 0.0;
  std::vector<StormCell> cells;
};

/// Parses a CSV storm track into ready-made cell segments.  Each data
/// row is `cell,tick,x,y,radius` (blank lines and `#` comments are
/// skipped); rows of one cell must carry strictly increasing ticks and
/// every cell needs at least two waypoints to define a track.  Each
/// consecutive waypoint pair becomes one StormCell whose origin,
/// velocity and radius growth interpolate the pair linearly over
/// [tick_i, tick_{i+1}); the final segment stays active through its
/// last waypoint's tick.  Cells are emitted in ascending cell-id order
/// so the result is a pure function of the file's bytes.  Throws
/// std::runtime_error naming the offending line on malformed input.
std::vector<StormCell> load_waypoints(const std::string& path);

/// Compiles options into a concrete spec using one dedicated substream
/// (callers derive stream_seed via fault::FaultPlan::stream_seed(
/// opts.seed, scenario index)).  Cell origins are uniform in the
/// extent square, headings uniform in [0, 2*pi); cells after the first
/// start at staggered ticks in [0, ticks/2].  Requires opts.any().
///
/// When opts.waypoint_file is set the roster is not random: the
/// waypoint segments are used verbatim (pass them via waypoint_cells
/// to load the file once across many scenarios; nullptr loads it
/// here), the cells/radius/growth/speed knobs are ignored, and
/// stream_seed only matters downstream (timeline flap draws).
StormSpec make_storm_spec(const StormOptions& opts,
                          std::uint64_t stream_seed,
                          const std::vector<StormCell>* waypoint_cells =
                              nullptr);

}  // namespace rtr::storm
