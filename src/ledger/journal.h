// rtr::ledger::Journal -- append-only crash-durable journal over the
// record codec (ledger/record.h).
//
// Open semantics (the WAL contract, DESIGN.md section 12):
//   * missing or empty file        -> fresh journal, header written
//   * torn header / torn final record -> truncated away (counted in
//     rtr.ledger.records.truncated); every preceding record recovered
//   * CRC or codec failure with intact records after it -> LedgerError:
//     torn writes only ever happen at the tail, so mid-file damage is
//     real corruption and must be loud
//   * header config fingerprint != the opener's -> LedgerError: a
//     journal must never be replayed into a differently-configured run
//
// Appends are mutex-serialized, length/CRC framed and flushed to the
// kernel per record, so a SIGKILL at any instant leaves at worst one
// torn final record.  Scenario appends auto-emit a CheckpointRecord
// every kCheckpointEvery records carrying the config fingerprint and
// the accumulated source-note union.
//
// All rtr.ledger.* series are registered kVolatile: how many records a
// journal replays depends on where the previous process died, not on
// the workload, so they must never enter the deterministic (stable)
// metrics section that resumed-vs-uninterrupted runs byte-compare.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ledger/record.h"
#include "obs/metrics.h"

namespace rtr::ledger {

class Journal {
 public:
  /// Scenario appends between automatic checkpoint records.
  static constexpr std::size_t kCheckpointEvery = 64;

  /// Opens (creating if absent) the journal for appending; recovers
  /// every intact record into recovered().  Throws LedgerError per the
  /// contract above.
  Journal(std::string path, std::uint64_t config_fingerprint);
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const std::string& path() const { return path_; }
  std::uint64_t config_fingerprint() const { return config_; }

  /// Records recovered at open, in file (append) order.
  const std::vector<Record>& recovered() const { return recovered_; }

  /// Appends one framed record and flushes.  Honors the
  /// RTR_LEDGER_CRASH_AFTER=N crash seam: the (N+1)-th scenario append
  /// of this process writes a deliberately torn half-frame and raises
  /// SIGKILL, so CI can kill a sweep at a pinned scenario.
  void append(const Record& r);

  /// Counts one journaled scenario skipped on resume
  /// (rtr.ledger.resume_skips).
  void note_resume_skip();

  /// Union of note values across recovered and appended scenario
  /// records, per note domain, ascending -- the base-tree source sets a
  /// resuming process pre-warms.
  std::map<std::string, std::vector<obs::Value>> source_union() const;

 private:
  void append_frame_locked(const std::vector<std::uint8_t>& payload);
  void absorb_sources_locked(const Record& r);

  std::string path_;
  std::uint64_t config_ = 0;
  std::vector<Record> recovered_;

  mutable std::mutex mu_;
  std::ofstream out_;
  std::map<std::string, std::set<obs::Value>> sources_;
  std::size_t scenario_appends_ = 0;
  std::optional<std::uint64_t> crash_after_;
};

}  // namespace rtr::ledger
