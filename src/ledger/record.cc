#include "ledger/record.h"

#include <array>

namespace rtr::ledger {
namespace {

// ------------------------------------------------------------ writing --

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  if (s.size() > 0xFFFF) {
    throw LedgerError("ledger: string field exceeds u16 length prefix");
  }
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  for (const char c : s) out.push_back(static_cast<std::uint8_t>(c));
}

void put_bytes(std::vector<std::uint8_t>& out,
               const std::vector<std::uint8_t>& b) {
  if (b.size() > kMaxRecordPayload) {
    throw LedgerError("ledger: byte field exceeds the record payload cap");
  }
  put_u32(out, static_cast<std::uint32_t>(b.size()));
  out.insert(out.end(), b.begin(), b.end());
}

void put_values(std::vector<std::uint8_t>& out,
                const std::vector<obs::Value>& vs) {
  if (vs.size() > kMaxRecordPayload / 8) {
    throw LedgerError("ledger: value list exceeds the record payload cap");
  }
  put_u32(out, static_cast<std::uint32_t>(vs.size()));
  for (const obs::Value v : vs) put_u64(out, v);
}

// ------------------------------------------------------------ reading --

/// Bounds-checked big-endian cursor over a record payload.  Every read
/// validates remaining length first, so a strict prefix can never
/// produce a value; finish() rejects trailing bytes so a payload can
/// never silently carry more than its record.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>((v << 8) | buf_[pos_++]);
    }
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | buf_[pos_++];
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | buf_[pos_++];
    return v;
  }

  std::string str() {
    const std::uint16_t n = u16();
    need(n);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<std::uint8_t> bytes(std::size_t n) {
    need(n);
    std::vector<std::uint8_t> b(buf_.begin() + static_cast<long>(pos_),
                                buf_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return b;
  }

  std::size_t remaining() const { return buf_.size() - pos_; }

  void finish() const {
    if (pos_ != buf_.size()) {
      throw LedgerError("ledger: trailing bytes after record body");
    }
  }

 private:
  void need(std::size_t n) const {
    if (buf_.size() - pos_ < n) {
      throw LedgerError("ledger: truncated record body");
    }
  }

  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

/// Pre-allocation guard: a declared element count may not exceed what
/// the remaining bytes could possibly encode.
void check_count(std::uint64_t n, std::size_t min_elem_bytes,
                 const Reader& r) {
  if (n * min_elem_bytes > r.remaining()) {
    throw LedgerError("ledger: element count exceeds remaining bytes");
  }
}

std::vector<obs::Value> read_values(Reader& r) {
  const std::uint32_t n = r.u32();
  check_count(n, 8, r);
  std::vector<obs::Value> vs;
  vs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) vs.push_back(r.u64());
  return vs;
}

// -------------------------------------------------------- delta codec --

void put_delta(std::vector<std::uint8_t>& out, const obs::UnitDelta& d) {
  put_u32(out, static_cast<std::uint32_t>(d.series.size()));
  for (const auto& [name, sd] : d.series) {
    put_str(out, name);
    put_u8(out, static_cast<std::uint8_t>(sd.kind));
    put_u64(out, sd.count);
    put_u64(out, sd.sum);
    put_u64(out, sd.max);
    put_u64(out, sd.min);
    put_values(out, sd.bucket_bounds);
    put_values(out, sd.bucket_counts);
  }
  put_u32(out, static_cast<std::uint32_t>(d.notes.size()));
  for (const auto& [key, vs] : d.notes) {
    put_str(out, key);
    put_values(out, vs);
  }
}

obs::UnitDelta read_delta(Reader& r) {
  obs::UnitDelta d;
  const std::uint32_t n_series = r.u32();
  // Minimum series: empty name (2) + kind (1) + four u64 summaries (32)
  // + two empty value lists (8).
  check_count(n_series, 43, r);
  for (std::uint32_t i = 0; i < n_series; ++i) {
    std::string name = r.str();
    obs::SeriesDelta sd;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(obs::Kind::kHistogram)) {
      throw LedgerError("ledger: unknown series kind in delta");
    }
    sd.kind = static_cast<obs::Kind>(kind);
    sd.count = r.u64();
    sd.sum = r.u64();
    sd.max = r.u64();
    sd.min = r.u64();
    sd.bucket_bounds = read_values(r);
    sd.bucket_counts = read_values(r);
    if (!sd.bucket_counts.empty() &&
        sd.bucket_counts.size() != sd.bucket_bounds.size() + 1) {
      throw LedgerError("ledger: histogram delta bucket/bound mismatch");
    }
    if (!d.series.emplace(std::move(name), std::move(sd)).second) {
      throw LedgerError("ledger: duplicate series in delta");
    }
  }
  const std::uint32_t n_notes = r.u32();
  // Minimum note: empty key (2) + empty value list (4).
  check_count(n_notes, 6, r);
  for (std::uint32_t i = 0; i < n_notes; ++i) {
    std::string key = r.str();
    std::vector<obs::Value> vs = read_values(r);
    if (!d.notes.emplace(std::move(key), std::move(vs)).second) {
      throw LedgerError("ledger: duplicate note key in delta");
    }
  }
  return d;
}

// ------------------------------------------------------- record bodies --

void put_checkpoint(std::vector<std::uint8_t>& out,
                    const CheckpointRecord& c) {
  put_u64(out, c.config);
  put_u32(out, static_cast<std::uint32_t>(c.sources.size()));
  for (const auto& [key, vs] : c.sources) {
    put_str(out, key);
    put_values(out, vs);
  }
}

CheckpointRecord read_checkpoint(Reader& r) {
  CheckpointRecord c;
  c.config = r.u64();
  const std::uint32_t n = r.u32();
  check_count(n, 6, r);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = r.str();
    std::vector<obs::Value> vs = read_values(r);
    if (!c.sources.emplace(std::move(key), std::move(vs)).second) {
      throw LedgerError("ledger: duplicate source domain in checkpoint");
    }
  }
  return c;
}

void put_scenario(std::vector<std::uint8_t>& out, const ScenarioRecord& s) {
  put_u64(out, s.sweep);
  put_u64(out, s.index);
  put_u64(out, s.seed);
  put_u64(out, s.stream_seed);
  put_u64(out, s.watermark);
  put_u64(out, s.digest);
  put_bytes(out, s.payload);
  put_delta(out, s.delta);
}

ScenarioRecord read_scenario(Reader& r) {
  ScenarioRecord s;
  s.sweep = r.u64();
  s.index = r.u64();
  s.seed = r.u64();
  s.stream_seed = r.u64();
  s.watermark = r.u64();
  s.digest = r.u64();
  const std::uint32_t n = r.u32();
  check_count(n, 1, r);
  s.payload = r.bytes(n);
  s.delta = read_delta(r);
  return s;
}

void put_envelope(std::vector<std::uint8_t>& out, const EnvelopeRecord& e) {
  put_bytes(out, e.frame);
}

EnvelopeRecord read_envelope(Reader& r) {
  EnvelopeRecord e;
  const std::uint32_t n = r.u32();
  check_count(n, 1, r);
  e.frame = r.bytes(n);
  return e;
}

}  // namespace

RecordType record_type(const Record& r) {
  return std::visit(
      [](const auto& body) -> RecordType {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, CheckpointRecord>) {
          return RecordType::kCheckpoint;
        } else if constexpr (std::is_same_v<T, ScenarioRecord>) {
          return RecordType::kScenario;
        } else {
          return RecordType::kEnvelope;
        }
      },
      r);
}

std::vector<std::uint8_t> encode_record(const Record& r) {
  std::vector<std::uint8_t> out;
  put_u8(out, static_cast<std::uint8_t>(record_type(r)));
  std::visit(
      [&out](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, CheckpointRecord>) {
          put_checkpoint(out, body);
        } else if constexpr (std::is_same_v<T, ScenarioRecord>) {
          put_scenario(out, body);
        } else {
          put_envelope(out, body);
        }
      },
      r);
  if (out.size() > kMaxRecordPayload) {
    throw LedgerError("ledger: record payload exceeds kMaxRecordPayload");
  }
  return out;
}

Record decode_record(const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxRecordPayload) {
    throw LedgerError("ledger: record payload exceeds kMaxRecordPayload");
  }
  Reader r(payload);
  const std::uint8_t type = r.u8();
  Record out;
  switch (static_cast<RecordType>(type)) {
    case RecordType::kCheckpoint:
      out = read_checkpoint(r);
      break;
    case RecordType::kScenario:
      out = read_scenario(r);
      break;
    case RecordType::kEnvelope:
      out = read_envelope(r);
      break;
    default:
      throw LedgerError("ledger: unknown record type byte");
  }
  r.finish();
  return out;
}

namespace {

/// CRC-32 lookup table for the reflected ISO-HDLC polynomial
/// 0xEDB88320, built at compile time from pure arithmetic.
constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static constexpr std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n,
                      std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(const std::string& s, std::uint64_t seed) {
  return fnv1a64(reinterpret_cast<const std::uint8_t*>(s.data()), s.size(),
                 seed);
}

}  // namespace rtr::ledger
