#include "ledger/journal.h"

#include <csignal>
#include <cstdlib>
#include <iterator>

namespace rtr::ledger {
namespace {

struct LedgerMetrics {
  obs::Counter& appended;
  obs::Counter& replayed;
  obs::Counter& truncated;
  obs::Counter& checkpoints;
  obs::Counter& resume_skips;

  static LedgerMetrics& get() {
    obs::Registry& r = obs::Registry::global();
    // lint:allow(mutable-static) — references into the sharded obs registry
    // All volatile: replay/truncation counts depend on where the
    // previous process died, never on the workload, so they must stay
    // out of the stable (deterministic) metrics section.
    static LedgerMetrics m{
        r.counter("rtr.ledger.records.appended", obs::Stability::kVolatile),
        r.counter("rtr.ledger.records.replayed", obs::Stability::kVolatile),
        r.counter("rtr.ledger.records.truncated",
                  obs::Stability::kVolatile),
        r.counter("rtr.ledger.checkpoints", obs::Stability::kVolatile),
        r.counter("rtr.ledger.resume_skips", obs::Stability::kVolatile)};
    return m;
  }
};

std::uint32_t be32_at(const std::vector<std::uint8_t>& b, std::size_t pos) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) v = (v << 8) | b[pos + i];
  return v;
}

std::uint64_t be64_at(const std::vector<std::uint8_t>& b, std::size_t pos) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | b[pos + i];
  return v;
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

std::vector<std::uint8_t> header_bytes(std::uint64_t config) {
  std::vector<std::uint8_t> h;
  h.reserve(kLedgerHeaderBytes);
  put32(h, kLedgerMagic);
  h.push_back(static_cast<std::uint8_t>(kLedgerVersion >> 8));
  h.push_back(static_cast<std::uint8_t>(kLedgerVersion));
  h.push_back(0);
  h.push_back(0);
  put64(h, config);
  return h;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

std::optional<std::uint64_t> crash_after_from_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read once at construction
  const char* v = std::getenv("RTR_LEDGER_CRASH_AFTER");
  if (v == nullptr || *v == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(n);
}

}  // namespace

Journal::Journal(std::string path, std::uint64_t config_fingerprint)
    : path_(std::move(path)),
      config_(config_fingerprint),
      crash_after_(crash_after_from_env()) {
  LedgerMetrics& m = LedgerMetrics::get();
  const std::vector<std::uint8_t> bytes = read_file(path_);
  std::size_t valid_end = 0;
  if (!bytes.empty()) {
    if (bytes.size() < kLedgerHeaderBytes) {
      // Torn header: the previous process died inside its very first
      // write.  Nothing recoverable; start fresh.
      m.truncated.inc();
    } else {
      if (be32_at(bytes, 0) != kLedgerMagic) {
        throw LedgerError("ledger: " + path_ + " is not a journal "
                          "(bad magic)");
      }
      const std::uint16_t version = static_cast<std::uint16_t>(
          (bytes[4] << 8) | bytes[5]);
      if (version != kLedgerVersion) {
        throw LedgerError("ledger: " + path_ +
                          " has an unsupported version");
      }
      const std::uint64_t file_config = be64_at(bytes, 8);
      if (file_config != config_) {
        throw LedgerError(
            "ledger: config fingerprint mismatch: " + path_ +
            " was written by a differently-configured run; refusing to "
            "replay (delete the journal or fix the config)");
      }
      std::size_t pos = kLedgerHeaderBytes;
      valid_end = pos;
      bool torn = false;
      while (pos < bytes.size()) {
        if (bytes.size() - pos < 8) {
          torn = true;  // frame header itself is torn
          break;
        }
        const std::uint32_t len = be32_at(bytes, pos);
        const std::uint32_t crc = be32_at(bytes, pos + 4);
        if (bytes.size() - pos - 8 < len) {
          torn = true;  // declared payload extends past EOF
          break;
        }
        const std::uint8_t* payload = bytes.data() + pos + 8;
        if (crc32(payload, len) != crc) {
          if (pos + 8 + len == bytes.size()) {
            torn = true;  // damaged final record: a torn write
            break;
          }
          // Intact records follow, so this is not a torn tail.
          throw LedgerError("ledger: " + path_ +
                            " has a mid-file CRC mismatch: the journal "
                            "is corrupt, not merely torn");
        }
        // CRC-valid payloads must decode; a codec failure here is
        // corruption the CRC happened to miss semantically (e.g. a
        // record written by a buggy producer) and stays loud.
        recovered_.push_back(decode_record(
            std::vector<std::uint8_t>(payload, payload + len)));
        absorb_sources_locked(recovered_.back());
        m.replayed.inc();
        pos += 8 + len;
        valid_end = pos;
      }
      if (torn) m.truncated.inc();
    }
  }

  // Rewrite the validated prefix (or a fresh header) and leave the
  // stream positioned for appends.  Journals are small -- tens of KiB
  // per thousand scenarios -- so the rewrite is cheap and sidesteps
  // platform truncate() portability entirely.
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw LedgerError("ledger: cannot open " + path_ + " for writing");
  }
  if (valid_end == 0) {
    const std::vector<std::uint8_t> h = header_bytes(config_);
    out_.write(reinterpret_cast<const char*>(h.data()),
               static_cast<std::streamsize>(h.size()));
  } else {
    out_.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(valid_end));
  }
  out_.flush();
  if (!out_) {
    throw LedgerError("ledger: write failed on " + path_);
  }
}

void Journal::append_frame_locked(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(8 + payload.size());
  put32(frame, static_cast<std::uint32_t>(payload.size()));
  put32(frame, crc32(payload.data(), payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  out_.flush();
  if (!out_) {
    throw LedgerError("ledger: append failed on " + path_);
  }
}

void Journal::append(const Record& r) {
  LedgerMetrics& m = LedgerMetrics::get();
  const std::vector<std::uint8_t> payload = encode_record(r);
  std::lock_guard<std::mutex> lock(mu_);
  const bool is_scenario =
      record_type(r) == RecordType::kScenario;
  if (is_scenario && crash_after_ && scenario_appends_ == *crash_after_) {
    // Crash seam for the CI ledger-smoke job: write a deliberately torn
    // half-frame for this scenario, push it to the kernel, and die the
    // way a power cut would.  The resumed process must recover exactly
    // the *crash_after_ preceding scenario records.
    std::vector<std::uint8_t> frame;
    put32(frame, static_cast<std::uint32_t>(payload.size()));
    put32(frame, crc32(payload.data(), payload.size()));
    frame.insert(frame.end(), payload.begin(),
                 payload.begin() + static_cast<long>(payload.size() / 2));
    out_.write(reinterpret_cast<const char*>(frame.data()),
               static_cast<std::streamsize>(frame.size()));
    out_.flush();
    (void)std::raise(SIGKILL);
  }
  append_frame_locked(payload);
  m.appended.inc();
  if (!is_scenario) return;
  absorb_sources_locked(r);
  ++scenario_appends_;
  if (scenario_appends_ % kCheckpointEvery == 0) {
    CheckpointRecord cp;
    cp.config = config_;
    for (const auto& [key, vs] : sources_) {
      cp.sources.emplace(key,
                         std::vector<obs::Value>(vs.begin(), vs.end()));
    }
    append_frame_locked(encode_record(Record{std::move(cp)}));
    m.appended.inc();
    m.checkpoints.inc();
  }
}

void Journal::note_resume_skip() {
  LedgerMetrics::get().resume_skips.inc();
}

void Journal::absorb_sources_locked(const Record& r) {
  const auto* s = std::get_if<ScenarioRecord>(&r);
  if (s == nullptr) return;
  for (const auto& [key, vs] : s->delta.notes) {
    sources_[key].insert(vs.begin(), vs.end());
  }
}

std::map<std::string, std::vector<obs::Value>> Journal::source_union()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::vector<obs::Value>> out;
  for (const auto& [key, vs] : sources_) {
    out.emplace(key, std::vector<obs::Value>(vs.begin(), vs.end()));
  }
  return out;
}

}  // namespace rtr::ledger
