// rtr::ledger record codec -- the byte layer of the crash-durable
// journal (DESIGN.md section 12).
//
// A journal file is a fixed header followed by length-prefixed,
// CRC-framed records:
//
//   header   u32 magic 'RTRL' | u16 version | u16 reserved(0)
//            | u64 config fingerprint
//   record   u32 payload_len | u32 crc32(payload) | payload
//   payload  u8 record type | type-specific body (big-endian, doubles
//            as IEEE-754 bit patterns -- same dialect as svc/wire.h)
//
// Same adversarial contract as the other codecs in this tree
// (net/codec.h, svc/wire.h), checked by tests/prop/test_prop_ledger.cc:
// every strict prefix of a record payload is rejected, a bit flip never
// escapes the CRC into a silently-wrong record, and a torn final record
// is truncated away on open with every preceding record recovered.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "obs/metrics.h"

namespace rtr::ledger {

/// Malformed journal bytes, a mid-file CRC mismatch, or a config
/// fingerprint that contradicts the opener's.  Never reachable from a
/// torn *final* record -- those truncate silently (and are counted).
class LedgerError : public std::runtime_error {
 public:
  explicit LedgerError(const std::string& what) : std::runtime_error(what) {}
};

// Canonical wire constants, pinned by tools/lint/wire_schema.toml and
// mirrored in tests/prop/test_prop_ledger.cc.
inline constexpr std::uint32_t kLedgerMagic = 0x5254524C;  // "RTRL"
inline constexpr std::uint16_t kLedgerVersion = 1;
/// Hard cap on one record's payload: a scenario's serialized partial is
/// tens of KiB; anything near this bound is corruption, rejected before
/// the length prefix can drive an allocation.
inline constexpr std::size_t kMaxRecordPayload = 1u << 24;
/// Journal header size in bytes (magic + version + reserved + config
/// fingerprint).
inline constexpr std::size_t kLedgerHeaderBytes = 16;

enum class RecordType : std::uint8_t {
  kCheckpoint = 1,
  kScenario = 2,
  kEnvelope = 3,
};

/// Periodic durability point: re-pins the config fingerprint mid-file
/// and snapshots the accumulated base-tree source sets (by unit-note
/// domain, e.g. "spf.base.dijkstra") so a resuming process can re-warm
/// its BaseTreeStore caches without scanning every scenario record.
struct CheckpointRecord {
  std::uint64_t config = 0;  ///< config fingerprint at append time
  std::map<std::string, std::vector<obs::Value>> sources;

  bool operator==(const CheckpointRecord&) const = default;
};

/// One completed experiment scenario: identity (sweep fingerprint +
/// index + seeds), the serialized partial result (opaque to the ledger;
/// exp owns the blob codec) and the exact stable-metric delta the
/// scenario contributed.
struct ScenarioRecord {
  std::uint64_t sweep = 0;        ///< per-sweep fingerprint
  std::uint64_t index = 0;        ///< scenario index within the sweep
  std::uint64_t seed = 0;         ///< scenario-level seed input
  std::uint64_t stream_seed = 0;  ///< fault/storm per-scenario stream id
  std::uint64_t watermark = 0;    ///< storm ticks completed (0 otherwise)
  std::uint64_t digest = 0;       ///< fnv1a64 over `payload`
  std::vector<std::uint8_t> payload;
  obs::UnitDelta delta;

  bool operator==(const ScenarioRecord&) const = default;
};

/// One admitted service request, verbatim wire frame (svc/wire.h).
/// Replaying the frames through svc::Server::serve() rebuilds the warm
/// planner caches a restarted server would otherwise lack.
struct EnvelopeRecord {
  std::vector<std::uint8_t> frame;

  bool operator==(const EnvelopeRecord&) const = default;
};

using Record = std::variant<CheckpointRecord, ScenarioRecord, EnvelopeRecord>;

RecordType record_type(const Record& r);

/// Serializes one record into a framing-free payload (type byte +
/// body).  The journal adds the length/CRC frame.
std::vector<std::uint8_t> encode_record(const Record& r);

/// Parses a record payload.  Throws LedgerError on a truncated body,
/// trailing bytes, an unknown type byte, or a length field that
/// contradicts the remaining bytes.
Record decode_record(const std::vector<std::uint8_t>& payload);

/// CRC-32 (ISO-HDLC polynomial, the zlib one) over a byte range.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// FNV-1a 64-bit over bytes, seedable for chained fingerprints.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);
std::uint64_t fnv1a64(const std::string& s,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace rtr::ledger
