#include "failure/area.h"

#include <sstream>

namespace rtr::fail {

std::string CircleArea::describe() const {
  std::ostringstream os;
  os << "circle(center=(" << circle_.center.x << "," << circle_.center.y
     << "), r=" << circle_.radius << ")";
  return os.str();
}

std::string PolygonArea::describe() const {
  std::ostringstream os;
  os << "polygon(" << poly_.size() << " vertices)";
  return os.str();
}

bool UnionArea::contains(geom::Point p) const {
  for (const auto& a : parts_) {
    if (a->contains(p)) return true;
  }
  return false;
}

bool UnionArea::intersects(const geom::Segment& s) const {
  for (const auto& a : parts_) {
    if (a->intersects(s)) return true;
  }
  return false;
}

std::string UnionArea::describe() const {
  std::ostringstream os;
  os << "union[";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i) os << ", ";
    os << parts_[i]->describe();
  }
  os << "]";
  return os.str();
}

}  // namespace rtr::fail
