// Random failure scenarios per the paper's simulation setup.
//
// Section IV-A: "the failure area is a circle randomly placed in the
// 2000x2000 area with a radius randomly selected between 100 and 300.
// The radius and location of the circular area are unknown to RTR."
#pragma once

#include "common/rng.h"
#include "failure/area.h"

namespace rtr::fail {

struct ScenarioConfig {
  double extent = 2000.0;      ///< side of the square placement area
  double min_radius = 100.0;   ///< Section IV-A default
  double max_radius = 300.0;   ///< Section IV-A default
};

/// Draws a random circular failure area (center uniform in the square,
/// radius uniform in [min_radius, max_radius]).
CircleArea random_circle_area(const ScenarioConfig& cfg, Rng& rng);

/// Draws a circle of the given fixed radius at a uniform center (the
/// radius sweep of Fig. 11).
CircleArea random_circle_area_fixed_radius(double extent, double radius,
                                           Rng& rng);

/// Draws a random simple polygon area: a star-shaped polygon around a
/// uniform center with `vertices` corners at radii in
/// [min_radius, max_radius].  Exercises the arbitrary-shape claim.
PolygonArea random_polygon_area(const ScenarioConfig& cfg,
                                std::size_t vertices, Rng& rng);

}  // namespace rtr::fail
