#include "failure/scenario.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/expect.h"

namespace rtr::fail {

CircleArea random_circle_area(const ScenarioConfig& cfg, Rng& rng) {
  RTR_EXPECT(cfg.min_radius > 0.0 && cfg.min_radius <= cfg.max_radius);
  const double r = cfg.min_radius == cfg.max_radius
                       ? cfg.min_radius
                       : rng.uniform_real(cfg.min_radius, cfg.max_radius);
  return CircleArea({rng.uniform_real(0.0, cfg.extent),
                     rng.uniform_real(0.0, cfg.extent)},
                    r);
}

CircleArea random_circle_area_fixed_radius(double extent, double radius,
                                           Rng& rng) {
  RTR_EXPECT(radius > 0.0);
  return CircleArea(
      {rng.uniform_real(0.0, extent), rng.uniform_real(0.0, extent)}, radius);
}

PolygonArea random_polygon_area(const ScenarioConfig& cfg,
                                std::size_t vertices, Rng& rng) {
  RTR_EXPECT(vertices >= 3);
  const geom::Point c = {rng.uniform_real(0.0, cfg.extent),
                         rng.uniform_real(0.0, cfg.extent)};
  // Sorted random angles with random radii give a simple (star-shaped)
  // polygon around c.
  std::vector<double> angles(vertices);
  for (double& a : angles) {
    a = rng.uniform_real(0.0, 2.0 * std::numbers::pi);
  }
  std::sort(angles.begin(), angles.end());
  std::vector<geom::Point> vs;
  vs.reserve(vertices);
  for (double a : angles) {
    const double r = rng.uniform_real(cfg.min_radius, cfg.max_radius);
    vs.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
  }
  return PolygonArea(geom::Polygon(std::move(vs)));
}

}  // namespace rtr::fail
