#include "failure/failure_set.h"

namespace rtr::fail {

FailureSet::FailureSet(const graph::Graph& g)
    : node_failed_(g.num_nodes(), 0), link_failed_(g.num_links(), 0) {}

FailureSet::FailureSet(const graph::Graph& g, const FailureArea& area,
                       LinkCutRule rule)
    : FailureSet(g) {
  add(g, area, rule);
}

FailureSet FailureSet::of_links(const graph::Graph& g,
                                const std::vector<LinkId>& links) {
  FailureSet fs(g);
  for (LinkId l : links) fs.add_link(l);
  return fs;
}

FailureSet FailureSet::of_nodes(const graph::Graph& g,
                                const std::vector<NodeId>& nodes) {
  FailureSet fs(g);
  for (NodeId n : nodes) fs.add_node(g, n);
  return fs;
}

void FailureSet::add(const graph::Graph& g, const FailureArea& area,
                     LinkCutRule rule) {
  for (NodeId n = 0; n < g.node_count(); ++n) {
    if (!node_failed_[n] && area.contains(g.position(n))) {
      node_failed_[n] = 1;
      ++failed_node_count_;
    }
  }
  for (LinkId l = 0; l < g.link_count(); ++l) {
    if (link_failed_[l]) continue;
    const graph::Link& e = g.link(l);
    const bool endpoint_dead = node_failed_[e.u] || node_failed_[e.v];
    const bool cut = rule == LinkCutRule::kGeometric &&
                     area.intersects(g.segment(l));
    if (endpoint_dead || cut) {
      link_failed_[l] = 1;
      ++failed_link_count_;
    }
  }
}

void FailureSet::add_link(LinkId l) {
  RTR_EXPECT(l < link_failed_.size());
  if (!link_failed_[l]) {
    link_failed_[l] = 1;
    ++failed_link_count_;
  }
}

void FailureSet::add_node(const graph::Graph& g, NodeId n) {
  RTR_EXPECT(g.valid_node(n));
  if (!node_failed_[n]) {
    node_failed_[n] = 1;
    ++failed_node_count_;
  }
  for (const graph::Adjacency& a : g.neighbors(n)) add_link(a.link);
}

std::vector<LinkId> FailureSet::observed_failed_links(const graph::Graph& g,
                                                      NodeId u) const {
  RTR_EXPECT_MSG(!node_failed(u), "a failed router observes nothing");
  std::vector<LinkId> out;
  for (const graph::Adjacency& a : g.neighbors(u)) {
    if (neighbor_unreachable(a)) out.push_back(a.link);
  }
  return out;
}

bool FailureSet::has_live_neighbor(const graph::Graph& g, NodeId u) const {
  for (const graph::Adjacency& a : g.neighbors(u)) {
    if (!neighbor_unreachable(a)) return true;
  }
  return false;
}

}  // namespace rtr::fail
