// Ground-truth failure state.
//
// A FailureSet is what "really happened": which routers are destroyed
// and which links are cut.  No router sees this whole object -- the
// protocols only consult it through the local-knowledge helpers below
// (a router can tell that a *neighbour is unreachable*, never whether
// the node or the link died: Section I / II-A).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "failure/area.h"
#include "graph/graph.h"
#include "graph/properties.h"

namespace rtr::fail {

/// How an area destroys links (see DESIGN.md, "Faithful-model notes").
enum class LinkCutRule {
  /// Section II-A's stated model: links *across* the area are cut even
  /// when both endpoint routers survive (the Fig. 1 example cuts e6,11
  /// this way).  Library default.
  kGeometric,
  /// Links fail only when an endpoint router fails.  This is what the
  /// paper's simulation data implies: Fig. 11 reports >20% of failed
  /// paths irrecoverable already at radius 20 on every topology, which
  /// is only possible when failures are node-driven -- a radius-20
  /// circle almost never encloses a router, so under the geometric rule
  /// nearly all small-radius failures would be link-only and
  /// recoverable.  The experiment harness therefore defaults to this
  /// rule (overridable via RTR_CUT_RULE).
  kEndpointsOnly,
};

class FailureSet {
 public:
  /// No failures.
  explicit FailureSet(const graph::Graph& g);

  /// Ground truth of an area failure: nodes inside the area fail; links
  /// with a failed endpoint fail; under kGeometric, links crossing the
  /// area also fail.
  FailureSet(const graph::Graph& g, const FailureArea& area,
             LinkCutRule rule = LinkCutRule::kGeometric);

  /// Explicit failures (e.g. the single-link scenarios of Theorem 3).
  static FailureSet of_links(const graph::Graph& g,
                             const std::vector<LinkId>& links);
  static FailureSet of_nodes(const graph::Graph& g,
                             const std::vector<NodeId>& nodes);

  bool node_failed(NodeId n) const { return node_failed_[n] != 0; }
  bool link_failed(LinkId l) const { return link_failed_[l] != 0; }

  std::size_t num_failed_nodes() const { return failed_node_count_; }
  std::size_t num_failed_links() const { return failed_link_count_; }
  bool empty() const { return failed_node_count_ + failed_link_count_ == 0; }

  /// Masks view for graph/spf algorithms.  The returned object borrows
  /// this FailureSet; keep the set alive while the masks are in use.
  graph::Masks masks() const { return {&node_failed_, &link_failed_}; }

  /// Local knowledge of router u: its neighbour over adjacency a is
  /// unreachable when the link failed or the far node failed -- u cannot
  /// distinguish the two cases (Section II-A).
  bool neighbor_unreachable(const graph::Adjacency& a) const {
    return link_failed(a.link) || node_failed(a.neighbor);
  }

  /// Links from live router u to unreachable neighbours, in adjacency
  /// order: everything u itself can observe about the failure.
  std::vector<LinkId> observed_failed_links(const graph::Graph& g,
                                            NodeId u) const;

  /// True when live router u has at least one reachable neighbour.
  bool has_live_neighbor(const graph::Graph& g, NodeId u) const;

  /// Adds more failures in place (used by multi-area scenarios).
  void add(const graph::Graph& g, const FailureArea& area,
           LinkCutRule rule = LinkCutRule::kGeometric);
  void add_link(LinkId l);
  void add_node(const graph::Graph& g, NodeId n);

  const std::vector<char>& node_mask() const { return node_failed_; }
  const std::vector<char>& link_mask() const { return link_failed_; }

 private:
  std::vector<char> node_failed_;
  std::vector<char> link_failed_;
  std::size_t failed_node_count_ = 0;
  std::size_t failed_link_count_ = 0;
};

}  // namespace rtr::fail
