// Failure areas.
//
// Section II-A: "the failure area is modeled as a continuous area in the
// network.  Routers within it and links across it all fail."  The paper
// makes no assumption on shape or location; its evaluation uses circles
// (Section IV-A).  FailureArea is the shape abstraction; CircleArea is
// the evaluation's shape, PolygonArea models arbitrary-shape disasters,
// and UnionArea composes multiple simultaneous areas (Section III-E).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "geom/circle.h"
#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/segment.h"

namespace rtr::fail {

class FailureArea {
 public:
  virtual ~FailureArea() = default;

  /// True when a router at p is destroyed.
  virtual bool contains(geom::Point p) const = 0;

  /// True when a link occupying segment s is cut.
  virtual bool intersects(const geom::Segment& s) const = 0;

  /// Human-readable description for traces and bench logs.
  virtual std::string describe() const = 0;
};

/// The circular area of the paper's evaluation.
class CircleArea final : public FailureArea {
 public:
  explicit CircleArea(geom::Circle c) : circle_(c) {}
  CircleArea(geom::Point center, double radius) : circle_{center, radius} {}

  bool contains(geom::Point p) const override { return circle_.contains(p); }
  bool intersects(const geom::Segment& s) const override {
    return circle_.intersects(s);
  }
  std::string describe() const override;

  const geom::Circle& circle() const { return circle_; }

 private:
  geom::Circle circle_;
};

/// An arbitrary simple-polygon area (hurricane track, cut corridor...).
class PolygonArea final : public FailureArea {
 public:
  explicit PolygonArea(geom::Polygon poly) : poly_(std::move(poly)) {}

  bool contains(geom::Point p) const override { return poly_.contains(p); }
  bool intersects(const geom::Segment& s) const override {
    return poly_.intersects(s);
  }
  std::string describe() const override;

  const geom::Polygon& polygon() const { return poly_; }

 private:
  geom::Polygon poly_;
};

/// Several simultaneous failure areas (Section III-E: "RTR also works
/// for multiple failure areas").
class UnionArea final : public FailureArea {
 public:
  explicit UnionArea(std::vector<std::unique_ptr<FailureArea>> parts)
      : parts_(std::move(parts)) {}

  bool contains(geom::Point p) const override;
  bool intersects(const geom::Segment& s) const override;
  std::string describe() const override;

  std::size_t size() const { return parts_.size(); }
  const FailureArea& part(std::size_t i) const { return *parts_.at(i); }

 private:
  std::vector<std::unique_ptr<FailureArea>> parts_;
};

}  // namespace rtr::fail
