#include "net/sim.h"

#include <utility>

namespace rtr::net {

void Simulator::at(double t_ms, Callback cb) {
  RTR_EXPECT_MSG(t_ms >= now_ms_, "cannot schedule in the past");
  RTR_EXPECT(cb != nullptr);
  queue_.push(Event{t_ms, next_seq_++, std::move(cb)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the callback is moved out via the
  // copy below, which is cheap relative to event work.
  Event ev = queue_.top();
  queue_.pop();
  now_ms_ = ev.time;
  ++executed_;
  ev.cb();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(double t_ms) {
  RTR_EXPECT(t_ms >= now_ms_);
  while (!queue_.empty() && queue_.top().time <= t_ms) step();
  now_ms_ = t_ms;
}

}  // namespace rtr::net
