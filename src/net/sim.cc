#include "net/sim.h"

#include <utility>

#include "obs/metrics.h"

namespace rtr::net {

void Simulator::at(double t_ms, Callback cb) {
  RTR_EXPECT_MSG(t_ms >= now_ms_, "cannot schedule in the past");
  RTR_EXPECT(cb != nullptr);
  queue_.push(Event{t_ms, next_seq_++, std::move(cb)});
  // Depth summary (count/min/max/mean) of the event queue after each
  // scheduling -- the simulator is single-threaded and event order is
  // deterministic, so this series is stable.
  static obs::Gauge& depth =
      obs::Registry::global().gauge("rtr.net.sim.queue_depth");
  depth.record(queue_.size());
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  static obs::Counter& events =
      obs::Registry::global().counter("rtr.net.sim.events");
  events.inc();
  // priority_queue::top() is const; the callback is moved out via the
  // copy below, which is cheap relative to event work.
  Event ev = queue_.top();
  queue_.pop();
  now_ms_ = ev.time;
  ++executed_;
  ev.cb();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(double t_ms) {
  RTR_EXPECT(t_ms >= now_ms_);
  while (!queue_.empty() && queue_.top().time <= t_ms) step();
  now_ms_ = t_ms;
}

}  // namespace rtr::net
