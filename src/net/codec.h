// Wire codec for the RTR recovery header.
//
// Grounds the byte accounting of net/header.h in an actual encoding:
// ids are 16-bit big-endian (Section III-B), list lengths are 16-bit,
// and the mode/initiator ride in a fixed prologue.  encode() refuses
// ids that do not fit 16 bits; decode() validates structure and throws
// CodecError on truncated or malformed input.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/header.h"

namespace rtr::net {

class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializes h.  Layout:
///   u8  mode
///   u16 rec_init          (0xFFFF when unset)
///   u16 n_failed, n_failed * u16
///   u16 n_cross,  n_cross * u16
///   u16 n_route,  n_route * u16
/// Throws CodecError when any id exceeds 16 bits.
std::vector<std::uint8_t> encode(const RtrHeader& h);

/// Parses bytes produced by encode(); throws CodecError on malformed
/// input (truncation, trailing bytes, unknown mode).
RtrHeader decode(const std::vector<std::uint8_t>& bytes);

}  // namespace rtr::net
