// A minimal discrete-event simulator.
//
// Drives the time-domain examples (disaster timeline) and the Fig. 10
// transmission-overhead-over-time experiment: events are closures
// executed in timestamp order; ties run in scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <tuple>
#include <utility>
#include <vector>

#include "common/expect.h"

namespace rtr::net {

class Simulator {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_ms_; }

  /// Schedules cb at absolute time t_ms (>= now).
  void at(double t_ms, Callback cb);

  /// Schedules cb `delay_ms` from now.  The sum is clamped at now():
  /// injected-delay arithmetic (negative or non-finite adjustments from
  /// the fault layer) can therefore never violate at()'s
  /// cannot-schedule-in-the-past contract.
  void after(double delay_ms, Callback cb) {
    double t_ms = now_ms_ + delay_ms;
    if (!(t_ms >= now_ms_)) t_ms = now_ms_;
    at(t_ms, std::move(cb));
  }

  /// Runs the earliest pending event; returns false when none is left.
  bool step();

  /// Runs until the queue drains.
  void run();

  /// Runs events with timestamp <= t_ms, then advances the clock to
  /// t_ms even if idle.
  void run_until(double t_ms);

  std::size_t pending() const { return queue_.size(); }
  std::size_t executed() const { return executed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  ///< FIFO among equal timestamps
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return std::tie(a.time, a.seq) > std::tie(b.time, b.seq);
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ms_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
};

}  // namespace rtr::net
