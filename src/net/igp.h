// A link-state IGP convergence timeline model.
//
// RTR only operates *during IGP convergence* (Section II-B): from the
// moment a failure is detected until every live router has recomputed
// its routing table, the default routes are broken and -- without a
// recovery scheme -- packets on failed paths are dropped.  The paper's
// introduction quantifies the stake: disconnecting an OC-192 link for
// 10 s drops ~12 million 1000-byte packets.
//
// IgpConvergenceModel reproduces the standard component breakdown of
// Francois et al. ("Achieving sub-second IGP convergence in large IP
// networks", reference [10] of the paper): failure detection, LSP/LSA
// origination and flooding (per-hop propagation + processing), SPF
// computation and FIB/RIB update.  It yields, for a given failure and
// detector set, the instant each router's table is fixed -- the window
// in which RTR must carry the traffic.
#pragma once

#include <vector>

#include "common/types.h"
#include "failure/failure_set.h"
#include "graph/graph.h"
#include "net/delay.h"
#include "net/header.h"

namespace rtr::net {

struct IgpTimers {
  /// Failure detection at the adjacent routers (hello timers or BFD;
  /// the paper argues against aggressive tuning -- "rapidly triggering
  /// the IGP convergence may cause route flapping" -- so the default
  /// models a conservative sub-second hold time).
  double detection_ms = 500.0;
  /// Pacing delay before the detecting router originates its update
  /// (route-flap damping of topology updates, Section II-A: "routers
  /// do not immediately disseminate topology updates").
  double origination_ms = 1000.0;
  /// Per-hop flooding cost: propagation plus LSA processing.
  double flooding_per_hop_ms = 12.0;
  /// Shortest-path recomputation at a router.
  double spf_ms = 30.0;
  /// Routing/forwarding table update after SPF.
  double fib_update_ms = 200.0;
};

/// Convergence outcome for one failure event.
struct ConvergenceTimeline {
  /// Per live router: the time (ms after the failure) at which its
  /// forwarding table reflects the failure.  Unreachable routers (cut
  /// off from every detector) keep +infinity.
  std::vector<double> converged_at_ms;
  /// max over live, reachable routers -- the IGP convergence time.
  double convergence_ms = 0.0;
  /// The earliest detection instant (when RTR may start operating).
  double detection_ms = 0.0;
};

/// Computes the timeline: every live router adjacent to a failed
/// element detects at `timers.detection_ms`, originates an update
/// after the pacing delay, the update floods over the surviving
/// topology at `flooding_per_hop_ms` per hop, and each receiving
/// router converges after its SPF + FIB update.
ConvergenceTimeline igp_convergence(const graph::Graph& g,
                                    const fail::FailureSet& failure,
                                    const IgpTimers& timers = {});

/// The paper's headline arithmetic: packets dropped on a flow of
/// `rate_bps` during `outage_ms` of convergence, at `packet_bytes` per
/// packet (Introduction: OC-192, 10 s, 1000 B => ~12.5 million).
double packets_dropped(double rate_bps, double outage_ms,
                       std::size_t packet_bytes = kPayloadBytes);

}  // namespace rtr::net
