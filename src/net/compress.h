// Compact header encoding (Section III-E: "to reduce the packet header
// overhead, we can use the mapping technique in [22] to reduce
// storage").
//
// FCP's mapping observation is that a set of link ids drawn from a
// known, consistent topology map compresses well: sort the ids, delta
// encode, and store the deltas as LEB128-style varints.  For the small
// ids and clustered failures of the workloads here this roughly halves
// the fixed 16-bit-per-id cost.  encode_compressed_header() applies the
// scheme to the set-valued fields of the RTR header (failed_link,
// cross_link -- order-insensitive sets) while the source route, whose
// order matters, stays positionally encoded.
#pragma once

#include <cstdint>
#include <vector>

#include "net/codec.h"
#include "net/header.h"

namespace rtr::net {

/// Varint (LEB128) primitives.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
std::uint64_t get_varint(const std::vector<std::uint8_t>& in,
                         std::size_t& pos);  // throws CodecError

/// Sorted-delta-varint codec for an id set (order is not preserved:
/// decode returns the ids ascending).
std::vector<std::uint8_t> encode_id_set(const std::vector<LinkId>& ids);
std::vector<LinkId> decode_id_set(const std::vector<std::uint8_t>& bytes);

/// Whole-header compressed codec.  decode(encode(h)) reproduces h up to
/// the (documented) reordering of failed_links and cross_links.
std::vector<std::uint8_t> encode_compressed_header(const RtrHeader& h);
RtrHeader decode_compressed_header(const std::vector<std::uint8_t>& bytes);

/// Convenience: byte sizes of both encodings for overhead studies.
struct HeaderSizes {
  std::size_t plain = 0;
  std::size_t compressed = 0;
};
HeaderSizes header_sizes(const RtrHeader& h);

}  // namespace rtr::net
