// The per-hop delay model of Section IV-B.
//
// "We use 100 microseconds as the delay at a router ... The propagation
// delay on a link is about 1.7 milliseconds, assuming that links are 500
// kilometers long on average.  Hence, the one-hop delay is 1.8
// milliseconds."
#pragma once

#include <cstddef>

namespace rtr::net {

struct DelayModel {
  double router_delay_ms = 0.1;      ///< 100 microseconds per router
  double propagation_delay_ms = 1.7; ///< per link

  double per_hop_ms() const { return router_delay_ms + propagation_delay_ms; }

  /// Elapsed time after forwarding over `hops` links.
  double duration_ms(std::size_t hops) const {
    return per_hop_ms() * static_cast<double>(hops);
  }
};

}  // namespace rtr::net
