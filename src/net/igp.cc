#include "net/igp.h"

#include <queue>
#include <tuple>

#include "common/expect.h"

namespace rtr::net {

ConvergenceTimeline igp_convergence(const graph::Graph& g,
                                    const fail::FailureSet& failure,
                                    const IgpTimers& timers) {
  ConvergenceTimeline out;
  out.converged_at_ms.assign(g.num_nodes(), kInfCost);
  if (failure.empty()) {
    out.converged_at_ms.assign(g.num_nodes(), 0.0);
    return out;
  }

  // Detectors: live routers with at least one unreachable neighbour.
  // Each originates a topology update at detection + origination time.
  struct Entry {
    double time;
    NodeId node;
    bool operator>(const Entry& o) const {
      return std::tie(time, node) > std::tie(o.time, o.node);
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  out.detection_ms = kInfCost;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    if (failure.node_failed(n)) continue;
    if (failure.observed_failed_links(g, n).empty()) continue;
    out.detection_ms = timers.detection_ms;
    heap.push({timers.detection_ms + timers.origination_ms, n});
  }
  if (heap.empty()) {
    // Nothing observable (e.g. only links between failed routers):
    // nobody re-converges because nobody needs to.
    out.converged_at_ms.assign(g.num_nodes(), 0.0);
    out.detection_ms = 0.0;
    return out;
  }

  // Flood over the surviving topology: Dijkstra on arrival times.
  std::vector<double> update_at(g.num_nodes(), kInfCost);
  while (!heap.empty()) {
    const auto [t, u] = heap.top();
    heap.pop();
    if (t >= update_at[u]) continue;
    update_at[u] = t;
    for (const graph::Adjacency& a : g.neighbors(u)) {
      if (failure.neighbor_unreachable(a)) continue;
      const double nt = t + timers.flooding_per_hop_ms;
      if (nt < update_at[a.neighbor]) heap.push({nt, a.neighbor});
    }
  }

  // Each reached router recomputes and installs.
  out.convergence_ms = 0.0;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    if (failure.node_failed(n) || update_at[n] == kInfCost) continue;
    out.converged_at_ms[n] =
        update_at[n] + timers.spf_ms + timers.fib_update_ms;
    out.convergence_ms = std::max(out.convergence_ms,
                                  out.converged_at_ms[n]);
  }
  return out;
}

double packets_dropped(double rate_bps, double outage_ms,
                       std::size_t packet_bytes) {
  RTR_EXPECT(rate_bps >= 0.0 && outage_ms >= 0.0 && packet_bytes > 0);
  const double bits = rate_bps * (outage_ms / 1000.0);
  return bits / (8.0 * static_cast<double>(packet_bytes));
}

}  // namespace rtr::net
