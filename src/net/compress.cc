#include "net/compress.h"

#include <algorithm>

#include "common/expect.h"

namespace rtr::net {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(const std::vector<std::uint8_t>& in,
                         std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos >= in.size()) throw CodecError("truncated varint");
    if (shift > 63) throw CodecError("varint overflow");
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::vector<std::uint8_t> encode_id_set(const std::vector<LinkId>& ids) {
  std::vector<LinkId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  RTR_EXPECT_MSG(
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
      "id sets must not contain duplicates");
  std::vector<std::uint8_t> out;
  put_varint(out, sorted.size());
  LinkId prev = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // First delta is the id itself; subsequent deltas are >= 1, so
    // store delta-1 to squeeze dense runs into single bytes.
    const std::uint64_t delta =
        i == 0 ? sorted[0] : static_cast<std::uint64_t>(sorted[i]) - prev - 1;
    put_varint(out, delta);
    prev = sorted[i];
  }
  return out;
}

std::vector<LinkId> decode_id_set(const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  const auto out = [&] {
    const std::uint64_t n = get_varint(bytes, pos);
    std::vector<LinkId> ids;
    ids.reserve(n);
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t delta = get_varint(bytes, pos);
      const std::uint64_t id = i == 0 ? delta : prev + delta + 1;
      if (id > 0xFFFFFFFF) throw CodecError("id overflow");
      ids.push_back(static_cast<LinkId>(id));
      prev = id;
    }
    return ids;
  }();
  if (pos != bytes.size()) throw CodecError("trailing bytes in id set");
  return out;
}

std::vector<std::uint8_t> encode_compressed_header(const RtrHeader& h) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(h.mode));
  put_varint(out, h.rec_init == kNoNode
                      ? 0
                      : static_cast<std::uint64_t>(h.rec_init) + 1);
  const auto put_set = [&out](const std::vector<LinkId>& ids) {
    const std::vector<std::uint8_t> enc = encode_id_set(ids);
    put_varint(out, enc.size());
    out.insert(out.end(), enc.begin(), enc.end());
  };
  put_set(h.failed_links);
  put_set(h.cross_links);
  put_varint(out, h.source_route.size());
  for (NodeId n : h.source_route) put_varint(out, n);
  return out;
}

RtrHeader decode_compressed_header(
    const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  if (bytes.empty()) throw CodecError("empty header");
  RtrHeader h;
  const std::uint8_t mode = bytes[pos++];
  if (mode > static_cast<std::uint8_t>(Mode::kSourceRoute)) {
    throw CodecError("unknown mode");
  }
  h.mode = static_cast<Mode>(mode);
  const std::uint64_t init = get_varint(bytes, pos);
  h.rec_init = init == 0 ? kNoNode : static_cast<NodeId>(init - 1);
  const auto get_set = [&] {
    const std::uint64_t len = get_varint(bytes, pos);
    if (pos + len > bytes.size()) throw CodecError("truncated id set");
    const std::vector<std::uint8_t> sub(bytes.begin() + pos,
                                        bytes.begin() + pos + len);
    pos += len;
    return decode_id_set(sub);
  };
  h.failed_links = get_set();
  h.cross_links = get_set();
  const std::uint64_t route_len = get_varint(bytes, pos);
  for (std::uint64_t i = 0; i < route_len; ++i) {
    h.source_route.push_back(static_cast<NodeId>(get_varint(bytes, pos)));
  }
  if (pos != bytes.size()) throw CodecError("trailing bytes");
  return h;
}

HeaderSizes header_sizes(const RtrHeader& h) {
  return {encode(h).size(), encode_compressed_header(h).size()};
}

}  // namespace rtr::net
