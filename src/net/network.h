// Event-driven packet forwarding.
//
// Network binds a topology, a ground-truth failure state, the delay
// model of Section IV-B and a Simulator into a packet-level network: a
// RouterApp implements per-router protocol logic (one decision per
// packet arrival), and the Network moves packets between routers with
// the 1.8 ms per-hop latency, enforcing that no packet ever crosses a
// failed link (a router always knows its neighbours' reachability, so
// forwarding into a failed link is a protocol bug, not a model event).
#pragma once

#include <functional>

#include "common/types.h"
#include "failure/failure_set.h"
#include "graph/graph.h"
#include "net/delay.h"
#include "net/header.h"
#include "net/sim.h"

namespace rtr::fault {
class FaultPlan;
}  // namespace rtr::fault

namespace rtr::net {

/// A routable data packet with its recovery header and instrumentation.
struct DataPacket {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  RtrHeader header;
  std::size_t payload_bytes = kPayloadBytes;

  /// Position of the next hop inside header.source_route.
  std::size_t route_index = 0;

  // Instrumentation (not "on the wire").
  std::vector<NodeId> trace;          ///< nodes visited, starting at src
  std::size_t bytes_transmitted = 0;  ///< sum over hops of payload+header

  /// How the fault layer consumed the packet in transit, when it did
  /// (written by Network just before the done callback).
  enum class TransitFault : std::uint8_t {
    kNone,       ///< reached an app decision (deliver or drop)
    kLost,       ///< injected loss on a surviving link
    kCorrupted,  ///< injected byte flip; discarded, never parsed into use
    kLinkDied,   ///< crossed a link a dynamic failure had killed
  };
  TransitFault transit_fault = TransitFault::kNone;
  /// The link a dynamic failure blackholed the packet on (kLinkDied).
  LinkId fault_link = kNoLink;
  /// Why the protocol app dropped the packet (written by the app; lets
  /// core::RecoverySession separate retryable from terminal drops).
  enum class DropReason : std::uint8_t {
    kNone,
    kHopCap,        ///< phase-1 abort: Theorem-1 safety net tripped
    kIsolated,      ///< initiator has no live neighbour
    kNoNextHop,     ///< phase-1 dead end (constraint ablations)
    kUnreachable,   ///< initiator's view has no phase-2 path
    kRouteDead,     ///< source route hit a failure phase 1 missed
    kNeverRoutable, ///< no route to dst even in the intact topology
    kDuplicate,     ///< fault-injected copy suppressed by sequencing
  };
  DropReason drop_reason = DropReason::kNone;
  bool duplicate = false;  ///< this packet is a fault-injected copy
};

/// Protocol logic running at every router.
class RouterApp {
 public:
  struct Decision {
    enum class Kind { kForward, kDeliver, kDrop };
    Kind kind = Kind::kDrop;
    LinkId link = kNoLink;

    static Decision forward(LinkId l) {
      return {Kind::kForward, l};
    }
    static Decision deliver() { return {Kind::kDeliver, kNoLink}; }
    static Decision drop() { return {Kind::kDrop, kNoLink}; }
  };

  virtual ~RouterApp() = default;

  /// Invoked when packet p sits at router `at`; prev is the previous
  /// hop (kNoNode when the packet originates here).  May mutate the
  /// packet header (that is how recovery state travels).
  virtual Decision on_packet(NodeId at, NodeId prev, DataPacket& p) = 0;
};

class Network {
 public:
  /// All references are borrowed and must outlive the Network.  `plan`
  /// (optional, also borrowed) arms deterministic fault injection: per
  /// forwarded hop the plan may lose, corrupt or duplicate the packet,
  /// and dynamic failures blackhole packets on links that died at the
  /// current simulated time.  A null or disabled plan costs one pointer
  /// test per hop and changes nothing.
  Network(const graph::Graph& g, const fail::FailureSet& failure,
          Simulator& sim, DelayModel delay = {},
          fault::FaultPlan* plan = nullptr);

  /// Final disposition callback: the packet, where it ended up, and
  /// whether it was delivered.
  using DoneFn =
      std::function<void(const DataPacket&, NodeId final_node,
                         bool delivered)>;

  /// Injects packet p at p.src at the current simulation time; `app`
  /// drives every forwarding decision.  Both must outlive the run.
  void send(DataPacket p, RouterApp& app, DoneFn done = {});

  std::size_t packets_delivered() const { return delivered_; }
  std::size_t packets_dropped() const { return dropped_; }
  std::size_t hops_forwarded() const { return hops_; }
  /// True when an enabled FaultPlan is armed, i.e. every sent packet is
  /// stamped with a (flow >= 1, seq) pair.  DistributedRtr's duplicate
  /// suppression requires this; pairing set_fault_aware(true) with an
  /// unarmed Network trips a contract check on the first packet.
  bool sequencing_armed() const { return plan_ != nullptr; }
  /// Packets the fault layer consumed in transit (loss, corruption or a
  /// dynamically-dead link); disjoint from packets_dropped().
  std::size_t packets_lost_in_transit() const { return transit_dropped_; }

 private:
  struct InFlight;
  void process(InFlight flight, NodeId at, NodeId prev);
  /// Applies the fault plan to the hop `at -> next` over `link`.
  /// Returns true when the packet was consumed (lost, corrupted or
  /// blackholed); sets *duplicate when a copy must ride along.
  bool inject_faults(InFlight& flight, NodeId at, LinkId link,
                     bool* duplicate);
  void finish_transit_drop(InFlight& flight, NodeId at,
                           DataPacket::TransitFault why);

  const graph::Graph* g_;
  const fail::FailureSet* failure_;
  Simulator* sim_;
  DelayModel delay_;
  fault::FaultPlan* plan_;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;
  std::size_t hops_ = 0;
  std::size_t transit_dropped_ = 0;
  std::uint32_t next_flow_ = 0;
};

}  // namespace rtr::net
