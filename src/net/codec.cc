#include "net/codec.h"

namespace rtr::net {

namespace {

constexpr std::uint32_t kUnsetId16 = 0xFFFF;

void put_u16(std::vector<std::uint8_t>& out, std::uint32_t v,
             const char* what) {
  if (v > 0xFFFF) {
    throw CodecError(std::string(what) + " does not fit 16 bits");
  }
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& b) : b_(b) {}

  std::uint8_t u8() {
    need(1);
    return b_[pos_++];
  }
  std::uint32_t u16() {
    need(2);
    const std::uint32_t v =
        (static_cast<std::uint32_t>(b_[pos_]) << 8) | b_[pos_ + 1];
    pos_ += 2;
    return v;
  }
  bool exhausted() const { return pos_ == b_.size(); }

 private:
  void need(std::size_t n) {
    if (pos_ + n > b_.size()) throw CodecError("truncated header");
  }
  const std::vector<std::uint8_t>& b_;
  std::size_t pos_ = 0;
};

template <typename Id>
void put_list(std::vector<std::uint8_t>& out, const std::vector<Id>& ids,
              const char* what) {
  put_u16(out, static_cast<std::uint32_t>(ids.size()), "list length");
  for (Id id : ids) put_u16(out, static_cast<std::uint32_t>(id), what);
}

template <typename Id>
std::vector<Id> get_list(Reader& r) {
  const std::uint32_t n = r.u16();
  std::vector<Id> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(static_cast<Id>(r.u16()));
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode(const RtrHeader& h) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(h.mode));
  put_u16(out, h.rec_init == kNoNode ? kUnsetId16 : h.rec_init, "rec_init");
  put_list(out, h.failed_links, "failed link id");
  put_list(out, h.cross_links, "cross link id");
  put_list(out, h.source_route, "route node id");
  return out;
}

RtrHeader decode(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  RtrHeader h;
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(Mode::kSourceRoute)) {
    throw CodecError("unknown mode");
  }
  h.mode = static_cast<Mode>(mode);
  const std::uint32_t init = r.u16();
  h.rec_init = init == kUnsetId16 ? kNoNode : static_cast<NodeId>(init);
  h.failed_links = get_list<LinkId>(r);
  h.cross_links = get_list<LinkId>(r);
  h.source_route = get_list<NodeId>(r);
  if (!r.exhausted()) throw CodecError("trailing bytes");
  return h;
}

}  // namespace rtr::net
