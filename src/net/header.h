// Packet-header models with exact byte accounting.
//
// Section III-B adds three fields to the packet header for RTR (mode,
// rec_init, failed_link), Section III-C a fourth (cross_link), and
// Section III-D carries a source route.  "The link id is represented by
// 16 bits."  The evaluation's transmission overhead is "the number of
// bytes used for recording information" (Section IV-C), which
// recovery_bytes() computes: 2 bytes per recorded id plus 2 bytes for
// rec_init while collecting.  The one-bit mode flag rides in existing
// header bits and is not charged.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/expect.h"
#include "common/types.h"

namespace rtr::net {

/// Forwarding mode of a packet (Section III-B).
enum class Mode : std::uint8_t {
  kDefault = 0,      ///< forwarded by the default routing protocol
  kCollect = 1,      ///< phase 1: forwarded around the failure area
  kSourceRoute = 2,  ///< phase 2: forwarded along the carried route
};

/// The RTR recovery header.
struct RtrHeader {
  Mode mode = Mode::kDefault;
  NodeId rec_init = kNoNode;
  std::vector<LinkId> failed_links;  ///< failed_link field, insertion order
  std::vector<LinkId> cross_links;   ///< cross_link field, insertion order
  std::vector<NodeId> source_route;  ///< phase-2 route (nodes after source)

  /// Transport-layer sequencing for fault-mode duplicate suppression
  /// (rtr::fault): a per-send flow id (>= 1 when a plan is armed; 0
  /// means "never sequenced") and a sequence number bumped on every
  /// forwarded hop, so each arrival of the original packet is unique
  /// and an injected copy shares the (flow, seq) of exactly one of
  /// them.  Like the one-bit mode flag these ride in existing header
  /// bits: not charged by recovery_bytes() and not part of the wire
  /// codecs (net/codec.h, net/compress.h), so byte accounting and
  /// encodings are unchanged whether faults are on or off.
  std::uint32_t flow = 0;
  std::uint32_t seq = 0;

  bool has_failed(LinkId l) const {
    return std::find(failed_links.begin(), failed_links.end(), l) !=
           failed_links.end();
  }
  /// Records l unless already present; returns true when inserted.
  bool add_failed(LinkId l) {
    if (has_failed(l)) return false;
    failed_links.push_back(l);
    return true;
  }

  bool has_cross(LinkId l) const {
    return std::find(cross_links.begin(), cross_links.end(), l) !=
           cross_links.end();
  }
  bool add_cross(LinkId l) {
    if (has_cross(l)) return false;
    cross_links.push_back(l);
    return true;
  }

  /// Bytes of recovery state carried by the packet in its current mode.
  std::size_t recovery_bytes() const {
    switch (mode) {
      case Mode::kDefault:
        return 0;
      case Mode::kCollect:
        return kWireIdBytes *
               (1 + failed_links.size() + cross_links.size());
      case Mode::kSourceRoute:
        return kWireIdBytes * source_route.size();
    }
    return 0;
  }
};

/// The FCP (source-routing variant) recovery header: encountered failed
/// links plus the current source route (Section IV-A / V).
struct FcpHeader {
  std::vector<LinkId> failed_links;
  std::vector<NodeId> source_route;

  bool has_failed(LinkId l) const {
    return std::find(failed_links.begin(), failed_links.end(), l) !=
           failed_links.end();
  }
  bool add_failed(LinkId l) {
    if (has_failed(l)) return false;
    failed_links.push_back(l);
    return true;
  }

  std::size_t recovery_bytes() const {
    return kWireIdBytes * (failed_links.size() + source_route.size());
  }
};

/// Payload size assumed by the evaluation's wasted-transmission metric
/// (Section IV-D: "the packet size is 1,000 bytes plus the bytes in the
/// packet header used for recovery").
inline constexpr std::size_t kPayloadBytes = 1000;

}  // namespace rtr::net
