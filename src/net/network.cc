#include "net/network.h"

#include <memory>
#include <utility>

#include "fault/plan.h"
#include "net/codec.h"
#include "obs/metrics.h"

namespace rtr::net {

struct Network::InFlight {
  DataPacket packet;
  RouterApp* app = nullptr;
  DoneFn done;
};

Network::Network(const graph::Graph& g, const fail::FailureSet& failure,
                 Simulator& sim, DelayModel delay, fault::FaultPlan* plan)
    : g_(&g),
      failure_(&failure),
      sim_(&sim),
      delay_(delay),
      // A disabled plan degenerates to the no-plan fast path: the hot
      // loop only ever tests the pointer.
      plan_(plan != nullptr && plan->enabled() ? plan : nullptr) {}

void Network::send(DataPacket p, RouterApp& app, DoneFn done) {
  RTR_EXPECT(g_->valid_node(p.src) && g_->valid_node(p.dst));
  RTR_EXPECT_MSG(!failure_->node_failed(p.src),
                 "a failed router cannot send");
  if (plan_ != nullptr) {
    // Flow ids start at 1: flow 0 marks a packet that was never
    // sequenced, which lets a fault-aware app detect it is paired with
    // a Network whose plan is null or disabled (see sequencing_armed()).
    p.header.flow = ++next_flow_;
    p.header.seq = 0;
  }
  InFlight flight{std::move(p), &app, std::move(done)};
  flight.packet.trace.clear();
  flight.packet.trace.push_back(flight.packet.src);
  // The sending router's own processing delay applies before the first
  // decision.
  const NodeId src = flight.packet.src;
  auto shared = std::make_shared<InFlight>(std::move(flight));
  sim_->after(delay_.router_delay_ms, [this, shared, src] {
    process(std::move(*shared), src, kNoNode);
  });
}

void Network::process(InFlight flight, NodeId at, NodeId prev) {
  const RouterApp::Decision d =
      flight.app->on_packet(at, prev, flight.packet);
  switch (d.kind) {
    case RouterApp::Decision::Kind::kDeliver: {
      ++delivered_;
      static obs::Counter& delivered =
          obs::Registry::global().counter("rtr.net.packets.delivered");
      delivered.inc();
      if (flight.done) flight.done(flight.packet, at, true);
      return;
    }
    case RouterApp::Decision::Kind::kDrop: {
      ++dropped_;
      static obs::Counter& dropped = obs::Registry::global().counter("rtr.net.packets.dropped");
      dropped.inc();
      if (flight.done) flight.done(flight.packet, at, false);
      return;
    }
    case RouterApp::Decision::Kind::kForward:
      break;
  }
  RTR_EXPECT(g_->valid_link(d.link));
  const graph::Link& e = g_->link(d.link);
  RTR_EXPECT_MSG(e.u == at || e.v == at,
                 "router forwarded over a non-incident link");
  const NodeId next = g_->other_end(d.link, at);
  RTR_EXPECT_MSG(!failure_->link_failed(d.link) &&
                     !failure_->node_failed(next),
                 "router forwarded into an observable failure");
  bool make_duplicate = false;
  if (plan_ != nullptr &&
      inject_faults(flight, at, d.link, &make_duplicate)) {
    return;
  }
  ++hops_;
  static obs::Counter& hops = obs::Registry::global().counter("rtr.net.packets.hops_forwarded");
  hops.inc();
  flight.packet.trace.push_back(next);
  flight.packet.bytes_transmitted +=
      flight.packet.payload_bytes + flight.packet.header.recovery_bytes();
  if (make_duplicate) {
    // The copy rides the same hop with the same (flow, seq) as the
    // original, arrives strictly after it (FIFO among equal
    // timestamps), and carries no done callback: its only observable
    // effect is the receiver's duplicate suppression.
    InFlight copy{flight.packet, flight.app, DoneFn{}};
    copy.packet.duplicate = true;
    auto shared = std::make_shared<InFlight>(std::move(flight));
    sim_->after(delay_.per_hop_ms(), [this, shared, next, at] {
      process(std::move(*shared), next, at);
    });
    auto shared_copy = std::make_shared<InFlight>(std::move(copy));
    sim_->after(delay_.per_hop_ms(), [this, shared_copy, next, at] {
      process(std::move(*shared_copy), next, at);
    });
    return;
  }
  auto shared = std::make_shared<InFlight>(std::move(flight));
  sim_->after(delay_.per_hop_ms(), [this, shared, next, at] {
    process(std::move(*shared), next, at);
  });
}

bool Network::inject_faults(InFlight& flight, NodeId at, LinkId link,
                            bool* duplicate) {
  RTR_EXPECT(plan_ != nullptr && plan_->enabled());
  DataPacket& p = flight.packet;
  // Injected copies take no further fault draws: their fate is decided
  // entirely by the receiver, which keeps the conservation identity
  // rtr.fault.duplicate == rtr.fault.duplicate.suppressed exact.
  if (p.duplicate) return false;
  // A dynamic failure that has taken the link down by "now" blackholes
  // the packet: the sender has not yet detected the death, so it
  // forwards into the void.
  if (plan_->link_down_at(link, sim_->now())) {
    static obs::Counter& link_dead = obs::Registry::global().counter("rtr.fault.link_dead");
    link_dead.inc();
    p.fault_link = link;
    finish_transit_drop(flight, at, DataPacket::TransitFault::kLinkDied);
    return true;
  }
  switch (plan_->next_hop_fault()) {
    case fault::HopFault::kNone:
      break;
    case fault::HopFault::kLoss: {
      static obs::Counter& loss = obs::Registry::global().counter("rtr.fault.loss");
      loss.inc();
      finish_transit_drop(flight, at, DataPacket::TransitFault::kLost);
      return true;
    }
    case fault::HopFault::kCorrupt: {
      static obs::Counter& corrupt = obs::Registry::global().counter("rtr.fault.corrupt");
      corrupt.inc();
      // Model the receiver's parse of a bit-flipped header: either the
      // codec rejects the bytes (CodecError — the degradation path the
      // adversarial property tests pin down) or the flip survives
      // decoding and the link-layer CRC catches it.  Both end in a
      // counted discard; corrupted state never enters the protocol.
      std::vector<std::uint8_t> bytes = encode(p.header);
      bytes[plan_->next_corrupt_offset(bytes.size())] ^=
          plan_->next_corrupt_mask();
      try {
        (void)decode(bytes);
        static obs::Counter& crc =
            obs::Registry::global().counter("rtr.fault.corrupt.crc_caught");
        crc.inc();
      } catch (const CodecError&) {
        static obs::Counter& codec =
            obs::Registry::global().counter("rtr.fault.corrupt.codec_error");
        codec.inc();
      }
      finish_transit_drop(flight, at, DataPacket::TransitFault::kCorrupted);
      return true;
    }
    case fault::HopFault::kDuplicate: {
      static obs::Counter& dup = obs::Registry::global().counter("rtr.fault.duplicate");
      dup.inc();
      *duplicate = true;
      break;
    }
  }
  // Each arrival of the original packet gets a unique (flow, seq); the
  // injected copy (made after this bump) shares the seq of exactly one.
  ++p.header.seq;
  return false;
}

void Network::finish_transit_drop(InFlight& flight, NodeId at,
                                  DataPacket::TransitFault why) {
  ++transit_dropped_;
  static obs::Counter& transit =
      obs::Registry::global().counter("rtr.fault.transit_dropped");
  transit.inc();
  flight.packet.transit_fault = why;
  if (flight.done) flight.done(flight.packet, at, false);
}

}  // namespace rtr::net
