#include "net/network.h"

#include <memory>
#include <utility>

#include "obs/metrics.h"

namespace rtr::net {

namespace {
obs::Counter& packets_counter(const char* name) {
  return obs::Registry::global().counter(name);
}
}  // namespace

struct Network::InFlight {
  DataPacket packet;
  RouterApp* app = nullptr;
  DoneFn done;
};

Network::Network(const graph::Graph& g, const fail::FailureSet& failure,
                 Simulator& sim, DelayModel delay)
    : g_(&g), failure_(&failure), sim_(&sim), delay_(delay) {}

void Network::send(DataPacket p, RouterApp& app, DoneFn done) {
  RTR_EXPECT(g_->valid_node(p.src) && g_->valid_node(p.dst));
  RTR_EXPECT_MSG(!failure_->node_failed(p.src),
                 "a failed router cannot send");
  InFlight flight{std::move(p), &app, std::move(done)};
  flight.packet.trace.clear();
  flight.packet.trace.push_back(flight.packet.src);
  // The sending router's own processing delay applies before the first
  // decision.
  const NodeId src = flight.packet.src;
  auto shared = std::make_shared<InFlight>(std::move(flight));
  sim_->after(delay_.router_delay_ms, [this, shared, src] {
    process(std::move(*shared), src, kNoNode);
  });
}

void Network::process(InFlight flight, NodeId at, NodeId prev) {
  const RouterApp::Decision d =
      flight.app->on_packet(at, prev, flight.packet);
  switch (d.kind) {
    case RouterApp::Decision::Kind::kDeliver: {
      ++delivered_;
      static obs::Counter& delivered =
          packets_counter("net.packets.delivered");
      delivered.inc();
      if (flight.done) flight.done(flight.packet, at, true);
      return;
    }
    case RouterApp::Decision::Kind::kDrop: {
      ++dropped_;
      static obs::Counter& dropped = packets_counter("net.packets.dropped");
      dropped.inc();
      if (flight.done) flight.done(flight.packet, at, false);
      return;
    }
    case RouterApp::Decision::Kind::kForward:
      break;
  }
  RTR_EXPECT(g_->valid_link(d.link));
  const graph::Link& e = g_->link(d.link);
  RTR_EXPECT_MSG(e.u == at || e.v == at,
                 "router forwarded over a non-incident link");
  const NodeId next = g_->other_end(d.link, at);
  RTR_EXPECT_MSG(!failure_->link_failed(d.link) &&
                     !failure_->node_failed(next),
                 "router forwarded into an observable failure");
  ++hops_;
  static obs::Counter& hops = packets_counter("net.packets.hops_forwarded");
  hops.inc();
  flight.packet.trace.push_back(next);
  flight.packet.bytes_transmitted +=
      flight.packet.payload_bytes + flight.packet.header.recovery_bytes();
  auto shared = std::make_shared<InFlight>(std::move(flight));
  sim_->after(delay_.per_hop_ms(), [this, shared, next, at] {
    process(std::move(*shared), next, at);
  });
}

}  // namespace rtr::net
