#include "viz/svg_export.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/expect.h"

namespace rtr::viz {

namespace {

std::string num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

SvgExporter::SvgExporter(const graph::Graph& g, Style style)
    : g_(&g), style_(style) {
  RTR_EXPECT_MSG(g.num_nodes() > 0, "cannot render an empty graph");
  lo_ = hi_ = g.position(0);
  for (NodeId n = 0; n < g.node_count(); ++n) {
    const geom::Point p = g.position(n);
    lo_.x = std::min(lo_.x, p.x);
    lo_.y = std::min(lo_.y, p.y);
    hi_.x = std::max(hi_.x, p.x);
    hi_.y = std::max(hi_.y, p.y);
  }
  const double span_x = std::max(hi_.x - lo_.x, 1.0);
  const double span_y = std::max(hi_.y - lo_.y, 1.0);
  scale_ = (style_.width - 2.0 * style_.margin) / span_x;
  height_ = span_y * scale_ + 2.0 * style_.margin;
}

geom::Point SvgExporter::map(geom::Point p) const {
  // SVG's y axis grows downwards; flip so the embedding reads like the
  // paper's figures.
  return {style_.margin + (p.x - lo_.x) * scale_,
          height_ - style_.margin - (p.y - lo_.y) * scale_};
}

void SvgExporter::add_failure(const fail::FailureSet& failure) {
  failure_ = &failure;
}

void SvgExporter::add_circle(const geom::Circle& c,
                             const std::string& color, double opacity) {
  const geom::Point ctr = map(c.center);
  std::ostringstream os;
  os << "<circle cx='" << num(ctr.x) << "' cy='" << num(ctr.y) << "' r='"
     << num(c.radius * scale_) << "' fill='" << color
     << "' fill-opacity='" << num(opacity) << "' stroke='" << color
     << "' stroke-dasharray='6,4'/>\n";
  overlays_.push_back({os.str()});
}

void SvgExporter::add_polygon(const geom::Polygon& p,
                              const std::string& color, double opacity) {
  std::ostringstream os;
  os << "<polygon points='";
  for (const geom::Point& v : p.vertices()) {
    const geom::Point m = map(v);
    os << num(m.x) << "," << num(m.y) << " ";
  }
  os << "' fill='" << color << "' fill-opacity='" << num(opacity)
     << "' stroke='" << color << "' stroke-dasharray='6,4'/>\n";
  overlays_.push_back({os.str()});
}

std::string SvgExporter::polyline(const std::vector<NodeId>& nodes,
                                  const std::string& color,
                                  bool dashed) const {
  std::ostringstream os;
  os << "<polyline fill='none' stroke='" << color
     << "' stroke-width='3' stroke-opacity='0.8'";
  if (dashed) os << " stroke-dasharray='8,5'";
  os << " points='";
  for (NodeId n : nodes) {
    RTR_EXPECT(g_->valid_node(n));
    const geom::Point m = map(g_->position(n));
    os << num(m.x) << "," << num(m.y) << " ";
  }
  os << "'/>\n";
  return os.str();
}

void SvgExporter::add_walk(const std::vector<NodeId>& nodes,
                           const std::string& color) {
  overlays_.push_back({polyline(nodes, color, /*dashed=*/true)});
}

void SvgExporter::add_path(const std::vector<NodeId>& nodes,
                           const std::string& color) {
  overlays_.push_back({polyline(nodes, color, /*dashed=*/false)});
}

void SvgExporter::highlight_node(NodeId n, const std::string& color) {
  RTR_EXPECT(g_->valid_node(n));
  highlights_.emplace_back(n, color);
}

void SvgExporter::write(std::ostream& os) const {
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='"
     << num(style_.width) << "' height='" << num(height_)
     << "' viewBox='0 0 " << num(style_.width) << " " << num(height_)
     << "'>\n<rect width='100%' height='100%' fill='white'/>\n";

  // Links (failed ones red and dashed).
  for (LinkId l = 0; l < g_->link_count(); ++l) {
    const graph::Link& e = g_->link(l);
    const geom::Point a = map(g_->position(e.u));
    const geom::Point b = map(g_->position(e.v));
    const bool dead = failure_ != nullptr && failure_->link_failed(l);
    os << "<line x1='" << num(a.x) << "' y1='" << num(a.y) << "' x2='"
       << num(b.x) << "' y2='" << num(b.y) << "' stroke='"
       << (dead ? "#cc2222" : "#999999") << "' stroke-width='"
       << (dead ? "1.5" : "1.2") << "'"
       << (dead ? " stroke-dasharray='4,3'" : "") << "/>\n";
  }

  // Overlays above links, below nodes.
  for (const Overlay& o : overlays_) os << o.svg;

  // Nodes (failed ones red).
  for (NodeId n = 0; n < g_->node_count(); ++n) {
    const geom::Point p = map(g_->position(n));
    const bool dead = failure_ != nullptr && failure_->node_failed(n);
    os << "<circle cx='" << num(p.x) << "' cy='" << num(p.y) << "' r='"
       << num(style_.node_radius) << "' fill='"
       << (dead ? "#cc2222" : "#2b6cb0") << "' stroke='black' "
       << "stroke-width='0.8'/>\n";
    if (style_.node_labels) {
      os << "<text x='" << num(p.x + style_.node_radius + 2) << "' y='"
         << num(p.y - style_.node_radius - 2)
         << "' font-size='11' font-family='sans-serif'>v" << n + 1
         << "</text>\n";
    }
  }

  // Highlights on top.
  for (const auto& [n, color] : highlights_) {
    const geom::Point p = map(g_->position(n));
    os << "<circle cx='" << num(p.x) << "' cy='" << num(p.y) << "' r='"
       << num(style_.node_radius + 4) << "' fill='none' stroke='" << color
       << "' stroke-width='3'/>\n";
  }
  os << "</svg>\n";
}

void SvgExporter::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  write(f);
}

std::string SvgExporter::to_string() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

}  // namespace rtr::viz
