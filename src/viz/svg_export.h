// SVG rendering of topologies, failure areas and recovery traces.
//
// Produces self-contained SVG files for papers, debugging and the
// examples: the network embedding, the failure area, failed elements,
// the phase-1 traversal and the recovery path are drawn in layers.
// Purely a diagnostic/visualisation facility -- nothing in the
// protocols depends on it.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "failure/failure_set.h"
#include "geom/circle.h"
#include "geom/polygon.h"
#include "graph/graph.h"

namespace rtr::viz {

class SvgExporter {
 public:
  struct Style {
    double node_radius = 6.0;
    double margin = 40.0;
    double width = 900.0;  ///< output width in px (height keeps aspect)
    bool node_labels = true;
  };

  SvgExporter(const graph::Graph& g, Style style);
  explicit SvgExporter(const graph::Graph& g)
      : SvgExporter(g, Style()) {}

  /// Overlays (drawn in call order, above the base topology).
  void add_failure(const fail::FailureSet& failure);
  void add_circle(const geom::Circle& c, const std::string& color,
                  double opacity = 0.15);
  void add_polygon(const geom::Polygon& p, const std::string& color,
                   double opacity = 0.15);
  /// A node walk (e.g. the phase-1 traversal), drawn as a dashed line.
  void add_walk(const std::vector<NodeId>& nodes, const std::string& color);
  /// A path (e.g. the phase-2 recovery path), drawn as a solid line.
  void add_path(const std::vector<NodeId>& nodes, const std::string& color);
  /// Highlights one node (e.g. the recovery initiator).
  void highlight_node(NodeId n, const std::string& color);

  /// Renders the document.
  void write(std::ostream& os) const;
  void save(const std::string& path) const;
  std::string to_string() const;

 private:
  struct Overlay {
    std::string svg;  ///< pre-rendered fragment
  };
  geom::Point map(geom::Point p) const;
  std::string polyline(const std::vector<NodeId>& nodes,
                       const std::string& color, bool dashed) const;

  const graph::Graph* g_;
  Style style_;
  geom::Point lo_{0, 0};
  geom::Point hi_{1, 1};
  double scale_ = 1.0;
  double height_ = 0.0;
  const fail::FailureSet* failure_ = nullptr;
  std::vector<Overlay> overlays_;
  std::vector<std::pair<NodeId, std::string>> highlights_;
};

}  // namespace rtr::viz
