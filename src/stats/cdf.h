// Empirical distributions for the evaluation figures.
//
// Every figure of Section IV is either a cumulative distribution
// (Figs. 7, 8, 9, 12, 13), a summary table (Tables III, IV) or a simple
// series (Figs. 10, 11); Cdf and Summary provide those reductions.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace rtr::stats {

/// Empirical CDF over a sample set.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  double min() const;
  double max() const;
  double mean() const;

  /// Fraction of samples <= x, in [0, 1].
  double fraction_at_or_below(double x) const;

  /// Smallest sample value v with fraction_at_or_below(v) >= p,
  /// p in (0, 1].
  double quantile(double p) const;

  /// n evenly spaced (value, cumulative fraction) points spanning
  /// [min, max]; what the bench binaries print as a figure curve.
  std::vector<std::pair<double, double>> curve(std::size_t n) const;

  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
  double sum_ = 0.0;
};

/// Mean / max / min of a sample set (the Table III / IV columns).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;

  static Summary of(const std::vector<double>& samples);
};

}  // namespace rtr::stats
