#include "stats/cdf.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace rtr::stats {

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
  for (double v : sorted_) sum_ += v;
}

double Cdf::min() const {
  RTR_EXPECT(!empty());
  return sorted_.front();
}

double Cdf::max() const {
  RTR_EXPECT(!empty());
  return sorted_.back();
}

double Cdf::mean() const {
  RTR_EXPECT(!empty());
  return sum_ / static_cast<double>(sorted_.size());
}

double Cdf::fraction_at_or_below(double x) const {
  if (empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::quantile(double p) const {
  RTR_EXPECT(!empty());
  RTR_EXPECT(p > 0.0 && p <= 1.0);
  // Nearest-rank: the smallest sample whose cumulative fraction is
  // >= p, i.e. rank ceil(p*n) (1-based).  Truncating p*n instead
  // returned the wrong rank for p strictly between the k/n grid points
  // (e.g. n=4, p=0.51 must pick rank 3, not rank 2).
  const std::size_t n = sorted_.size();
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(n)));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted_[std::min(idx, n - 1)];
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t n) const {
  std::vector<std::pair<double, double>> out;
  if (empty() || n == 0) return out;
  const double lo = min();
  const double hi = max();
  if (hi == lo) {
    // All samples equal: the n-point sweep would emit n copies of the
    // same (lo, 1.0) point.  One point carries the whole curve.
    out.emplace_back(lo, fraction_at_or_below(lo));
    return out;
  }
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = n == 1 ? hi
                            : lo + (hi - lo) * static_cast<double>(i) /
                                       static_cast<double>(n - 1);
    out.emplace_back(x, fraction_at_or_below(x));
  }
  return out;
}

Summary Summary::of(const std::vector<double>& samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  s.min = samples.front();
  s.max = samples.front();
  double sum = 0.0;
  for (double v : samples) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(samples.size());
  return s;
}

}  // namespace rtr::stats
