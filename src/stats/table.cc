#include "stats/table.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/expect.h"

namespace rtr::stats {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  RTR_EXPECT(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  RTR_EXPECT_MSG(cells.size() == header_.size(),
                 "row arity differs from header");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << (c == 0 ? std::left : std::right)
         << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << std::right << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string fmt_pct(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals);
}

void write_csv(std::ostream& os, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  const auto line = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  line(header);
  for (const auto& row : rows) line(row);
}

}  // namespace rtr::stats
