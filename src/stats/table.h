// Fixed-width text tables and CSV output for the bench binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rtr::stats {

/// Accumulates rows of strings and prints them aligned in columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a rule under the header.
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats v with `decimals` digits after the point.
std::string fmt(double v, int decimals = 1);

/// Formats a fraction as a percentage string, e.g. 0.986 -> "98.6".
std::string fmt_pct(double fraction, int decimals = 1);

/// Writes rows as CSV (no quoting: cells must not contain commas).
void write_csv(std::ostream& os, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace rtr::stats
