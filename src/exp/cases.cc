#include "exp/cases.h"

#include <unordered_set>

#include "graph/properties.h"

namespace rtr::exp {

Scenario extract_scenario(const TopologyContext& ctx,
                          const fail::CircleArea& area,
                          FailedPathCounts* counts,
                          fail::LinkCutRule rule) {
  const graph::Graph& g = ctx.g;
  Scenario sc(area, fail::FailureSet(g, area, rule));
  const fail::FailureSet& fs = sc.failure;
  if (fs.empty()) return sc;

  // Connectivity of the damaged graph classifies destinations.
  const graph::Components comp = graph::components(g, fs.masks());

  const NodeId n = g.node_count();
  std::unordered_set<std::uint64_t> seen;  // dedupe (initiator, dest)
  for (NodeId s = 0; s < n; ++s) {
    if (fs.node_failed(s)) continue;  // "the source fails": ignored
    for (NodeId t = 0; t < n; ++t) {
      if (t == s) continue;
      if (ctx.rt.distance(s, t) == kInfCost) continue;
      // Walk the default routing path until the first failure is
      // detected: that node is the recovery initiator (Section II-B).
      NodeId u = s;
      NodeId initiator = kNoNode;
      LinkId dead = kNoLink;
      while (u != t) {
        const LinkId l = ctx.rt.next_link(u, t);
        const NodeId nxt = ctx.rt.next_hop(u, t);
        if (fs.link_failed(l) || fs.node_failed(nxt)) {
          initiator = u;
          dead = l;
          break;
        }
        u = nxt;
      }
      if (initiator == kNoNode) continue;  // path unaffected

      const bool dest_reachable =
          !fs.node_failed(t) && comp.id[initiator] == comp.id[t];
      if (counts != nullptr) {
        ++counts->failed;
        if (!dest_reachable) ++counts->irrecoverable;
      }
      const std::uint64_t key =
          static_cast<std::uint64_t>(initiator) * n + t;
      if (!seen.insert(key).second) continue;
      TestCase tc{initiator, t, dead};
      (dest_reachable ? sc.recoverable : sc.irrecoverable).push_back(tc);
    }
  }
  return sc;
}

std::vector<Scenario> generate_scenarios(const TopologyContext& ctx,
                                         const fail::ScenarioConfig& cfg,
                                         const CaseBudget& budget,
                                         std::uint64_t seed,
                                         fail::LinkCutRule rule) {
  Rng rng(seed);
  std::vector<Scenario> out;
  std::size_t need_rec = budget.recoverable;
  std::size_t need_irr = budget.irrecoverable;
  std::size_t areas = 0;
  while ((need_rec > 0 || need_irr > 0) && areas < budget.max_areas) {
    ++areas;
    const fail::CircleArea area = fail::random_circle_area(cfg, rng);
    Scenario sc = extract_scenario(ctx, area, nullptr, rule);
    if (sc.recoverable.empty() && sc.irrecoverable.empty()) continue;
    // Truncate to the remaining budgets so totals are exact.
    if (sc.recoverable.size() > need_rec) sc.recoverable.resize(need_rec);
    if (sc.irrecoverable.size() > need_irr) sc.irrecoverable.resize(need_irr);
    need_rec -= sc.recoverable.size();
    need_irr -= sc.irrecoverable.size();
    out.push_back(std::move(sc));
  }
  RTR_EXPECT_MSG(need_rec == 0 && need_irr == 0,
                 "failed to meet the case budget within max_areas");
  return out;
}

}  // namespace rtr::exp
