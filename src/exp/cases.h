// Test-case extraction and generation (Section IV-A).
//
// "For a failed routing path with a live source, the recovery process is
// invoked at the recovery initiator.  Some failed routing paths with the
// same destination may have the same recovery initiator.  Their recovery
// processes are the same; thus we take them as one test case.  Given a
// topology, a test case is determined by three factors, i.e., the
// recovery initiator, the destination, and the failure area."
#pragma once

#include <cstdint>
#include <vector>

#include "exp/context.h"
#include "failure/failure_set.h"
#include "failure/scenario.h"

namespace rtr::exp {

/// One deduplicated test case within a scenario.
struct TestCase {
  NodeId initiator = kNoNode;  ///< live node that detects the failure
  NodeId dest = kNoNode;
  LinkId dead_link = kNoLink;  ///< the unreachable default next hop link
};

/// One failure area applied to a topology, with its extracted cases.
struct Scenario {
  fail::CircleArea area;
  fail::FailureSet failure;
  std::vector<TestCase> recoverable;    ///< destination still reachable
  std::vector<TestCase> irrecoverable;  ///< destination dead/partitioned

  Scenario(fail::CircleArea a, fail::FailureSet f)
      : area(a), failure(std::move(f)) {}
};

/// Counts of *failed routing paths* (per source-destination pair with a
/// live source, before test-case deduplication) -- Fig. 11's metric.
struct FailedPathCounts {
  std::size_t failed = 0;         ///< paths containing a failure
  std::size_t irrecoverable = 0;  ///< of those, destination unreachable
};

/// Applies `area` to the topology and extracts all deduplicated test
/// cases, classified per Section IV-A.  `counts`, when non-null,
/// receives the per-pair failed-path statistics.  Experiments default
/// to the endpoint-only link-cut rule (see fail::LinkCutRule: this is
/// what the paper's simulated data implies).
Scenario extract_scenario(
    const TopologyContext& ctx, const fail::CircleArea& area,
    FailedPathCounts* counts = nullptr,
    fail::LinkCutRule rule = fail::LinkCutRule::kEndpointsOnly);

struct CaseBudget {
  std::size_t recoverable = 10000;
  std::size_t irrecoverable = 10000;
  /// Give up after this many drawn areas (defensive; never reached on
  /// the topologies under study).
  std::size_t max_areas = 200000;
};

/// Draws random circular areas (Section IV-A parameters by default)
/// until both budgets are met; scenario case lists are truncated to the
/// remaining budget so the totals are exact.
std::vector<Scenario> generate_scenarios(
    const TopologyContext& ctx, const fail::ScenarioConfig& cfg,
    const CaseBudget& budget, std::uint64_t seed,
    fail::LinkCutRule rule = fail::LinkCutRule::kEndpointsOnly);

}  // namespace rtr::exp
