#include "exp/runners.h"

#include <unordered_map>

#include "baselines/fcp.h"
#include "baselines/mrc.h"
#include "spf/shortest_path.h"

namespace rtr::exp {

namespace {

/// Ground-truth shortest distances (hop count) from each initiator in
/// the damaged graph, cached per scenario.
class TruthCache {
 public:
  TruthCache(const graph::Graph& g, const fail::FailureSet& fs)
      : g_(&g), fs_(&fs) {}

  double dist(NodeId from, NodeId to) {
    auto it = spts_.find(from);
    if (it == spts_.end()) {
      it = spts_.emplace(from, spf::bfs_from(*g_, from, fs_->masks())).first;
    }
    return it->second.dist[to];
  }

 private:
  const graph::Graph* g_;
  const fail::FailureSet* fs_;
  std::unordered_map<NodeId, spf::SptResult> spts_;
};

/// Adds a per-case byte series into the timeline accumulator: hop i of
/// the recovery occupies [i*per_hop, (i+1)*per_hop) ms carrying
/// bytes_per_hop[i]; afterwards the packet stream carries steady_bytes.
void accumulate_timeline(std::vector<double>& acc,
                         const std::vector<std::size_t>& bytes_per_hop,
                         double per_hop_ms, double steady_bytes) {
  for (std::size_t t = 0; t < acc.size(); ++t) {
    const std::size_t hop =
        static_cast<std::size_t>(static_cast<double>(t) / per_hop_ms);
    acc[t] += hop < bytes_per_hop.size()
                  ? static_cast<double>(bytes_per_hop[hop])
                  : steady_bytes;
  }
}

}  // namespace

RecoverableResults run_recoverable(const TopologyContext& ctx,
                                   const std::vector<Scenario>& scenarios,
                                   const RunOptions& opts) {
  RecoverableResults out;
  out.topo = ctx.name;
  out.rtr_bytes_timeline.assign(opts.timeline_ms, 0.0);
  out.fcp_bytes_timeline.assign(opts.timeline_ms, 0.0);
  const double per_hop = opts.delay.per_hop_ms();

  // MRC configurations are proactive: built once per topology,
  // independent of any failure.
  std::unique_ptr<baseline::Mrc> mrc;
  if (opts.run_mrc) {
    mrc = std::make_unique<baseline::Mrc>(ctx.g, ctx.rt);
  }

  for (const Scenario& sc : scenarios) {
    core::RtrRecovery rtr(ctx.g, ctx.crossings, ctx.rt, sc.failure,
                          opts.rtr);
    TruthCache truth(ctx.g, sc.failure);
    for (const TestCase& tc : sc.recoverable) {
      ++out.cases;
      const double true_dist = truth.dist(tc.initiator, tc.dest);
      RTR_EXPECT_MSG(true_dist < kInfCost,
                     "recoverable case with unreachable destination");

      // ---- RTR ----
      const core::RecoveryResult rr = rtr.recover(tc.initiator, tc.dest);
      const core::Phase1Result& p1 = rtr.phase1_for(tc.initiator);
      if (p1.status == core::Phase1Result::Status::kAborted) {
        ++out.rtr_phase1_aborted;
      }
      out.phase1_duration_ms.push_back(opts.delay.duration_ms(p1.hops()));
      out.rtr_calcs.push_back(static_cast<double>(rr.sp_calculations));
      if (rr.recovered()) {
        ++out.rtr_recovered;
        const double stretch =
            static_cast<double>(rr.computed_path.hops()) / true_dist;
        out.rtr_stretch.push_back(stretch);
        if (static_cast<double>(rr.computed_path.hops()) == true_dist) {
          ++out.rtr_optimal;
        }
      }
      const double rtr_steady =
          rr.computed_path.empty()
              ? 0.0
              : static_cast<double>(rr.source_route_bytes);
      accumulate_timeline(out.rtr_bytes_timeline, p1.bytes_per_hop, per_hop,
                          rtr_steady);

      // ---- FCP ----
      if (opts.run_fcp) {
        const baseline::FcpResult fr =
            baseline::run_fcp(ctx.g, sc.failure, tc.initiator, tc.dest);
        out.fcp_calcs.push_back(static_cast<double>(fr.sp_calculations));
        if (fr.delivered) {
          ++out.fcp_recovered;
          const double stretch = static_cast<double>(fr.hops) / true_dist;
          out.fcp_stretch.push_back(stretch);
          if (static_cast<double>(fr.hops) == true_dist) ++out.fcp_optimal;
        }
        accumulate_timeline(
            out.fcp_bytes_timeline, fr.bytes_per_hop, per_hop,
            fr.delivered ? static_cast<double>(fr.header.recovery_bytes())
                         : 0.0);
      }

      // ---- MRC ----
      if (mrc) {
        const baseline::Mrc::Result mr =
            mrc->forward(sc.failure, tc.initiator, tc.dest);
        if (mr.delivered) {
          ++out.mrc_recovered;
          const double stretch = static_cast<double>(mr.hops) / true_dist;
          out.mrc_stretch.push_back(stretch);
          if (static_cast<double>(mr.hops) == true_dist) ++out.mrc_optimal;
        }
      }
    }
  }

  // Timeline sums -> means over the cases of this topology.
  if (out.cases > 0) {
    for (double& v : out.rtr_bytes_timeline) {
      v /= static_cast<double>(out.cases);
    }
    for (double& v : out.fcp_bytes_timeline) {
      v /= static_cast<double>(out.cases);
    }
  }
  return out;
}

IrrecoverableResults run_irrecoverable(const TopologyContext& ctx,
                                       const std::vector<Scenario>& scenarios,
                                       const RunOptions& opts) {
  IrrecoverableResults out;
  out.topo = ctx.name;
  for (const Scenario& sc : scenarios) {
    core::RtrRecovery rtr(ctx.g, ctx.crossings, ctx.rt, sc.failure,
                          opts.rtr);
    for (const TestCase& tc : sc.irrecoverable) {
      ++out.cases;

      // ---- RTR ----
      const core::RecoveryResult rr = rtr.recover(tc.initiator, tc.dest);
      if (rr.recovered()) ++out.rtr_delivered;
      const core::Phase1Result& p1 = rtr.phase1_for(tc.initiator);
      out.phase1_duration_ms.push_back(opts.delay.duration_ms(p1.hops()));
      out.rtr_wasted_comp.push_back(static_cast<double>(rr.sp_calculations));
      // Wasted transmission (Section IV-D): s * h, where s is 1000
      // bytes plus the recovery header and h the hops traveled before
      // the packet is discarded.  RTR packets towards an unreachable
      // destination either die at the initiator (h = 0) or walk part of
      // a computed path that phase 1 could not know was broken.
      out.rtr_wasted_trans.push_back(
          static_cast<double>(rr.delivered_hops) *
          static_cast<double>(net::kPayloadBytes + rr.source_route_bytes));

      // ---- FCP ----
      if (opts.run_fcp) {
        const baseline::FcpResult fr =
            baseline::run_fcp(ctx.g, sc.failure, tc.initiator, tc.dest);
        if (fr.delivered) ++out.fcp_delivered;
        out.fcp_wasted_comp.push_back(
            static_cast<double>(fr.sp_calculations));
        double bytes = 0.0;
        for (std::size_t b : fr.bytes_per_hop) {
          bytes += static_cast<double>(net::kPayloadBytes + b);
        }
        out.fcp_wasted_trans.push_back(bytes);
      }
    }
  }
  return out;
}

std::vector<RadiusPoint> radius_sweep(const TopologyContext& ctx,
                                      const std::vector<double>& radii,
                                      std::size_t areas_per_radius,
                                      std::uint64_t seed, double extent,
                                      fail::LinkCutRule rule) {
  Rng rng(seed);
  std::vector<RadiusPoint> out;
  out.reserve(radii.size());
  for (double radius : radii) {
    RadiusPoint pt;
    pt.radius = radius;
    for (std::size_t i = 0; i < areas_per_radius; ++i) {
      const fail::CircleArea area =
          fail::random_circle_area_fixed_radius(extent, radius, rng);
      FailedPathCounts counts;
      extract_scenario(ctx, area, &counts, rule);
      pt.failed_paths += counts.failed;
      pt.irrecoverable_paths += counts.irrecoverable;
    }
    out.push_back(pt);
  }
  return out;
}

}  // namespace rtr::exp
