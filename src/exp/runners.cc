#include "exp/runners.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <memory>
#include <optional>
#include <set>
#include <sstream>

#include "baselines/fcp.h"
#include "baselines/mrc.h"
#include "common/parallel.h"
#include "core/distributed_rtr.h"
#include "core/recovery_session.h"
#include "fault/plan.h"
#include "ledger/journal.h"
#include "net/network.h"
#include "net/sim.h"
#include "obs/metrics.h"
#include "spf/spt_cache.h"
#include "storm/engine.h"
#include "storm/timeline.h"

namespace rtr::exp {

namespace {

/// Runner observability.  Scenario/case throughput is stable (a pure
/// function of the workload); the phase timers and the parallel_for
/// queue-wait histogram are wall clock and therefore volatile.
struct RunnerMetrics {
  obs::Counter& scenarios;
  obs::Counter& recoverable_cases;
  obs::Counter& irrecoverable_cases;
  obs::Histogram& recoverable_phase_ns;
  obs::Histogram& irrecoverable_phase_ns;
  obs::Histogram& queue_wait_ns;

  static RunnerMetrics& get() {
    obs::Registry& r = obs::Registry::global();
    // lint:allow(mutable-static) — references into the sharded obs registry
    static RunnerMetrics m{
        r.counter("rtr.exp.scenarios_completed"),
        r.counter("rtr.exp.cases.recoverable"),
        r.counter("rtr.exp.cases.irrecoverable"),
        r.timer("rtr.exp.phase.run_recoverable_ns"),
        r.timer("rtr.exp.phase.run_irrecoverable_ns"),
        r.timer("rtr.exp.parallel_for.queue_wait_ns")};
    return m;
  }
};

/// Time from fan-out start until work unit i is picked up by a worker
/// -- the queue wait of the dynamic load balancer in common/parallel.h.
void record_queue_wait(RunnerMetrics& m,
                       std::chrono::steady_clock::time_point fan_out_start) {
  // lint:allow(wall-clock) — feeds only the volatile queue-wait series
  const auto waited = std::chrono::steady_clock::now() - fan_out_start;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count();
  m.queue_wait_ns.observe(ns < 0 ? 0 : static_cast<obs::Value>(ns));
}

/// Adds a per-case byte series into the timeline accumulator: hop i of
/// the recovery occupies [i*per_hop, (i+1)*per_hop) ms carrying
/// bytes_per_hop[i]; afterwards the packet stream carries steady_bytes.
void accumulate_timeline(std::vector<double>& acc,
                         const std::vector<std::size_t>& bytes_per_hop,
                         double per_hop_ms, double steady_bytes) {
  for (std::size_t t = 0; t < acc.size(); ++t) {
    const std::size_t hop =
        static_cast<std::size_t>(static_cast<double>(t) / per_hop_ms);
    acc[t] += hop < bytes_per_hop.size()
                  ? static_cast<double>(bytes_per_hop[hop])
                  : steady_bytes;
  }
}

// ------------------------------------------------------------------
// Parallel experiment engine.
//
// Each Scenario is an independent work unit: it owns its RtrRecovery
// (per-initiator phase-1 caches), its ground-truth SptCache and its
// partial accumulators, and only reads the shared TopologyContext (and
// the proactive Mrc, whose forward() is const).  Work units are farmed
// out with common::parallel_for and their partials merged in
// scenario-index order, which makes the merged result a pure function
// of (ctx, scenarios, opts): bit-identical for every thread count,
// including the threads=1 serial loop.
// ------------------------------------------------------------------

/// Per-scenario slice of RecoverableResults (everything but topo; the
/// timelines here are sums, normalised to means only after the merge).
struct RecoverablePartial {
  std::size_t cases = 0;
  std::size_t rtr_recovered = 0, rtr_optimal = 0;
  std::size_t fcp_recovered = 0, fcp_optimal = 0;
  std::size_t mrc_recovered = 0, mrc_optimal = 0;
  std::size_t rtr_phase1_aborted = 0;
  std::size_t rtr_unrecovered = 0, rtr_dropped = 0;
  std::size_t rtr_retry_attempts = 0, rtr_reinitiations = 0;
  std::vector<double> phase1_duration_ms;
  std::vector<double> rtr_stretch, fcp_stretch, mrc_stretch;
  std::vector<double> rtr_calcs, fcp_calcs;
  std::vector<double> rtr_recovery_ms;
  std::vector<double> rtr_bytes_timeline, fcp_bytes_timeline;
  std::size_t storm_ticks = 0, storm_drain_ticks = 0;
  std::size_t storm_delta_links = 0, storm_delta_nodes = 0;
  std::size_t storm_shadowed_flaps = 0;
  std::size_t storm_repairs = 0, storm_fallbacks = 0;
  std::size_t storm_repair_ops = 0, storm_budget_stalls = 0;
  std::size_t storm_unreachable_pairs = 0;
  std::uint64_t storm_dist_digest = 0;
};

RecoverablePartial run_scenario_recoverable(const TopologyContext& ctx,
                                            const Scenario& sc,
                                            const RunOptions& opts,
                                            const baseline::Mrc* mrc) {
  RecoverablePartial out;
  out.rtr_bytes_timeline.assign(opts.timeline_ms, 0.0);
  out.fcp_bytes_timeline.assign(opts.timeline_ms, 0.0);
  const double per_hop = opts.delay.per_hop_ms();

  const bool incremental = opts.spf_engine == spf::SpfEngine::kIncremental;
  core::RtrRecovery rtr(ctx.g, ctx.crossings, ctx.rt, sc.failure, opts.rtr,
                        incremental ? &ctx.spf_base : nullptr);
  // Ground-truth distances in the damaged graph; private to this work
  // unit (SptCache is not thread-safe by design), repairing from the
  // shared base trees when the incremental engine is selected.
  spf::SptCache::Options cache_opts;
  cache_opts.max_entries = opts.spt_cache_entries;
  cache_opts.engine = opts.spf_engine;
  cache_opts.base = incremental ? &ctx.truth_base : nullptr;
  cache_opts.batch_repair = opts.batch_repair;
  spf::SptCache truth(ctx.g, sc.failure.masks(),
                      spf::SptCache::Algorithm::kBfsHopCount, cache_opts);
  for (const TestCase& tc : sc.recoverable) {
    ++out.cases;
    const double true_dist = truth.dist(tc.initiator, tc.dest);
    RTR_EXPECT_MSG(true_dist < kInfCost,
                   "recoverable case with unreachable destination");

    // ---- RTR ----
    const core::RecoveryResult rr = rtr.recover(tc.initiator, tc.dest);
    const core::Phase1Result& p1 = rtr.phase1_for(tc.initiator);
    if (p1.status == core::Phase1Result::Status::kAborted) {
      ++out.rtr_phase1_aborted;
    }
    out.phase1_duration_ms.push_back(opts.delay.duration_ms(p1.hops()));
    out.rtr_calcs.push_back(static_cast<double>(rr.sp_calculations));
    if (rr.recovered()) {
      ++out.rtr_recovered;
      const double stretch =
          static_cast<double>(rr.computed_path.hops()) / true_dist;
      out.rtr_stretch.push_back(stretch);
      if (static_cast<double>(rr.computed_path.hops()) == true_dist) {
        ++out.rtr_optimal;
      }
    }
    const double rtr_steady =
        rr.computed_path.empty()
            ? 0.0
            : static_cast<double>(rr.source_route_bytes);
    accumulate_timeline(out.rtr_bytes_timeline, p1.bytes_per_hop, per_hop,
                        rtr_steady);

    // ---- FCP ----
    if (opts.run_fcp) {
      const baseline::FcpResult fr =
          baseline::run_fcp(ctx.g, sc.failure, tc.initiator, tc.dest);
      out.fcp_calcs.push_back(static_cast<double>(fr.sp_calculations));
      if (fr.delivered) {
        ++out.fcp_recovered;
        const double stretch = static_cast<double>(fr.hops) / true_dist;
        out.fcp_stretch.push_back(stretch);
        if (static_cast<double>(fr.hops) == true_dist) ++out.fcp_optimal;
      }
      accumulate_timeline(
          out.fcp_bytes_timeline, fr.bytes_per_hop, per_hop,
          fr.delivered ? static_cast<double>(fr.header.recovery_bytes())
                       : 0.0);
    }

    // ---- MRC ----
    if (mrc) {
      const baseline::Mrc::Result mr =
          mrc->forward(sc.failure, tc.initiator, tc.dest);
      if (mr.delivered) {
        ++out.mrc_recovered;
        const double stretch = static_cast<double>(mr.hops) / true_dist;
        out.mrc_stretch.push_back(stretch);
        if (static_cast<double>(mr.hops) == true_dist) ++out.mrc_optimal;
      }
    }
  }
  return out;
}

/// Fault-mode work unit: the scenario's recoverable cases run as
/// distributed recovery sessions over the event simulator under a
/// per-scenario FaultPlan.  Everything simulated here is private to the
/// unit (simulator, network, app, plan), so the outcome is a pure
/// function of (ctx, sc, opts, scenario_index) and thread-count
/// invariant like the fault-free path.
RecoverablePartial run_scenario_recoverable_fault(
    const TopologyContext& ctx, const Scenario& sc, const RunOptions& opts,
    std::size_t scenario_index) {
  RecoverablePartial out;
  out.rtr_bytes_timeline.assign(opts.timeline_ms, 0.0);
  out.fcp_bytes_timeline.assign(opts.timeline_ms, 0.0);

  fault::FaultPlan plan(
      opts.fault, fault::FaultPlan::stream_seed(opts.fault.seed,
                                                scenario_index),
      ctx.g, sc.failure);
  net::Simulator sim;
  net::Network network(ctx.g, sc.failure, sim, opts.delay, &plan);
  core::DistributedRtr app(ctx.g, ctx.crossings, ctx.rt, sc.failure,
                           opts.rtr.phase1);
  app.set_fault_aware(true);

  const bool incremental = opts.spf_engine == spf::SpfEngine::kIncremental;
  spf::SptCache::Options cache_opts;
  cache_opts.max_entries = opts.spt_cache_entries;
  cache_opts.engine = opts.spf_engine;
  cache_opts.base = incremental ? &ctx.truth_base : nullptr;
  cache_opts.batch_repair = opts.batch_repair;
  spf::SptCache truth(ctx.g, sc.failure.masks(),
                      spf::SptCache::Algorithm::kBfsHopCount, cache_opts);

  for (const TestCase& tc : sc.recoverable) {
    ++out.cases;
    const double true_dist = truth.dist(tc.initiator, tc.dest);
    RTR_EXPECT_MSG(true_dist < kInfCost,
                   "recoverable case with unreachable destination");

    core::SessionOptions sopts;
    sopts.retry_cap = static_cast<std::uint32_t>(opts.fault.retry_cap);
    sopts.backoff_base_ms = opts.fault.backoff_base_ms;
    sopts.detection_delay_ms = plan.next_detection_delay_ms();
    sopts.first_clockwise = opts.rtr.phase1.clockwise;
    const double t0 = sim.now();
    core::RecoverySession session(sim, network, app, tc.initiator,
                                  tc.dest, sopts);
    session.start();
    sim.run();
    const core::SessionResult& r = session.result();
    RTR_EXPECT_MSG(r.done(), "simulator drained with session pending");
    out.rtr_retry_attempts += r.attempts;
    out.rtr_reinitiations += r.reinitiations;
    switch (r.outcome) {
      case core::SessionOutcome::kRecovered: {
        ++out.rtr_recovered;
        const double stretch =
            static_cast<double>(r.delivered_hops) / true_dist;
        out.rtr_stretch.push_back(stretch);
        if (static_cast<double>(r.delivered_hops) == true_dist) {
          ++out.rtr_optimal;
        }
        out.rtr_recovery_ms.push_back(r.finished_ms - t0);
        break;
      }
      case core::SessionOutcome::kDropped:
        ++out.rtr_dropped;
        break;
      case core::SessionOutcome::kUnrecovered:
        ++out.rtr_unrecovered;
        break;
      case core::SessionOutcome::kPending:
        break;  // unreachable: r.done() checked above
    }
  }
  return out;
}

/// Storm-mode work unit: the scenario's static failure is only the
/// opening state of a rolling disaster.  A per-scenario StormSpec
/// substream compiles into a timeline of per-tick deltas -- overlaid
/// with this scenario's FaultPlan link deaths under area-wins
/// precedence when the fault layer is armed too -- and the recoverable
/// initiators' trees are re-planned tick by tick from the shared base
/// trees under the repair budget.  Everything here is private to the
/// unit, so the outcome is a pure function of (ctx, sc, opts,
/// scenario_index) and thread-count invariant.
RecoverablePartial run_scenario_recoverable_storm(
    const TopologyContext& ctx, const Scenario& sc, const RunOptions& opts,
    std::size_t scenario_index,
    const std::vector<storm::StormCell>* waypoints) {
  RecoverablePartial out;
  out.rtr_bytes_timeline.assign(opts.timeline_ms, 0.0);
  out.fcp_bytes_timeline.assign(opts.timeline_ms, 0.0);

  const std::uint64_t stream =
      fault::FaultPlan::stream_seed(opts.storm.seed, scenario_index);
  const storm::StormSpec spec =
      storm::make_storm_spec(opts.storm, stream, waypoints);

  std::unique_ptr<fault::FaultPlan> plan;
  if (opts.fault.any()) {
    plan = std::make_unique<fault::FaultPlan>(
        opts.fault,
        fault::FaultPlan::stream_seed(opts.fault.seed, scenario_index),
        ctx.g, sc.failure);
  }
  const storm::StormTimeline tl = storm::compile_timeline(
      spec, ctx.g, stream, &sc.failure, plan.get());

  // Planning roots: the recoverable initiators, ascending and unique.
  std::vector<NodeId> sources;
  for (const TestCase& tc : sc.recoverable) sources.push_back(tc.initiator);
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());

  storm::StormEngineOptions eopts;
  eopts.budget_ops = opts.storm.budget_ops;
  eopts.repair = opts.batch_repair;
  const storm::StormRunResult r =
      storm::run_storm(ctx.g, ctx.spf_base, tl, &sc.failure, sources, eopts);

  out.storm_ticks = r.storm_ticks;
  out.storm_drain_ticks = r.drain_ticks;
  out.storm_delta_links = tl.total_links_down() + tl.total_links_up();
  out.storm_delta_nodes = tl.total_nodes_down();
  out.storm_shadowed_flaps = tl.total_shadowed_flaps();
  out.storm_repairs = r.total_repairs;
  out.storm_fallbacks = r.total_fallbacks;
  out.storm_repair_ops = r.total_repair_ops;
  out.storm_budget_stalls = r.total_budget_stalls;
  out.storm_unreachable_pairs = r.unreachable_pairs;
  out.storm_dist_digest = r.dist_digest;
  return out;
}

/// Per-scenario slice of IrrecoverableResults.
struct IrrecoverablePartial {
  std::size_t cases = 0;
  std::size_t rtr_delivered = 0, fcp_delivered = 0;
  std::vector<double> phase1_duration_ms;
  std::vector<double> rtr_wasted_comp, fcp_wasted_comp;
  std::vector<double> rtr_wasted_trans, fcp_wasted_trans;
};

IrrecoverablePartial run_scenario_irrecoverable(const TopologyContext& ctx,
                                                const Scenario& sc,
                                                const RunOptions& opts) {
  IrrecoverablePartial out;
  core::RtrRecovery rtr(
      ctx.g, ctx.crossings, ctx.rt, sc.failure, opts.rtr,
      opts.spf_engine == spf::SpfEngine::kIncremental ? &ctx.spf_base
                                                      : nullptr);
  for (const TestCase& tc : sc.irrecoverable) {
    ++out.cases;

    // ---- RTR ----
    const core::RecoveryResult rr = rtr.recover(tc.initiator, tc.dest);
    if (rr.recovered()) ++out.rtr_delivered;
    const core::Phase1Result& p1 = rtr.phase1_for(tc.initiator);
    out.phase1_duration_ms.push_back(opts.delay.duration_ms(p1.hops()));
    out.rtr_wasted_comp.push_back(static_cast<double>(rr.sp_calculations));
    // Wasted transmission (Section IV-D): s * h, where s is 1000
    // bytes plus the recovery header and h the hops traveled before
    // the packet is discarded.  RTR packets towards an unreachable
    // destination either die at the initiator (h = 0) or walk part of
    // a computed path that phase 1 could not know was broken.
    out.rtr_wasted_trans.push_back(
        static_cast<double>(rr.delivered_hops) *
        static_cast<double>(net::kPayloadBytes + rr.source_route_bytes));

    // ---- FCP ----
    if (opts.run_fcp) {
      const baseline::FcpResult fr =
          baseline::run_fcp(ctx.g, sc.failure, tc.initiator, tc.dest);
      if (fr.delivered) ++out.fcp_delivered;
      out.fcp_wasted_comp.push_back(
          static_cast<double>(fr.sp_calculations));
      double bytes = 0.0;
      for (std::size_t b : fr.bytes_per_hop) {
        bytes += static_cast<double>(net::kPayloadBytes + b);
      }
      out.fcp_wasted_trans.push_back(bytes);
    }
  }
  return out;
}

// ------------------------------------------------------------------
// Ledger plumbing: the journal stores each work unit's partial as an
// opaque blob; exp owns the blob codec (big-endian u64s, doubles as
// IEEE-754 bit patterns -- the dialect of ledger/record.h).  Framing,
// CRC and the stable-metric delta live in the ledger layer.
// ------------------------------------------------------------------

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int s = 56; s >= 0; s -= 8) {
    b.push_back(static_cast<std::uint8_t>(v >> s));
  }
}

void put_f64(std::vector<std::uint8_t>& b, double v) {
  put_u64(b, std::bit_cast<std::uint64_t>(v));
}

void put_dvec(std::vector<std::uint8_t>& b, const std::vector<double>& v) {
  put_u64(b, v.size());
  for (double d : v) put_f64(b, d);
}

/// Strict reader over a partial blob: every truncation or length lie
/// throws LedgerError before it can drive an allocation, mirroring the
/// record codec's posture (the blob already passed the frame CRC, so a
/// failure here means a codec-version mismatch, not line noise).
class BlobReader {
 public:
  explicit BlobReader(const std::vector<std::uint8_t>& b) : b_(b) {}

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | b_[pos_ + i];
    pos_ += 8;
    return v;
  }

  std::size_t size() { return static_cast<std::size_t>(u64()); }

  double f64() { return std::bit_cast<double>(u64()); }

  std::vector<double> dvec() {
    const std::uint64_t n = u64();
    if (n > (b_.size() - pos_) / 8) {
      throw ledger::LedgerError(
          "exp partial blob: vector length exceeds remaining bytes");
    }
    std::vector<double> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
    return v;
  }

  void finish() const {
    if (pos_ != b_.size()) {
      throw ledger::LedgerError("exp partial blob: trailing bytes");
    }
  }

 private:
  void need(std::size_t n) {
    if (b_.size() - pos_ < n) {
      throw ledger::LedgerError("exp partial blob: truncated");
    }
  }

  const std::vector<std::uint8_t>& b_;
  std::size_t pos_ = 0;
};

std::vector<std::uint8_t> encode_partial(const RecoverablePartial& p) {
  std::vector<std::uint8_t> b;
  put_u64(b, p.cases);
  put_u64(b, p.rtr_recovered);
  put_u64(b, p.rtr_optimal);
  put_u64(b, p.fcp_recovered);
  put_u64(b, p.fcp_optimal);
  put_u64(b, p.mrc_recovered);
  put_u64(b, p.mrc_optimal);
  put_u64(b, p.rtr_phase1_aborted);
  put_u64(b, p.rtr_unrecovered);
  put_u64(b, p.rtr_dropped);
  put_u64(b, p.rtr_retry_attempts);
  put_u64(b, p.rtr_reinitiations);
  put_u64(b, p.storm_ticks);
  put_u64(b, p.storm_drain_ticks);
  put_u64(b, p.storm_delta_links);
  put_u64(b, p.storm_delta_nodes);
  put_u64(b, p.storm_shadowed_flaps);
  put_u64(b, p.storm_repairs);
  put_u64(b, p.storm_fallbacks);
  put_u64(b, p.storm_repair_ops);
  put_u64(b, p.storm_budget_stalls);
  put_u64(b, p.storm_unreachable_pairs);
  put_u64(b, p.storm_dist_digest);
  put_dvec(b, p.phase1_duration_ms);
  put_dvec(b, p.rtr_stretch);
  put_dvec(b, p.fcp_stretch);
  put_dvec(b, p.mrc_stretch);
  put_dvec(b, p.rtr_calcs);
  put_dvec(b, p.fcp_calcs);
  put_dvec(b, p.rtr_recovery_ms);
  put_dvec(b, p.rtr_bytes_timeline);
  put_dvec(b, p.fcp_bytes_timeline);
  return b;
}

RecoverablePartial decode_recoverable_partial(
    const std::vector<std::uint8_t>& b) {
  BlobReader r(b);
  RecoverablePartial p;
  p.cases = r.size();
  p.rtr_recovered = r.size();
  p.rtr_optimal = r.size();
  p.fcp_recovered = r.size();
  p.fcp_optimal = r.size();
  p.mrc_recovered = r.size();
  p.mrc_optimal = r.size();
  p.rtr_phase1_aborted = r.size();
  p.rtr_unrecovered = r.size();
  p.rtr_dropped = r.size();
  p.rtr_retry_attempts = r.size();
  p.rtr_reinitiations = r.size();
  p.storm_ticks = r.size();
  p.storm_drain_ticks = r.size();
  p.storm_delta_links = r.size();
  p.storm_delta_nodes = r.size();
  p.storm_shadowed_flaps = r.size();
  p.storm_repairs = r.size();
  p.storm_fallbacks = r.size();
  p.storm_repair_ops = r.size();
  p.storm_budget_stalls = r.size();
  p.storm_unreachable_pairs = r.size();
  p.storm_dist_digest = r.u64();
  p.phase1_duration_ms = r.dvec();
  p.rtr_stretch = r.dvec();
  p.fcp_stretch = r.dvec();
  p.mrc_stretch = r.dvec();
  p.rtr_calcs = r.dvec();
  p.fcp_calcs = r.dvec();
  p.rtr_recovery_ms = r.dvec();
  p.rtr_bytes_timeline = r.dvec();
  p.fcp_bytes_timeline = r.dvec();
  r.finish();
  return p;
}

std::vector<std::uint8_t> encode_partial(const IrrecoverablePartial& p) {
  std::vector<std::uint8_t> b;
  put_u64(b, p.cases);
  put_u64(b, p.rtr_delivered);
  put_u64(b, p.fcp_delivered);
  put_dvec(b, p.phase1_duration_ms);
  put_dvec(b, p.rtr_wasted_comp);
  put_dvec(b, p.fcp_wasted_comp);
  put_dvec(b, p.rtr_wasted_trans);
  put_dvec(b, p.fcp_wasted_trans);
  return b;
}

IrrecoverablePartial decode_irrecoverable_partial(
    const std::vector<std::uint8_t>& b) {
  BlobReader r(b);
  IrrecoverablePartial p;
  p.cases = r.size();
  p.rtr_delivered = r.size();
  p.fcp_delivered = r.size();
  p.phase1_duration_ms = r.dvec();
  p.rtr_wasted_comp = r.dvec();
  p.fcp_wasted_comp = r.dvec();
  p.rtr_wasted_trans = r.dvec();
  p.fcp_wasted_trans = r.dvec();
  r.finish();
  return p;
}

/// Identity of one sweep inside a journal shared by many (topologies x
/// phases x per-bench option tweaks).  Folds every option that shapes
/// results or stable metrics AND the workload itself -- the same
/// topology is often swept over different scenario sets (e.g. both
/// link-cut rules inside one bench), which no option can tell apart.
/// A journaled scenario is only replayed into a sweep with the same
/// fingerprint, everything else falls through to a live run.  (The
/// journal-level config fingerprint already pins the BenchConfig; this
/// pins the per-call RunOptions and scenarios.)
std::uint64_t sweep_fingerprint(const TopologyContext& ctx,
                                const char* phase_tag,
                                const std::vector<Scenario>& scenarios,
                                const RunOptions& opts) {
  std::ostringstream os;
  os << phase_tag << "|topo=" << ctx.name << "|n=" << scenarios.size()
     << "|mrc=" << opts.run_mrc << "|fcp=" << opts.run_fcp
     << "|timeline=" << opts.timeline_ms
     << "|per-hop-ms=" << opts.delay.per_hop_ms()
     << "|engine=" << static_cast<int>(opts.spf_engine)
     << "|c1=" << opts.rtr.phase1.constraint1
     << "|c2=" << opts.rtr.phase1.constraint2
     << "|cw=" << opts.rtr.phase1.clockwise
     << "|hops=" << opts.rtr.phase1.max_hops_factor
     << "|rtr-fb=" << opts.rtr.batch_repair.fallback_fraction
     << "|truth-fb=" << opts.batch_repair.fallback_fraction
     << "|cache=" << opts.spt_cache_entries;
  if (opts.fault.any()) os << "|" << opts.fault.describe();
  if (opts.storm.any()) os << "|" << opts.storm.describe();
  std::uint64_t h = ledger::fnv1a64(os.str());
  const auto fold = [&h](std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 7; i >= 0; --i) {
      b[i] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
    h = ledger::fnv1a64(b, sizeof b, h);
  };
  for (const Scenario& sc : scenarios) {
    fold(std::bit_cast<std::uint64_t>(sc.area.circle().center.x));
    fold(std::bit_cast<std::uint64_t>(sc.area.circle().center.y));
    fold(std::bit_cast<std::uint64_t>(sc.area.circle().radius));
    fold(sc.recoverable.size());
    fold(sc.irrecoverable.size());
    for (const TestCase& tc : sc.recoverable) {
      fold((static_cast<std::uint64_t>(tc.initiator) << 32) | tc.dest);
      fold(tc.dead_link);
    }
    for (const TestCase& tc : sc.irrecoverable) {
      fold((static_cast<std::uint64_t>(tc.initiator) << 32) | tc.dest);
      fold(tc.dead_link);
    }
  }
  return h;
}

/// Scenario records already journaled for this sweep, by index;
/// nullptr entries run live.  Pointers alias journal.recovered().
std::vector<const ledger::ScenarioRecord*> journaled_scenarios(
    const ledger::Journal& journal, std::uint64_t sweep_fp,
    std::size_t scenario_count) {
  std::vector<const ledger::ScenarioRecord*> recorded(scenario_count,
                                                      nullptr);
  for (const ledger::Record& rec : journal.recovered()) {
    const auto* sr = std::get_if<ledger::ScenarioRecord>(&rec);
    if (sr == nullptr || sr->sweep != sweep_fp) continue;
    if (sr->index >= scenario_count) {
      throw ledger::LedgerError(
          "ledger resume: journaled scenario index out of range for its "
          "sweep");
    }
    recorded[sr->index] = sr;
  }
  return recorded;
}

/// Re-warms the shared base-tree stores with exactly the sources the
/// replayed units requested (their journaled unit notes), in ascending
/// order.  Counting stays ON: an uninterrupted run computes each of
/// these trees exactly once process-wide, and so does the resumed run
/// -- here, instead of inside whichever unit asked first.
void prewarm_base_trees(
    const TopologyContext& ctx,
    const std::vector<const ledger::ScenarioRecord*>& recorded) {
  std::set<obs::Value> dijkstra;
  std::set<obs::Value> bfs;
  for (const ledger::ScenarioRecord* sr : recorded) {
    if (sr == nullptr) continue;
    for (const auto& [key, values] : sr->delta.notes) {
      if (key == "spf.base.dijkstra") {
        dijkstra.insert(values.begin(), values.end());
      } else if (key == "spf.base.bfs") {
        bfs.insert(values.begin(), values.end());
      }
    }
  }
  for (obs::Value v : dijkstra) {
    if (v >= ctx.g.num_nodes()) {
      throw ledger::LedgerError(
          "ledger resume: journaled base-tree source out of range for "
          "topology " +
          ctx.name);
    }
    (void)ctx.spf_base.from(static_cast<NodeId>(v));
  }
  for (obs::Value v : bfs) {
    if (v >= ctx.g.num_nodes()) {
      throw ledger::LedgerError(
          "ledger resume: journaled base-tree source out of range for "
          "topology " +
          ctx.name);
    }
    (void)ctx.truth_base.from(static_cast<NodeId>(v));
  }
}

/// Folds one replayed scenario into the process: digest check, decoded
/// partial out, stable-metric delta into the registry.
template <typename Partial>
Partial replay_scenario(ledger::Journal& journal,
                        const ledger::ScenarioRecord& sr,
                        Partial (*decode)(const std::vector<std::uint8_t>&)) {
  if (ledger::fnv1a64(sr.payload.data(), sr.payload.size()) != sr.digest) {
    throw ledger::LedgerError(
        "ledger resume: scenario payload digest mismatch");
  }
  Partial p = decode(sr.payload);
  obs::apply_unit_delta(obs::Registry::global(), sr.delta);
  journal.note_resume_skip();
  return p;
}

void append(std::vector<double>& acc, const std::vector<double>& v) {
  acc.insert(acc.end(), v.begin(), v.end());
}

void add_into(std::vector<double>& acc, const std::vector<double>& v) {
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += v[i];
}

}  // namespace

RecoverableResults run_recoverable(const TopologyContext& ctx,
                                   const std::vector<Scenario>& scenarios,
                                   const RunOptions& opts) {
  RTR_EXPECT_MSG(ctx.g.num_nodes() > 0, "empty topology context");
  RunnerMetrics& metrics = RunnerMetrics::get();
  obs::ScopedTimer phase_timer(metrics.recoverable_phase_ns);
  RecoverableResults out;
  out.topo = ctx.name;
  out.rtr_bytes_timeline.assign(opts.timeline_ms, 0.0);
  out.fcp_bytes_timeline.assign(opts.timeline_ms, 0.0);

  // MRC configurations are proactive: built once per topology,
  // independent of any failure, and only read (forward() is const)
  // by the work units.  Fault mode skips the baselines entirely.
  const bool faults = opts.fault.any();
  const bool storms = opts.storm.any();
  std::unique_ptr<baseline::Mrc> mrc;
  if (opts.run_mrc && !faults && !storms) {
    mrc = std::make_unique<baseline::Mrc>(ctx.g, ctx.rt);
  }

  // A recorded storm track is loaded once, before the fan-out, so the
  // workers never touch the filesystem (and a journaled resume hashes
  // the same bytes the original run used).
  std::vector<storm::StormCell> waypoint_cells;
  const std::vector<storm::StormCell>* waypoints = nullptr;
  if (storms && !opts.storm.waypoint_file.empty()) {
    waypoint_cells = storm::load_waypoints(opts.storm.waypoint_file);
    waypoints = &waypoint_cells;
  }

  ledger::Journal* journal = opts.journal.get();
  const std::uint64_t sweep_fp =
      journal != nullptr
          ? sweep_fingerprint(ctx, "recoverable", scenarios, opts)
          : 0;
  std::vector<const ledger::ScenarioRecord*> recorded(scenarios.size(),
                                                      nullptr);
  std::vector<RecoverablePartial> partials(scenarios.size());
  if (journal != nullptr) {
    recorded = journaled_scenarios(*journal, sweep_fp, scenarios.size());
    prewarm_base_trees(ctx, recorded);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      if (recorded[i] == nullptr) continue;
      partials[i] = replay_scenario<RecoverablePartial>(
          *journal, *recorded[i], decode_recoverable_partial);
    }
  }

  // lint:allow(wall-clock) — anchors the volatile queue-wait series only
  const auto fan_out_start = std::chrono::steady_clock::now();
  common::parallel_for(scenarios.size(), opts.threads, [&](std::size_t i) {
    if (recorded[i] != nullptr) return;  // replayed from the journal
    record_queue_wait(metrics, fan_out_start);
    // With a journal armed, capture this unit's exact stable-metric
    // contribution; the registry still sees every add live.
    std::optional<obs::UnitCapture> capture;
    if (journal != nullptr) capture.emplace();
    partials[i] =
        storms ? run_scenario_recoverable_storm(ctx, scenarios[i], opts, i,
                                                waypoints)
        : faults
            ? run_scenario_recoverable_fault(ctx, scenarios[i], opts, i)
            : run_scenario_recoverable(ctx, scenarios[i], opts, mrc.get());
    metrics.scenarios.inc();
    if (journal != nullptr) {
      ledger::ScenarioRecord rec;
      rec.sweep = sweep_fp;
      rec.index = i;
      rec.seed = storms ? opts.storm.seed : faults ? opts.fault.seed : 0;
      rec.stream_seed =
          storms ? fault::FaultPlan::stream_seed(opts.storm.seed, i)
          : faults ? fault::FaultPlan::stream_seed(opts.fault.seed, i)
                   : 0;
      rec.watermark =
          storms ? partials[i].storm_ticks + partials[i].storm_drain_ticks
                 : 0;
      rec.payload = encode_partial(partials[i]);
      rec.digest = ledger::fnv1a64(rec.payload.data(), rec.payload.size());
      rec.delta = capture->take();
      journal->append(ledger::Record(std::move(rec)));
    }
  });

  // Merge in scenario-index order; this fixes the sample order and the
  // floating-point summation order independently of scheduling.
  for (const RecoverablePartial& p : partials) {
    metrics.recoverable_cases.add(p.cases);
    out.cases += p.cases;
    out.rtr_recovered += p.rtr_recovered;
    out.rtr_optimal += p.rtr_optimal;
    out.fcp_recovered += p.fcp_recovered;
    out.fcp_optimal += p.fcp_optimal;
    out.mrc_recovered += p.mrc_recovered;
    out.mrc_optimal += p.mrc_optimal;
    out.rtr_phase1_aborted += p.rtr_phase1_aborted;
    out.rtr_unrecovered += p.rtr_unrecovered;
    out.rtr_dropped += p.rtr_dropped;
    out.rtr_retry_attempts += p.rtr_retry_attempts;
    out.rtr_reinitiations += p.rtr_reinitiations;
    out.storm_ticks += p.storm_ticks;
    out.storm_drain_ticks += p.storm_drain_ticks;
    out.storm_delta_links += p.storm_delta_links;
    out.storm_delta_nodes += p.storm_delta_nodes;
    out.storm_shadowed_flaps += p.storm_shadowed_flaps;
    out.storm_repairs += p.storm_repairs;
    out.storm_fallbacks += p.storm_fallbacks;
    out.storm_repair_ops += p.storm_repair_ops;
    out.storm_budget_stalls += p.storm_budget_stalls;
    out.storm_unreachable_pairs += p.storm_unreachable_pairs;
    out.storm_dist_digest ^= p.storm_dist_digest;
    append(out.rtr_recovery_ms, p.rtr_recovery_ms);
    append(out.phase1_duration_ms, p.phase1_duration_ms);
    append(out.rtr_stretch, p.rtr_stretch);
    append(out.fcp_stretch, p.fcp_stretch);
    append(out.mrc_stretch, p.mrc_stretch);
    append(out.rtr_calcs, p.rtr_calcs);
    append(out.fcp_calcs, p.fcp_calcs);
    add_into(out.rtr_bytes_timeline, p.rtr_bytes_timeline);
    add_into(out.fcp_bytes_timeline, p.fcp_bytes_timeline);
  }

  // Timeline sums -> means over the cases of this topology.
  if (out.cases > 0) {
    for (double& v : out.rtr_bytes_timeline) {
      v /= static_cast<double>(out.cases);
    }
    for (double& v : out.fcp_bytes_timeline) {
      v /= static_cast<double>(out.cases);
    }
  }
  return out;
}

IrrecoverableResults run_irrecoverable(const TopologyContext& ctx,
                                       const std::vector<Scenario>& scenarios,
                                       const RunOptions& opts) {
  RTR_EXPECT_MSG(ctx.g.num_nodes() > 0, "empty topology context");
  RunnerMetrics& metrics = RunnerMetrics::get();
  obs::ScopedTimer phase_timer(metrics.irrecoverable_phase_ns);
  IrrecoverableResults out;
  out.topo = ctx.name;

  ledger::Journal* journal = opts.journal.get();
  const std::uint64_t sweep_fp =
      journal != nullptr
          ? sweep_fingerprint(ctx, "irrecoverable", scenarios, opts)
          : 0;
  std::vector<const ledger::ScenarioRecord*> recorded(scenarios.size(),
                                                      nullptr);
  std::vector<IrrecoverablePartial> partials(scenarios.size());
  if (journal != nullptr) {
    recorded = journaled_scenarios(*journal, sweep_fp, scenarios.size());
    prewarm_base_trees(ctx, recorded);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      if (recorded[i] == nullptr) continue;
      partials[i] = replay_scenario<IrrecoverablePartial>(
          *journal, *recorded[i], decode_irrecoverable_partial);
    }
  }

  // lint:allow(wall-clock) — anchors the volatile queue-wait series only
  const auto fan_out_start = std::chrono::steady_clock::now();
  common::parallel_for(scenarios.size(), opts.threads, [&](std::size_t i) {
    if (recorded[i] != nullptr) return;  // replayed from the journal
    record_queue_wait(metrics, fan_out_start);
    std::optional<obs::UnitCapture> capture;
    if (journal != nullptr) capture.emplace();
    partials[i] = run_scenario_irrecoverable(ctx, scenarios[i], opts);
    metrics.scenarios.inc();
    if (journal != nullptr) {
      ledger::ScenarioRecord rec;
      rec.sweep = sweep_fp;
      rec.index = i;
      rec.payload = encode_partial(partials[i]);
      rec.digest = ledger::fnv1a64(rec.payload.data(), rec.payload.size());
      rec.delta = capture->take();
      journal->append(ledger::Record(std::move(rec)));
    }
  });

  for (const IrrecoverablePartial& p : partials) {
    metrics.irrecoverable_cases.add(p.cases);
    out.cases += p.cases;
    out.rtr_delivered += p.rtr_delivered;
    out.fcp_delivered += p.fcp_delivered;
    append(out.phase1_duration_ms, p.phase1_duration_ms);
    append(out.rtr_wasted_comp, p.rtr_wasted_comp);
    append(out.fcp_wasted_comp, p.fcp_wasted_comp);
    append(out.rtr_wasted_trans, p.rtr_wasted_trans);
    append(out.fcp_wasted_trans, p.fcp_wasted_trans);
  }
  return out;
}

std::vector<RadiusPoint> radius_sweep(const TopologyContext& ctx,
                                      const std::vector<double>& radii,
                                      std::size_t areas_per_radius,
                                      std::uint64_t seed, double extent,
                                      fail::LinkCutRule rule) {
  RTR_EXPECT_MSG(extent > 0.0, "radius sweep needs a positive extent");
  static obs::Histogram& phase_ns =
      obs::Registry::global().timer("rtr.exp.phase.radius_sweep_ns");
  static obs::Counter& areas =
      obs::Registry::global().counter("rtr.exp.radius_sweep.areas");
  obs::ScopedTimer phase_timer(phase_ns);
  areas.add(radii.size() * areas_per_radius);
  Rng rng(seed);
  std::vector<RadiusPoint> out;
  out.reserve(radii.size());
  for (double radius : radii) {
    RadiusPoint pt;
    pt.radius = radius;
    for (std::size_t i = 0; i < areas_per_radius; ++i) {
      const fail::CircleArea area =
          fail::random_circle_area_fixed_radius(extent, radius, rng);
      FailedPathCounts counts;
      extract_scenario(ctx, area, &counts, rule);
      pt.failed_paths += counts.failed;
      pt.irrecoverable_paths += counts.irrecoverable;
    }
    out.push_back(pt);
  }
  return out;
}

}  // namespace rtr::exp
