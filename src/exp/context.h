// Per-topology immutable context shared by every experiment: the graph,
// its crossing index (Section III-C precomputation) and the failure-free
// hop-count routing tables (Section IV-A).
#pragma once

#include <string>

#include "graph/crossings.h"
#include "graph/gen/isp_gen.h"
#include "graph/graph.h"
#include "spf/routing_table.h"

namespace rtr::exp {

struct TopologyContext {
  std::string name;
  graph::Graph g;
  graph::CrossingIndex crossings;
  spf::RoutingTable rt;

  TopologyContext(std::string topo_name, graph::Graph graph)
      : name(std::move(topo_name)),
        g(std::move(graph)),
        crossings(g),
        rt(g, spf::RoutingTable::Metric::kHopCount) {}

  // rt borrows g: moving the context would leave rt pointing at the
  // moved-from graph.  Contexts are created in place (guaranteed copy
  // elision) or held by unique_ptr; they never relocate.
  TopologyContext(const TopologyContext&) = delete;
  TopologyContext& operator=(const TopologyContext&) = delete;
};

/// Builds the context of one surrogate ISP topology (in place, via
/// guaranteed copy elision).
TopologyContext make_context(const graph::IspSpec& spec);

}  // namespace rtr::exp
