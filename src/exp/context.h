// Per-topology immutable context shared by every experiment: the graph,
// its crossing index (Section III-C precomputation), the failure-free
// hop-count routing tables (Section IV-A), and the per-source base SPTs
// the incremental scenario engine repairs from (spf/batch_repair.h).
#pragma once

#include <string>

#include "graph/crossings.h"
#include "graph/gen/isp_gen.h"
#include "graph/graph.h"
#include "spf/batch_repair.h"
#include "spf/routing_table.h"

namespace rtr::exp {

struct TopologyContext {
  std::string name;
  graph::Graph g;
  graph::CrossingIndex crossings;
  spf::RoutingTable rt;
  /// Undamaged-graph base trees shared by every scenario work unit
  /// (compute-once, thread-safe; trees appear lazily on first use, so
  /// the full-recompute engine pays nothing for them).  spf_base feeds
  /// RTR phase 2 (link costs), truth_base the ground-truth hop-count
  /// distances.
  spf::BaseTreeStore spf_base;
  spf::BaseTreeStore truth_base;

  TopologyContext(std::string topo_name, graph::Graph graph)
      : name(std::move(topo_name)),
        g(std::move(graph)),
        crossings(g),
        rt(g, spf::RoutingTable::Metric::kHopCount),
        spf_base(g, spf::SpfAlgorithm::kDijkstra),
        truth_base(g, spf::SpfAlgorithm::kBfsHopCount) {}

  // rt borrows g: moving the context would leave rt pointing at the
  // moved-from graph.  Contexts are created in place (guaranteed copy
  // elision) or held by unique_ptr; they never relocate.
  TopologyContext(const TopologyContext&) = delete;
  TopologyContext& operator=(const TopologyContext&) = delete;
};

/// Builds the context of one surrogate ISP topology (in place, via
/// guaranteed copy elision).
TopologyContext make_context(const graph::IspSpec& spec);

}  // namespace rtr::exp
