// Bench-binary configuration from environment variables, so the full
// 10,000-case paper workload can be scaled down (e.g. in CI) without
// rebuilding:
//   RTR_CASES        recoverable and irrecoverable cases per topology
//                    (default 10000, the paper's count)
//   RTR_FIG11_AREAS  areas per radius in the Fig. 11 sweep (default 1000)
//   RTR_SEED         master seed (default 20120618)
//   RTR_CUT_RULE     "endpoint" (default; matches the paper's simulated
//                    data) or "geometric" (the stated Section II-A model)
//   RTR_SPF_ENGINE   "incremental" (default; batch-repair shared base
//                    SPTs per failure set) or "full" (recompute per
//                    (source, failure set)).  Results are bit-identical
//                    either way; only the spf.* op counters move.
//   RTR_THREADS      worker threads for the scenario fan-out (default 0 =
//                    all hardware threads; 1 = serial).  Results are
//                    bit-identical for every value; see exp::RunOptions.
//   RTR_METRICS_OUT  when set, write the rtr::obs metrics registry as a
//                    schema-versioned JSON document to this path at exit
//                    (see obs/emit.h and bench/bench_common.h)
//   RTR_METRICS_DETERMINISTIC
//                    "1" drops the wall-clock ("timing") block from the
//                    metrics JSON so the file is bit-identical across
//                    thread counts (used by the CI determinism smoke)
//   RTR_FAULT_*      fault-injection knobs (see fault/fault.h): LOSS,
//                    CORRUPT, DUP, DETECT_MS, DYN_LINKS, DYN_WINDOW_MS,
//                    FLAP, RETRY_CAP, BACKOFF_MS, SEED.  All zero by
//                    default, which leaves every bench byte-identical
//                    to a build without the fault layer.
//   RTR_STORM_*      rolling-disaster knobs (see storm/storm.h): TICKS,
//                    TICK_MS, CELLS, RADIUS, GROWTH, SPEED, FLAP,
//                    BUDGET, SEED, WAYPOINTS.  TICKS=0 (the default)
//                    disarms the layer entirely: no storm spec is
//                    compiled, no rtr.storm.* series is registered, and
//                    bench output stays byte-identical to a storm-free
//                    build.
//   RTR_LEDGER       when set, journal every completed scenario to this
//                    crash-durable ledger file and, on restart, resume
//                    the sweep from it (see ledger/journal.h).  Unset
//                    (the default) leaves every bench bit-identical to
//                    a ledger-free build: no journal is opened and no
//                    rtr.ledger.* series is registered.
//
// Every bench binary additionally accepts `--threads N` and
// `--metrics-out FILE` on the command line (see bench/bench_common.h),
// which override the corresponding environment variables.
#pragma once

#include <cstdint>
#include <string>

#include "failure/failure_set.h"
#include "fault/fault.h"
#include "spf/batch_repair.h"
#include "storm/storm.h"

namespace rtr::exp {

struct BenchConfig {
  std::size_t cases = 10000;
  std::size_t fig11_areas = 1000;
  std::uint64_t seed = 20120618;
  fail::LinkCutRule cut_rule = fail::LinkCutRule::kEndpointsOnly;
  /// Scenario-evaluation SPF engine (RTR_SPF_ENGINE).
  spf::SpfEngine spf_engine = spf::SpfEngine::kIncremental;
  /// Worker threads for the experiment engine (0 = hardware threads).
  std::size_t threads = 0;
  /// Destination of the metrics JSON document ("" = do not emit).
  std::string metrics_out;
  /// Omit the volatile (wall-clock) block from the metrics JSON.
  bool metrics_deterministic = false;
  /// Fault-injection knobs (RTR_FAULT_* / --fault-*); disarmed by
  /// default, in which case no bench output changes at all.
  fault::FaultOptions fault;
  /// Rolling-disaster knobs (RTR_STORM_* / --storm-*); disarmed by
  /// default (ticks == 0), in which case no bench output changes.
  storm::StormOptions storm;
  /// Crash-durable scenario journal (RTR_LEDGER / --ledger); "" = no
  /// journaling.  Deliberately excluded from describe(), the metrics
  /// run.config block and fingerprint(): a resumed run and an
  /// uninterrupted one differ only in their ledger paths and must stay
  /// byte-comparable.
  std::string ledger_path;

  static BenchConfig from_env();

  /// One-line provenance string printed at the top of every bench.
  std::string describe() const;

  /// Stable hash over every knob that changes *what* a sweep computes
  /// (cases, seeds, cut rule, engine, fault/storm options, and the
  /// storm waypoint file's content when one is set) -- but not over
  /// how it runs (threads, metrics emission, the ledger path itself).
  /// Pinned in the journal header so a journal can never be replayed
  /// into a differently-configured run.
  std::uint64_t fingerprint() const;
};

}  // namespace rtr::exp
