#include "exp/bench_config.h"

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>

#include "common/parallel.h"
#include "ledger/record.h"

namespace rtr::exp {

namespace {
std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}
}  // namespace

BenchConfig BenchConfig::from_env() {
  BenchConfig c;
  c.cases = static_cast<std::size_t>(env_u64("RTR_CASES", c.cases));
  c.fig11_areas =
      static_cast<std::size_t>(env_u64("RTR_FIG11_AREAS", c.fig11_areas));
  c.seed = env_u64("RTR_SEED", c.seed);
  c.threads = static_cast<std::size_t>(env_u64("RTR_THREADS", c.threads));
  // NOLINTNEXTLINE(concurrency-mt-unsafe): env read before workers start
  const char* rule = std::getenv("RTR_CUT_RULE");
  if (rule != nullptr && std::string(rule) == "geometric") {
    c.cut_rule = fail::LinkCutRule::kGeometric;
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe): env read before workers start
  const char* engine = std::getenv("RTR_SPF_ENGINE");
  if (engine != nullptr && std::string(engine) == "full") {
    c.spf_engine = spf::SpfEngine::kFull;
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe): env read before workers start
  const char* metrics = std::getenv("RTR_METRICS_OUT");
  if (metrics != nullptr && *metrics != '\0') c.metrics_out = metrics;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): env read before workers start
  const char* det = std::getenv("RTR_METRICS_DETERMINISTIC");
  if (det != nullptr && std::string(det) == "1") {
    c.metrics_deterministic = true;
  }
  c.fault = fault::FaultOptions::from_env();
  c.storm = storm::StormOptions::from_env();
  // NOLINTNEXTLINE(concurrency-mt-unsafe): env read before workers start
  const char* ledger = std::getenv("RTR_LEDGER");
  if (ledger != nullptr && *ledger != '\0') c.ledger_path = ledger;
  return c;
}

std::string BenchConfig::describe() const {
  std::ostringstream os;
  os << "cases/topology=" << cases << " fig11-areas/radius=" << fig11_areas
     << " seed=" << seed << " cut-rule="
     << (cut_rule == fail::LinkCutRule::kEndpointsOnly ? "endpoint"
                                                       : "geometric")
     << " spf-engine="
     << (spf_engine == spf::SpfEngine::kIncremental ? "incremental" : "full")
     << " threads=";
  if (threads == 0) {
    os << "hw(" << common::hardware_thread_count() << ")";
  } else {
    os << threads;
  }
  if (fault.any()) os << " " << fault.describe();
  if (storm.any()) os << " " << storm.describe();
  return os.str();
}

std::uint64_t BenchConfig::fingerprint() const {
  // describe() cannot be hashed directly: it reports the *resolved*
  // thread count, and a resumed run must be free to use a different
  // one.  Hash only the workload-defining knobs.
  std::ostringstream os;
  os << "cases=" << cases << "|fig11=" << fig11_areas << "|seed=" << seed
     << "|cut=" << static_cast<int>(cut_rule)
     << "|engine=" << static_cast<int>(spf_engine);
  if (fault.any()) os << "|" << fault.describe();
  if (storm.any()) os << "|" << storm.describe();
  std::uint64_t h = ledger::fnv1a64(os.str());
  if (storm.any() && !storm.waypoint_file.empty()) {
    // The waypoint *content* folds in, not just the path: editing the
    // track file changes the workload even when the name is stable.
    std::ifstream in(storm.waypoint_file, std::ios::binary);
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    h = ledger::fnv1a64(bytes, h);
  }
  return h;
}

}  // namespace rtr::exp
