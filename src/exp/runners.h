// Experiment runners: execute RTR / FCP / MRC over generated test cases
// and produce the raw samples behind every table and figure of
// Section IV.  Bench binaries format these; tests assert their
// invariants (Theorems 1-3, FCP delivery, metric sanity).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rtr.h"
#include "exp/cases.h"
#include "exp/context.h"
#include "fault/fault.h"
#include "net/delay.h"
#include "storm/storm.h"

namespace rtr::ledger {
class Journal;
}

namespace rtr::exp {

struct RunOptions {
  bool run_mrc = true;                ///< MRC appears only in Table III
  bool run_fcp = true;
  std::size_t timeline_ms = 1000;     ///< Fig. 10 horizon (first second)
  net::DelayModel delay;              ///< 1.8 ms per hop (Section IV-B)
  core::RtrOptions rtr;               ///< constraint/SPT knobs (ablations)
  /// How scenario-evaluation SPTs are derived (ground truth and RTR
  /// phase 2): kFull recomputes per (source, failure set); kIncremental
  /// batch-repairs the shared base trees in TopologyContext.  Results
  /// are bit-identical either way (tests/prop/ enforces it); the knob
  /// only changes how much work `spf.*` counters record.
  spf::SpfEngine spf_engine = spf::SpfEngine::kIncremental;
  /// LRU bound on each work unit's ground-truth SptCache; generous so
  /// paper-sized sweeps never evict, bounded so arbitrarily large
  /// scenarios cannot hold every tree alive.  Eviction only changes
  /// spf.spt_cache.* metrics, never results.
  std::size_t spt_cache_entries = 4096;
  /// Tuning for the batch-repair engine (fallback threshold); read by
  /// the ground-truth cache.  RTR phase 2 reads rtr.batch_repair.
  spf::BatchRepairOptions batch_repair;
  /// Fault-injection knobs (rtr::fault).  When fault.any() is false --
  /// the default -- the fault layer is never constructed and every
  /// result and metric is byte-identical to a build without it.  When
  /// armed, recoverable cases run as distributed recovery sessions over
  /// the event simulator under a per-scenario FaultPlan (stream seed =
  /// FaultPlan::stream_seed(fault.seed, scenario index)), with bounded
  /// retry and graceful kUnrecovered/kDropped terminal outcomes; FCP
  /// and MRC baselines are skipped.  Results stay bit-identical across
  /// `threads` values because each scenario owns its plan and stream.
  fault::FaultOptions fault;
  /// Rolling-disaster knobs (rtr::storm).  When storm.any() is false --
  /// the default -- nothing storm-related is constructed and results
  /// are byte-identical to a build without the layer.  When armed,
  /// run_recoverable switches to storm mode: each scenario compiles a
  /// seeded StormSpec substream (stream seed = fault::FaultPlan::
  /// stream_seed(storm.seed, scenario index)) into a timeline layered
  /// on the scenario's static failure -- overlaid with a FaultPlan's
  /// dynamic link deaths under area-wins precedence when fault is also
  /// armed -- and re-plans the recoverable initiators' trees tick by
  /// tick under the repair budget (storm/engine.h).  Per-case
  /// RTR/FCP/MRC recovery is skipped, like fault mode skips baselines.
  storm::StormOptions storm;
  /// Worker threads for the scenario fan-out: 0 = all hardware threads,
  /// 1 = plain serial loop on the calling thread.  Every Scenario is an
  /// independent work unit whose partial results are merged in
  /// scenario-index order, so results are bit-identical for every value
  /// of this knob -- it only changes wall-clock time.
  std::size_t threads = 0;
  /// Crash-durable scenario journal (rtr::ledger).  nullptr -- the
  /// default -- journals nothing and leaves the runner byte-identical
  /// to a ledger-free build.  When set, every completed work unit is
  /// appended as a ScenarioRecord (serialized partial + the exact
  /// stable-metric delta it contributed), and on entry any scenario
  /// already recorded for this sweep (matched by a fingerprint over
  /// topology, phase and every result-shaping option) is replayed from
  /// the journal instead of re-run: its partial merges in scenario-index
  /// order, its metric delta folds into the registry, and the base-tree
  /// sources it requested are re-warmed -- so stdout and deterministic
  /// metrics of a killed-and-resumed sweep are byte-identical to an
  /// uninterrupted run at any thread count.  shared_ptr because one
  /// process (and one journal writer) spans many sweeps.
  std::shared_ptr<ledger::Journal> journal;
};

/// Aggregated results over the recoverable test cases of one topology
/// (Table III and Figs. 7-10).
struct RecoverableResults {
  std::string topo;
  std::size_t cases = 0;

  std::size_t rtr_recovered = 0, rtr_optimal = 0;
  std::size_t fcp_recovered = 0, fcp_optimal = 0;
  std::size_t mrc_recovered = 0, mrc_optimal = 0;
  /// Phase-1 traversals that failed to close (Theorem 1 says zero when
  /// both constraints are on; nonzero only in ablations).
  std::size_t rtr_phase1_aborted = 0;

  // Fault-mode outcomes (all zero when RunOptions::fault is disarmed).
  std::size_t rtr_unrecovered = 0;      ///< retry cap exhausted
  std::size_t rtr_dropped = 0;          ///< declared unreachable
  std::size_t rtr_retry_attempts = 0;   ///< sends across all sessions
  std::size_t rtr_reinitiations = 0;    ///< re-initiated phase-1 sweeps
  std::vector<double> rtr_recovery_ms;  ///< per recovered case, detection
                                        ///< through delivery (sim time)

  // Storm-mode outcomes (all zero when RunOptions::storm is disarmed).
  std::size_t storm_ticks = 0;          ///< storm ticks across scenarios
  std::size_t storm_drain_ticks = 0;    ///< budget-backlog drain ticks
  std::size_t storm_delta_links = 0;    ///< link transitions (down + up)
  std::size_t storm_delta_nodes = 0;    ///< routers destroyed
  std::size_t storm_shadowed_flaps = 0; ///< fault flaps under dead areas
  std::size_t storm_repairs = 0;        ///< repair_spt calls
  std::size_t storm_fallbacks = 0;      ///< full-recompute repairs
  std::size_t storm_repair_ops = 0;     ///< touched-node units charged
  std::size_t storm_budget_stalls = 0;  ///< source-ticks left stale
  std::size_t storm_unreachable_pairs = 0;  ///< lasting partition damage
  std::uint64_t storm_dist_digest = 0;  ///< XOR of final-tree digests

  std::vector<double> phase1_duration_ms;           ///< per case (Fig. 7)
  std::vector<double> rtr_stretch;                  ///< recovered cases (Fig. 8)
  std::vector<double> fcp_stretch;
  std::vector<double> mrc_stretch;
  std::vector<double> rtr_calcs;                    ///< per case (Fig. 9)
  std::vector<double> fcp_calcs;
  std::vector<double> rtr_bytes_timeline;           ///< mean bytes at ms t (Fig. 10)
  std::vector<double> fcp_bytes_timeline;
};

RecoverableResults run_recoverable(const TopologyContext& ctx,
                                   const std::vector<Scenario>& scenarios,
                                   const RunOptions& opts = {});

/// Aggregated results over the irrecoverable test cases of one topology
/// (Table IV and Figs. 12-13; phase-1 samples also feed Fig. 7).
struct IrrecoverableResults {
  std::string topo;
  std::size_t cases = 0;

  /// Packets that RTR nevertheless delivered (must stay 0: the
  /// destination is unreachable; tests assert it).
  std::size_t rtr_delivered = 0, fcp_delivered = 0;

  std::vector<double> phase1_duration_ms;
  std::vector<double> rtr_wasted_comp, fcp_wasted_comp;    ///< SP calcs
  std::vector<double> rtr_wasted_trans, fcp_wasted_trans;  ///< bytes
};

IrrecoverableResults run_irrecoverable(const TopologyContext& ctx,
                                       const std::vector<Scenario>& scenarios,
                                       const RunOptions& opts = {});

/// Fig. 11: percentage of failed routing paths that are irrecoverable,
/// per failure radius.
struct RadiusPoint {
  double radius = 0.0;
  std::size_t failed_paths = 0;
  std::size_t irrecoverable_paths = 0;
  double pct_irrecoverable() const {
    return failed_paths == 0
               ? 0.0
               : 100.0 * static_cast<double>(irrecoverable_paths) /
                     static_cast<double>(failed_paths);
  }
};

std::vector<RadiusPoint> radius_sweep(
    const TopologyContext& ctx, const std::vector<double>& radii,
    std::size_t areas_per_radius, std::uint64_t seed,
    double extent = 2000.0,
    fail::LinkCutRule rule = fail::LinkCutRule::kEndpointsOnly);

}  // namespace rtr::exp
