#include "exp/context.h"

namespace rtr::exp {

TopologyContext make_context(const graph::IspSpec& spec) {
  return TopologyContext(spec.name, graph::make_isp_topology(spec));
}

}  // namespace rtr::exp
