// Segment predicates: orientation tests and the "cross links" predicate.
//
// Section III-C of the paper excludes candidate next-hop links that
// *cross* links recorded in the packet's cross_link field.  Two links
// cross when their open interiors intersect; links that merely share a
// router (endpoint) are adjacent, not crossing.  Routers precompute, for
// every link, the set of links across it (Section III-C), which is
// implemented in graph/crossings.h on top of these predicates.
#pragma once

#include <algorithm>

#include "geom/point.h"

namespace rtr::geom {

/// Tolerance for orientation tests.  Coordinates in this code base live
/// in [0, 2000] so 1e-9 is far below any meaningful feature size.
inline constexpr double kEps = 1e-9;

/// A closed line segment between two points.
struct Segment {
  Point a;
  Point b;
};

/// Sign of the orientation of the triple (a, b, c):
/// +1 counterclockwise, -1 clockwise, 0 collinear (within kEps).
inline int orientation(Point a, Point b, Point c) {
  const double v = cross(b - a, c - a);
  if (v > kEps) return 1;
  if (v < -kEps) return -1;
  return 0;
}

/// True when point p lies on segment s (within tolerance).
inline bool on_segment(Point p, const Segment& s) {
  if (orientation(s.a, s.b, p) != 0) return false;
  return p.x >= std::min(s.a.x, s.b.x) - kEps &&
         p.x <= std::max(s.a.x, s.b.x) + kEps &&
         p.y >= std::min(s.a.y, s.b.y) - kEps &&
         p.y <= std::max(s.a.y, s.b.y) + kEps;
}

/// True when the two segments *properly* cross: they intersect in exactly
/// one point that is interior to both.  This is the paper's notion of one
/// link being "across" another; segments sharing an endpoint do not cross.
inline bool properly_cross(const Segment& s, const Segment& t) {
  const int o1 = orientation(s.a, s.b, t.a);
  const int o2 = orientation(s.a, s.b, t.b);
  const int o3 = orientation(t.a, t.b, s.a);
  const int o4 = orientation(t.a, t.b, s.b);
  return o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 && o1 != o2 && o3 != o4;
}

/// True when the segments intersect at all (including touching at
/// endpoints or collinear overlap).  Used by topology generators that
/// want visually clean layouts; the protocol itself uses properly_cross.
inline bool segments_intersect(const Segment& s, const Segment& t) {
  if (properly_cross(s, t)) return true;
  return on_segment(t.a, s) || on_segment(t.b, s) || on_segment(s.a, t) ||
         on_segment(s.b, t);
}

/// Squared distance from point p to segment s.
inline double distance2_to_segment(Point p, const Segment& s) {
  const Point d = s.b - s.a;
  const double len2 = norm2(d);
  if (len2 <= kEps * kEps) return distance2(p, s.a);  // degenerate segment
  double t = dot(p - s.a, d) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return distance2(p, s.a + d * t);
}

/// Distance from point p to segment s.
inline double distance_to_segment(Point p, const Segment& s) {
  return std::sqrt(distance2_to_segment(p, s));
}

}  // namespace rtr::geom
