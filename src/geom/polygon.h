// Simple polygons.
//
// The paper stresses that RTR makes "no assumption on the shape and
// location of the failure area" (Section II-A); only the *evaluation*
// uses circles.  Polygon areas let the library model arbitrary-shape
// disasters (e.g. a hurricane track or a fibre-cut corridor) and back
// the PolygonArea failure shape and its tests.
#pragma once

#include <vector>

#include "geom/point.h"
#include "geom/segment.h"

namespace rtr::geom {

/// A simple polygon given by its vertices in order (either winding).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices);

  const std::vector<Point>& vertices() const { return vertices_; }
  std::size_t size() const { return vertices_.size(); }

  /// Edge i runs from vertex i to vertex (i+1) mod n.
  Segment edge(std::size_t i) const;

  /// True when p lies strictly inside the polygon (even-odd rule;
  /// points on the boundary are treated as outside).
  bool contains(Point p) const;

  /// True when segment s passes through the polygon's interior or
  /// crosses its boundary.
  bool intersects(const Segment& s) const;

  /// Signed area (positive for counterclockwise vertex order).
  double signed_area() const;

  /// Axis-aligned bounding box as {min, max} corners.
  std::pair<Point, Point> bounding_box() const;

 private:
  std::vector<Point> vertices_;
};

/// Convenience: a regular n-gon approximating a circle; used by tests to
/// cross-validate PolygonArea against CircleArea.
Polygon make_regular_polygon(Point center, double radius, std::size_t n);

}  // namespace rtr::geom
