#include "geom/polygon.h"

#include <cmath>
#include <numbers>

#include "common/expect.h"

namespace rtr::geom {

Polygon::Polygon(std::vector<Point> vertices) : vertices_(std::move(vertices)) {
  RTR_EXPECT_MSG(vertices_.size() >= 3, "a polygon needs at least 3 vertices");
}

Segment Polygon::edge(std::size_t i) const {
  RTR_EXPECT(i < vertices_.size());
  return {vertices_[i], vertices_[(i + 1) % vertices_.size()]};
}

bool Polygon::contains(Point p) const {
  // Even-odd rule via a horizontal ray towards +x.
  bool inside = false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[j];
    const bool straddles = (a.y > p.y) != (b.y > p.y);
    if (straddles) {
      const double x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

bool Polygon::intersects(const Segment& s) const {
  if (contains(s.a) || contains(s.b)) return true;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (segments_intersect(edge(i), s)) return true;
  }
  return false;
}

double Polygon::signed_area() const {
  double acc = 0.0;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    acc += cross(vertices_[j], vertices_[i]);
  }
  return acc / 2.0;
}

std::pair<Point, Point> Polygon::bounding_box() const {
  Point lo = vertices_.front();
  Point hi = vertices_.front();
  for (const Point& v : vertices_) {
    lo.x = std::min(lo.x, v.x);
    lo.y = std::min(lo.y, v.y);
    hi.x = std::max(hi.x, v.x);
    hi.y = std::max(hi.y, v.y);
  }
  return {lo, hi};
}

Polygon make_regular_polygon(Point center, double radius, std::size_t n) {
  RTR_EXPECT(n >= 3 && radius > 0.0);
  std::vector<Point> vs;
  vs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 2.0 * std::numbers::pi * static_cast<double>(i) /
                     static_cast<double>(n);
    vs.push_back({center.x + radius * std::cos(a),
                  center.y + radius * std::sin(a)});
  }
  return Polygon(std::move(vs));
}

}  // namespace rtr::geom
