// Counterclockwise angle sweeps for the right-hand rule.
//
// Section III-B: a node takes the link to its previous hop (or, at the
// recovery initiator, the link to the unreachable default next hop) as a
// sweeping line and rotates it counterclockwise until it reaches a live
// neighbour.  The neighbour minimising the counterclockwise rotation
// angle is therefore the next hop.  ccw_angle returns that rotation in
// (0, 2*pi], mapping "no rotation" to a full turn so that the previous
// hop itself is always the candidate of last resort (dead-end backtrack).
#pragma once

#include <cmath>
#include <numbers>

#include "geom/point.h"

namespace rtr::geom {

inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Counterclockwise rotation, in radians in (0, 2*pi], that carries
/// direction `from` onto direction `to`.  Both must be nonzero vectors.
inline double ccw_angle(Point from, Point to) {
  const double a = std::atan2(cross(from, to), dot(from, to));
  // atan2 yields (-pi, pi]; fold into (0, 2*pi] with 0 -> 2*pi.
  return a > 0.0 ? a : a + kTwoPi;
}

/// Clockwise variant, used by the traversal-orientation ablation.
/// Returns the clockwise rotation in (0, 2*pi].
inline double cw_angle(Point from, Point to) {
  const double a = ccw_angle(from, to);
  return a == kTwoPi ? kTwoPi : kTwoPi - a;
}

/// Absolute bearing of a direction vector in [0, 2*pi).
inline double bearing(Point dir) {
  double a = std::atan2(dir.y, dir.x);
  if (a < 0.0) a += kTwoPi;
  return a;
}

}  // namespace rtr::geom
