#include "geom/convex_hull.h"

#include <algorithm>

#include "common/expect.h"
#include "geom/segment.h"

namespace rtr::geom {

std::vector<Point> convex_hull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](Point a, Point b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const std::size_t n = points.size();
  if (n <= 2) return points;

  std::vector<Point> hull(2 * n);
  std::size_t k = 0;
  // Lower hull.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 &&
           orientation(hull[k - 2], hull[k - 1], points[i]) <= 0) {
      --k;
    }
    hull[k++] = points[i];
  }
  // Upper hull.
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    while (k >= lower &&
           orientation(hull[k - 2], hull[k - 1], points[i]) <= 0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // last point repeats the first
  return hull;
}

Polygon convex_hull_polygon(std::vector<Point> points) {
  std::vector<Point> hull = convex_hull(std::move(points));
  RTR_EXPECT_MSG(hull.size() >= 3,
                 "hull polygon needs 3 non-collinear points");
  return Polygon(std::move(hull));
}

}  // namespace rtr::geom
