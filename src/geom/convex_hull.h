// Convex hulls (Andrew's monotone chain).
//
// Supports the failure-region estimation extension: the recovery
// initiator knows the coordinates of all routers (Section II-A), so the
// hull of the failed links it collected localises the disaster.
#pragma once

#include <vector>

#include "geom/point.h"
#include "geom/polygon.h"

namespace rtr::geom {

/// Convex hull of the points, counterclockwise, no three collinear
/// vertices.  Fewer than 3 distinct non-collinear points yield the
/// degenerate hull (the distinct points themselves, possibly < 3).
std::vector<Point> convex_hull(std::vector<Point> points);

/// Hull as a Polygon; requires at least 3 non-collinear points.
Polygon convex_hull_polygon(std::vector<Point> points);

}  // namespace rtr::geom
