// 2-D points and vectors.
//
// The paper embeds routers in a 2000x2000 plane (Section IV-A) and relies
// on coordinates for the right-hand-rule traversal of Section III-B/C.
// Everything geometric in the code base is built on this header.
#pragma once

#include <cmath>

namespace rtr::geom {

/// A point (or displacement vector) in the plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
  friend Point operator*(double s, Point a) { return a * s; }
  friend bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
  friend bool operator!=(Point a, Point b) { return !(a == b); }
};

/// Dot product.
inline double dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }

/// 2-D cross product (z component of the 3-D cross product).
/// Positive when b is counterclockwise from a.
inline double cross(Point a, Point b) { return a.x * b.y - a.y * b.x; }

/// Squared Euclidean norm.
inline double norm2(Point a) { return dot(a, a); }

/// Euclidean norm.
inline double norm(Point a) { return std::sqrt(norm2(a)); }

/// Euclidean distance between two points.
inline double distance(Point a, Point b) { return norm(b - a); }

/// Squared distance (avoids the sqrt when only comparisons are needed).
inline double distance2(Point a, Point b) { return norm2(b - a); }

}  // namespace rtr::geom
