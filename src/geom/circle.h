// Circles: the failure-area shape used throughout the paper's evaluation
// (Section IV-A: "the failure area is a circle randomly placed in the
// 2000x2000 area with a radius randomly selected between 100 and 300").
#pragma once

#include "geom/point.h"
#include "geom/segment.h"

namespace rtr::geom {

struct Circle {
  Point center;
  double radius = 0.0;

  /// True when p lies strictly inside the circle.
  bool contains(Point p) const {
    return distance2(p, center) < radius * radius;
  }

  /// True when the segment passes through the circle's interior.
  /// A link "across" the failure area fails (Section II-A) -- this
  /// includes chords whose endpoints are both outside.
  bool intersects(const Segment& s) const {
    return distance2_to_segment(center, s) < radius * radius;
  }
};

}  // namespace rtr::geom
