// Deterministic random number generation.
//
// All stochastic pieces of the reproduction (topology generation, failure
// placement, test-case sampling) draw from an explicitly seeded Rng so
// that every experiment is bit-reproducible from the seed recorded in the
// bench output.
#pragma once

#include <cstdint>
#include <random>

#include "common/expect.h"

namespace rtr {

/// Thin wrapper over std::mt19937_64 with convenience samplers.
/// Copyable: copying forks the stream deterministically.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    RTR_EXPECT(lo <= hi);
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).  Requires lo < hi.
  double uniform_real(double lo, double hi) {
    RTR_EXPECT(lo < hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p) {
    RTR_EXPECT(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform index in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n) {
    RTR_EXPECT(n > 0);
    return static_cast<std::size_t>(uniform_int(0, n - 1));
  }

  /// Derive an independent child stream; used to give each experiment
  /// repetition its own seed without correlating draws.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rtr
