// Deterministic random number generation.
//
// All stochastic pieces of the reproduction (topology generation, failure
// placement, test-case sampling) draw from an explicitly seeded Rng so
// that every experiment is bit-reproducible from the seed recorded in the
// bench output.
#pragma once

#include <cstdint>
#include <random>

#include "common/expect.h"

namespace rtr {

/// Thin wrapper over std::mt19937_64 with convenience samplers.
/// Copyable: copying forks the stream deterministically.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    RTR_EXPECT(lo <= hi);
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).  Requires lo < hi.
  double uniform_real(double lo, double hi) {
    RTR_EXPECT(lo < hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p) {
    RTR_EXPECT(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform index in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n) {
    RTR_EXPECT(n > 0);
    return static_cast<std::size_t>(uniform_int(0, n - 1));
  }

  /// Derive an independent child stream; used to give each experiment
  /// repetition its own seed without correlating draws.
  ///
  /// The parent draw is expanded through splitmix64 into four words
  /// fed to a seed_seq, so the child's mt19937_64 state is well mixed
  /// instead of being the low-entropy single-word seeding that made
  /// sibling streams start from correlated states.  Fully
  /// deterministic: the same root seed yields the same forks.
  Rng fork() {
    std::uint64_t x = engine_();
    std::uint32_t words[8];
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t z = splitmix64_next(x);
      words[2 * i] = static_cast<std::uint32_t>(z);
      words[2 * i + 1] = static_cast<std::uint32_t>(z >> 32);
    }
    std::seed_seq seq(words, words + 8);
    return Rng(seq);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  explicit Rng(std::seed_seq& seq) : engine_(seq) {}

  /// One step of Vigna's splitmix64 sequence (advances `state`).
  static std::uint64_t splitmix64_next(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::mt19937_64 engine_;
};

}  // namespace rtr
