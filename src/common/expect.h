// Lightweight contract checking.
//
// RTR_EXPECT guards preconditions and invariants that indicate programmer
// error; violations throw rtr::ContractViolation so tests can assert on
// them and applications fail loudly instead of corrupting state.
#pragma once

#include <stdexcept>
#include <string>

namespace rtr {

/// Thrown when a precondition or invariant checked by RTR_EXPECT fails.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::string what = std::string("contract violated: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) what += " (" + msg + ")";
  throw ContractViolation(what);
}
}  // namespace detail

}  // namespace rtr

/// Precondition / invariant check.  Always on: the checks used in this
/// code base are O(1) and outside inner loops, so the cost is negligible
/// relative to the safety they buy in a simulator whose results feed a
/// reproduction study.
#define RTR_EXPECT(cond)                                                \
  do {                                                                  \
    if (!(cond))                                                        \
      ::rtr::detail::contract_fail(#cond, __FILE__, __LINE__, "");      \
  } while (0)

/// Precondition check with an explanatory message.
#define RTR_EXPECT_MSG(cond, msg)                                       \
  do {                                                                  \
    if (!(cond))                                                        \
      ::rtr::detail::contract_fail(#cond, __FILE__, __LINE__, (msg));   \
  } while (0)
