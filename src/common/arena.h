// Single-block bump allocator backing frozen data structures.
//
// The CSR graph (graph/graph.h) freezes all of its arrays -- coords,
// links, adjacency offsets and the two adjacency orderings -- into one
// contiguous allocation so a continental-scale topology costs one
// malloc, packs with no per-vector slack, and walks with predictable
// locality.  The builder knows every array length before freezing, so
// the arena is sized exactly once and never grows: allocate_array()
// hands out raw, uninitialized storage and the caller constructs into
// it (std::uninitialized_copy / std::construct_at).  Only trivially
// destructible element types are accepted -- the arena frees bytes, it
// never runs destructors.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>

#include "common/expect.h"

namespace rtr::common {

class Arena {
 public:
  Arena() = default;
  explicit Arena(std::size_t capacity_bytes)
      : block_(capacity_bytes > 0 ? new std::byte[capacity_bytes] : nullptr),
        capacity_(capacity_bytes) {}

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for n objects of T, aligned for T.  The
  /// caller must construct the elements before reading them.  Requires
  /// the aligned request to fit in the remaining capacity.
  template <typename T>
  T* allocate_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is freed without running destructors");
    const std::size_t align = alignof(T);
    const std::size_t aligned = (used_ + align - 1) / align * align;
    RTR_EXPECT_MSG(aligned + n * sizeof(T) <= capacity_,
                   "arena capacity exhausted");
    used_ = aligned + n * sizeof(T);
    return reinterpret_cast<T*>(block_.get() + aligned);
  }

  /// Bytes needed to later allocate_array<T>(n) after arbitrary prior
  /// allocations: the element storage plus worst-case alignment pad.
  template <typename T>
  static std::size_t bytes_for(std::size_t n) {
    return n * sizeof(T) + alignof(T) - 1;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }

 private:
  std::unique_ptr<std::byte[]> block_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

}  // namespace rtr::common
