// Fundamental identifier types and constants shared by every module.
//
// The paper represents a link id with 16 bits in the packet header
// (Section III-B); node ids fit the same width for the topologies under
// study (|V| <= a few hundred).  Internally we use 32-bit indices so that
// arithmetic never overflows, and serialize to 16 bits at the codec layer.
#pragma once

#include <cstdint>
#include <limits>

namespace rtr {

/// Index of a node (router) within a Graph.  Dense, 0-based.
using NodeId = std::uint32_t;

/// Index of an undirected link within a Graph.  Dense, 0-based.
using LinkId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no link".
inline constexpr LinkId kNoLink = std::numeric_limits<LinkId>::max();

/// Link cost type.  The paper's evaluation uses hop-count routing
/// (every cost 1) but the model allows asymmetric weighted costs.
using Cost = double;

/// Sentinel for "unreachable".
inline constexpr Cost kInfCost = std::numeric_limits<Cost>::infinity();

/// Wire size of a link or node id in the packet header (Section III-B:
/// "The link id is represented by 16 bits").
inline constexpr std::size_t kWireIdBytes = 2;

}  // namespace rtr
