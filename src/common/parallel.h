// Deterministic parallel-for over independent work units.
//
// The experiment engine (exp/runners.cc) treats each failure Scenario as
// an independent work unit over shared read-only state and merges the
// per-unit partial results in unit-index order, so the *outputs* never
// depend on scheduling.  This header supplies the scheduling half: a
// fork-join parallel_for that farms indices [0, n) out to a small pool
// of std::threads via an atomic work counter (dynamic load balancing --
// scenarios vary a lot in case count) and rethrows the first exception a
// work unit raised, preserving the RTR_EXPECT contract-failure behaviour
// of the serial loop.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace rtr::common {

/// Number of hardware threads, never 0 (1 when the runtime cannot tell).
inline std::size_t hardware_thread_count() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

/// Maps the user-facing threads knob to an actual worker count:
/// 0 means "use all hardware threads", anything else is taken as-is.
inline std::size_t resolve_thread_count(std::size_t requested) {
  return requested == 0 ? hardware_thread_count() : requested;
}

/// Invokes fn(i) for every i in [0, n), spread over `threads` workers
/// (after resolve_thread_count; capped at n).  fn must only touch
/// index-i state or shared read-only state: with that discipline the
/// result is identical for every thread count, including 1, which runs
/// the plain serial loop on the calling thread with no pool at all.
///
/// If any fn(i) throws, remaining indices are abandoned and the first
/// exception (in completion order) is rethrown on the calling thread
/// after all workers have stopped.
template <typename Fn>
void parallel_for(std::size_t n, std::size_t threads, Fn&& fn) {
  const std::size_t workers = std::min(resolve_thread_count(threads), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto worker = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  bool spawn_failed = false;
  for (std::size_t t = 0; t + 1 < workers; ++t) {
    try {
      pool.emplace_back(worker);
    } catch (const std::system_error&) {
      // Thread creation failed (resource exhaustion).  Letting the
      // exception fly would destroy the already-spawned joinable
      // threads and std::terminate; instead drain the work counter,
      // join what was started and finish the leftovers serially below.
      spawn_failed = true;
      break;
    }
  }
  if (!spawn_failed) {
    worker();  // the calling thread is worker number `workers`
  }
  std::size_t claimed = n;
  if (spawn_failed) {
    // Everything at or past `claimed` was never handed to a worker;
    // indices below it are done or in flight (finished by join below).
    claimed = std::min(next.exchange(n, std::memory_order_relaxed), n);
  }
  for (std::thread& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
  for (std::size_t i = claimed; i < n; ++i) fn(i);
}

}  // namespace rtr::common
