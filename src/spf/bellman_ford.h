// Bellman-Ford single-source shortest paths.
//
// A deliberately independent reference implementation (edge relaxation
// over rounds, no heap, no shared code with shortest_path.cc): the
// property tests cross-validate Dijkstra, BFS, the routing tables and
// the incremental SPT against it on random weighted, asymmetric and
// masked graphs.  Also the only engine here that can certify the
// absence of negative cycles, which Graph's positive-cost invariant
// otherwise guarantees by construction.
#pragma once

#include "graph/properties.h"
#include "spf/shortest_path.h"

namespace rtr::spf {

struct BellmanFordResult {
  std::vector<Cost> dist;     ///< kInfCost when unreachable
  std::vector<NodeId> parent; ///< predecessor (kNoNode at source)
  bool negative_cycle = false;
};

/// Runs |V|-1 relaxation rounds plus one detection round from `source`,
/// honouring the masks.  O(V * E).
BellmanFordResult bellman_ford(const graph::Graph& g, NodeId source,
                               const graph::Masks& masks = {});

}  // namespace rtr::spf
