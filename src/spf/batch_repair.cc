#include "spf/batch_repair.h"

#include <queue>
#include <tuple>

#include "obs/metrics.h"

namespace rtr::spf {

namespace {

/// One repair call finished; which path it took and how many node
/// distances it re-derived -- the locality the engine banks on, visible
/// as stable spf.batch_repair.* series in --metrics-out.
struct RepairMetrics {
  obs::Counter& shared;
  obs::Counter& repaired;
  obs::Counter& fallback;
  obs::Histogram& touched;

  static RepairMetrics& get() {
    obs::Registry& r = obs::Registry::global();
    // lint:allow(mutable-static) — references into the sharded obs registry
    static RepairMetrics m{r.counter("rtr.spf.batch_repair.shared"),
                           r.counter("rtr.spf.batch_repair.repaired"),
                           r.counter("rtr.spf.batch_repair.fallback_full"),
                           r.histogram("rtr.spf.batch_repair.touched_nodes",
                                       obs::size_bounds())};
    return m;
  }
};

struct HeapEntry {
  Cost dist;
  NodeId node;
  NodeId via;
  LinkId link;
  bool operator>(const HeapEntry& o) const {
    return std::tie(dist, node, via) > std::tie(o.dist, o.node, o.via);
  }
};

/// Directed cost of entering `to` over link l from `from` under the
/// tree's metric (hop count treats every traversal as 1).
Cost step_cost(const graph::Graph& g, LinkId l, NodeId from,
               SpfAlgorithm alg) {
  return alg == SpfAlgorithm::kBfsHopCount ? 1.0 : g.cost_from(l, from);
}

bool usable(const graph::Masks& masks, LinkId l, NodeId via) {
  return masks.link_ok(l) && masks.node_ok(via);
}

}  // namespace

void canonicalize_parents(const graph::Graph& g, SptResult& spt,
                          const graph::Masks& masks, SpfAlgorithm alg,
                          const std::vector<NodeId>& nodes) {
  RTR_EXPECT(g.valid_node(spt.source));
  const auto canonicalize = [&](NodeId v) {
    if (v == spt.source) return;
    if (!spt.reachable(v)) {
      spt.parent[v] = kNoNode;
      spt.parent_link[v] = kNoLink;
      return;
    }
    NodeId best = kNoNode;
    LinkId best_link = kNoLink;
    for (const graph::Adjacency& a : g.neighbors(v)) {
      if (!usable(masks, a.link, a.neighbor)) continue;
      if (!spt.reachable(a.neighbor)) continue;
      const Cost nd =
          spt.dist[a.neighbor] + step_cost(g, a.link, a.neighbor, alg);
      if (nd == spt.dist[v] && a.neighbor < best) {
        best = a.neighbor;
        best_link = a.link;
      }
    }
    RTR_EXPECT_MSG(best != kNoNode,
                   "reachable node has no shortest-path predecessor");
    spt.parent[v] = best;
    spt.parent_link[v] = best_link;
  };
  if (nodes.empty()) {
    for (NodeId v = 0; v < g.node_count(); ++v) canonicalize(v);
  } else {
    for (NodeId v : nodes) canonicalize(v);
  }
}

std::shared_ptr<const SptResult> repair_spt(
    const graph::Graph& g, std::shared_ptr<const SptResult> base,
    const graph::Masks& masks, SpfAlgorithm alg,
    const BatchRepairOptions& opts, BatchRepairStats* stats) {
  RTR_EXPECT(base != nullptr && g.valid_node(base->source));
  RTR_EXPECT(base->dist.size() == g.num_nodes());
  RepairMetrics& metrics = RepairMetrics::get();

  // 1. Seeds: tree nodes the delta detaches.  A masked node loses its
  // whole subtree; a node whose tree edge (or tree parent) is masked
  // loses its attachment and must re-anchor.
  constexpr char kUnknown = 0, kIn = 1, kOut = 2;
  std::vector<char> status(g.num_nodes(), kUnknown);
  bool any_seed = false;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (!base->reachable(v)) {
      status[v] = kOut;  // stays unreachable under a removal-only delta
      continue;
    }
    if (!masks.node_ok(v)) {
      status[v] = kIn;
      any_seed = true;
      continue;
    }
    const LinkId pl = base->parent_link[v];
    if (pl == kNoLink) {
      status[v] = kOut;  // the source anchors the tree
    } else if (!usable(masks, pl, base->parent[v])) {
      status[v] = kIn;
      any_seed = true;
    }
  }
  if (!any_seed) {
    // Copy-on-write fast path: the failure set does not intersect this
    // tree, so the shared base IS the damaged-graph tree (removals can
    // only detach subtrees, and no subtree was detached).
    metrics.shared.inc();
    if (stats != nullptr) *stats = {RepairPath::kShared, 0};
    return base;
  }

  // 2. Affected region: the subtree closure of the seeds.  A node is
  // detached iff a seed sits on its parent chain; each walk memoises
  // the chain it visited, so the whole pass is O(n) amortised.
  std::vector<NodeId> chain;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    NodeId u = v;
    while (status[u] == kUnknown) {
      chain.push_back(u);
      u = base->parent[u];
    }
    const char verdict = status[u];
    for (NodeId w : chain) status[w] = verdict;
    chain.clear();
  }
  std::vector<NodeId> region;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (status[v] == kIn) region.push_back(v);
  }
  metrics.touched.observe(region.size());
  if (stats != nullptr) *stats = {RepairPath::kRepaired, region.size()};

  // 3. Correctness/perf fallback: a delta touching most of the tree
  // gains nothing from regional repair -- recompute under the masks.
  if (static_cast<double>(region.size()) >
      opts.fallback_fraction * static_cast<double>(g.num_nodes())) {
    metrics.fallback.inc();
    if (stats != nullptr) stats->path = RepairPath::kFallback;
    SptResult full = alg == SpfAlgorithm::kBfsHopCount
                         ? bfs_from(g, base->source, masks)
                         : dijkstra_from(g, base->source, masks);
    if (alg == SpfAlgorithm::kBfsHopCount) {
      canonicalize_parents(g, full, masks, alg);
    }
    return std::make_shared<const SptResult>(std::move(full));
  }
  metrics.repaired.inc();

  // 4. Regional repair: reset the region, seed a heap from its intact
  // boundary (whose distances are final: under a pure-removal delta an
  // untouched node's distance cannot change), then run Dijkstra
  // restricted to the region.
  SptResult r = *base;
  for (NodeId v : region) {
    r.dist[v] = kInfCost;
    r.parent[v] = kNoNode;
    r.parent_link[v] = kNoLink;
  }
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  for (NodeId v : region) {
    if (!masks.node_ok(v)) continue;
    for (const graph::Adjacency& a : g.neighbors(v)) {
      if (status[a.neighbor] == kIn) continue;
      if (!usable(masks, a.link, a.neighbor)) continue;
      if (!r.reachable(a.neighbor)) continue;
      const Cost nd =
          r.dist[a.neighbor] + step_cost(g, a.link, a.neighbor, alg);
      heap.push({nd, v, a.neighbor, a.link});
    }
  }
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.dist >= r.dist[top.node]) continue;
    r.dist[top.node] = top.dist;
    r.parent[top.node] = top.via;
    r.parent_link[top.node] = top.link;
    for (const graph::Adjacency& a : g.neighbors(top.node)) {
      if (status[a.neighbor] != kIn) continue;
      if (!usable(masks, a.link, a.neighbor)) continue;
      const Cost nd = top.dist + step_cost(g, a.link, top.node, alg);
      if (nd < r.dist[a.neighbor]) {
        heap.push({nd, a.neighbor, top.node, a.link});
      }
    }
  }

  // 5. Re-derive the region's parent pointers under the canonical
  // tie-break so the repaired tree is bit-identical to a full run.
  canonicalize_parents(g, r, masks, alg, region);
  return std::make_shared<const SptResult>(std::move(r));
}

namespace {

/// Heap footprint of one materialised tree, the unit the hot-ring
/// budget is measured in.
std::size_t materialized_tree_bytes(std::size_t num_nodes) {
  return sizeof(SptResult) +
         num_nodes * (sizeof(Cost) + sizeof(NodeId) + sizeof(LinkId));
}

}  // namespace

BaseTreeStore::BaseTreeStore(const graph::Graph& g, SpfAlgorithm alg,
                             std::size_t hot_budget_bytes)
    : g_(&g),
      alg_(alg),
      hot_capacity_(std::min(
          hot_budget_bytes / materialized_tree_bytes(g.num_nodes()),
          g.num_nodes())),
      compressed_(g.num_nodes()),
      cache_(g.num_nodes()) {
  // A non-zero budget always keeps at least one tree hot: the common
  // access pattern re-reads the tree it just asked for.
  if (hot_budget_bytes > 0 && hot_capacity_ == 0 && g.num_nodes() > 0) {
    hot_capacity_ = 1;
  }
}

std::shared_ptr<const SptResult> BaseTreeStore::from(NodeId source) const {
  RTR_EXPECT(g_->valid_node(source));
  static obs::Counter& computed =
      obs::Registry::global().counter("rtr.spf.base_trees.computed");
  // Which sources a unit of work *requested* is deterministic per unit
  // and is what a ledger-resumed run pre-warms; noted before the lock
  // so the note order within a unit matches call order.
  obs::unit_note(alg_ == SpfAlgorithm::kBfsHopCount ? "spf.base.bfs"
                                                    : "spf.base.dijkstra",
                 source);
  // The mutex is held across the computation on purpose: each tree is
  // then computed exactly once per process, keeping the spf.*.runs
  // counters bit-identical at every thread count.
  const std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const SptResult> tree = cache_[source].lock();
  if (tree == nullptr) {
    CompressedSpt& slot = compressed_[source];
    if (!slot.computed()) {
      // Compute-once work belongs to the process, not to whichever
      // unit happened to ask first: a resumed run re-warms these trees
      // itself (from the journaled source notes), so attributing the
      // counters to the unit's delta would double-count them on replay.
      const obs::UnitCaptureSuspend suspend;
      computed.inc();
      SptResult r = alg_ == SpfAlgorithm::kBfsHopCount
                        ? bfs_from(*g_, source)
                        : dijkstra_from(*g_, source);
      if (alg_ == SpfAlgorithm::kBfsHopCount) {
        // bfs_from's discovery-order parents are deterministic but not
        // canonical; repairs compose only over canonical bases.
        canonicalize_parents(*g_, r, {}, alg_);
      }
      slot = compress_spt(r);
    }
    // Always hand out the codec's output -- including right after the
    // first computation -- so every consumer sees the same bytes and a
    // codec defect cannot hide behind the transient materialised copy.
    tree = std::make_shared<const SptResult>(decompress_spt(*g_, slot, alg_));
    cache_[source] = tree;
  }
  if (hot_capacity_ > 0) {
    if (hot_.size() < hot_capacity_) {
      hot_.push_back(tree);
    } else {
      hot_[hot_next_] = tree;
      hot_next_ = (hot_next_ + 1) % hot_capacity_;
    }
  }
  return tree;
}

std::size_t BaseTreeStore::trees_computed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& t : compressed_) n += t.computed() ? 1 : 0;
  return n;
}

std::size_t BaseTreeStore::compressed_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& t : compressed_) n += t.byte_size();
  return n;
}

}  // namespace rtr::spf
