// Path representation shared by the routing substrate and the recovery
// protocols (source routes are paths carried in the packet header).
#pragma once

#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace rtr::spf {

/// A walk through the graph.  nodes.size() == links.size() + 1 when
/// non-empty; links[i] connects nodes[i] and nodes[i+1].
struct Path {
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;
  Cost cost = 0.0;

  bool empty() const { return nodes.empty(); }
  std::size_t hops() const { return links.size(); }
  NodeId source() const { return nodes.front(); }
  NodeId destination() const { return nodes.back(); }
};

/// Validates structural consistency of p against g: adjacent nodes are
/// really joined by the stated links and the cost adds up.
bool valid_path(const graph::Graph& g, const Path& p);

/// Recomputes the directed cost of the walk (sum of per-direction link
/// costs); returns kInfCost for an empty path.
Cost path_cost(const graph::Graph& g, const Path& p);

}  // namespace rtr::spf
