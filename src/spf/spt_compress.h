// Delta-compressed storage for base shortest-path trees.
//
// A materialised SptResult costs 16 bytes per node (dist + parent +
// parent_link); a million-node BaseTreeStore holding one tree per
// source would therefore need terabytes.  But a from-source tree of the
// UNDAMAGED graph is fully determined by its parent pointers alone:
//
//   * dist   -- both engines assign dist[v] = dist[parent[v]] + c with
//     exact `==` tie-break comparisons (run_dijkstra's tie_better and
//     canonicalize_parents never change a distance), so walking the
//     parent chain and summing step costs in root-to-leaf order
//     reproduces every distance bit-for-bit;
//   * parent_link -- the graph is simple, so the u-v link is unique and
//     find_link() recovers it.
//
// Parents themselves are stored as zigzag deltas against the node id,
// LEB128-varint encoded.  Tree parents are overwhelmingly near
// neighbours in id space (generators allocate ids with spatial
// locality), so most nodes cost one byte instead of eight: ~1-2 bytes
// per node in practice, a 10x+ reduction that lets a 10^6-node store
// fit in memory.  Value 0 is reserved for "no parent" (the source and
// unreachable nodes; a real delta is never 0 because self-loops are
// rejected).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "spf/engine.h"
#include "spf/shortest_path.h"

namespace rtr::spf {

/// One compressed from-source tree.  `bytes` holds num_nodes varints in
/// node-id order; an un-computed slot has empty bytes.
struct CompressedSpt {
  NodeId source = kNoNode;
  std::size_t num_nodes = 0;
  std::vector<std::uint8_t> bytes;

  bool computed() const { return !bytes.empty(); }
  std::size_t byte_size() const { return bytes.size(); }
};

/// Compresses a from-source tree of the undamaged graph.  `spt` must
/// come from dijkstra_from/bfs_from (canonicalised or not) WITHOUT
/// masks: only parents are stored, so distances must be reconstructible
/// as parent-chain sums.
CompressedSpt compress_spt(const SptResult& spt);

/// Reconstructs the exact SptResult `compress_spt` consumed: parents
/// are decoded, parent links re-found (unique in a simple graph) and
/// distances re-accumulated root-to-leaf under `alg`'s step cost --
/// bit-identical to the original (see the header comment).
SptResult decompress_spt(const graph::Graph& g, const CompressedSpt& c,
                         SpfAlgorithm alg);

}  // namespace rtr::spf
