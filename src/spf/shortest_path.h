// Single-source shortest paths with failure masks.
//
// Recovery protocols repeatedly ask "shortest path from me to the
// destination in my current *view* of the topology" -- the full graph
// minus the links/nodes the router believes failed.  Masks express that
// view without copying the graph.  Tie-breaks are deterministic (smaller
// parent node id wins) so simulations are reproducible and routing
// tables are consistent across routers, as Section II-A assumes.
#pragma once

#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "graph/properties.h"
#include "spf/path.h"

namespace rtr::spf {

/// Result of a single-source run from `source`.
struct SptResult {
  NodeId source = kNoNode;
  std::vector<Cost> dist;          ///< kInfCost when unreachable
  std::vector<LinkId> parent_link; ///< tree link towards source; kNoLink at
                                   ///< the source and unreachable nodes
  std::vector<NodeId> parent;      ///< predecessor on the shortest path

  bool reachable(NodeId n) const { return dist[n] < kInfCost; }
};

/// Dijkstra from `source` outwards (directed costs taken source->node).
/// Masked nodes/links are skipped; a masked source yields all-infinite.
SptResult dijkstra_from(const graph::Graph& g, NodeId source,
                        const graph::Masks& masks = {});

/// Dijkstra *towards* `target`: dist[u] is the cost of the optimal
/// u -> target path under directed costs.  This is what a routing table
/// per destination needs when costs are asymmetric.
SptResult dijkstra_to(const graph::Graph& g, NodeId target,
                      const graph::Masks& masks = {});

/// BFS specialisation for hop-count metrics (all costs treated as 1);
/// used by the evaluation ("shortest path routing based on hop count").
SptResult bfs_from(const graph::Graph& g, NodeId source,
                   const graph::Masks& masks = {});

/// Extracts the source->dst path from a dijkstra_from/bfs_from result.
/// Returns an empty path when dst is unreachable.
Path extract_path(const graph::Graph& g, const SptResult& spt, NodeId dst);

/// Convenience: shortest path source->dst under masks (empty if none).
Path shortest_path(const graph::Graph& g, NodeId source, NodeId dst,
                   const graph::Masks& masks = {});

}  // namespace rtr::spf
