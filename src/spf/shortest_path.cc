#include "spf/shortest_path.h"

#include <algorithm>
#include <queue>
#include <tuple>

#include "obs/metrics.h"

namespace rtr::spf {

namespace {

/// Heap entry; ordering makes the smaller (dist, node) pop first so that
/// equal-cost ties resolve towards smaller node ids deterministically.
struct HeapEntry {
  Cost dist;
  NodeId node;
  bool operator>(const HeapEntry& o) const {
    return std::tie(dist, node) > std::tie(o.dist, o.node);
  }
};

enum class Direction { kFromSource, kToTarget };

SptResult run_dijkstra(const graph::Graph& g, NodeId root,
                       const graph::Masks& masks, Direction dir) {
  RTR_EXPECT(g.valid_node(root));
  static obs::Counter& runs =
      obs::Registry::global().counter("rtr.spf.dijkstra.full_runs");
  runs.inc();
  SptResult r;
  r.source = root;
  r.dist.assign(g.num_nodes(), kInfCost);
  r.parent_link.assign(g.num_nodes(), kNoLink);
  r.parent.assign(g.num_nodes(), kNoNode);
  if (!masks.node_ok(root)) return r;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  r.dist[root] = 0.0;
  heap.push({0.0, root});
  std::vector<char> done(g.num_nodes(), 0);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (done[u]) continue;
    done[u] = 1;
    for (const graph::Adjacency& a : g.neighbors(u)) {
      if (!masks.link_ok(a.link) || !masks.node_ok(a.neighbor)) continue;
      // kFromSource: we travel u -> neighbor.  kToTarget: the path under
      // construction runs neighbor -> u -> ... -> root, so the directed
      // cost is that of traversing the link *from the neighbor*.
      const Cost c = dir == Direction::kFromSource
                         ? g.cost_from(a.link, u)
                         : g.cost_from(a.link, a.neighbor);
      const Cost nd = d + c;
      const NodeId v = a.neighbor;
      const bool better = nd < r.dist[v];
      const bool tie_better =
          nd == r.dist[v] && r.parent[v] != kNoNode && u < r.parent[v];
      if (better || tie_better) {
        r.dist[v] = nd;
        r.parent[v] = u;
        r.parent_link[v] = a.link;
        if (better) heap.push({nd, v});
      }
    }
  }
  return r;
}

}  // namespace

SptResult dijkstra_from(const graph::Graph& g, NodeId source,
                        const graph::Masks& masks) {
  return run_dijkstra(g, source, masks, Direction::kFromSource);
}

SptResult dijkstra_to(const graph::Graph& g, NodeId target,
                      const graph::Masks& masks) {
  return run_dijkstra(g, target, masks, Direction::kToTarget);
}

SptResult bfs_from(const graph::Graph& g, NodeId source,
                   const graph::Masks& masks) {
  RTR_EXPECT(g.valid_node(source));
  static obs::Counter& runs =
      obs::Registry::global().counter("rtr.spf.bfs.runs");
  runs.inc();
  SptResult r;
  r.source = source;
  r.dist.assign(g.num_nodes(), kInfCost);
  r.parent_link.assign(g.num_nodes(), kNoLink);
  r.parent.assign(g.num_nodes(), kNoNode);
  if (!masks.node_ok(source)) return r;
  std::queue<NodeId> q;
  r.dist[source] = 0.0;
  q.push(source);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    // Visit neighbours in ascending id order for deterministic parents.
    for (const graph::Adjacency& a : g.sorted_neighbors(u)) {
      if (!masks.link_ok(a.link) || !masks.node_ok(a.neighbor)) continue;
      if (r.dist[a.neighbor] < kInfCost) continue;
      r.dist[a.neighbor] = r.dist[u] + 1.0;
      r.parent[a.neighbor] = u;
      r.parent_link[a.neighbor] = a.link;
      q.push(a.neighbor);
    }
  }
  return r;
}

Path extract_path(const graph::Graph& g, const SptResult& spt, NodeId dst) {
  RTR_EXPECT(g.valid_node(dst));
  Path p;
  if (!spt.reachable(dst)) return p;
  NodeId cur = dst;
  while (cur != spt.source) {
    p.nodes.push_back(cur);
    p.links.push_back(spt.parent_link[cur]);
    cur = spt.parent[cur];
  }
  p.nodes.push_back(spt.source);
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.links.begin(), p.links.end());
  p.cost = path_cost(g, p);
  return p;
}

Path shortest_path(const graph::Graph& g, NodeId source, NodeId dst,
                   const graph::Masks& masks) {
  return extract_path(g, dijkstra_from(g, source, masks), dst);
}

}  // namespace rtr::spf
