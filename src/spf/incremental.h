// Incremental shortest-path-tree maintenance (Section III-D).
//
// "In the second phase, RTR adopts incremental recomputation [19] to
// calculate the shortest path from the recovery initiator to the
// destination, which can be achieved within a few milliseconds even for
// graphs with a thousand nodes."  IncrementalSpt maintains the SPT of a
// fixed root under link/node removals and link restorations, repairing
// only the affected subtree instead of rerunning Dijkstra (the dynamic
// algorithm family of Narvaez et al.).  bench_micro_spf quantifies the
// saving against a full recomputation.
#pragma once

#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "spf/path.h"
#include "spf/shortest_path.h"

namespace rtr::spf {

class IncrementalSpt {
 public:
  /// Builds the initial tree with a full Dijkstra from root.
  IncrementalSpt(const graph::Graph& g, NodeId root);

  /// Removes a set of links at once (a failure area removes many links
  /// simultaneously) and repairs the tree.
  void remove_links(const std::vector<LinkId>& links);
  void remove_link(LinkId l) { remove_links({l}); }

  /// Removes a node: all its incident links go down and the node itself
  /// becomes unreachable.
  void remove_node(NodeId n);

  /// Restores a previously removed link and repairs the tree.
  void restore_link(LinkId l);

  Cost dist(NodeId n) const { return spt_.dist[n]; }
  bool reachable(NodeId n) const { return spt_.reachable(n); }
  NodeId root() const { return spt_.source; }

  /// Current shortest path root -> dst (empty when unreachable).
  Path path_to(NodeId dst) const { return extract_path(*g_, spt_, dst); }

  /// The maintained tree (distances/parents under current removals).
  const SptResult& result() const { return spt_; }

  /// Number of nodes whose distance was re-derived by the last update;
  /// the "locality" the incremental algorithm exploits.
  std::size_t last_update_touched() const { return touched_; }

  bool link_removed(LinkId l) const { return link_removed_[l] != 0; }
  bool node_removed(NodeId n) const { return node_removed_[n] != 0; }

 private:
  void repair(const std::vector<NodeId>& affected);
  bool usable(LinkId l, NodeId via_node) const;

  const graph::Graph* g_;
  SptResult spt_;
  std::vector<char> link_removed_;
  std::vector<char> node_removed_;
  std::size_t touched_ = 0;
};

}  // namespace rtr::spf
