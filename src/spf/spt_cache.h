// Ground-truth shortest-path-tree cache for a fixed masked view.
//
// The experiment runners repeatedly ask "true shortest distance from
// initiator X in the damaged graph" while scoring test cases; within one
// failure scenario many cases share an initiator, so the tree from each
// source is computed once and memoised.
//
// Concurrency discipline: SptCache is intentionally NOT thread-safe (no
// locks on the hot path).  The parallel experiment engine gives each
// work unit -- one Scenario -- its own private cache over the shared
// read-only Graph/FailureSet, which is both faster than a shared locked
// map and trivially deterministic.  Do not share an instance across
// threads.
#pragma once

#include <unordered_map>

#include "common/types.h"
#include "graph/graph.h"
#include "graph/properties.h"
#include "spf/shortest_path.h"

namespace rtr::spf {

class SptCache {
 public:
  enum class Algorithm {
    kBfsHopCount,  ///< hop-count metric (the paper's evaluation)
    kDijkstra,     ///< directed link costs
  };

  /// Both g and whatever backs `masks` are borrowed and must outlive
  /// the cache (masks hold pointers into e.g. a fail::FailureSet).
  SptCache(const graph::Graph& g, graph::Masks masks,
           Algorithm alg = Algorithm::kBfsHopCount)
      : g_(&g), masks_(masks), alg_(alg) {}

  /// The memoised tree rooted at `source` (computed on first use).
  const SptResult& from(NodeId source);

  /// True shortest distance source -> dest (kInfCost if unreachable).
  Cost dist(NodeId source, NodeId dest) { return from(source).dist[dest]; }

  std::size_t trees_computed() const { return spts_.size(); }

 private:
  const graph::Graph* g_;
  graph::Masks masks_;
  Algorithm alg_;
  std::unordered_map<NodeId, SptResult> spts_;
};

}  // namespace rtr::spf
