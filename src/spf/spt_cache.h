// Ground-truth shortest-path-tree cache for a fixed masked view.
//
// The experiment runners repeatedly ask "true shortest distance from
// initiator X in the damaged graph" while scoring test cases; within one
// failure scenario many cases share an initiator, so the tree from each
// source is derived once and memoised under an LRU bound
// (Options::max_entries).  Trees are handed out as shared_ptr so an
// entry the cache evicts stays valid for whoever still holds it.
//
// Two engines produce the trees (Options::engine):
//   kFull         recompute per source under the masks (seed behaviour)
//   kIncremental  batch-repair the shared per-source base tree of the
//                 undamaged graph (Options::base) with the masks as one
//                 delta -- see spf/batch_repair.h.  Copy-on-write: when
//                 the failure set misses the tree, the shared base is
//                 handed out without copying.
// Both engines canonicalize parent pointers (hop-count trees included),
// so the trees they hand out are bit-identical.
//
// Concurrency discipline: SptCache is intentionally NOT thread-safe (no
// locks on the hot path).  The parallel experiment engine gives each
// work unit -- one Scenario -- its own private cache over the shared
// read-only Graph/FailureSet/BaseTreeStore, which is both faster than a
// shared locked map and trivially deterministic.  Do not share an
// instance across threads.
#pragma once

#include <list>
#include <memory>
#include <unordered_map>

#include "common/types.h"
#include "graph/graph.h"
#include "graph/properties.h"
#include "spf/batch_repair.h"
#include "spf/shortest_path.h"

namespace rtr::spf {

struct SptCacheOptions {
  /// LRU bound on live entries; generous by default so sweeps over
  /// paper-sized topologies never evict, but a bound exists so a
  /// sweep over an arbitrarily large scenario cannot hold every tree
  /// alive at once.  Must be >= 1.
  std::size_t max_entries = 4096;
  SpfEngine engine = SpfEngine::kFull;
  /// Required (and must match the cache's algorithm) when engine ==
  /// kIncremental.
  const BaseTreeStore* base = nullptr;
  BatchRepairOptions batch_repair;
};

class SptCache {
 public:
  using Algorithm = SpfAlgorithm;
  using Options = SptCacheOptions;

  /// g and whatever backs `masks` (and `opts.base`) are borrowed and
  /// must outlive the cache.
  SptCache(const graph::Graph& g, graph::Masks masks,
           Algorithm alg = Algorithm::kBfsHopCount, Options opts = {});

  /// The memoised tree rooted at `source` (derived on first use).  The
  /// returned pointer stays valid after eviction.
  std::shared_ptr<const SptResult> from(NodeId source);

  /// True shortest distance source -> dest (kInfCost if unreachable).
  Cost dist(NodeId source, NodeId dest) { return from(source)->dist[dest]; }

  /// Cumulative trees derived (cache misses), including re-derivations
  /// forced by eviction.
  std::size_t trees_computed() const { return trees_computed_; }
  std::size_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::shared_ptr<const SptResult> tree;
    std::list<NodeId>::iterator lru_pos;
  };

  const graph::Graph* g_;
  graph::Masks masks_;
  Algorithm alg_;
  Options opts_;
  std::size_t trees_computed_ = 0;
  std::size_t evictions_ = 0;
  std::list<NodeId> lru_;  ///< front = most recently used
  std::unordered_map<NodeId, Entry> entries_;
};

}  // namespace rtr::spf
