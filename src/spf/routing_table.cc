#include "spf/routing_table.h"

#include "spf/shortest_path.h"

namespace rtr::spf {

RoutingTable::RoutingTable(const graph::Graph& g, Metric metric)
    : g_(&g), metric_(metric) {
  // n stays std::size_t: the n * n table sizes must multiply in full
  // width; the id loops below bound on node_count() instead.
  const std::size_t n = g.num_nodes();
  next_hop_.assign(n * n, kNoNode);
  next_link_.assign(n * n, kNoLink);
  dist_.assign(n * n, kInfCost);
  for (NodeId t = 0; t < g.node_count(); ++t) {
    // dist_t[u]: cost of the best u -> t path.
    const SptResult to_t = metric == Metric::kHopCount
                               ? bfs_from(g, t)
                               : dijkstra_to(g, t);
    for (NodeId u = 0; u < g.node_count(); ++u) {
      dist_[index(u, t)] = to_t.dist[u];
      if (u == t || !to_t.reachable(u)) continue;
      // The next hop minimises cost(u -> v) + dist_t[v]; ties resolve to
      // the smallest neighbour id, at every router identically.
      NodeId best = kNoNode;
      LinkId best_link = kNoLink;
      for (const graph::Adjacency& a : g.neighbors(u)) {
        if (!to_t.reachable(a.neighbor)) continue;
        const Cost step = metric == Metric::kHopCount
                              ? 1.0
                              : g.cost_from(a.link, u);
        // Tolerant equality: weighted distances are float sums that may
        // associate differently on the two sides.
        const Cost via = step + to_t.dist[a.neighbor];
        if (std::abs(via - to_t.dist[u]) <= 1e-9 * (1.0 + to_t.dist[u]) &&
            (best == kNoNode || a.neighbor < best)) {
          best = a.neighbor;
          best_link = a.link;
        }
      }
      RTR_EXPECT_MSG(best != kNoNode, "reachable node without next hop");
      next_hop_[index(u, t)] = best;
      next_link_[index(u, t)] = best_link;
    }
  }
}

Path RoutingTable::route(NodeId s, NodeId t) const {
  Path p;
  if (distance(s, t) == kInfCost) return p;
  p.nodes.push_back(s);
  NodeId cur = s;
  while (cur != t) {
    const LinkId l = next_link(cur, t);
    RTR_EXPECT(l != kNoLink);
    const NodeId nxt = next_hop(cur, t);
    p.links.push_back(l);
    p.nodes.push_back(nxt);
    RTR_EXPECT_MSG(p.links.size() <= g_->num_nodes(),
                   "routing loop in consistent tables");
    cur = nxt;
  }
  p.cost = path_cost(*g_, p);
  return p;
}

}  // namespace rtr::spf
