// Per-router forwarding state for the whole AS.
//
// Section II-A: every node knows the topology and routes along shortest
// paths; Section IV-A: the evaluation uses hop-count routing.  The
// RoutingTable precomputes, for every (router, destination) pair, the
// default next hop with a deterministic tie-break (smallest next-hop
// id), which makes the "default routing path" of every test case well
// defined and identical at every router -- the consistent pre-failure
// view the paper assumes.
#pragma once

#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "spf/path.h"

namespace rtr::spf {

class RoutingTable {
 public:
  enum class Metric {
    kHopCount,  ///< every link counts 1 (the paper's evaluation)
    kLinkCost,  ///< directed link costs
  };

  RoutingTable(const graph::Graph& g, Metric metric = Metric::kHopCount);

  /// Default next hop of router u towards destination t.
  /// kNoNode when u == t or t is unreachable from u.
  NodeId next_hop(NodeId u, NodeId t) const {
    return next_hop_[index(u, t)];
  }

  /// The link used for that next hop (kNoLink in the same cases).
  LinkId next_link(NodeId u, NodeId t) const {
    return next_link_[index(u, t)];
  }

  /// Cost of the shortest u -> t path (kInfCost when unreachable).
  Cost distance(NodeId u, NodeId t) const { return dist_[index(u, t)]; }

  /// The default routing path from s to t obtained by following next
  /// hops at every router; empty when unreachable.
  Path route(NodeId s, NodeId t) const;

  Metric metric() const { return metric_; }

 private:
  std::size_t index(NodeId u, NodeId t) const {
    RTR_EXPECT(g_->valid_node(u) && g_->valid_node(t));
    return static_cast<std::size_t>(u) * g_->num_nodes() + t;
  }

  const graph::Graph* g_;
  Metric metric_;
  std::vector<NodeId> next_hop_;
  std::vector<LinkId> next_link_;
  std::vector<Cost> dist_;
};

}  // namespace rtr::spf
