#include "spf/spt_cache.h"

namespace rtr::spf {

const SptResult& SptCache::from(NodeId source) {
  auto it = spts_.find(source);
  if (it == spts_.end()) {
    SptResult r = alg_ == Algorithm::kBfsHopCount
                      ? bfs_from(*g_, source, masks_)
                      : dijkstra_from(*g_, source, masks_);
    it = spts_.emplace(source, std::move(r)).first;
  }
  return it->second;
}

}  // namespace rtr::spf
