#include "spf/spt_cache.h"

#include "obs/metrics.h"

namespace rtr::spf {

const SptResult& SptCache::from(NodeId source) {
  static obs::Counter& hits =
      obs::Registry::global().counter("spf.spt_cache.hits");
  static obs::Counter& misses =
      obs::Registry::global().counter("spf.spt_cache.misses");
  auto it = spts_.find(source);
  if (it == spts_.end()) {
    misses.inc();
    SptResult r = alg_ == Algorithm::kBfsHopCount
                      ? bfs_from(*g_, source, masks_)
                      : dijkstra_from(*g_, source, masks_);
    it = spts_.emplace(source, std::move(r)).first;
  } else {
    hits.inc();
  }
  return it->second;
}

}  // namespace rtr::spf
