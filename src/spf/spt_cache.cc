#include "spf/spt_cache.h"

#include <utility>

#include "obs/metrics.h"

namespace rtr::spf {

SptCache::SptCache(const graph::Graph& g, graph::Masks masks, Algorithm alg,
                   Options opts)
    : g_(&g), masks_(masks), alg_(alg), opts_(opts) {
  RTR_EXPECT(opts_.max_entries >= 1);
  RTR_EXPECT(opts_.engine == SpfEngine::kFull ||
             (opts_.base != nullptr && opts_.base->algorithm() == alg_));
}

std::shared_ptr<const SptResult> SptCache::from(NodeId source) {
  RTR_EXPECT(g_->valid_node(source));
  static obs::Counter& hits =
      obs::Registry::global().counter("rtr.spf.spt_cache.hits");
  static obs::Counter& misses =
      obs::Registry::global().counter("rtr.spf.spt_cache.misses");
  static obs::Counter& evicted =
      obs::Registry::global().counter("rtr.spf.spt_cache.evictions");
  auto it = entries_.find(source);
  if (it != entries_.end()) {
    hits.inc();
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.tree;
  }
  misses.inc();
  ++trees_computed_;
  std::shared_ptr<const SptResult> tree;
  if (opts_.engine == SpfEngine::kIncremental) {
    tree = repair_spt(*g_, opts_.base->from(source), masks_, alg_,
                      opts_.batch_repair);
  } else {
    SptResult r = alg_ == Algorithm::kBfsHopCount
                      ? bfs_from(*g_, source, masks_)
                      : dijkstra_from(*g_, source, masks_);
    if (alg_ == Algorithm::kBfsHopCount) {
      // bfs_from parents are discovery-ordered; canonicalize so both
      // engines hand out bit-identical trees (see spf/batch_repair.h).
      canonicalize_parents(*g_, r, masks_, alg_);
    }
    tree = std::make_shared<const SptResult>(std::move(r));
  }
  if (entries_.size() >= opts_.max_entries) {
    evicted.inc();
    ++evictions_;
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(source);
  entries_.emplace(source, Entry{tree, lru_.begin()});
  return tree;
}

}  // namespace rtr::spf
