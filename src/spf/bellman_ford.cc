#include "spf/bellman_ford.h"

namespace rtr::spf {

BellmanFordResult bellman_ford(const graph::Graph& g, NodeId source,
                               const graph::Masks& masks) {
  RTR_EXPECT(g.valid_node(source));
  const std::size_t n = g.num_nodes();
  BellmanFordResult r;
  r.dist.assign(n, kInfCost);
  r.parent.assign(n, kNoNode);
  if (!masks.node_ok(source)) return r;
  r.dist[source] = 0.0;

  // Each undirected link is two directed edges with their own costs.
  const auto relax_all = [&]() {
    bool changed = false;
    for (LinkId l = 0; l < g.link_count(); ++l) {
      if (!masks.link_ok(l)) continue;
      const graph::Link& e = g.link(l);
      if (!masks.node_ok(e.u) || !masks.node_ok(e.v)) continue;
      if (r.dist[e.u] < kInfCost &&
          r.dist[e.u] + e.cost_uv < r.dist[e.v]) {
        r.dist[e.v] = r.dist[e.u] + e.cost_uv;
        r.parent[e.v] = e.u;
        changed = true;
      }
      if (r.dist[e.v] < kInfCost &&
          r.dist[e.v] + e.cost_vu < r.dist[e.u]) {
        r.dist[e.u] = r.dist[e.v] + e.cost_vu;
        r.parent[e.u] = e.v;
        changed = true;
      }
    }
    return changed;
  };

  bool changed = true;
  for (std::size_t round = 0; round + 1 < n && changed; ++round) {
    changed = relax_all();
  }
  // One extra round: any further improvement implies a negative cycle.
  if (changed) r.negative_cycle = relax_all();
  return r;
}

}  // namespace rtr::spf
