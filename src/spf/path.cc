#include "spf/path.h"

#include <cmath>

namespace rtr::spf {

bool valid_path(const graph::Graph& g, const Path& p) {
  if (p.nodes.empty()) return p.links.empty();
  if (p.nodes.size() != p.links.size() + 1) return false;
  for (std::size_t i = 0; i < p.links.size(); ++i) {
    if (!g.valid_link(p.links[i])) return false;
    const graph::Link& e = g.link(p.links[i]);
    const NodeId a = p.nodes[i];
    const NodeId b = p.nodes[i + 1];
    if (!((e.u == a && e.v == b) || (e.u == b && e.v == a))) return false;
  }
  return std::abs(path_cost(g, p) - p.cost) <= 1e-9 * (1.0 + p.cost);
}

Cost path_cost(const graph::Graph& g, const Path& p) {
  if (p.nodes.empty()) return kInfCost;
  Cost c = 0.0;
  for (std::size_t i = 0; i < p.links.size(); ++i) {
    c += g.cost_from(p.links[i], p.nodes[i]);
  }
  return c;
}

}  // namespace rtr::spf
