// Engine/metric selectors shared across the SPF layer.
//
// Split out of batch_repair.h so the compressed-tree codec
// (spt_compress.h) and the repair machinery can both name the metric a
// tree was built under without including each other.
#pragma once

namespace rtr::spf {

/// Metric a tree is built under (mirrors the two full algorithms).
enum class SpfAlgorithm {
  kBfsHopCount,  ///< hop-count metric (the paper's evaluation)
  kDijkstra,     ///< directed link costs
};

/// Scenario-evaluation engine selector (RunOptions / RTR_SPF_ENGINE).
enum class SpfEngine {
  kFull,         ///< full recompute per (source, failure set)
  kIncremental,  ///< batch repair from shared base trees
};

}  // namespace rtr::spf
