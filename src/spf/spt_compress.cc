#include "spf/spt_compress.h"

namespace rtr::spf {

namespace {

/// (delta << 1) ^ (delta >> 63): small magnitudes of either sign map to
/// small unsigned values, which is what keeps the varints short.
std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(const std::vector<std::uint8_t>& in,
                         std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    RTR_EXPECT_MSG(pos < in.size() && shift < 64,
                   "truncated compressed tree");
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

}  // namespace

CompressedSpt compress_spt(const SptResult& spt) {
  CompressedSpt c;
  c.source = spt.source;
  c.num_nodes = spt.parent.size();
  c.bytes.reserve(c.num_nodes + c.num_nodes / 4);
  for (std::size_t v = 0; v < c.num_nodes; ++v) {
    const NodeId p = spt.parent[v];
    if (p == kNoNode) {
      put_varint(c.bytes, 0);  // source or unreachable
    } else {
      const std::int64_t delta = static_cast<std::int64_t>(p) -
                                 static_cast<std::int64_t>(v);
      put_varint(c.bytes, zigzag(delta));  // delta != 0: no self-loops
    }
  }
  return c;
}

SptResult decompress_spt(const graph::Graph& g, const CompressedSpt& c,
                         SpfAlgorithm alg) {
  RTR_EXPECT_MSG(c.computed(), "decompressing an un-computed tree");
  RTR_EXPECT(c.num_nodes == g.num_nodes() && g.valid_node(c.source));
  SptResult r;
  r.source = c.source;
  r.dist.assign(c.num_nodes, kInfCost);
  r.parent_link.assign(c.num_nodes, kNoLink);
  r.parent.assign(c.num_nodes, kNoNode);

  std::size_t pos = 0;
  for (std::size_t v = 0; v < c.num_nodes; ++v) {
    const std::uint64_t enc = get_varint(c.bytes, pos);
    if (enc == 0) continue;
    const std::int64_t p = static_cast<std::int64_t>(v) + unzigzag(enc);
    RTR_EXPECT_MSG(p >= 0 && static_cast<std::size_t>(p) < c.num_nodes,
                   "compressed parent out of range");
    r.parent[v] = static_cast<NodeId>(p);
    r.parent_link[v] = g.find_link(r.parent[v], static_cast<NodeId>(v));
    RTR_EXPECT_MSG(r.parent_link[v] != kNoLink,
                   "compressed tree edge not in graph");
  }
  RTR_EXPECT_MSG(pos == c.bytes.size(), "trailing bytes in compressed tree");

  // Distances: accumulate parent chains root-to-leaf, memoised via the
  // dist array itself (kInfCost = not yet computed).  The additions
  // replay the engines' own dist[parent] + step order, so every sum is
  // bit-identical to the original run's.
  r.dist[c.source] = 0.0;
  std::vector<NodeId> chain;
  for (std::size_t v = 0; v < c.num_nodes; ++v) {
    if (r.dist[v] < kInfCost || r.parent[v] == kNoNode) continue;
    chain.clear();
    NodeId cur = static_cast<NodeId>(v);
    while (r.dist[cur] == kInfCost) {
      chain.push_back(cur);
      RTR_EXPECT_MSG(r.parent[cur] != kNoNode && chain.size() <= c.num_nodes,
                     "compressed tree parent chain does not reach the source");
      cur = r.parent[cur];
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      const Cost step = alg == SpfAlgorithm::kBfsHopCount
                            ? 1.0
                            : g.cost_from(r.parent_link[*it], r.parent[*it]);
      r.dist[*it] = r.dist[r.parent[*it]] + step;
    }
  }
  return r;
}

}  // namespace rtr::spf
