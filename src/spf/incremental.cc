#include "spf/incremental.h"

#include <queue>
#include <tuple>

#include "obs/metrics.h"

namespace rtr::spf {

namespace {

/// One incremental update finished after re-deriving `touched` node
/// distances -- the locality Section III-D banks on, now visible as a
/// stable histogram in --metrics-out.
void count_update(std::size_t touched) {
  static obs::Counter& updates =
      obs::Registry::global().counter("rtr.spf.incremental.updates");
  static obs::Histogram& dist = obs::Registry::global().histogram(
      "rtr.spf.incremental.touched_nodes", obs::size_bounds());
  updates.inc();
  dist.observe(touched);
}

struct HeapEntry {
  Cost dist;
  NodeId node;
  NodeId via;
  LinkId link;
  bool operator>(const HeapEntry& o) const {
    return std::tie(dist, node, via) > std::tie(o.dist, o.node, o.via);
  }
};
}  // namespace

IncrementalSpt::IncrementalSpt(const graph::Graph& g, NodeId root)
    : g_(&g),
      spt_(dijkstra_from(g, root)),
      link_removed_(g.num_links(), 0),
      node_removed_(g.num_nodes(), 0) {}

bool IncrementalSpt::usable(LinkId l, NodeId via_node) const {
  return !link_removed_[l] && !node_removed_[via_node];
}

void IncrementalSpt::remove_links(const std::vector<LinkId>& links) {
  for (LinkId l : links) {
    RTR_EXPECT(g_->valid_link(l));
    link_removed_[l] = 1;
  }
  // Nodes whose tree edge vanished seed the affected region.
  std::vector<NodeId> seeds;
  for (NodeId n = 0; n < g_->node_count(); ++n) {
    const LinkId pl = spt_.parent_link[n];
    if (pl != kNoLink && link_removed_[pl]) seeds.push_back(n);
  }
  repair(seeds);
  count_update(touched_);
}

void IncrementalSpt::remove_node(NodeId n) {
  RTR_EXPECT(g_->valid_node(n));
  RTR_EXPECT_MSG(n != spt_.source, "cannot remove the SPT root");
  node_removed_[n] = 1;
  std::vector<LinkId> incident;
  for (const graph::Adjacency& a : g_->neighbors(n)) {
    incident.push_back(a.link);
  }
  // remove_links also detaches n itself (its parent link is incident).
  remove_links(incident);
  spt_.dist[n] = kInfCost;
  spt_.parent[n] = kNoNode;
  spt_.parent_link[n] = kNoLink;
}

void IncrementalSpt::restore_link(LinkId l) {
  RTR_EXPECT(g_->valid_link(l));
  RTR_EXPECT_MSG(link_removed_[l], "link is not removed");
  link_removed_[l] = 0;
  // A restoration can only *improve* distances; run a bounded Dijkstra
  // seeded with the two possible relaxations over the restored link.
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  const graph::Link& e = g_->link(l);
  const auto seed = [&](NodeId from, NodeId to) {
    if (node_removed_[from] || node_removed_[to]) return;
    if (!spt_.reachable(from)) return;
    const Cost nd = spt_.dist[from] + g_->cost_from(l, from);
    if (nd < spt_.dist[to]) heap.push({nd, to, from, l});
  };
  seed(e.u, e.v);
  seed(e.v, e.u);
  touched_ = 0;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.dist >= spt_.dist[top.node]) continue;
    spt_.dist[top.node] = top.dist;
    spt_.parent[top.node] = top.via;
    spt_.parent_link[top.node] = top.link;
    ++touched_;
    for (const graph::Adjacency& a : g_->neighbors(top.node)) {
      if (!usable(a.link, a.neighbor)) continue;
      const Cost nd = top.dist + g_->cost_from(a.link, top.node);
      if (nd < spt_.dist[a.neighbor]) {
        heap.push({nd, a.neighbor, top.node, a.link});
      }
    }
  }
  count_update(touched_);
}

void IncrementalSpt::repair(const std::vector<NodeId>& affected) {
  // 1. Grow the affected region: the whole subtree below each seed.
  std::vector<char> is_affected(g_->num_nodes(), 0);
  std::queue<NodeId> frontier;
  for (NodeId n : affected) {
    if (!is_affected[n]) {
      is_affected[n] = 1;
      frontier.push(n);
    }
  }
  // Children lookup: parent pointers are towards the root, so scan once.
  std::vector<std::vector<NodeId>> children(g_->num_nodes());
  for (NodeId n = 0; n < g_->node_count(); ++n) {
    if (spt_.parent[n] != kNoNode) children[spt_.parent[n]].push_back(n);
  }
  std::vector<NodeId> region;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    region.push_back(u);
    for (NodeId c : children[u]) {
      if (!is_affected[c]) {
        is_affected[c] = 1;
        frontier.push(c);
      }
    }
  }
  touched_ = region.size();
  if (region.empty()) return;

  // 2. Reset the region and seed the heap from its unaffected boundary.
  for (NodeId n : region) {
    spt_.dist[n] = kInfCost;
    spt_.parent[n] = kNoNode;
    spt_.parent_link[n] = kNoLink;
  }
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  for (NodeId n : region) {
    if (node_removed_[n]) continue;
    for (const graph::Adjacency& a : g_->neighbors(n)) {
      if (is_affected[a.neighbor]) continue;
      if (!usable(a.link, a.neighbor) || !spt_.reachable(a.neighbor)) continue;
      const Cost nd = spt_.dist[a.neighbor] + g_->cost_from(a.link, a.neighbor);
      heap.push({nd, n, a.neighbor, a.link});
    }
  }

  // 3. Dijkstra restricted to the affected region.
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (top.dist >= spt_.dist[top.node]) continue;
    spt_.dist[top.node] = top.dist;
    spt_.parent[top.node] = top.via;
    spt_.parent_link[top.node] = top.link;
    for (const graph::Adjacency& a : g_->neighbors(top.node)) {
      if (!is_affected[a.neighbor] || !usable(a.link, a.neighbor)) continue;
      if (node_removed_[a.neighbor]) continue;
      const Cost nd = top.dist + g_->cost_from(a.link, top.node);
      if (nd < spt_.dist[a.neighbor]) {
        heap.push({nd, a.neighbor, top.node, a.link});
      }
    }
  }
}

}  // namespace rtr::spf
