// Multi-link batch SPT repair from shared base trees.
//
// Every scenario of the Section IV sweeps differs from the undamaged
// topology by one failure set, so the scenario engine keeps ONE
// shortest-path tree per source for the whole topology (BaseTreeStore)
// and derives each damaged view by applying the failure set as a single
// delta (repair_spt): the subtrees hanging off failed tree edges are
// re-derived by a Dijkstra restricted to that region, everything else
// is reused.  When the delta touches more than a threshold fraction of
// the nodes the repair falls back to a full recomputation, so the
// incremental engine is never asymptotically worse than Dijkstra.
//
// Determinism contract: the repaired tree is bit-identical -- distances
// AND parent pointers -- to what the full-recompute engine hands out.
// Full Dijkstra's tie-break (smaller parent id wins on equal distance)
// makes its parent pointers a pure function of the distance field:
// parent[v] is the smallest u with dist[u] + cost(u->v) == dist[v].
// canonicalize_parents() re-derives exactly that rule over the repaired
// region, so the two engines agree bit-for-bit and the bench sweeps
// diff clean between RTR_SPF_ENGINE=full and =incremental.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "graph/properties.h"
#include "spf/engine.h"
#include "spf/shortest_path.h"
#include "spf/spt_compress.h"

namespace rtr::spf {

struct BatchRepairOptions {
  /// Fall back to a full recomputation when the affected region exceeds
  /// this fraction of the nodes; regional repair only pays off while
  /// the delta is local (Section III-D's incremental recomputation).
  double fallback_fraction = 0.5;
};

/// Which path one repair_spt call took (also visible process-wide as
/// the spf.batch_repair.* counters).
enum class RepairPath {
  kShared,    ///< delta missed the tree: base handed out, zero copies
  kRepaired,  ///< regional repair of the affected subtrees
  kFallback,  ///< region too large: full recompute under the masks
};

struct BatchRepairStats {
  RepairPath path = RepairPath::kShared;
  std::size_t touched = 0;  ///< nodes re-derived (0 when shared)
};

/// Rewrites parent/parent_link of every node in `nodes` (all nodes when
/// empty) to the canonical full-Dijkstra tie-break: the smallest usable
/// predecessor u with dist[u] + cost(u->v) == dist[v] (cost 1 under
/// kBfsHopCount).  Distances are read, never written.
void canonicalize_parents(const graph::Graph& g, SptResult& spt,
                          const graph::Masks& masks, SpfAlgorithm alg,
                          const std::vector<NodeId>& nodes = {});

/// Applies `masks` (a whole failure set) as one delta to `base`, the
/// canonical tree of the UNDAMAGED graph, and returns the tree of the
/// masked graph.  Copy-on-write: when no masked node or link intersects
/// the tree the shared base is returned unchanged (no allocation).
/// `base` must be canonical (BaseTreeStore output, or any dijkstra_from
/// result) and must have been built without masks.
std::shared_ptr<const SptResult> repair_spt(
    const graph::Graph& g, std::shared_ptr<const SptResult> base,
    const graph::Masks& masks, SpfAlgorithm alg,
    const BatchRepairOptions& opts = {}, BatchRepairStats* stats = nullptr);

/// Thread-safe, compute-once store of per-source base trees of the
/// undamaged graph, shared by every scenario work unit of a topology
/// (unlike SptCache, which stays private per work unit).  Each tree is
/// computed at most once per process under a mutex, so the spf.*.runs
/// counters stay bit-identical across thread counts.
///
/// Trees rest delta-compressed (spt_compress.h, ~1-2 bytes/node instead
/// of 16) so a store over a 10^5-10^6-node topology stays resident.
/// from() hands out materialised SptResults through a weak cache:
/// while any caller still holds a tree it is shared, and once the last
/// reference drops the next request re-materialises it from the
/// compressed bytes -- bit-identical, and without re-running the SPF
/// (the spf.*.runs / base_trees.computed counters only ever count the
/// first computation).
///
/// A bounded "hot ring" of strong references keeps the most recently
/// handed-out trees materialised so the scenario sweeps -- which hit
/// the same sources thousands of times -- do not pay the decompression
/// on every call.  Its capacity is hot_budget_bytes over the
/// materialised tree size: on the paper's 10^2-10^3-node topologies
/// every tree stays hot (the store behaves like the old uncompressed
/// one), on a 10^6-node graph only a handful do and memory stays
/// bounded.  The ring only affects speed, never results.
class BaseTreeStore {
 public:
  /// Default hot-ring budget: comfortably every tree of a paper-sized
  /// topology, four trees of a 10^6-node one.
  static constexpr std::size_t kDefaultHotBudgetBytes = 64u << 20;

  /// g is borrowed and must outlive the store.  hot_budget_bytes = 0
  /// disables the strong ring (pure weak caching; test seam).
  explicit BaseTreeStore(const graph::Graph& g, SpfAlgorithm alg,
                         std::size_t hot_budget_bytes =
                             kDefaultHotBudgetBytes);

  /// The canonical base tree rooted at `source` (computed on first use).
  std::shared_ptr<const SptResult> from(NodeId source) const;

  SpfAlgorithm algorithm() const { return alg_; }
  std::size_t trees_computed() const;

  /// Bytes of compressed tree storage currently held (excludes
  /// transiently materialised trees callers keep alive).
  std::size_t compressed_bytes() const;

 private:
  const graph::Graph* g_;
  SpfAlgorithm alg_;
  std::size_t hot_capacity_;
  mutable std::mutex mu_;
  mutable std::vector<CompressedSpt> compressed_;
  mutable std::vector<std::weak_ptr<const SptResult>> cache_;
  /// Round-robin ring of strong refs to recently returned trees.
  mutable std::vector<std::shared_ptr<const SptResult>> hot_;
  mutable std::size_t hot_next_ = 0;
};

}  // namespace rtr::spf
