#include "baselines/mrc.h"

#include "graph/properties.h"

namespace rtr::baseline {

namespace {

/// True when removing `candidate` plus the nodes already isolated in
/// the configuration keeps the remaining backbone connected.
bool isolation_feasible(const graph::Graph& g,
                        const std::vector<char>& isolated, NodeId candidate) {
  std::vector<char> removed = isolated;
  removed[candidate] = 1;
  // has_live: at least two nodes must remain for connectivity to be a
  // meaningful requirement; a backbone of <= 1 node is degenerate.
  std::size_t remaining = 0;
  for (char c : removed) remaining += (c == 0);
  if (remaining < 2) return false;
  return graph::connected(g, {&removed, nullptr});
}

}  // namespace

Mrc::Mrc(const graph::Graph& g, const spf::RoutingTable& base, Options opts)
    : g_(&g), base_(&base), opts_(opts) {
  RTR_EXPECT(opts_.num_configs >= 1);
  const NodeId n = g.node_count();
  isolated_in_.assign(n, kNoConfig);

  std::vector<std::vector<char>> isolated(
      opts_.num_configs, std::vector<char>(n, 0));
  // Round-robin assignment with a connectivity feasibility check; a
  // node that fits no configuration stays unprotected (rare on the
  // topologies under study; tests report the count).
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t k = 0; k < opts_.num_configs; ++k) {
      const std::size_t c = (v + k) % opts_.num_configs;
      if (isolation_feasible(g, isolated[c], v)) {
        isolated[c][v] = 1;
        isolated_in_[v] = c;
        break;
      }
    }
  }

  // Designated restricted links: each protected node keeps exactly one
  // usable (restricted-weight) link in its isolating configuration --
  // the smallest-id neighbour that is not isolated in the same
  // configuration (falling back to any neighbour).
  restricted_link_.assign(n, kNoLink);
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t c = isolated_in_[v];
    if (c == kNoConfig) continue;
    LinkId chosen = kNoLink;
    NodeId chosen_neighbor = kNoNode;
    bool chosen_backbone = false;
    for (const graph::Adjacency& a : g.neighbors(v)) {
      const bool backbone = !isolated[c][a.neighbor];
      const bool better =
          chosen == kNoLink || (backbone && !chosen_backbone) ||
          (backbone == chosen_backbone && a.neighbor < chosen_neighbor);
      if (better) {
        chosen = a.link;
        chosen_neighbor = a.neighbor;
        chosen_backbone = backbone;
      }
    }
    restricted_link_[v] = chosen;
  }

  // Build each configuration's weighted topology and routing table.
  // Configurations are constructed in place: the routing table keeps a
  // pointer to its configuration's weighted graph, so that graph's
  // address must be final before the table is built.
  configs_.reserve(opts_.num_configs);
  for (std::size_t c = 0; c < opts_.num_configs; ++c) {
    Config& cfg = configs_.emplace_back();
    cfg.isolated = isolated[c];
    graph::GraphBuilder weighted;
    for (NodeId v = 0; v < n; ++v) weighted.add_node(g.position(v));
    for (LinkId l = 0; l < g.link_count(); ++l) {
      const graph::Link& e = g.link(l);
      Cost w = 1.0;
      for (NodeId end : {e.u, e.v}) {
        if (!isolated[c][end]) continue;
        // The designated link stays restricted; everything else on an
        // isolated node is (near-)unusable.
        w = std::max(w, restricted_link_[end] == l
                            ? opts_.restricted_weight
                            : opts_.isolated_weight);
      }
      weighted.add_link(e.u, e.v, w);
    }
    cfg.weighted = weighted.build();
    cfg.table = std::make_unique<spf::RoutingTable>(
        cfg.weighted, spf::RoutingTable::Metric::kLinkCost);
  }
}

LinkId Mrc::restricted_link_of(NodeId v) const {
  RTR_EXPECT(g_->valid_node(v));
  return restricted_link_[v];
}

std::vector<NodeId> Mrc::isolated_nodes(std::size_t c) const {
  RTR_EXPECT(c < configs_.size());
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g_->node_count(); ++v) {
    if (configs_[c].isolated[v]) out.push_back(v);
  }
  return out;
}

bool Mrc::backbone_connected(std::size_t c) const {
  RTR_EXPECT(c < configs_.size());
  return graph::connected(*g_, {&configs_[c].isolated, nullptr});
}

Mrc::Result Mrc::forward(const fail::FailureSet& failure, NodeId initiator,
                         NodeId dest) const {
  RTR_EXPECT(g_->valid_node(initiator) && g_->valid_node(dest));
  RTR_EXPECT_MSG(!failure.node_failed(initiator), "initiator failed");
  Result r;
  r.walk.push_back(initiator);
  NodeId at = initiator;
  const spf::RoutingTable* table = base_;
  bool switched = false;
  const std::size_t hop_cap = 4 * g_->num_nodes() + 16;

  while (at != dest) {
    const LinkId l = table->next_link(at, dest);
    const NodeId nxt = table->next_hop(at, dest);
    if (l == kNoLink) {
      r.final_node = at;  // no route in this configuration: drop
      return r;
    }
    if (failure.link_failed(l) || failure.node_failed(nxt)) {
      if (switched) {
        // Second failure encountered: MRC gives up (single-failure
        // protection), which is its downfall under area failures.
        r.final_node = at;
        return r;
      }
      // The router cannot tell node from link failure; standard MRC
      // switches to the configuration isolating the suspect next hop.
      const std::size_t c = config_of(nxt);
      if (c == kNoConfig) {
        r.final_node = at;
        return r;
      }
      table = configs_[c].table.get();
      switched = true;
      ++r.config_switches;
      continue;  // re-evaluate the next hop under the new configuration
    }
    at = nxt;
    ++r.hops;
    r.walk.push_back(at);
    if (r.hops > hop_cap) {
      r.final_node = at;  // defensive: should be unreachable
      return r;
    }
  }
  r.delivered = true;
  r.final_node = dest;
  return r;
}

}  // namespace rtr::baseline
