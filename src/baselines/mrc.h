// MRC: Multiple Routing Configurations (proactive baseline).
//
// Kvalbein et al., "Fast IP network recovery using multiple routing
// configurations" (INFOCOM 2006), as compared against in Section IV.
// k backup configurations are precomputed; every protected node is
// *isolated* in exactly one configuration, meaning that configuration
// routes traffic around it (its incident links carry a prohibitive
// restricted weight, usable only as a first/last hop).  On detecting an
// unreachable next hop, a router switches the packet to the
// configuration isolating that next hop and forwards along that
// configuration's routes; a packet may switch only once, so a second
// encountered failure drops it.  Under large-scale failures a path and
// its backup configuration routes often fail together, which is exactly
// the weakness the paper demonstrates (Table III).
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "failure/failure_set.h"
#include "graph/graph.h"
#include "spf/routing_table.h"

namespace rtr::baseline {

class Mrc {
 public:
  struct Options {
    std::size_t num_configs = 5;
    /// Weight of the single designated link over which traffic may
    /// still enter an isolated node (first/last hop); exceeds any
    /// normal-path cost.
    Cost restricted_weight = 1e4;
    /// Weight of every other link of an isolated node; effectively
    /// unusable (Kvalbein et al. use infinite weight).
    Cost isolated_weight = 1e8;
  };

  /// Precomputes configurations and their routing tables; `base` is the
  /// failure-free hop-count table used until a failure is met.
  Mrc(const graph::Graph& g, const spf::RoutingTable& base, Options opts);
  Mrc(const graph::Graph& g, const spf::RoutingTable& base)
      : Mrc(g, base, Options()) {}

  std::size_t num_configs() const { return configs_.size(); }

  /// Index of the configuration isolating v, or kNoConfig when v could
  /// not be protected (isolating it would disconnect some backbone).
  static constexpr std::size_t kNoConfig = static_cast<std::size_t>(-1);
  std::size_t config_of(NodeId v) const { return isolated_in_[v]; }

  /// Nodes isolated in configuration c.
  std::vector<NodeId> isolated_nodes(std::size_t c) const;

  /// The designated restricted link of node v in the configuration
  /// isolating it (kNoLink when v is unprotected).
  LinkId restricted_link_of(NodeId v) const;

  /// True when configuration c's backbone (graph minus its isolated
  /// nodes) is connected -- the MRC validity invariant.
  bool backbone_connected(std::size_t c) const;

  struct Result {
    bool delivered = false;
    NodeId final_node = kNoNode;  ///< delivery or drop location
    std::size_t hops = 0;         ///< traveled from the initiator
    std::size_t config_switches = 0;
    std::vector<NodeId> walk;
  };

  /// Forwards a packet sitting at `initiator` towards `dest` under the
  /// ground-truth failure; proactive, so zero on-demand SP calculations.
  Result forward(const fail::FailureSet& failure, NodeId initiator,
                 NodeId dest) const;

 private:
  struct Config {
    /// Re-weighted copy of the topology: same link ids; an isolated
    /// node keeps one restricted-weight link and its remaining links
    /// carry the (prohibitive) isolated weight.
    graph::Graph weighted;
    std::vector<char> isolated;  ///< per node
    std::unique_ptr<spf::RoutingTable> table;
  };

  const graph::Graph* g_;
  const spf::RoutingTable* base_;
  Options opts_;
  std::vector<Config> configs_;
  std::vector<std::size_t> isolated_in_;   ///< per node; kNoConfig if none
  std::vector<LinkId> restricted_link_;    ///< per node; kNoLink if none
};

}  // namespace rtr::baseline
