// FCP: Failure-Carrying Packets, source-routing variant.
//
// The paper's reactive baseline (Section IV-A: "For FCP, we use the
// source routing version, which reduces the computational overhead of
// the original FCP").  The packet header carries the set of failed
// links encountered so far plus the current source route.  When the
// route's next hop turns out unreachable at node u, u adds its observed
// failed links to the header, recomputes a shortest path on the
// consistent map minus the carried failures (one "shortest path
// calculation") and re-source-routes the packet.  A node whose
// recomputation finds no path discards the packet -- FCP "has to try
// every possible link to reach the destination before discarding
// packets" (Section IV-D).
#pragma once

#include <vector>

#include "common/types.h"
#include "failure/failure_set.h"
#include "graph/graph.h"
#include "net/header.h"
#include "spf/routing_table.h"

namespace rtr::baseline {

struct FcpOptions {
  /// Safety cap on recomputations (the failure list grows by at least
  /// one link per recomputation, so |E| bounds it; tests assert the cap
  /// is never the reason a run ends).
  std::size_t max_recomputations = 100000;
};

struct FcpResult {
  bool delivered = false;
  NodeId initiator = kNoNode;
  NodeId destination = kNoNode;
  /// Node where the packet was discarded (== destination on delivery).
  NodeId final_node = kNoNode;

  /// "Computational overhead ... the number of shortest path
  /// calculations" (Section IV-C); >= 1, every recomputation counts.
  std::size_t sp_calculations = 0;
  /// Total hops traveled from the initiator until delivery or discard.
  std::size_t hops = 0;
  /// Recovery-header bytes (failed list + source route) carried while
  /// traversing each hop; drives Fig. 10 and the wasted-transmission
  /// metric of Fig. 13.
  std::vector<std::size_t> bytes_per_hop;
  /// Header state when the run ended.
  net::FcpHeader header;
  /// The nodes actually visited, starting at the initiator.
  std::vector<NodeId> walk;
};

/// Runs FCP recovery for a packet at `initiator` destined to `dest`.
/// Requires a live initiator; the default next hop towards dest is
/// expected to be unreachable (that is what triggered recovery).
FcpResult run_fcp(const graph::Graph& g, const fail::FailureSet& failure,
                  NodeId initiator, NodeId dest, const FcpOptions& opts = {});

/// The *original* (non-source-routing) FCP: every router along the way
/// recomputes the shortest path on the consistent map minus the carried
/// failures and forwards a single hop, so the computational overhead
/// grows with the path length -- which is exactly why Section IV-A
/// evaluates "the source routing version, which reduces the
/// computational overhead of the original FCP".
/// bench_ext_fcp_variants quantifies the difference.
FcpResult run_fcp_original(const graph::Graph& g,
                           const fail::FailureSet& failure, NodeId initiator,
                           NodeId dest, const FcpOptions& opts = {});

}  // namespace rtr::baseline
