#include "baselines/fcp.h"

#include "spf/shortest_path.h"

namespace rtr::baseline {

FcpResult run_fcp(const graph::Graph& g, const fail::FailureSet& failure,
                  NodeId initiator, NodeId dest, const FcpOptions& opts) {
  RTR_EXPECT(g.valid_node(initiator) && g.valid_node(dest));
  RTR_EXPECT(initiator != dest);
  RTR_EXPECT_MSG(!failure.node_failed(initiator), "initiator failed");

  FcpResult r;
  r.initiator = initiator;
  r.destination = dest;
  r.walk.push_back(initiator);

  // Exclusion mask shared across recomputations; rebuilt incrementally
  // as the header's failure list grows.
  std::vector<char> excluded(g.num_links(), 0);
  NodeId at = initiator;
  while (true) {
    // The node where the packet is stuck adds everything it can observe
    // locally, then recomputes on the consistent map minus carried
    // failures (the local observations ride in the header from now on).
    for (LinkId l : failure.observed_failed_links(g, at)) {
      if (r.header.add_failed(l)) excluded[l] = 1;
    }
    if (r.sp_calculations >= opts.max_recomputations) {
      r.final_node = at;
      return r;  // cap: treated as a discard (tests assert unreachable)
    }
    ++r.sp_calculations;
    const spf::Path path =
        spf::shortest_path(g, at, dest, {nullptr, &excluded});
    if (path.empty()) {
      // No route consistent with the carried failures: discard here.
      r.final_node = at;
      return r;
    }
    r.header.source_route.assign(path.nodes.begin() + 1, path.nodes.end());
    const std::size_t bytes = r.header.recovery_bytes();

    // Walk the source route until delivery or the next failure.
    bool blocked = false;
    for (std::size_t i = 0; i < path.links.size(); ++i) {
      const LinkId l = path.links[i];
      if (failure.link_failed(l)) {
        // path.nodes[i] observes its next hop unreachable and becomes
        // the next recomputing node.
        at = path.nodes[i];
        blocked = true;
        break;
      }
      r.bytes_per_hop.push_back(bytes);
      ++r.hops;
      r.walk.push_back(path.nodes[i + 1]);
    }
    if (!blocked) {
      r.delivered = true;
      r.final_node = dest;
      return r;
    }
  }
}

FcpResult run_fcp_original(const graph::Graph& g,
                           const fail::FailureSet& failure,
                           NodeId initiator, NodeId dest,
                           const FcpOptions& opts) {
  RTR_EXPECT(g.valid_node(initiator) && g.valid_node(dest));
  RTR_EXPECT(initiator != dest);
  RTR_EXPECT_MSG(!failure.node_failed(initiator), "initiator failed");

  FcpResult r;
  r.initiator = initiator;
  r.destination = dest;
  r.walk.push_back(initiator);

  std::vector<char> excluded(g.num_links(), 0);
  NodeId at = initiator;
  // Hop cap: the carried failure set grows at most |E| times, and
  // between growth events the per-hop recomputations agree and strictly
  // approach the destination, so |V| * (|E| + 1) bounds the walk.
  const std::size_t hop_cap = g.num_nodes() * (g.num_links() + 1) + 16;
  while (at != dest) {
    // The router folds everything it can observe locally into the
    // carried failure set, then recomputes and forwards one hop.
    for (LinkId l : failure.observed_failed_links(g, at)) {
      if (r.header.add_failed(l)) excluded[l] = 1;
    }
    if (r.sp_calculations >= opts.max_recomputations ||
        r.hops >= hop_cap) {
      r.final_node = at;
      return r;  // cap: treated as a discard (tests assert unreachable)
    }
    ++r.sp_calculations;
    const spf::Path path =
        spf::shortest_path(g, at, dest, {nullptr, &excluded});
    if (path.empty()) {
      r.final_node = at;
      return r;
    }
    // No source route in the header: only the failure list travels.
    r.bytes_per_hop.push_back(r.header.recovery_bytes());
    ++r.hops;
    at = path.nodes[1];
    r.walk.push_back(at);
  }
  r.delivered = true;
  r.final_node = dest;
  return r;
}

}  // namespace rtr::baseline
