// Wire protocol of the recovery-planning service (rtr::svc).
//
// Transport framing is a 32-bit big-endian length prefix followed by
// exactly that many payload bytes.  The payload is a two-layer
// envelope, mirroring the dispatch model of endpoint.h: the outer
// Request/Response carries routing data (request id, endpoint name,
// deadline, status) and an opaque body; each endpoint owns the codec of
// its body (PlanRequest/PlanResponse for "plan", Info* for "info").
//
// The codec is *canonical*: every field is fixed width, enums and
// length bounds are validated, and trailing bytes are rejected, so any
// byte string either fails to decode (WireError -- never undefined
// behaviour) or decodes to a value that re-encodes to exactly those
// bytes.  That is the same contract the PR 5 adversarial corpus pins on
// the RTR header codec, and tests/test_svc.cc replays the prefix and
// bit-flip attacks against every layer here.
//
// Determinism: responses contain only values that are pure functions of
// (request, loaded topology) -- ids, outcomes, paths, and simulated
// (not wall-clock) elapsed time -- so the same request yields a
// byte-identical response at any worker-thread count.  Path costs are
// doubles carried as their IEEE-754 bit pattern, which round-trips
// exactly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace rtr::svc {

class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Hard ceiling on a frame payload; decode rejects larger declared
/// lengths before allocating anything, so an adversarial length prefix
/// cannot balloon memory.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

/// How the service answered (Response::status).
enum class Status : std::uint8_t {
  kOk = 0,
  kRejected = 1,          ///< admission queue full; retry later
  kDeadlineExceeded = 2,  ///< deadline hit at a phase boundary; body
                          ///< carries the flows finished so far
  kBadRequest = 3,        ///< malformed frame/body or invalid ids
  kNotFound = 4,          ///< unknown endpoint or topology
  kInternalError = 5,
};

/// Per-flow planning outcome (superset of core::Outcome: the first four
/// values map 1:1; the last two are request-validation outcomes the
/// batch engine never needed).
enum class FlowOutcome : std::uint8_t {
  kRecovered = 0,
  kDroppedOnPath = 1,
  kDeclaredUnreachable = 2,
  kInitiatorIsolated = 3,
  kInitiatorFailed = 4,     ///< initiator inside the failure set
  kNoFailureObserved = 5,   ///< initiator sees no failed adjacency;
                            ///< RTR cannot (and need not) initiate
};

const char* to_string(Status s);
const char* to_string(FlowOutcome o);

// ---------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------

struct Request {
  std::uint64_t id = 0;
  /// Request-relative deadline in *simulated* milliseconds (see
  /// deadline.h); 0 means no deadline.
  std::uint32_t deadline_ms = 0;
  std::string endpoint;  ///< dispatch key, 1..255 bytes
  std::vector<std::uint8_t> body;
};

struct Response {
  std::uint64_t id = 0;  ///< echoes Request::id
  Status status = Status::kInternalError;
  std::string message;   ///< human-readable diagnostics (may be empty)
  std::vector<std::uint8_t> body;
};

/// Wraps a payload in the length-prefixed frame.
std::vector<std::uint8_t> encode_frame(
    const std::vector<std::uint8_t>& payload);

/// Unwraps a frame; throws WireError unless the prefix matches the
/// remaining byte count exactly and respects kMaxFramePayload.
std::vector<std::uint8_t> decode_frame(
    const std::vector<std::uint8_t>& frame);

std::vector<std::uint8_t> encode_request(const Request& r);
Request decode_request(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_response(const Response& r);
Response decode_response(const std::vector<std::uint8_t>& payload);

/// Best-effort request id of a framed request (for addressing rejection
/// responses without a full parse); 0 when the bytes are too short.
std::uint64_t peek_request_id(const std::vector<std::uint8_t>& frame);

// ---------------------------------------------------------------------
// "plan" endpoint bodies
// ---------------------------------------------------------------------

struct PlanFlow {
  NodeId initiator = kNoNode;
  NodeId dest = kNoNode;
};

/// "These links/nodes just failed -- give me RTR paths for these
/// flows."  Failures are explicit id lists (the operations plane knows
/// which adjacencies dropped); ids are validated against the topology
/// at dispatch, not decode.
struct PlanRequest {
  std::string topology;
  std::vector<NodeId> failed_nodes;
  std::vector<LinkId> failed_links;
  std::vector<PlanFlow> flows;
};

struct FlowResult {
  NodeId initiator = kNoNode;
  NodeId dest = kNoNode;
  FlowOutcome outcome = FlowOutcome::kNoFailureObserved;
  std::uint32_t sp_calculations = 0;
  /// Cost of the computed source route (IEEE bit pattern on the wire);
  /// 0.0 when no path was computed.
  Cost path_cost = 0.0;
  /// Node sequence of the computed source route; empty when none.
  std::vector<NodeId> path;
};

struct PlanResponse {
  std::uint32_t flows_total = 0;
  /// Flows fully planned before the deadline; == flows_total on kOk,
  /// smaller on kDeadlineExceeded (partial diagnostics).
  std::uint32_t flows_done = 0;
  /// Simulated protocol time consumed (phase-1 sweeps + path walks),
  /// in microseconds -- the value the deadline was checked against.
  std::uint64_t sim_elapsed_us = 0;
  std::vector<FlowResult> results;  ///< results.size() == flows_done
};

std::vector<std::uint8_t> encode_plan_request(const PlanRequest& r);
PlanRequest decode_plan_request(const std::vector<std::uint8_t>& body);

std::vector<std::uint8_t> encode_plan_response(const PlanResponse& r);
PlanResponse decode_plan_response(const std::vector<std::uint8_t>& body);

// ---------------------------------------------------------------------
// "info" endpoint bodies
// ---------------------------------------------------------------------

struct InfoRequest {
  std::string topology;  ///< empty = describe every loaded topology
};

struct TopologyInfo {
  std::string name;
  std::uint32_t nodes = 0;
  std::uint32_t links = 0;
};

struct InfoResponse {
  std::vector<TopologyInfo> topologies;
};

std::vector<std::uint8_t> encode_info_request(const InfoRequest& r);
InfoRequest decode_info_request(const std::vector<std::uint8_t>& body);

std::vector<std::uint8_t> encode_info_response(const InfoResponse& r);
InfoResponse decode_info_response(const std::vector<std::uint8_t>& body);

}  // namespace rtr::svc
