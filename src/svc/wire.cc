#include "svc/wire.h"

#include <bit>
#include <cstring>

namespace rtr::svc {

namespace {

// ---------------------------------------------------------------------
// Primitive big-endian readers/writers.  The cursor-based Reader
// mirrors net::codec's style: every read validates the remaining byte
// count, and finish() rejects trailing bytes so decodes are canonical.
// ---------------------------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  // Byte-wise on purpose: range-insert from a string's SSO buffer trips
  // a GCC 12 -Warray-bounds false positive under -Werror, and every
  // string here is a <=255-byte name.
  for (char c : s) out.push_back(static_cast<std::uint8_t>(c));
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }

  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(buf_[pos_]) << 8) | buf_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = (static_cast<std::uint32_t>(buf_[pos_]) << 24) |
                            (static_cast<std::uint32_t>(buf_[pos_ + 1]) << 16) |
                            (static_cast<std::uint32_t>(buf_[pos_ + 2]) << 8) |
                            static_cast<std::uint32_t>(buf_[pos_ + 3]);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str(std::size_t len) {
    need(len);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  std::vector<std::uint8_t> bytes(std::size_t len) {
    need(len);
    std::vector<std::uint8_t> b(buf_.begin() + static_cast<long>(pos_),
                                buf_.begin() + static_cast<long>(pos_ + len));
    pos_ += len;
    return b;
  }

  std::size_t remaining() const { return buf_.size() - pos_; }

  /// Rejects trailing bytes: required at the end of every decode so the
  /// re-encode-identity property holds.
  void finish() const {
    if (pos_ != buf_.size()) {
      throw WireError("svc: trailing bytes after message");
    }
  }

 private:
  void need(std::size_t n) const {
    if (buf_.size() - pos_ < n) {
      throw WireError("svc: truncated message");
    }
  }

  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

/// A declared element count must be achievable with the bytes actually
/// present, or an adversarial count could drive a huge allocation.
void check_count(std::uint32_t n, std::size_t min_elem_bytes,
                 const Reader& r) {
  if (min_elem_bytes > 0 &&
      static_cast<std::uint64_t>(n) * min_elem_bytes > r.remaining()) {
    throw WireError("svc: declared count exceeds payload");
  }
}

constexpr std::uint8_t kRequestMagic = 0x52;   // 'R'
constexpr std::uint8_t kResponseMagic = 0x53;  // 'S'

// Length-prefixed names (endpoint, topology) carry a u8 size field, so
// 255 is a wire-format bound, not a tunable.
constexpr std::size_t kMaxNameLen = 255;

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kRejected:
      return "rejected";
    case Status::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::kBadRequest:
      return "bad_request";
    case Status::kNotFound:
      return "not_found";
    case Status::kInternalError:
      return "internal_error";
  }
  return "unknown";
}

const char* to_string(FlowOutcome o) {
  switch (o) {
    case FlowOutcome::kRecovered:
      return "recovered";
    case FlowOutcome::kDroppedOnPath:
      return "dropped_on_path";
    case FlowOutcome::kDeclaredUnreachable:
      return "declared_unreachable";
    case FlowOutcome::kInitiatorIsolated:
      return "initiator_isolated";
    case FlowOutcome::kInitiatorFailed:
      return "initiator_failed";
    case FlowOutcome::kNoFailureObserved:
      return "no_failure_observed";
  }
  return "unknown";
}

// ---------------------------------------------------------------------
// Frame
// ---------------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(
    const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFramePayload) {
    throw WireError("svc: payload exceeds frame cap");
  }
  std::vector<std::uint8_t> out;
  out.reserve(4 + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint8_t> decode_frame(
    const std::vector<std::uint8_t>& frame) {
  Reader r(frame);
  const std::uint32_t len = r.u32();
  if (len > kMaxFramePayload) {
    throw WireError("svc: frame length exceeds cap");
  }
  if (r.remaining() != len) {
    throw WireError("svc: frame length mismatch");
  }
  std::vector<std::uint8_t> payload = r.bytes(len);
  r.finish();
  return payload;
}

// ---------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------

std::vector<std::uint8_t> encode_request(const Request& r) {
  if (r.endpoint.empty() || r.endpoint.size() > kMaxNameLen) {
    throw WireError("svc: endpoint name must be 1..255 bytes");
  }
  std::vector<std::uint8_t> out;
  out.reserve(18 + r.endpoint.size() + r.body.size());
  put_u8(out, kRequestMagic);
  put_u64(out, r.id);
  put_u32(out, r.deadline_ms);
  put_u8(out, static_cast<std::uint8_t>(r.endpoint.size()));
  put_str(out, r.endpoint);
  put_u32(out, static_cast<std::uint32_t>(r.body.size()));
  out.insert(out.end(), r.body.begin(), r.body.end());
  return out;
}

Request decode_request(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  if (r.u8() != kRequestMagic) {
    throw WireError("svc: bad request magic");
  }
  Request req;
  req.id = r.u64();
  req.deadline_ms = r.u32();
  const std::uint8_t name_len = r.u8();
  if (name_len == 0) {
    throw WireError("svc: empty endpoint name");
  }
  req.endpoint = r.str(name_len);
  const std::uint32_t body_len = r.u32();
  req.body = r.bytes(body_len);
  r.finish();
  return req;
}

std::vector<std::uint8_t> encode_response(const Response& r) {
  if (r.message.size() > 0xFFFF) {
    throw WireError("svc: response message too long");
  }
  std::vector<std::uint8_t> out;
  out.reserve(16 + r.message.size() + r.body.size());
  put_u8(out, kResponseMagic);
  put_u64(out, r.id);
  put_u8(out, static_cast<std::uint8_t>(r.status));
  put_u16(out, static_cast<std::uint16_t>(r.message.size()));
  put_str(out, r.message);
  put_u32(out, static_cast<std::uint32_t>(r.body.size()));
  out.insert(out.end(), r.body.begin(), r.body.end());
  return out;
}

Response decode_response(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  if (r.u8() != kResponseMagic) {
    throw WireError("svc: bad response magic");
  }
  Response resp;
  resp.id = r.u64();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(Status::kInternalError)) {
    throw WireError("svc: invalid status code");
  }
  resp.status = static_cast<Status>(status);
  const std::uint16_t msg_len = r.u16();
  resp.message = r.str(msg_len);
  const std::uint32_t body_len = r.u32();
  resp.body = r.bytes(body_len);
  r.finish();
  return resp;
}

std::uint64_t peek_request_id(const std::vector<std::uint8_t>& frame) {
  // frame = u32 length, u8 magic, u64 id, ...
  if (frame.size() < 13 || frame[4] != kRequestMagic) return 0;
  std::uint64_t id = 0;
  for (std::size_t i = 5; i < 13; ++i) {
    id = (id << 8) | frame[i];
  }
  return id;
}

// ---------------------------------------------------------------------
// "plan" bodies
// ---------------------------------------------------------------------

std::vector<std::uint8_t> encode_plan_request(const PlanRequest& r) {
  if (r.topology.empty() || r.topology.size() > kMaxNameLen) {
    throw WireError("svc: topology name must be 1..255 bytes");
  }
  std::vector<std::uint8_t> out;
  put_u8(out, static_cast<std::uint8_t>(r.topology.size()));
  put_str(out, r.topology);
  put_u32(out, static_cast<std::uint32_t>(r.failed_nodes.size()));
  for (NodeId n : r.failed_nodes) put_u32(out, n);
  put_u32(out, static_cast<std::uint32_t>(r.failed_links.size()));
  for (LinkId l : r.failed_links) put_u32(out, l);
  put_u32(out, static_cast<std::uint32_t>(r.flows.size()));
  for (const PlanFlow& f : r.flows) {
    put_u32(out, f.initiator);
    put_u32(out, f.dest);
  }
  return out;
}

PlanRequest decode_plan_request(const std::vector<std::uint8_t>& body) {
  Reader r(body);
  PlanRequest req;
  const std::uint8_t name_len = r.u8();
  if (name_len == 0) {
    throw WireError("svc: empty topology name");
  }
  req.topology = r.str(name_len);
  const std::uint32_t n_nodes = r.u32();
  check_count(n_nodes, 4, r);
  req.failed_nodes.reserve(n_nodes);
  for (std::uint32_t i = 0; i < n_nodes; ++i) {
    req.failed_nodes.push_back(r.u32());
  }
  const std::uint32_t n_links = r.u32();
  check_count(n_links, 4, r);
  req.failed_links.reserve(n_links);
  for (std::uint32_t i = 0; i < n_links; ++i) {
    req.failed_links.push_back(r.u32());
  }
  const std::uint32_t n_flows = r.u32();
  check_count(n_flows, 8, r);
  req.flows.reserve(n_flows);
  for (std::uint32_t i = 0; i < n_flows; ++i) {
    PlanFlow f;
    f.initiator = r.u32();
    f.dest = r.u32();
    req.flows.push_back(f);
  }
  r.finish();
  return req;
}

std::vector<std::uint8_t> encode_plan_response(const PlanResponse& r) {
  if (r.results.size() != r.flows_done) {
    throw WireError("svc: results/flows_done mismatch");
  }
  std::vector<std::uint8_t> out;
  put_u32(out, r.flows_total);
  put_u32(out, r.flows_done);
  put_u64(out, r.sim_elapsed_us);
  for (const FlowResult& f : r.results) {
    put_u32(out, f.initiator);
    put_u32(out, f.dest);
    put_u8(out, static_cast<std::uint8_t>(f.outcome));
    put_u32(out, f.sp_calculations);
    put_f64(out, f.path_cost);
    put_u32(out, static_cast<std::uint32_t>(f.path.size()));
    for (NodeId n : f.path) put_u32(out, n);
  }
  return out;
}

PlanResponse decode_plan_response(const std::vector<std::uint8_t>& body) {
  Reader r(body);
  PlanResponse resp;
  resp.flows_total = r.u32();
  resp.flows_done = r.u32();
  resp.sim_elapsed_us = r.u64();
  check_count(resp.flows_done, 25, r);
  resp.results.reserve(resp.flows_done);
  for (std::uint32_t i = 0; i < resp.flows_done; ++i) {
    FlowResult f;
    f.initiator = r.u32();
    f.dest = r.u32();
    const std::uint8_t outcome = r.u8();
    if (outcome > static_cast<std::uint8_t>(FlowOutcome::kNoFailureObserved)) {
      throw WireError("svc: invalid flow outcome");
    }
    f.outcome = static_cast<FlowOutcome>(outcome);
    f.sp_calculations = r.u32();
    f.path_cost = r.f64();
    const std::uint32_t n_path = r.u32();
    check_count(n_path, 4, r);
    f.path.reserve(n_path);
    for (std::uint32_t j = 0; j < n_path; ++j) {
      f.path.push_back(r.u32());
    }
    resp.results.push_back(std::move(f));
  }
  r.finish();
  return resp;
}

// ---------------------------------------------------------------------
// "info" bodies
// ---------------------------------------------------------------------

std::vector<std::uint8_t> encode_info_request(const InfoRequest& r) {
  if (r.topology.size() > kMaxNameLen) {
    throw WireError("svc: topology name too long");
  }
  std::vector<std::uint8_t> out;
  put_u8(out, static_cast<std::uint8_t>(r.topology.size()));
  put_str(out, r.topology);
  return out;
}

InfoRequest decode_info_request(const std::vector<std::uint8_t>& body) {
  Reader r(body);
  InfoRequest req;
  const std::uint8_t name_len = r.u8();
  req.topology = r.str(name_len);
  r.finish();
  return req;
}

std::vector<std::uint8_t> encode_info_response(const InfoResponse& r) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(r.topologies.size()));
  for (const TopologyInfo& t : r.topologies) {
    if (t.name.empty() || t.name.size() > kMaxNameLen) {
      throw WireError("svc: topology name must be 1..255 bytes");
    }
    put_u8(out, static_cast<std::uint8_t>(t.name.size()));
    put_str(out, t.name);
    put_u32(out, t.nodes);
    put_u32(out, t.links);
  }
  return out;
}

InfoResponse decode_info_response(const std::vector<std::uint8_t>& body) {
  Reader r(body);
  InfoResponse resp;
  const std::uint32_t n = r.u32();
  check_count(n, 9, r);
  resp.topologies.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TopologyInfo t;
    const std::uint8_t name_len = r.u8();
    if (name_len == 0) {
      throw WireError("svc: empty topology name");
    }
    t.name = r.str(name_len);
    t.nodes = r.u32();
    t.links = r.u32();
    resp.topologies.push_back(std::move(t));
  }
  r.finish();
  return resp;
}

}  // namespace rtr::svc
