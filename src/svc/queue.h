// Bounded MPMC admission queue of the planning server.
//
// Admission control is the try_push() verdict: a full queue rejects
// *immediately* (the server turns that into a kRejected response) --
// there is never an unbounded backlog, so a burst cannot take the
// service down, only shed load.  pop() blocks until an item or close();
// after close() the queue keeps draining, so every admitted request is
// still answered during shutdown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rtr::svc {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admits the item unless the queue is at capacity or closed.
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks for the next item; nullopt only when closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admission and wakes every blocked pop(); idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Re-arms a closed, drained queue (server restart).
  void reopen() {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
  }

  std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rtr::svc
