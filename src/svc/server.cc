#include "svc/server.h"

#include <sstream>
#include <stdexcept>
#include <utility>
#include <variant>

#include "common/parallel.h"
#include "ledger/journal.h"
#include "obs/metrics.h"

namespace rtr::svc {

namespace {

/// Service-level counters.  Created lazily on first Server activity so
/// processes without a server emit no rtr.svc.* series.  All four are
/// stable: they count admission verdicts and served requests, which are
/// pure functions of the submitted request multiset (the bench keeps
/// closed-loop submissions within queue capacity, so no verdict ever
/// depends on drain timing).
struct ServiceMetrics {
  obs::Counter& admitted =
      obs::Registry::global().counter("rtr.svc.admitted");
  obs::Counter& rejected =
      obs::Registry::global().counter("rtr.svc.rejected");
  obs::Counter& served = obs::Registry::global().counter("rtr.svc.served");
  obs::Counter& deadline_exceeded =
      obs::Registry::global().counter("rtr.svc.deadline_exceeded");
  /// Queue occupancy at admission; timing-dependent, hence volatile.
  obs::Gauge& queue_depth = obs::Registry::global().gauge(
      "rtr.svc.queue_depth", obs::Stability::kVolatile);
};

ServiceMetrics& service_metrics() {
  // lint:allow(mutable-static) — references into the leaked global
  // metrics registry, same idiom as every other instrumentation site
  static ServiceMetrics m;
  return m;
}

/// Identity of the serving configuration a request journal is valid
/// for: the loaded topology set, by name (TopologyMap iterates in name
/// order) with node and link counts.  A restarted server with a
/// different topology set would replay frames into the wrong graphs;
/// the journal header fingerprint makes that a loud LedgerError
/// instead.
std::uint64_t topology_fingerprint(const TopologyMap& topologies) {
  std::ostringstream os;
  os << "svc-ledger-v1";
  for (const auto& [name, ctx] : topologies) {
    os << "|" << name << ":" << ctx->g.num_nodes() << ":"
       << ctx->g.num_links();
  }
  return ledger::fnv1a64(os.str());
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(opts), queue_(opts.queue_capacity) {
  dispatcher_.install(
      std::make_unique<PlanEndpoint>(topologies_, opts_.planner));
  dispatcher_.install(std::make_unique<InfoEndpoint>(topologies_));
}

Server::~Server() { stop(); }

void Server::add_topology(std::string name, graph::Graph g) {
  if (running()) {
    throw std::logic_error("svc: add_topology on a running server");
  }
  if (name.empty() || name.size() > 255) {
    throw std::invalid_argument("svc: topology name must be 1..255 bytes");
  }
  auto ctx =
      std::make_unique<exp::TopologyContext>(name, std::move(g));
  if (!topologies_.emplace(std::move(name), std::move(ctx)).second) {
    throw std::invalid_argument("svc: duplicate topology");
  }
}

void Server::install(std::unique_ptr<Endpoint> ep) {
  if (running()) {
    throw std::logic_error("svc: install on a running server");
  }
  dispatcher_.install(std::move(ep));
}

void Server::start() {
  if (running()) {
    throw std::logic_error("svc: server already running");
  }
  if (!opts_.ledger_path.empty() && journal_ == nullptr) {
    // First start of this process: open (validating the topology
    // fingerprint) and replay every journaled request through the
    // serve path before any worker exists.  Responses are discarded --
    // the callers got theirs in the previous life -- but the side
    // effects (warm BaseTreeStore trees, admitted/served counters)
    // land exactly as if this process had served the requests itself.
    journal_ = std::make_shared<ledger::Journal>(
        opts_.ledger_path, topology_fingerprint(topologies_));
    ServiceMetrics& m = service_metrics();
    for (const ledger::Record& r : journal_->recovered()) {
      const auto* env = std::get_if<ledger::EnvelopeRecord>(&r);
      if (env == nullptr) continue;
      m.admitted.inc();
      (void)serve(env->frame);
      journal_->note_resume_skip();
    }
    // Frames admitted while the journal was still unopened (submitted
    // to the stopped server) are journaled now, in admission order.
    const std::lock_guard<std::mutex> lock(pending_mu_);
    for (std::vector<std::uint8_t>& frame : pending_journal_) {
      journal_->append(ledger::Record(ledger::EnvelopeRecord{std::move(frame)}));
    }
    pending_journal_.clear();
  }
  queue_.reopen();
  const std::size_t n = common::resolve_thread_count(opts_.workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::stop() {
  if (!running()) return;
  queue_.close();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

std::future<std::vector<std::uint8_t>> Server::submit(
    std::vector<std::uint8_t> frame) {
  ServiceMetrics& m = service_metrics();
  const std::uint64_t id = peek_request_id(frame);
  Job job;
  job.frame = std::move(frame);
  std::future<std::vector<std::uint8_t>> fut = job.reply.get_future();
  // Copied before try_push consumes the job; only journaled when the
  // frame is actually admitted (a rejected frame never touches the
  // caches, so replaying it would be wrong).
  std::vector<std::uint8_t> journal_frame;
  const bool ledgered = !opts_.ledger_path.empty();
  if (ledgered) journal_frame = job.frame;
  if (queue_.try_push(std::move(job))) {
    m.admitted.inc();
    m.queue_depth.record(queue_.depth());
    if (ledgered) {
      if (journal_ != nullptr) {
        journal_->append(
            ledger::Record(ledger::EnvelopeRecord{std::move(journal_frame)}));
      } else {
        // Journal not open yet (first start() pending): buffer.
        const std::lock_guard<std::mutex> lock(pending_mu_);
        pending_journal_.push_back(std::move(journal_frame));
      }
    }
    return fut;
  }
  // Shed load instead of backlogging: answer kRejected right here on
  // the submitter's thread.  The job was moved into try_push but not
  // consumed on failure -- its promise died with it -- so build a fresh
  // satisfied future.
  m.rejected.inc();
  Response r;
  r.id = id;
  r.status = Status::kRejected;
  r.message = "admission queue full";
  std::promise<std::vector<std::uint8_t>> reply;
  std::future<std::vector<std::uint8_t>> rejected_fut = reply.get_future();
  reply.set_value(encode_frame(encode_response(r)));
  return rejected_fut;
}

std::vector<std::uint8_t> Server::call(
    const std::vector<std::uint8_t>& frame) {
  return submit(frame).get();
}

void Server::worker_loop() {
  while (auto job = queue_.pop()) {
    job->reply.set_value(serve(job->frame));
  }
}

std::vector<std::uint8_t> Server::serve(
    const std::vector<std::uint8_t>& frame) {
  ServiceMetrics& m = service_metrics();
  Response resp;
  try {
    const Request req = decode_request(decode_frame(frame));
    resp = dispatcher_.dispatch(req);
  } catch (const WireError& e) {
    resp.id = peek_request_id(frame);
    resp.status = Status::kBadRequest;
    resp.message = e.what();
  }
  m.served.inc();
  if (resp.status == Status::kDeadlineExceeded) {
    m.deadline_exceeded.inc();
  }
  return encode_frame(encode_response(resp));
}

}  // namespace rtr::svc
