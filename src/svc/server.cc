#include "svc/server.h"

#include <stdexcept>
#include <utility>

#include "common/parallel.h"
#include "obs/metrics.h"

namespace rtr::svc {

namespace {

/// Service-level counters.  Created lazily on first Server activity so
/// processes without a server emit no rtr.svc.* series.  All four are
/// stable: they count admission verdicts and served requests, which are
/// pure functions of the submitted request multiset (the bench keeps
/// closed-loop submissions within queue capacity, so no verdict ever
/// depends on drain timing).
struct ServiceMetrics {
  obs::Counter& admitted =
      obs::Registry::global().counter("rtr.svc.admitted");
  obs::Counter& rejected =
      obs::Registry::global().counter("rtr.svc.rejected");
  obs::Counter& served = obs::Registry::global().counter("rtr.svc.served");
  obs::Counter& deadline_exceeded =
      obs::Registry::global().counter("rtr.svc.deadline_exceeded");
  /// Queue occupancy at admission; timing-dependent, hence volatile.
  obs::Gauge& queue_depth = obs::Registry::global().gauge(
      "rtr.svc.queue_depth", obs::Stability::kVolatile);
};

ServiceMetrics& service_metrics() {
  // lint:allow(mutable-static) — references into the leaked global
  // metrics registry, same idiom as every other instrumentation site
  static ServiceMetrics m;
  return m;
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(opts), queue_(opts.queue_capacity) {
  dispatcher_.install(
      std::make_unique<PlanEndpoint>(topologies_, opts_.planner));
  dispatcher_.install(std::make_unique<InfoEndpoint>(topologies_));
}

Server::~Server() { stop(); }

void Server::add_topology(std::string name, graph::Graph g) {
  if (running()) {
    throw std::logic_error("svc: add_topology on a running server");
  }
  if (name.empty() || name.size() > 255) {
    throw std::invalid_argument("svc: topology name must be 1..255 bytes");
  }
  auto ctx =
      std::make_unique<exp::TopologyContext>(name, std::move(g));
  if (!topologies_.emplace(std::move(name), std::move(ctx)).second) {
    throw std::invalid_argument("svc: duplicate topology");
  }
}

void Server::install(std::unique_ptr<Endpoint> ep) {
  if (running()) {
    throw std::logic_error("svc: install on a running server");
  }
  dispatcher_.install(std::move(ep));
}

void Server::start() {
  if (running()) {
    throw std::logic_error("svc: server already running");
  }
  queue_.reopen();
  const std::size_t n = common::resolve_thread_count(opts_.workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::stop() {
  if (!running()) return;
  queue_.close();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

std::future<std::vector<std::uint8_t>> Server::submit(
    std::vector<std::uint8_t> frame) {
  ServiceMetrics& m = service_metrics();
  const std::uint64_t id = peek_request_id(frame);
  Job job;
  job.frame = std::move(frame);
  std::future<std::vector<std::uint8_t>> fut = job.reply.get_future();
  if (queue_.try_push(std::move(job))) {
    m.admitted.inc();
    m.queue_depth.record(queue_.depth());
    return fut;
  }
  // Shed load instead of backlogging: answer kRejected right here on
  // the submitter's thread.  The job was moved into try_push but not
  // consumed on failure -- its promise died with it -- so build a fresh
  // satisfied future.
  m.rejected.inc();
  Response r;
  r.id = id;
  r.status = Status::kRejected;
  r.message = "admission queue full";
  std::promise<std::vector<std::uint8_t>> reply;
  std::future<std::vector<std::uint8_t>> rejected_fut = reply.get_future();
  reply.set_value(encode_frame(encode_response(r)));
  return rejected_fut;
}

std::vector<std::uint8_t> Server::call(
    const std::vector<std::uint8_t>& frame) {
  return submit(frame).get();
}

void Server::worker_loop() {
  while (auto job = queue_.pop()) {
    job->reply.set_value(serve(job->frame));
  }
}

std::vector<std::uint8_t> Server::serve(
    const std::vector<std::uint8_t>& frame) {
  ServiceMetrics& m = service_metrics();
  Response resp;
  try {
    const Request req = decode_request(decode_frame(frame));
    resp = dispatcher_.dispatch(req);
  } catch (const WireError& e) {
    resp.id = peek_request_id(frame);
    resp.status = Status::kBadRequest;
    resp.message = e.what();
  }
  m.served.inc();
  if (resp.status == Status::kDeadlineExceeded) {
    m.deadline_exceeded.inc();
  }
  return encode_frame(encode_response(resp));
}

}  // namespace rtr::svc
