// Deterministic per-request deadlines for the planning service.
//
// A request's deadline cannot be checked against the wall clock without
// making the response depend on machine load: the same request would
// return kOk on an idle server and kDeadlineExceeded on a busy one, and
// the 1/2/8-worker byte-identity contract would be unprovable.  Instead
// the planner charges *simulated protocol time* -- the paper's per-hop
// delay model (net::DelayModel, Section IV-B: 1.8 ms per hop) applied
// to the work the protocol itself would do: the phase-1 traversal of an
// initiator and the phase-2 source-route walk of each flow.  The clock
// is checked at phase boundaries only, matching where a real initiator
// could observe a timeout, and the verdict is a pure function of the
// request content and topology.
#pragma once

#include <cstdint>

#include "net/delay.h"

namespace rtr::svc {

class SimClock {
 public:
  /// deadline_ms == 0 means no deadline (never expires).
  explicit SimClock(std::uint32_t deadline_ms, net::DelayModel model = {})
      : deadline_ms_(deadline_ms), model_(model) {}

  /// Charges the simulated cost of forwarding over `hops` links.
  void charge_hops(std::size_t hops) {
    elapsed_ms_ += model_.duration_ms(hops);
  }

  /// True once the accumulated simulated time passed the deadline.
  /// Callers check this at phase boundaries; mid-phase work is never
  /// interrupted (a traversing packet cannot be recalled).
  bool expired() const {
    return deadline_ms_ != 0 &&
           elapsed_ms_ > static_cast<double>(deadline_ms_);
  }

  /// Accumulated simulated time in microseconds, for the response's
  /// sim_elapsed_us diagnostic.  The double->integer rounding here is
  /// exact for any realistic hop count (per-hop cost is a small
  /// dyadic-friendly constant and hop counts are integers), and the
  /// accumulation order is the flow order of the request, so the value
  /// is deterministic.
  std::uint64_t elapsed_us() const {
    return static_cast<std::uint64_t>(elapsed_ms_ * 1000.0);
  }

 private:
  std::uint32_t deadline_ms_;
  net::DelayModel model_;
  double elapsed_ms_ = 0.0;
};

}  // namespace rtr::svc
