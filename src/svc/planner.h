// The service's two endpoints.
//
// "plan" is the operational query the paper's engine exists to answer:
// given explicit failed nodes/links and a list of (initiator, dest)
// flows, run RTR -- phase 1 once per initiator, phase 2 per flow --
// against the resident topology and return per-flow outcomes, source
// routes, and costs.  Each request constructs its own
// core::RtrRecovery session (per-request state: phase-1 caches, SPTs,
// path caches die with the request) over the *shared* read-only
// TopologyContext, whose BaseTreeStore makes phase 2 an incremental
// repair instead of a fresh Dijkstra.  That split is the determinism
// argument: all mutable state is request-local, all shared state is
// immutable or compute-once, so concurrent requests cannot observe each
// other and the response is a pure function of (request, topology).
//
// "info" describes the loaded topologies (name, node/link counts) --
// the discovery call a client issues before planning.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/rtr.h"
#include "exp/context.h"
#include "net/delay.h"
#include "svc/endpoint.h"
#include "svc/wire.h"

namespace rtr::svc {

/// Topologies resident in the server, keyed by name.  std::map so every
/// whole-set iteration (the "info" endpoint) is in name order.
using TopologyMap =
    std::map<std::string, std::unique_ptr<exp::TopologyContext>>;

struct PlannerOptions {
  /// Simulated per-hop delay charged against request deadlines.
  net::DelayModel delay;
  core::RtrOptions rtr;
};

class PlanEndpoint final : public Endpoint {
 public:
  /// Borrows `topologies`; the owner (Server) must outlive it.
  PlanEndpoint(const TopologyMap& topologies, PlannerOptions opts);

  Response handle(const Request& req) override;

 private:
  const TopologyMap* topologies_;
  PlannerOptions opts_;
};

class InfoEndpoint final : public Endpoint {
 public:
  explicit InfoEndpoint(const TopologyMap& topologies);

  Response handle(const Request& req) override;

 private:
  const TopologyMap* topologies_;
};

}  // namespace rtr::svc
