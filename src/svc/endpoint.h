// Endpoint registry of the planning service.
//
// Dispatch follows the named-endpoint-registry shape of production RPC
// frameworks: each handler is an Endpoint with a unique name, installed
// into a Dispatcher that routes Request::endpoint to it and accounts
// for the call on the endpoint's own metrics family
// (rtr.svc.<name>.requests / .ok / .errors / .deadline_exceeded, plus a
// volatile rtr.svc.<name>.latency_ns timer).  Handlers never touch the
// wire framing -- they receive a decoded Request and return a Response;
// the Dispatcher turns handler exceptions into error statuses so a
// malformed body can never take a worker thread down.
//
// Metric families are created lazily, on construction of the objects
// here: a process that never builds a Dispatcher emits no rtr.svc.*
// series, keeping the existing bench documents byte-identical.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "svc/wire.h"

namespace rtr::svc {

/// Per-endpoint metrics family.  Counters are stable (pure functions of
/// the request multiset); the latency timer is wall clock and volatile.
struct EndpointMetrics {
  explicit EndpointMetrics(const std::string& endpoint_name);

  obs::Counter& requests;
  obs::Counter& ok;
  obs::Counter& errors;  ///< bad request / not found / internal
  obs::Counter& deadline_exceeded;
  obs::Histogram& latency_ns;  ///< volatile
};

class Endpoint {
 public:
  explicit Endpoint(std::string name);
  virtual ~Endpoint() = default;
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  const std::string& name() const { return name_; }
  EndpointMetrics& metrics() { return metrics_; }

  /// Handles one decoded request.  May throw WireError (mapped to
  /// kBadRequest by the dispatcher); the response id is overwritten
  /// with the request id after the call, so handlers need not echo it.
  virtual Response handle(const Request& req) = 0;

 private:
  std::string name_;
  EndpointMetrics metrics_;
};

class Dispatcher {
 public:
  /// Installs an endpoint under its name; a duplicate name throws
  /// (registration is a startup-time programming error).
  void install(std::unique_ptr<Endpoint> ep);

  /// Routes the request to its endpoint and classifies the result on
  /// the endpoint's metrics.  Unknown endpoint -> kNotFound; handler
  /// WireError -> kBadRequest; other exceptions -> kInternalError.
  Response dispatch(const Request& req);

  Endpoint* find(const std::string& name);
  std::size_t size() const { return endpoints_.size(); }

 private:
  // Ordered map: endpoint iteration order (diagnostics) is name order,
  // never insertion or hash order.
  std::map<std::string, std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace rtr::svc
