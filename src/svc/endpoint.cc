#include "svc/endpoint.h"

#include <stdexcept>
#include <utility>

namespace rtr::svc {

EndpointMetrics::EndpointMetrics(const std::string& endpoint_name)
    : requests(obs::scoped_counter("svc", endpoint_name, "requests")),
      ok(obs::scoped_counter("svc", endpoint_name, "ok")),
      errors(obs::scoped_counter("svc", endpoint_name, "errors")),
      deadline_exceeded(
          obs::scoped_counter("svc", endpoint_name, "deadline_exceeded")),
      latency_ns(obs::scoped_timer("svc", endpoint_name, "latency_ns")) {}

Endpoint::Endpoint(std::string name)
    : name_(std::move(name)), metrics_(name_) {}

void Dispatcher::install(std::unique_ptr<Endpoint> ep) {
  const std::string& name = ep->name();
  if (name.empty() || name.size() > 255) {
    throw std::invalid_argument("svc: endpoint name must be 1..255 bytes");
  }
  if (!endpoints_.emplace(name, std::move(ep)).second) {
    throw std::invalid_argument("svc: duplicate endpoint: " + name);
  }
}

Endpoint* Dispatcher::find(const std::string& name) {
  const auto it = endpoints_.find(name);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

Response Dispatcher::dispatch(const Request& req) {
  Endpoint* ep = find(req.endpoint);
  if (ep == nullptr) {
    Response r;
    r.id = req.id;
    r.status = Status::kNotFound;
    r.message = "unknown endpoint: " + req.endpoint;
    return r;
  }
  EndpointMetrics& m = ep->metrics();
  m.requests.inc();
  Response resp;
  {
    const obs::ScopedTimer timer(m.latency_ns);
    try {
      resp = ep->handle(req);
    } catch (const WireError& e) {
      resp = Response{};
      resp.status = Status::kBadRequest;
      resp.message = e.what();
    } catch (const std::exception& e) {
      resp = Response{};
      resp.status = Status::kInternalError;
      resp.message = e.what();
    }
  }
  resp.id = req.id;
  switch (resp.status) {
    case Status::kOk:
      m.ok.inc();
      break;
    case Status::kDeadlineExceeded:
      m.deadline_exceeded.inc();
      break;
    default:
      m.errors.inc();
  }
  return resp;
}

}  // namespace rtr::svc
