// The long-running recovery-planning server (ROADMAP item 1).
//
// Lifecycle: construct, add_topology() for every AS the operations
// plane may query (each builds the full warm context -- graph, crossing
// index, routing table, base SPTs -- exactly once), start(), then
// submit() encoded request frames.  Admission is a bounded queue:
// try_push either admits the frame or the server immediately answers
// kRejected -- the backlog can never grow without bound.  A worker pool
// drains the queue; stop() closes admission and joins the workers after
// they drain, so every admitted request is answered.
//
// Determinism contract: the response *payload* for a given request
// frame is a byte-identical pure function of (frame, loaded
// topologies), independent of worker count, interleaving, and what
// other requests are in flight.  Shared state is immutable
// (TopologyContext) or compute-once (BaseTreeStore); all mutable
// planning state is request-local (see planner.h).  Completion *order*
// is explicitly not part of the contract -- submit() returns a future
// per request, so callers never depend on it.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph.h"
#include "svc/endpoint.h"
#include "svc/planner.h"
#include "svc/queue.h"

namespace rtr::ledger {
class Journal;
}

namespace rtr::svc {

struct ServerOptions {
  std::size_t workers = 1;  ///< 0 = all hardware threads
  /// Admission-queue capacity; submissions beyond it get kRejected.
  std::size_t queue_capacity = 64;
  PlannerOptions planner;
  /// Crash-durable request journal (rtr::ledger).  Empty -- the default
  /// -- journals nothing and leaves the server byte-identical to a
  /// ledger-free build.  When set, the first start() opens the journal
  /// with a fingerprint over the loaded topology set (names, node and
  /// link counts, in name order) and replays every recovered request
  /// frame through the serve path -- rebuilding the warm BaseTreeStore
  /// caches a restarted process would otherwise lack -- before any
  /// worker thread spawns; after that, every admitted frame is appended
  /// as an EnvelopeRecord (rejected frames are not -- they never touched
  /// the caches).  A journal whose fingerprint contradicts the loaded
  /// topologies refuses to replay loudly (LedgerError from start()).
  std::string ledger_path;
};

class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();  // stop()s if running
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads a topology (builds its warm context now, once).  Only legal
  /// while stopped; a duplicate name throws.
  void add_topology(std::string name, graph::Graph g);

  /// Installs an additional endpoint next to the built-in "plan" and
  /// "info".  Only legal while stopped.
  void install(std::unique_ptr<Endpoint> ep);

  void start();
  /// Closes admission, waits for the workers to drain every admitted
  /// request, and joins them.  Idempotent.
  void stop();
  bool running() const { return !workers_.empty(); }

  /// Submits one encoded request frame.  The future resolves to the
  /// encoded response frame -- immediately with kRejected when the
  /// admission queue is full, otherwise once a worker served it.
  /// Submitting while stopped is allowed: frames queue up (or get
  /// rejected, identically to a running server) and are served after
  /// start() -- which is also how the tests pin rejection counts
  /// deterministically.
  std::future<std::vector<std::uint8_t>> submit(
      std::vector<std::uint8_t> frame);

  /// submit() + wait.  Only call on a running server (a stopped server
  /// would never resolve the future).
  std::vector<std::uint8_t> call(const std::vector<std::uint8_t>& frame);

  const TopologyMap& topologies() const { return topologies_; }
  std::size_t queue_depth() const { return queue_.depth(); }
  const ServerOptions& options() const { return opts_; }

 private:
  struct Job {
    std::vector<std::uint8_t> frame;
    std::promise<std::vector<std::uint8_t>> reply;
  };

  void worker_loop();
  /// Full request->response path: decode, dispatch, encode.  Never
  /// throws; malformed frames become kBadRequest responses.
  std::vector<std::uint8_t> serve(const std::vector<std::uint8_t>& frame);

  ServerOptions opts_;
  TopologyMap topologies_;
  Dispatcher dispatcher_;
  BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;
  /// Opened by the first start() when opts_.ledger_path is set (the
  /// fingerprint needs the final topology set); persists across
  /// stop()/start() cycles so one process appends to one journal.
  std::shared_ptr<ledger::Journal> journal_;
  /// Frames admitted before the first start() (submitting to a stopped
  /// server is legal); journaled right after open, in admission order.
  std::mutex pending_mu_;
  std::vector<std::vector<std::uint8_t>> pending_journal_;
};

}  // namespace rtr::svc
