#include "svc/planner.h"

#include <utility>
#include <vector>

#include "failure/failure_set.h"
#include "svc/deadline.h"

namespace rtr::svc {

namespace {

FlowOutcome map_outcome(core::Outcome o) {
  switch (o) {
    case core::Outcome::kRecovered:
      return FlowOutcome::kRecovered;
    case core::Outcome::kDroppedOnPath:
      return FlowOutcome::kDroppedOnPath;
    case core::Outcome::kDeclaredUnreachable:
      return FlowOutcome::kDeclaredUnreachable;
    case core::Outcome::kInitiatorIsolated:
      return FlowOutcome::kInitiatorIsolated;
  }
  return FlowOutcome::kInitiatorIsolated;
}

Response bad_request(std::string message) {
  Response r;
  r.status = Status::kBadRequest;
  r.message = std::move(message);
  return r;
}

/// Validates every id in the request against the topology before any
/// planning work: one invalid id fails the whole request (the operator
/// sent state for a different topology version; partial answers would
/// mislead).
const char* validate(const PlanRequest& req, const graph::Graph& g) {
  for (NodeId n : req.failed_nodes) {
    if (!g.valid_node(n)) return "failed node id out of range";
  }
  for (LinkId l : req.failed_links) {
    if (l >= g.num_links()) return "failed link id out of range";
  }
  for (const PlanFlow& f : req.flows) {
    if (!g.valid_node(f.initiator)) return "flow initiator out of range";
    if (!g.valid_node(f.dest)) return "flow destination out of range";
    if (f.initiator == f.dest) return "flow initiator equals destination";
  }
  return nullptr;
}

}  // namespace

PlanEndpoint::PlanEndpoint(const TopologyMap& topologies, PlannerOptions opts)
    : Endpoint("plan"), topologies_(&topologies), opts_(opts) {}

Response PlanEndpoint::handle(const Request& req) {
  // A decode failure throws WireError; the dispatcher maps it to
  // kBadRequest.
  const PlanRequest plan = decode_plan_request(req.body);

  const auto topo_it = topologies_->find(plan.topology);
  if (topo_it == topologies_->end()) {
    Response r;
    r.status = Status::kNotFound;
    r.message = "unknown topology: " + plan.topology;
    return r;
  }
  const exp::TopologyContext& ctx = *topo_it->second;

  if (const char* err = validate(plan, ctx.g)) {
    return bad_request(err);
  }

  fail::FailureSet failure(ctx.g);
  for (NodeId n : plan.failed_nodes) failure.add_node(ctx.g, n);
  for (LinkId l : plan.failed_links) failure.add_link(l);

  // Per-request recovery session over the shared immutable context; the
  // shared BaseTreeStore turns each initiator's phase-2 SPT into an
  // incremental repair of the warm base tree.
  core::RtrRecovery recovery(ctx.g, ctx.crossings, ctx.rt, failure,
                             opts_.rtr, &ctx.spf_base);

  SimClock sim(req.deadline_ms, opts_.delay);
  // Phase 1 runs (and is charged) once per initiator per request.
  std::vector<char> phase1_charged(ctx.g.num_nodes(), 0);

  PlanResponse out;
  out.flows_total = static_cast<std::uint32_t>(plan.flows.size());
  bool deadline_hit = false;

  for (const PlanFlow& flow : plan.flows) {
    // Flow boundary: simulated time spent on earlier flows counts
    // against this one starting at all.
    if (sim.expired()) {
      deadline_hit = true;
      break;
    }

    FlowResult fr;
    fr.initiator = flow.initiator;
    fr.dest = flow.dest;

    if (failure.node_failed(flow.initiator)) {
      fr.outcome = FlowOutcome::kInitiatorFailed;
      out.results.push_back(std::move(fr));
      continue;
    }
    if (failure.observed_failed_links(ctx.g, flow.initiator).empty()) {
      // The initiator sees no failed adjacency, so RTR never triggers
      // there; normal IGP forwarding (or convergence) handles the flow.
      fr.outcome = FlowOutcome::kNoFailureObserved;
      out.results.push_back(std::move(fr));
      continue;
    }

    if (!phase1_charged[flow.initiator]) {
      const core::Phase1Result& p1 = recovery.phase1_for(
          flow.initiator, ctx.rt.next_link(flow.initiator, flow.dest));
      sim.charge_hops(p1.hops());
      phase1_charged[flow.initiator] = 1;
      // Phase boundary: the phase-1 traversal may itself blow the
      // budget; phase 2 for this flow then never starts.
      if (sim.expired()) {
        deadline_hit = true;
        break;
      }
    }

    const core::RecoveryResult r =
        recovery.recover(flow.initiator, flow.dest);
    sim.charge_hops(r.delivered_hops);

    fr.outcome = map_outcome(r.outcome);
    fr.sp_calculations = static_cast<std::uint32_t>(r.sp_calculations);
    fr.path_cost = r.computed_path.cost;
    fr.path = r.computed_path.nodes;
    out.results.push_back(std::move(fr));
  }

  out.flows_done = static_cast<std::uint32_t>(out.results.size());
  out.sim_elapsed_us = sim.elapsed_us();

  Response resp;
  resp.status = deadline_hit ? Status::kDeadlineExceeded : Status::kOk;
  if (deadline_hit) {
    resp.message = "deadline exceeded after " +
                   std::to_string(out.flows_done) + "/" +
                   std::to_string(out.flows_total) + " flows";
  }
  resp.body = encode_plan_response(out);
  return resp;
}

InfoEndpoint::InfoEndpoint(const TopologyMap& topologies)
    : Endpoint("info"), topologies_(&topologies) {}

Response InfoEndpoint::handle(const Request& req) {
  const InfoRequest info = decode_info_request(req.body);

  InfoResponse out;
  if (info.topology.empty()) {
    for (const auto& [name, ctx] : *topologies_) {  // name order
      TopologyInfo t;
      t.name = name;
      t.nodes = static_cast<std::uint32_t>(ctx->g.num_nodes());
      t.links = static_cast<std::uint32_t>(ctx->g.num_links());
      out.topologies.push_back(std::move(t));
    }
  } else {
    const auto it = topologies_->find(info.topology);
    if (it == topologies_->end()) {
      Response r;
      r.status = Status::kNotFound;
      r.message = "unknown topology: " + info.topology;
      return r;
    }
    TopologyInfo t;
    t.name = it->first;
    t.nodes = static_cast<std::uint32_t>(it->second->g.num_nodes());
    t.links = static_cast<std::uint32_t>(it->second->g.num_links());
    out.topologies.push_back(std::move(t));
  }

  Response resp;
  resp.status = Status::kOk;
  resp.body = encode_info_response(out);
  return resp;
}

}  // namespace rtr::svc
