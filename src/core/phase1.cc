#include "core/phase1.h"

#include "core/forwarding_rule.h"

namespace rtr::core {

Phase1Result run_phase1(const graph::Graph& g,
                        const graph::CrossingIndex& crossings,
                        const fail::FailureSet& failure, NodeId initiator,
                        LinkId dead_link, const Phase1Options& opts) {
  RTR_EXPECT(g.valid_node(initiator) && g.valid_link(dead_link));
  RTR_EXPECT_MSG(!failure.node_failed(initiator),
                 "a failed router cannot initiate recovery");
  const NodeId dead_neighbor = g.other_end(dead_link, initiator);
  RTR_EXPECT_MSG(failure.link_failed(dead_link) ||
                     failure.node_failed(dead_neighbor),
                 "phase 1 requires an unreachable default next hop");

  const RuleOptions rule{opts.clockwise};
  Phase1Result r;
  r.initiator = initiator;
  r.header.mode = net::Mode::kCollect;
  r.header.rec_init = initiator;
  r.visits.push_back(initiator);

  // Constraint 1 (Section III-C step 1).
  if (opts.constraint1) {
    seed_constraint1(g, crossings, failure, r.header, initiator);
  }

  const Selection first = select_next_hop(g, crossings, failure, r.header,
                                          initiator, dead_neighbor, rule);
  if (!first.found()) {
    r.status = Phase1Result::Status::kInitiatorIsolated;
    return r;
  }
  if (opts.constraint2) maybe_record_cross(crossings, r.header, first.link);

  const std::size_t hop_cap = opts.max_hops_factor * g.num_links() + 16;
  const auto take_hop = [&r](const Selection& sel) {
    r.bytes_per_hop.push_back(r.header.recovery_bytes());
    r.failed_count_per_hop.push_back(r.header.failed_links.size());
    r.cross_count_per_hop.push_back(r.header.cross_links.size());
    r.traversed_links.push_back(sel.link);
  };

  NodeId prev = initiator;
  NodeId cur = first.node;
  take_hop(first);

  while (true) {
    r.visits.push_back(cur);
    Selection sel;
    if (cur == initiator) {
      // Section III-B step 3: re-select; stop when the selection equals
      // the original first hop, otherwise keep forwarding so no node on
      // the cycle is missed.
      sel = select_next_hop(g, crossings, failure, r.header, cur, prev,
                            rule);
      if (sel.found() && sel.link == first.link) {
        r.status = Phase1Result::Status::kCompleted;
        return r;
      }
    } else {
      record_failures(g, failure, r.header, cur);
      sel = select_next_hop(g, crossings, failure, r.header, cur, prev,
                            rule);
    }
    // With both constraints on, the arrival link is always selectable
    // (Theorem 1); an empty selection can only happen in ablation runs.
    if (!sel.found()) {
      r.status = Phase1Result::Status::kAborted;
      return r;
    }
    if (opts.constraint2) maybe_record_cross(crossings, r.header, sel.link);
    if (r.traversed_links.size() >= hop_cap) {
      r.status = Phase1Result::Status::kAborted;
      return r;
    }
    take_hop(sel);
    prev = cur;
    cur = sel.node;
  }
}

}  // namespace rtr::core
