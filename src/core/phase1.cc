#include "core/phase1.h"

#include "core/forwarding_rule.h"
#include "obs/metrics.h"

namespace rtr::core {

namespace {

/// Phase-1 observability: traversal volume, the two constraints'
/// activity (cross links recorded), and how runs end.  All stable --
/// pure functions of (graph, failure, initiator).
struct Phase1Metrics {
  obs::Counter& runs;
  obs::Counter& steps;
  obs::Counter& constraint1_seeded;
  obs::Counter& constraint2_recorded;
  obs::Counter& completed;
  obs::Counter& aborted;
  obs::Counter& isolated;
  obs::Histogram& hops;

  static Phase1Metrics& get() {
    obs::Registry& r = obs::Registry::global();
    // lint:allow(mutable-static) — references into the sharded obs registry
    static Phase1Metrics m{r.counter("rtr.core.phase1.runs"),
                           r.counter("rtr.core.phase1.steps"),
                           r.counter("rtr.core.phase1.constraint1_seeded"),
                           r.counter("rtr.core.phase1.constraint2_recorded"),
                           r.counter("rtr.core.phase1.completed"),
                           r.counter("rtr.core.phase1.aborted"),
                           r.counter("rtr.core.phase1.initiator_isolated"),
                           r.histogram("rtr.core.phase1.hops",
                                       obs::size_bounds())};
    return m;
  }

  void finish(const Phase1Result& r) {
    steps.add(r.hops());
    hops.observe(r.hops());
    switch (r.status) {
      case Phase1Result::Status::kCompleted:
        completed.inc();
        break;
      case Phase1Result::Status::kAborted:
        aborted.inc();
        break;
      case Phase1Result::Status::kInitiatorIsolated:
        isolated.inc();
        break;
    }
  }
};

}  // namespace

Phase1Result run_phase1(const graph::Graph& g,
                        const graph::CrossingIndex& crossings,
                        const fail::FailureSet& failure, NodeId initiator,
                        LinkId dead_link, const Phase1Options& opts) {
  RTR_EXPECT(g.valid_node(initiator) && g.valid_link(dead_link));
  RTR_EXPECT_MSG(!failure.node_failed(initiator),
                 "a failed router cannot initiate recovery");
  const NodeId dead_neighbor = g.other_end(dead_link, initiator);
  RTR_EXPECT_MSG(failure.link_failed(dead_link) ||
                     failure.node_failed(dead_neighbor),
                 "phase 1 requires an unreachable default next hop");

  const RuleOptions rule{opts.clockwise};
  Phase1Metrics& metrics = Phase1Metrics::get();
  metrics.runs.inc();
  Phase1Result r;
  r.initiator = initiator;
  r.header.mode = net::Mode::kCollect;
  r.header.rec_init = initiator;
  r.visits.push_back(initiator);
  // Records traversal volume and final status on every exit path.
  struct Finisher {
    Phase1Metrics& m;
    const Phase1Result& r;
    ~Finisher() { m.finish(r); }
  } finisher{metrics, r};

  // Constraint 1 (Section III-C step 1).
  if (opts.constraint1) {
    seed_constraint1(g, crossings, failure, r.header, initiator);
    metrics.constraint1_seeded.add(r.header.cross_links.size());
  }
  // Constraint-2 hits are observed as growth of the cross_link field.
  const auto record_cross = [&](LinkId link) {
    const std::size_t before = r.header.cross_links.size();
    maybe_record_cross(crossings, r.header, link);
    metrics.constraint2_recorded.add(r.header.cross_links.size() - before);
  };

  const Selection first = select_next_hop(g, crossings, failure, r.header,
                                          initiator, dead_neighbor, rule);
  if (!first.found()) {
    r.status = Phase1Result::Status::kInitiatorIsolated;
    return r;
  }
  if (opts.constraint2) record_cross(first.link);

  const std::size_t hop_cap = opts.max_hops_factor * g.num_links() + 16;
  const auto take_hop = [&r](const Selection& sel) {
    r.bytes_per_hop.push_back(r.header.recovery_bytes());
    r.failed_count_per_hop.push_back(r.header.failed_links.size());
    r.cross_count_per_hop.push_back(r.header.cross_links.size());
    r.traversed_links.push_back(sel.link);
  };

  NodeId prev = initiator;
  NodeId cur = first.node;
  take_hop(first);

  while (true) {
    r.visits.push_back(cur);
    Selection sel;
    if (cur == initiator) {
      // Section III-B step 3: re-select; stop when the selection equals
      // the original first hop, otherwise keep forwarding so no node on
      // the cycle is missed.
      sel = select_next_hop(g, crossings, failure, r.header, cur, prev,
                            rule);
      if (sel.found() && sel.link == first.link) {
        r.status = Phase1Result::Status::kCompleted;
        return r;
      }
    } else {
      record_failures(g, failure, r.header, cur);
      sel = select_next_hop(g, crossings, failure, r.header, cur, prev,
                            rule);
    }
    // With both constraints on, the arrival link is always selectable
    // (Theorem 1); an empty selection can only happen in ablation runs.
    if (!sel.found()) {
      r.status = Phase1Result::Status::kAborted;
      return r;
    }
    if (opts.constraint2) record_cross(sel.link);
    if (r.traversed_links.size() >= hop_cap) {
      r.status = Phase1Result::Status::kAborted;
      return r;
    }
    take_hop(sel);
    prev = cur;
    cur = sel.node;
  }
}

}  // namespace rtr::core
