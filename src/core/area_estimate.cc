#include "core/area_estimate.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"
#include "geom/convex_hull.h"

namespace rtr::core {

AreaEstimate estimate_failure_area(const graph::Graph& g,
                                   const fail::FailureSet& failure,
                                   const Phase1Result& phase1) {
  RTR_EXPECT(phase1.initiator < g.num_nodes());
  AreaEstimate est;
  const auto add_link_midpoint = [&](LinkId l) {
    const geom::Segment s = g.segment(l);
    est.evidence.push_back((s.a + s.b) * 0.5);
  };
  for (LinkId l : phase1.header.failed_links) add_link_midpoint(l);
  if (!failure.node_failed(phase1.initiator)) {
    for (LinkId l : failure.observed_failed_links(g, phase1.initiator)) {
      add_link_midpoint(l);
    }
  }
  if (est.evidence.empty()) return est;

  // Bounding circle around the centroid.
  geom::Point centroid{0, 0};
  for (const geom::Point& p : est.evidence) centroid = centroid + p;
  centroid = centroid * (1.0 / static_cast<double>(est.evidence.size()));
  double radius = 0.0;
  for (const geom::Point& p : est.evidence) {
    radius = std::max(radius, geom::distance(centroid, p));
  }
  est.bounding_circle = geom::Circle{centroid, std::max(radius, 1.0)};

  const std::vector<geom::Point> hull = geom::convex_hull(est.evidence);
  if (hull.size() >= 3) est.hull = geom::Polygon(hull);
  return est;
}

// lint:allow(missing-expect) — pure total function, no precondition to state
double evidence_coverage(const AreaEstimate& estimate,
                         const fail::FailureArea& area) {
  if (estimate.evidence.empty()) return 0.0;
  std::size_t inside = 0;
  for (const geom::Point& p : estimate.evidence) {
    if (area.contains(p)) ++inside;
  }
  return static_cast<double>(inside) /
         static_cast<double>(estimate.evidence.size());
}

}  // namespace rtr::core
