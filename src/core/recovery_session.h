// Bounded-retry recovery driver for fault-mode experiments.
//
// Under an armed rtr::fault::FaultPlan a single recovery attempt can
// fail for reasons the protocol of Sections III-B/D never had to face:
// the collect packet is lost or corrupted in transit, a link dies
// mid-traversal, or the phase-1 hop cap aborts the sweep.
// RecoverySession wraps one (src, dst) flow in the degradation policy:
// wait out the (injected) failure-detection delay, attempt delivery,
// and on a retryable failure re-initiate with the opposite sweep
// orientation under simulated-time exponential backoff, up to a retry
// cap.  Exhaustion is a terminal kUnrecovered outcome the experiment
// layer reports as data -- never an assertion.
//
// All timing flows through net::Simulator; all outcomes are plain
// state.  The session is deterministic given the plan's RNG stream.
#pragma once

#include <cstdint>

#include "core/distributed_rtr.h"
#include "net/network.h"
#include "net/sim.h"

namespace rtr::core {

/// Degradation knobs, mirroring fault::FaultOptions' retry fields.
struct SessionOptions {
  std::uint32_t retry_cap = 3;     ///< max sends (first attempt included)
  double backoff_base_ms = 10.0;   ///< retry i waits base * 2^(i-1) ms
  double detection_delay_ms = 0.0; ///< injected failure-detection lag
  bool first_clockwise = false;    ///< sweep orientation of attempt 1
};

enum class SessionOutcome : std::uint8_t {
  kPending = 0,   ///< not finished yet
  kRecovered,     ///< packet delivered
  kDropped,       ///< RTR declared the destination unreachable
  kUnrecovered,   ///< retry cap exhausted under faults
};

struct SessionResult {
  SessionOutcome outcome = SessionOutcome::kPending;
  std::uint32_t attempts = 0;       ///< sends performed
  std::uint32_t reinitiations = 0;  ///< re-initiated phase-1 sweeps
  std::size_t delivered_hops = 0;   ///< trace hops when kRecovered
  double finished_ms = 0.0;         ///< simulated completion time

  bool done() const { return outcome != SessionOutcome::kPending; }
};

class RecoverySession {
 public:
  /// All references are borrowed and must outlive the session (and the
  /// simulator run that drives it).
  RecoverySession(net::Simulator& sim, net::Network& net,
                  DistributedRtr& app, NodeId src, NodeId dst,
                  SessionOptions opts = {});

  /// Schedules the first attempt detection_delay_ms from now.  Drive
  /// the simulator (sim.run()) to completion afterwards.
  void start();

  const SessionResult& result() const { return result_; }

 private:
  void attempt();
  void finish(SessionOutcome outcome);
  void on_done(const net::DataPacket& p, bool delivered);
  /// Sweep orientation for the (1-based) attempt number: alternates
  /// starting from opts_.first_clockwise.
  bool orientation(std::uint32_t attempt_no) const {
    return (attempt_no % 2 == 0) ? !opts_.first_clockwise
                                 : opts_.first_clockwise;
  }

  net::Simulator* sim_;
  net::Network* net_;
  DistributedRtr* app_;
  NodeId src_;
  NodeId dst_;
  SessionOptions opts_;
  SessionResult result_;
};

}  // namespace rtr::core
