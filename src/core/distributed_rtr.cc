#include "core/distributed_rtr.h"

#include "spf/shortest_path.h"

namespace rtr::core {

DistributedRtr::DistributedRtr(const graph::Graph& g,
                               const graph::CrossingIndex& crossings,
                               const spf::RoutingTable& rt,
                               const fail::FailureSet& failure,
                               Phase1Options opts)
    : g_(&g),
      crossings_(&crossings),
      rt_(&rt),
      failure_(&failure),
      opts_(opts),
      rule_{opts.clockwise} {}

bool DistributedRtr::phase1_complete(NodeId n) const {
  RTR_EXPECT(n < g_->num_nodes());
  const auto it = states_.find(n);
  return it != states_.end() && it->second.complete;
}

const net::RtrHeader& DistributedRtr::collected(NodeId n) const {
  const auto it = states_.find(n);
  RTR_EXPECT_MSG(it != states_.end() && it->second.complete,
                 "router has not completed phase 1");
  return it->second.collected;
}

net::RouterApp::Decision DistributedRtr::on_packet(NodeId at, NodeId prev,
                                                   net::DataPacket& p) {
  RTR_EXPECT(at < g_->num_nodes());
  // Hop cap mirrors the centralized engine's Theorem-1 safety net.
  if (p.trace.size() > opts_.max_hops_factor * g_->num_links() + 32) {
    return Decision::drop();
  }
  switch (p.header.mode) {
    case net::Mode::kDefault:
      return handle_default(at, p);
    case net::Mode::kCollect:
      return handle_collect(at, prev, p);
    case net::Mode::kSourceRoute:
      return handle_source_route(at, p);
  }
  return Decision::drop();
}

net::RouterApp::Decision DistributedRtr::handle_default(
    NodeId at, net::DataPacket& p) {
  if (at == p.dst) return Decision::deliver();
  const LinkId l = rt_->next_link(at, p.dst);
  if (l == kNoLink) return Decision::drop();  // never routable
  const graph::Adjacency a{rt_->next_hop(at, p.dst), l};
  if (!failure_->neighbor_unreachable(a)) return Decision::forward(l);
  // The default next hop is unreachable: this router becomes a
  // recovery initiator (Section II-B).
  return begin_recovery(at, p, l);
}

net::RouterApp::Decision DistributedRtr::begin_recovery(
    NodeId at, net::DataPacket& p, LinkId dead) {
  InitiatorState& st = states_[at];
  if (st.isolated) return Decision::drop();
  if (st.complete) {
    // Phase 1 already ran here; its information benefits every
    // destination (Section III-A).
    return enter_phase2(at, st, p);
  }
  p.header.mode = net::Mode::kCollect;
  p.header.rec_init = at;
  if (opts_.constraint1) {
    seed_constraint1(*g_, *crossings_, *failure_, p.header, at);
  }
  const Selection first =
      select_next_hop(*g_, *crossings_, *failure_, p.header, at,
                      g_->other_end(dead, at), rule_);
  if (!first.found()) {
    st.isolated = true;
    return Decision::drop();
  }
  st.first_link = first.link;
  if (opts_.constraint2) {
    maybe_record_cross(*crossings_, p.header, first.link);
  }
  return Decision::forward(first.link);
}

net::RouterApp::Decision DistributedRtr::handle_collect(
    NodeId at, NodeId prev, net::DataPacket& p) {
  RTR_EXPECT_MSG(prev != kNoNode, "collect-mode packets travel");
  if (at == p.header.rec_init) {
    InitiatorState& st = states_[at];
    const Selection sel = select_next_hop(*g_, *crossings_, *failure_,
                                          p.header, at, prev, rule_);
    if (sel.found() && sel.link == st.first_link) {
      // The packet closed the cycle: phase 1 is complete
      // (Section III-B step 3).  Build this initiator's view and move
      // the very same data packet on to phase 2.
      st.complete = true;
      st.collected = p.header;
      st.view_link_failed.assign(g_->num_links(), 0);
      for (LinkId l : p.header.failed_links) st.view_link_failed[l] = 1;
      for (LinkId l : failure_->observed_failed_links(*g_, at)) {
        st.view_link_failed[l] = 1;
      }
      return enter_phase2(at, st, p);
    }
    if (!sel.found()) return Decision::drop();  // ablation only
    if (opts_.constraint2) {
      maybe_record_cross(*crossings_, p.header, sel.link);
    }
    return Decision::forward(sel.link);
  }
  record_failures(*g_, *failure_, p.header, at);
  const Selection sel = select_next_hop(*g_, *crossings_, *failure_,
                                        p.header, at, prev, rule_);
  if (!sel.found()) return Decision::drop();  // ablation only
  if (opts_.constraint2) {
    maybe_record_cross(*crossings_, p.header, sel.link);
  }
  return Decision::forward(sel.link);
}

net::RouterApp::Decision DistributedRtr::enter_phase2(
    NodeId at, InitiatorState& st, net::DataPacket& p) {
  spf::Path path;
  const auto cached = st.path_cache.find(p.dst);
  if (cached != st.path_cache.end()) {
    path = cached->second;
  } else {
    path = spf::shortest_path(*g_, at, p.dst,
                              {nullptr, &st.view_link_failed});
    st.path_cache.emplace(p.dst, path);
  }
  if (path.empty()) return Decision::drop();  // declared unreachable
  p.header.mode = net::Mode::kSourceRoute;
  p.header.source_route.assign(path.nodes.begin() + 1, path.nodes.end());
  p.route_index = 0;
  return handle_source_route(at, p);
}

net::RouterApp::Decision DistributedRtr::handle_source_route(
    NodeId at, net::DataPacket& p) {
  if (at == p.dst) return Decision::deliver();
  RTR_EXPECT_MSG(p.route_index < p.header.source_route.size(),
                 "source route exhausted before the destination");
  const NodeId next = p.header.source_route[p.route_index];
  const LinkId l = g_->find_link(at, next);
  RTR_EXPECT_MSG(l != kNoLink, "source route uses a non-existent link");
  const graph::Adjacency a{next, l};
  if (failure_->neighbor_unreachable(a)) {
    // Phase 1 missed this failure; RTR simply discards the packet
    // (Section III-D).
    return Decision::drop();
  }
  ++p.route_index;
  return Decision::forward(l);
}

}  // namespace rtr::core
