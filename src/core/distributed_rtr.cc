#include "core/distributed_rtr.h"

#include "obs/metrics.h"
#include "spf/shortest_path.h"

namespace rtr::core {

namespace {
using DropReason = net::DataPacket::DropReason;
}  // namespace

DistributedRtr::DistributedRtr(const graph::Graph& g,
                               const graph::CrossingIndex& crossings,
                               const spf::RoutingTable& rt,
                               const fail::FailureSet& failure,
                               Phase1Options opts)
    : g_(&g),
      crossings_(&crossings),
      rt_(&rt),
      failure_(&failure),
      opts_(opts),
      rule_{opts.clockwise} {}

bool DistributedRtr::phase1_complete(NodeId n) const {
  RTR_EXPECT(n < g_->num_nodes());
  const auto it = states_.find(n);
  return it != states_.end() && it->second.complete;
}

const net::RtrHeader& DistributedRtr::collected(NodeId n) const {
  const auto it = states_.find(n);
  RTR_EXPECT_MSG(it != states_.end() && it->second.complete,
                 "router has not completed phase 1");
  return it->second.collected;
}

net::RouterApp::Decision DistributedRtr::on_packet(NodeId at, NodeId prev,
                                                   net::DataPacket& p) {
  RTR_EXPECT(at < g_->num_nodes());
  if (fault_aware_) {
    // Fault-injected copies carry the (flow, seq) of exactly one
    // arrival of the original; a repeated key is therefore always a
    // duplicate, and legitimate revisits (phase-1 traversals cross a
    // node twice all the time) always carry a fresh seq.
    RTR_EXPECT_MSG(p.header.flow != 0,
                   "fault-aware duplicate suppression needs sequenced "
                   "packets: pair set_fault_aware(true) with a Network "
                   "whose FaultPlan is armed (sequencing_armed())");
    const std::uint64_t key =
        (static_cast<std::uint64_t>(p.header.flow) << 32) | p.header.seq;
    if (!seen_.insert(key).second) {
      static obs::Counter& suppressed =
          obs::Registry::global().counter("rtr.fault.duplicate.suppressed");
      suppressed.inc();
      p.drop_reason = DropReason::kDuplicate;
      return Decision::drop();
    }
  }
  // Hop cap mirrors the centralized engine's Theorem-1 safety net.
  if (p.trace.size() > opts_.max_hops_factor * g_->num_links() + 32) {
    if (p.header.mode == net::Mode::kCollect) {
      // A phase-1 abort in the distributed engine; the recovery
      // session turns this into a re-initiation with the opposite
      // sweep orientation rather than a terminal failure.
      static obs::Counter& aborted =
          obs::Registry::global().counter("rtr.core.distributed.phase1_aborted");
      aborted.inc();
    }
    p.drop_reason = DropReason::kHopCap;
    return Decision::drop();
  }
  switch (p.header.mode) {
    case net::Mode::kDefault:
      return handle_default(at, p);
    case net::Mode::kCollect:
      return handle_collect(at, prev, p);
    case net::Mode::kSourceRoute:
      return handle_source_route(at, p);
  }
  return Decision::drop();
}

net::RouterApp::Decision DistributedRtr::handle_default(
    NodeId at, net::DataPacket& p) {
  if (at == p.dst) return Decision::deliver();
  const LinkId l = rt_->next_link(at, p.dst);
  if (l == kNoLink) {
    p.drop_reason = DropReason::kNeverRoutable;
    return Decision::drop();
  }
  const graph::Adjacency a{rt_->next_hop(at, p.dst), l};
  // A link learned dead via note_link_dead counts as unreachable too:
  // delayed detection has caught up by the time a retry runs.
  if (!failure_->neighbor_unreachable(a) && !dyn_dead(l)) {
    return Decision::forward(l);
  }
  // The default next hop is unreachable: this router becomes a
  // recovery initiator (Section II-B).
  return begin_recovery(at, p, l);
}

net::RouterApp::Decision DistributedRtr::begin_recovery(
    NodeId at, net::DataPacket& p, LinkId dead) {
  InitiatorState& st = states_[at];
  if (st.isolated) {
    p.drop_reason = DropReason::kIsolated;
    return Decision::drop();
  }
  if (st.complete) {
    // Phase 1 already ran here; its information benefits every
    // destination (Section III-A).
    return enter_phase2(at, st, p);
  }
  p.header.mode = net::Mode::kCollect;
  p.header.rec_init = at;
  if (opts_.constraint1) {
    seed_constraint1(*g_, *crossings_, *failure_, p.header, at);
  }
  const Selection first =
      select_next_hop(*g_, *crossings_, *failure_, p.header, at,
                      g_->other_end(dead, at), rule_);
  if (!first.found()) {
    st.isolated = true;
    p.drop_reason = DropReason::kIsolated;
    return Decision::drop();
  }
  st.first_link = first.link;
  if (opts_.constraint2) {
    maybe_record_cross(*crossings_, p.header, first.link);
  }
  return Decision::forward(first.link);
}

net::RouterApp::Decision DistributedRtr::handle_collect(
    NodeId at, NodeId prev, net::DataPacket& p) {
  RTR_EXPECT_MSG(prev != kNoNode, "collect-mode packets travel");
  if (at == p.header.rec_init) {
    InitiatorState& st = states_[at];
    const Selection sel = select_next_hop(*g_, *crossings_, *failure_,
                                          p.header, at, prev, rule_);
    if (sel.found() && sel.link == st.first_link) {
      // The packet closed the cycle: phase 1 is complete
      // (Section III-B step 3).  Build this initiator's view and move
      // the very same data packet on to phase 2.
      st.complete = true;
      st.collected = p.header;
      st.view_link_failed.assign(g_->num_links(), 0);
      for (LinkId l : p.header.failed_links) st.view_link_failed[l] = 1;
      for (LinkId l : failure_->observed_failed_links(*g_, at)) {
        st.view_link_failed[l] = 1;
      }
      if (!dynamic_dead_.empty()) {
        // Links learned dead mid-recovery are part of this initiator's
        // view even though phase 1 could not have recorded them.
        for (LinkId l = 0; l < g_->num_links(); ++l) {
          if (dynamic_dead_[l] != 0) st.view_link_failed[l] = 1;
        }
      }
      return enter_phase2(at, st, p);
    }
    if (!sel.found()) {
      p.drop_reason = DropReason::kNoNextHop;
      return Decision::drop();  // ablation only
    }
    if (opts_.constraint2) {
      maybe_record_cross(*crossings_, p.header, sel.link);
    }
    return Decision::forward(sel.link);
  }
  record_failures(*g_, *failure_, p.header, at);
  const Selection sel = select_next_hop(*g_, *crossings_, *failure_,
                                        p.header, at, prev, rule_);
  if (!sel.found()) {
    p.drop_reason = DropReason::kNoNextHop;
    return Decision::drop();  // ablation only
  }
  if (opts_.constraint2) {
    maybe_record_cross(*crossings_, p.header, sel.link);
  }
  return Decision::forward(sel.link);
}

net::RouterApp::Decision DistributedRtr::enter_phase2(
    NodeId at, InitiatorState& st, net::DataPacket& p) {
  spf::Path path;
  const auto cached = st.path_cache.find(p.dst);
  if (cached != st.path_cache.end()) {
    path = cached->second;
  } else {
    path = spf::shortest_path(*g_, at, p.dst,
                              {nullptr, &st.view_link_failed});
    st.path_cache.emplace(p.dst, path);
  }
  if (path.empty()) {
    p.drop_reason = DropReason::kUnreachable;
    return Decision::drop();
  }
  p.header.mode = net::Mode::kSourceRoute;
  p.header.source_route.assign(path.nodes.begin() + 1, path.nodes.end());
  p.route_index = 0;
  return handle_source_route(at, p);
}

net::RouterApp::Decision DistributedRtr::handle_source_route(
    NodeId at, net::DataPacket& p) {
  if (at == p.dst) return Decision::deliver();
  RTR_EXPECT_MSG(p.route_index < p.header.source_route.size(),
                 "source route exhausted before the destination");
  const NodeId next = p.header.source_route[p.route_index];
  const LinkId l = g_->find_link(at, next);
  RTR_EXPECT_MSG(l != kNoLink, "source route uses a non-existent link");
  const graph::Adjacency a{next, l};
  if (failure_->neighbor_unreachable(a) || dyn_dead(l)) {
    // Phase 1 missed this failure (or the link died after the view was
    // built); RTR simply discards the packet (Section III-D).
    p.drop_reason = DropReason::kRouteDead;
    return Decision::drop();
  }
  ++p.route_index;
  return Decision::forward(l);
}

void DistributedRtr::note_link_dead(LinkId l) {
  RTR_EXPECT(g_->valid_link(l));
  if (dynamic_dead_.empty()) dynamic_dead_.assign(g_->num_links(), 0);
  dynamic_dead_[l] = 1;
}

void DistributedRtr::prepare_retry(NodeId initiator, bool clockwise) {
  RTR_EXPECT(initiator < g_->num_nodes());
  states_.erase(initiator);
  rule_.clockwise = clockwise;
}

}  // namespace rtr::core
