// Phase 1 of RTR: collecting failure information (Sections III-B/C).
//
// Starting at the recovery initiator, the packet is forwarded around
// the failure area with a right-hand rule: the node that received the
// packet from its neighbour takes that link as a sweeping line and
// rotates it counterclockwise until it reaches a live neighbour.  Two
// constraints repair the rule on general (non-planar) graphs:
//   1. the forwarding path must not cross the links between the
//      initiator and its unreachable neighbours;
//   2. the forwarding path must not contain cross links.
// Both are enforced through the cross_link header field: a candidate
// link that properly crosses any recorded link is excluded.  Visited
// nodes record their links to unreachable neighbours (except links
// incident to the initiator) in the failed_link field.  The phase ends
// when the packet returns to the initiator and the initiator's next-hop
// selection equals the original first hop.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "failure/failure_set.h"
#include "graph/crossings.h"
#include "graph/graph.h"
#include "net/header.h"

namespace rtr::core {

struct Phase1Options {
  /// Enforce Constraint 1 (seed cross_link with the initiator's failed
  /// incident links that cross other links).  Off only for ablation.
  bool constraint1 = true;
  /// Enforce Constraint 2 (record a selected link that is crossed by a
  /// not-yet-excluded link).  Off only for ablation.
  bool constraint2 = true;
  /// Sweep clockwise instead of counterclockwise (orientation ablation;
  /// either consistent orientation encloses the area).
  bool clockwise = false;
  /// Safety cap: abort after max_hops_factor * |E| + 16 hops.  Theorem 1
  /// says the cap is never reached when both constraints are on; the
  /// property tests assert exactly that.
  std::size_t max_hops_factor = 8;
};

struct Phase1Result {
  enum class Status {
    kCompleted,          ///< traversal closed back at the initiator
    kInitiatorIsolated,  ///< the initiator has no live neighbour
    kAborted,            ///< hop cap hit (only possible in ablations)
  };

  Status status = Status::kAborted;
  NodeId initiator = kNoNode;

  /// Node sequence: visits.front() == initiator; when completed, the
  /// last entry is the initiator again.
  std::vector<NodeId> visits;
  /// Links traversed, in order; traversed_links.size()+1 == visits.size().
  std::vector<LinkId> traversed_links;
  /// Recovery-header bytes carried while traversing each hop (after the
  /// sender's insertions) -- the Fig. 10 byte series.
  std::vector<std::size_t> bytes_per_hop;
  /// Number of failed_link / cross_link entries carried on each hop;
  /// with the insertion-ordered lists in `header`, these prefix sizes
  /// reproduce the per-hop field contents of Table I exactly.
  std::vector<std::size_t> failed_count_per_hop;
  std::vector<std::size_t> cross_count_per_hop;
  /// Final header: failed_link and cross_link field contents in
  /// insertion order (the Table I columns).
  net::RtrHeader header;

  std::size_t hops() const { return traversed_links.size(); }
  bool completed() const { return status == Status::kCompleted; }
};

/// Runs phase 1 at `initiator` whose default next hop over `dead_link`
/// is unreachable.  Requires: initiator live and an endpoint of
/// dead_link, and dead_link observed failed by the initiator.
Phase1Result run_phase1(const graph::Graph& g,
                        const graph::CrossingIndex& crossings,
                        const fail::FailureSet& failure, NodeId initiator,
                        LinkId dead_link, const Phase1Options& opts = {});

}  // namespace rtr::core
