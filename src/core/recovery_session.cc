#include "core/recovery_session.h"

#include <utility>

#include "obs/metrics.h"

namespace rtr::core {

namespace {
using DropReason = net::DataPacket::DropReason;
using TransitFault = net::DataPacket::TransitFault;
}  // namespace

RecoverySession::RecoverySession(net::Simulator& sim, net::Network& net,
                                 DistributedRtr& app, NodeId src,
                                 NodeId dst, SessionOptions opts)
    : sim_(&sim),
      net_(&net),
      app_(&app),
      src_(src),
      dst_(dst),
      opts_(opts) {
  RTR_EXPECT_MSG(opts_.retry_cap >= 1, "at least one attempt");
  RTR_EXPECT(opts_.backoff_base_ms >= 0.0 &&
             opts_.detection_delay_ms >= 0.0);
}

void RecoverySession::start() {
  RTR_EXPECT_MSG(!result_.done(), "session already finished");
  RTR_EXPECT(result_.attempts == 0);
  app_->prepare_retry(src_, orientation(1));
  sim_->after(opts_.detection_delay_ms, [this] { attempt(); });
}

void RecoverySession::attempt() {
  ++result_.attempts;
  static obs::Counter& attempts = obs::Registry::global().counter("rtr.core.retry.attempts");
  attempts.inc();
  // Earlier flows are fully settled by now -- injected copies live one
  // hop and this event was scheduled after the last disposition -- so
  // their suppression keys can be dropped.  Without this the shared
  // app's key set would grow with every arrival of every case.
  app_->begin_flow();
  net::DataPacket p;
  p.src = src_;
  p.dst = dst_;
  net_->send(std::move(p), *app_,
             [this](const net::DataPacket& pkt, NodeId /*final_node*/,
                    bool delivered) { on_done(pkt, delivered); });
}

void RecoverySession::finish(SessionOutcome outcome) {
  result_.outcome = outcome;
  result_.finished_ms = sim_->now();
}

void RecoverySession::on_done(const net::DataPacket& p, bool delivered) {
  RTR_EXPECT_MSG(!result_.done(), "one disposition per attempt");
  if (delivered) {
    result_.delivered_hops = p.trace.size() - 1;
    finish(SessionOutcome::kRecovered);
    return;
  }
  // Terminal protocol verdicts: retrying cannot change them.  An
  // isolated initiator has no live neighbour, a never-routable or
  // view-unreachable destination stays that way (the view only grows
  // dead links), and a duplicate's fate is its original's.
  if (p.drop_reason == DropReason::kIsolated ||
      p.drop_reason == DropReason::kNeverRoutable ||
      p.drop_reason == DropReason::kUnreachable) {
    finish(SessionOutcome::kDropped);
    return;
  }
  // A dynamic link death is the one failure the app can learn from:
  // fold it into the app's view so the retry routes around it.
  if (p.transit_fault == TransitFault::kLinkDied) {
    RTR_EXPECT(p.fault_link != kNoLink);
    app_->note_link_dead(p.fault_link);
  }
  if (result_.attempts >= opts_.retry_cap) {
    static obs::Counter& exhausted =
        obs::Registry::global().counter("rtr.core.retry.exhausted");
    exhausted.inc();
    finish(SessionOutcome::kUnrecovered);
    return;
  }
  // Retryable: loss/corruption in transit, a hop-cap abort, a phase-1
  // dead end or a source route over a missed failure.  Re-initiate
  // with the opposite sweep orientation (the clockwise ablation doubles
  // as a fallback) after simulated-time exponential backoff.
  const NodeId initiator =
      p.header.rec_init != kNoNode ? p.header.rec_init : src_;
  app_->prepare_retry(initiator, orientation(result_.attempts + 1));
  ++result_.reinitiations;
  static obs::Counter& reinitiated =
      obs::Registry::global().counter("rtr.core.retry.reinitiated");
  reinitiated.inc();
  double backoff_ms = opts_.backoff_base_ms;
  for (std::uint32_t i = 1; i < result_.attempts; ++i) backoff_ms *= 2.0;
  sim_->after(backoff_ms, [this] { attempt(); });
}

}  // namespace rtr::core
