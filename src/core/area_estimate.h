// Failure-region estimation from collected failure information.
//
// An extension beyond the paper's protocol: the recovery initiator
// knows the coordinates of every router (Section II-A) and, after
// phase 1, a set of failed links.  The midpoints of those links (plus
// its own observed failed links) bracket the disaster; their convex
// hull, optionally dilated, estimates the failure region.  Useful for
// operator diagnostics ("where did the disaster strike?") and for the
// SVG visualisations; nothing in the recovery path computation depends
// on it -- RTR deliberately makes no assumption about the area's shape
// or location.
#pragma once

#include <optional>

#include "core/phase1.h"
#include "failure/failure_set.h"
#include "geom/circle.h"
#include "geom/polygon.h"
#include "graph/graph.h"

namespace rtr::core {

struct AreaEstimate {
  /// Convex hull of the evidence (empty optional when fewer than three
  /// non-collinear evidence points exist).
  std::optional<geom::Polygon> hull;
  /// Smallest circle centred at the evidence centroid covering all
  /// evidence points (always available with >= 1 point).
  std::optional<geom::Circle> bounding_circle;
  /// The evidence: midpoints of known-failed links.
  std::vector<geom::Point> evidence;
};

/// Estimates the failure region from a completed phase 1: evidence is
/// the midpoint of every collected failed link plus the initiator's own
/// observed failed links.
AreaEstimate estimate_failure_area(const graph::Graph& g,
                                   const fail::FailureSet& failure,
                                   const Phase1Result& phase1);

/// Fraction of the evidence points of `estimate` that a candidate
/// ground-truth area contains (diagnostic quality metric; the evidence
/// always sits on failed links, so a correct area scores 1 under the
/// geometric link-cut rule up to midpoints of endpoint-dead links).
double evidence_coverage(const AreaEstimate& estimate,
                         const fail::FailureArea& area);

}  // namespace rtr::core
