// The phase-1 forwarding rule (Sections III-B/C), factored out so that
// the centralized traversal engine (phase1.cc) and the event-driven
// distributed router (distributed_rtr.cc) execute the *same* rule and
// cannot diverge.
#pragma once

#include "common/types.h"
#include "failure/failure_set.h"
#include "graph/crossings.h"
#include "graph/graph.h"
#include "net/header.h"

namespace rtr::core {

/// Result of a next-hop selection.
struct Selection {
  NodeId node = kNoNode;
  LinkId link = kNoLink;
  bool found() const { return node != kNoNode; }
};

/// Options steering the rule; mirrors Phase1Options' relevant knobs.
struct RuleOptions {
  bool clockwise = false;
};

/// True when candidate link l is excluded: it properly crosses some
/// link recorded in the header's cross_link field (Section III-C).
bool link_excluded(const graph::CrossingIndex& crossings,
                   const net::RtrHeader& header, LinkId l);

/// The right-hand rule: `at` takes the direction towards `ref` (its
/// previous hop, or the unreachable default next hop at the initiator)
/// as the sweeping line and rotates it counterclockwise until reaching
/// a live, non-excluded neighbour.  Exact angular ties resolve to the
/// smaller node id.
Selection select_next_hop(const graph::Graph& g,
                          const graph::CrossingIndex& crossings,
                          const fail::FailureSet& failure,
                          const net::RtrHeader& header, NodeId at,
                          NodeId ref, const RuleOptions& opts = {});

/// Constraint 1 seeding at the recovery initiator: each of its links
/// to unreachable neighbours that crosses other links is recorded in
/// cross_link (Section III-C step 1).
void seed_constraint1(const graph::Graph& g,
                      const graph::CrossingIndex& crossings,
                      const fail::FailureSet& failure,
                      net::RtrHeader& header, NodeId initiator);

/// Constraint 2 recording: after selecting `chosen`, record it in
/// cross_link when some link across it is not yet excluded
/// (Section III-C step 2).
void maybe_record_cross(const graph::CrossingIndex& crossings,
                        net::RtrHeader& header, LinkId chosen);

/// Failed-link recording at a visited node (Section III-B step 2): one
/// entry per unreachable neighbour, skipping links incident to the
/// recovery initiator.
void record_failures(const graph::Graph& g,
                     const fail::FailureSet& failure,
                     net::RtrHeader& header, NodeId at);

}  // namespace rtr::core
