#include "core/rtr.h"

#include "obs/metrics.h"
#include "spf/shortest_path.h"

namespace rtr::core {

// lint:allow(missing-expect) — total switch over the Outcome enum
const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kRecovered:
      return "recovered";
    case Outcome::kDroppedOnPath:
      return "dropped-on-path";
    case Outcome::kDeclaredUnreachable:
      return "declared-unreachable";
    case Outcome::kInitiatorIsolated:
      return "initiator-isolated";
  }
  return "?";
}

RtrRecovery::RtrRecovery(const graph::Graph& g,
                         const graph::CrossingIndex& crossings,
                         const spf::RoutingTable& rt,
                         const fail::FailureSet& failure, RtrOptions opts,
                         const spf::BaseTreeStore* base_trees)
    : g_(&g),
      crossings_(&crossings),
      rt_(&rt),
      failure_(&failure),
      opts_(opts),
      base_trees_(base_trees) {
  RTR_EXPECT(base_trees_ == nullptr ||
             base_trees_->algorithm() == spf::SpfAlgorithm::kDijkstra);
}

RtrRecovery::InitiatorState& RtrRecovery::state_for(NodeId initiator,
                                                    LinkId dead_hint) {
  auto it = states_.find(initiator);
  if (it != states_.end()) return it->second;

  // First use of this initiator: run phase 1 once (Section III-A: the
  // first phase "needs to run only once at a recovery initiator and can
  // benefit all destinations").  The sweeping line starts at the dead
  // link that triggered recovery.
  const std::vector<LinkId> observed =
      failure_->observed_failed_links(*g_, initiator);
  RTR_EXPECT_MSG(!observed.empty(),
                 "an initiator must have an unreachable neighbour");
  LinkId dead = observed.front();
  if (dead_hint != kNoLink) {
    for (LinkId l : observed) {
      if (l == dead_hint) dead = dead_hint;
    }
  }
  InitiatorState st;
  st.phase1 = run_phase1(*g_, *crossings_, *failure_, initiator, dead,
                         opts_.phase1);
  // The initiator's view: collected failures plus local knowledge.
  st.view_link_failed.assign(g_->num_links(), 0);
  for (LinkId l : st.phase1.header.failed_links) st.view_link_failed[l] = 1;
  for (LinkId l : observed) st.view_link_failed[l] = 1;
  return states_.emplace(initiator, std::move(st)).first->second;
}

const Phase1Result& RtrRecovery::phase1_for(NodeId initiator) {
  RTR_EXPECT(initiator < g_->num_nodes());
  return state_for(initiator).phase1;
}

const Phase1Result& RtrRecovery::phase1_for(NodeId initiator,
                                            LinkId dead_hint) {
  RTR_EXPECT(initiator < g_->num_nodes());
  return state_for(initiator, dead_hint).phase1;
}

RecoveryResult RtrRecovery::recover(NodeId initiator, NodeId dest) {
  RTR_EXPECT(g_->valid_node(initiator) && g_->valid_node(dest));
  RTR_EXPECT(initiator != dest);
  RTR_EXPECT_MSG(!failure_->node_failed(initiator), "initiator failed");
  InitiatorState& st = state_for(initiator, rt_->next_link(initiator, dest));
  return recover_in_view(st, initiator, dest, nullptr);
}

RecoveryResult RtrRecovery::recover_in_view(
    InitiatorState& st, NodeId initiator, NodeId dest,
    const std::vector<char>* extra_failed) {
  static obs::Counter& attempts =
      obs::Registry::global().counter("rtr.core.recovery_attempts");
  static obs::Counter& path_cache_hits =
      obs::Registry::global().counter("rtr.core.path_cache_hits");
  attempts.inc();
  RecoveryResult r;
  r.initiator = initiator;
  r.destination = dest;

  if (st.phase1.status == Phase1Result::Status::kInitiatorIsolated) {
    r.outcome = Outcome::kInitiatorIsolated;
    // Even a completely cut-off initiator computes once on its local
    // view to learn that no route exists (the paper's wasted
    // computation for RTR is exactly 1 in every irrecoverable case).
    r.sp_calculations = 1;
    return r;
  }

  // Phase 2: shortest path in the initiator's view.
  spf::Path path;
  if (extra_failed == nullptr) {
    const auto cached = st.path_cache.find(dest);
    if (cached != st.path_cache.end()) {
      path_cache_hits.inc();
      path = cached->second;
    } else {
      if (!st.spt) {
        // One SPT serves every destination of this initiator; the
        // paper's metric counts one calculation per destination
        // (Section III-D caches per-destination recovery paths).
        if (base_trees_ != nullptr) {
          st.spt = spf::repair_spt(*g_, base_trees_->from(initiator),
                                   {nullptr, &st.view_link_failed},
                                   spf::SpfAlgorithm::kDijkstra,
                                   opts_.batch_repair);
        } else {
          st.spt = std::make_shared<const spf::SptResult>(spf::dijkstra_from(
              *g_, initiator, {nullptr, &st.view_link_failed}));
        }
      }
      path = spf::extract_path(*g_, *st.spt, dest);
      st.path_cache.emplace(dest, path);
    }
  } else {
    // Multi-area leg: the view also excludes the failures carried in
    // the packet header from earlier legs; not cached.
    std::vector<char> combined = st.view_link_failed;
    for (LinkId l = 0; l < g_->link_count(); ++l) {
      if ((*extra_failed)[l]) combined[l] = 1;
    }
    path = spf::shortest_path(*g_, initiator, dest, {nullptr, &combined});
  }
  r.sp_calculations = 1;
  r.computed_path = path;

  if (path.empty()) {
    r.outcome = Outcome::kDeclaredUnreachable;
    return r;
  }
  r.source_route_bytes = kWireIdBytes * path.hops();

  // Walk the source route against ground truth; phase 1 may have missed
  // failures (E1 is a subset of E2), in which case the packet is
  // discarded where the failure is detected (Section III-D).
  for (std::size_t i = 0; i < path.links.size(); ++i) {
    if (failure_->link_failed(path.links[i])) {
      r.outcome = Outcome::kDroppedOnPath;
      r.delivered_hops = i;
      return r;
    }
  }
  r.outcome = Outcome::kRecovered;
  r.delivered_hops = path.hops();
  return r;
}

RtrRecovery::MultiResult RtrRecovery::recover_multi(NodeId initiator,
                                                    NodeId dest,
                                                    std::size_t max_legs) {
  RTR_EXPECT(max_legs >= 1);
  MultiResult mr;
  std::vector<char> carried(g_->num_links(), 0);
  NodeId cur = initiator;
  LinkId dead_hint = rt_->next_link(initiator, dest);
  for (std::size_t leg = 0; leg < max_legs; ++leg) {
    InitiatorState& st = state_for(cur, dead_hint);
    RecoveryResult r = recover_in_view(st, cur, dest,
                                       leg == 0 ? nullptr : &carried);
    mr.legs.push_back(r);
    mr.outcome = r.outcome;
    mr.total_delivered_hops += r.delivered_hops;
    if (r.outcome != Outcome::kDroppedOnPath) return mr;
    // The packet header carries everything this initiator knew
    // (Section III-E): the next initiator removes those links too.
    for (LinkId l = 0; l < g_->link_count(); ++l) {
      if (st.view_link_failed[l]) carried[l] = 1;
    }
    dead_hint = r.computed_path.links[r.delivered_hops];
    carried[dead_hint] = 1;
    cur = r.computed_path.nodes[r.delivered_hops];
  }
  return mr;
}

}  // namespace rtr::core
