// RTR: Reactive Two-phase Rerouting (the paper's contribution).
//
// RtrRecovery models one live router acting as a recovery initiator
// during IGP convergence (Section II-B): phase 1 collects failure
// information once per initiator (cached -- "can benefit all
// destinations"), phase 2 removes the collected failed links from the
// initiator's view of the topology, computes the shortest path to the
// destination and source-routes packets along it.  The computed path is
// then walked against ground truth: if phase 1 missed a failure on it,
// the packet is discarded where the failure is detected (Section III-D).
#pragma once

#include <memory>
#include <unordered_map>

#include "common/types.h"
#include "core/phase1.h"
#include "failure/failure_set.h"
#include "graph/crossings.h"
#include "graph/graph.h"
#include "spf/batch_repair.h"
#include "spf/path.h"
#include "spf/routing_table.h"
#include "spf/shortest_path.h"

namespace rtr::core {

struct RtrOptions {
  Phase1Options phase1;
  /// Tuning for the batch-repair engine; only read when the recovery is
  /// constructed with a BaseTreeStore (incremental phase 2).
  spf::BatchRepairOptions batch_repair;
};

/// How one recovery attempt ended.
enum class Outcome {
  kRecovered,           ///< packet delivered over the computed path
  kDroppedOnPath,       ///< computed path hit a failure phase 1 missed
  kDeclaredUnreachable, ///< initiator's view has no path: drop at once
  kInitiatorIsolated,   ///< initiator has no live neighbour at all
};

const char* to_string(Outcome o);

struct RecoveryResult {
  Outcome outcome = Outcome::kInitiatorIsolated;
  NodeId initiator = kNoNode;
  NodeId destination = kNoNode;

  /// Shortest-path calculations performed for this test case.  RTR
  /// computes once per destination (Fig. 9 / Fig. 12: always 1 for a
  /// non-isolated initiator).
  std::size_t sp_calculations = 0;

  /// Path computed in the initiator's view; empty when unreachable.
  spf::Path computed_path;
  /// Hops actually traveled in phase 2 before delivery or discard.
  std::size_t delivered_hops = 0;
  /// Recovery bytes carried by phase-2 packets (source route).
  std::size_t source_route_bytes = 0;

  bool recovered() const { return outcome == Outcome::kRecovered; }
};

class RtrRecovery {
 public:
  /// All arguments are borrowed and must outlive the object.  When
  /// `base_trees` is non-null (it must hold kDijkstra trees of the
  /// undamaged graph), phase 2 derives the initiator's SPT by batch
  /// repair of the shared base instead of a fresh Dijkstra -- the
  /// Section III-D incremental recomputation.  Both produce
  /// bit-identical trees (enforced by tests/prop/).
  RtrRecovery(const graph::Graph& g, const graph::CrossingIndex& crossings,
              const spf::RoutingTable& rt, const fail::FailureSet& failure,
              RtrOptions opts = {},
              const spf::BaseTreeStore* base_trees = nullptr);

  /// Recovers traffic at `initiator` towards `dest`.  Requires a live
  /// initiator whose default next hop towards dest is unreachable.
  RecoveryResult recover(NodeId initiator, NodeId dest);

  /// The cached phase-1 run of an initiator (executed on first use).
  const Phase1Result& phase1_for(NodeId initiator);

  /// As above, but a first-use phase 1 starts its sweeping line at
  /// `dead_hint` when that link is among the initiator's observed
  /// failures -- the same hint recover() derives from the routing
  /// table.  Lets a caller (the svc planner) run and account for
  /// phase 1 *before* phase 2 without perturbing what a later
  /// recover() to the same destination would have computed.
  const Phase1Result& phase1_for(NodeId initiator, LinkId dead_hint);

  /// Multi-area extension (Section III-E): when the phase-2 packet is
  /// dropped at a live router, that router becomes a new initiator that
  /// inherits the failure information already in the packet header.
  struct MultiResult {
    Outcome outcome = Outcome::kInitiatorIsolated;
    std::vector<RecoveryResult> legs;  ///< one entry per initiator
    std::size_t total_delivered_hops = 0;
  };
  MultiResult recover_multi(NodeId initiator, NodeId dest,
                            std::size_t max_legs = 8);

  const RtrOptions& options() const { return opts_; }

 private:
  struct InitiatorState {
    Phase1Result phase1;
    /// The initiator's post-phase-1 view: links believed failed
    /// (collected + locally observed).
    std::vector<char> view_link_failed;
    /// Lazily built SPT from the initiator in that view (shared with
    /// the base store when repair finds nothing to do).
    std::shared_ptr<const spf::SptResult> spt;
    /// Cached recovery paths per destination (Section III-D: "by
    /// caching the recovery paths, the recovery initiator needs to
    /// calculate the shortest path only once for each destination").
    std::unordered_map<NodeId, spf::Path> path_cache;
  };

  /// Finds or creates the per-initiator state; on first use phase 1 is
  /// triggered over `dead_hint` (the unreachable default next hop link
  /// of the destination that detected the failure) when it is one of
  /// the initiator's observed failures, else over the first observed
  /// failed link.
  InitiatorState& state_for(NodeId initiator, LinkId dead_hint = kNoLink);
  RecoveryResult recover_in_view(InitiatorState& st, NodeId initiator,
                                 NodeId dest,
                                 const std::vector<char>* extra_failed);

  const graph::Graph* g_;
  const graph::CrossingIndex* crossings_;
  const spf::RoutingTable* rt_;
  const fail::FailureSet* failure_;
  RtrOptions opts_;
  const spf::BaseTreeStore* base_trees_;
  std::unordered_map<NodeId, InitiatorState> states_;
};

}  // namespace rtr::core
