#include "core/forwarding_rule.h"

#include "common/expect.h"
#include "geom/angle.h"

namespace rtr::core {

bool link_excluded(const graph::CrossingIndex& crossings,
                   const net::RtrHeader& header, LinkId l) {
  RTR_EXPECT(l != kNoLink);
  for (LinkId c : header.cross_links) {
    if (crossings.cross(l, c)) return true;
  }
  return false;
}

Selection select_next_hop(const graph::Graph& g,
                          const graph::CrossingIndex& crossings,
                          const fail::FailureSet& failure,
                          const net::RtrHeader& header, NodeId at,
                          NodeId ref, const RuleOptions& opts) {
  RTR_EXPECT(at < g.num_nodes() && ref < g.num_nodes());
  const geom::Point origin = g.position(at);
  const geom::Point sweep = g.position(ref) - origin;
  Selection best;
  double best_angle = 0.0;
  for (const graph::Adjacency& a : g.neighbors(at)) {
    if (failure.neighbor_unreachable(a)) continue;
    if (link_excluded(crossings, header, a.link)) continue;
    const geom::Point dir = g.position(a.neighbor) - origin;
    const double angle = opts.clockwise ? geom::cw_angle(sweep, dir)
                                        : geom::ccw_angle(sweep, dir);
    // Smaller rotation wins; exact ties (collinear neighbours) resolve
    // to the smaller node id for determinism.
    if (!best.found() || angle < best_angle ||
        (angle == best_angle && a.neighbor < best.node)) {
      best = {a.neighbor, a.link};
      best_angle = angle;
    }
  }
  return best;
}

void seed_constraint1(const graph::Graph& g,
                      const graph::CrossingIndex& crossings,
                      const fail::FailureSet& failure,
                      net::RtrHeader& header, NodeId initiator) {
  RTR_EXPECT(initiator < g.num_nodes());
  for (const graph::Adjacency& a : g.neighbors(initiator)) {
    if (failure.neighbor_unreachable(a) &&
        !crossings.crossing(a.link).empty()) {
      header.add_cross(a.link);
    }
  }
}

void maybe_record_cross(const graph::CrossingIndex& crossings,
                        net::RtrHeader& header, LinkId chosen) {
  RTR_EXPECT(chosen != kNoLink);
  for (LinkId l : crossings.crossing(chosen)) {
    if (!link_excluded(crossings, header, l)) {
      header.add_cross(chosen);
      return;
    }
  }
}

void record_failures(const graph::Graph& g, const fail::FailureSet& failure,
                     net::RtrHeader& header, NodeId at) {
  RTR_EXPECT(at < g.num_nodes());
  for (const graph::Adjacency& a : g.neighbors(at)) {
    if (a.neighbor == header.rec_init) continue;
    if (failure.neighbor_unreachable(a)) header.add_failed(a.link);
  }
}

}  // namespace rtr::core
