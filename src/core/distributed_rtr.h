// RTR as a distributed per-router protocol over the event simulator.
//
// DistributedRtr is a net::RouterApp: each on_packet() call performs
// exactly one router's action of Sections III-B/C/D -- default
// forwarding, becoming a recovery initiator, one step of the phase-1
// traversal (record failures, apply the right-hand rule with both
// constraints), or source-routed phase-2 forwarding.  It shares the
// forwarding rule implementation with the centralized engine
// (core/forwarding_rule.h), and tests/test_distributed.cc proves the
// two produce identical traversals, headers and outcomes -- the
// centralized RtrRecovery is then just the fast path for experiments.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/forwarding_rule.h"
#include "core/phase1.h"
#include "net/network.h"
#include "spf/routing_table.h"

namespace rtr::core {

class DistributedRtr : public net::RouterApp {
 public:
  DistributedRtr(const graph::Graph& g,
                 const graph::CrossingIndex& crossings,
                 const spf::RoutingTable& rt,
                 const fail::FailureSet& failure,
                 Phase1Options opts = {});

  Decision on_packet(NodeId at, NodeId prev,
                     net::DataPacket& p) override;

  /// True when router n has completed phase 1 (i.e. acted as a
  /// recovery initiator and collected failure information).
  bool phase1_complete(NodeId n) const;

  /// The failure information router n collected (requires
  /// phase1_complete(n)).
  const net::RtrHeader& collected(NodeId n) const;

  // --- fault-mode degradation machinery (rtr::fault) -----------------
  // All of it is inert until set_fault_aware(true); the fault-free
  // paths are byte-identical with it off.

  /// Arms duplicate suppression via the (flow, seq) pair the Network
  /// stamps on every packet when a FaultPlan is active.  Requires a
  /// Network whose sequencing_armed() is true: an unsequenced packet
  /// (flow 0) arriving while fault-aware trips a contract check, since
  /// suppressing on unstamped keys would falsely eat live packets.
  void set_fault_aware(bool on) { fault_aware_ = on; }

  /// Forgets the duplicate-suppression keys of earlier flows, bounding
  /// their memory to one flow's arrivals.  Safe whenever no packet of
  /// an earlier flow can still be in flight: an injected copy lives
  /// exactly one hop (it is suppressed at its first arrival, whose key
  /// the original inserted one event earlier), so any event scheduled
  /// after a flow's final disposition runs after its last copy.
  /// core::RecoverySession calls this at the start of every attempt.
  void begin_flow() { seen_.clear(); }

  /// Duplicate-suppression keys currently retained (tests pin down
  /// that begin_flow() keeps this bounded across sessions).
  std::size_t sequencing_keys() const { return seen_.size(); }

  /// Records that link l died mid-recovery (reported by the transit
  /// layer as TransitFault::kLinkDied).  Future default forwarding
  /// treats it as an unreachable next hop, source routes over it are
  /// discarded as kRouteDead, and completed phase-1 views exclude it.
  void note_link_dead(LinkId l);

  /// Resets the initiator's recovery state for a bounded retry: drops
  /// any InitiatorState at `initiator` (stale phase-1 progress must not
  /// leak into the next attempt) and re-orients the phase-1 sweep.
  void prepare_retry(NodeId initiator, bool clockwise);

 private:
  /// Per-router recovery state, created when the router becomes a
  /// recovery initiator.
  struct InitiatorState {
    bool complete = false;
    bool isolated = false;
    LinkId first_link = kNoLink;
    net::RtrHeader collected;            ///< final phase-1 header
    std::vector<char> view_link_failed;  ///< post-phase-1 view
    std::unordered_map<NodeId, spf::Path> path_cache;
  };

  Decision handle_default(NodeId at, net::DataPacket& p);
  Decision handle_collect(NodeId at, NodeId prev, net::DataPacket& p);
  Decision handle_source_route(NodeId at, net::DataPacket& p);
  Decision begin_recovery(NodeId at, net::DataPacket& p, LinkId dead);
  Decision enter_phase2(NodeId at, InitiatorState& st,
                        net::DataPacket& p);
  /// True when the app has learned (note_link_dead) that l is dead.
  bool dyn_dead(LinkId l) const {
    return !dynamic_dead_.empty() && dynamic_dead_[l] != 0;
  }

  const graph::Graph* g_;
  const graph::CrossingIndex* crossings_;
  const spf::RoutingTable* rt_;
  const fail::FailureSet* failure_;
  Phase1Options opts_;
  RuleOptions rule_;
  std::unordered_map<NodeId, InitiatorState> states_;
  bool fault_aware_ = false;
  std::vector<char> dynamic_dead_;  ///< lazily sized; empty = none dead
  std::unordered_set<std::uint64_t> seen_;  ///< (flow << 32) | seq
};

}  // namespace rtr::core
