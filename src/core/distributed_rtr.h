// RTR as a distributed per-router protocol over the event simulator.
//
// DistributedRtr is a net::RouterApp: each on_packet() call performs
// exactly one router's action of Sections III-B/C/D -- default
// forwarding, becoming a recovery initiator, one step of the phase-1
// traversal (record failures, apply the right-hand rule with both
// constraints), or source-routed phase-2 forwarding.  It shares the
// forwarding rule implementation with the centralized engine
// (core/forwarding_rule.h), and tests/test_distributed.cc proves the
// two produce identical traversals, headers and outcomes -- the
// centralized RtrRecovery is then just the fast path for experiments.
#pragma once

#include <unordered_map>

#include "core/forwarding_rule.h"
#include "core/phase1.h"
#include "net/network.h"
#include "spf/routing_table.h"

namespace rtr::core {

class DistributedRtr : public net::RouterApp {
 public:
  DistributedRtr(const graph::Graph& g,
                 const graph::CrossingIndex& crossings,
                 const spf::RoutingTable& rt,
                 const fail::FailureSet& failure,
                 Phase1Options opts = {});

  Decision on_packet(NodeId at, NodeId prev,
                     net::DataPacket& p) override;

  /// True when router n has completed phase 1 (i.e. acted as a
  /// recovery initiator and collected failure information).
  bool phase1_complete(NodeId n) const;

  /// The failure information router n collected (requires
  /// phase1_complete(n)).
  const net::RtrHeader& collected(NodeId n) const;

 private:
  /// Per-router recovery state, created when the router becomes a
  /// recovery initiator.
  struct InitiatorState {
    bool complete = false;
    bool isolated = false;
    LinkId first_link = kNoLink;
    net::RtrHeader collected;            ///< final phase-1 header
    std::vector<char> view_link_failed;  ///< post-phase-1 view
    std::unordered_map<NodeId, spf::Path> path_cache;
  };

  Decision handle_default(NodeId at, net::DataPacket& p);
  Decision handle_collect(NodeId at, NodeId prev, net::DataPacket& p);
  Decision handle_source_route(NodeId at, net::DataPacket& p);
  Decision begin_recovery(NodeId at, net::DataPacket& p, LinkId dead);
  Decision enter_phase2(NodeId at, InitiatorState& st,
                        net::DataPacket& p);

  const graph::Graph* g_;
  const graph::CrossingIndex* crossings_;
  const spf::RoutingTable* rt_;
  const fail::FailureSet* failure_;
  Phase1Options opts_;
  RuleOptions rule_;
  std::unordered_map<NodeId, InitiatorState> states_;
};

}  // namespace rtr::core
