// JSON emission for rtr::obs -- the machine-readable half of every
// bench binary's `--metrics-out <file>` flag, consumed by
// tools/check_bench_regression.py in the CI perf gate.
//
// Document layout (schema "rtr.metrics.v1"):
//   {
//     "schema": "rtr.metrics.v1",
//     "schema_version": 1,
//     "run": { "bench": ..., "git_describe": ..., "config": {k: "v"} },
//     "metrics": { <stable series only> },
//     "timing":  {                      // omitted in deterministic mode
//       "threads": N,
//       "wall_clock_ms": M,
//       "max_rss_kb": R,                // peak RSS, 0 when unknown
//       "series": { <volatile series> }
//     }
//   }
// Series render as
//   counter:   {"kind": "counter", "value": N}
//   gauge:     {"kind": "gauge", "count": c, "sum": s, "min": m, "max": M}
//   histogram: gauge fields plus "bounds": [...], "counts": [...]
//              (counts has bounds.size()+1 entries; the last is +inf)
//
// Keys are emitted in sorted order and every value is an unsigned
// integer or a string, so the document is byte-reproducible: with
// include_volatile=false the whole file is bit-identical across thread
// counts and repeat runs (the CI determinism smoke diffs it verbatim).
#pragma once

#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace rtr::obs {

/// Provenance of one bench run, embedded under "run".
struct RunInfo {
  std::string bench;  ///< binary basename, e.g. "bench_table3_recoverable"
  /// Workload knobs (cases, seed, cut rule, ...) -- stable inputs only;
  /// the thread count is volatile and lives in EmitOptions instead.
  std::vector<std::pair<std::string, std::string>> config;
};

struct EmitOptions {
  /// false drops the "timing" block (wall clock, thread count, volatile
  /// series) so the document is bit-identical across thread counts; set
  /// by RTR_METRICS_DETERMINISTIC=1 for the determinism tests/CI smoke.
  bool include_volatile = true;
  std::size_t threads = 0;     ///< resolved worker count of the run
  Value wall_clock_ms = 0;     ///< process wall clock at emission
  Value max_rss_kb = 0;        ///< peak RSS in KiB (0 = unknown)
};

/// The source tree's `git describe --always --dirty` captured at
/// configure time ("unknown" outside a git checkout).
const char* git_describe();

/// Milliseconds since the obs library was loaded (process start for all
/// practical purposes).
Value process_uptime_ms();

/// Peak resident set size of this process in KiB (VmHWM from
/// /proc/self/status, getrusage as fallback; 0 when neither is
/// available).  Volatile by nature: it lives in the timing block, never
/// among the stable metrics.
Value peak_rss_kb();

/// Serialises one snapshot to the schema above.
std::string to_json(const Snapshot& snapshot, const RunInfo& run,
                    const EmitOptions& opts);

/// Writes to_json() plus a trailing newline to `path`, atomically: the
/// document lands in `path + ".tmp"` first and is rename()d into place,
/// so a reader racing a flush (or a crash mid-write) only ever sees the
/// previous complete document, never a torn one.  Returns false (after
/// printing to stderr) when the file cannot be written or renamed.
bool write_metrics_file(const std::string& path, const Snapshot& snapshot,
                        const RunInfo& run, const EmitOptions& opts);

/// Process-wide metrics-file emitter: the machinery behind every bench
/// binary's `--metrics-out` flag and the service layer's periodic
/// snapshots.
///
/// configure() records the destination and run provenance; flush()
/// serialises the *current* registry state (wall clock and peak RSS are
/// sampled at the call) and rewrites the file whole, so the destination
/// always holds exactly one valid JSON document no matter how many
/// snapshots a long-running process emits.  register_atexit() installs
/// a process-exit flush at most once per process, however many call
/// sites ask for it -- re-running a config parser or embedding the
/// bench plumbing in a server can never double-register the handler or
/// race its ordering against another emitter instance, because there is
/// only ever the one leaked global() (same lifetime discipline as
/// Registry::global(): emission may run after static destructors).
class Emitter {
 public:
  /// The process-wide instance (leaked on purpose, like the Registry).
  static Emitter& global();

  /// Sets the destination and provenance of subsequent flushes.  An
  /// empty path disarms the emitter: flush() becomes a no-op.
  /// opts.wall_clock_ms and opts.max_rss_kb are ignored; both are
  /// re-sampled at every flush.
  void configure(std::string path, RunInfo run, EmitOptions opts);

  /// Serialises the registry to the configured path right now.  Returns
  /// false when unconfigured/disarmed or the file cannot be written.
  /// Safe to call repeatedly and from any thread (whole-file overwrite
  /// under an internal mutex); the atexit flush is just one more call.
  bool flush();

  /// Installs the atexit flush hook.  Returns true when this call
  /// installed it, false when an earlier call already had -- the hook
  /// runs at most once per process either way.
  bool register_atexit();

  bool configured() const;

  /// Successful flushes so far (regression seam for double-emit bugs).
  std::size_t flushes() const;

 private:
  Emitter() = default;

  mutable std::mutex mu_;
  std::string path_;
  RunInfo run_;
  EmitOptions opts_;
  std::size_t flushes_ = 0;
  bool atexit_registered_ = false;
};

}  // namespace rtr::obs
