// rtr::obs -- lightweight, thread-safe run metrics.
//
// A process-wide Registry of named series backs every bench binary's
// `--metrics-out` JSON document and the CI perf-regression gate:
//   Counter    monotonically increasing count (ops, hops, calls)
//   Gauge      value summary: count / sum / min / max of recorded values
//   Histogram  fixed-bucket distribution (plus count / sum / max)
//   ScopedTimer RAII wall-clock probe feeding a nanosecond Histogram
//
// Determinism contract (mirrors the PR 1 parallel engine): every cell is
// a 64-bit unsigned integer updated with relaxed atomics and sharded per
// worker thread; snapshot() merges the shards in shard-index order.
// Because integer addition / max / min are commutative and associative,
// every *stable* series is a pure function of the workload -- bit-stable
// across thread counts and across runs.  Series measured in wall-clock
// time can never be: they are registered as Stability::kVolatile and the
// JSON emitter segregates (or omits) them, so the stable section of the
// document is bit-identical at --threads 1/2/8.
//
// Instrumentation is always on; an update is one relaxed fetch_add on a
// cache-line-padded shard, cheap enough for the SPF and forwarding hot
// paths.  `--metrics-out` only controls emission.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rtr::obs {

using Value = std::uint64_t;

/// Whether a series is a pure function of the workload (op counts,
/// sizes: bit-stable across thread counts) or measures wall-clock time
/// (volatile: differs run to run).
enum class Stability { kStable, kVolatile };

enum class Kind { kCounter, kGauge, kHistogram };

const char* to_string(Stability s);
const char* to_string(Kind k);

/// Shards per metric.  Threads map onto shards with a process-wide
/// first-touch slot (modulo kShards); two threads sharing a shard is
/// still correct -- the cells are atomics -- just slower.
inline constexpr std::size_t kShards = 16;

/// The shard slot of the calling thread (assigned on first use).
std::size_t this_thread_shard();

class Counter;

namespace detail {
/// One cache line of atomic u64 cells, so workers on different shards
/// never false-share.
struct alignas(64) ShardCell {
  std::atomic<Value> count{0};
  std::atomic<Value> sum{0};
  std::atomic<Value> max{0};
  std::atomic<Value> min{~Value{0}};
};

void atomic_max(std::atomic<Value>& a, Value v);
void atomic_min(std::atomic<Value>& a, Value v);

class UnitRecorder;
/// Per-thread capture target; non-null only inside a UnitCapture scope
/// on the calling thread (and nulled across a UnitCaptureSuspend).
/// Checked inline on the Counter::add hot path: one TLS load + branch
/// when no capture is armed.
extern thread_local UnitRecorder* t_unit_recorder;

void unit_record_counter(const Counter& c, Value v);
}  // namespace detail

/// Point-in-time value of one series (shards already merged).
struct Sample {
  std::string name;
  Kind kind = Kind::kCounter;
  Stability stability = Stability::kStable;
  Value count = 0;  ///< counter total / number of recorded observations
  Value sum = 0;    ///< sum of observations (gauge, histogram)
  Value max = 0;    ///< max observation; 0 when count == 0
  Value min = 0;    ///< min observation; 0 when count == 0
  /// Histogram only: cumulative-style bucket pairs (upper_bound, count);
  /// the final implicit +inf bucket is `count - sum(buckets)`.
  std::vector<Value> bucket_bounds;
  std::vector<Value> bucket_counts;
};

/// Registry snapshot, sorted by series name.
using Snapshot = std::vector<Sample>;

class Metric {
 public:
  Metric(std::string name, Kind kind, Stability stability)
      : name_(std::move(name)), kind_(kind), stability_(stability) {}
  virtual ~Metric() = default;

  const std::string& name() const { return name_; }
  Kind kind() const { return kind_; }
  Stability stability() const { return stability_; }

  virtual Sample sample() const = 0;
  virtual void reset() = 0;

 protected:
  Sample base_sample() const {
    Sample s;
    s.name = name_;
    s.kind = kind_;
    s.stability = stability_;
    return s;
  }

 private:
  std::string name_;
  Kind kind_;
  Stability stability_;
};

/// Monotonic counter; add() is one relaxed fetch_add.
class Counter final : public Metric {
 public:
  Counter(std::string name, Stability stability)
      : Metric(std::move(name), Kind::kCounter, stability) {}

  void add(Value v) {
    cells_[this_thread_shard()].count.fetch_add(v,
                                                std::memory_order_relaxed);
    if (detail::t_unit_recorder != nullptr) {
      detail::unit_record_counter(*this, v);
    }
  }
  void inc() { add(1); }

  Value total() const;
  Sample sample() const override;
  void reset() override;

 private:
  std::array<detail::ShardCell, kShards> cells_;
};

/// Summary gauge: record(v) folds v into count / sum / min / max.  All
/// four folds are commutative, so the merged summary is order-free.
class Gauge final : public Metric {
 public:
  Gauge(std::string name, Stability stability)
      : Metric(std::move(name), Kind::kGauge, stability) {}

  void record(Value v);

  /// Folds an exact summary delta (count / sum / min / max) into the
  /// calling thread's shard; min/max are ignored when count == 0.  The
  /// replay path of apply_unit_delta() -- record() cannot reproduce a
  /// min/max pair without replaying every observation.
  void fold(Value count, Value sum, Value min, Value max);

  Sample sample() const override;
  void reset() override;

 private:
  std::array<detail::ShardCell, kShards> cells_;
};

/// Fixed-bucket histogram: observe(v) increments the first bucket whose
/// upper bound is >= v (the implicit +inf bucket catches the rest) and
/// folds v into the summary cells.
class Histogram final : public Metric {
 public:
  Histogram(std::string name, Stability stability,
            std::vector<Value> bounds);

  void observe(Value v);

  /// Folds an exact delta into the calling thread's shard; the bucket
  /// vector must have bounds().size() + 1 entries (RTR_EXPECT).
  void fold(Value count, Value sum, Value min, Value max,
            const std::vector<Value>& bucket_counts);

  const std::vector<Value>& bounds() const { return bounds_; }
  Sample sample() const override;
  void reset() override;

 private:
  struct alignas(64) BucketShard {
    // bounds_.size() + 1 slots; the last is the +inf bucket.
    std::unique_ptr<std::atomic<Value>[]> counts;
  };

  std::vector<Value> bounds_;
  std::array<detail::ShardCell, kShards> cells_;
  std::array<BucketShard, kShards> buckets_;
};

/// Default bucket bounds for nanosecond latency histograms: powers of
/// four from 1us to ~4.4s.
std::vector<Value> latency_ns_bounds();

/// Default bucket bounds for small size/step distributions: powers of
/// two from 1 to 65536.
std::vector<Value> size_bounds();

/// Process-wide registry.  Lookup is mutex-guarded and intended for the
/// `static Counter& c = Registry::global().counter(...)` idiom: pay the
/// lock once per call site, then update lock-free.
class Registry {
 public:
  /// The process-wide instance (leaked on purpose: emission may run from
  /// an atexit handler, after static destructors would have fired).
  static Registry& global();

  Counter& counter(std::string_view name,
                   Stability stability = Stability::kStable);
  Gauge& gauge(std::string_view name,
               Stability stability = Stability::kStable);
  Histogram& histogram(std::string_view name, std::vector<Value> bounds,
                       Stability stability = Stability::kStable);
  /// Nanosecond latency histogram; always volatile (it is wall clock).
  Histogram& timer(std::string_view name);

  /// All series merged (shards in index order) and sorted by name.
  Snapshot snapshot() const;

  /// Zeroes every series but keeps the registrations (tests).
  void reset();

  std::size_t series_count() const;

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Metric>, std::less<>> metrics_;
};

/// The sanctioned way to register a series whose name has a *dynamic*
/// middle segment (e.g. one series per endpoint).  The layer and leaf
/// are compile-time literals -- the metric-name lint validates them at
/// the call site against the rtr.<layer>.<noun> grammar -- while the
/// scope segment is validated here at construction ([a-z0-9_]+, via
/// RTR_EXPECT).  Builds "rtr.<layer>.<scope>.<leaf>".  Ad-hoc string
/// concatenation into Registry::counter() is a lint error.
Counter& scoped_counter(const char* layer, std::string_view scope,
                        const char* leaf,
                        Stability stability = Stability::kStable);
Gauge& scoped_gauge(const char* layer, std::string_view scope,
                    const char* leaf,
                    Stability stability = Stability::kStable);
/// Nanosecond latency histogram; always volatile.
Histogram& scoped_timer(const char* layer, std::string_view scope,
                        const char* leaf);

/// RAII wall-clock probe: records elapsed nanoseconds into a (volatile)
/// histogram on destruction.  Nests freely; each scope records its own
/// inclusive elapsed time.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink)
      : sink_(&sink), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { sink_->observe(elapsed_ns()); }

  Value elapsed_ns() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
    return ns < 0 ? 0 : static_cast<Value>(ns);
  }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

// ------------------------------------------------------- unit capture --
//
// Exact per-unit-of-work attribution of *stable* series, the metric
// half of the crash-durable ledger (src/ledger): while a UnitCapture is
// armed on a thread, every stable Counter::add / Gauge::record /
// Histogram::observe on that thread is mirrored into a private
// UnitDelta.  Replaying the delta with apply_unit_delta() reproduces
// the unit's registry effects bit-exactly -- including gauge/histogram
// min/max, which no snapshot subtraction could recover -- so a resumed
// sweep's stable metrics equal an uninterrupted run's.  Volatile series
// are never captured: they are wall clock, not workload.

/// Exact delta one unit of work contributed to a single stable series.
struct SeriesDelta {
  Kind kind = Kind::kCounter;
  Value count = 0;
  Value sum = 0;
  Value max = 0;
  Value min = ~Value{0};
  /// Histograms only: the registration bounds (so replay into a fresh
  /// process can re-register the series) and bounds.size() + 1 bucket
  /// increments.
  std::vector<Value> bucket_bounds;
  std::vector<Value> bucket_counts;

  bool operator==(const SeriesDelta&) const = default;
};

/// Everything one unit of work did to the stable registry, plus keyed
/// notes recorded via unit_note(): enough to replay the unit's metric
/// effects -- and re-warm its caches -- without re-running it.
struct UnitDelta {
  std::map<std::string, SeriesDelta, std::less<>> series;
  /// Keyed event lists in recording order (e.g. which base-tree sources
  /// the unit requested, keyed by "spf.base.<algo>").
  std::map<std::string, std::vector<Value>, std::less<>> notes;

  bool empty() const { return series.empty() && notes.empty(); }
  bool operator==(const UnitDelta&) const = default;
};

/// Arms capture on the constructing thread for its lifetime.  Nesting
/// is a programming error (RTR_EXPECT); captures on other threads are
/// independent.
class UnitCapture {
 public:
  UnitCapture();
  UnitCapture(const UnitCapture&) = delete;
  UnitCapture& operator=(const UnitCapture&) = delete;
  ~UnitCapture();

  /// Moves out everything captured so far and resets the recorder.
  UnitDelta take();

 private:
  std::unique_ptr<detail::UnitRecorder> rec_;
};

/// RAII suspension of the calling thread's active capture (no-op when
/// none is armed): updates inside the scope are process-global work --
/// e.g. a compute-once BaseTreeStore fill -- not attributable to the
/// unit that happened to trigger them.
class UnitCaptureSuspend {
 public:
  UnitCaptureSuspend();
  UnitCaptureSuspend(const UnitCaptureSuspend&) = delete;
  UnitCaptureSuspend& operator=(const UnitCaptureSuspend&) = delete;
  ~UnitCaptureSuspend();

 private:
  detail::UnitRecorder* saved_;
};

/// Appends v to the active capture's `key` note list (no-op without an
/// armed capture).  Key grammar is free-form dotted lowercase.
void unit_note(std::string_view key, Value v);

/// Replays a captured delta into the registry: counters fetch_add,
/// gauges/histograms fold count/sum/min/max and bucket increments.
/// Series missing from the registry are registered (stable, histogram
/// bounds from the delta).  Kind mismatches are programming errors.
void apply_unit_delta(Registry& r, const UnitDelta& d);

}  // namespace rtr::obs
