#include "obs/metrics.h"

#include <algorithm>

#include "common/expect.h"

namespace rtr::obs {

const char* to_string(Stability s) {
  return s == Stability::kStable ? "stable" : "volatile";
}

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

std::size_t this_thread_shard() {
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

namespace detail {

void atomic_max(std::atomic<Value>& a, Value v) {
  Value cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<Value>& a, Value v) {
  Value cur = a.load(std::memory_order_relaxed);
  while (cur > v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

namespace {

void reset_cell(ShardCell& c) {
  c.count.store(0, std::memory_order_relaxed);
  c.sum.store(0, std::memory_order_relaxed);
  c.max.store(0, std::memory_order_relaxed);
  c.min.store(~Value{0}, std::memory_order_relaxed);
}

/// Folds the shard cells into a Sample in shard-index order.  Every fold
/// (integer +, max, min) is commutative, so the result cannot depend on
/// which thread landed on which shard.
void merge_cells(const std::array<ShardCell, kShards>& cells, Sample& s) {
  Value min = ~Value{0};
  for (const ShardCell& c : cells) {
    s.count += c.count.load(std::memory_order_relaxed);
    s.sum += c.sum.load(std::memory_order_relaxed);
    s.max = std::max(s.max, c.max.load(std::memory_order_relaxed));
    min = std::min(min, c.min.load(std::memory_order_relaxed));
  }
  s.min = s.count == 0 ? 0 : min;
}

void record_into(ShardCell& c, Value v) {
  c.count.fetch_add(1, std::memory_order_relaxed);
  c.sum.fetch_add(v, std::memory_order_relaxed);
  atomic_max(c.max, v);
  atomic_min(c.min, v);
}

}  // namespace
}  // namespace detail

// ---------------------------------------------------------------- Counter --

Value Counter::total() const {
  Value t = 0;
  for (const detail::ShardCell& c : cells_) {
    t += c.count.load(std::memory_order_relaxed);
  }
  return t;
}

Sample Counter::sample() const {
  Sample s = base_sample();
  s.count = total();
  return s;
}

void Counter::reset() {
  for (detail::ShardCell& c : cells_) detail::reset_cell(c);
}

// ------------------------------------------------------------------ Gauge --

void Gauge::record(Value v) {
  detail::record_into(cells_[this_thread_shard()], v);
}

Sample Gauge::sample() const {
  Sample s = base_sample();
  detail::merge_cells(cells_, s);
  return s;
}

void Gauge::reset() {
  for (detail::ShardCell& c : cells_) detail::reset_cell(c);
}

// -------------------------------------------------------------- Histogram --

Histogram::Histogram(std::string name, Stability stability,
                     std::vector<Value> bounds)
    : Metric(std::move(name), Kind::kHistogram, stability),
      bounds_(std::move(bounds)) {
  RTR_EXPECT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bucket bounds must be sorted");
  for (BucketShard& b : buckets_) {
    b.counts = std::make_unique<std::atomic<Value>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) b.counts[i] = 0;
  }
}

void Histogram::observe(Value v) {
  const std::size_t shard = this_thread_shard();
  detail::record_into(cells_[shard], v);
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) -
      bounds_.begin());
  buckets_[shard].counts[bucket].fetch_add(1, std::memory_order_relaxed);
}

Sample Histogram::sample() const {
  Sample s = base_sample();
  detail::merge_cells(cells_, s);
  s.bucket_bounds = bounds_;
  s.bucket_counts.assign(bounds_.size() + 1, 0);
  for (const BucketShard& b : buckets_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      s.bucket_counts[i] += b.counts[i].load(std::memory_order_relaxed);
    }
  }
  return s;
}

void Histogram::reset() {
  for (detail::ShardCell& c : cells_) detail::reset_cell(c);
  for (BucketShard& b : buckets_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      b.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

std::vector<Value> latency_ns_bounds() {
  std::vector<Value> b;
  for (Value v = 1000; v <= Value{1000} << 22; v <<= 2) b.push_back(v);
  return b;
}

std::vector<Value> size_bounds() {
  std::vector<Value> b;
  for (Value v = 1; v <= 65536; v <<= 1) b.push_back(v);
  return b;
}

// --------------------------------------------------------------- Registry --

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: see header
  return *r;
}

namespace {
template <typename T, typename Make>
T& find_or_make(std::mutex& mu,
                std::map<std::string, std::unique_ptr<Metric>,
                         std::less<>>& metrics,
                std::string_view name, Kind kind, Stability stability,
                Make make) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = metrics.find(name);
  if (it == metrics.end()) {
    it = metrics.emplace(std::string(name), make()).first;
  }
  Metric& m = *it->second;
  RTR_EXPECT_MSG(m.kind() == kind,
                 "metric re-registered with a different kind");
  RTR_EXPECT_MSG(m.stability() == stability,
                 "metric re-registered with a different stability");
  return static_cast<T&>(m);
}
}  // namespace

Counter& Registry::counter(std::string_view name, Stability stability) {
  return find_or_make<Counter>(mu_, metrics_, name, Kind::kCounter,
                               stability, [&] {
                                 return std::make_unique<Counter>(
                                     std::string(name), stability);
                               });
}

Gauge& Registry::gauge(std::string_view name, Stability stability) {
  return find_or_make<Gauge>(mu_, metrics_, name, Kind::kGauge, stability,
                             [&] {
                               return std::make_unique<Gauge>(
                                   std::string(name), stability);
                             });
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<Value> bounds,
                               Stability stability) {
  Histogram& h = find_or_make<Histogram>(
      mu_, metrics_, name, Kind::kHistogram, stability, [&] {
        return std::make_unique<Histogram>(std::string(name), stability,
                                           std::move(bounds));
      });
  return h;
}

Histogram& Registry::timer(std::string_view name) {
  return histogram(name, latency_ns_bounds(), Stability::kVolatile);
}

namespace {
std::string scoped_name(const char* layer, std::string_view scope,
                        const char* leaf) {
  RTR_EXPECT_MSG(!scope.empty(), "scoped metric: empty scope segment");
  for (const char c : scope) {
    RTR_EXPECT_MSG((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                       c == '_',
                   "scoped metric: scope segment must match [a-z0-9_]+");
  }
  std::string name = "rtr.";
  name += layer;
  name += '.';
  name += scope;
  name += '.';
  name += leaf;
  return name;
}
}  // namespace

Counter& scoped_counter(const char* layer, std::string_view scope,
                        const char* leaf, Stability stability) {
  return Registry::global().counter(scoped_name(layer, scope, leaf),
                                    stability);
}

Gauge& scoped_gauge(const char* layer, std::string_view scope,
                    const char* leaf, Stability stability) {
  return Registry::global().gauge(scoped_name(layer, scope, leaf),
                                  stability);
}

Histogram& scoped_timer(const char* layer, std::string_view scope,
                        const char* leaf) {
  return Registry::global().timer(scoped_name(layer, scope, leaf));
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot out;
  out.reserve(metrics_.size());
  // std::map iterates in key order, so the snapshot (and hence the JSON
  // document) is sorted by series name.
  for (const auto& [name, metric] : metrics_) {
    out.push_back(metric->sample());
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, metric] : metrics_) metric->reset();
}

std::size_t Registry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

}  // namespace rtr::obs
