#include "obs/metrics.h"

#include <algorithm>

#include "common/expect.h"

namespace rtr::obs {

const char* to_string(Stability s) {
  return s == Stability::kStable ? "stable" : "volatile";
}

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

std::size_t this_thread_shard() {
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

namespace detail {

/// Accumulates one unit of work's stable-series updates and keyed
/// notes.  Strictly thread-private (reached only through the TLS
/// pointer), so nothing here needs atomics.
class UnitRecorder {
 public:
  void on_counter(const Metric& m, Value v) { slot(m, Kind::kCounter).count += v; }

  void on_summary(const Metric& m, Kind kind, Value v) {
    SeriesDelta& d = slot(m, kind);
    d.count += 1;
    d.sum += v;
    d.max = std::max(d.max, v);
    d.min = std::min(d.min, v);
  }

  void on_histogram(const Histogram& h, Value v, std::size_t bucket) {
    SeriesDelta& d = slot(h, Kind::kHistogram);
    if (d.bucket_counts.empty()) {
      d.bucket_bounds = h.bounds();
      d.bucket_counts.assign(h.bounds().size() + 1, 0);
    }
    d.count += 1;
    d.sum += v;
    d.max = std::max(d.max, v);
    d.min = std::min(d.min, v);
    d.bucket_counts[bucket] += 1;
  }

  void on_note(std::string_view key, Value v) {
    auto it = d_.notes.find(key);
    if (it == d_.notes.end()) {
      it = d_.notes.emplace(std::string(key), std::vector<Value>{}).first;
    }
    it->second.push_back(v);
  }

  UnitDelta take() {
    UnitDelta out = std::move(d_);
    d_ = UnitDelta{};
    return out;
  }

 private:
  SeriesDelta& slot(const Metric& m, Kind kind) {
    auto it = d_.series.find(m.name());
    if (it == d_.series.end()) {
      it = d_.series.emplace(m.name(), SeriesDelta{}).first;
      it->second.kind = kind;
    }
    return it->second;
  }

  UnitDelta d_;
};

thread_local UnitRecorder* t_unit_recorder = nullptr;

void unit_record_counter(const Counter& c, Value v) {
  if (c.stability() != Stability::kStable) return;
  t_unit_recorder->on_counter(c, v);
}

void atomic_max(std::atomic<Value>& a, Value v) {
  Value cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<Value>& a, Value v) {
  Value cur = a.load(std::memory_order_relaxed);
  while (cur > v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

namespace {

void reset_cell(ShardCell& c) {
  c.count.store(0, std::memory_order_relaxed);
  c.sum.store(0, std::memory_order_relaxed);
  c.max.store(0, std::memory_order_relaxed);
  c.min.store(~Value{0}, std::memory_order_relaxed);
}

/// Folds the shard cells into a Sample in shard-index order.  Every fold
/// (integer +, max, min) is commutative, so the result cannot depend on
/// which thread landed on which shard.
void merge_cells(const std::array<ShardCell, kShards>& cells, Sample& s) {
  Value min = ~Value{0};
  for (const ShardCell& c : cells) {
    s.count += c.count.load(std::memory_order_relaxed);
    s.sum += c.sum.load(std::memory_order_relaxed);
    s.max = std::max(s.max, c.max.load(std::memory_order_relaxed));
    min = std::min(min, c.min.load(std::memory_order_relaxed));
  }
  s.min = s.count == 0 ? 0 : min;
}

void record_into(ShardCell& c, Value v) {
  c.count.fetch_add(1, std::memory_order_relaxed);
  c.sum.fetch_add(v, std::memory_order_relaxed);
  atomic_max(c.max, v);
  atomic_min(c.min, v);
}

}  // namespace
}  // namespace detail

// ---------------------------------------------------------------- Counter --

Value Counter::total() const {
  Value t = 0;
  for (const detail::ShardCell& c : cells_) {
    t += c.count.load(std::memory_order_relaxed);
  }
  return t;
}

Sample Counter::sample() const {
  Sample s = base_sample();
  s.count = total();
  return s;
}

void Counter::reset() {
  for (detail::ShardCell& c : cells_) detail::reset_cell(c);
}

// ------------------------------------------------------------------ Gauge --

void Gauge::record(Value v) {
  detail::record_into(cells_[this_thread_shard()], v);
  if (detail::t_unit_recorder != nullptr &&
      stability() == Stability::kStable) {
    detail::t_unit_recorder->on_summary(*this, Kind::kGauge, v);
  }
}

void Gauge::fold(Value count, Value sum, Value min, Value max) {
  if (count == 0) return;
  detail::ShardCell& c = cells_[this_thread_shard()];
  c.count.fetch_add(count, std::memory_order_relaxed);
  c.sum.fetch_add(sum, std::memory_order_relaxed);
  detail::atomic_max(c.max, max);
  detail::atomic_min(c.min, min);
}

Sample Gauge::sample() const {
  Sample s = base_sample();
  detail::merge_cells(cells_, s);
  return s;
}

void Gauge::reset() {
  for (detail::ShardCell& c : cells_) detail::reset_cell(c);
}

// -------------------------------------------------------------- Histogram --

Histogram::Histogram(std::string name, Stability stability,
                     std::vector<Value> bounds)
    : Metric(std::move(name), Kind::kHistogram, stability),
      bounds_(std::move(bounds)) {
  RTR_EXPECT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bucket bounds must be sorted");
  for (BucketShard& b : buckets_) {
    b.counts = std::make_unique<std::atomic<Value>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) b.counts[i] = 0;
  }
}

void Histogram::observe(Value v) {
  const std::size_t shard = this_thread_shard();
  detail::record_into(cells_[shard], v);
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) -
      bounds_.begin());
  buckets_[shard].counts[bucket].fetch_add(1, std::memory_order_relaxed);
  if (detail::t_unit_recorder != nullptr &&
      stability() == Stability::kStable) {
    detail::t_unit_recorder->on_histogram(*this, v, bucket);
  }
}

void Histogram::fold(Value count, Value sum, Value min, Value max,
                     const std::vector<Value>& bucket_counts) {
  RTR_EXPECT_MSG(bucket_counts.size() == bounds_.size() + 1,
                 "histogram fold: bucket vector does not match bounds");
  if (count == 0) return;
  const std::size_t shard = this_thread_shard();
  detail::ShardCell& c = cells_[shard];
  c.count.fetch_add(count, std::memory_order_relaxed);
  c.sum.fetch_add(sum, std::memory_order_relaxed);
  detail::atomic_max(c.max, max);
  detail::atomic_min(c.min, min);
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    buckets_[shard].counts[i].fetch_add(bucket_counts[i],
                                        std::memory_order_relaxed);
  }
}

Sample Histogram::sample() const {
  Sample s = base_sample();
  detail::merge_cells(cells_, s);
  s.bucket_bounds = bounds_;
  s.bucket_counts.assign(bounds_.size() + 1, 0);
  for (const BucketShard& b : buckets_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      s.bucket_counts[i] += b.counts[i].load(std::memory_order_relaxed);
    }
  }
  return s;
}

void Histogram::reset() {
  for (detail::ShardCell& c : cells_) detail::reset_cell(c);
  for (BucketShard& b : buckets_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      b.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

std::vector<Value> latency_ns_bounds() {
  std::vector<Value> b;
  for (Value v = 1000; v <= Value{1000} << 22; v <<= 2) b.push_back(v);
  return b;
}

std::vector<Value> size_bounds() {
  std::vector<Value> b;
  for (Value v = 1; v <= 65536; v <<= 1) b.push_back(v);
  return b;
}

// --------------------------------------------------------------- Registry --

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: see header
  return *r;
}

namespace {
template <typename T, typename Make>
T& find_or_make(std::mutex& mu,
                std::map<std::string, std::unique_ptr<Metric>,
                         std::less<>>& metrics,
                std::string_view name, Kind kind, Stability stability,
                Make make) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = metrics.find(name);
  if (it == metrics.end()) {
    it = metrics.emplace(std::string(name), make()).first;
  }
  Metric& m = *it->second;
  RTR_EXPECT_MSG(m.kind() == kind,
                 "metric re-registered with a different kind");
  RTR_EXPECT_MSG(m.stability() == stability,
                 "metric re-registered with a different stability");
  return static_cast<T&>(m);
}
}  // namespace

Counter& Registry::counter(std::string_view name, Stability stability) {
  return find_or_make<Counter>(mu_, metrics_, name, Kind::kCounter,
                               stability, [&] {
                                 return std::make_unique<Counter>(
                                     std::string(name), stability);
                               });
}

Gauge& Registry::gauge(std::string_view name, Stability stability) {
  return find_or_make<Gauge>(mu_, metrics_, name, Kind::kGauge, stability,
                             [&] {
                               return std::make_unique<Gauge>(
                                   std::string(name), stability);
                             });
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<Value> bounds,
                               Stability stability) {
  Histogram& h = find_or_make<Histogram>(
      mu_, metrics_, name, Kind::kHistogram, stability, [&] {
        return std::make_unique<Histogram>(std::string(name), stability,
                                           std::move(bounds));
      });
  return h;
}

Histogram& Registry::timer(std::string_view name) {
  return histogram(name, latency_ns_bounds(), Stability::kVolatile);
}

namespace {
std::string scoped_name(const char* layer, std::string_view scope,
                        const char* leaf) {
  RTR_EXPECT_MSG(!scope.empty(), "scoped metric: empty scope segment");
  for (const char c : scope) {
    RTR_EXPECT_MSG((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                       c == '_',
                   "scoped metric: scope segment must match [a-z0-9_]+");
  }
  std::string name = "rtr.";
  name += layer;
  name += '.';
  name += scope;
  name += '.';
  name += leaf;
  return name;
}
}  // namespace

Counter& scoped_counter(const char* layer, std::string_view scope,
                        const char* leaf, Stability stability) {
  return Registry::global().counter(scoped_name(layer, scope, leaf),
                                    stability);
}

Gauge& scoped_gauge(const char* layer, std::string_view scope,
                    const char* leaf, Stability stability) {
  return Registry::global().gauge(scoped_name(layer, scope, leaf),
                                  stability);
}

Histogram& scoped_timer(const char* layer, std::string_view scope,
                        const char* leaf) {
  return Registry::global().timer(scoped_name(layer, scope, leaf));
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot out;
  out.reserve(metrics_.size());
  // std::map iterates in key order, so the snapshot (and hence the JSON
  // document) is sorted by series name.
  for (const auto& [name, metric] : metrics_) {
    out.push_back(metric->sample());
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, metric] : metrics_) metric->reset();
}

std::size_t Registry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

// ----------------------------------------------------- unit capture --

UnitCapture::UnitCapture() : rec_(std::make_unique<detail::UnitRecorder>()) {
  RTR_EXPECT_MSG(detail::t_unit_recorder == nullptr,
                 "UnitCapture scopes must not nest on one thread");
  detail::t_unit_recorder = rec_.get();
}

UnitCapture::~UnitCapture() { detail::t_unit_recorder = nullptr; }

UnitDelta UnitCapture::take() {
  UnitDelta d = rec_->take();
  // Pin every stable series registered by the time the unit completed,
  // zero-count slots included.  A resumed run that replays *every*
  // unit from a journal never executes the instrumented code paths, so
  // without these slots it would drop zero-valued series (and their
  // registrations) that an uninterrupted run reports -- breaking the
  // byte-identical metrics contract.  Zero slots replay as pure
  // registrations: add(0) / a fold that early-returns.
  for (const Sample& s : Registry::global().snapshot()) {
    if (s.stability != Stability::kStable) continue;
    const auto [it, inserted] = d.series.try_emplace(s.name);
    if (!inserted) continue;
    SeriesDelta& sd = it->second;
    sd.kind = s.kind;
    if (s.kind == Kind::kHistogram) {
      sd.bucket_bounds = s.bucket_bounds;
      sd.bucket_counts.assign(s.bucket_bounds.size() + 1, 0);
    }
  }
  return d;
}

UnitCaptureSuspend::UnitCaptureSuspend() : saved_(detail::t_unit_recorder) {
  detail::t_unit_recorder = nullptr;
}

UnitCaptureSuspend::~UnitCaptureSuspend() {
  detail::t_unit_recorder = saved_;
}

void unit_note(std::string_view key, Value v) {
  if (detail::t_unit_recorder != nullptr) {
    detail::t_unit_recorder->on_note(key, v);
  }
}

void apply_unit_delta(Registry& r, const UnitDelta& d) {
  RTR_EXPECT_MSG(detail::t_unit_recorder == nullptr,
                 "replaying a delta inside an armed capture would "
                 "re-attribute it to the current unit");
  for (const auto& [name, sd] : d.series) {
    switch (sd.kind) {
      case Kind::kCounter:
        r.counter(name).add(sd.count);
        break;
      case Kind::kGauge:
        r.gauge(name).fold(sd.count, sd.sum, sd.min, sd.max);
        break;
      case Kind::kHistogram: {
        Histogram& h = r.histogram(name, sd.bucket_bounds);
        RTR_EXPECT_MSG(h.bounds() == sd.bucket_bounds,
                       "replayed histogram delta disagrees with the "
                       "registered bucket bounds");
        h.fold(sd.count, sd.sum, sd.min, sd.max, sd.bucket_counts);
        break;
      }
    }
  }
}

}  // namespace rtr::obs
